#include "common/status.h"

#include <gtest/gtest.h>

namespace atnn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad dims");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, NewCodesRenderTheirNames) {
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::DataLoss("bits").ToString(), "DataLoss: bits");
  EXPECT_EQ(Status::Unavailable("down").ToString(), "Unavailable: down");
}

TEST(StatusTest, IsRetriableSplitsTransientFromPermanent) {
  EXPECT_TRUE(IsRetriable(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetriable(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsRetriable(StatusCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetriable(StatusCode::kIoError));
  EXPECT_FALSE(IsRetriable(StatusCode::kOk));
  EXPECT_FALSE(IsRetriable(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetriable(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetriable(StatusCode::kDataLoss));
  EXPECT_FALSE(IsRetriable(StatusCode::kCorruption));
  EXPECT_FALSE(IsRetriable(StatusCode::kInternal));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsePositive(int x, int* out) {
  ATNN_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  *out = value * 2;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(UsePositive(3, &out).ok());
  EXPECT_EQ(out, 6);
  Status status = UsePositive(-1, &out);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

Status FailFast() {
  ATNN_RETURN_IF_ERROR(Status::IoError("disk gone"));
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnIfErrorShortCircuits) {
  EXPECT_EQ(FailFast().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace atnn
