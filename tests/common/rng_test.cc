#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace atnn {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() != b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.UniformInt(uint64_t{10})];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 450);  // ~4.5 sigma
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.015);
}

TEST(RngTest, BernoulliClampsProbabilities) {
  Rng rng(14);
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, PoissonMeanSmallLambda) {
  Rng rng(15);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += double(rng.Poisson(3.5));
  EXPECT_NEAR(sum / 20000.0, 3.5, 0.1);
}

TEST(RngTest, PoissonMeanLargeLambda) {
  Rng rng(16);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += double(rng.Poisson(120.0));
  EXPECT_NEAR(sum / 5000.0, 120.0, 1.0);
}

TEST(RngTest, PoissonZeroLambdaIsZero) {
  Rng rng(17);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, BinomialMatchesMean) {
  Rng rng(18);
  double sum_small = 0.0;
  double sum_large = 0.0;
  for (int i = 0; i < 20000; ++i) sum_small += double(rng.Binomial(20, 0.25));
  for (int i = 0; i < 5000; ++i) sum_large += double(rng.Binomial(1000, 0.1));
  EXPECT_NEAR(sum_small / 20000.0, 5.0, 0.1);
  EXPECT_NEAR(sum_large / 5000.0, 100.0, 1.0);
}

TEST(RngTest, BinomialEdgeCases) {
  Rng rng(19);
  EXPECT_EQ(rng.Binomial(0, 0.5), 0);
  EXPECT_EQ(rng.Binomial(10, 0.0), 0);
  EXPECT_EQ(rng.Binomial(10, 1.0), 10);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(20);
  double sum = 0.0;
  for (int i = 0; i < 30000; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / 30000.0, 0.5, 0.02);
}

TEST(RngTest, GammaMean) {
  Rng rng(21);
  double sum = 0.0;
  for (int i = 0; i < 30000; ++i) sum += rng.Gamma(3.0, 2.0);
  EXPECT_NEAR(sum / 30000.0, 6.0, 0.15);
  // Shape < 1 branch.
  sum = 0.0;
  for (int i = 0; i < 30000; ++i) sum += rng.Gamma(0.5, 1.0);
  EXPECT_NEAR(sum / 30000.0, 0.5, 0.05);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(22);
  std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.01);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.015);
  EXPECT_NEAR(counts[2] / 30000.0, 0.6, 0.015);
}

TEST(RngTest, ZipfIsSkewedTowardHead) {
  Rng rng(23);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(100, 1.2)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // All mass inside the support.
  int total = std::accumulate(counts.begin(), counts.end(), 0);
  EXPECT_EQ(total, 50000);
}

TEST(RngTest, ZipfAlphaZeroIsUniformish) {
  Rng rng(24);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.Zipf(10, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(25);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, values);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesDecorrelatedStreams) {
  Rng parent(42);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (child_a.NextUint64() != child_b.NextUint64()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, SplitMix64IsStable) {
  // Pinned values guard against accidental algorithm changes that would
  // silently re-randomize every dataset in the repo.
  EXPECT_EQ(SplitMix64(0), 16294208416658607535ULL);
  EXPECT_EQ(SplitMix64(1), 10451216379200822465ULL);
}

}  // namespace
}  // namespace atnn
