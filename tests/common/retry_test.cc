#include "common/retry.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace atnn {
namespace {

// Collects requested sleeps instead of blocking, so backoff schedules are
// asserted exactly and tests run in microseconds.
struct FakeSleeper {
  std::vector<int64_t> slept_ms;
  std::function<void(int64_t)> Fn() {
    return [this](int64_t ms) { slept_ms.push_back(ms); };
  }
};

TEST(RetryTest, SucceedsFirstTryWithoutSleeping) {
  FakeSleeper sleeper;
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&] {
        ++calls;
        return Status::OK();
      },
      {}, sleeper.Fn());
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeper.slept_ms.empty());
}

TEST(RetryTest, RecoversAfterTransientFailures) {
  FakeSleeper sleeper;
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("warming up") : Status::OK();
      },
      {}, sleeper.Fn());
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeper.slept_ms, (std::vector<int64_t>{10, 20}));
}

TEST(RetryTest, NonRetriableErrorFailsFast) {
  FakeSleeper sleeper;
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&] {
        ++calls;
        return Status::InvalidArgument("never going to work");
      },
      {}, sleeper.Fn());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeper.slept_ms.empty());
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  FakeSleeper sleeper;
  RetryConfig config;
  config.max_attempts = 4;
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&] {
        ++calls;
        return Status::IoError("flaky disk");
      },
      config, sleeper.Fn());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "flaky disk");
  EXPECT_EQ(calls, 4);
  // No sleep after the final attempt.
  EXPECT_EQ(sleeper.slept_ms, (std::vector<int64_t>{10, 20, 40}));
}

TEST(RetryTest, BackoffIsCappedAtMax) {
  FakeSleeper sleeper;
  RetryConfig config;
  config.max_attempts = 6;
  config.initial_backoff_ms = 100;
  config.multiplier = 3.0;
  config.max_backoff_ms = 500;
  const Status status = RetryWithBackoff(
      [] { return Status::Unavailable("down"); }, config, sleeper.Fn());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(sleeper.slept_ms, (std::vector<int64_t>{100, 300, 500, 500, 500}));
}

TEST(RetryTest, InvalidConfigIsInvalidArgument) {
  int calls = 0;
  const auto op = [&] {
    ++calls;
    return Status::OK();
  };
  RetryConfig config;
  config.max_attempts = 0;
  EXPECT_EQ(RetryWithBackoff(op, config).code(),
            StatusCode::kInvalidArgument);
  config = {};
  config.initial_backoff_ms = -1;
  EXPECT_EQ(RetryWithBackoff(op, config).code(),
            StatusCode::kInvalidArgument);
  config = {};
  config.multiplier = 0.5;
  EXPECT_EQ(RetryWithBackoff(op, config).code(),
            StatusCode::kInvalidArgument);
  // The op must never run under an invalid config.
  EXPECT_EQ(calls, 0);
}

TEST(RetryTest, JitterIsDeterministicPerSeedAndBounded) {
  RetryConfig config;
  config.max_attempts = 5;
  config.initial_backoff_ms = 100;
  config.max_backoff_ms = 10000;
  config.jitter = 0.5;
  config.jitter_seed = 42;
  const auto run = [&] {
    FakeSleeper sleeper;
    RetryWithBackoff([] { return Status::Unavailable("down"); }, config,
                     sleeper.Fn());
    return sleeper.slept_ms;
  };
  const std::vector<int64_t> first = run();
  EXPECT_EQ(first, run()) << "same seed must reproduce the same schedule";
  ASSERT_EQ(first.size(), 4u);
  int64_t base = 100;
  for (const int64_t slept : first) {
    EXPECT_GE(slept, base / 2);
    EXPECT_LE(slept, base + base / 2);
    base *= 2;
  }

  config.jitter_seed = 43;
  EXPECT_NE(first, run()) << "different seeds must decorrelate the schedule";
}

TEST(RetryTest, ZeroJitterReproducesExactSchedule) {
  RetryConfig config;
  config.max_attempts = 4;
  config.jitter = 0.0;
  config.jitter_seed = 999;  // must be ignored when jitter is off
  FakeSleeper sleeper;
  RetryWithBackoff([] { return Status::Unavailable("down"); }, config,
                   sleeper.Fn());
  EXPECT_EQ(sleeper.slept_ms, (std::vector<int64_t>{10, 20, 40}));
}

TEST(RetryTest, DistinctSeedsDesynchronizeAHerd) {
  // Simulate N shards recovering at once, each retrying with its own seed.
  // At least two of them must land on different first-sleep values —
  // otherwise the "jitter" is not actually breaking up the storm.
  RetryConfig config;
  config.max_attempts = 2;
  config.initial_backoff_ms = 1000;
  config.max_backoff_ms = 10000;
  config.jitter = 0.5;
  std::vector<int64_t> first_sleeps;
  for (uint64_t shard = 0; shard < 8; ++shard) {
    config.jitter_seed = 0x5eedULL ^ shard;
    FakeSleeper sleeper;
    RetryWithBackoff([] { return Status::Unavailable("down"); }, config,
                     sleeper.Fn());
    ASSERT_EQ(sleeper.slept_ms.size(), 1u);
    first_sleeps.push_back(sleeper.slept_ms[0]);
  }
  std::sort(first_sleeps.begin(), first_sleeps.end());
  EXPECT_LT(first_sleeps.front(), first_sleeps.back());
}

TEST(RetryTest, TotalBackoffBudgetClampsAndStops) {
  // Schedule without budget would be 100, 200, 400, ... With a 250ms budget
  // the second sleep is clamped to 150 and the call stops after one more
  // attempt, even though max_attempts allows ten.
  RetryConfig config;
  config.max_attempts = 10;
  config.initial_backoff_ms = 100;
  config.max_backoff_ms = 10000;
  config.max_total_backoff_ms = 250;
  FakeSleeper sleeper;
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&] {
        ++calls;
        return Status::Unavailable("down");
      },
      config, sleeper.Fn());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(sleeper.slept_ms, (std::vector<int64_t>{100, 150}));
  // op runs once per attempt that was admitted: initial + one per sleep.
  EXPECT_EQ(calls, 3);
}

TEST(RetryTest, BudgetLargerThanScheduleChangesNothing) {
  RetryConfig config;
  config.max_attempts = 4;
  config.max_total_backoff_ms = 1 << 20;
  FakeSleeper sleeper;
  RetryWithBackoff([] { return Status::IoError("flaky"); }, config,
                   sleeper.Fn());
  EXPECT_EQ(sleeper.slept_ms, (std::vector<int64_t>{10, 20, 40}));
}

TEST(RetryTest, InvalidJitterAndBudgetAreInvalidArgument) {
  int calls = 0;
  const auto op = [&] {
    ++calls;
    return Status::OK();
  };
  RetryConfig config;
  config.jitter = 1.0;
  EXPECT_EQ(RetryWithBackoff(op, config).code(),
            StatusCode::kInvalidArgument);
  config = {};
  config.jitter = -0.1;
  EXPECT_EQ(RetryWithBackoff(op, config).code(),
            StatusCode::kInvalidArgument);
  config = {};
  config.max_total_backoff_ms = -5;
  EXPECT_EQ(RetryWithBackoff(op, config).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 0);
}

TEST(RetryTest, RealSleepPathWorks) {
  // Default sleeper with tiny delays: just proves the non-injected branch
  // functions end to end.
  RetryConfig config;
  config.max_attempts = 2;
  config.initial_backoff_ms = 1;
  int calls = 0;
  const Status status = RetryWithBackoff([&] {
    ++calls;
    return calls < 2 ? Status::Unavailable("once") : Status::OK();
  }, config);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace atnn
