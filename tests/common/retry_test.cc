#include "common/retry.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace atnn {
namespace {

// Collects requested sleeps instead of blocking, so backoff schedules are
// asserted exactly and tests run in microseconds.
struct FakeSleeper {
  std::vector<int64_t> slept_ms;
  std::function<void(int64_t)> Fn() {
    return [this](int64_t ms) { slept_ms.push_back(ms); };
  }
};

TEST(RetryTest, SucceedsFirstTryWithoutSleeping) {
  FakeSleeper sleeper;
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&] {
        ++calls;
        return Status::OK();
      },
      {}, sleeper.Fn());
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeper.slept_ms.empty());
}

TEST(RetryTest, RecoversAfterTransientFailures) {
  FakeSleeper sleeper;
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("warming up") : Status::OK();
      },
      {}, sleeper.Fn());
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(sleeper.slept_ms, (std::vector<int64_t>{10, 20}));
}

TEST(RetryTest, NonRetriableErrorFailsFast) {
  FakeSleeper sleeper;
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&] {
        ++calls;
        return Status::InvalidArgument("never going to work");
      },
      {}, sleeper.Fn());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeper.slept_ms.empty());
}

TEST(RetryTest, ExhaustsAttemptsAndReturnsLastError) {
  FakeSleeper sleeper;
  RetryConfig config;
  config.max_attempts = 4;
  int calls = 0;
  const Status status = RetryWithBackoff(
      [&] {
        ++calls;
        return Status::IoError("flaky disk");
      },
      config, sleeper.Fn());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(status.message(), "flaky disk");
  EXPECT_EQ(calls, 4);
  // No sleep after the final attempt.
  EXPECT_EQ(sleeper.slept_ms, (std::vector<int64_t>{10, 20, 40}));
}

TEST(RetryTest, BackoffIsCappedAtMax) {
  FakeSleeper sleeper;
  RetryConfig config;
  config.max_attempts = 6;
  config.initial_backoff_ms = 100;
  config.multiplier = 3.0;
  config.max_backoff_ms = 500;
  const Status status = RetryWithBackoff(
      [] { return Status::Unavailable("down"); }, config, sleeper.Fn());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(sleeper.slept_ms, (std::vector<int64_t>{100, 300, 500, 500, 500}));
}

TEST(RetryTest, InvalidConfigIsInvalidArgument) {
  int calls = 0;
  const auto op = [&] {
    ++calls;
    return Status::OK();
  };
  RetryConfig config;
  config.max_attempts = 0;
  EXPECT_EQ(RetryWithBackoff(op, config).code(),
            StatusCode::kInvalidArgument);
  config = {};
  config.initial_backoff_ms = -1;
  EXPECT_EQ(RetryWithBackoff(op, config).code(),
            StatusCode::kInvalidArgument);
  config = {};
  config.multiplier = 0.5;
  EXPECT_EQ(RetryWithBackoff(op, config).code(),
            StatusCode::kInvalidArgument);
  // The op must never run under an invalid config.
  EXPECT_EQ(calls, 0);
}

TEST(RetryTest, RealSleepPathWorks) {
  // Default sleeper with tiny delays: just proves the non-injected branch
  // functions end to end.
  RetryConfig config;
  config.max_attempts = 2;
  config.initial_backoff_ms = 1;
  int calls = 0;
  const Status status = RetryWithBackoff([&] {
    ++calls;
    return calls < 2 ? Status::Unavailable("once") : Status::OK();
  }, config);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace atnn
