#include "common/prefetcher.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace atnn {
namespace {

TEST(PrefetcherTest, SerialFallbackProducesInOrder) {
  std::vector<size_t> produced;
  Prefetcher<int> prefetcher(nullptr, 5, [&produced](size_t i) {
    produced.push_back(i);
    return static_cast<int>(i * 10);
  });
  std::vector<int> consumed;
  while (prefetcher.HasNext()) consumed.push_back(prefetcher.Next());
  EXPECT_EQ(consumed, (std::vector<int>{0, 10, 20, 30, 40}));
  EXPECT_EQ(produced, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(PrefetcherTest, PooledSequenceIsIdenticalToSerial) {
  ThreadPool pool(4);
  auto run = [](ThreadPool* p) {
    Prefetcher<int64_t> prefetcher(p, 64, [](size_t i) {
      return static_cast<int64_t>(i * i + 7);
    });
    std::vector<int64_t> out;
    while (prefetcher.HasNext()) out.push_back(prefetcher.Next());
    return out;
  };
  EXPECT_EQ(run(&pool), run(nullptr));
}

TEST(PrefetcherTest, ZeroItemsNeverCallsProduce) {
  ThreadPool pool(2);
  bool called = false;
  Prefetcher<int> prefetcher(&pool, 0, [&called](size_t) {
    called = true;
    return 0;
  });
  EXPECT_FALSE(prefetcher.HasNext());
  pool.Wait();
  EXPECT_FALSE(called);
}

TEST(PrefetcherTest, ProductionOverlapsConsumption) {
  // While the consumer holds item i, item i+1 must already be in flight:
  // the producer records its start before the consumer releases item i.
  ThreadPool pool(2);
  std::atomic<int> max_started{-1};
  Prefetcher<int> prefetcher(&pool, 8, [&max_started](size_t i) {
    int seen = max_started.load();
    while (seen < static_cast<int>(i) &&
           !max_started.compare_exchange_weak(seen, static_cast<int>(i))) {
    }
    return static_cast<int>(i);
  });
  bool observed_lookahead = false;
  while (prefetcher.HasNext()) {
    const int item = prefetcher.Next();
    // Give the in-flight production a moment, then check the lookahead.
    for (int spin = 0; spin < 100 && max_started.load() <= item; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (max_started.load() > item) observed_lookahead = true;
  }
  EXPECT_TRUE(observed_lookahead);
}

TEST(PrefetcherTest, DestructorDrainsInFlightProduction) {
  ThreadPool pool(2);
  std::atomic<bool> produce_ran{false};
  {
    Prefetcher<int> prefetcher(&pool, 4, [&produce_ran](size_t i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      produce_ran.store(true);
      return static_cast<int>(i);
    });
    // Destroy with item 0 still in flight; the destructor must block until
    // the closure (and its captures) are done being used.
  }
  EXPECT_TRUE(produce_ran.load());
}

}  // namespace
}  // namespace atnn
