#include "common/table_printer.h"

#include <gtest/gtest.h>

namespace atnn {
namespace {

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter table("Title");
  table.SetHeader({"Model", "AUC"});
  table.AddRow({"GBDT", "0.6149"});
  table.AddRow({"ATNN", "0.7121"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("Title"), std::string::npos);
  EXPECT_NE(text.find("| Model |"), std::string::npos);
  EXPECT_NE(text.find("| GBDT  |"), std::string::npos);
  EXPECT_NE(text.find("0.7121"), std::string::npos);
}

TEST(TablePrinterTest, CsvEscapesSpecialCharacters) {
  TablePrinter table("");
  table.SetHeader({"name", "note"});
  table.AddRow({"a,b", "say \"hi\""});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(0.71214, 4), "0.7121");
  EXPECT_EQ(TablePrinter::Num(10.5, 2), "10.50");
  EXPECT_EQ(TablePrinter::Num(-6.69, 2), "-6.69");
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter table("t");
  table.SetHeader({"only"});
  const std::string text = table.ToString();
  EXPECT_NE(text.find("| only |"), std::string::npos);
}

}  // namespace
}  // namespace atnn
