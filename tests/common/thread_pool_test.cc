#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace atnn {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&touched](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(8);
  int sum = 0;  // no atomics needed: inline execution is single-threaded
  pool.ParallelFor(3, [&sum](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 3);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolDeathTest, ZeroThreadsIsFatal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(ThreadPool pool(0), "at least one worker");
}

TEST(ThreadPoolTest, SubmitFromManyThreadsRunsEverything) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 250; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, TasksMayFanOutSubtasksAndWaitCoversThem) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  // Each root task submits children while it is still in flight, so the
  // in-flight count never reaches zero before the children are queued:
  // Wait() must observe the whole tree.
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&pool, &counter] {
      counter.fetch_add(1);
      for (int c = 0; c < 4; ++c) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 8 * (1 + 4));
}

TEST(ThreadPoolTest, WaitReturnsOnlyWhenConcurrentSubmittersDrain) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  std::atomic<bool> producer_done{false};
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&completed] { completed.fetch_add(1); });
    }
    producer_done.store(true);
  });
  // Wait racing with the producer: per the contract it returns only once
  // the pool is idle, which (because the producer keeps the queue nonempty
  // until it finishes) implies every task it managed to submit has run.
  pool.Wait();
  producer.join();
  pool.Wait();  // cover anything submitted after the first Wait returned
  EXPECT_TRUE(producer_done.load());
  EXPECT_EQ(completed.load(), 100);
}

TEST(ThreadPoolTest, DestructionJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run or drop nothing unsafely.
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace atnn
