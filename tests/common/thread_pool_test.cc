#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace atnn {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  pool.ParallelFor(1000, [&touched](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallRangeRunsInline) {
  ThreadPool pool(8);
  int sum = 0;  // no atomics needed: inline execution is single-threaded
  pool.ParallelFor(3, [&sum](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 3);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadPoolWorks) {
  ThreadPool pool(1);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructionJoinsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait(): the destructor must still run or drop nothing unsafely.
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace atnn
