#include "common/serialize.h"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/crc32.h"

namespace atnn {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SerializeTest, RoundTripAllTypes) {
  BinaryWriter writer;
  writer.WriteU32(7);
  writer.WriteU64(1ULL << 40);
  writer.WriteI64(-12345);
  writer.WriteF32(1.5f);
  writer.WriteF64(-2.25);
  writer.WriteString("hello");
  writer.WriteFloatVector({1.0f, 2.0f, 3.0f});

  BinaryReader reader(writer.buffer());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  float f32 = 0;
  double f64 = 0;
  std::string str;
  std::vector<float> vec;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadF32(&f32).ok());
  ASSERT_TRUE(reader.ReadF64(&f64).ok());
  ASSERT_TRUE(reader.ReadString(&str).ok());
  ASSERT_TRUE(reader.ReadFloatVector(&vec).ok());
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 1ULL << 40);
  EXPECT_EQ(i64, -12345);
  EXPECT_EQ(f32, 1.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_EQ(str, "hello");
  EXPECT_EQ(vec, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerializeTest, ReadPastEndIsCorruption) {
  BinaryWriter writer;
  writer.WriteU32(1);
  BinaryReader reader(writer.buffer());
  uint64_t value = 0;
  Status status = reader.ReadU64(&value);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(SerializeTest, StringLengthBeyondBufferIsCorruption) {
  BinaryWriter writer;
  writer.WriteU64(1000);  // claims a 1000-byte string that is not there
  BinaryReader reader(writer.buffer());
  std::string value;
  EXPECT_EQ(reader.ReadString(&value).code(), StatusCode::kCorruption);
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = TempPath("serialize_roundtrip.bin");
  BinaryWriter writer;
  writer.WriteString("payload");
  writer.WriteF64(3.5);
  ASSERT_TRUE(writer.FlushToFile(path).ok());

  auto reader_or = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  std::string str;
  double value = 0;
  ASSERT_TRUE(reader_or->ReadString(&str).ok());
  ASSERT_TRUE(reader_or->ReadF64(&value).ok());
  EXPECT_EQ(str, "payload");
  EXPECT_EQ(value, 3.5);
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  auto reader_or = BinaryReader::FromFile("/nonexistent/path/file.bin");
  EXPECT_EQ(reader_or.status().code(), StatusCode::kIoError);
}

TEST(SerializeTest, BadMagicIsCorruption) {
  const std::string path = TempPath("serialize_bad_magic.bin");
  {
    std::ofstream file(path, std::ios::binary);
    file << "NOTMAGIC and then some bytes";
  }
  auto reader_or = BinaryReader::FromFile(path);
  EXPECT_EQ(reader_or.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedPayloadIsCorruption) {
  const std::string path = TempPath("serialize_truncated.bin");
  BinaryWriter writer;
  writer.WriteFloatVector(std::vector<float>(100, 1.0f));
  ASSERT_TRUE(writer.FlushToFile(path).ok());
  // Chop the file.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto reader_or = BinaryReader::FromFile(path);
  EXPECT_EQ(reader_or.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncationAtEveryByteBoundaryFailsCleanly) {
  // Serialize a mixed-type payload, then replay the load with the file cut
  // at every possible byte boundary. Every prefix must come back as a clean
  // Status — no crash, no partial read accepted as complete.
  const std::string path = TempPath("serialize_fuzz_truncate.bin");
  BinaryWriter writer;
  writer.WriteU32(0xDEADBEEF);
  writer.WriteString("truncation fuzz subject");
  writer.WriteFloatVector({1.0f, 2.0f, 3.0f, 4.0f});
  writer.WriteI64(-1);
  writer.WriteF64(6.25);
  ASSERT_TRUE(writer.FlushToFile(path).ok());
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 16u);

  for (size_t cut = 0; cut < full.size(); ++cut) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    auto reader_or = BinaryReader::FromFile(path);
    // The header length field makes any truncation detectable at open time.
    EXPECT_FALSE(reader_or.ok()) << "prefix of " << cut << " bytes accepted";
    if (reader_or.ok()) continue;
    EXPECT_EQ(reader_or.status().code(), StatusCode::kCorruption)
        << "prefix " << cut << ": " << reader_or.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(Crc32Test, MatchesKnownVector) {
  // The standard CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "incremental checksum subject";
  const uint32_t one_shot = Crc32(data.data(), data.size());
  uint32_t rolling = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    rolling = Crc32(data.data() + i, 1, rolling);
  }
  EXPECT_EQ(rolling, one_shot);
}

TEST(SerializeTest, BitFlipAnywhereInFileIsCorruption) {
  // Flip a single bit at every byte position of a written container and
  // require every variant to be rejected. Header flips trip the magic or
  // length checks; payload and footer flips must be caught by the CRC.
  const std::string path = TempPath("serialize_bitflip.bin");
  BinaryWriter writer;
  writer.WriteU32(42);
  writer.WriteString("bitflip fuzz subject");
  writer.WriteFloatVector({0.5f, -1.5f, 2.0f});
  ASSERT_TRUE(writer.FlushToFile(path).ok());
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 20u);

  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string corrupted = full;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x10);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupted.data(),
                static_cast<std::streamsize>(corrupted.size()));
    }
    auto reader_or = BinaryReader::FromFile(path);
    ASSERT_FALSE(reader_or.ok()) << "bit flip at byte " << pos << " accepted";
    EXPECT_EQ(reader_or.status().code(), StatusCode::kCorruption)
        << "byte " << pos << ": " << reader_or.status().ToString();
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, FlushToFileReplacesExistingFileAtomically) {
  // Overwriting must go through a temp file: after the flush the target
  // holds exactly the new container, and no temp sibling is left behind.
  const std::string path = TempPath("serialize_atomic.bin");
  {
    BinaryWriter old_writer;
    old_writer.WriteString("old contents");
    ASSERT_TRUE(old_writer.FlushToFile(path).ok());
  }
  BinaryWriter writer;
  writer.WriteString("new contents");
  ASSERT_TRUE(writer.FlushToFile(path).ok());

  auto reader_or = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  std::string value;
  ASSERT_TRUE(reader_or->ReadString(&value).ok());
  EXPECT_EQ(value, "new contents");
  EXPECT_TRUE(reader_or->AtEnd());

  std::ifstream temp_probe(path + ".tmp." + std::to_string(getpid()));
  EXPECT_FALSE(temp_probe.is_open()) << "temp file left behind";
  std::remove(path.c_str());
}

TEST(SerializeTest, FlushToUnwritableDirectoryIsIoError) {
  BinaryWriter writer;
  writer.WriteU32(1);
  EXPECT_EQ(writer.FlushToFile("/nonexistent/dir/file.bin").code(),
            StatusCode::kIoError);
}

TEST(SerializeTest, BitFlippedHugeLengthsDoNotOverflowBoundsChecks) {
  // A flipped high bit in a length prefix produces sizes near 2^64 (string)
  // or above 2^62 (float vector, where naive `size * sizeof(float)` wraps).
  // Both must be caught by the overflow-safe bounds checks.
  {
    BinaryWriter writer;
    writer.WriteU64(UINT64_MAX);  // string "length"
    BinaryReader reader(writer.buffer());
    std::string value;
    EXPECT_EQ(reader.ReadString(&value).code(), StatusCode::kCorruption);
  }
  {
    BinaryWriter writer;
    writer.WriteU64(UINT64_MAX / 2);
    BinaryReader reader(writer.buffer());
    std::string value;
    EXPECT_EQ(reader.ReadString(&value).code(), StatusCode::kCorruption);
  }
  {
    BinaryWriter writer;
    writer.WriteU64(1ULL << 62);  // 2^62 floats: byte count wraps to 0
    writer.WriteF32(1.0f);
    BinaryReader reader(writer.buffer());
    std::vector<float> values;
    EXPECT_EQ(reader.ReadFloatVector(&values).code(),
              StatusCode::kCorruption);
  }
  {
    BinaryWriter writer;
    writer.WriteU64((1ULL << 62) + 1);  // wraps to 4 bytes: exactly one float
    writer.WriteF32(1.0f);
    BinaryReader reader(writer.buffer());
    std::vector<float> values;
    EXPECT_EQ(reader.ReadFloatVector(&values).code(),
              StatusCode::kCorruption);
  }
}

}  // namespace
}  // namespace atnn
