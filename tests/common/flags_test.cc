#include "common/flags.h"

#include <gtest/gtest.h>

namespace atnn {
namespace {

FlagParser MakeParser() {
  FlagParser parser("test tool");
  parser.AddString("name", "default", "a string");
  parser.AddInt64("count", 42, "an int");
  parser.AddDouble("rate", 0.5, "a double");
  parser.AddBool("verbose", false, "a bool");
  return parser;
}

Status ParseArgs(FlagParser* parser, std::vector<const char*> args) {
  return parser->Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, DefaultsWhenUnset) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {}).ok());
  EXPECT_EQ(parser.GetString("name"), "default");
  EXPECT_EQ(parser.GetInt64("count"), 42);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 0.5);
  EXPECT_FALSE(parser.GetBool("verbose"));
  EXPECT_FALSE(parser.IsSet("name"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--name=atnn", "--count=7",
                                  "--rate=0.125", "--verbose=true"})
                  .ok());
  EXPECT_EQ(parser.GetString("name"), "atnn");
  EXPECT_EQ(parser.GetInt64("count"), 7);
  EXPECT_DOUBLE_EQ(parser.GetDouble("rate"), 0.125);
  EXPECT_TRUE(parser.GetBool("verbose"));
  EXPECT_TRUE(parser.IsSet("count"));
}

TEST(FlagParserTest, SpaceSyntaxAndBareBool) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(
      ParseArgs(&parser, {"--count", "9", "--verbose", "--name", "x"}).ok());
  EXPECT_EQ(parser.GetInt64("count"), 9);
  EXPECT_TRUE(parser.GetBool("verbose"));
  EXPECT_EQ(parser.GetString("name"), "x");
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"first", "--count=1", "second"}).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser parser = MakeParser();
  EXPECT_EQ(ParseArgs(&parser, {"--bogus=1"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, TypeErrorsRejected) {
  {
    FlagParser parser = MakeParser();
    EXPECT_FALSE(ParseArgs(&parser, {"--count=abc"}).ok());
  }
  {
    FlagParser parser = MakeParser();
    EXPECT_FALSE(ParseArgs(&parser, {"--rate=xyz"}).ok());
  }
  {
    FlagParser parser = MakeParser();
    EXPECT_FALSE(ParseArgs(&parser, {"--verbose=maybe"}).ok());
  }
}

// Regression: strtod sets ERANGE on subnormal results; the old check
// treated any errno as a parse failure, so perfectly representable tiny
// doubles were rejected. Underflow-to-subnormal (or to zero) is a valid
// value, not an error.
TEST(FlagParserTest, SubnormalDoubleAccepted) {
  {
    FlagParser parser = MakeParser();
    ASSERT_TRUE(ParseArgs(&parser, {"--rate=1e-42"}).ok());
    EXPECT_GT(parser.GetDouble("rate"), 0.0);
    EXPECT_LT(parser.GetDouble("rate"), 1e-41);
  }
  {
    // Smallest negative subnormal: underflows all the way but still
    // round-trips as a signed (possibly zero) value.
    FlagParser parser = MakeParser();
    ASSERT_TRUE(ParseArgs(&parser, {"--rate=-4.9e-324"}).ok());
    EXPECT_LE(parser.GetDouble("rate"), 0.0);
  }
}

TEST(FlagParserTest, OverflowingDoubleRejected) {
  FlagParser parser = MakeParser();
  EXPECT_EQ(ParseArgs(&parser, {"--rate=1e999"}).code(),
            StatusCode::kInvalidArgument);
}

// inf/nan parse cleanly through strtod but are never a sane flag value —
// they used to sail straight into learning rates and quotas.
TEST(FlagParserTest, NonFiniteDoubleRejected) {
  for (const char* arg :
       {"--rate=inf", "--rate=-inf", "--rate=nan", "--rate=INF",
        "--rate=NaN"}) {
    FlagParser parser = MakeParser();
    EXPECT_EQ(ParseArgs(&parser, {arg}).code(),
              StatusCode::kInvalidArgument)
        << arg;
  }
}

TEST(FlagParserTest, MissingValueRejected) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(&parser, {"--count"}).ok());
}

TEST(FlagParserTest, UsageListsFlags) {
  FlagParser parser = MakeParser();
  const std::string usage = parser.Usage();
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("default 42"), std::string::npos);
  EXPECT_NE(usage.find("test tool"), std::string::npos);
}

}  // namespace
}  // namespace atnn
