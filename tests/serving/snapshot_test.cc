#include "serving/model_snapshot.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/layers.h"

namespace atnn::serving {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Two-layer module used as the snapshot subject.
class ToyModel : public nn::Module {
 public:
  explicit ToyModel(uint64_t seed)
      : rng_(seed),
        dense_("toy.dense", 4, 3, nn::Activation::kRelu, &rng_),
        bag_("toy", {{"field", 10, 2}}, &rng_) {}

  void CollectParameters(std::vector<nn::Parameter*>* out) override {
    dense_.CollectParameters(out);
    bag_.CollectParameters(out);
  }

  nn::Var Forward(const nn::Tensor& input,
                  const std::vector<int64_t>& ids) const {
    return nn::ConcatCols({dense_.Forward(nn::Constant(input)),
                           bag_.Forward({ids}, nn::Tensor())});
  }

 private:
  Rng rng_;
  nn::Dense dense_;
  nn::EmbeddingBag bag_;
};

TEST(ModelSnapshotTest, RoundTripReproducesPredictionsBitwise) {
  const std::string path = TempPath("snapshot_roundtrip.bin");
  ToyModel original(1);
  ToyModel restored(2);  // different init: must be overwritten by load

  const nn::Tensor input = nn::Tensor::Ones(2, 4);
  const std::vector<int64_t> ids = {3, 7};
  const nn::Tensor before = original.Forward(input, ids).value();

  ASSERT_TRUE(SaveModelSnapshot(&original, path, "toy-v1").ok());
  ASSERT_TRUE(LoadModelSnapshot(&restored, path, "toy-v1").ok());
  const nn::Tensor after = restored.Forward(input, ids).value();

  ASSERT_TRUE(before.SameShape(after));
  for (int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_EQ(before.data()[i], after.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(ModelSnapshotTest, TagMismatchRejected) {
  const std::string path = TempPath("snapshot_tag.bin");
  ToyModel model(1);
  ASSERT_TRUE(SaveModelSnapshot(&model, path, "toy-v1").ok());
  const Status status = LoadModelSnapshot(&model, path, "toy-v2");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(ModelSnapshotTest, ArchitectureMismatchRejected) {
  // A model with a different parameter set must refuse the snapshot.
  class OtherModel : public nn::Module {
   public:
    OtherModel() : rng_(3), dense_("other.dense", 4, 3,
                                   nn::Activation::kRelu, &rng_) {}
    void CollectParameters(std::vector<nn::Parameter*>* out) override {
      dense_.CollectParameters(out);
    }

   private:
    Rng rng_;
    nn::Dense dense_;
  };

  const std::string path = TempPath("snapshot_arch.bin");
  ToyModel model(1);
  ASSERT_TRUE(SaveModelSnapshot(&model, path, "toy-v1").ok());
  OtherModel other;
  const Status status = LoadModelSnapshot(&other, path, "toy-v1");
  EXPECT_FALSE(status.ok());
  std::remove(path.c_str());
}

TEST(ModelSnapshotTest, MissingFileIsIoError) {
  ToyModel model(1);
  const Status status =
      LoadModelSnapshot(&model, "/nonexistent/snap.bin", "toy-v1");
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

TEST(ModelSnapshotTest, RetryingLoaderRetriesTransientsThenSucceeds) {
  // A snapshot that appears mid-run (checkpoint rotation): the first
  // attempts hit a missing file (retriable IoError); the file materializes
  // before the attempt budget runs out and the load lands.
  const std::string path = TempPath("snapshot_retry_appears.bin");
  std::remove(path.c_str());
  ToyModel original(1);
  ToyModel restored(2);

  RetryConfig retry;
  retry.max_attempts = 3;
  std::vector<int64_t> backoffs;
  const auto capture_sleep = [&](int64_t ms) {
    backoffs.push_back(ms);
    // The file shows up while the loader is backing off.
    if (backoffs.size() == 2) {
      ASSERT_TRUE(SaveModelSnapshot(&original, path, "toy-v1").ok());
    }
  };
  const Status status =
      LoadModelSnapshotWithRetry(&restored, path, "toy-v1", retry,
                                 capture_sleep);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(backoffs.size(), 2u);  // two failures, success on attempt 3
  std::remove(path.c_str());
}

TEST(ModelSnapshotTest, RetryingLoaderFailsFastOnPermanentErrors) {
  // A tag mismatch is not transient: retrying would spin on a wrong file.
  const std::string path = TempPath("snapshot_retry_tag.bin");
  ToyModel original(1);
  ASSERT_TRUE(SaveModelSnapshot(&original, path, "toy-v1").ok());

  ToyModel restored(2);
  std::vector<int64_t> backoffs;
  const Status status = LoadModelSnapshotWithRetry(
      &restored, path, "other-tag", {},
      [&](int64_t ms) { backoffs.push_back(ms); });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(backoffs.empty()) << "permanent error must not back off";
  std::remove(path.c_str());
}

TEST(ModelSnapshotTest, RetryingLoaderGivesUpAfterAttemptBudget) {
  ToyModel model(1);
  RetryConfig retry;
  retry.max_attempts = 4;
  std::vector<int64_t> backoffs;
  const Status status = LoadModelSnapshotWithRetry(
      &model, "/nonexistent/snap.bin", "toy-v1", retry,
      [&](int64_t ms) { backoffs.push_back(ms); });
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_EQ(backoffs.size(), 3u);  // sleeps between the 4 attempts only
}

TEST(ModelSnapshotTest, TruncationAtEveryByteBoundaryLoadsCleanly) {
  // A real model snapshot cut at every possible byte boundary: every prefix
  // must be rejected with a clean Status (a crashed loader here would take
  // the serving process down with it) and must leave the target model's
  // weights untouched.
  const std::string path = TempPath("snapshot_fuzz_truncate.bin");
  ToyModel original(1);
  ASSERT_TRUE(SaveModelSnapshot(&original, path, "toy-v1").ok());
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    full.assign((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(full.size(), 0u);

  ToyModel restored(2);
  std::vector<nn::Parameter*> params;
  restored.CollectParameters(&params);
  std::vector<float> before;
  for (const nn::Parameter* param : params) {
    const nn::Tensor& value = param->value();
    before.insert(before.end(), value.data(), value.data() + value.numel());
  }

  for (size_t cut = 0; cut < full.size(); ++cut) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(cut));
    }
    const Status status = LoadModelSnapshot(&restored, path, "toy-v1");
    EXPECT_FALSE(status.ok()) << "prefix of " << cut << " bytes accepted";
  }

  // No partial load leaked into the parameters.
  size_t offset = 0;
  for (const nn::Parameter* param : params) {
    const nn::Tensor& value = param->value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      ASSERT_EQ(value.data()[i], before[offset + static_cast<size_t>(i)]);
    }
    offset += static_cast<size_t>(value.numel());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace atnn::serving
