#include "serving/compute_flags.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nn/kernels.h"

namespace atnn::serving {
namespace {

/// Every test parses a fresh parser carrying only the shared compute flags
/// and restores the process-global kernel backend afterwards (resolving
/// --atnn_kernel applies it for real).
class ComputeFlagsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ASSERT_TRUE(nn::kernels::SetBackendFromString("auto").ok());
  }

  static StatusOr<ComputeOptions> Resolve(std::vector<const char*> args) {
    FlagParser flags("test tool");
    AddComputeFlags(&flags, "precision help for this tool");
    const Status parsed =
        flags.Parse(static_cast<int>(args.size()), args.data());
    if (!parsed.ok()) return parsed;
    return ResolveComputeFlags(flags);
  }
};

TEST_F(ComputeFlagsTest, DefaultsAreFp32AutoCompileAutoBackend) {
  const auto options = Resolve({});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->precision, quant::Precision::kFp32);
  EXPECT_EQ(options->compile, nn::ir::CompileMode::kAuto);
  EXPECT_FALSE(options->backend_name.empty());
}

TEST_F(ComputeFlagsTest, ExplicitValuesResolve) {
  const auto options = Resolve({"--atnn_kernel=scalar",
                                "--atnn_precision=int8",
                                "--atnn_compile=off"});
  ASSERT_TRUE(options.ok()) << options.status().ToString();
  EXPECT_EQ(options->precision, quant::Precision::kInt8);
  EXPECT_EQ(options->compile, nn::ir::CompileMode::kOff);
  EXPECT_EQ(options->backend_name, "scalar");

  const auto on = Resolve({"--atnn_compile=on"});
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on->compile, nn::ir::CompileMode::kOn);
}

TEST_F(ComputeFlagsTest, JunkKernelIsInvalidArgument) {
  const auto options = Resolve({"--atnn_kernel=quantum"});
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ComputeFlagsTest, JunkPrecisionIsInvalidArgument) {
  const auto options = Resolve({"--atnn_precision=fp7"});
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ComputeFlagsTest, JunkCompileModeIsInvalidArgumentNamingTheFlag) {
  const auto options = Resolve({"--atnn_compile=maybe"});
  EXPECT_EQ(options.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(options.status().ToString().find("--atnn_compile"),
            std::string::npos)
      << options.status().ToString();
}

TEST_F(ComputeFlagsTest, UnknownFlagStillRejectedByTheParser) {
  const auto options = Resolve({"--atnn_compiler=on"});  // typo'd name
  EXPECT_FALSE(options.ok());
}

}  // namespace
}  // namespace atnn::serving
