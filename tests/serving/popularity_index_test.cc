#include "serving/popularity_index.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace atnn::serving {
namespace {

TEST(PopularityIndexTest, UpsertAndLookup) {
  PopularityIndex index;
  EXPECT_TRUE(index.empty());
  index.Upsert(42, 0.7);
  index.Upsert(42, 0.9);  // overwrite
  EXPECT_EQ(index.size(), 1u);
  auto score = index.Score(42);
  ASSERT_TRUE(score.ok());
  EXPECT_DOUBLE_EQ(score.value(), 0.9);
}

TEST(PopularityIndexTest, UnknownIdIsNotFound) {
  PopularityIndex index;
  EXPECT_EQ(index.Score(1).status().code(), StatusCode::kNotFound);
}

TEST(PopularityIndexTest, TopKReturnsDescendingScores) {
  PopularityIndex index;
  index.BulkLoad({1, 2, 3, 4, 5}, {0.5, 0.9, 0.1, 0.7, 0.3});
  const auto top = index.TopK(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 2);
  EXPECT_EQ(top[1].first, 4);
  EXPECT_EQ(top[2].first, 1);
}

TEST(PopularityIndexTest, TopKTieBreaksById) {
  PopularityIndex index;
  index.BulkLoad({9, 3, 7}, {0.5, 0.5, 0.5});
  const auto top = index.TopK(3);
  EXPECT_EQ(top[0].first, 3);
  EXPECT_EQ(top[1].first, 7);
  EXPECT_EQ(top[2].first, 9);
}

TEST(PopularityIndexTest, TopKLargerThanSize) {
  PopularityIndex index;
  index.BulkLoad({1}, {0.2});
  EXPECT_EQ(index.TopK(100).size(), 1u);
  EXPECT_TRUE(index.TopK(0).empty());
}

TEST(PopularityIndexTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/pop_index.bin";
  PopularityIndex index;
  index.BulkLoad({10, 20, 30}, {0.1, 0.3, 0.2});
  ASSERT_TRUE(index.SaveToFile(path).ok());
  auto loaded_or = PopularityIndex::LoadFromFile(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  EXPECT_EQ(loaded_or->size(), 3u);
  EXPECT_DOUBLE_EQ(loaded_or->Score(20).value(), 0.3);
  const auto top = loaded_or->TopK(1);
  EXPECT_EQ(top[0].first, 20);
  std::remove(path.c_str());
}

TEST(PopularityIndexTest, LoadMissingFileFails) {
  EXPECT_FALSE(PopularityIndex::LoadFromFile("/no/such/file.bin").ok());
}

}  // namespace
}  // namespace atnn::serving
