#include "serving/event_stream.h"

#include <gtest/gtest.h>

namespace atnn::serving {
namespace {

BehaviorEvent Event(int64_t ts, int64_t item, EventType type,
                    double amount = 0.0) {
  BehaviorEvent event;
  event.timestamp = ts;
  event.user_id = 1;
  event.item_id = item;
  event.type = type;
  event.amount = amount;
  return event;
}

TEST(EventAggregatorTest, CountsByType) {
  EventAggregator agg;
  ASSERT_TRUE(agg.Ingest(Event(1, 7, EventType::kImpression)).ok());
  ASSERT_TRUE(agg.Ingest(Event(2, 7, EventType::kClick)).ok());
  ASSERT_TRUE(agg.Ingest(Event(3, 7, EventType::kClick)).ok());
  ASSERT_TRUE(agg.Ingest(Event(4, 7, EventType::kAddToCart)).ok());
  ASSERT_TRUE(agg.Ingest(Event(5, 7, EventType::kAddToFavorite)).ok());
  ASSERT_TRUE(agg.Ingest(Event(6, 7, EventType::kPurchase, 99.5)).ok());

  const auto counters = agg.counters(7);
  EXPECT_EQ(counters.impressions, 1);
  EXPECT_EQ(counters.clicks, 2);
  EXPECT_EQ(counters.carts, 1);
  EXPECT_EQ(counters.favorites, 1);
  EXPECT_EQ(counters.purchases, 1);
  EXPECT_DOUBLE_EQ(counters.gmv, 99.5);
  EXPECT_EQ(counters.first_seen_ts, 1);
  EXPECT_EQ(counters.last_seen_ts, 6);
  EXPECT_EQ(agg.total_events(), 6);
}

TEST(EventAggregatorTest, UnknownItemHasZeroCounters) {
  EventAggregator agg;
  const auto counters = agg.counters(123);
  EXPECT_EQ(counters.clicks, 0);
  EXPECT_EQ(counters.first_seen_ts, -1);
}

TEST(EventAggregatorTest, RejectsOutOfOrderEvents) {
  EventAggregator agg;
  ASSERT_TRUE(agg.Ingest(Event(10, 1, EventType::kClick)).ok());
  const Status status = agg.Ingest(Event(5, 1, EventType::kClick));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // The failed event must not have been counted.
  EXPECT_EQ(agg.counters(1).clicks, 1);
  EXPECT_EQ(agg.total_events(), 1);
}

TEST(EventAggregatorTest, EqualTimestampsAllowed) {
  EventAggregator agg;
  ASSERT_TRUE(agg.Ingest(Event(10, 1, EventType::kClick)).ok());
  EXPECT_TRUE(agg.Ingest(Event(10, 2, EventType::kClick)).ok());
}

TEST(EventAggregatorTest, RejectsNegativeAmounts) {
  EventAggregator agg;
  const Status status = agg.Ingest(Event(1, 1, EventType::kPurchase, -5.0));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(EventAggregatorTest, DerivedRates) {
  EventAggregator agg;
  ASSERT_TRUE(agg.Ingest(Event(1, 3, EventType::kImpression)).ok());
  ASSERT_TRUE(agg.Ingest(Event(2, 3, EventType::kImpression)).ok());
  ASSERT_TRUE(agg.Ingest(Event(3, 3, EventType::kClick)).ok());
  ASSERT_TRUE(agg.Ingest(Event(4, 3, EventType::kPurchase, 10)).ok());
  const auto counters = agg.counters(3);
  EXPECT_DOUBLE_EQ(counters.Ctr(), 0.5);
  EXPECT_DOUBLE_EQ(counters.ConversionRate(), 1.0);
  // No division by zero for fresh items.
  EXPECT_DOUBLE_EQ(agg.counters(99).Ctr(), 0.0);
}

TEST(EventAggregatorTest, GraduationThreshold) {
  EventAggregator agg;
  int64_t ts = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(agg.Ingest(Event(++ts, 1, EventType::kClick)).ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(agg.Ingest(Event(++ts, 2, EventType::kClick)).ok());
  }
  const auto graduated = agg.ItemsWithClicksAtLeast(5);
  ASSERT_EQ(graduated.size(), 1u);
  EXPECT_EQ(graduated[0], 1);
}

}  // namespace
}  // namespace atnn::serving
