#include "serving/online_scorer.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace atnn::serving {
namespace {

BehaviorEvent Event(int64_t ts, int64_t item, EventType type) {
  BehaviorEvent event;
  event.timestamp = ts;
  event.user_id = 1;
  event.item_id = item;
  event.type = type;
  return event;
}

TEST(OnlineScorerTest, NoEvidenceReturnsPrior) {
  OnlineScorer scorer;
  scorer.SetPrior(1, 0.23);
  EXPECT_DOUBLE_EQ(scorer.Score(1).value(), 0.23);
  EXPECT_DOUBLE_EQ(scorer.EvidenceWeight(1).value(), 0.0);
}

TEST(OnlineScorerTest, UnknownItemIsNotFound) {
  OnlineScorer scorer;
  EXPECT_EQ(scorer.Score(9).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(scorer.Observe(Event(1, 9, EventType::kClick)).code(),
            StatusCode::kNotFound);
}

TEST(OnlineScorerTest, EvidencePullsTowardObservedCtr) {
  OnlineScorer::Config config;
  config.prior_strength = 50.0;
  OnlineScorer scorer(config);
  scorer.SetPrior(1, 0.5);  // optimistic prior
  // 100 impressions, 10 clicks -> observed CTR 0.1.
  int64_t ts = 0;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(scorer.Observe(Event(++ts, 1, EventType::kImpression)).ok());
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(scorer.Observe(Event(++ts, 1, EventType::kClick)).ok());
  }
  // Posterior = (50*0.5 + 10) / (50 + 100) = 35/150.
  EXPECT_NEAR(scorer.Score(1).value(), 35.0 / 150.0, 1e-12);
  const double score = scorer.Score(1).value();
  EXPECT_LT(score, 0.5);
  EXPECT_GT(score, 0.1);
  EXPECT_NEAR(scorer.EvidenceWeight(1).value(), 100.0 / 150.0, 1e-12);
}

TEST(OnlineScorerTest, HeavyTrafficDominatesPrior) {
  OnlineScorer scorer;  // prior strength 100
  scorer.SetPrior(1, 0.5);
  int64_t ts = 0;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(scorer.Observe(Event(++ts, 1, EventType::kImpression)).ok());
    if (i % 50 == 0) {
      ASSERT_TRUE(scorer.Observe(Event(++ts, 1, EventType::kClick)).ok());
    }
  }
  EXPECT_NEAR(scorer.Score(1).value(), 0.02, 0.01);
  EXPECT_GT(scorer.EvidenceWeight(1).value(), 0.95);
}

TEST(OnlineScorerTest, ResettingPriorKeepsEvidence) {
  OnlineScorer::Config config;
  config.prior_strength = 10.0;
  OnlineScorer scorer(config);
  scorer.SetPrior(1, 0.1);
  int64_t ts = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(scorer.Observe(Event(++ts, 1, EventType::kImpression)).ok());
  }
  scorer.SetPrior(1, 0.9);  // a retrained model pushes a new prior
  // (10*0.9 + 0) / (10 + 10) = 0.45.
  EXPECT_NEAR(scorer.Score(1).value(), 0.45, 1e-12);
}

TEST(OnlineScorerTest, ExportIndexRanksPosterior) {
  OnlineScorer scorer;
  scorer.SetPrior(1, 0.2);
  scorer.SetPrior(2, 0.6);
  scorer.SetPrior(3, 0.4);
  PopularityIndex index;
  scorer.ExportIndex(&index);
  ASSERT_EQ(index.size(), 3u);
  const auto top = index.TopK(1);
  EXPECT_EQ(top[0].first, 2);
}

TEST(OnlineScorerTest, OutOfOrderEventsRejected) {
  OnlineScorer scorer;
  scorer.SetPrior(1, 0.5);
  ASSERT_TRUE(scorer.Observe(Event(10, 1, EventType::kClick)).ok());
  EXPECT_EQ(scorer.Observe(Event(5, 1, EventType::kClick)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ConcurrentOnlineScorerTest, RejectsDecreasingTimestamps) {
  ConcurrentOnlineScorer scorer;
  scorer.SetPrior(1, 0.5);
  ASSERT_TRUE(scorer.Observe(Event(10, 1, EventType::kClick)).ok());
  EXPECT_EQ(scorer.Observe(Event(5, 1, EventType::kClick)).code(),
            StatusCode::kFailedPrecondition);
  // The rejected event must not have advanced the stream: ts 10 is still
  // the watermark, so a later event at 11 is accepted.
  EXPECT_TRUE(scorer.Observe(Event(11, 1, EventType::kImpression)).ok());
}

TEST(ConcurrentOnlineScorerTest, ConcurrentObserversAndReadersAgree) {
  OnlineScorer::Config config;
  config.prior_strength = 10.0;
  ConcurrentOnlineScorer scorer(config);
  scorer.SetPrior(1, 0.5);

  // Writers share a global timestamp sequence; the scorer's monotonicity
  // check accepts an event only if its timestamp is >= the watermark, so
  // some interleavings are rejected — count what actually landed and check
  // the posterior against that.
  std::atomic<int64_t> clock{0};
  std::atomic<int64_t> accepted_impressions{0};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        const int64_t ts = clock.fetch_add(1) + 1;
        if (scorer.Observe(Event(ts, 1, EventType::kImpression)).ok()) {
          accepted_impressions.fetch_add(1);
        }
      }
    });
  }
  std::thread reader([&scorer] {
    for (int i = 0; i < 200; ++i) {
      const auto score = scorer.Score(1);
      ASSERT_TRUE(score.ok());
      EXPECT_GT(score.value(), 0.0);
      EXPECT_LE(score.value(), 0.5);
    }
  });
  for (auto& writer : writers) writer.join();
  reader.join();

  const double n = static_cast<double>(accepted_impressions.load());
  // All accepted events were impressions: posterior = 10*0.5 / (10 + n).
  EXPECT_NEAR(scorer.Score(1).value(), 5.0 / (10.0 + n), 1e-12);
}

}  // namespace
}  // namespace atnn::serving
