// StreamingTrainer: the incremental train-to-serve loop. The two contracts
// under test are determinism (same seed + same stream => bitwise-identical
// published snapshots, and with the streaming switches off the per-day
// loss history is exactly the batch trainer's) and resilience (publish
// rejection is recorded, never fatal).

#include "stream/streaming_trainer.h"

#include <cmath>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/feature_adapter.h"
#include "core/trainer.h"
#include "data/tmall.h"
#include "nn/parameter.h"
#include "runtime/inference_runtime.h"
#include "sim/arrival_stream.h"

namespace atnn::stream {
namespace {

data::TmallDataset MakeTinyWorld() {
  data::TmallConfig config;
  config.num_users = 150;
  config.num_items = 240;
  config.num_new_items = 60;
  config.num_interactions = 5000;
  config.seed = 20240601;
  data::TmallDataset dataset = data::GenerateTmallDataset(config);
  core::NormalizeTmallInPlace(&dataset);
  return dataset;
}

StreamingTrainerConfig TinyTrainerConfig() {
  StreamingTrainerConfig config;
  config.model.tower.kind = nn::TowerKind::kDeepCross;
  config.model.tower.deep_dims = {32, 16};
  config.model.tower.cross_layers = 2;
  config.model.tower.output_dim = 12;
  config.model.seed = 5;
  config.train.epochs = 1;
  config.train.batch_size = 64;
  config.train.learning_rate = 1e-3f;
  config.train.seed = 99;
  config.active_user_group = 50;
  return config;
}

sim::ArrivalStreamConfig TinyStreamConfig() {
  sim::ArrivalStreamConfig config;
  config.num_days = 3;
  config.feedback_per_item = 20;
  config.seed = 2026;
  return config;
}

/// Captures every published snapshot (they are deep copies, so holding
/// them past the trainer's next Step is safe).
struct CapturingPublisher {
  std::vector<runtime::ServingSnapshot> snapshots;
  uint64_t next_version = 0;
  PublishFn Fn() {
    return [this](runtime::ServingSnapshot snapshot) -> StatusOr<uint64_t> {
      snapshots.push_back(std::move(snapshot));
      return ++next_version;
    };
  }
};

bool ModelsBitwiseEqual(const core::AtnnModel& a, const core::AtnnModel& b) {
  auto& mutable_a = const_cast<core::AtnnModel&>(a);
  auto& mutable_b = const_cast<core::AtnnModel&>(b);
  const auto params_a = mutable_a.Parameters();
  const auto params_b = mutable_b.Parameters();
  if (params_a.size() != params_b.size()) return false;
  for (size_t i = 0; i < params_a.size(); ++i) {
    const nn::Tensor& ta = params_a[i]->value();
    const nn::Tensor& tb = params_b[i]->value();
    if (ta.rows() != tb.rows() || ta.cols() != tb.cols()) return false;
    if (std::memcmp(ta.row_ptr(0), tb.row_ptr(0),
                    static_cast<size_t>(ta.numel()) * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(StreamingTrainerTest, SameSeedRunsPublishBitwiseIdenticalSnapshots) {
  const data::TmallDataset dataset = MakeTinyWorld();
  CapturingPublisher first;
  CapturingPublisher second;
  StreamingTrainer trainer_a(dataset, TinyTrainerConfig(), first.Fn());
  StreamingTrainer trainer_b(dataset, TinyTrainerConfig(), second.Fn());
  sim::ArrivalStream stream_a(&dataset, TinyStreamConfig());
  sim::ArrivalStream stream_b(&dataset, TinyStreamConfig());
  const auto reports_a = trainer_a.Run(&stream_a);
  const auto reports_b = trainer_b.Run(&stream_b);
  ASSERT_TRUE(reports_a.ok());
  ASSERT_TRUE(reports_b.ok());
  ASSERT_EQ(first.snapshots.size(), 3u);
  ASSERT_EQ(second.snapshots.size(), 3u);
  for (size_t day = 0; day < first.snapshots.size(); ++day) {
    EXPECT_TRUE(ModelsBitwiseEqual(*first.snapshots[day].model,
                                   *second.snapshots[day].model))
        << "published weights diverged on day " << day;
  }
  // And the scalar reports agree exactly too.
  for (size_t day = 0; day < reports_a->size(); ++day) {
    EXPECT_EQ((*reports_a)[day].served_auc, (*reports_b)[day].served_auc);
    EXPECT_EQ((*reports_a)[day].fresh_auc, (*reports_b)[day].fresh_auc);
    EXPECT_EQ((*reports_a)[day].train_indices,
              (*reports_b)[day].train_indices);
  }
}

TEST(StreamingTrainerTest, PublishedSnapshotDoesNotAliasTheTrainingModel) {
  const data::TmallDataset dataset = MakeTinyWorld();
  CapturingPublisher publisher;
  StreamingTrainer trainer(dataset, TinyTrainerConfig(), publisher.Fn());
  sim::ArrivalStream stream(&dataset, TinyStreamConfig());
  ASSERT_TRUE(trainer.Step(&stream).ok());
  ASSERT_EQ(publisher.snapshots.size(), 1u);
  // Day 0's published weights equal the trainer's current weights...
  EXPECT_TRUE(
      ModelsBitwiseEqual(*publisher.snapshots[0].model, trainer.model()));
  ASSERT_TRUE(trainer.Step(&stream).ok());
  // ...and stay frozen after day 1 mutates the trainer (deep copy, no
  // aliasing into the live runtime).
  EXPECT_FALSE(
      ModelsBitwiseEqual(*publisher.snapshots[0].model, trainer.model()));
  EXPECT_TRUE(
      ModelsBitwiseEqual(*publisher.snapshots[1].model, trainer.model()));
}

TEST(StreamingTrainerTest, SwitchesOffMatchesBatchTrainerBitwise) {
  const data::TmallDataset dataset = MakeTinyWorld();
  const StreamingTrainerConfig config = TinyTrainerConfig();
  CapturingPublisher publisher;
  StreamingTrainer trainer(dataset, config, publisher.Fn());
  sim::ArrivalStream stream(&dataset, TinyStreamConfig());
  const auto reports = trainer.Run(&stream);
  ASSERT_TRUE(reports.ok());

  // Replay day 0 through the public batch entry point: same indices into
  // the trainer's grown dataset, same per-day seed, fresh model from the
  // same seeded init (the trainer was not warm-started).
  data::TmallDataset replay_dataset = trainer.dataset();
  replay_dataset.train_indices = (*reports)[0].train_indices;
  core::AtnnModel replay_model(*replay_dataset.user_schema,
                               *replay_dataset.item_profile_schema,
                               *replay_dataset.item_stats_schema,
                               config.model);
  core::TrainOptions replay_options = config.train;
  replay_options.seed = StreamingTrainer::DaySeed(config.train.seed, 0);
  const auto replay_history =
      core::TrainAtnnModel(&replay_model, replay_dataset, replay_options);
  const auto& day0_history = (*reports)[0].history;
  ASSERT_EQ(day0_history.size(), replay_history.size());
  ASSERT_FALSE(day0_history.empty());
  EXPECT_EQ(0, std::memcmp(day0_history.data(), replay_history.data(),
                           day0_history.size() * sizeof(core::EpochStats)));
  // The weights after the replayed day-0 epoch are the day-0 publish.
  EXPECT_TRUE(
      ModelsBitwiseEqual(*publisher.snapshots[0].model, replay_model));
}

TEST(StreamingTrainerTest, WarmStartCopiesServedWeights) {
  const data::TmallDataset dataset = MakeTinyWorld();
  const StreamingTrainerConfig config = TinyTrainerConfig();
  core::AtnnModel pretrained(*dataset.user_schema,
                             *dataset.item_profile_schema,
                             *dataset.item_stats_schema, config.model);
  core::TrainOptions pretrain = config.train;
  core::TrainAtnnModel(&pretrained, dataset, pretrain);
  CapturingPublisher publisher;
  StreamingTrainer trainer(dataset, config, publisher.Fn());
  EXPECT_FALSE(ModelsBitwiseEqual(trainer.model(), pretrained));
  ASSERT_TRUE(trainer.WarmStartFrom(pretrained).ok());
  EXPECT_TRUE(ModelsBitwiseEqual(trainer.model(), pretrained));
}

TEST(StreamingTrainerTest, PublishRejectionIsRecordedNotFatal) {
  const data::TmallDataset dataset = MakeTinyWorld();
  int64_t calls = 0;
  StreamingTrainer trainer(
      dataset, TinyTrainerConfig(),
      [&](runtime::ServingSnapshot) -> StatusOr<uint64_t> {
        ++calls;
        if (calls == 1) return Status::Unavailable("runtime down");
        return static_cast<uint64_t>(calls);
      });
  sim::ArrivalStream stream(&dataset, TinyStreamConfig());
  const auto reports = trainer.Run(&stream);
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 3u);
  EXPECT_FALSE((*reports)[0].published);
  EXPECT_TRUE((*reports)[1].published);
  EXPECT_TRUE((*reports)[2].published);

  int64_t publishes = 0;
  int64_t failures = 0;
  int64_t days = 0;
  for (const auto& [name, value] :
       trainer.metrics_registry().Collect().counters) {
    if (name == "stream.publishes") publishes = value;
    if (name == "stream.publish_failures") failures = value;
    if (name == "stream.days") days = value;
  }
  EXPECT_EQ(days, 3);
  EXPECT_EQ(publishes, 2);
  EXPECT_EQ(failures, 1);
}

TEST(StreamingTrainerTest, InvalidTrainOptionsSurfaceAsStatus) {
  const data::TmallDataset dataset = MakeTinyWorld();
  StreamingTrainerConfig config = TinyTrainerConfig();
  config.train.epochs = 0;
  CapturingPublisher publisher;
  StreamingTrainer trainer(dataset, config, publisher.Fn());
  sim::ArrivalStream stream(&dataset, TinyStreamConfig());
  EXPECT_FALSE(trainer.Step(&stream).ok());
  EXPECT_TRUE(publisher.snapshots.empty());
}

TEST(StreamingTrainerTest, ReplaySamplesExtendTheTrainingSet) {
  const data::TmallDataset dataset = MakeTinyWorld();
  StreamingTrainerConfig config = TinyTrainerConfig();
  config.replay_interactions = 64;
  CapturingPublisher publisher;
  StreamingTrainer trainer(dataset, config, publisher.Fn());
  sim::ArrivalStream stream(&dataset, TinyStreamConfig());
  const auto report = trainer.Step(&stream);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(static_cast<int64_t>(report->train_indices.size()),
            report->feedback_rows + 64);
  // The replay tail draws from the historical train split, not the day's
  // freshly appended rows.
  const int64_t history_rows =
      static_cast<int64_t>(dataset.interaction_user.size());
  for (size_t i = static_cast<size_t>(report->feedback_rows);
       i < report->train_indices.size(); ++i) {
    EXPECT_LT(report->train_indices[i], history_rows);
  }
}

TEST(StreamingTrainerTest, PublishesIntoALiveRuntime) {
  const data::TmallDataset dataset = MakeTinyWorld();
  runtime::RuntimeConfig runtime_config;
  runtime_config.num_workers = 2;
  runtime::InferenceRuntime runtime(runtime_config);
  StreamingTrainer trainer(
      dataset, TinyTrainerConfig(),
      [&](runtime::ServingSnapshot snapshot) {
        return runtime.Publish(std::move(snapshot));
      });
  sim::ArrivalStream stream(&dataset, TinyStreamConfig());
  const auto reports = trainer.Run(&stream);
  ASSERT_TRUE(reports.ok());
  uint64_t last_version = 0;
  for (const auto& report : *reports) {
    EXPECT_TRUE(report.published);
    EXPECT_GT(report.published_version, last_version);
    last_version = report.published_version;
  }
  EXPECT_EQ(runtime.snapshot_version(), last_version);
  // The last published day's weights are live: scoring works.
  const auto scored = runtime.Score(dataset.new_items.front());
  ASSERT_TRUE(scored.ok());
  EXPECT_TRUE(std::isfinite(scored.value().score));
  runtime.Shutdown();
}

}  // namespace
}  // namespace atnn::stream
