#include "quant/quantized_generator.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "core/atnn.h"
#include "core/popularity.h"
#include "data/schema.h"
#include "data/tmall.h"
#include "nn/autograd.h"
#include "runtime/snapshot_handle.h"

namespace atnn::quant {
namespace {

using core::testing_helpers::MakeNormalizedTinyDataset;
using core::testing_helpers::TinyTowerConfig;

class QuantizedGeneratorTest : public testing::Test {
 protected:
  void SetUp() override {
    dataset_ = MakeNormalizedTinyDataset();
    core::AtnnConfig config;
    config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = std::make_unique<core::AtnnModel>(
        *dataset_.user_schema, *dataset_.item_profile_schema,
        *dataset_.item_stats_schema, config);
    calibration_ =
        data::GatherBlock(dataset_.item_profiles, dataset_.new_items);
  }

  nn::Tensor Fp32Vectors(const data::BlockBatch& block) const {
    const nn::NoGradGuard no_grad;
    return model_->GeneratorItemVector(block).value();
  }

  data::TmallDataset dataset_;
  std::unique_ptr<core::AtnnModel> model_;
  data::BlockBatch calibration_;
};

TEST(PrecisionTest, ParseAndNameRoundTrip) {
  for (const Precision p :
       {Precision::kFp32, Precision::kBf16, Precision::kInt8}) {
    const auto parsed = ParsePrecision(PrecisionName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, p);
  }
  for (const char* bad : {"fp16", "int4", "", "FP32", "quantized"}) {
    EXPECT_EQ(ParsePrecision(bad).status().code(),
              StatusCode::kInvalidArgument)
        << bad;
  }
}

TEST_F(QuantizedGeneratorTest, Fp32IsNotAQuantizedPrecision) {
  EXPECT_EQ(QuantizedGenerator::Build(*model_, calibration_,
                                      Precision::kFp32)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(QuantizedGeneratorTest, Int8NeedsCalibrationRows) {
  const data::BlockBatch empty =
      data::GatherBlock(dataset_.item_profiles, {});
  EXPECT_FALSE(
      QuantizedGenerator::Build(*model_, empty, Precision::kInt8).ok());
}

TEST_F(QuantizedGeneratorTest, Int8TracksFp32Vectors) {
  auto quantized =
      QuantizedGenerator::Build(*model_, calibration_, Precision::kInt8);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  EXPECT_EQ(quantized->precision(), Precision::kInt8);
  EXPECT_EQ(quantized->vector_dim(), model_->vector_dim());

  nn::Tensor got;
  ASSERT_TRUE(quantized->Forward(calibration_, &got).ok());
  const nn::Tensor want = Fp32Vectors(calibration_);
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  // Static 7-bit activations + 8-bit weights on an *untrained* random-init
  // model (the worst case for static calibration): individual rows can see
  // tens-of-percent error, but the cohort-level error must stay bounded
  // and no row may be garbage. End-to-end quality on a trained model is
  // gated much tighter by bench_quantized (AUC delta < 0.001).
  double err = 0.0;
  double norm = 0.0;
  for (int64_t r = 0; r < got.rows(); ++r) {
    double row_err = 0.0;
    double row_norm = 0.0;
    for (int64_t c = 0; c < got.cols(); ++c) {
      const double d = got.at(r, c) - want.at(r, c);
      row_err += d * d;
      row_norm += static_cast<double>(want.at(r, c)) * want.at(r, c);
    }
    EXPECT_LT(std::sqrt(row_err), 0.5 * std::sqrt(row_norm) + 0.01)
        << "row " << r;
    err += row_err;
    norm += row_norm;
  }
  EXPECT_LT(std::sqrt(err), 0.2 * std::sqrt(norm));
}

TEST_F(QuantizedGeneratorTest, Bf16TracksFp32Tightly) {
  auto quantized =
      QuantizedGenerator::Build(*model_, calibration_, Precision::kBf16);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  nn::Tensor got;
  ASSERT_TRUE(quantized->Forward(calibration_, &got).ok());
  const nn::Tensor want = Fp32Vectors(calibration_);
  for (int64_t r = 0; r < got.rows(); ++r) {
    for (int64_t c = 0; c < got.cols(); ++c) {
      EXPECT_NEAR(got.at(r, c), want.at(r, c),
                  0.02 * std::abs(want.at(r, c)) + 0.02)
          << r << "," << c;
    }
  }
}

TEST_F(QuantizedGeneratorTest, CompressionRatioHolds) {
  auto int8 =
      QuantizedGenerator::Build(*model_, calibration_, Precision::kInt8);
  ASSERT_TRUE(int8.ok());
  EXPECT_LE(static_cast<double>(int8->QuantizedByteSize()),
            0.35 * static_cast<double>(int8->Fp32ByteSize()));
  auto bf16 =
      QuantizedGenerator::Build(*model_, calibration_, Precision::kBf16);
  ASSERT_TRUE(bf16.ok());
  EXPECT_LE(static_cast<double>(bf16->QuantizedByteSize()),
            0.55 * static_cast<double>(bf16->Fp32ByteSize()));
}

// --- calibration edge cases ---

TEST_F(QuantizedGeneratorTest, AllZeroEmbeddingRowsQuantizeSafely) {
  // Zero out an entire embedding table through the optimizer's mutable
  // parameter list (the const accessors are for inference). A zero row's
  // absmax is 0; the per-row scale must fall back to 1.0, not become a
  // 0/NaN that Validate would reject or Forward would divide by.
  const nn::Parameter* table = &model_->generator_embedding_bag().table(0);
  bool zeroed = false;
  for (nn::Parameter* param : model_->GeneratorParameters()) {
    if (param == table) {
      param->value().Fill(0.0f);
      zeroed = true;
    }
  }
  ASSERT_TRUE(zeroed) << "first embedding table not in generator params";

  auto quantized =
      QuantizedGenerator::Build(*model_, calibration_, Precision::kInt8);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  EXPECT_TRUE(quantized->Validate().ok());
  nn::Tensor out;
  ASSERT_TRUE(quantized->Forward(calibration_, &out).ok());
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i])) << i;
  }
}

TEST_F(QuantizedGeneratorTest, SingleItemCohortCalibrates) {
  const data::BlockBatch one = data::GatherBlock(
      dataset_.item_profiles, {dataset_.new_items.front()});
  auto quantized =
      QuantizedGenerator::Build(*model_, one, Precision::kInt8);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  EXPECT_TRUE(quantized->Validate().ok());
  // Activation scales calibrated on one item must still keep the whole
  // cohort finite (clipping, not poisoning, is the failure mode allowed).
  nn::Tensor out;
  ASSERT_TRUE(quantized->Forward(calibration_, &out).ok());
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i])) << i;
  }
}

TEST_F(QuantizedGeneratorTest, ConstantNumericColumnsCalibrate) {
  // A constant (including all-zero) numeric block: per-layer activation
  // absmax can hit zero, which must fall back to a usable scale.
  data::BlockBatch constant = calibration_;
  constant.numeric.Fill(0.0f);
  auto quantized =
      QuantizedGenerator::Build(*model_, constant, Precision::kInt8);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();
  EXPECT_TRUE(quantized->Validate().ok());
  nn::Tensor out;
  ASSERT_TRUE(quantized->Forward(calibration_, &out).ok());
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.data()[i])) << i;
  }
}

// --- persistence ---

TEST_F(QuantizedGeneratorTest, SaveLoadRoundTripIsBitwise) {
  auto quantized =
      QuantizedGenerator::Build(*model_, calibration_, Precision::kInt8);
  ASSERT_TRUE(quantized.ok());
  const std::string path = testing::TempDir() + "/quantized_artifact.bin";
  ASSERT_TRUE(quantized->Save(path, "test-tag").ok());

  auto loaded = QuantizedGenerator::Load(path, "test-tag");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->precision(), Precision::kInt8);

  nn::Tensor before;
  nn::Tensor after;
  ASSERT_TRUE(quantized->Forward(calibration_, &before).ok());
  ASSERT_TRUE(loaded->Forward(calibration_, &after).ok());
  ASSERT_EQ(before.rows(), after.rows());
  ASSERT_EQ(before.cols(), after.cols());
  EXPECT_EQ(0, std::memcmp(before.data(), after.data(),
                           static_cast<size_t>(before.numel()) *
                               sizeof(float)));
  std::remove(path.c_str());
}

TEST_F(QuantizedGeneratorTest, LoadRejectsWrongTag) {
  auto quantized =
      QuantizedGenerator::Build(*model_, calibration_, Precision::kBf16);
  ASSERT_TRUE(quantized.ok());
  const std::string path = testing::TempDir() + "/quantized_tagged.bin";
  ASSERT_TRUE(quantized->Save(path, "arch-v1").ok());
  EXPECT_EQ(QuantizedGenerator::Load(path, "arch-v2").status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

// --- validation / serving integration ---

TEST_F(QuantizedGeneratorTest, PoisonedScaleFailsValidate) {
  auto quantized =
      QuantizedGenerator::Build(*model_, calibration_, Precision::kInt8);
  ASSERT_TRUE(quantized.ok());
  ASSERT_TRUE(quantized->Validate().ok());
  quantized->CorruptScaleForTest(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(quantized->Validate().code(), StatusCode::kDataLoss);
  quantized->CorruptScaleForTest(0.0f);
  EXPECT_EQ(quantized->Validate().code(), StatusCode::kDataLoss);
}

TEST_F(QuantizedGeneratorTest, SnapshotValidatesWithoutFp32Model) {
  auto built =
      QuantizedGenerator::Build(*model_, calibration_, Precision::kInt8);
  ASSERT_TRUE(built.ok());
  const auto group = core::SelectActiveUsers(dataset_, 50);
  const auto predictor =
      core::PopularityPredictor::Build(*model_, dataset_, group);

  runtime::ServingSnapshot snapshot;
  snapshot.quantized = runtime::Unowned(&*built);
  snapshot.predictor = runtime::Unowned(&predictor);
  snapshot.item_profiles = runtime::Unowned(&dataset_.item_profiles);
  // model deliberately null: the quantized path serves without fp32
  // weights resident.
  EXPECT_TRUE(runtime::ValidateServingSnapshot(snapshot).ok());

  built->CorruptScaleForTest(std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(runtime::ValidateServingSnapshot(snapshot).code(),
            StatusCode::kDataLoss);

  runtime::ServingSnapshot neither;
  neither.predictor = runtime::Unowned(&predictor);
  neither.item_profiles = runtime::Unowned(&dataset_.item_profiles);
  EXPECT_EQ(runtime::ValidateServingSnapshot(neither).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace atnn::quant
