#include "gbdt/gbdt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gbdt/binner.h"
#include "metrics/metrics.h"

namespace atnn::gbdt {
namespace {

TEST(FeatureBinnerTest, FewDistinctValuesGetExactBins) {
  nn::Tensor features(6, 1, {1, 1, 2, 2, 3, 3});
  FeatureBinner binner = FeatureBinner::Fit(features, 16);
  EXPECT_EQ(binner.num_bins(0), 3);
  EXPECT_EQ(binner.Bin(0, 1.0f), 0);
  EXPECT_EQ(binner.Bin(0, 2.0f), 1);
  EXPECT_EQ(binner.Bin(0, 3.0f), 2);
  // Unseen values land in the nearest bucket by threshold.
  EXPECT_EQ(binner.Bin(0, 0.0f), 0);
  EXPECT_EQ(binner.Bin(0, 99.0f), 2);
}

TEST(FeatureBinnerTest, ManyValuesRespectMaxBins) {
  Rng rng(5);
  nn::Tensor features(1000, 1);
  for (int64_t r = 0; r < 1000; ++r) {
    features.at(r, 0) = static_cast<float>(rng.Normal());
  }
  FeatureBinner binner = FeatureBinner::Fit(features, 32);
  EXPECT_LE(binner.num_bins(0), 32);
  EXPECT_GE(binner.num_bins(0), 16);
  // Bin indices are monotone in the value.
  EXPECT_LE(binner.Bin(0, -2.0f), binner.Bin(0, 0.0f));
  EXPECT_LE(binner.Bin(0, 0.0f), binner.Bin(0, 2.0f));
}

TEST(FeatureBinnerTest, BinMatrixMatchesScalarBinning) {
  nn::Tensor features(4, 2, {1, 10, 2, 20, 3, 30, 4, 40});
  FeatureBinner binner = FeatureBinner::Fit(features, 8);
  std::vector<uint8_t> binned = binner.BinMatrix(features);
  for (int64_t r = 0; r < 4; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(binned[static_cast<size_t>(r) * 2 + c],
                binner.Bin(c, features.at(r, static_cast<int64_t>(c))));
    }
  }
}

TEST(GbdtTest, LearnsAxisAlignedDecisionBoundary) {
  // y = 1 iff x0 > 0.5 — one split suffices.
  Rng rng(7);
  const int64_t n = 2000;
  nn::Tensor features(n, 3);
  std::vector<float> labels(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      features.at(r, c) = static_cast<float>(rng.Uniform());
    }
    labels[static_cast<size_t>(r)] = features.at(r, 0) > 0.5f ? 1.0f : 0.0f;
  }
  GbdtConfig config;
  config.num_trees = 20;
  config.tree.max_depth = 3;
  GbdtModel model;
  model.Train(features, labels, config);

  const std::vector<double> probs = model.PredictProbability(features);
  EXPECT_GT(metrics::Auc(probs, labels), 0.99);
  // Importance concentrates on feature 0.
  const std::vector<double> importance = model.FeatureImportance();
  EXPECT_GT(importance[0], 0.9);
}

TEST(GbdtTest, LearnsXorInteraction) {
  // XOR needs depth >= 2 — verifies trees capture interactions, the reason
  // GBDT is a credible CTR baseline.
  Rng rng(8);
  const int64_t n = 4000;
  nn::Tensor features(n, 2);
  std::vector<float> labels(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    const bool a = rng.Bernoulli(0.5);
    const bool b = rng.Bernoulli(0.5);
    features.at(r, 0) = a ? 1.0f : 0.0f;
    features.at(r, 1) = b ? 1.0f : 0.0f;
    labels[static_cast<size_t>(r)] = (a != b) ? 1.0f : 0.0f;
  }
  GbdtConfig config;
  config.num_trees = 30;
  config.tree.max_depth = 3;
  GbdtModel model;
  model.Train(features, labels, config);
  EXPECT_GT(metrics::Auc(model.PredictProbability(features), labels), 0.99);
}

TEST(GbdtTest, TrainingLossDecreasesMonotonically) {
  Rng rng(9);
  const int64_t n = 1000;
  nn::Tensor features(n, 4);
  std::vector<float> labels(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    double logit = 0.0;
    for (int64_t c = 0; c < 4; ++c) {
      features.at(r, c) = static_cast<float>(rng.Normal());
      logit += features.at(r, c) * (c + 1) * 0.4;
    }
    labels[static_cast<size_t>(r)] =
        rng.Bernoulli(1.0 / (1.0 + std::exp(-logit))) ? 1.0f : 0.0f;
  }
  GbdtConfig config;
  config.num_trees = 25;
  config.subsample = 1.0;  // deterministic trees -> monotone training loss
  GbdtModel model;
  model.Train(features, labels, config);
  const auto& curve = model.training_loss_curve();
  ASSERT_EQ(curve.size(), 25u);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-9) << "round " << i;
  }
}

TEST(GbdtTest, SquaredLossRegressionFitsLinearTarget) {
  Rng rng(10);
  const int64_t n = 2000;
  nn::Tensor features(n, 1);
  std::vector<float> labels(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    features.at(r, 0) = static_cast<float>(rng.Uniform(-2.0, 2.0));
    labels[static_cast<size_t>(r)] = 3.0f * features.at(r, 0) + 1.0f;
  }
  GbdtConfig config;
  config.loss = GbdtLoss::kSquared;
  config.num_trees = 60;
  config.learning_rate = 0.2;
  GbdtModel model;
  model.Train(features, labels, config);
  const std::vector<double> preds = model.PredictRaw(features);
  EXPECT_LT(metrics::MeanAbsoluteError(preds, labels), 0.25);
}

TEST(GbdtTest, DeterministicForFixedSeed) {
  Rng rng(11);
  const int64_t n = 500;
  nn::Tensor features(n, 3);
  std::vector<float> labels(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      features.at(r, c) = static_cast<float>(rng.Normal());
    }
    labels[static_cast<size_t>(r)] = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
  }
  GbdtConfig config;
  config.num_trees = 10;
  GbdtModel a;
  GbdtModel b;
  a.Train(features, labels, config);
  b.Train(features, labels, config);
  EXPECT_EQ(a.PredictRaw(features), b.PredictRaw(features));
}

TEST(GbdtTest, SaveLoadReproducesPredictionsExactly) {
  Rng rng(13);
  const int64_t n = 1500;
  nn::Tensor features(n, 6);
  std::vector<float> labels(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    double logit = -0.5;
    for (int64_t c = 0; c < 6; ++c) {
      features.at(r, c) = static_cast<float>(rng.Normal());
      logit += 0.4 * features.at(r, c) * (c % 2 == 0 ? 1.0 : -1.0);
    }
    labels[static_cast<size_t>(r)] =
        rng.Bernoulli(1.0 / (1.0 + std::exp(-logit))) ? 1.0f : 0.0f;
  }
  GbdtConfig config;
  config.num_trees = 15;
  GbdtModel model;
  model.Train(features, labels, config);

  const std::string path = testing::TempDir() + "/gbdt_snapshot.bin";
  ASSERT_TRUE(model.SaveToFile(path).ok());
  auto loaded_or = GbdtModel::LoadFromFile(path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();

  const auto original = model.PredictProbability(features);
  const auto restored = loaded_or->PredictProbability(features);
  ASSERT_EQ(original.size(), restored.size());
  for (size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(original[i], restored[i]) << "row " << i;
  }
  // Feature importance also survives (split gains are serialized).
  EXPECT_EQ(model.FeatureImportance(), loaded_or->FeatureImportance());
  std::remove(path.c_str());
}

TEST(GbdtTest, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_EQ(GbdtModel::LoadFromFile("/no/such/model.bin").status().code(),
            StatusCode::kIoError);
}

TEST(GbdtTest, MinSamplesLeafBoundsLeafSize) {
  Rng rng(12);
  const int64_t n = 200;
  nn::Tensor features(n, 1);
  std::vector<float> labels(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    features.at(r, 0) = static_cast<float>(r);
    labels[static_cast<size_t>(r)] = (r % 2 == 0) ? 1.0f : 0.0f;
  }
  GbdtConfig config;
  config.num_trees = 1;
  config.subsample = 1.0;
  config.tree.max_depth = 20;
  config.tree.min_samples_leaf = 50;
  GbdtModel model;
  model.Train(features, labels, config);
  // With >= 50 rows per leaf and 200 rows, a tree has at most 4 leaves.
  EXPECT_EQ(model.num_trees(), 1u);
}

}  // namespace
}  // namespace atnn::gbdt
