#include "runtime/inference_runtime.h"

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "core/atnn.h"
#include "core/popularity.h"
#include "data/tmall.h"
#include "quant/quantized_generator.h"
#include "serving/popularity_index.h"

namespace atnn::runtime {
namespace {

/// One tiny world + model per test binary: the runtime's correctness
/// contract is "same scores as the sequential O(1) path", which does not
/// require trained weights, so the model stays at its (deterministic,
/// seeded) initialization.
class InferenceRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        core::testing_helpers::MakeNormalizedTinyDataset());
    core::AtnnConfig config;
    config.tower = core::testing_helpers::TinyTowerConfig(
        nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = new core::AtnnModel(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, config);
    const auto group = core::SelectActiveUsers(*dataset_, 64);
    predictor_ = new core::PopularityPredictor(
        core::PopularityPredictor::Build(*model_, *dataset_, group));
  }

  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static ServingSnapshot MakeSnapshot() {
    ServingSnapshot snapshot;
    snapshot.model = Unowned(model_);
    snapshot.predictor = Unowned(predictor_);
    snapshot.item_profiles = Unowned(&dataset_->item_profiles);
    snapshot.tag = "test";
    return snapshot;
  }

  static RuntimeConfig SmallRuntimeConfig() {
    RuntimeConfig config;
    config.num_workers = 2;
    config.batcher.max_batch_size = 16;
    config.batcher.max_delay_us = 500;
    config.batcher.queue_capacity = 256;
    return config;
  }

  static data::TmallDataset* dataset_;
  static core::AtnnModel* model_;
  static core::PopularityPredictor* predictor_;
};

data::TmallDataset* InferenceRuntimeTest::dataset_ = nullptr;
core::AtnnModel* InferenceRuntimeTest::model_ = nullptr;
core::PopularityPredictor* InferenceRuntimeTest::predictor_ = nullptr;

TEST_F(InferenceRuntimeTest, MatchesSequentialScoring) {
  const std::vector<double> expected =
      predictor_->ScoreItems(*model_, *dataset_, dataset_->new_items);

  InferenceRuntime runtime(SmallRuntimeConfig());
  const auto published = runtime.Publish(MakeSnapshot());
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(published.value(), 1u);

  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  futures.reserve(dataset_->new_items.size());
  for (int64_t item : dataset_->new_items) {
    futures.push_back(runtime.ScoreAsync(item));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NEAR(result.value().score, expected[i], 1e-9);
    EXPECT_EQ(result.value().snapshot_version, 1u);
  }

  runtime.Shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.enqueued,
            static_cast<int64_t>(dataset_->new_items.size()));
  EXPECT_EQ(stats.completed_ok,
            static_cast<int64_t>(dataset_->new_items.size()));
  EXPECT_EQ(stats.completed_error, 0);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(stats.batches, 1);
  // Micro-batching actually coalesced: fewer batches than requests.
  EXPECT_LT(stats.batches, stats.enqueued);
  EXPECT_LE(stats.batch_size.max(),
            static_cast<double>(SmallRuntimeConfig().batcher.max_batch_size));
}

TEST_F(InferenceRuntimeTest, ScoreBeforePublishFailsCleanly) {
  InferenceRuntime runtime(SmallRuntimeConfig());
  const auto result = runtime.Score(0);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(InferenceRuntimeTest, OutOfRangeRowIsInvalidArgument) {
  InferenceRuntime runtime(SmallRuntimeConfig());
  runtime.Publish(MakeSnapshot());
  EXPECT_EQ(runtime.Score(-1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(runtime
                .Score(dataset_->item_profiles.num_rows() + 5)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // A valid row still works in the same runtime (mixed batches split).
  EXPECT_TRUE(runtime.Score(dataset_->new_items.front()).ok());
}

TEST_F(InferenceRuntimeTest, SyncScoreMatchesAsync) {
  InferenceRuntime runtime(SmallRuntimeConfig());
  runtime.Publish(MakeSnapshot());
  const int64_t item = dataset_->new_items.front();
  const auto sync = runtime.Score(item);
  ASSERT_TRUE(sync.ok());
  const auto async = runtime.ScoreAsync(item).get();
  ASSERT_TRUE(async.ok());
  EXPECT_NEAR(sync.value().score, async.value().score, 1e-12);
}

TEST_F(InferenceRuntimeTest, ScoreCacheServesRepeatsAndInvalidatesOnPublish) {
  RuntimeConfig config = SmallRuntimeConfig();
  config.num_workers = 1;  // sync Score => one request per batch, so the
                           // cache-hit count below is exact
  InferenceRuntime runtime(config);
  runtime.Publish(MakeSnapshot());

  const int64_t item = dataset_->new_items.front();
  const auto first = runtime.Score(item);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 8; ++i) {
    const auto repeat = runtime.Score(item);
    ASSERT_TRUE(repeat.ok());
    // Memoized, so bit-identical — not merely close.
    EXPECT_EQ(repeat.value().score, first.value().score);
    EXPECT_EQ(repeat.value().snapshot_version, 1u);
  }
  EXPECT_EQ(runtime.stats().cache_hits, 8);

  // Publishing a snapshot with a different mean-user vector must invalidate
  // every cached score: version 1 values may not leak into version 2.
  const auto group_b = core::SelectActiveUsers(*dataset_, 16);
  const auto predictor_b = std::make_shared<core::PopularityPredictor>(
      core::PopularityPredictor::Build(*model_, *dataset_, group_b));
  const double expected_b =
      predictor_b->ScoreItems(*model_, *dataset_, {item}).front();
  ServingSnapshot snapshot;
  snapshot.model = Unowned(model_);
  snapshot.predictor = predictor_b;
  snapshot.item_profiles = Unowned(&dataset_->item_profiles);
  runtime.Publish(std::move(snapshot));

  const auto after = runtime.Score(item);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().snapshot_version, 2u);
  EXPECT_NEAR(after.value().score, expected_b, 1e-9);
  EXPECT_NE(after.value().score, first.value().score);
}

TEST_F(InferenceRuntimeTest, HotSwapChurnDropsNothingAndScoresConsistently) {
  // Two model versions that differ only in the mean-user vector: odd
  // versions serve group A, even versions group B.
  const auto group_a = core::SelectActiveUsers(*dataset_, 64);
  const auto group_b = core::SelectActiveUsers(*dataset_, 16);
  const auto predictor_a = std::make_shared<core::PopularityPredictor>(
      core::PopularityPredictor::Build(*model_, *dataset_, group_a));
  const auto predictor_b = std::make_shared<core::PopularityPredictor>(
      core::PopularityPredictor::Build(*model_, *dataset_, group_b));
  const std::vector<double> expected_a =
      predictor_a->ScoreItems(*model_, *dataset_, dataset_->new_items);
  const std::vector<double> expected_b =
      predictor_b->ScoreItems(*model_, *dataset_, dataset_->new_items);

  const auto snapshot_for = [&](int version_parity) {
    ServingSnapshot snapshot;
    snapshot.model = Unowned(model_);
    snapshot.predictor = version_parity % 2 == 1 ? predictor_a : predictor_b;
    snapshot.item_profiles = Unowned(&dataset_->item_profiles);
    return snapshot;
  };

  InferenceRuntime runtime(SmallRuntimeConfig());
  runtime.Publish(snapshot_for(1));

  std::atomic<bool> stop_publishing{false};
  std::thread publisher([&] {
    int version = 2;
    while (!stop_publishing.load()) {
      runtime.Publish(snapshot_for(version++));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kRounds = 20;
  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  std::vector<size_t> item_index;
  futures.reserve(kRounds * dataset_->new_items.size());
  for (int round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < dataset_->new_items.size(); ++i) {
      futures.push_back(runtime.ScoreAsync(dataset_->new_items[i]));
      item_index.push_back(i);
    }
  }

  // Zero drops: every single future resolves with a score, and each score
  // is exactly what the version recorded in its response would produce.
  for (size_t f = 0; f < futures.size(); ++f) {
    const auto result = futures[f].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto& expected = result.value().snapshot_version % 2 == 1
                               ? expected_a
                               : expected_b;
    EXPECT_NEAR(result.value().score, expected[item_index[f]], 1e-9);
  }

  stop_publishing.store(true);
  publisher.join();
  runtime.Shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.completed_ok, static_cast<int64_t>(futures.size()));
  EXPECT_EQ(stats.completed_error, 0);
  EXPECT_GE(stats.swaps, 2);
}

TEST_F(InferenceRuntimeTest, RejectPolicyShedsButNeverHangs) {
  RuntimeConfig config;
  config.num_workers = 1;
  config.batcher.max_batch_size = 8;
  config.batcher.max_delay_us = 200;
  config.batcher.queue_capacity = 8;
  config.batcher.admission = AdmissionPolicy::kRejectWithStatus;
  // With the fallback chain on (the default), shed requests are served
  // degraded instead of erroring — covered elsewhere. This test pins the
  // explicit error-surfacing mode.
  config.enable_degraded_fallback = false;
  InferenceRuntime runtime(config);
  runtime.Publish(MakeSnapshot());

  constexpr int kRequests = 400;
  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(
        runtime.ScoreAsync(dataset_->new_items[static_cast<size_t>(i) %
                                               dataset_->new_items.size()]));
  }
  int ok = 0;
  int rejected = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kRequests);
  EXPECT_GT(ok, 0);  // overload sheds, it does not collapse
  runtime.Shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.enqueued, ok);
  EXPECT_EQ(stats.rejected, rejected);
}

TEST_F(InferenceRuntimeTest, ConfigValidationReturnsStatusNotAbort) {
  RuntimeConfig config = SmallRuntimeConfig();
  config.num_workers = 0;  // would hang every request forever
  EXPECT_EQ(InferenceRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = SmallRuntimeConfig();
  config.batcher.max_batch_size = 0;
  EXPECT_EQ(InferenceRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(config.batcher.Validate().code(), StatusCode::kInvalidArgument);

  config = SmallRuntimeConfig();
  config.batcher.queue_capacity = 0;  // cannot hold one full batch
  EXPECT_EQ(InferenceRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = SmallRuntimeConfig();
  config.batcher.max_delay_us = -1;
  EXPECT_EQ(InferenceRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = SmallRuntimeConfig();
  config.batcher.max_delay_us = 2000;
  config.default_deadline_us = 500;  // shorter than the flush interval
  EXPECT_EQ(InferenceRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = SmallRuntimeConfig();
  config.enable_score_cache = true;
  config.score_cache_capacity = 0;
  EXPECT_EQ(InferenceRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  // A valid config constructs and serves through Create.
  auto runtime = InferenceRuntime::Create(SmallRuntimeConfig());
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  ASSERT_TRUE((*runtime)->Publish(MakeSnapshot()).ok());
  EXPECT_TRUE((*runtime)->Score(dataset_->new_items.front()).ok());
}

TEST_F(InferenceRuntimeTest, PublishRejectsCorruptSnapshotAndKeepsServing) {
  InferenceRuntime runtime(SmallRuntimeConfig());
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());
  const int64_t item = dataset_->new_items.front();
  const auto before = runtime.Score(item);
  ASSERT_TRUE(before.ok());

  // NaN in the mean-user vector: DataLoss, version unchanged.
  nn::Tensor poisoned = predictor_->mean_user_vector();
  poisoned.data()[0] = std::numeric_limits<float>::quiet_NaN();
  ServingSnapshot corrupt = MakeSnapshot();
  corrupt.predictor = std::make_shared<core::PopularityPredictor>(
      std::move(poisoned), predictor_->bias());
  const auto rejected = runtime.Publish(std::move(corrupt));
  EXPECT_EQ(rejected.status().code(), StatusCode::kDataLoss);
  EXPECT_EQ(runtime.snapshot_version(), 1u);

  // Null members and dimension mismatches are InvalidArgument.
  ServingSnapshot null_model = MakeSnapshot();
  null_model.model = nullptr;
  EXPECT_EQ(runtime.Publish(std::move(null_model)).status().code(),
            StatusCode::kInvalidArgument);
  ServingSnapshot bad_dim = MakeSnapshot();
  bad_dim.predictor = std::make_shared<core::PopularityPredictor>(
      nn::Tensor(1, model_->vector_dim() + 1), 0.0f);
  EXPECT_EQ(runtime.Publish(std::move(bad_dim)).status().code(),
            StatusCode::kInvalidArgument);

  // The version published before the corrupt attempts still serves, with
  // identical scores.
  const auto after = runtime.Score(item);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().score, before.value().score);
  EXPECT_EQ(after.value().snapshot_version, 1u);
  runtime.Shutdown();
  EXPECT_EQ(runtime.stats().publish_rejected, 3);
  EXPECT_EQ(runtime.stats().swaps, 1);
}

TEST_F(InferenceRuntimeTest, FallbackChainWalksCacheThenPriorThenGlobalMean) {
  RuntimeConfig config = SmallRuntimeConfig();
  config.num_workers = 1;  // deterministic batching and cache contents
  InferenceRuntime runtime(config);
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());

  // Four distinct items play four roles.
  const int64_t cached_item = dataset_->new_items[0];
  const int64_t rotated_item = dataset_->new_items[1];
  const int64_t prior_item = dataset_->new_items[2];
  const int64_t unknown_item = dataset_->new_items[3];

  // Tier 0 (fresh-from-cache): a cached item answered under an expired
  // deadline is exact — no forward pass, no degradation.
  const auto fresh = runtime.Score(cached_item);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value().tier, ServingTier::kFresh);
  const auto from_cache = runtime.ScoreAsync(cached_item, 1).get();
  ASSERT_TRUE(from_cache.ok());
  EXPECT_EQ(from_cache.value().tier, ServingTier::kFresh);
  EXPECT_EQ(from_cache.value().score, fresh.value().score);

  // Tier 1 (stale cache): publish v2 with a different predictor, warm the
  // v2 cache with another item (rotating v1's scores into the stale
  // generation), then ask for the v1-cached item under an expired deadline.
  const auto group_b = core::SelectActiveUsers(*dataset_, 16);
  ServingSnapshot snapshot_b = MakeSnapshot();
  snapshot_b.predictor = std::make_shared<core::PopularityPredictor>(
      core::PopularityPredictor::Build(*model_, *dataset_, group_b));
  ASSERT_TRUE(runtime.Publish(std::move(snapshot_b)).ok());
  const auto rotated_fresh = runtime.Score(rotated_item);
  ASSERT_TRUE(rotated_fresh.ok());
  EXPECT_EQ(rotated_fresh.value().snapshot_version, 2u);
  const auto stale = runtime.ScoreAsync(cached_item, 1).get();
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.value().tier, ServingTier::kStaleCache);
  EXPECT_EQ(stale.value().snapshot_version, 1u);
  EXPECT_EQ(stale.value().score, fresh.value().score);

  // Tier 2 (prior): an item never scored by any version, present in the
  // popularity-index prior.
  auto prior = std::make_shared<serving::PopularityIndex>();
  prior->Upsert(prior_item, 0.777);
  runtime.SetPrior(prior);
  const auto from_prior = runtime.ScoreAsync(prior_item, 1).get();
  ASSERT_TRUE(from_prior.ok());
  EXPECT_EQ(from_prior.value().tier, ServingTier::kPrior);
  EXPECT_EQ(from_prior.value().score, 0.777);

  // Tier 3 (global mean): unknown everywhere — the running mean of the two
  // fresh forwards served above.
  const auto from_mean = runtime.ScoreAsync(unknown_item, 1).get();
  ASSERT_TRUE(from_mean.ok());
  EXPECT_EQ(from_mean.value().tier, ServingTier::kGlobalMean);
  EXPECT_NEAR(
      from_mean.value().score,
      (fresh.value().score + rotated_fresh.value().score) / 2.0, 1e-12);

  runtime.Shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.tier_counts[static_cast<size_t>(ServingTier::kStaleCache)],
            1);
  EXPECT_EQ(stats.tier_counts[static_cast<size_t>(ServingTier::kPrior)], 1);
  EXPECT_EQ(stats.tier_counts[static_cast<size_t>(ServingTier::kGlobalMean)],
            1);
  EXPECT_EQ(stats.degraded, 3);
  EXPECT_GE(stats.deadline_expired, 3);
}

TEST_F(InferenceRuntimeTest, DeadlineWithFallbackDisabledIsAnError) {
  RuntimeConfig config = SmallRuntimeConfig();
  config.enable_degraded_fallback = false;
  InferenceRuntime runtime(config);
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());
  const auto result =
      runtime.ScoreAsync(dataset_->new_items.front(), 1).get();
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  runtime.Shutdown();
  EXPECT_EQ(runtime.stats().deadline_expired, 1);
  EXPECT_EQ(runtime.stats().completed_error, 1);
}

TEST_F(InferenceRuntimeTest, DegradedAnswersNeverBlockOnTheQueue) {
  // Every admission is treated as queue-full by the injector; with the
  // fallback chain on, each request must resolve immediately without ever
  // entering the queue — degraded service stays cheap under overload.
  RuntimeConfig config = SmallRuntimeConfig();
  config.fault_injection.enabled = true;
  config.fault_injection.enqueue_reject_probability = 1.0;
  auto prior = std::make_shared<serving::PopularityIndex>();
  for (int64_t item : dataset_->new_items) prior->Upsert(item, 0.25);
  config.prior = prior;
  InferenceRuntime runtime(config);
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());

  for (int i = 0; i < 64; ++i) {
    auto future = runtime.ScoreAsync(
        dataset_->new_items[static_cast<size_t>(i) %
                            dataset_->new_items.size()]);
    // Already fulfilled: the degraded path answered synchronously.
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const auto result = future.get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().tier, ServingTier::kPrior);
    EXPECT_EQ(result.value().score, 0.25);
  }
  EXPECT_EQ(runtime.queue_depth(), 0u);
  runtime.Shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.degraded, 64);
  EXPECT_EQ(stats.faults_injected, 64);
  EXPECT_EQ(stats.enqueued, 0);
}

TEST_F(InferenceRuntimeTest, InjectedFaultsDegradeEveryResponseCleanly) {
  RuntimeConfig config = SmallRuntimeConfig();
  config.fault_injection.enabled = true;
  config.fault_injection.seed = 99;
  config.fault_injection.worker_delay_probability = 0.2;
  config.fault_injection.worker_delay_us = 200;
  config.fault_injection.batch_failure_probability = 0.3;
  config.fault_injection.enqueue_reject_probability = 0.1;
  InferenceRuntime runtime(config);
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());

  constexpr int kRequests = 500;
  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(runtime.ScoreAsync(
        dataset_->new_items[static_cast<size_t>(i) %
                            dataset_->new_items.size()]));
  }
  for (auto& future : futures) {
    const auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  runtime.Shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.completed_ok, kRequests);
  EXPECT_EQ(stats.completed_error, 0);
  EXPECT_GT(stats.faults_injected, 0);
  int64_t tier_sum = 0;
  for (const int64_t count : stats.tier_counts) tier_sum += count;
  EXPECT_EQ(tier_sum, kRequests);  // every response carries a tier
}

TEST_F(InferenceRuntimeTest,
       CorruptAndValidPublishesUnderConcurrentLoadStayConsistent) {
  // TSan stress for the validation path: publishers race corrupt and valid
  // snapshots against scoring clients. Corrupt publishes must all be
  // rejected, every request answered, and served versions only ever name
  // validly published snapshots.
  InferenceRuntime runtime(SmallRuntimeConfig());
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> corrupt_accepted{0};
  std::thread valid_publisher([&] {
    while (!stop.load()) {
      runtime.Publish(MakeSnapshot());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::thread corrupt_publisher([&] {
    while (!stop.load()) {
      nn::Tensor poisoned = predictor_->mean_user_vector();
      poisoned.data()[0] = std::numeric_limits<float>::infinity();
      ServingSnapshot corrupt = MakeSnapshot();
      corrupt.predictor = std::make_shared<core::PopularityPredictor>(
          std::move(poisoned), predictor_->bias());
      if (runtime.Publish(std::move(corrupt)).ok()) {
        corrupt_accepted.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kRounds = 10;
  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  for (int round = 0; round < kRounds; ++round) {
    for (const int64_t item : dataset_->new_items) {
      futures.push_back(runtime.ScoreAsync(item));
    }
  }
  int64_t answered = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GE(result.value().snapshot_version, 1u);
    ++answered;
  }
  stop.store(true);
  valid_publisher.join();
  corrupt_publisher.join();
  runtime.Shutdown();

  EXPECT_EQ(answered, static_cast<int64_t>(futures.size()));
  EXPECT_EQ(corrupt_accepted.load(), 0);
  const auto stats = runtime.stats();
  EXPECT_GT(stats.publish_rejected, 0);
  EXPECT_EQ(stats.completed_error, 0);
}

// The low-precision serving path: a snapshot whose generator is the int8
// artifact and whose fp32 model is deliberately null must validate,
// publish, and answer every request with exactly the scores the quantized
// forward produces (the runtime adds batching, not arithmetic).
TEST_F(InferenceRuntimeTest, QuantizedSnapshotServesWithoutFp32Model) {
  const data::BlockBatch calibration =
      data::GatherBlock(dataset_->item_profiles, dataset_->new_items);
  auto quantized = quant::QuantizedGenerator::Build(
      *model_, calibration, quant::Precision::kInt8);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();

  nn::Tensor vectors;
  ASSERT_TRUE(quantized->Forward(calibration, &vectors).ok());
  std::vector<double> expected;
  expected.reserve(static_cast<size_t>(vectors.rows()));
  for (int64_t r = 0; r < vectors.rows(); ++r) {
    expected.push_back(
        predictor_->ScoreVector(vectors.row_ptr(r), vectors.cols()));
  }

  ServingSnapshot snapshot;
  snapshot.quantized = Unowned(&*quantized);
  snapshot.predictor = Unowned(predictor_);
  snapshot.item_profiles = Unowned(&dataset_->item_profiles);
  snapshot.tag = "test-int8";

  InferenceRuntime runtime(SmallRuntimeConfig());
  const auto published = runtime.Publish(std::move(snapshot));
  ASSERT_TRUE(published.ok()) << published.status().ToString();

  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  futures.reserve(dataset_->new_items.size());
  for (int64_t item : dataset_->new_items) {
    futures.push_back(runtime.ScoreAsync(item));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NEAR(result.value().score, expected[i], 1e-9) << i;
  }
  runtime.Shutdown();
  EXPECT_EQ(runtime.stats().completed_error, 0);
}

TEST_F(InferenceRuntimeTest, StatsTableRendersEveryStage) {
  InferenceRuntime runtime(SmallRuntimeConfig());
  runtime.Publish(MakeSnapshot());
  for (int i = 0; i < 32; ++i) {
    runtime.ScoreAsync(dataset_->new_items[static_cast<size_t>(i) %
                                           dataset_->new_items.size()]);
  }
  runtime.Shutdown();
  const std::string table = RuntimeStats::ToTable(runtime.stats());
  for (const char* stage :
       {"enqueue_wait_us", "batch_size", "score_us", "total_latency_us",
        "enqueued", "rejected", "completed_ok", "cache_hits",
        "snapshot_swaps"}) {
    EXPECT_NE(table.find(stage), std::string::npos) << stage;
  }
}

// Regression: the score cache used to rotate generations lazily, on the
// first scored batch of a new version. Under a streaming publish cadence
// (publishes outpacing traffic) the stale-while-revalidate generation
// then held scores from versions arbitrarily older than the 1-version
// window it advertises. Publish now evicts retired generations eagerly.
TEST_F(InferenceRuntimeTest, PublishEvictsRetiredCacheGenerations) {
  RuntimeConfig config = SmallRuntimeConfig();
  config.num_workers = 1;
  InferenceRuntime runtime(config);
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());

  // Populate version 1's fresh generation.
  const int64_t item = dataset_->new_items.front();
  ASSERT_TRUE(runtime.Score(item).ok());
  auto generations = runtime.ScoreCacheGenerationsForTest();
  EXPECT_EQ(generations.fresh_version, 1u);
  EXPECT_EQ(generations.fresh_entries, 1u);

  // One publish with NO traffic in between: version 1's scores rotate to
  // the stale generation immediately, not on the next scored batch.
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());
  generations = runtime.ScoreCacheGenerationsForTest();
  EXPECT_EQ(generations.fresh_version, 2u);
  EXPECT_EQ(generations.fresh_entries, 0u);
  EXPECT_EQ(generations.stale_version, 1u);
  EXPECT_EQ(generations.stale_entries, 1u);

  // A second traffic-less publish retires version 1 entirely. On the old
  // lazy-rotation code the stale generation still held version 1 here —
  // outside the one-version stale-while-revalidate window.
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());
  generations = runtime.ScoreCacheGenerationsForTest();
  EXPECT_EQ(generations.fresh_version, 3u);
  EXPECT_EQ(generations.fresh_entries, 0u);
  EXPECT_EQ(generations.stale_version, 2u);
  EXPECT_EQ(generations.stale_entries, 0u);
}

TEST_F(InferenceRuntimeTest, CacheGenerationBoundHoldsUnderPublishChurn) {
  RuntimeConfig config = SmallRuntimeConfig();
  config.num_workers = 1;
  InferenceRuntime runtime(config);
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());
  // Interleave traffic and publishes; after every publish the invariant
  // holds: fresh generation is the live version, stale is at most one
  // version behind, nothing older survives.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          runtime
              .Score(dataset_->new_items[static_cast<size_t>(i + round)])
              .ok());
    }
    ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());
    const auto generations = runtime.ScoreCacheGenerationsForTest();
    const uint64_t live = runtime.snapshot_version();
    EXPECT_EQ(generations.fresh_version, live);
    EXPECT_EQ(generations.fresh_entries, 0u);
    EXPECT_EQ(generations.stale_version, live - 1);
    EXPECT_EQ(generations.stale_entries, 3u);
  }
}

}  // namespace
}  // namespace atnn::runtime
