#include "runtime/inference_runtime.h"

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "core/atnn.h"
#include "core/popularity.h"
#include "data/tmall.h"

namespace atnn::runtime {
namespace {

/// One tiny world + model per test binary: the runtime's correctness
/// contract is "same scores as the sequential O(1) path", which does not
/// require trained weights, so the model stays at its (deterministic,
/// seeded) initialization.
class InferenceRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        core::testing_helpers::MakeNormalizedTinyDataset());
    core::AtnnConfig config;
    config.tower = core::testing_helpers::TinyTowerConfig(
        nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = new core::AtnnModel(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, config);
    const auto group = core::SelectActiveUsers(*dataset_, 64);
    predictor_ = new core::PopularityPredictor(
        core::PopularityPredictor::Build(*model_, *dataset_, group));
  }

  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static ServingSnapshot MakeSnapshot() {
    ServingSnapshot snapshot;
    snapshot.model = Unowned(model_);
    snapshot.predictor = Unowned(predictor_);
    snapshot.item_profiles = Unowned(&dataset_->item_profiles);
    snapshot.tag = "test";
    return snapshot;
  }

  static RuntimeConfig SmallRuntimeConfig() {
    RuntimeConfig config;
    config.num_workers = 2;
    config.batcher.max_batch_size = 16;
    config.batcher.max_delay_us = 500;
    config.batcher.queue_capacity = 256;
    return config;
  }

  static data::TmallDataset* dataset_;
  static core::AtnnModel* model_;
  static core::PopularityPredictor* predictor_;
};

data::TmallDataset* InferenceRuntimeTest::dataset_ = nullptr;
core::AtnnModel* InferenceRuntimeTest::model_ = nullptr;
core::PopularityPredictor* InferenceRuntimeTest::predictor_ = nullptr;

TEST_F(InferenceRuntimeTest, MatchesSequentialScoring) {
  const std::vector<double> expected =
      predictor_->ScoreItems(*model_, *dataset_, dataset_->new_items);

  InferenceRuntime runtime(SmallRuntimeConfig());
  EXPECT_EQ(runtime.Publish(MakeSnapshot()), 1u);

  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  futures.reserve(dataset_->new_items.size());
  for (int64_t item : dataset_->new_items) {
    futures.push_back(runtime.ScoreAsync(item));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const auto result = futures[i].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NEAR(result.value().score, expected[i], 1e-9);
    EXPECT_EQ(result.value().snapshot_version, 1u);
  }

  runtime.Shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.enqueued,
            static_cast<int64_t>(dataset_->new_items.size()));
  EXPECT_EQ(stats.completed_ok,
            static_cast<int64_t>(dataset_->new_items.size()));
  EXPECT_EQ(stats.completed_error, 0);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(stats.batches, 1);
  // Micro-batching actually coalesced: fewer batches than requests.
  EXPECT_LT(stats.batches, stats.enqueued);
  EXPECT_LE(stats.batch_size.max(),
            static_cast<double>(SmallRuntimeConfig().batcher.max_batch_size));
}

TEST_F(InferenceRuntimeTest, ScoreBeforePublishFailsCleanly) {
  InferenceRuntime runtime(SmallRuntimeConfig());
  const auto result = runtime.Score(0);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(InferenceRuntimeTest, OutOfRangeRowIsInvalidArgument) {
  InferenceRuntime runtime(SmallRuntimeConfig());
  runtime.Publish(MakeSnapshot());
  EXPECT_EQ(runtime.Score(-1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(runtime
                .Score(dataset_->item_profiles.num_rows() + 5)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // A valid row still works in the same runtime (mixed batches split).
  EXPECT_TRUE(runtime.Score(dataset_->new_items.front()).ok());
}

TEST_F(InferenceRuntimeTest, SyncScoreMatchesAsync) {
  InferenceRuntime runtime(SmallRuntimeConfig());
  runtime.Publish(MakeSnapshot());
  const int64_t item = dataset_->new_items.front();
  const auto sync = runtime.Score(item);
  ASSERT_TRUE(sync.ok());
  const auto async = runtime.ScoreAsync(item).get();
  ASSERT_TRUE(async.ok());
  EXPECT_NEAR(sync.value().score, async.value().score, 1e-12);
}

TEST_F(InferenceRuntimeTest, ScoreCacheServesRepeatsAndInvalidatesOnPublish) {
  RuntimeConfig config = SmallRuntimeConfig();
  config.num_workers = 1;  // sync Score => one request per batch, so the
                           // cache-hit count below is exact
  InferenceRuntime runtime(config);
  runtime.Publish(MakeSnapshot());

  const int64_t item = dataset_->new_items.front();
  const auto first = runtime.Score(item);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 8; ++i) {
    const auto repeat = runtime.Score(item);
    ASSERT_TRUE(repeat.ok());
    // Memoized, so bit-identical — not merely close.
    EXPECT_EQ(repeat.value().score, first.value().score);
    EXPECT_EQ(repeat.value().snapshot_version, 1u);
  }
  EXPECT_EQ(runtime.stats().cache_hits, 8);

  // Publishing a snapshot with a different mean-user vector must invalidate
  // every cached score: version 1 values may not leak into version 2.
  const auto group_b = core::SelectActiveUsers(*dataset_, 16);
  const auto predictor_b = std::make_shared<core::PopularityPredictor>(
      core::PopularityPredictor::Build(*model_, *dataset_, group_b));
  const double expected_b =
      predictor_b->ScoreItems(*model_, *dataset_, {item}).front();
  ServingSnapshot snapshot;
  snapshot.model = Unowned(model_);
  snapshot.predictor = predictor_b;
  snapshot.item_profiles = Unowned(&dataset_->item_profiles);
  runtime.Publish(std::move(snapshot));

  const auto after = runtime.Score(item);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().snapshot_version, 2u);
  EXPECT_NEAR(after.value().score, expected_b, 1e-9);
  EXPECT_NE(after.value().score, first.value().score);
}

TEST_F(InferenceRuntimeTest, HotSwapChurnDropsNothingAndScoresConsistently) {
  // Two model versions that differ only in the mean-user vector: odd
  // versions serve group A, even versions group B.
  const auto group_a = core::SelectActiveUsers(*dataset_, 64);
  const auto group_b = core::SelectActiveUsers(*dataset_, 16);
  const auto predictor_a = std::make_shared<core::PopularityPredictor>(
      core::PopularityPredictor::Build(*model_, *dataset_, group_a));
  const auto predictor_b = std::make_shared<core::PopularityPredictor>(
      core::PopularityPredictor::Build(*model_, *dataset_, group_b));
  const std::vector<double> expected_a =
      predictor_a->ScoreItems(*model_, *dataset_, dataset_->new_items);
  const std::vector<double> expected_b =
      predictor_b->ScoreItems(*model_, *dataset_, dataset_->new_items);

  const auto snapshot_for = [&](int version_parity) {
    ServingSnapshot snapshot;
    snapshot.model = Unowned(model_);
    snapshot.predictor = version_parity % 2 == 1 ? predictor_a : predictor_b;
    snapshot.item_profiles = Unowned(&dataset_->item_profiles);
    return snapshot;
  };

  InferenceRuntime runtime(SmallRuntimeConfig());
  runtime.Publish(snapshot_for(1));

  std::atomic<bool> stop_publishing{false};
  std::thread publisher([&] {
    int version = 2;
    while (!stop_publishing.load()) {
      runtime.Publish(snapshot_for(version++));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr int kRounds = 20;
  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  std::vector<size_t> item_index;
  futures.reserve(kRounds * dataset_->new_items.size());
  for (int round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < dataset_->new_items.size(); ++i) {
      futures.push_back(runtime.ScoreAsync(dataset_->new_items[i]));
      item_index.push_back(i);
    }
  }

  // Zero drops: every single future resolves with a score, and each score
  // is exactly what the version recorded in its response would produce.
  for (size_t f = 0; f < futures.size(); ++f) {
    const auto result = futures[f].get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const auto& expected = result.value().snapshot_version % 2 == 1
                               ? expected_a
                               : expected_b;
    EXPECT_NEAR(result.value().score, expected[item_index[f]], 1e-9);
  }

  stop_publishing.store(true);
  publisher.join();
  runtime.Shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.completed_ok, static_cast<int64_t>(futures.size()));
  EXPECT_EQ(stats.completed_error, 0);
  EXPECT_GE(stats.swaps, 2);
}

TEST_F(InferenceRuntimeTest, RejectPolicyShedsButNeverHangs) {
  RuntimeConfig config;
  config.num_workers = 1;
  config.batcher.max_batch_size = 8;
  config.batcher.max_delay_us = 200;
  config.batcher.queue_capacity = 8;
  config.batcher.admission = AdmissionPolicy::kRejectWithStatus;
  InferenceRuntime runtime(config);
  runtime.Publish(MakeSnapshot());

  constexpr int kRequests = 400;
  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(
        runtime.ScoreAsync(dataset_->new_items[static_cast<size_t>(i) %
                                               dataset_->new_items.size()]));
  }
  int ok = 0;
  int rejected = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    if (result.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, kRequests);
  EXPECT_GT(ok, 0);  // overload sheds, it does not collapse
  runtime.Shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.enqueued, ok);
  EXPECT_EQ(stats.rejected, rejected);
}

TEST_F(InferenceRuntimeTest, StatsTableRendersEveryStage) {
  InferenceRuntime runtime(SmallRuntimeConfig());
  runtime.Publish(MakeSnapshot());
  for (int i = 0; i < 32; ++i) {
    runtime.ScoreAsync(dataset_->new_items[static_cast<size_t>(i) %
                                           dataset_->new_items.size()]);
  }
  runtime.Shutdown();
  const std::string table = RuntimeStats::ToTable(runtime.stats());
  for (const char* stage :
       {"enqueue_wait_us", "batch_size", "score_us", "total_latency_us",
        "enqueued", "rejected", "completed_ok", "cache_hits",
        "snapshot_swaps"}) {
    EXPECT_NE(table.find(stage), std::string::npos) << stage;
  }
}

}  // namespace
}  // namespace atnn::runtime
