#include "runtime/runtime_stats.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace atnn::runtime {
namespace {

TEST(RuntimeStatsTest, SnapshotReflectsRecordedEvents) {
  RuntimeStats stats;
  stats.RecordEnqueued();
  stats.RecordEnqueued();
  stats.RecordRejected();
  stats.RecordBatch(/*batch_size=*/8, /*score_us=*/120.0);
  stats.RecordCacheHits(3);
  stats.RecordEnqueueWait(40.0);
  stats.RecordResponse(/*ok=*/true, /*total_latency_us=*/200.0);
  stats.RecordResponse(/*ok=*/false, /*total_latency_us=*/9000.0);
  stats.RecordSwap();
  stats.RecordPublishRejected();
  stats.RecordDeadlineExpired();

  const StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.enqueued, 2);
  EXPECT_EQ(snapshot.rejected, 1);
  EXPECT_EQ(snapshot.completed_ok, 1);
  EXPECT_EQ(snapshot.completed_error, 1);
  EXPECT_EQ(snapshot.batches, 1);
  EXPECT_EQ(snapshot.cache_hits, 3);
  EXPECT_EQ(snapshot.swaps, 1);
  EXPECT_EQ(snapshot.publish_rejected, 1);
  EXPECT_EQ(snapshot.deadline_expired, 1);
  EXPECT_EQ(snapshot.batch_size.count(), 1);
  EXPECT_DOUBLE_EQ(snapshot.batch_size.max(), 8.0);
  EXPECT_EQ(snapshot.score_us.count(), 1);
  EXPECT_EQ(snapshot.enqueue_wait_us.count(), 1);
  EXPECT_EQ(snapshot.total_latency_us.count(), 2);
}

TEST(RuntimeStatsTest, ServedTiersSplitFreshFromDegraded) {
  RuntimeStats stats;
  stats.RecordServed(ServingTier::kFresh, 100.0);
  stats.RecordServed(ServingTier::kFresh, 110.0);
  stats.RecordServed(ServingTier::kStaleCache, 50.0);
  stats.RecordServed(ServingTier::kPrior, 30.0);
  stats.RecordServed(ServingTier::kGlobalMean, 10.0);

  const StatsSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.completed_ok, 5);
  EXPECT_EQ(snapshot.degraded, 3);
  EXPECT_EQ(snapshot.tier_counts[static_cast<size_t>(ServingTier::kFresh)],
            2);
  EXPECT_EQ(
      snapshot.tier_counts[static_cast<size_t>(ServingTier::kStaleCache)], 1);
  EXPECT_EQ(snapshot.tier_counts[static_cast<size_t>(ServingTier::kPrior)],
            1);
  EXPECT_EQ(
      snapshot.tier_counts[static_cast<size_t>(ServingTier::kGlobalMean)], 1);
  // Only fresh-tier latencies feed the fresh histogram.
  EXPECT_EQ(snapshot.fresh_latency_us.count(), 2);
  EXPECT_EQ(snapshot.total_latency_us.count(), 5);
}

// The lock-free migration's correctness test: hammer every Record* method
// from many threads and check nothing is lost. Under TSan this also proves
// the "no data races" half of the contract.
TEST(RuntimeStatsTest, ConcurrentRecordingLosesNothing) {
  RuntimeStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats] {
      for (int i = 0; i < kPerThread; ++i) {
        stats.RecordEnqueued();
        stats.RecordBatch(4, 100.0);
        stats.RecordServed(ServingTier::kFresh, 250.0);
        stats.RecordEnqueueWait(10.0);
        stats.SetQueueDepth(static_cast<size_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const StatsSnapshot snapshot = stats.Snapshot();
  constexpr int64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(snapshot.enqueued, kTotal);
  EXPECT_EQ(snapshot.batches, kTotal);
  EXPECT_EQ(snapshot.completed_ok, kTotal);
  EXPECT_EQ(snapshot.tier_counts[static_cast<size_t>(ServingTier::kFresh)],
            kTotal);
  EXPECT_EQ(snapshot.batch_size.count(), kTotal);
  EXPECT_EQ(snapshot.fresh_latency_us.count(), kTotal);
  EXPECT_EQ(snapshot.enqueue_wait_us.count(), kTotal);
  EXPECT_EQ(snapshot.degraded, 0);
}

TEST(RuntimeStatsTest, RecordingIsLockFreeOnTheRegistry) {
  RuntimeStats stats;
  const int64_t locks_after_construction =
      stats.registry().mutex_acquisitions();
  for (int i = 0; i < 1000; ++i) {
    stats.RecordEnqueued();
    stats.RecordBatch(8, 50.0);
    stats.RecordServed(ServingTier::kFresh, 100.0);
    stats.SetQueueDepth(3);
  }
  (void)stats.Snapshot();  // snapshot reads handles, not the registry map
  EXPECT_EQ(stats.registry().mutex_acquisitions(), locks_after_construction);
}

TEST(RuntimeStatsTest, RegistryExposesRuntimeMetricsForExporters) {
  RuntimeStats stats;
  stats.RecordEnqueued();
  stats.RecordServed(ServingTier::kPrior, 42.0);
  const obs::MetricsSnapshot collected = stats.registry().Collect();
  bool saw_enqueued = false;
  bool saw_tier_prior = false;
  for (const auto& [name, value] : collected.counters) {
    if (name == "enqueued" && value == 1) saw_enqueued = true;
    if (name == "tier.prior" && value == 1) saw_tier_prior = true;
  }
  EXPECT_TRUE(saw_enqueued);
  EXPECT_TRUE(saw_tier_prior);
}

TEST(RuntimeStatsTest, ToTableListsEveryStageAndTier) {
  RuntimeStats stats;
  stats.RecordServed(ServingTier::kGlobalMean, 10.0);
  const std::string table = RuntimeStats::ToTable(stats.Snapshot());
  for (const char* needle :
       {"enqueue_wait_us", "batch_size", "score_us", "total_latency_us",
        "fresh_latency_us", "enqueued", "rejected", "completed_ok",
        "deadline_expired", "degraded", "tier_fresh", "tier_stale_cache",
        "tier_prior", "tier_global_mean"}) {
    EXPECT_NE(table.find(needle), std::string::npos) << needle;
  }
}

TEST(ServingTierTest, NamesAreStable) {
  EXPECT_STREQ(ServingTierToString(ServingTier::kFresh), "fresh");
  EXPECT_STREQ(ServingTierToString(ServingTier::kStaleCache), "stale_cache");
  EXPECT_STREQ(ServingTierToString(ServingTier::kPrior), "prior");
  EXPECT_STREQ(ServingTierToString(ServingTier::kGlobalMean), "global_mean");
}

}  // namespace
}  // namespace atnn::runtime
