#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "core/atnn.h"
#include "core/popularity.h"
#include "data/schema.h"
#include "data/tmall.h"
#include "nn/ir/plan.h"
#include "quant/quantized_generator.h"
#include "runtime/inference_runtime.h"

namespace atnn::runtime {
namespace {

/// Compiled serving through the InferenceRuntime: --atnn_compile policy,
/// bitwise parity with the tape, and the plan observability counters.
class CompiledServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        core::testing_helpers::MakeNormalizedTinyDataset());
    core::AtnnConfig config;
    config.tower =
        core::testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = new core::AtnnModel(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, config);
    const auto group = core::SelectActiveUsers(*dataset_, 64);
    predictor_ = new core::PopularityPredictor(
        core::PopularityPredictor::Build(*model_, *dataset_, group));
  }

  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static ServingSnapshot MakeSnapshot() {
    ServingSnapshot snapshot;
    snapshot.model = Unowned(model_);
    snapshot.predictor = Unowned(predictor_);
    snapshot.item_profiles = Unowned(&dataset_->item_profiles);
    snapshot.tag = "compiled-serving-test";
    return snapshot;
  }

  static RuntimeConfig ConfigWithMode(nn::ir::CompileMode mode) {
    RuntimeConfig config;
    config.num_workers = 2;
    config.enable_score_cache = false;  // every request runs the forward
    config.compile_mode = mode;
    return config;
  }

  /// Scores every new item synchronously (deterministic single-row misses).
  static std::vector<double> ScoreAll(InferenceRuntime* runtime) {
    std::vector<double> scores;
    scores.reserve(dataset_->new_items.size());
    for (const int64_t item : dataset_->new_items) {
      const auto result = runtime->Score(item);
      ATNN_CHECK(result.ok()) << result.status().ToString();
      scores.push_back(result.value().score);
    }
    return scores;
  }

  static data::TmallDataset* dataset_;
  static core::AtnnModel* model_;
  static core::PopularityPredictor* predictor_;
};

data::TmallDataset* CompiledServingTest::dataset_ = nullptr;
core::AtnnModel* CompiledServingTest::model_ = nullptr;
core::PopularityPredictor* CompiledServingTest::predictor_ = nullptr;

TEST_F(CompiledServingTest, AutoServesThroughThePlanBitwiseEqualToOff) {
  InferenceRuntime with_plan(ConfigWithMode(nn::ir::CompileMode::kAuto));
  InferenceRuntime tape_only(ConfigWithMode(nn::ir::CompileMode::kOff));
  ASSERT_TRUE(with_plan.Publish(MakeSnapshot()).ok());
  ASSERT_TRUE(tape_only.Publish(MakeSnapshot()).ok());

  const std::vector<double> plan_scores = ScoreAll(&with_plan);
  const std::vector<double> tape_scores = ScoreAll(&tape_only);
  ASSERT_EQ(plan_scores.size(), tape_scores.size());
  for (size_t i = 0; i < plan_scores.size(); ++i) {
    // Bitwise — the compiled program must be indistinguishable from the
    // tape in every serving response.
    EXPECT_EQ(plan_scores[i], tape_scores[i]) << i;
  }

  with_plan.Shutdown();
  tape_only.Shutdown();
  const auto plan_stats = with_plan.stats();
  EXPECT_EQ(plan_stats.plan_compiled, 1);
  EXPECT_EQ(plan_stats.plan_compile_fallback, 0);
  EXPECT_GT(plan_stats.plan_executions, 0);
  EXPECT_EQ(plan_stats.plan_exec_fallback, 0);
  EXPECT_GT(plan_stats.plan_reserved_bytes, 0);

  const auto tape_stats = tape_only.stats();
  EXPECT_EQ(tape_stats.plan_compiled, 0);
  EXPECT_EQ(tape_stats.plan_executions, 0);
}

TEST_F(CompiledServingTest, AutoSkipsQuantizedSnapshotsWithoutNoise) {
  const data::BlockBatch calibration =
      data::GatherBlock(dataset_->item_profiles, dataset_->new_items);
  auto quantized = quant::QuantizedGenerator::Build(
      *model_, calibration, quant::Precision::kInt8);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();

  ServingSnapshot snapshot;
  snapshot.quantized = Unowned(&*quantized);
  snapshot.predictor = Unowned(predictor_);
  snapshot.item_profiles = Unowned(&dataset_->item_profiles);

  InferenceRuntime runtime(ConfigWithMode(nn::ir::CompileMode::kAuto));
  ASSERT_TRUE(runtime.Publish(std::move(snapshot)).ok());
  EXPECT_TRUE(runtime.Score(dataset_->new_items.front()).ok());
  runtime.Shutdown();
  // kAuto recognizes the snapshot serves through the quantized path: no
  // compile attempt, no fallback counted — silence, not noise.
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.plan_compiled, 0);
  EXPECT_EQ(stats.plan_compile_fallback, 0);
  EXPECT_EQ(stats.plan_executions, 0);
  EXPECT_EQ(stats.plan_exec_fallback, 0);
}

TEST_F(CompiledServingTest, OnCompilesHybridSnapshotButQuantizedStillServes) {
  const data::BlockBatch calibration =
      data::GatherBlock(dataset_->item_profiles, dataset_->new_items);
  auto quantized = quant::QuantizedGenerator::Build(
      *model_, calibration, quant::Precision::kInt8);
  ASSERT_TRUE(quantized.ok()) << quantized.status().ToString();

  ServingSnapshot snapshot = MakeSnapshot();
  snapshot.quantized = Unowned(&*quantized);

  InferenceRuntime runtime(ConfigWithMode(nn::ir::CompileMode::kOn));
  ASSERT_TRUE(runtime.Publish(std::move(snapshot)).ok());
  EXPECT_TRUE(runtime.Score(dataset_->new_items.front()).ok());
  runtime.Shutdown();
  // kOn attaches the plan even to a hybrid snapshot (so misconfigurations
  // surface), but the quantized branch still owns execution.
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.plan_compiled, 1);
  EXPECT_EQ(stats.plan_compile_fallback, 0);
  EXPECT_EQ(stats.plan_executions, 0);
  EXPECT_EQ(stats.plan_exec_fallback, 0);
}

TEST_F(CompiledServingTest, PlanCountersRenderInTheStatsTable) {
  InferenceRuntime runtime(ConfigWithMode(nn::ir::CompileMode::kAuto));
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());
  ASSERT_TRUE(runtime.Score(dataset_->new_items.front()).ok());
  runtime.Shutdown();
  const std::string table = RuntimeStats::ToTable(runtime.stats());
  for (const char* row :
       {"plan_compiled", "plan_executions", "plan_reserved_bytes"}) {
    EXPECT_NE(table.find(row), std::string::npos) << row;
  }
}

TEST_F(CompiledServingTest, RepublishingRecompilesPerSnapshot) {
  InferenceRuntime runtime(ConfigWithMode(nn::ir::CompileMode::kAuto));
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());
  ASSERT_TRUE(runtime.Publish(MakeSnapshot()).ok());
  const std::vector<double> scores = ScoreAll(&runtime);
  EXPECT_EQ(scores.size(), dataset_->new_items.size());
  runtime.Shutdown();
  // Each published snapshot carries its own plan (weights may differ
  // between versions), and serving still never fell back.
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.plan_compiled, 2);
  EXPECT_EQ(stats.plan_exec_fallback, 0);
}

}  // namespace
}  // namespace atnn::runtime
