#include "runtime/snapshot_handle.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace atnn::runtime {
namespace {

TEST(SnapshotHandleTest, EmptyHandleHasNoSnapshot) {
  SnapshotHandle handle;
  EXPECT_EQ(handle.Acquire(), nullptr);
  EXPECT_EQ(handle.version(), 0u);
}

TEST(SnapshotHandleTest, PublishAssignsIncreasingVersions) {
  SnapshotHandle handle;
  ServingSnapshot first;
  first.tag = "checkpoint-a";
  EXPECT_EQ(handle.Publish(std::move(first)), 1u);
  ServingSnapshot second;
  second.tag = "checkpoint-b";
  EXPECT_EQ(handle.Publish(std::move(second)), 2u);
  const auto current = handle.Acquire();
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 2u);
  EXPECT_EQ(current->tag, "checkpoint-b");
  EXPECT_EQ(handle.version(), 2u);
}

TEST(SnapshotHandleTest, OldVersionSurvivesWhileHeld) {
  SnapshotHandle handle;
  ServingSnapshot first;
  first.tag = "old";
  handle.Publish(std::move(first));
  const auto held = handle.Acquire();
  ServingSnapshot second;
  second.tag = "new";
  handle.Publish(std::move(second));
  // The in-flight reference still sees the version it acquired — the
  // hot-swap contract that lets batches finish on the old model.
  EXPECT_EQ(held->tag, "old");
  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(handle.Acquire()->tag, "new");
}

TEST(SnapshotHandleTest, UnownedAliasesWithoutOwnership) {
  const std::string payload = "stack-owned";
  const auto alias = Unowned(&payload);
  EXPECT_EQ(alias.get(), &payload);
  EXPECT_EQ(alias.use_count(), 0);  // empty control block: non-owning
}

// The satellite stress test: one publisher, N readers hammering Acquire.
// Each published snapshot carries its (predicted) version in the tag, so a
// torn read — a snapshot whose version and payload disagree — is
// detectable. Run under -fsanitize=thread in CI's tsan job.
TEST(SnapshotHandleTest, ConcurrentPublishAndReadNeverTears) {
  SnapshotHandle handle;
  constexpr int kPublishes = 2000;
  constexpr int kReaders = 4;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&handle, &done] {
      uint64_t last_version = 0;
      while (!done.load(std::memory_order_acquire)) {
        const auto snapshot = handle.Acquire();
        if (snapshot == nullptr) continue;
        // No torn reads: payload matches the version it was built for.
        ASSERT_EQ(snapshot->tag, "v" + std::to_string(snapshot->version));
        // Monotonic publication: a reader never travels back in time.
        ASSERT_GE(snapshot->version, last_version);
        last_version = snapshot->version;
      }
    });
  }

  for (int i = 1; i <= kPublishes; ++i) {
    ServingSnapshot snapshot;
    // The single publisher can predict the version Publish will assign.
    snapshot.tag = "v" + std::to_string(i);
    ASSERT_EQ(handle.Publish(std::move(snapshot)),
              static_cast<uint64_t>(i));
  }
  done.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(handle.version(), static_cast<uint64_t>(kPublishes));
  EXPECT_EQ(handle.Acquire()->tag, "v" + std::to_string(kPublishes));
}

}  // namespace
}  // namespace atnn::runtime
