#include "runtime/fault_injection.h"

#include <vector>

#include <gtest/gtest.h>

namespace atnn::runtime {
namespace {

TEST(FaultInjectionTest, DisabledInjectorIsInertEverywhere) {
  FaultInjectionConfig config;  // enabled defaults to false
  config.worker_delay_probability = 1.0;
  config.worker_delay_us = 1000;
  config.batch_failure_probability = 1.0;
  config.enqueue_reject_probability = 1.0;
  config.corrupt_next_publish = true;
  FaultInjector injector(config);
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.MaybeWorkerDelayUs(), 0);
    EXPECT_FALSE(injector.ShouldFailBatch());
    EXPECT_FALSE(injector.ShouldRejectEnqueue());
    EXPECT_FALSE(injector.TakeCorruptPublish());
  }
  EXPECT_EQ(injector.faults_injected(), 0);
}

TEST(FaultInjectionTest, SameSeedSameFaultSequence) {
  FaultInjectionConfig config;
  config.enabled = true;
  config.seed = 1234;
  config.batch_failure_probability = 0.5;
  FaultInjector a(config);
  FaultInjector b(config);
  std::vector<bool> draws_a, draws_b;
  for (int i = 0; i < 200; ++i) {
    draws_a.push_back(a.ShouldFailBatch());
    draws_b.push_back(b.ShouldFailBatch());
  }
  EXPECT_EQ(draws_a, draws_b);
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  // A fair coin over 200 draws lands strictly inside (0, 200).
  EXPECT_GT(a.faults_injected(), 0);
  EXPECT_LT(a.faults_injected(), 200);
}

TEST(FaultInjectionTest, ProbabilityExtremesAreDeterministic) {
  FaultInjectionConfig config;
  config.enabled = true;
  config.enqueue_reject_probability = 1.0;
  config.batch_failure_probability = 0.0;
  FaultInjector injector(config);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.ShouldRejectEnqueue());
    EXPECT_FALSE(injector.ShouldFailBatch());
  }
  EXPECT_EQ(injector.faults_injected(), 50);
}

TEST(FaultInjectionTest, WorkerDelayReturnsConfiguredMicros) {
  FaultInjectionConfig config;
  config.enabled = true;
  config.worker_delay_probability = 1.0;
  config.worker_delay_us = 250;
  FaultInjector injector(config);
  EXPECT_EQ(injector.MaybeWorkerDelayUs(), 250);
  EXPECT_EQ(injector.faults_injected(), 1);
}

TEST(FaultInjectionTest, CorruptPublishIsOneShotAndRearmable) {
  FaultInjectionConfig config;
  config.enabled = true;
  config.corrupt_next_publish = true;
  FaultInjector injector(config);
  EXPECT_TRUE(injector.TakeCorruptPublish());
  // Consumed: the next publishes are clean until rearmed.
  EXPECT_FALSE(injector.TakeCorruptPublish());
  EXPECT_FALSE(injector.TakeCorruptPublish());
  injector.ArmCorruptPublish();
  EXPECT_TRUE(injector.TakeCorruptPublish());
  EXPECT_FALSE(injector.TakeCorruptPublish());
  EXPECT_EQ(injector.faults_injected(), 2);
}

}  // namespace
}  // namespace atnn::runtime
