#include "runtime/micro_batcher.h"

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace atnn::runtime {
namespace {

BatcherConfig SmallConfig() {
  BatcherConfig config;
  config.max_batch_size = 4;
  config.max_delay_us = 2000;
  config.queue_capacity = 8;
  return config;
}

TEST(MicroBatcherTest, FlushesWhenBatchFills) {
  BatcherConfig config = SmallConfig();
  config.max_delay_us = 10'000'000;  // never flush on time in this test
  MicroBatcher batcher(config);
  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  for (int64_t i = 0; i < 4; ++i) futures.push_back(batcher.Enqueue(i));
  const auto batch = batcher.PopBatch();
  ASSERT_EQ(batch.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].item_row, i);
  batcher.Close();
}

TEST(MicroBatcherTest, FlushesPartialBatchOnDeadline) {
  BatcherConfig config = SmallConfig();
  config.max_delay_us = 1000;
  MicroBatcher batcher(config);
  auto f0 = batcher.Enqueue(7);
  auto f1 = batcher.Enqueue(8);
  // Only 2 of 4 queued: PopBatch must return once the oldest request ages
  // past max_delay_us instead of waiting for a full batch.
  const auto batch = batcher.PopBatch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].item_row, 7);
  EXPECT_EQ(batch[1].item_row, 8);
  batcher.Close();
}

TEST(MicroBatcherTest, FlushHintReleasesPartialBatchWithoutTheWindow) {
  BatcherConfig config = SmallConfig();
  config.max_delay_us = 10'000'000;  // a missed hint would hang 10s here
  MicroBatcher batcher(config);
  auto f0 = batcher.Enqueue(7);
  auto f1 = batcher.Enqueue(8);
  batcher.FlushHint();  // producer: this burst is over, no co-riders coming
  const auto start = std::chrono::steady_clock::now();
  const auto batch = batcher.PopBatch();
  const auto waited = std::chrono::steady_clock::now() - start;
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].item_row, 7);
  EXPECT_EQ(batch[1].item_row, 8);
  EXPECT_LT(waited, std::chrono::seconds(5)) << "hint did not cut the window";

  // The hint only covers requests admitted before it: a later enqueue opens
  // a fresh window (released here by a second hint, not by aging out).
  auto f2 = batcher.Enqueue(9);
  batcher.FlushHint();
  const auto next = batcher.PopBatch();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].item_row, 9);
  batcher.Close();
}

TEST(MicroBatcherTest, FlushHintOnEmptyQueueIsANoOp) {
  BatcherConfig config = SmallConfig();
  config.max_delay_us = 1000;
  MicroBatcher batcher(config);
  batcher.FlushHint();  // nothing queued: must not poison the next window
  // A request admitted after the empty-queue hint still gets coalescing:
  // the second request enqueued during its window must ride the same batch.
  auto f0 = batcher.Enqueue(1);
  auto f1 = batcher.Enqueue(2);
  const auto batch = batcher.PopBatch();
  EXPECT_EQ(batch.size(), 2u);
  batcher.Close();
}

TEST(MicroBatcherTest, OversizedBurstSplitsIntoBatches) {
  MicroBatcher batcher(SmallConfig());
  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  for (int64_t i = 0; i < 7; ++i) futures.push_back(batcher.Enqueue(i));
  EXPECT_EQ(batcher.PopBatch().size(), 4u);
  EXPECT_EQ(batcher.PopBatch().size(), 3u);
  batcher.Close();
}

TEST(MicroBatcherTest, RejectPolicyShedsLoadWhenFull) {
  BatcherConfig config = SmallConfig();
  config.admission = AdmissionPolicy::kRejectWithStatus;
  RuntimeStats stats;
  MicroBatcher batcher(config, &stats);
  std::vector<std::future<StatusOr<ScoreResult>>> admitted;
  for (size_t i = 0; i < config.queue_capacity; ++i) {
    admitted.push_back(batcher.Enqueue(static_cast<int64_t>(i)));
  }
  auto rejected = batcher.Enqueue(99);
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(rejected.get().status().code(), StatusCode::kResourceExhausted);
  const auto snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.enqueued, static_cast<int64_t>(config.queue_capacity));
  EXPECT_EQ(snapshot.rejected, 1);
  // Draining one batch frees capacity again.
  EXPECT_EQ(batcher.PopBatch().size(), config.max_batch_size);
  auto readmitted = batcher.Enqueue(100);
  EXPECT_NE(readmitted.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  batcher.Close();
}

TEST(MicroBatcherTest, BlockPolicyWaitsForSpace) {
  BatcherConfig config = SmallConfig();
  config.admission = AdmissionPolicy::kBlock;
  MicroBatcher batcher(config);
  for (size_t i = 0; i < config.queue_capacity; ++i) {
    batcher.Enqueue(static_cast<int64_t>(i));
  }
  std::atomic<bool> admitted{false};
  std::thread producer([&batcher, &admitted] {
    batcher.Enqueue(42);  // must block until a batch is popped
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(batcher.PopBatch().size(), config.max_batch_size);
  producer.join();
  EXPECT_TRUE(admitted.load());
  batcher.Close();
}

TEST(MicroBatcherTest, CloseDrainsQueuedRequestsThenSignalsExit) {
  MicroBatcher batcher(SmallConfig());
  for (int64_t i = 0; i < 6; ++i) batcher.Enqueue(i);
  batcher.Close();
  // Queued work still comes out (zero drops on shutdown)...
  EXPECT_EQ(batcher.PopBatch().size(), 4u);
  EXPECT_EQ(batcher.PopBatch().size(), 2u);
  // ...and only then does PopBatch signal the workers to exit.
  EXPECT_TRUE(batcher.PopBatch().empty());
}

TEST(MicroBatcherTest, QueueDepthGaugeTracksEveryMutationBackToZero) {
  // Regression: the gauge used to be published by two ad-hoc call sites,
  // and the closed-and-drained exit never touched it — a worker observing
  // that path could leave a stale nonzero depth on the exporter forever.
  // All publications now go through one locked accounting point; the gauge
  // must track the queue exactly at every step and read 0 after drain.
  RuntimeStats stats;
  MicroBatcher batcher(SmallConfig(), &stats);
  const auto gauge_depth = [&stats]() -> double {
    for (const auto& [name, value] : stats.registry().Collect().gauges) {
      if (name == "queue_depth") return value;
    }
    return -1.0;
  };

  std::vector<std::future<StatusOr<ScoreResult>>> futures;
  for (int64_t i = 0; i < 6; ++i) {
    futures.push_back(batcher.Enqueue(i));
    EXPECT_EQ(gauge_depth(), static_cast<double>(i + 1));
  }
  EXPECT_EQ(batcher.PopBatch().size(), 4u);
  EXPECT_EQ(gauge_depth(), 2.0);
  batcher.Close();
  EXPECT_EQ(batcher.PopBatch().size(), 2u);
  EXPECT_EQ(gauge_depth(), 0.0);
  // The closed-and-drained exit republishes too.
  EXPECT_TRUE(batcher.PopBatch().empty());
  EXPECT_EQ(gauge_depth(), 0.0);
  EXPECT_EQ(batcher.queue_depth(), 0u);
}

TEST(MicroBatcherTest, EnqueueAfterCloseFailsFast) {
  MicroBatcher batcher(SmallConfig());
  batcher.Close();
  auto future = batcher.Enqueue(1);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(future.get().status().code(), StatusCode::kFailedPrecondition);
}

TEST(MicroBatcherTest, CloseUnblocksBlockedProducers) {
  BatcherConfig config = SmallConfig();
  config.admission = AdmissionPolicy::kBlock;
  MicroBatcher batcher(config);
  for (size_t i = 0; i < config.queue_capacity; ++i) {
    batcher.Enqueue(static_cast<int64_t>(i));
  }
  std::thread producer([&batcher] {
    auto future = batcher.Enqueue(42);
    EXPECT_EQ(future.get().status().code(), StatusCode::kFailedPrecondition);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  batcher.Close();
  producer.join();
}

TEST(MicroBatcherTest, ManyProducersTwoConsumersLoseNothing) {
  BatcherConfig config;
  config.max_batch_size = 16;
  config.max_delay_us = 500;
  config.queue_capacity = 64;
  MicroBatcher batcher(config);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;

  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  consumers.reserve(2);
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&batcher, &consumed] {
      for (;;) {
        auto batch = batcher.PopBatch();
        if (batch.empty()) return;
        consumed.fetch_add(static_cast<int>(batch.size()));
      }
    });
  }
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&batcher] {
      for (int i = 0; i < kPerProducer; ++i) {
        batcher.Enqueue(i);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  batcher.Close();
  for (auto& consumer : consumers) consumer.join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(MicroBatcherTest, ConfigValidateCatchesDegenerateShapes) {
  EXPECT_TRUE(SmallConfig().Validate().ok());

  BatcherConfig config = SmallConfig();
  config.max_batch_size = 0;  // batches could never form
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  config = SmallConfig();
  config.queue_capacity = 0;  // every enqueue would reject or hang
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  config = SmallConfig();
  config.queue_capacity = config.max_batch_size - 1;  // can't hold a batch
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);

  config = SmallConfig();
  config.max_delay_us = -5;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(MicroBatcherTest, TryEnqueueReturnsFutureOnAdmission) {
  MicroBatcher batcher(SmallConfig());
  std::future<StatusOr<ScoreResult>> future;
  const Status status = batcher.TryEnqueue(
      42, std::chrono::steady_clock::time_point::max(), &future);
  ASSERT_TRUE(status.ok());
  ASSERT_TRUE(future.valid());
  const auto batch = batcher.PopBatch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].item_row, 42);
  EXPECT_EQ(batch[0].deadline, std::chrono::steady_clock::time_point::max());
  batcher.Close();
}

TEST(MicroBatcherTest, TryEnqueueRejectsWhenFullWithoutTouchingFuture) {
  BatcherConfig config = SmallConfig();
  config.admission = AdmissionPolicy::kRejectWithStatus;
  MicroBatcher batcher(config);
  std::vector<std::future<StatusOr<ScoreResult>>> admitted;
  for (size_t i = 0; i < config.queue_capacity; ++i) {
    admitted.push_back(batcher.Enqueue(static_cast<int64_t>(i)));
  }
  std::future<StatusOr<ScoreResult>> future;
  const Status status = batcher.TryEnqueue(
      99, std::chrono::steady_clock::time_point::max(), &future);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // The caller's future is untouched so it can substitute a degraded answer.
  EXPECT_FALSE(future.valid());
  batcher.Close();
}

TEST(MicroBatcherTest, TryEnqueueBlockingWaitsOnlyUntilDeadline) {
  MicroBatcher batcher(SmallConfig());  // kBlock admission
  std::vector<std::future<StatusOr<ScoreResult>>> admitted;
  for (size_t i = 0; i < SmallConfig().queue_capacity; ++i) {
    admitted.push_back(batcher.Enqueue(static_cast<int64_t>(i)));
  }
  // Queue full, nobody draining: a deadline-carrying enqueue gives up at the
  // deadline instead of blocking forever.
  const auto start = std::chrono::steady_clock::now();
  std::future<StatusOr<ScoreResult>> future;
  const Status status = batcher.TryEnqueue(
      99, start + std::chrono::milliseconds(50), &future);
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(future.valid());
  EXPECT_GE(waited, std::chrono::milliseconds(50));
  EXPECT_LT(waited, std::chrono::seconds(5));

  // With space available the same call admits immediately.
  batcher.PopBatch();
  const Status admitted_status = batcher.TryEnqueue(
      100, std::chrono::steady_clock::now() + std::chrono::seconds(5),
      &future);
  EXPECT_TRUE(admitted_status.ok());
  EXPECT_TRUE(future.valid());
  batcher.Close();
}

TEST(MicroBatcherTest, TryEnqueueAfterCloseIsFailedPrecondition) {
  MicroBatcher batcher(SmallConfig());
  batcher.Close();
  std::future<StatusOr<ScoreResult>> future;
  const Status status = batcher.TryEnqueue(
      1, std::chrono::steady_clock::time_point::max(), &future);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(future.valid());
}

}  // namespace
}  // namespace atnn::runtime
