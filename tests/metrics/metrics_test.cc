#include "metrics/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace atnn::metrics {
namespace {

TEST(AucTest, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}), 1.0);
}

TEST(AucTest, InvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(Auc({0.1, 0.2, 0.8, 0.9}, {1, 1, 0, 0}), 0.0);
}

TEST(AucTest, AllTiedScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(Auc({0.5, 0.5, 0.5, 0.5}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, PartialTiesUseMidranks) {
  // scores: pos {0.9, 0.5}, neg {0.5, 0.1}. Pairs: (0.9 vs 0.5)=1,
  // (0.9 vs 0.1)=1, (0.5 vs 0.5)=0.5, (0.5 vs 0.1)=1 -> 3.5/4.
  EXPECT_DOUBLE_EQ(Auc({0.9, 0.5, 0.5, 0.1}, {1, 1, 0, 0}), 0.875);
}

TEST(AucTest, MultipleTieBlocksUseMidranks) {
  // Two separate tie blocks: {0.7, 0.7} mixed-class, {0.3, 0.3} mixed-class.
  // Pairs: (0.7 vs 0.7)=0.5, (0.7 vs 0.3)=1, (0.3 vs 0.7)=0, (0.3 vs 0.3)=0.5
  // -> 2/4.
  EXPECT_DOUBLE_EQ(Auc({0.7, 0.7, 0.3, 0.3}, {1, 0, 1, 0}), 0.5);
}

TEST(AucTest, TieBlockSpanningManyExamples) {
  // One positive at 0.5 tied with three negatives at 0.5, one negative
  // below: pairs (0.5 vs 0.5)x3 = 1.5, (0.5 vs 0.1) = 1 -> 2.5/4.
  EXPECT_DOUBLE_EQ(Auc({0.5, 0.5, 0.5, 0.5, 0.1}, {1, 0, 0, 0, 0}), 0.625);
}

TEST(AucDeathTest, SingleClassInputAborts) {
  EXPECT_DEATH(Auc({0.9, 0.1}, {1, 1}), "AUC undefined");
  EXPECT_DEATH(Auc({0.9, 0.1}, {0, 0}), "AUC undefined");
}

TEST(AucTest, HandComputedMixedCase) {
  // pos scores {0.8, 0.3}, neg {0.6, 0.2}: pairs 0.8>0.6 (1), 0.8>0.2 (1),
  // 0.3<0.6 (0), 0.3>0.2 (1) -> 3/4.
  EXPECT_DOUBLE_EQ(Auc({0.8, 0.6, 0.3, 0.2}, {1, 0, 1, 0}), 0.75);
}

TEST(AucTest, InvariantToMonotoneTransform) {
  const std::vector<float> labels = {1, 0, 1, 0, 1, 0};
  const std::vector<double> scores = {2.0, -1.0, 0.5, 0.4, 3.0, -0.2};
  std::vector<double> transformed;
  for (double s : scores) transformed.push_back(1.0 / (1.0 + std::exp(-s)));
  EXPECT_DOUBLE_EQ(Auc(scores, labels), Auc(transformed, labels));
}

TEST(GroupedAucTest, SingleGroupEqualsAuc) {
  const std::vector<double> scores = {0.9, 0.2, 0.6, 0.4};
  const std::vector<float> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(GroupedAuc(scores, labels, {7, 7, 7, 7}),
                   Auc(scores, labels));
}

TEST(GroupedAucTest, WeightsGroupsBySize) {
  // Group 1 (4 examples, AUC 1.0), group 2 (2 examples, AUC 0.0):
  // GAUC = (4*1 + 2*0) / 6.
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1, 0.3, 0.7};
  const std::vector<float> labels = {1, 1, 0, 0, 1, 0};
  const std::vector<int64_t> groups = {1, 1, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(GroupedAuc(scores, labels, groups), 4.0 / 6.0);
}

TEST(GroupedAucTest, SingleClassGroupsSkipped) {
  // Group 2 is all-positive -> excluded from the average entirely.
  const std::vector<double> scores = {0.9, 0.1, 0.5, 0.6};
  const std::vector<float> labels = {1, 0, 1, 1};
  const std::vector<int64_t> groups = {1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(GroupedAuc(scores, labels, groups), 1.0);
}

TEST(GroupedAucTest, AllSingleClassGroupsAbort) {
  // Every group has only one label value, so no group contributes a defined
  // AUC and the weighted average has zero total weight.
  EXPECT_DEATH(GroupedAuc({0.9, 0.8, 0.2, 0.1}, {1, 1, 0, 0}, {1, 1, 2, 2}),
               "GAUC undefined");
}

TEST(GroupedAucTest, PerUserRankingDiffersFromGlobal) {
  // Globally inverted scales per user: global AUC is poor, but within each
  // user the ranking is perfect, so GAUC = 1.
  const std::vector<double> scores = {10.0, 9.0, 0.2, 0.1};
  const std::vector<float> labels = {1, 0, 1, 0};
  const std::vector<int64_t> groups = {1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(GroupedAuc(scores, labels, groups), 1.0);
  EXPECT_LT(Auc(scores, labels), 1.0);
}

TEST(LogLossTest, PerfectPredictionNearZero) {
  EXPECT_LT(LogLoss({0.9999, 0.0001}, {1, 0}), 0.001);
}

TEST(LogLossTest, UninformedPredictionIsLog2) {
  EXPECT_NEAR(LogLoss({0.5, 0.5}, {1, 0}), std::log(2.0), 1e-12);
}

TEST(LogLossTest, ClampsExtremeProbabilities) {
  // p = 0 with label 1 must not produce infinity.
  const double loss = LogLoss({0.0}, {1});
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_GT(loss, 10.0);
}

TEST(MaeTest, HandComputed) {
  EXPECT_DOUBLE_EQ(MeanAbsoluteError({1.0, 2.0, 5.0}, {1.0f, 4.0f, 2.0f}),
                   (0.0 + 2.0 + 3.0) / 3.0);
}

TEST(RmseTest, HandComputed) {
  EXPECT_DOUBLE_EQ(RootMeanSquaredError({0.0, 0.0}, {3.0f, 4.0f}),
                   std::sqrt((9.0 + 16.0) / 2.0));
}

TEST(PearsonTest, PerfectLinearCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonTest, ConstantSequenceIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(SpearmanTest, MonotoneNonlinearIsOne) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {1, 8, 27, 64}), 1.0, 1e-12);
}

TEST(SpearmanTest, HandlesTies) {
  const double rho = SpearmanCorrelation({1, 2, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(rho, 0.8);
  EXPECT_LE(rho, 1.0);
}

TEST(RankGroupsTest, QuintilesAreOrderedByScore) {
  std::vector<double> scores;
  for (int i = 0; i < 100; ++i) scores.push_back(static_cast<double>(i));
  auto groups = RankGroups(scores, 5);
  ASSERT_EQ(groups.size(), 5u);
  for (const auto& group : groups) EXPECT_EQ(group.size(), 20u);
  // Group 0 holds the highest scores.
  for (int64_t idx : groups[0]) EXPECT_GE(scores[size_t(idx)], 80.0);
  for (int64_t idx : groups[4]) EXPECT_LT(scores[size_t(idx)], 20.0);
}

TEST(RankGroupsTest, UnevenSizesStayWithinOne) {
  std::vector<double> scores(103, 0.0);
  for (size_t i = 0; i < scores.size(); ++i) scores[i] = double(i);
  auto groups = RankGroups(scores, 5);
  size_t total = 0;
  for (const auto& group : groups) {
    EXPECT_GE(group.size(), 20u);
    EXPECT_LE(group.size(), 21u);
    total += group.size();
  }
  EXPECT_EQ(total, 103u);
}

TEST(MeanOverTest, SubsetMean) {
  EXPECT_DOUBLE_EQ(MeanOver({10, 20, 30, 40}, {0, 3}), 25.0);
}

}  // namespace
}  // namespace atnn::metrics
