#include "core/multitask_atnn.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/multitask_trainer.h"
#include "serving/model_snapshot.h"

namespace atnn::core {
namespace {

data::ElemeConfig TinyElemeConfig() {
  data::ElemeConfig config;
  config.num_restaurants = 1500;
  config.num_new_restaurants = 300;
  config.num_cells = 40;
  config.seed = 4242;
  return config;
}

MultiTaskAtnnConfig TinyMtConfig(bool adversarial) {
  MultiTaskAtnnConfig config;
  config.tower.kind = nn::TowerKind::kDeepCross;
  config.tower.deep_dims = {32, 16};
  config.tower.cross_layers = 2;
  config.tower.output_dim = 12;
  config.adversarial = adversarial;
  config.lambda1 = 25.0f;
  config.lambda2 = 10.0f;
  config.seed = 5;
  return config;
}

TrainOptions FastOptions() {
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 64;
  options.learning_rate = 1e-3f;
  return options;
}

class MultiTaskTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::ElemeDataset(GenerateElemeDataset(TinyElemeConfig()));
    NormalizeElemeInPlace(dataset_);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::ElemeDataset* dataset_;
};

data::ElemeDataset* MultiTaskTest::dataset_ = nullptr;

TEST_F(MultiTaskTest, ForwardShapes) {
  MultiTaskAtnnModel model(*dataset_->restaurant_profile_schema,
                           *dataset_->restaurant_stats_schema,
                           *dataset_->user_group_schema, TinyMtConfig(true));
  const data::ElemeBatch batch = MakeElemeBatch(*dataset_, {0, 1, 2});
  nn::Var group_vec = model.GroupVector(batch.user_group);
  nn::Var enc_vec =
      model.EncoderVector(batch.restaurant_profile, batch.restaurant_stats);
  nn::Var gen_vec = model.GeneratorVector(batch.restaurant_profile);
  EXPECT_EQ(group_vec.cols(), 12);
  EXPECT_EQ(enc_vec.cols(), 12);
  EXPECT_EQ(gen_vec.cols(), 12);
  nn::Var gmv = model.PredictGmv(enc_vec, group_vec);
  nn::Var vppv = model.PredictVppv(enc_vec, group_vec);
  EXPECT_EQ(gmv.rows(), 3);
  EXPECT_EQ(gmv.cols(), 1);
  EXPECT_EQ(vppv.cols(), 1);
}

TEST_F(MultiTaskTest, BaselineHasNoGeneratorParameters) {
  MultiTaskAtnnModel baseline(*dataset_->restaurant_profile_schema,
                              *dataset_->restaurant_stats_schema,
                              *dataset_->user_group_schema,
                              TinyMtConfig(false));
  EXPECT_TRUE(baseline.GeneratorParameters().empty());
  MultiTaskAtnnModel adversarial(*dataset_->restaurant_profile_schema,
                                 *dataset_->restaurant_stats_schema,
                                 *dataset_->user_group_schema,
                                 TinyMtConfig(true));
  EXPECT_FALSE(adversarial.GeneratorParameters().empty());
}

TEST_F(MultiTaskTest, TrainingReducesBothTaskLosses) {
  MultiTaskAtnnModel model(*dataset_->restaurant_profile_schema,
                           *dataset_->restaurant_stats_schema,
                           *dataset_->user_group_schema, TinyMtConfig(true));
  const auto history = TrainMultiTaskAtnn(&model, *dataset_, FastOptions());
  ASSERT_EQ(history.size(), 3u);
  EXPECT_LT(history.back().loss_gmv_d, history.front().loss_gmv_d);
  EXPECT_LT(history.back().loss_vppv_d, history.front().loss_vppv_d);
  EXPECT_LT(history.back().loss_s, history.front().loss_s);
}

TEST_F(MultiTaskTest, BaselineTrainsWithoutGeneratorStats) {
  MultiTaskAtnnModel model(*dataset_->restaurant_profile_schema,
                           *dataset_->restaurant_stats_schema,
                           *dataset_->user_group_schema, TinyMtConfig(false));
  const auto history = TrainMultiTaskAtnn(&model, *dataset_, FastOptions());
  EXPECT_LT(history.back().loss_gmv_d, history.front().loss_gmv_d);
  EXPECT_EQ(history.back().loss_s, 0.0);
  EXPECT_EQ(history.back().loss_gmv_g, 0.0);
}

TEST_F(MultiTaskTest, ColdStartPredictionsAreFinite) {
  MultiTaskAtnnModel model(*dataset_->restaurant_profile_schema,
                           *dataset_->restaurant_stats_schema,
                           *dataset_->user_group_schema, TinyMtConfig(true));
  TrainMultiTaskAtnn(&model, *dataset_, FastOptions());
  // Score genuinely new restaurants (no stats).
  std::vector<int64_t> cells;
  for (int64_t row : dataset_->new_restaurants) {
    cells.push_back(dataset_->restaurant_cell[size_t(row)]);
  }
  const data::BlockBatch profile =
      GatherBlock(dataset_->restaurant_profiles, dataset_->new_restaurants);
  const data::BlockBatch group = GatherBlock(dataset_->user_groups, cells);
  const auto preds = model.PredictColdStart(profile, group);
  ASSERT_EQ(preds.vppv.size(), dataset_->new_restaurants.size());
  for (size_t i = 0; i < preds.vppv.size(); ++i) {
    EXPECT_TRUE(std::isfinite(preds.vppv[i]));
    EXPECT_TRUE(std::isfinite(preds.gmv[i]));
  }
}

TEST_F(MultiTaskTest, SnapshotRoundTripReproducesPredictions) {
  const std::string path = testing::TempDir() + "/mt_snapshot.bin";
  MultiTaskAtnnModel original(*dataset_->restaurant_profile_schema,
                              *dataset_->restaurant_stats_schema,
                              *dataset_->user_group_schema,
                              TinyMtConfig(true));
  TrainOptions options = FastOptions();
  options.epochs = 2;
  TrainMultiTaskAtnn(&original, *dataset_, options);
  ASSERT_TRUE(
      serving::SaveModelSnapshot(&original, path, "mt-atnn-v1").ok());

  MultiTaskAtnnModel restored(*dataset_->restaurant_profile_schema,
                              *dataset_->restaurant_stats_schema,
                              *dataset_->user_group_schema,
                              TinyMtConfig(true));
  ASSERT_TRUE(
      serving::LoadModelSnapshot(&restored, path, "mt-atnn-v1").ok());

  const data::ElemeBatch batch = MakeElemeBatch(*dataset_, {0, 1, 2, 3});
  const auto a =
      original.PredictColdStart(batch.restaurant_profile, batch.user_group);
  const auto b =
      restored.PredictColdStart(batch.restaurant_profile, batch.user_group);
  ASSERT_EQ(a.vppv.size(), b.vppv.size());
  for (size_t i = 0; i < a.vppv.size(); ++i) {
    EXPECT_EQ(a.vppv[i], b.vppv[i]);
    EXPECT_EQ(a.gmv[i], b.gmv[i]);
  }
  std::remove(path.c_str());
}

TEST_F(MultiTaskTest, AdversarialBeatsProfileOnlyBaseline) {
  // Table IV's claim: training the encoder on statistics and distilling
  // into the generator beats direct profile-only regression.
  MultiTaskAtnnModel atnn(*dataset_->restaurant_profile_schema,
                          *dataset_->restaurant_stats_schema,
                          *dataset_->user_group_schema, TinyMtConfig(true));
  MultiTaskAtnnModel baseline(*dataset_->restaurant_profile_schema,
                              *dataset_->restaurant_stats_schema,
                              *dataset_->user_group_schema,
                              TinyMtConfig(false));
  TrainOptions options = FastOptions();
  options.epochs = 20;
  TrainMultiTaskAtnn(&atnn, *dataset_, options);
  TrainMultiTaskAtnn(&baseline, *dataset_, options);
  const ElemeEval atnn_eval =
      EvaluateEleme(atnn, *dataset_, dataset_->test_indices);
  const ElemeEval baseline_eval =
      EvaluateEleme(baseline, *dataset_, dataset_->test_indices);
  // Allow a small slack: the decisive check is "not worse", the expected
  // outcome (and what the benches report) is clearly better.
  EXPECT_LT(atnn_eval.vppv_mae, baseline_eval.vppv_mae * 1.05);
  EXPECT_LT(atnn_eval.gmv_mae, baseline_eval.gmv_mae * 1.05);
}

}  // namespace
}  // namespace atnn::core
