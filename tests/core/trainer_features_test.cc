// Tests for the training-loop features layered on the basic loops:
// learning-rate decay, weight decay, and evaluation protocol helpers.

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "test_helpers.h"

namespace atnn::core {
namespace {

using testing_helpers::MakeNormalizedTinyDataset;
using testing_helpers::TinyTowerConfig;

class TrainerFeaturesTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(MakeNormalizedTinyDataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::TmallDataset* dataset_;
};

data::TmallDataset* TrainerFeaturesTest::dataset_ = nullptr;

TwoTowerConfig MakeModelConfig() {
  TwoTowerConfig config;
  config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
  config.seed = 5;
  return config;
}

TEST_F(TrainerFeaturesTest, LrDecayChangesTrajectory) {
  TwoTowerModel constant_lr(*dataset_->user_schema,
                            *dataset_->item_profile_schema,
                            *dataset_->item_stats_schema, MakeModelConfig());
  TwoTowerModel decayed_lr(*dataset_->user_schema,
                           *dataset_->item_profile_schema,
                           *dataset_->item_stats_schema, MakeModelConfig());
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 256;
  options.learning_rate = 2e-3f;
  const auto constant_history =
      TrainTwoTowerModel(&constant_lr, *dataset_, options);
  options.lr_decay_per_epoch = 0.3f;
  const auto decayed_history =
      TrainTwoTowerModel(&decayed_lr, *dataset_, options);
  // First epoch identical (decay applies from epoch 2), later epochs not.
  EXPECT_DOUBLE_EQ(constant_history[0].loss_i, decayed_history[0].loss_i);
  EXPECT_NE(constant_history[2].loss_i, decayed_history[2].loss_i);
  // Both still converge.
  EXPECT_LT(decayed_history.back().loss_i, decayed_history.front().loss_i);
}

TEST_F(TrainerFeaturesTest, WeightDecayShrinksParameterNorm) {
  TwoTowerModel plain(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema, MakeModelConfig());
  TwoTowerModel decayed(*dataset_->user_schema,
                        *dataset_->item_profile_schema,
                        *dataset_->item_stats_schema, MakeModelConfig());
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 256;
  options.learning_rate = 2e-3f;
  TrainTwoTowerModel(&plain, *dataset_, options);
  options.weight_decay = 0.05f;
  TrainTwoTowerModel(&decayed, *dataset_, options);

  auto total_norm = [](TwoTowerModel* model) {
    double total = 0.0;
    for (nn::Parameter* param : model->Parameters()) {
      total += param->value().SquaredNorm();
    }
    return total;
  };
  EXPECT_LT(total_norm(&decayed), total_norm(&plain));
}

TEST_F(TrainerFeaturesTest, AtnnTrainerHonorsDecayOptions) {
  AtnnConfig config;
  config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
  config.seed = 5;
  AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, config);
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 256;
  options.learning_rate = 2e-3f;
  options.lr_decay_per_epoch = 0.5f;
  options.weight_decay = 0.01f;
  const auto history = TrainAtnnModel(&model, *dataset_, options);
  EXPECT_LT(history.back().loss_i, history.front().loss_i);
  EXPECT_LT(history.back().loss_g, history.front().loss_g);
}

TEST_F(TrainerFeaturesTest, MaskStatsAsMissingZeroesOnlyStats) {
  data::CtrBatch batch = MakeCtrBatch(*dataset_, {0, 1, 2});
  const nn::Tensor profile_before = batch.item_profile.numeric;
  MaskStatsAsMissing(&batch.item_stats);
  EXPECT_EQ(batch.item_stats.numeric.AbsMax(), 0.0f);
  // Profile numerics untouched.
  for (int64_t i = 0; i < profile_before.numel(); ++i) {
    EXPECT_EQ(batch.item_profile.numeric.data()[i],
              profile_before.data()[i]);
  }
}

TEST_F(TrainerFeaturesTest, MissingStatsEvaluationDegradesTrainedModel) {
  TwoTowerModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema, MakeModelConfig());
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 256;
  options.learning_rate = 2e-3f;
  TrainTwoTowerModel(&model, *dataset_, options);
  const double complete =
      EvaluateTwoTowerAuc(model, *dataset_, dataset_->test_indices);
  const double cold = EvaluateTwoTowerAucMissingStats(
      model, *dataset_, dataset_->test_indices);
  EXPECT_LT(cold, complete);  // the Table I cold-start penalty
  EXPECT_GT(cold, 0.5);       // but profiles still carry signal
}

}  // namespace
}  // namespace atnn::core
