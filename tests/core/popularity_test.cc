#include "core/popularity.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "metrics/metrics.h"
#include "test_helpers.h"

namespace atnn::core {
namespace {

using testing_helpers::MakeNormalizedTinyDataset;
using testing_helpers::TinyTowerConfig;

class PopularityTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(MakeNormalizedTinyDataset());
    AtnnConfig config;
    config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 5;
    model_ = new AtnnModel(*dataset_->user_schema,
                           *dataset_->item_profile_schema,
                           *dataset_->item_stats_schema, config);
    TrainOptions options;
    options.epochs = 6;
    options.batch_size = 128;
    options.learning_rate = 2e-3f;
    TrainAtnnModel(model_, *dataset_, options);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }
  static data::TmallDataset* dataset_;
  static AtnnModel* model_;
};

data::TmallDataset* PopularityTest::dataset_ = nullptr;
AtnnModel* PopularityTest::model_ = nullptr;

TEST_F(PopularityTest, SelectActiveUsersReturnsMostActive) {
  const auto top = SelectActiveUsers(*dataset_, 50);
  ASSERT_EQ(top.size(), 50u);
  // Every selected user is at least as active as every non-selected one.
  double min_selected = 1e300;
  for (int64_t u : top) {
    min_selected =
        std::min(min_selected, dataset_->user_activity[size_t(u)]);
  }
  std::vector<bool> selected(dataset_->user_activity.size(), false);
  for (int64_t u : top) selected[size_t(u)] = true;
  for (size_t u = 0; u < dataset_->user_activity.size(); ++u) {
    if (!selected[u]) {
      EXPECT_LE(dataset_->user_activity[u], min_selected + 1e-12);
    }
  }
}

TEST_F(PopularityTest, MeanUserVectorMatchesManualAverage) {
  const auto group = SelectActiveUsers(*dataset_, 64);
  const auto predictor =
      PopularityPredictor::Build(*model_, *dataset_, group, 16);
  // Manual average with a different batch size must agree.
  const data::BlockBatch block = GatherBlock(dataset_->users, group);
  nn::Var vectors = model_->UserVector(block);
  for (int64_t c = 0; c < vectors.cols(); ++c) {
    double sum = 0.0;
    for (int64_t r = 0; r < vectors.rows(); ++r) {
      sum += vectors.value().at(r, c);
    }
    EXPECT_NEAR(predictor.mean_user_vector().at(0, c),
                sum / double(vectors.rows()), 1e-4);
  }
}

TEST_F(PopularityTest, ScoresAreProbabilities) {
  const auto group = SelectActiveUsers(*dataset_, 64);
  const auto predictor =
      PopularityPredictor::Build(*model_, *dataset_, group);
  const auto scores =
      predictor.ScoreItems(*model_, *dataset_, dataset_->new_items);
  ASSERT_EQ(scores.size(), dataset_->new_items.size());
  for (double s : scores) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST_F(PopularityTest, O1ScoresStronglyAgreeWithPairwiseScores) {
  // The O(1) mean-user-vector trick is an approximation of the exact mean
  // pairwise CTR (sigmoid is nonlinear); the paper's premise is that the
  // approximation preserves the ranking. Verify high rank correlation.
  const auto group = SelectActiveUsers(*dataset_, 128);
  const auto predictor =
      PopularityPredictor::Build(*model_, *dataset_, group);
  const auto fast =
      predictor.ScoreItems(*model_, *dataset_, dataset_->new_items);
  const auto exact = ScoreItemsPairwise(*model_, *dataset_,
                                        dataset_->new_items, group);
  // Not exact equality: sigmoid(mean) != mean(sigmoid). The sharper the
  // trained vectors, the more the two diverge in value — but the ranking
  // must remain in strong agreement for the O(1) trick to be sound.
  EXPECT_GT(metrics::SpearmanCorrelation(fast, exact), 0.85);
}

TEST_F(PopularityTest, ScoresRankTrueAttractiveness) {
  const auto group = SelectActiveUsers(*dataset_, 128);
  const auto predictor =
      PopularityPredictor::Build(*model_, *dataset_, group);
  const auto scores =
      predictor.ScoreItems(*model_, *dataset_, dataset_->new_items);
  std::vector<double> truth;
  truth.reserve(dataset_->new_items.size());
  for (int64_t item : dataset_->new_items) {
    truth.push_back(dataset_->true_attractiveness[size_t(item)]);
  }
  // Cold-start ranking from profiles only must positively correlate with
  // the hidden ground truth. The bar is modest because this fixture's
  // world is deliberately tiny (400 catalog items); the paper-scale check
  // is bench_table2's quintile monotonicity on the full-size dataset.
  EXPECT_GT(metrics::SpearmanCorrelation(scores, truth), 0.15);
}

TEST_F(PopularityTest, BatchSizeDoesNotChangeScores) {
  const auto group = SelectActiveUsers(*dataset_, 32);
  const auto predictor =
      PopularityPredictor::Build(*model_, *dataset_, group, 8);
  const auto a =
      predictor.ScoreItems(*model_, *dataset_, dataset_->new_items, 7);
  const auto b =
      predictor.ScoreItems(*model_, *dataset_, dataset_->new_items, 1024);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

}  // namespace
}  // namespace atnn::core
