#include "core/user_clusters.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/trainer.h"
#include "metrics/metrics.h"
#include "test_helpers.h"

namespace atnn::core {
namespace {

/// Three well-separated Gaussian blobs in 2-D.
nn::Tensor MakeBlobs(int per_blob, uint64_t seed) {
  Rng rng(seed);
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  nn::Tensor points(3 * per_blob, 2);
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      const int64_t row = b * per_blob + i;
      points.at(row, 0) = float(centers[b][0] + rng.Normal(0, 0.5));
      points.at(row, 1) = float(centers[b][1] + rng.Normal(0, 0.5));
    }
  }
  return points;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  const nn::Tensor points = MakeBlobs(100, 1);
  KMeansConfig config;
  config.num_clusters = 3;
  const KMeansResult result = RunKMeans(points, config);

  // Every blob maps to exactly one cluster.
  for (int b = 0; b < 3; ++b) {
    const int32_t first = result.assignment[size_t(b * 100)];
    for (int i = 1; i < 100; ++i) {
      EXPECT_EQ(result.assignment[size_t(b * 100 + i)], first)
          << "blob " << b << " split";
    }
  }
  // Clusters are distinct and sizes are equal.
  EXPECT_NE(result.assignment[0], result.assignment[100]);
  EXPECT_NE(result.assignment[100], result.assignment[200]);
  for (int64_t size : result.cluster_sizes) EXPECT_EQ(size, 100);
  // Inertia is near the within-blob variance (2 dims * 0.25 * 300).
  EXPECT_LT(result.inertia, 300.0);
}

TEST(KMeansTest, SingleClusterIsTheMean) {
  const nn::Tensor points(4, 1, {0, 2, 4, 6});
  KMeansConfig config;
  config.num_clusters = 1;
  const KMeansResult result = RunKMeans(points, config);
  EXPECT_FLOAT_EQ(result.centroids.at(0, 0), 3.0f);
  EXPECT_EQ(result.cluster_sizes[0], 4);
}

TEST(KMeansTest, DeterministicForSeed) {
  const nn::Tensor points = MakeBlobs(40, 2);
  KMeansConfig config;
  config.num_clusters = 3;
  const KMeansResult a = RunKMeans(points, config);
  const KMeansResult b = RunKMeans(points, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, IdenticalPointsDoNotCrash) {
  const nn::Tensor points = nn::Tensor::Full(10, 3, 1.0f);
  KMeansConfig config;
  config.num_clusters = 2;
  const KMeansResult result = RunKMeans(points, config);
  EXPECT_EQ(result.assignment.size(), 10u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeansTest, MoreClustersLowerInertia) {
  const nn::Tensor points = MakeBlobs(50, 3);
  KMeansConfig config2;
  config2.num_clusters = 2;
  KMeansConfig config6;
  config6.num_clusters = 6;
  EXPECT_GT(RunKMeans(points, config2).inertia,
            RunKMeans(points, config6).inertia);
}

class ClusteredPopularityTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        testing_helpers::MakeNormalizedTinyDataset());
    AtnnConfig config;
    config.tower = testing_helpers::TinyTowerConfig(
        nn::TowerKind::kDeepCross);
    config.seed = 5;
    model_ = new AtnnModel(*dataset_->user_schema,
                           *dataset_->item_profile_schema,
                           *dataset_->item_stats_schema, config);
    TrainOptions options;
    options.epochs = 4;
    options.batch_size = 128;
    options.learning_rate = 2e-3f;
    TrainAtnnModel(model_, *dataset_, options);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }
  static data::TmallDataset* dataset_;
  static AtnnModel* model_;
};

data::TmallDataset* ClusteredPopularityTest::dataset_ = nullptr;
AtnnModel* ClusteredPopularityTest::model_ = nullptr;

TEST_F(ClusteredPopularityTest, WeightsSumToOne) {
  const auto group = SelectActiveUsers(*dataset_, 128);
  KMeansConfig config;
  config.num_clusters = 4;
  const auto predictor = ClusteredPopularityPredictor::Build(
      *model_, *dataset_, group, config);
  EXPECT_EQ(predictor.num_clusters(), 4);
  double total = 0.0;
  for (double w : predictor.cluster_weights()) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_F(ClusteredPopularityTest, OneClusterMatchesGlobalPredictor) {
  const auto group = SelectActiveUsers(*dataset_, 128);
  KMeansConfig config;
  config.num_clusters = 1;
  const auto clustered = ClusteredPopularityPredictor::Build(
      *model_, *dataset_, group, config);
  const auto global =
      PopularityPredictor::Build(*model_, *dataset_, group);
  const auto a = clustered.ScoreItems(*model_, *dataset_,
                                      dataset_->new_items);
  const auto b = global.ScoreItems(*model_, *dataset_, dataset_->new_items);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-5);
  }
}

TEST_F(ClusteredPopularityTest, ScoresAreProbabilities) {
  const auto group = SelectActiveUsers(*dataset_, 128);
  KMeansConfig config;
  config.num_clusters = 6;
  const auto predictor = ClusteredPopularityPredictor::Build(
      *model_, *dataset_, group, config);
  for (double s :
       predictor.ScoreItems(*model_, *dataset_, dataset_->new_items)) {
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST_F(ClusteredPopularityTest, ClusteredBetterApproximatesPairwise) {
  // The pairwise mean over users is the quantity both predictors
  // approximate; more clusters must not be a worse approximation.
  const auto group = SelectActiveUsers(*dataset_, 128);
  const auto exact = ScoreItemsPairwise(*model_, *dataset_,
                                        dataset_->new_items, group);
  KMeansConfig config;
  config.num_clusters = 1;
  const auto single = ClusteredPopularityPredictor::Build(
      *model_, *dataset_, group, config);
  config.num_clusters = 8;
  const auto clustered = ClusteredPopularityPredictor::Build(
      *model_, *dataset_, group, config);
  const auto single_scores =
      single.ScoreItems(*model_, *dataset_, dataset_->new_items);
  const auto clustered_scores =
      clustered.ScoreItems(*model_, *dataset_, dataset_->new_items);
  auto mae = [&exact](const std::vector<double>& scores) {
    double total = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
      total += std::abs(scores[i] - exact[i]);
    }
    return total / double(scores.size());
  };
  EXPECT_LE(mae(clustered_scores), mae(single_scores) + 1e-6);
}

}  // namespace
}  // namespace atnn::core
