// TrainOptions::Validate and the streaming/incremental trainer switches.
//
// The Validate death tests are regressions: before the check was added,
// epochs=0 silently returned an empty history, a negative learning rate
// trained *away* from the gradient, and a NaN rate corrupted every
// parameter on the first step — all three trainers now refuse up front.

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/multitask_atnn.h"
#include "core/multitask_trainer.h"
#include "core/negative_cache.h"
#include "core/trainer.h"
#include "data/eleme.h"
#include "nn/tensor.h"
#include "test_helpers.h"

namespace atnn::core {
namespace {

using testing_helpers::MakeNormalizedTinyDataset;
using testing_helpers::TinyTowerConfig;

TrainOptions SaneOptions() {
  TrainOptions options;
  options.epochs = 1;
  options.batch_size = 64;
  options.learning_rate = 1e-3f;
  return options;
}

TEST(TrainOptionsValidateTest, AcceptsDefaultsAndSaneConfigs) {
  EXPECT_TRUE(TrainOptions{}.Validate().ok());
  EXPECT_TRUE(SaneOptions().Validate().ok());
  TrainOptions decayed = SaneOptions();
  decayed.lr_decay_per_epoch = 0.5f;
  decayed.clip_norm = 0.0f;  // 0 disables clipping; still valid
  decayed.weight_decay = 1e-4f;
  EXPECT_TRUE(decayed.Validate().ok());
}

TEST(TrainOptionsValidateTest, RejectsNonPositiveEpochs) {
  TrainOptions options = SaneOptions();
  options.epochs = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.epochs = -3;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(TrainOptionsValidateTest, RejectsNonPositiveBatchSize) {
  TrainOptions options = SaneOptions();
  options.batch_size = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.batch_size = -1;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(TrainOptionsValidateTest, RejectsBadLearningRate) {
  TrainOptions options = SaneOptions();
  options.learning_rate = -1e-3f;
  EXPECT_FALSE(options.Validate().ok());
  options.learning_rate = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(options.Validate().ok());
  options.learning_rate = std::numeric_limits<float>::infinity();
  EXPECT_FALSE(options.Validate().ok());
}

TEST(TrainOptionsValidateTest, RejectsBadLrDecay) {
  TrainOptions options = SaneOptions();
  options.lr_decay_per_epoch = 0.0f;
  EXPECT_FALSE(options.Validate().ok());
  options.lr_decay_per_epoch = -0.5f;
  EXPECT_FALSE(options.Validate().ok());
  options.lr_decay_per_epoch = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(options.Validate().ok());
}

TEST(TrainOptionsValidateTest, RejectsNegativeRegularizers) {
  TrainOptions options = SaneOptions();
  options.clip_norm = -1.0f;
  EXPECT_FALSE(options.Validate().ok());
  options = SaneOptions();
  options.weight_decay = -1e-4f;
  EXPECT_FALSE(options.Validate().ok());
  options = SaneOptions();
  options.negative_weight = -0.1f;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(TrainOptionsValidateTest, RejectsCrossBatchNegativesWithoutCache) {
  TrainOptions options = SaneOptions();
  options.cross_batch_negatives = true;
  EXPECT_FALSE(options.Validate().ok());
  NegativeCache cache(2);
  options.negative_cache = &cache;
  EXPECT_TRUE(options.Validate().ok());
}

// --- all three trainers refuse invalid options up front ---

class TrainerValidationTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(MakeNormalizedTinyDataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::TmallDataset* dataset_;
};

data::TmallDataset* TrainerValidationTest::dataset_ = nullptr;

AtnnConfig TinyAtnnConfig() {
  AtnnConfig config;
  config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
  config.seed = 5;
  return config;
}

TEST_F(TrainerValidationTest, TwoTowerTrainerRejectsInvalidOptions) {
  TwoTowerConfig config;
  config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
  config.seed = 5;
  TwoTowerModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema, config);
  TrainOptions options = SaneOptions();
  options.epochs = 0;
  EXPECT_DEATH(TrainTwoTowerModel(&model, *dataset_, options),
               "invalid TrainOptions");
}

TEST_F(TrainerValidationTest, AtnnTrainerRejectsInvalidOptions) {
  AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, TinyAtnnConfig());
  TrainOptions options = SaneOptions();
  options.learning_rate = -1e-3f;
  EXPECT_DEATH(TrainAtnnModel(&model, *dataset_, options),
               "invalid TrainOptions");
  options = SaneOptions();
  options.batch_size = 0;
  EXPECT_DEATH(
      TrainAtnnOnIndices(&model, *dataset_, dataset_->train_indices, options),
      "invalid TrainOptions");
}

TEST(MultiTaskTrainerValidationTest, RejectsInvalidOptions) {
  data::ElemeConfig world;
  world.num_restaurants = 200;
  world.num_new_restaurants = 40;
  world.num_cells = 10;
  world.seed = 4242;
  data::ElemeDataset dataset = data::GenerateElemeDataset(world);
  NormalizeElemeInPlace(&dataset);
  MultiTaskAtnnConfig config;
  config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
  config.seed = 5;
  MultiTaskAtnnModel model(*dataset.restaurant_profile_schema,
                           *dataset.restaurant_stats_schema,
                           *dataset.user_group_schema, config);
  TrainOptions options = SaneOptions();
  options.lr_decay_per_epoch = 0.0f;
  EXPECT_DEATH(TrainMultiTaskAtnn(&model, dataset, options),
               "invalid TrainOptions");
}

// --- the cross-batch negative FIFO cache ---

TEST(NegativeCacheTest, StartsEmpty) {
  NegativeCache cache(3);
  EXPECT_EQ(cache.batches(), 0u);
  EXPECT_EQ(cache.total_rows(), 0);
  EXPECT_EQ(cache.capacity(), 3u);
}

TEST(NegativeCacheTest, FifoEvictsOldestBatch) {
  NegativeCache cache(2);
  cache.Push(nn::Tensor::Full(4, 3, 1.0f));
  cache.Push(nn::Tensor::Full(2, 3, 2.0f));
  EXPECT_EQ(cache.total_rows(), 6);
  cache.Push(nn::Tensor::Full(5, 3, 3.0f));  // evicts the 4-row batch
  EXPECT_EQ(cache.batches(), 2u);
  EXPECT_EQ(cache.total_rows(), 7);
  // Oldest surviving batch first: columns 0..1 hold value 2, rest value 3.
  const nn::Tensor gathered = cache.GatherTransposed();
  EXPECT_EQ(gathered.rows(), 3);
  EXPECT_EQ(gathered.cols(), 7);
  EXPECT_FLOAT_EQ(gathered.row_ptr(0)[0], 2.0f);
  EXPECT_FLOAT_EQ(gathered.row_ptr(0)[1], 2.0f);
  EXPECT_FLOAT_EQ(gathered.row_ptr(0)[2], 3.0f);
  EXPECT_FLOAT_EQ(gathered.row_ptr(2)[6], 3.0f);
}

TEST(NegativeCacheTest, ClearResets) {
  NegativeCache cache(2);
  cache.Push(nn::Tensor::Full(4, 3, 1.0f));
  cache.Clear();
  EXPECT_EQ(cache.batches(), 0u);
  EXPECT_EQ(cache.total_rows(), 0);
  // A different width is fine after Clear.
  cache.Push(nn::Tensor::Full(2, 5, 1.0f));
  EXPECT_EQ(cache.GatherTransposed().rows(), 5);
}

// --- streaming switches: off is bitwise-off, on changes the trajectory ---

bool HistoriesBitwiseEqual(const std::vector<EpochStats>& a,
                           const std::vector<EpochStats>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(EpochStats)) ==
              0);
}

TEST_F(TrainerValidationTest, TrainOnIndicesMatchesBatchTrainerBitwise) {
  AtnnModel batch_model(*dataset_->user_schema,
                        *dataset_->item_profile_schema,
                        *dataset_->item_stats_schema, TinyAtnnConfig());
  AtnnModel indices_model(*dataset_->user_schema,
                          *dataset_->item_profile_schema,
                          *dataset_->item_stats_schema, TinyAtnnConfig());
  TrainOptions options = SaneOptions();
  const auto batch_history = TrainAtnnModel(&batch_model, *dataset_, options);
  const auto indices_history = TrainAtnnOnIndices(
      &indices_model, *dataset_, dataset_->train_indices, options);
  EXPECT_TRUE(HistoriesBitwiseEqual(batch_history, indices_history));
}

TEST_F(TrainerValidationTest, CrossBatchNegativesChangeTheDStep) {
  AtnnModel plain(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, TinyAtnnConfig());
  AtnnModel cbns(*dataset_->user_schema, *dataset_->item_profile_schema,
                 *dataset_->item_stats_schema, TinyAtnnConfig());
  TrainOptions options = SaneOptions();
  const auto plain_history = TrainAtnnModel(&plain, *dataset_, options);
  NegativeCache cache(4);
  options.cross_batch_negatives = true;
  options.negative_cache = &cache;
  const auto cbns_history = TrainAtnnModel(&cbns, *dataset_, options);
  ASSERT_EQ(plain_history.size(), cbns_history.size());
  // The first batch has an empty cache (no extra term), but from batch 2 on
  // the D step trains against cached negatives — the trajectories diverge.
  EXPECT_NE(plain_history[0].loss_i, cbns_history[0].loss_i);
  EXPECT_GT(cache.total_rows(), 0);
  for (const auto& epoch : cbns_history) {
    EXPECT_TRUE(std::isfinite(epoch.loss_i));
    EXPECT_TRUE(std::isfinite(epoch.loss_g));
  }
}

TEST_F(TrainerValidationTest, OneBackpropAlternatesAndStaysFinite) {
  AtnnModel both(*dataset_->user_schema, *dataset_->item_profile_schema,
                 *dataset_->item_stats_schema, TinyAtnnConfig());
  AtnnModel alternating(*dataset_->user_schema,
                        *dataset_->item_profile_schema,
                        *dataset_->item_stats_schema, TinyAtnnConfig());
  TrainOptions options = SaneOptions();
  const auto both_history = TrainAtnnModel(&both, *dataset_, options);
  options.one_backprop = true;
  const auto alternating_history =
      TrainAtnnModel(&alternating, *dataset_, options);
  ASSERT_EQ(both_history.size(), alternating_history.size());
  EXPECT_FALSE(HistoriesBitwiseEqual(both_history, alternating_history));
  for (const auto& epoch : alternating_history) {
    EXPECT_TRUE(std::isfinite(epoch.loss_i));
    EXPECT_TRUE(std::isfinite(epoch.loss_g));
    EXPECT_TRUE(std::isfinite(epoch.loss_s));
  }
}

}  // namespace
}  // namespace atnn::core
