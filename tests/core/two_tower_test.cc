#include "core/two_tower.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "test_helpers.h"

namespace atnn::core {
namespace {

using testing_helpers::MakeNormalizedTinyDataset;
using testing_helpers::TinyTowerConfig;

class TwoTowerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(MakeNormalizedTinyDataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static data::TmallDataset* dataset_;
};

data::TmallDataset* TwoTowerTest::dataset_ = nullptr;

TwoTowerConfig MakeConfig(nn::TowerKind kind, bool use_stats) {
  TwoTowerConfig config;
  config.tower = TinyTowerConfig(kind);
  config.use_item_stats = use_stats;
  config.seed = 5;
  return config;
}

TEST_F(TwoTowerTest, VectorShapesMatchConfig) {
  TwoTowerModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema,
                      MakeConfig(nn::TowerKind::kDeepCross, true));
  const data::CtrBatch batch = MakeCtrBatch(*dataset_, {0, 1, 2});
  nn::Var user_vec = model.UserVector(batch.user);
  nn::Var item_vec = model.ItemVector(batch.item_profile, batch.item_stats);
  EXPECT_EQ(user_vec.rows(), 3);
  EXPECT_EQ(user_vec.cols(), 12);
  EXPECT_EQ(item_vec.rows(), 3);
  EXPECT_EQ(item_vec.cols(), 12);
  nn::Var logits = model.ScoreLogits(item_vec, user_vec);
  EXPECT_EQ(logits.rows(), 3);
  EXPECT_EQ(logits.cols(), 1);
}

TEST_F(TwoTowerTest, PredictCtrReturnsProbabilities) {
  TwoTowerModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema,
                      MakeConfig(nn::TowerKind::kFullyConnected, true));
  const data::CtrBatch batch =
      MakeCtrBatch(*dataset_, {0, 1, 2, 3, 4, 5, 6, 7});
  const std::vector<double> probs =
      model.PredictCtr(batch.user, batch.item_profile, batch.item_stats);
  ASSERT_EQ(probs.size(), 8u);
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
}

TEST_F(TwoTowerTest, TrainingReducesLoss) {
  TwoTowerModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema,
                      MakeConfig(nn::TowerKind::kDeepCross, true));
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 256;
  options.learning_rate = 2e-3f;
  const auto history = TrainTwoTowerModel(&model, *dataset_, options);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_LT(history.back().loss_i, history.front().loss_i);
}

TEST_F(TwoTowerTest, TrainedModelBeatsRandomAuc) {
  TwoTowerModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema,
                      MakeConfig(nn::TowerKind::kDeepCross, true));
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 256;
  options.learning_rate = 2e-3f;
  TrainTwoTowerModel(&model, *dataset_, options);
  const double auc =
      EvaluateTwoTowerAuc(model, *dataset_, dataset_->test_indices);
  EXPECT_GT(auc, 0.6);
}

TEST_F(TwoTowerTest, ProfileOnlyModelIgnoresStats) {
  TwoTowerModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema,
                      MakeConfig(nn::TowerKind::kDeepCross, false));
  const data::CtrBatch batch = MakeCtrBatch(*dataset_, {0, 1});
  // Corrupt the stats block: predictions must not change.
  data::CtrBatch corrupted = batch;
  corrupted.item_stats.numeric.Fill(1e6f);
  const auto a =
      model.PredictCtr(batch.user, batch.item_profile, batch.item_stats);
  const auto b = model.PredictCtr(corrupted.user, corrupted.item_profile,
                                  corrupted.item_stats);
  EXPECT_EQ(a, b);
}

TEST_F(TwoTowerTest, DcnHasMoreParametersThanFc) {
  TwoTowerModel fc(*dataset_->user_schema, *dataset_->item_profile_schema,
                   *dataset_->item_stats_schema,
                   MakeConfig(nn::TowerKind::kFullyConnected, true));
  TwoTowerModel dcn(*dataset_->user_schema, *dataset_->item_profile_schema,
                    *dataset_->item_stats_schema,
                    MakeConfig(nn::TowerKind::kDeepCross, true));
  EXPECT_GT(dcn.NumParameterElements(), fc.NumParameterElements());
}

TEST_F(TwoTowerTest, DeterministicConstructionForSameSeed) {
  const TwoTowerConfig config = MakeConfig(nn::TowerKind::kDeepCross, true);
  TwoTowerModel a(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, config);
  TwoTowerModel b(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, config);
  const data::CtrBatch batch = MakeCtrBatch(*dataset_, {0, 1, 2, 3});
  EXPECT_EQ(a.PredictCtr(batch.user, batch.item_profile, batch.item_stats),
            b.PredictCtr(batch.user, batch.item_profile, batch.item_stats));
}

TEST(MakeBatchesTest, ChunksExactly) {
  const std::vector<int64_t> indices = {1, 2, 3, 4, 5, 6, 7};
  const auto batches = MakeBatches(indices, 3);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0], (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(batches[2], (std::vector<int64_t>{7}));
}

}  // namespace
}  // namespace atnn::core
