// Tests of the parallel training/evaluation pipeline: span-based batching,
// empty-split handling, prefetched training loops (which must match the
// serial loop bitwise), and pool-parallel evaluation (which must produce
// the exact serial score sequence via in-order chunk merging).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/atnn.h"
#include "core/multitask_trainer.h"
#include "core/popularity.h"
#include "core/trainer.h"
#include "core/two_tower.h"
#include "test_helpers.h"

namespace atnn::core {
namespace {

using testing_helpers::MakeNormalizedTinyDataset;
using testing_helpers::TinyTowerConfig;

TEST(MakeBatchSpansTest, MatchesMakeBatches) {
  const std::vector<int64_t> indices = {4, 8, 15, 16, 23, 42, 7};
  for (int batch_size : {1, 2, 3, 7, 100}) {
    const auto copies = MakeBatches(indices, batch_size);
    const auto views = MakeBatchSpans(indices, batch_size);
    ASSERT_EQ(views.size(), copies.size()) << "batch_size " << batch_size;
    for (size_t b = 0; b < views.size(); ++b) {
      const std::vector<int64_t> materialized(views[b].begin(),
                                              views[b].end());
      EXPECT_EQ(materialized, copies[b]);
    }
  }
}

TEST(MakeBatchSpansTest, ViewsAliasTheIndexVector) {
  const std::vector<int64_t> indices = {1, 2, 3, 4, 5};
  const auto views = MakeBatchSpans(indices, 2);
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0].data(), indices.data());
  EXPECT_EQ(views[1].data(), indices.data() + 2);
  EXPECT_EQ(views[2].size(), 1u);
}

TEST(MakeBatchSpansTest, EmptyInputYieldsNoBatches) {
  const std::vector<int64_t> empty;
  EXPECT_TRUE(MakeBatchSpans(empty, 16).empty());
}

class TrainerPipelineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(MakeNormalizedTinyDataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static TwoTowerConfig TwoTowerCfg() {
    TwoTowerConfig config;
    config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 5;
    return config;
  }

  static AtnnConfig AtnnCfg() {
    AtnnConfig config;
    config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.lambda = 0.1f;
    config.seed = 5;
    return config;
  }

  static TrainOptions FastOptions() {
    TrainOptions options;
    options.epochs = 2;
    options.batch_size = 256;
    options.learning_rate = 2e-3f;
    return options;
  }

  static data::TmallDataset* dataset_;
};

data::TmallDataset* TrainerPipelineTest::dataset_ = nullptr;

TEST_F(TrainerPipelineTest, EmptyTrainSplitReturnsEmptyHistory) {
  data::TmallDataset empty_split = *dataset_;
  empty_split.train_indices.clear();

  TwoTowerModel two_tower(*dataset_->user_schema,
                          *dataset_->item_profile_schema,
                          *dataset_->item_stats_schema, TwoTowerCfg());
  const auto tt_history =
      TrainTwoTowerModel(&two_tower, empty_split, FastOptions());
  EXPECT_TRUE(tt_history.empty());  // no NaN epoch rows from 0/0

  AtnnModel atnn(*dataset_->user_schema, *dataset_->item_profile_schema,
                 *dataset_->item_stats_schema, AtnnCfg());
  const auto atnn_history = TrainAtnnModel(&atnn, empty_split, FastOptions());
  EXPECT_TRUE(atnn_history.empty());
}

TEST_F(TrainerPipelineTest, PrefetchedTwoTowerLossHistoryIsBitwiseIdentical) {
  ThreadPool pool(4);
  auto train = [&](ThreadPool* p) {
    TwoTowerModel model(*dataset_->user_schema,
                        *dataset_->item_profile_schema,
                        *dataset_->item_stats_schema, TwoTowerCfg());
    TrainOptions options = FastOptions();
    options.pool = p;
    return TrainTwoTowerModel(&model, *dataset_, options);
  };
  const auto serial = train(nullptr);
  const auto prefetched = train(&pool);
  ASSERT_EQ(serial.size(), prefetched.size());
  for (size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(serial[e].loss_i, prefetched[e].loss_i) << "epoch " << e;
  }
}

TEST_F(TrainerPipelineTest, PrefetchedAtnnLossHistoryIsBitwiseIdentical) {
  ThreadPool pool(4);
  auto train = [&](ThreadPool* p) {
    AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                    *dataset_->item_stats_schema, AtnnCfg());
    TrainOptions options = FastOptions();
    options.pool = p;
    return TrainAtnnModel(&model, *dataset_, options);
  };
  const auto serial = train(nullptr);
  const auto prefetched = train(&pool);
  ASSERT_EQ(serial.size(), prefetched.size());
  for (size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(serial[e].loss_i, prefetched[e].loss_i) << "epoch " << e;
    EXPECT_EQ(serial[e].loss_g, prefetched[e].loss_g) << "epoch " << e;
    EXPECT_EQ(serial[e].loss_s, prefetched[e].loss_s) << "epoch " << e;
  }
}

TEST_F(TrainerPipelineTest, ParallelAucMatchesSerialExactly) {
  ThreadPool pool(4);
  TwoTowerModel two_tower(*dataset_->user_schema,
                          *dataset_->item_profile_schema,
                          *dataset_->item_stats_schema, TwoTowerCfg());
  // batch_size 128 over the tiny test split yields many chunks, so the
  // merge order actually matters.
  const double tt_serial = EvaluateTwoTowerAuc(
      two_tower, *dataset_, dataset_->test_indices, 128, nullptr);
  const double tt_parallel = EvaluateTwoTowerAuc(
      two_tower, *dataset_, dataset_->test_indices, 128, &pool);
  EXPECT_EQ(tt_serial, tt_parallel);

  const double miss_serial = EvaluateTwoTowerAucMissingStats(
      two_tower, *dataset_, dataset_->test_indices, 128, nullptr);
  const double miss_parallel = EvaluateTwoTowerAucMissingStats(
      two_tower, *dataset_, dataset_->test_indices, 128, &pool);
  EXPECT_EQ(miss_serial, miss_parallel);

  AtnnModel atnn(*dataset_->user_schema, *dataset_->item_profile_schema,
                 *dataset_->item_stats_schema, AtnnCfg());
  for (CtrPath path : {CtrPath::kEncoder, CtrPath::kGenerator}) {
    const double serial = EvaluateAtnnAuc(atnn, *dataset_,
                                          dataset_->test_indices, path, 128,
                                          nullptr);
    const double parallel = EvaluateAtnnAuc(atnn, *dataset_,
                                            dataset_->test_indices, path, 128,
                                            &pool);
    EXPECT_EQ(serial, parallel);
  }
}

TEST_F(TrainerPipelineTest, ParallelPopularityScoringMatchesSerial) {
  ThreadPool pool(4);
  AtnnModel atnn(*dataset_->user_schema, *dataset_->item_profile_schema,
                 *dataset_->item_stats_schema, AtnnCfg());
  const std::vector<int64_t> group = SelectActiveUsers(*dataset_, 100);

  const auto serial_predictor =
      PopularityPredictor::Build(atnn, *dataset_, group, 32, nullptr);
  const auto parallel_predictor =
      PopularityPredictor::Build(atnn, *dataset_, group, 32, &pool);

  const auto serial_scores = serial_predictor.ScoreItems(
      atnn, *dataset_, dataset_->new_items, 64, nullptr);
  const auto parallel_scores = parallel_predictor.ScoreItems(
      atnn, *dataset_, dataset_->new_items, 64, &pool);
  ASSERT_EQ(serial_scores.size(), parallel_scores.size());
  // Build merges per-chunk partial sums in chunk order regardless of the
  // pool, so even the mean user vector is bitwise reproducible.
  EXPECT_EQ(serial_scores, parallel_scores);

  const auto pairwise_serial = ScoreItemsPairwise(
      atnn, *dataset_, dataset_->new_items, group, 64, nullptr);
  const auto pairwise_parallel = ScoreItemsPairwise(
      atnn, *dataset_, dataset_->new_items, group, 64, &pool);
  EXPECT_EQ(pairwise_serial, pairwise_parallel);
}

class MultiTaskPipelineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::ElemeConfig config;
    config.num_restaurants = 1200;
    config.num_new_restaurants = 200;
    config.num_cells = 40;
    config.seed = 4242;
    dataset_ = new data::ElemeDataset(GenerateElemeDataset(config));
    NormalizeElemeInPlace(dataset_);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static MultiTaskAtnnConfig MtCfg() {
    MultiTaskAtnnConfig config;
    config.tower.kind = nn::TowerKind::kDeepCross;
    config.tower.deep_dims = {32, 16};
    config.tower.cross_layers = 2;
    config.tower.output_dim = 12;
    config.adversarial = true;
    config.seed = 5;
    return config;
  }

  static data::ElemeDataset* dataset_;
};

data::ElemeDataset* MultiTaskPipelineTest::dataset_ = nullptr;

TEST_F(MultiTaskPipelineTest, EmptyTrainSplitReturnsEmptyHistory) {
  data::ElemeDataset empty_split = *dataset_;
  empty_split.train_indices.clear();
  MultiTaskAtnnModel model(*dataset_->restaurant_profile_schema,
                           *dataset_->restaurant_stats_schema,
                           *dataset_->user_group_schema, MtCfg());
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 64;
  EXPECT_TRUE(TrainMultiTaskAtnn(&model, empty_split, options).empty());
}

TEST_F(MultiTaskPipelineTest, PrefetchedLossHistoryIsBitwiseIdentical) {
  ThreadPool pool(4);
  auto train = [&](ThreadPool* p) {
    MultiTaskAtnnModel model(*dataset_->restaurant_profile_schema,
                             *dataset_->restaurant_stats_schema,
                             *dataset_->user_group_schema, MtCfg());
    TrainOptions options;
    options.epochs = 2;
    options.batch_size = 64;
    options.learning_rate = 1e-3f;
    options.pool = p;
    return TrainMultiTaskAtnn(&model, *dataset_, options);
  };
  const auto serial = train(nullptr);
  const auto prefetched = train(&pool);
  ASSERT_EQ(serial.size(), prefetched.size());
  for (size_t e = 0; e < serial.size(); ++e) {
    EXPECT_EQ(serial[e].loss_gmv_d, prefetched[e].loss_gmv_d);
    EXPECT_EQ(serial[e].loss_vppv_d, prefetched[e].loss_vppv_d);
    EXPECT_EQ(serial[e].loss_gmv_g, prefetched[e].loss_gmv_g);
    EXPECT_EQ(serial[e].loss_vppv_g, prefetched[e].loss_vppv_g);
    EXPECT_EQ(serial[e].loss_s, prefetched[e].loss_s);
  }
}

TEST_F(MultiTaskPipelineTest, ParallelEvalMatchesSerial) {
  ThreadPool pool(4);
  MultiTaskAtnnModel model(*dataset_->restaurant_profile_schema,
                           *dataset_->restaurant_stats_schema,
                           *dataset_->user_group_schema, MtCfg());
  const ElemeEval serial =
      EvaluateEleme(model, *dataset_, dataset_->test_indices, 64, nullptr);
  const ElemeEval parallel =
      EvaluateEleme(model, *dataset_, dataset_->test_indices, 64, &pool);
  EXPECT_EQ(serial.vppv_mae, parallel.vppv_mae);
  EXPECT_EQ(serial.gmv_mae, parallel.gmv_mae);
}

}  // namespace
}  // namespace atnn::core
