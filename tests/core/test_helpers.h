#ifndef ATNN_TESTS_CORE_TEST_HELPERS_H_
#define ATNN_TESTS_CORE_TEST_HELPERS_H_

#include "core/feature_adapter.h"
#include "data/tmall.h"
#include "nn/layers.h"

namespace atnn::core::testing_helpers {

/// A tiny but learnable Tmall world for unit tests (seconds, not minutes).
inline data::TmallConfig TinyTmallConfig() {
  data::TmallConfig config;
  config.num_users = 300;
  config.num_items = 400;
  config.num_new_items = 120;
  config.num_interactions = 12000;
  config.attractiveness_sample = 64;
  config.seed = 20240601;
  return config;
}

/// Small tower so forward/backward stays cheap.
inline nn::TowerConfig TinyTowerConfig(nn::TowerKind kind) {
  nn::TowerConfig config;
  config.kind = kind;
  config.deep_dims = {32, 16};
  config.cross_layers = 2;
  config.output_dim = 12;
  return config;
}

/// Generates and normalizes the tiny dataset.
inline data::TmallDataset MakeNormalizedTinyDataset() {
  data::TmallDataset dataset = data::GenerateTmallDataset(TinyTmallConfig());
  NormalizeTmallInPlace(&dataset);
  return dataset;
}

}  // namespace atnn::core::testing_helpers

#endif  // ATNN_TESTS_CORE_TEST_HELPERS_H_
