#include "core/atnn.h"

#include <set>

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "test_helpers.h"

namespace atnn::core {
namespace {

using testing_helpers::MakeNormalizedTinyDataset;
using testing_helpers::TinyTowerConfig;

class AtnnModelTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(MakeNormalizedTinyDataset());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static AtnnConfig MakeConfig() {
    AtnnConfig config;
    config.tower = TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.lambda = 0.1f;
    config.seed = 5;
    return config;
  }

  static TrainOptions FastOptions() {
    TrainOptions options;
    options.epochs = 3;
    options.batch_size = 256;
    options.learning_rate = 2e-3f;
    return options;
  }

  static data::TmallDataset* dataset_;
};

data::TmallDataset* AtnnModelTest::dataset_ = nullptr;

TEST_F(AtnnModelTest, ParameterGroupsCoverEverythingAndOverlapOnlyOnSharedTables) {
  AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, MakeConfig());
  auto d_params = model.DiscriminatorParameters();
  auto g_params = model.GeneratorParameters();
  auto all_params = model.Parameters();
  // Union covers every parameter.
  std::set<nn::Parameter*> unioned(d_params.begin(), d_params.end());
  unioned.insert(g_params.begin(), g_params.end());
  EXPECT_EQ(unioned.size(), all_params.size());
  // With shared embeddings the two groups overlap exactly on the
  // item-profile tables (updated by both steps, per the paper's strategy).
  std::set<nn::Parameter*> d_set(d_params.begin(), d_params.end());
  for (nn::Parameter* g : g_params) {
    if (d_set.count(g) > 0) {
      EXPECT_NE(g->name().find("atnn.item.emb."), std::string::npos)
          << g->name() << " unexpectedly in both groups";
    }
  }

  // Without sharing, the groups are fully disjoint.
  AtnnConfig separate = MakeConfig();
  separate.share_embeddings = false;
  AtnnModel separate_model(*dataset_->user_schema,
                           *dataset_->item_profile_schema,
                           *dataset_->item_stats_schema, separate);
  auto d2 = separate_model.DiscriminatorParameters();
  auto g2 = separate_model.GeneratorParameters();
  std::set<nn::Parameter*> d2_set(d2.begin(), d2.end());
  for (nn::Parameter* g : g2) EXPECT_EQ(d2_set.count(g), 0u) << g->name();
  EXPECT_EQ(d2.size() + g2.size(), separate_model.Parameters().size());
}

TEST_F(AtnnModelTest, SharedEmbeddingsReduceParameterCount) {
  AtnnConfig shared = MakeConfig();
  AtnnConfig separate = MakeConfig();
  separate.share_embeddings = false;
  AtnnModel shared_model(*dataset_->user_schema,
                         *dataset_->item_profile_schema,
                         *dataset_->item_stats_schema, shared);
  AtnnModel separate_model(*dataset_->user_schema,
                           *dataset_->item_profile_schema,
                           *dataset_->item_stats_schema, separate);
  EXPECT_LT(shared_model.NumParameterElements(),
            separate_model.NumParameterElements());
}

TEST_F(AtnnModelTest, GeneratorWorksWithoutStatistics) {
  AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, MakeConfig());
  // New arrivals: profile rows exist, stats rows are zero placeholders.
  const data::BlockBatch profile =
      GatherBlock(dataset_->item_profiles, dataset_->new_items);
  nn::Var gen_vec = model.GeneratorItemVector(profile);
  EXPECT_EQ(gen_vec.rows(),
            static_cast<int64_t>(dataset_->new_items.size()));
  EXPECT_EQ(gen_vec.cols(), 12);
  EXPECT_TRUE(gen_vec.value().AllFinite());
}

TEST_F(AtnnModelTest, TrainingReducesAllThreeLosses) {
  AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, MakeConfig());
  const auto history = TrainAtnnModel(&model, *dataset_, FastOptions());
  ASSERT_EQ(history.size(), 3u);
  EXPECT_LT(history.back().loss_i, history.front().loss_i);
  EXPECT_LT(history.back().loss_g, history.front().loss_g);
  EXPECT_LT(history.back().loss_s, history.front().loss_s);
}

TEST_F(AtnnModelTest, GeneratorVectorsConvergeTowardEncoderVectors) {
  AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, MakeConfig());
  const data::CtrBatch batch =
      MakeCtrBatch(*dataset_, std::vector<int64_t>(
                                  dataset_->test_indices.begin(),
                                  dataset_->test_indices.begin() + 256));
  auto mean_cosine = [&model, &batch]() {
    nn::Var gen = model.GeneratorItemVector(batch.item_profile);
    nn::Var enc =
        model.EncoderItemVector(batch.item_profile, batch.item_stats);
    nn::Var cosine = nn::CosineSimilarityRows(gen, nn::StopGradient(enc));
    return cosine.value().Mean();
  };
  const double before = mean_cosine();
  TrainAtnnModel(&model, *dataset_, FastOptions());
  const double after = mean_cosine();
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.5);  // strongly aligned after training
}

TEST_F(AtnnModelTest, BothPathsBeatRandomAfterTraining) {
  AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, MakeConfig());
  TrainAtnnModel(&model, *dataset_, FastOptions());
  const double auc_encoder = EvaluateAtnnAuc(
      model, *dataset_, dataset_->test_indices, CtrPath::kEncoder);
  const double auc_generator = EvaluateAtnnAuc(
      model, *dataset_, dataset_->test_indices, CtrPath::kGenerator);
  EXPECT_GT(auc_encoder, 0.6);
  EXPECT_GT(auc_generator, 0.6);
  // The paper's core claim: the generator path degrades only slightly.
  EXPECT_GT(auc_generator, auc_encoder - 0.05);
}

TEST_F(AtnnModelTest, L2SimilarityModeAlsoTrains) {
  AtnnConfig config = MakeConfig();
  config.similarity = SimilarityMode::kL2;
  AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, config);
  TrainOptions options = FastOptions();
  options.epochs = 2;
  const auto history = TrainAtnnModel(&model, *dataset_, options);
  EXPECT_LT(history.back().loss_s, history.front().loss_s);
}

TEST_F(AtnnModelTest, PredictionsAreFiniteProbabilities) {
  // Note closed bounds: an untrained DCN can produce logits large enough
  // to saturate float sigmoid exactly to 0 or 1.
  AtnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                  *dataset_->item_stats_schema, MakeConfig());
  const data::CtrBatch batch = MakeCtrBatch(*dataset_, {0, 1, 2, 3});
  for (double p : model.PredictCtrEncoder(batch.user, batch.item_profile,
                                          batch.item_stats)) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  for (double p :
       model.PredictCtrGenerator(batch.user, batch.item_profile)) {
    EXPECT_TRUE(std::isfinite(p));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

}  // namespace
}  // namespace atnn::core
