// End-to-end integration test over the full production pipeline:
//   generate world -> train ATNN -> evaluate -> snapshot -> (new process)
//   load snapshot -> build popularity predictor -> export index ->
//   online scorer updates -> top-K agreement.
// Exercises every module boundary in one flow.

#include <cstdio>

#include <gtest/gtest.h>

#include "core/atnn.h"
#include "core/feature_adapter.h"
#include "core/popularity.h"
#include "core/trainer.h"
#include "core/user_clusters.h"
#include "data/tmall.h"
#include "metrics/metrics.h"
#include "serving/model_snapshot.h"
#include "serving/online_scorer.h"
#include "serving/popularity_index.h"
#include "test_helpers.h"

namespace atnn::core {
namespace {

TEST(PipelineIntegrationTest, TrainSnapshotServeRoundTrip) {
  const std::string snapshot_path =
      testing::TempDir() + "/pipeline_snapshot.bin";
  const std::string index_path = testing::TempDir() + "/pipeline_index.bin";

  // --- offline: world + training ---
  data::TmallDataset dataset =
      testing_helpers::MakeNormalizedTinyDataset();
  AtnnConfig config;
  config.tower = testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
  config.seed = 5;
  AtnnModel trainer_model(*dataset.user_schema,
                          *dataset.item_profile_schema,
                          *dataset.item_stats_schema, config);
  TrainOptions options;
  options.epochs = 3;
  options.batch_size = 256;
  options.learning_rate = 2e-3f;
  TrainAtnnModel(&trainer_model, dataset, options);
  const double auc = EvaluateAtnnAuc(trainer_model, dataset,
                                     dataset.test_indices,
                                     CtrPath::kGenerator);
  ASSERT_GT(auc, 0.6) << "training failed, pipeline test is meaningless";

  ASSERT_TRUE(serving::SaveModelSnapshot(&trainer_model, snapshot_path,
                                         "pipeline-v1")
                  .ok());

  // --- serving process: fresh model object, weights from disk ---
  AtnnModel serving_model(*dataset.user_schema,
                          *dataset.item_profile_schema,
                          *dataset.item_stats_schema, config);
  ASSERT_TRUE(serving::LoadModelSnapshot(&serving_model, snapshot_path,
                                         "pipeline-v1")
                  .ok());

  // Scores from the restored model must match the trainer's bitwise.
  const auto group = SelectActiveUsers(dataset, 100);
  const auto trainer_predictor =
      PopularityPredictor::Build(trainer_model, dataset, group);
  const auto serving_predictor =
      PopularityPredictor::Build(serving_model, dataset, group);
  const auto trainer_scores = trainer_predictor.ScoreItems(
      trainer_model, dataset, dataset.new_items);
  const auto serving_scores = serving_predictor.ScoreItems(
      serving_model, dataset, dataset.new_items);
  ASSERT_EQ(trainer_scores.size(), serving_scores.size());
  for (size_t i = 0; i < trainer_scores.size(); ++i) {
    ASSERT_EQ(trainer_scores[i], serving_scores[i]) << "item " << i;
  }

  // --- index persistence round trip ---
  serving::PopularityIndex index;
  index.BulkLoad(dataset.new_items, serving_scores);
  ASSERT_TRUE(index.SaveToFile(index_path).ok());
  auto loaded_or = serving::PopularityIndex::LoadFromFile(index_path);
  ASSERT_TRUE(loaded_or.ok());
  const auto top_before = index.TopK(10);
  const auto top_after = loaded_or->TopK(10);
  ASSERT_EQ(top_before.size(), top_after.size());
  for (size_t i = 0; i < top_before.size(); ++i) {
    EXPECT_EQ(top_before[i].first, top_after[i].first);
    EXPECT_EQ(top_before[i].second, top_after[i].second);
  }

  // --- online: priors + a burst of behaviour reorder the index ---
  serving::OnlineScorer::Config scorer_config;
  scorer_config.prior_strength = 20.0;
  serving::OnlineScorer scorer(scorer_config);
  for (size_t i = 0; i < dataset.new_items.size(); ++i) {
    scorer.SetPrior(dataset.new_items[i], serving_scores[i]);
  }
  // The lowest-prior item suddenly performs: 50 impressions, 40 clicks.
  const int64_t sleeper =
      top_after.back().first;  // a mid-rank item from the loaded index
  serving::BehaviorEvent event;
  event.item_id = sleeper;
  int64_t ts = 0;
  for (int i = 0; i < 50; ++i) {
    event.timestamp = ++ts;
    event.type = serving::EventType::kImpression;
    ASSERT_TRUE(scorer.Observe(event).ok());
  }
  for (int i = 0; i < 40; ++i) {
    event.timestamp = ++ts;
    event.type = serving::EventType::kClick;
    ASSERT_TRUE(scorer.Observe(event).ok());
  }
  serving::PopularityIndex refreshed;
  scorer.ExportIndex(&refreshed);
  // The sleeper's posterior (observed CTR 0.8 with strong evidence) now
  // tops the index.
  EXPECT_EQ(refreshed.TopK(1)[0].first, sleeper);

  std::remove(snapshot_path.c_str());
  std::remove(index_path.c_str());
}

TEST(PipelineIntegrationTest, ClusteredAndGlobalPredictorsShareSnapshot) {
  data::TmallDataset dataset =
      testing_helpers::MakeNormalizedTinyDataset();
  AtnnConfig config;
  config.tower = testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
  config.seed = 5;
  AtnnModel model(*dataset.user_schema, *dataset.item_profile_schema,
                  *dataset.item_stats_schema, config);
  TrainOptions options;
  options.epochs = 2;
  options.batch_size = 256;
  options.learning_rate = 2e-3f;
  TrainAtnnModel(&model, dataset, options);

  const auto group = SelectActiveUsers(dataset, 100);
  const auto global = PopularityPredictor::Build(model, dataset, group);
  KMeansConfig kmeans;
  kmeans.num_clusters = 4;
  const auto clustered =
      ClusteredPopularityPredictor::Build(model, dataset, group, kmeans);
  const auto global_scores =
      global.ScoreItems(model, dataset, dataset.new_items);
  const auto clustered_scores =
      clustered.ScoreItems(model, dataset, dataset.new_items);
  // Same model, same group: the two O(K) approximations must agree on the
  // broad ranking even though values differ.
  EXPECT_GT(metrics::SpearmanCorrelation(global_scores, clustered_scores),
            0.9);
}

}  // namespace
}  // namespace atnn::core
