#include "data/schema.h"

#include <gtest/gtest.h>

#include "data/normalize.h"

namespace atnn::data {
namespace {

FeatureSchema MakeMixedSchema() {
  return FeatureSchema({FeatureSpec::Categorical("cat_a", 10, 4),
                        FeatureSpec::Numeric("num_x"),
                        FeatureSpec::Categorical("cat_b", 5, 2),
                        FeatureSpec::Numeric("num_y")});
}

TEST(FeatureSchemaTest, SplitsCategoricalAndNumeric) {
  FeatureSchema schema = MakeMixedSchema();
  EXPECT_EQ(schema.num_features(), 4u);
  EXPECT_EQ(schema.num_categorical(), 2u);
  EXPECT_EQ(schema.num_numeric(), 2u);
  EXPECT_EQ(schema.categorical_spec(0).name, "cat_a");
  EXPECT_EQ(schema.categorical_spec(1).name, "cat_b");
  EXPECT_EQ(schema.TotalEmbedDim(), 6);
  EXPECT_EQ(schema.TowerInputDim(), 8);
}

TEST(EntityTableTest, StoresAndRetrievesValues) {
  auto schema = std::make_shared<FeatureSchema>(MakeMixedSchema());
  EntityTable table(schema, 3);
  EXPECT_EQ(table.num_rows(), 3);
  table.set_categorical(0, 1, 7);
  table.set_categorical(1, 2, 4);
  table.set_numeric(0, 0, 1.5f);
  table.set_numeric(1, 2, -2.0f);
  EXPECT_EQ(table.categorical(0, 1), 7);
  EXPECT_EQ(table.categorical(1, 2), 4);
  EXPECT_FLOAT_EQ(table.numeric(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(table.numeric(1, 2), -2.0f);
  // Unset values default to zero.
  EXPECT_EQ(table.categorical(0, 0), 0);
  EXPECT_FLOAT_EQ(table.numeric(0, 1), 0.0f);
}

TEST(EntityTableTest, GatherBlockSelectsRows) {
  auto schema = std::make_shared<FeatureSchema>(MakeMixedSchema());
  EntityTable table(schema, 4);
  for (int64_t r = 0; r < 4; ++r) {
    table.set_categorical(0, r, r);
    table.set_numeric(0, r, static_cast<float>(10 * r));
  }
  BlockBatch batch = GatherBlock(table, {3, 1});
  EXPECT_EQ(batch.rows(), 2);
  EXPECT_EQ(batch.categorical[0][0], 3);
  EXPECT_EQ(batch.categorical[0][1], 1);
  EXPECT_FLOAT_EQ(batch.numeric.at(0, 0), 30.0f);
  EXPECT_FLOAT_EQ(batch.numeric.at(1, 0), 10.0f);
}

TEST(EntityTableTest, SliceRowsMaterializesAStandaloneTable) {
  auto schema = std::make_shared<FeatureSchema>(MakeMixedSchema());
  EntityTable table(schema, 5);
  for (int64_t r = 0; r < 5; ++r) {
    table.set_categorical(0, r, r + 1);
    table.set_categorical(1, r, r);
    table.set_numeric(0, r, static_cast<float>(r) * 0.5f);
    table.set_numeric(1, r, static_cast<float>(-r));
  }

  // Out-of-order, repeated selection — exactly what a shard slice does
  // when the ring hands it a scattered row set.
  const std::vector<int64_t> rows = {4, 0, 2, 4};
  EntityTable slice = SliceRows(table, rows);
  ASSERT_EQ(slice.num_rows(), 4);
  EXPECT_EQ(slice.schema_ptr(), table.schema_ptr());  // schema shared
  for (int64_t local = 0; local < slice.num_rows(); ++local) {
    const int64_t src = rows[static_cast<size_t>(local)];
    EXPECT_EQ(slice.categorical(0, local), table.categorical(0, src));
    EXPECT_EQ(slice.categorical(1, local), table.categorical(1, src));
    EXPECT_FLOAT_EQ(slice.numeric(0, local), table.numeric(0, src));
    EXPECT_FLOAT_EQ(slice.numeric(1, local), table.numeric(1, src));
  }

  // Standalone copy: mutating the source later must not leak through.
  table.set_categorical(0, 4, 9);
  EXPECT_EQ(slice.categorical(0, 0), 5);

  // An empty selection is a valid (0-row) table, not an error — shards can
  // own no rows on tiny catalogs.
  EXPECT_EQ(SliceRows(table, {}).num_rows(), 0);
}

TEST(NormalizerTest, StandardizesColumns) {
  auto schema = std::make_shared<FeatureSchema>(
      FeatureSchema({FeatureSpec::Numeric("a"), FeatureSpec::Numeric("b")}));
  EntityTable table(schema, 4);
  const float a_vals[] = {1, 2, 3, 4};
  const float b_vals[] = {10, 10, 10, 10};  // constant column
  for (int64_t r = 0; r < 4; ++r) {
    table.set_numeric(0, r, a_vals[r]);
    table.set_numeric(1, r, b_vals[r]);
  }
  Normalizer norm = Normalizer::Fit(table);
  EXPECT_FLOAT_EQ(norm.mean(0), 2.5f);
  norm.Apply(&table);
  // Standardized column has zero mean and unit-ish variance.
  double mean = 0.0;
  for (int64_t r = 0; r < 4; ++r) mean += table.numeric(0, r);
  EXPECT_NEAR(mean / 4.0, 0.0, 1e-6);
  // Constant column does not explode (guarded stddev).
  for (int64_t r = 0; r < 4; ++r) {
    EXPECT_FLOAT_EQ(table.numeric(1, r), 0.0f);
  }
}

TEST(NormalizerTest, FitOnSubsetOfRows) {
  auto schema = std::make_shared<FeatureSchema>(
      FeatureSchema({FeatureSpec::Numeric("a")}));
  EntityTable table(schema, 3);
  table.set_numeric(0, 0, 0.0f);
  table.set_numeric(0, 1, 2.0f);
  table.set_numeric(0, 2, 1000.0f);  // excluded from the fit
  Normalizer norm = Normalizer::Fit(table, {0, 1});
  EXPECT_FLOAT_EQ(norm.mean(0), 1.0f);
  EXPECT_FLOAT_EQ(norm.stddev(0), 1.0f);
}

TEST(NormalizerTest, AppliesToGatheredTensor) {
  Normalizer norm;
  {
    auto schema = std::make_shared<FeatureSchema>(
        FeatureSchema({FeatureSpec::Numeric("a")}));
    EntityTable table(schema, 2);
    table.set_numeric(0, 0, 0.0f);
    table.set_numeric(0, 1, 4.0f);
    norm = Normalizer::Fit(table);
  }
  nn::Tensor block(1, 1, {2.0f});
  norm.Apply(&block);
  EXPECT_FLOAT_EQ(block.at(0, 0), 0.0f);  // (2 - 2) / 2
}

}  // namespace
}  // namespace atnn::data
