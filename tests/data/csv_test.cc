#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/tmall.h"

namespace atnn::data {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

SchemaPtr MakeSchema() {
  return std::make_shared<FeatureSchema>(
      FeatureSchema({FeatureSpec::Categorical("cat_a", 10, 4),
                     FeatureSpec::Numeric("num_x"),
                     FeatureSpec::Categorical("cat_b", 5, 2),
                     FeatureSpec::Numeric("num_y")}));
}

TEST(CsvTest, EntityTableRoundTrip) {
  const std::string path = TempPath("entity_roundtrip.csv");
  SchemaPtr schema = MakeSchema();
  EntityTable table(schema, 3);
  for (int64_t r = 0; r < 3; ++r) {
    table.set_categorical(0, r, r + 1);
    table.set_categorical(1, r, r);
    table.set_numeric(0, r, 1.5f * static_cast<float>(r) - 0.25f);
    table.set_numeric(1, r, -3.75f);
  }
  ASSERT_TRUE(WriteEntityTableCsv(table, path).ok());
  auto loaded_or = ReadEntityTableCsv(schema, path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const EntityTable& loaded = loaded_or.value();
  ASSERT_EQ(loaded.num_rows(), 3);
  for (int64_t r = 0; r < 3; ++r) {
    EXPECT_EQ(loaded.categorical(0, r), table.categorical(0, r));
    EXPECT_EQ(loaded.categorical(1, r), table.categorical(1, r));
    EXPECT_FLOAT_EQ(loaded.numeric(0, r), table.numeric(0, r));
    EXPECT_FLOAT_EQ(loaded.numeric(1, r), table.numeric(1, r));
  }
  std::remove(path.c_str());
}

TEST(CsvTest, FullTmallUserTableRoundTrip) {
  TmallConfig config;
  config.num_users = 40;
  config.num_items = 30;
  config.num_new_items = 5;
  config.num_interactions = 100;
  config.attractiveness_sample = 8;
  TmallDataset dataset = GenerateTmallDataset(config);

  const std::string path = TempPath("tmall_users.csv");
  ASSERT_TRUE(WriteEntityTableCsv(dataset.users, path).ok());
  auto loaded_or = ReadEntityTableCsv(dataset.user_schema, path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  EXPECT_EQ(loaded_or->num_rows(), 40);
  for (int64_t r = 0; r < 40; ++r) {
    for (size_t f = 0; f < dataset.user_schema->num_numeric(); ++f) {
      EXPECT_FLOAT_EQ(loaded_or->numeric(f, r), dataset.users.numeric(f, r));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderMismatchRejected) {
  const std::string path = TempPath("entity_bad_header.csv");
  {
    std::ofstream file(path);
    file << "wrong,header,entirely,here\n1,2.0,3,4.0\n";
  }
  EXPECT_EQ(ReadEntityTableCsv(MakeSchema(), path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, OutOfVocabCategoricalRejected) {
  const std::string path = TempPath("entity_oov.csv");
  {
    std::ofstream file(path);
    file << "cat_a,num_x,cat_b,num_y\n99,1.0,0,2.0\n";  // cat_a vocab is 10
  }
  EXPECT_EQ(ReadEntityTableCsv(MakeSchema(), path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, UnparsableValueRejected) {
  const std::string path = TempPath("entity_garbage.csv");
  {
    std::ofstream file(path);
    file << "cat_a,num_x,cat_b,num_y\n1,not_a_number,0,2.0\n";
  }
  EXPECT_EQ(ReadEntityTableCsv(MakeSchema(), path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIoError) {
  EXPECT_EQ(ReadEntityTableCsv(MakeSchema(), "/no/such.csv").status().code(),
            StatusCode::kIoError);
}

TEST(CsvTest, InteractionsRoundTrip) {
  const std::string path = TempPath("interactions.csv");
  ASSERT_TRUE(WriteInteractionsCsv({1, 2, 3}, {10, 20, 30}, {1.0f, 0.0f, 1.0f},
                                   path)
                  .ok());
  auto log_or = ReadInteractionsCsv(path);
  ASSERT_TRUE(log_or.ok()) << log_or.status().ToString();
  EXPECT_EQ(log_or->users, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(log_or->items, (std::vector<int64_t>{10, 20, 30}));
  EXPECT_EQ(log_or->labels, (std::vector<float>{1.0f, 0.0f, 1.0f}));
  std::remove(path.c_str());
}

TEST(CsvTest, ExportTmallDatasetWritesAllFiles) {
  TmallConfig config;
  config.num_users = 30;
  config.num_items = 20;
  config.num_new_items = 5;
  config.num_interactions = 80;
  config.attractiveness_sample = 8;
  TmallDataset dataset = GenerateTmallDataset(config);
  const std::string dir = testing::TempDir();
  ASSERT_TRUE(ExportTmallDatasetCsv(dataset, dir).ok());

  // Every table reads back under its own schema with the right row count.
  auto users = ReadEntityTableCsv(dataset.user_schema, dir + "/users.csv");
  ASSERT_TRUE(users.ok());
  EXPECT_EQ(users->num_rows(), 30);
  auto profiles = ReadEntityTableCsv(dataset.item_profile_schema,
                                     dir + "/item_profiles.csv");
  ASSERT_TRUE(profiles.ok());
  EXPECT_EQ(profiles->num_rows(), 25);
  auto stats = ReadEntityTableCsv(dataset.item_stats_schema,
                                  dir + "/item_stats.csv");
  ASSERT_TRUE(stats.ok());
  auto log = ReadInteractionsCsv(dir + "/interactions.csv");
  ASSERT_TRUE(log.ok());
  EXPECT_EQ(log->users.size(), 80u);
  EXPECT_EQ(log->labels, dataset.labels);

  for (const char* name :
       {"users.csv", "item_profiles.csv", "item_stats.csv",
        "interactions.csv", "splits.csv"}) {
    std::remove((dir + "/" + name).c_str());
  }
}

// --- SplitCsvLine: RFC-4180 behaviour, tested directly ---

TEST(SplitCsvLineTest, PlainFieldsAndTrailingComma) {
  EXPECT_EQ(SplitCsvLine("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine("a,,c"), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitCsvLine("a,b,"), (std::vector<std::string>{"a", "b", ""}));
  EXPECT_EQ(SplitCsvLine(""), std::vector<std::string>{});
}

// Regression: getline keeps the '\r' of CRLF terminators, so every last
// field of a Windows-written file used to carry an invisible byte that
// failed value parsing.
TEST(SplitCsvLineTest, StripsTrailingCarriageReturn) {
  EXPECT_EQ(SplitCsvLine("a,b,c\r"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCsvLine("\r"), std::vector<std::string>{});
  EXPECT_EQ(SplitCsvLine("7\r"), std::vector<std::string>{"7"});
}

TEST(SplitCsvLineTest, QuotedFieldsKeepCommas) {
  EXPECT_EQ(SplitCsvLine("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(SplitCsvLine("x,\"1,2,3\",y"),
            (std::vector<std::string>{"x", "1,2,3", "y"}));
  EXPECT_EQ(SplitCsvLine("\"\",b"), (std::vector<std::string>{"", "b"}));
}

TEST(SplitCsvLineTest, DoubledQuoteIsLiteralQuote) {
  EXPECT_EQ(SplitCsvLine("\"say \"\"hi\"\"\",b"),
            (std::vector<std::string>{"say \"hi\"", "b"}));
  EXPECT_EQ(SplitCsvLine("\"\"\"\""), std::vector<std::string>{"\""});
}

TEST(SplitCsvLineTest, QuotedFieldWithCrlfTail) {
  EXPECT_EQ(SplitCsvLine("a,\"b,c\"\r"),
            (std::vector<std::string>{"a", "b,c"}));
}

// --- CRLF fixtures through the real readers ---

TEST(CsvTest, CrlfEntityTableReadsClean) {
  const std::string path = TempPath("crlf_entity.csv");
  {
    std::ofstream file(path, std::ios::binary);
    file << "cat_a,num_x,cat_b,num_y\r\n"
         << "1,0.5,2,-1.25\r\n"
         << "3,1.5,4,2.5\r\n";
  }
  auto loaded_or = ReadEntityTableCsv(MakeSchema(), path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const EntityTable& loaded = loaded_or.value();
  ASSERT_EQ(loaded.num_rows(), 2);
  EXPECT_EQ(loaded.categorical(0, 0), 1);
  EXPECT_FLOAT_EQ(loaded.numeric(1, 0), -1.25f);
  EXPECT_FLOAT_EQ(loaded.numeric(1, 1), 2.5f);
  std::remove(path.c_str());
}

TEST(CsvTest, CrlfInteractionsReadClean) {
  const std::string path = TempPath("crlf_interactions.csv");
  {
    std::ofstream file(path, std::ios::binary);
    file << "user_id,item_id,label\r\n"
         << "1,10,1\r\n"
         << "2,20,0\r\n"
         << "\r\n";  // trailing blank CRLF line must be skipped
  }
  auto log_or = ReadInteractionsCsv(path);
  ASSERT_TRUE(log_or.ok()) << log_or.status().ToString();
  ASSERT_EQ(log_or.value().users.size(), 2u);
  EXPECT_EQ(log_or.value().items[1], 20);
  EXPECT_FLOAT_EQ(log_or.value().labels[0], 1.0f);
  std::remove(path.c_str());
}

TEST(CsvTest, QuotedNumericFieldParses) {
  const std::string path = TempPath("quoted_entity.csv");
  {
    std::ofstream file(path);
    file << "cat_a,num_x,cat_b,num_y\n"
         << "\"1\",\"0.5\",2,-1.25\n";
  }
  auto loaded_or = ReadEntityTableCsv(MakeSchema(), path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  EXPECT_EQ(loaded_or.value().categorical(0, 0), 1);
  EXPECT_FLOAT_EQ(loaded_or.value().numeric(0, 0), 0.5f);
  std::remove(path.c_str());
}

// --- non-finite ingestion rejected at the parse boundary ---

TEST(CsvTest, NonFiniteNumericValuesRejected) {
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "infinity"}) {
    const std::string path = TempPath("nonfinite_entity.csv");
    {
      std::ofstream file(path);
      file << "cat_a,num_x,cat_b,num_y\n"
           << "1," << bad << ",2,0.5\n";
    }
    const auto status = ReadEntityTableCsv(MakeSchema(), path).status();
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << bad;
    EXPECT_NE(status.ToString().find("non-finite"), std::string::npos)
        << status.ToString();
    std::remove(path.c_str());
  }
}

TEST(CsvTest, NonFiniteInteractionLabelRejected) {
  const std::string path = TempPath("nonfinite_interactions.csv");
  {
    std::ofstream file(path);
    file << "user_id,item_id,label\n"
         << "1,10,nan\n";
  }
  EXPECT_EQ(ReadInteractionsCsv(path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

// Regression: strtof flags ERANGE on underflow, and the old blanket
// `errno != 0` check turned legitimate subnormal feature values into
// Corruption errors. Tiny-but-representable must load; true overflow
// must still be rejected.
TEST(CsvTest, SubnormalNumericValuesAccepted) {
  const std::string path = TempPath("subnormal_entity.csv");
  {
    std::ofstream file(path);
    file << "cat_a,num_x,cat_b,num_y\n"
         << "1,1e-42,2,-4.9e-324\n";
  }
  auto loaded_or = ReadEntityTableCsv(MakeSchema(), path);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  EXPECT_GT(loaded_or.value().numeric(0, 0), 0.0f);
  EXPECT_LT(loaded_or.value().numeric(0, 0), 1e-41f);
  // -4.9e-324 underflows float all the way to (signed) zero — a value,
  // not an error.
  EXPECT_LE(loaded_or.value().numeric(0, 1), 0.0f);
  std::remove(path.c_str());
}

TEST(CsvTest, OverflowingNumericValueRejected) {
  const std::string path = TempPath("overflow_entity.csv");
  {
    std::ofstream file(path);
    file << "cat_a,num_x,cat_b,num_y\n"
         << "1,1e999,2,0.5\n";
  }
  EXPECT_EQ(ReadEntityTableCsv(MakeSchema(), path).status().code(),
            StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(CsvTest, MisalignedInteractionsRejected) {
  EXPECT_EQ(WriteInteractionsCsv({1, 2}, {10}, {1.0f, 0.0f}, "/tmp/x.csv")
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace atnn::data
