#include "data/tmall.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace atnn::data {
namespace {

TmallConfig SmallConfig() {
  TmallConfig config;
  config.num_users = 200;
  config.num_items = 300;
  config.num_new_items = 100;
  config.num_interactions = 5000;
  config.attractiveness_sample = 64;
  config.seed = 123;
  return config;
}

class TmallDatasetTest : public testing::Test {
 protected:
  static void SetUpTestSuite() { dataset_ = new TmallDataset(GenerateTmallDataset(SmallConfig())); }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static TmallDataset* dataset_;
};

TmallDataset* TmallDatasetTest::dataset_ = nullptr;

TEST_F(TmallDatasetTest, SchemaMatchesPaperRawFeatureCounts) {
  EXPECT_EQ(dataset_->user_schema->num_features(), 19u);
  EXPECT_EQ(dataset_->item_profile_schema->num_features(), 38u);
  EXPECT_EQ(dataset_->item_stats_schema->num_features(), 46u);
  // Item statistics are purely behavioural (all numeric).
  EXPECT_EQ(dataset_->item_stats_schema->num_categorical(), 0u);
}

TEST_F(TmallDatasetTest, TableSizes) {
  EXPECT_EQ(dataset_->users.num_rows(), 200);
  EXPECT_EQ(dataset_->item_profiles.num_rows(), 400);
  EXPECT_EQ(dataset_->item_stats.num_rows(), 400);
  EXPECT_EQ(dataset_->catalog_items.size(), 300u);
  EXPECT_EQ(dataset_->new_items.size(), 100u);
}

TEST_F(TmallDatasetTest, InteractionsReferenceCatalogItemsOnly) {
  ASSERT_EQ(dataset_->interaction_user.size(), 5000u);
  for (size_t i = 0; i < dataset_->interaction_item.size(); ++i) {
    EXPECT_GE(dataset_->interaction_item[i], 0);
    EXPECT_LT(dataset_->interaction_item[i], 300);
    EXPECT_GE(dataset_->interaction_user[i], 0);
    EXPECT_LT(dataset_->interaction_user[i], 200);
  }
}

TEST_F(TmallDatasetTest, SplitIsDisjointAndComplete) {
  std::set<int64_t> train(dataset_->train_indices.begin(),
                          dataset_->train_indices.end());
  std::set<int64_t> test(dataset_->test_indices.begin(),
                         dataset_->test_indices.end());
  EXPECT_EQ(train.size() + test.size(), 5000u);
  for (int64_t idx : test) EXPECT_EQ(train.count(idx), 0u);
  EXPECT_NEAR(static_cast<double>(test.size()) / 5000.0, 0.2, 0.01);
}

TEST_F(TmallDatasetTest, LabelsAreBinaryWithPlausibleBaseRate) {
  double positives = 0.0;
  for (float label : dataset_->labels) {
    EXPECT_TRUE(label == 0.0f || label == 1.0f);
    positives += label;
  }
  const double rate = positives / static_cast<double>(dataset_->labels.size());
  EXPECT_GT(rate, 0.03);
  EXPECT_LT(rate, 0.40);
}

TEST_F(TmallDatasetTest, NewArrivalStatsRowsAreZero) {
  for (int64_t item : dataset_->new_items) {
    for (size_t f = 0; f < dataset_->item_stats_schema->num_numeric(); ++f) {
      ASSERT_EQ(dataset_->item_stats.numeric(f, item), 0.0f);
    }
  }
}

TEST_F(TmallDatasetTest, CatalogStatsRowsAreNonTrivial) {
  int nonzero_rows = 0;
  for (int64_t item : dataset_->catalog_items) {
    double sum = 0.0;
    for (size_t f = 0; f < dataset_->item_stats_schema->num_numeric(); ++f) {
      sum += std::abs(dataset_->item_stats.numeric(f, item));
    }
    if (sum > 0.0) ++nonzero_rows;
  }
  EXPECT_EQ(nonzero_rows, 300);
}

TEST_F(TmallDatasetTest, GroundTruthSizesAndRanges) {
  EXPECT_EQ(dataset_->true_attractiveness.size(), 400u);
  EXPECT_EQ(dataset_->true_quality.size(), 400u);
  EXPECT_EQ(dataset_->true_price.size(), 400u);
  for (double a : dataset_->true_attractiveness) {
    EXPECT_GT(a, 0.0);
    EXPECT_LT(a, 1.0);
  }
  for (double p : dataset_->true_price) EXPECT_GT(p, 0.0);
}

TEST_F(TmallDatasetTest, TrueClickProbabilityInUnitInterval) {
  for (int64_t u = 0; u < 20; ++u) {
    for (int64_t i = 0; i < 20; ++i) {
      const double p = dataset_->TrueClickProbability(u, i);
      EXPECT_GT(p, 0.0);
      EXPECT_LT(p, 1.0);
    }
  }
}

TEST_F(TmallDatasetTest, LabelsCorrelateWithTrueProbability) {
  // Empirical click rate among high-probability pairs should beat the rate
  // among low-probability pairs — the labels are learnable.
  double high_clicks = 0, high_n = 0, low_clicks = 0, low_n = 0;
  for (size_t n = 0; n < dataset_->labels.size(); ++n) {
    const double p = dataset_->TrueClickProbability(
        dataset_->interaction_user[n], dataset_->interaction_item[n]);
    if (p > 0.2) {
      high_clicks += dataset_->labels[n];
      high_n += 1;
    } else if (p < 0.05) {
      low_clicks += dataset_->labels[n];
      low_n += 1;
    }
  }
  ASSERT_GT(high_n, 50.0);
  ASSERT_GT(low_n, 50.0);
  EXPECT_GT(high_clicks / high_n, 3.0 * (low_clicks / low_n));
}

TEST_F(TmallDatasetTest, DeterministicAcrossRuns) {
  TmallDataset other = GenerateTmallDataset(SmallConfig());
  EXPECT_EQ(other.labels, dataset_->labels);
  EXPECT_EQ(other.interaction_item, dataset_->interaction_item);
  EXPECT_EQ(other.true_quality, dataset_->true_quality);
  for (int64_t r = 0; r < 10; ++r) {
    EXPECT_EQ(other.item_profiles.numeric(0, r),
              dataset_->item_profiles.numeric(0, r));
  }
}

TEST_F(TmallDatasetTest, DifferentSeedChangesData) {
  TmallConfig config = SmallConfig();
  config.seed = 999;
  TmallDataset other = GenerateTmallDataset(config);
  EXPECT_NE(other.labels, dataset_->labels);
}

TEST_F(TmallDatasetTest, MakeCtrBatchGathersAlignedRows) {
  const std::vector<int64_t> indices = {0, 17, 42};
  CtrBatch batch = MakeCtrBatch(*dataset_, indices);
  EXPECT_EQ(batch.labels.rows(), 3);
  EXPECT_EQ(batch.user.rows(), 3);
  EXPECT_EQ(batch.item_profile.rows(), 3);
  EXPECT_EQ(batch.item_stats.rows(), 3);
  for (size_t n = 0; n < indices.size(); ++n) {
    const auto idx = static_cast<size_t>(indices[n]);
    EXPECT_EQ(batch.labels.at(static_cast<int64_t>(n), 0),
              dataset_->labels[idx]);
    // The user_id categorical must match the interaction's user.
    EXPECT_EQ(batch.user.categorical[0][n], dataset_->interaction_user[idx]);
  }
}

TEST(TmallAttractivenessTest, QualityRaisesAttractiveness) {
  TmallDataset ds = GenerateTmallDataset(SmallConfig());
  // Split items by quality; high-quality items must be more attractive on
  // average (the quality term enters the click logit directly).
  double high_sum = 0, high_n = 0, low_sum = 0, low_n = 0;
  for (int64_t i = 0; i < ds.total_items(); ++i) {
    if (ds.true_quality[size_t(i)] > 0.5) {
      high_sum += ds.true_attractiveness[size_t(i)];
      high_n += 1;
    } else if (ds.true_quality[size_t(i)] < -0.5) {
      low_sum += ds.true_attractiveness[size_t(i)];
      low_n += 1;
    }
  }
  ASSERT_GT(high_n, 10.0);
  ASSERT_GT(low_n, 10.0);
  EXPECT_GT(high_sum / high_n, low_sum / low_n);
}

}  // namespace
}  // namespace atnn::data
