#include "data/eleme.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace atnn::data {
namespace {

ElemeConfig SmallConfig() {
  ElemeConfig config;
  config.num_restaurants = 500;
  config.num_new_restaurants = 150;
  config.num_cells = 30;
  config.seed = 321;
  return config;
}

class ElemeDatasetTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new ElemeDataset(GenerateElemeDataset(SmallConfig()));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static ElemeDataset* dataset_;
};

ElemeDataset* ElemeDatasetTest::dataset_ = nullptr;

TEST_F(ElemeDatasetTest, TableSizes) {
  EXPECT_EQ(dataset_->restaurant_profiles.num_rows(), 650);
  EXPECT_EQ(dataset_->restaurant_stats.num_rows(), 650);
  EXPECT_EQ(dataset_->user_groups.num_rows(), 30);
  EXPECT_EQ(dataset_->new_restaurants.size(), 150u);
  EXPECT_EQ(dataset_->vppv_labels.size(), 500u);
  EXPECT_EQ(dataset_->gmv_labels.size(), 500u);
}

TEST_F(ElemeDatasetTest, EveryRestaurantHasValidCell) {
  ASSERT_EQ(dataset_->restaurant_cell.size(), 650u);
  for (int64_t cell : dataset_->restaurant_cell) {
    EXPECT_GE(cell, 0);
    EXPECT_LT(cell, 30);
  }
}

TEST_F(ElemeDatasetTest, SplitIsDisjoint) {
  std::set<int64_t> train(dataset_->train_indices.begin(),
                          dataset_->train_indices.end());
  std::set<int64_t> test(dataset_->test_indices.begin(),
                         dataset_->test_indices.end());
  EXPECT_EQ(train.size() + test.size(), 500u);
  for (int64_t idx : test) {
    EXPECT_EQ(train.count(idx), 0u);
    EXPECT_LT(idx, 500);  // only trainside restaurants are labeled
  }
}

TEST_F(ElemeDatasetTest, LabelsInPlausibleRanges) {
  double vppv_sum = 0.0;
  for (float v : dataset_->vppv_labels) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 3.0f);  // sigmoid expectation times log-normal shock
    vppv_sum += v;
  }
  // Paper-scale VpPV averages around 0.27.
  EXPECT_GT(vppv_sum / 500.0, 0.08);
  EXPECT_LT(vppv_sum / 500.0, 0.8);
  for (float g : dataset_->gmv_labels) {
    EXPECT_GE(g, 0.0f);
    EXPECT_LT(g, 15.0f);  // log1p scale
  }
}

TEST_F(ElemeDatasetTest, NewRestaurantStatsAreZero) {
  for (int64_t row : dataset_->new_restaurants) {
    for (size_t f = 0; f < dataset_->restaurant_stats_schema->num_numeric();
         ++f) {
      ASSERT_EQ(dataset_->restaurant_stats.numeric(f, row), 0.0f);
    }
  }
}

TEST_F(ElemeDatasetTest, GroundTruthPositive) {
  for (int64_t r = 0; r < dataset_->total_restaurants(); ++r) {
    EXPECT_GT(dataset_->true_vppv[size_t(r)], 0.0);
    EXPECT_LT(dataset_->true_vppv[size_t(r)], 1.0);
    EXPECT_GT(dataset_->true_gmv[size_t(r)], 0.0);
  }
}

TEST_F(ElemeDatasetTest, LabelsTrackGroundTruth) {
  // Realized VpPV is a noisy version of expected VpPV: correlation must be
  // clearly positive.
  double cov = 0, var_a = 0, var_b = 0, mean_a = 0, mean_b = 0;
  const size_t n = dataset_->vppv_labels.size();
  for (size_t i = 0; i < n; ++i) {
    mean_a += dataset_->vppv_labels[i];
    mean_b += dataset_->true_vppv[i];
  }
  mean_a /= double(n);
  mean_b /= double(n);
  for (size_t i = 0; i < n; ++i) {
    const double da = dataset_->vppv_labels[i] - mean_a;
    const double db = dataset_->true_vppv[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  EXPECT_GT(cov / std::sqrt(var_a * var_b), 0.6);
}

TEST_F(ElemeDatasetTest, Deterministic) {
  ElemeDataset other = GenerateElemeDataset(SmallConfig());
  EXPECT_EQ(other.vppv_labels, dataset_->vppv_labels);
  EXPECT_EQ(other.restaurant_cell, dataset_->restaurant_cell);
}

TEST_F(ElemeDatasetTest, MakeElemeBatchAlignsCellsAndLabels) {
  const std::vector<int64_t> rows = {0, 5, 9};
  ElemeBatch batch = MakeElemeBatch(*dataset_, rows);
  EXPECT_EQ(batch.restaurant_profile.rows(), 3);
  EXPECT_EQ(batch.user_group.rows(), 3);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto row = static_cast<size_t>(rows[i]);
    EXPECT_EQ(batch.user_group.categorical[0][i],
              dataset_->restaurant_cell[row]);
    EXPECT_FLOAT_EQ(batch.vppv.at(static_cast<int64_t>(i), 0),
                    dataset_->vppv_labels[row]);
    EXPECT_FLOAT_EQ(batch.gmv.at(static_cast<int64_t>(i), 0),
                    dataset_->gmv_labels[row]);
  }
}

}  // namespace
}  // namespace atnn::data
