#include "sim/market.h"

#include <gtest/gtest.h>

namespace atnn::sim {
namespace {

MarketConfig TestConfig() {
  MarketConfig config;
  config.horizon_days = 30;
  config.daily_exposure_mean = 60.0;
  config.seed = 99;
  return config;
}

TEST(MarketSimulatorTest, OutcomesAreNonNegativeAndCumulative) {
  MarketSimulator sim(TestConfig());
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const ItemOutcome o = sim.SimulateItem(0.1, 0.0, 30.0, &rng);
    EXPECT_GE(o.ipv7, 0.0);
    EXPECT_LE(o.ipv7, o.ipv14);
    EXPECT_LE(o.ipv14, o.ipv30);
    EXPECT_LE(o.atf7, o.atf14);
    EXPECT_LE(o.atf14, o.atf30);
    EXPECT_LE(o.gmv7, o.gmv14);
    EXPECT_LE(o.gmv14, o.gmv30);
  }
}

TEST(MarketSimulatorTest, MoreAttractiveItemsGetMoreClicks) {
  MarketSimulator sim(TestConfig());
  double low_total = 0.0;
  double high_total = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    Rng low_rng(1000 + trial);
    Rng high_rng(1000 + trial);  // identical randomness, only attr differs
    low_total += sim.SimulateItem(0.02, 0.0, 30.0, &low_rng).ipv30;
    high_total += sim.SimulateItem(0.25, 0.0, 30.0, &high_rng).ipv30;
  }
  EXPECT_GT(high_total, 5.0 * low_total);
}

TEST(MarketSimulatorTest, QualityRaisesConversionAndGmv) {
  MarketSimulator sim(TestConfig());
  double low_gmv = 0.0;
  double high_gmv = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    Rng low_rng(2000 + trial);
    Rng high_rng(2000 + trial);
    low_gmv += sim.SimulateItem(0.1, -1.0, 30.0, &low_rng).gmv30;
    high_gmv += sim.SimulateItem(0.1, 1.5, 30.0, &high_rng).gmv30;
  }
  EXPECT_GT(high_gmv, 2.0 * low_gmv);
}

TEST(MarketSimulatorTest, AttractiveItemsReachFiveSalesSooner) {
  MarketSimulator sim(TestConfig());
  std::vector<ItemOutcome> hot;
  std::vector<ItemOutcome> cold;
  for (int trial = 0; trial < 60; ++trial) {
    Rng rng_a(3000 + trial);
    Rng rng_b(3000 + trial);
    hot.push_back(sim.SimulateItem(0.3, 1.0, 30.0, &rng_a));
    cold.push_back(sim.SimulateItem(0.03, -0.5, 30.0, &rng_b));
  }
  const double hot_days = MeanTimeToFiveSales(hot, 30.0);
  const double cold_days = MeanTimeToFiveSales(cold, 30.0);
  EXPECT_LT(hot_days, cold_days);
}

TEST(MarketSimulatorTest, SimulateItemsIsDeterministicAndOrderFree) {
  data::TmallConfig config;
  config.num_users = 100;
  config.num_items = 50;
  config.num_new_items = 20;
  config.num_interactions = 500;
  config.attractiveness_sample = 32;
  data::TmallDataset dataset = GenerateTmallDataset(config);

  MarketSimulator sim(TestConfig());
  const auto outcomes_a = sim.SimulateItems(dataset, {50, 51, 52});
  const auto outcomes_b = sim.SimulateItems(dataset, {52, 51, 50});
  // Item 52's realization must not depend on simulation order.
  EXPECT_EQ(outcomes_a[2].ipv30, outcomes_b[0].ipv30);
  EXPECT_EQ(outcomes_a[0].gmv30, outcomes_b[2].gmv30);
  EXPECT_EQ(outcomes_a[1].first_five_sales_day,
            outcomes_b[1].first_five_sales_day);
}

TEST(MeanOutcomesTest, AveragesSubset) {
  std::vector<ItemOutcome> outcomes(3);
  outcomes[0].ipv30 = 10;
  outcomes[1].ipv30 = 20;
  outcomes[2].ipv30 = 90;
  const OutcomeMeans means = MeanOutcomes(outcomes, {0, 1});
  EXPECT_DOUBLE_EQ(means.ipv30, 15.0);
}

TEST(MeanTimeToFiveSalesTest, CensoredItemsUseFallback) {
  std::vector<ItemOutcome> outcomes(2);
  outcomes[0].first_five_sales_day = 4;
  outcomes[1].first_five_sales_day = -1;  // never reached five sales
  EXPECT_DOUBLE_EQ(MeanTimeToFiveSales(outcomes, 30.0), 17.0);
}

TEST(MeanTimeToFiveSalesTest, RejectsUnconvertedSentinelAsCensoredValue) {
  // Passing the -1 "no fifth sale" sentinel through as censored_value
  // would make censored items pull the mean DOWN instead of up; the
  // aggregation must refuse rather than silently flatter slow items.
  std::vector<ItemOutcome> outcomes(1);
  outcomes[0].first_five_sales_day = -1;
  EXPECT_DEATH(MeanTimeToFiveSales(outcomes, -1.0),
               "censored_value must be >= 0");
}

TEST(MeanTimeToFiveSalesTest, CensoredItemsPullTheMeanUp) {
  std::vector<ItemOutcome> fast(2);
  fast[0].first_five_sales_day = 3;
  fast[1].first_five_sales_day = 5;
  std::vector<ItemOutcome> with_censored = fast;
  with_censored[1].first_five_sales_day = -1;
  EXPECT_GT(MeanTimeToFiveSales(with_censored, 30.0),
            MeanTimeToFiveSales(fast, 30.0));
}

}  // namespace
}  // namespace atnn::sim
