// The daily arrival stream feeding the streaming train-to-serve loop:
// cohort partitioning, feedback determinism, and Next()/Day() agreement.

#include "sim/arrival_stream.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/feature_adapter.h"
#include "data/tmall.h"

namespace atnn::sim {
namespace {

data::TmallDataset MakeTinyWorld() {
  data::TmallConfig config;
  config.num_users = 120;
  config.num_items = 200;
  config.num_new_items = 50;
  config.num_interactions = 4000;
  config.seed = 20240601;
  data::TmallDataset dataset = data::GenerateTmallDataset(config);
  core::NormalizeTmallInPlace(&dataset);
  return dataset;
}

TEST(ArrivalStreamTest, CohortsPartitionTheArrivals) {
  const data::TmallDataset dataset = MakeTinyWorld();
  ArrivalStreamConfig config;
  config.num_days = 4;  // 50 arrivals -> cohorts of 13, 13, 12, 12
  config.feedback_per_item = 0;
  ArrivalStream stream(&dataset, config);
  std::vector<int64_t> seen;
  size_t max_cohort = 0;
  size_t min_cohort = dataset.new_items.size();
  for (int d = 0; d < config.num_days; ++d) {
    const DayArrivals day = stream.Day(d);
    EXPECT_EQ(day.day, d);
    max_cohort = std::max(max_cohort, day.cohort_items.size());
    min_cohort = std::min(min_cohort, day.cohort_items.size());
    seen.insert(seen.end(), day.cohort_items.begin(),
                day.cohort_items.end());
  }
  // Every arrival exactly once, cohort sizes within one of each other.
  EXPECT_EQ(seen, dataset.new_items);
  EXPECT_LE(max_cohort - min_cohort, 1u);
}

TEST(ArrivalStreamTest, NextMatchesRandomAccessAndReset) {
  const data::TmallDataset dataset = MakeTinyWorld();
  ArrivalStreamConfig config;
  config.num_days = 3;
  config.feedback_per_item = 7;
  ArrivalStream stream(&dataset, config);
  std::vector<DayArrivals> sequential;
  while (!stream.Done()) sequential.push_back(stream.Next());
  ASSERT_EQ(sequential.size(), 3u);
  stream.Reset();
  EXPECT_FALSE(stream.Done());
  for (int d = 0; d < config.num_days; ++d) {
    const DayArrivals direct = stream.Day(d);
    const DayArrivals replayed = stream.Next();
    EXPECT_EQ(direct.cohort_items, sequential[d].cohort_items);
    EXPECT_EQ(direct.feedback_users, sequential[d].feedback_users);
    EXPECT_EQ(direct.feedback_items, sequential[d].feedback_items);
    EXPECT_EQ(direct.feedback_labels, sequential[d].feedback_labels);
    EXPECT_EQ(replayed.feedback_users, sequential[d].feedback_users);
    EXPECT_EQ(replayed.feedback_labels, sequential[d].feedback_labels);
  }
}

TEST(ArrivalStreamTest, TwoStreamsSameConfigAreBitwiseIdentical) {
  const data::TmallDataset dataset = MakeTinyWorld();
  ArrivalStreamConfig config;
  config.num_days = 3;
  config.feedback_per_item = 11;
  ArrivalStream a(&dataset, config);
  ArrivalStream b(&dataset, config);
  // Consume in different orders: a sequentially, b by random access in
  // reverse. Per-(day, item) RNG forks make the result order-independent.
  std::vector<DayArrivals> from_a;
  while (!a.Done()) from_a.push_back(a.Next());
  for (int d = config.num_days - 1; d >= 0; --d) {
    const DayArrivals day = b.Day(d);
    EXPECT_EQ(day.feedback_users, from_a[static_cast<size_t>(d)].feedback_users);
    EXPECT_EQ(day.feedback_items, from_a[static_cast<size_t>(d)].feedback_items);
    EXPECT_EQ(day.feedback_labels,
              from_a[static_cast<size_t>(d)].feedback_labels);
  }
}

TEST(ArrivalStreamTest, SeedChangesFeedbackButNotCohorts) {
  const data::TmallDataset dataset = MakeTinyWorld();
  ArrivalStreamConfig config;
  config.num_days = 2;
  config.feedback_per_item = 9;
  ArrivalStream a(&dataset, config);
  config.seed ^= 0xdeadbeefULL;
  ArrivalStream b(&dataset, config);
  const DayArrivals day_a = a.Day(0);
  const DayArrivals day_b = b.Day(0);
  EXPECT_EQ(day_a.cohort_items, day_b.cohort_items);  // pure partition
  EXPECT_NE(day_a.feedback_users, day_b.feedback_users);
}

TEST(ArrivalStreamTest, FeedbackIsWellFormed) {
  const data::TmallDataset dataset = MakeTinyWorld();
  ArrivalStreamConfig config;
  config.num_days = 2;
  config.feedback_per_item = 5;
  ArrivalStream stream(&dataset, config);
  for (int d = 0; d < config.num_days; ++d) {
    const DayArrivals day = stream.Day(d);
    ASSERT_EQ(day.feedback_users.size(), day.feedback_items.size());
    ASSERT_EQ(day.feedback_users.size(), day.feedback_labels.size());
    EXPECT_EQ(day.feedback_users.size(),
              day.cohort_items.size() *
                  static_cast<size_t>(config.feedback_per_item));
    const std::set<int64_t> cohort(day.cohort_items.begin(),
                                   day.cohort_items.end());
    for (size_t i = 0; i < day.feedback_users.size(); ++i) {
      EXPECT_GE(day.feedback_users[i], 0);
      EXPECT_LT(day.feedback_users[i],
                static_cast<int64_t>(dataset.user_activity.size()));
      EXPECT_TRUE(cohort.count(day.feedback_items[i]) == 1);
      EXPECT_TRUE(day.feedback_labels[i] == 0.0f ||
                  day.feedback_labels[i] == 1.0f);
    }
  }
}

}  // namespace
}  // namespace atnn::sim
