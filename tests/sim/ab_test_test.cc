#include "sim/ab_test.h"

#include <gtest/gtest.h>

#include "sim/expert.h"

namespace atnn::sim {
namespace {

data::TmallDataset MakeDataset() {
  data::TmallConfig config;
  config.num_users = 150;
  config.num_items = 100;
  config.num_new_items = 200;
  config.num_interactions = 1000;
  config.attractiveness_sample = 48;
  config.seed = 31337;
  return GenerateTmallDataset(config);
}

TEST(TopKIndicesTest, ReturnsHighestScoresDescending) {
  const auto top = TopKIndices({0.1, 0.9, 0.5, 0.7}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 3);
}

TEST(TopKIndicesTest, KLargerThanInputReturnsAll) {
  EXPECT_EQ(TopKIndices({1.0, 2.0}, 10).size(), 2u);
}

TEST(ExpertPolicyTest, ScoresTrackQualityButImperfectly) {
  const data::TmallDataset dataset = MakeDataset();
  ExpertPolicy expert;
  const auto scores = expert.ScoreItems(dataset, dataset.new_items);
  ASSERT_EQ(scores.size(), dataset.new_items.size());
  // Correlated with quality...
  double cov = 0, va = 0, vb = 0, ma = 0, mb = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    ma += scores[i];
    mb += dataset.true_quality[size_t(dataset.new_items[i])];
  }
  ma /= double(scores.size());
  mb /= double(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    const double da = scores[i] - ma;
    const double db =
        dataset.true_quality[size_t(dataset.new_items[i])] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  const double corr = cov / std::sqrt(va * vb);
  EXPECT_GT(corr, 0.25);
  EXPECT_LT(corr, 0.9);  // ...but noisy: experts are not oracles
}

TEST(ExpertPolicyTest, DeterministicPerSeedAndOrderFree) {
  const data::TmallDataset dataset = MakeDataset();
  ExpertPolicy expert;
  const auto a = expert.ScoreItems(dataset, {100, 101, 102});
  const auto b = expert.ScoreItems(dataset, {102, 101, 100});
  EXPECT_EQ(a[0], b[2]);
  EXPECT_EQ(a[2], b[0]);
}

TEST(NewArrivalsAbTest, OracleSelectionBeatsAntiOracle) {
  const data::TmallDataset dataset = MakeDataset();
  MarketConfig market_config;
  market_config.seed = 7;
  const MarketSimulator market(market_config);

  // "Expert" = anti-oracle (inverted attractiveness), "model" = oracle.
  std::vector<double> oracle;
  std::vector<double> anti_oracle;
  for (int64_t item : dataset.new_items) {
    oracle.push_back(dataset.true_attractiveness[size_t(item)]);
    anti_oracle.push_back(-dataset.true_attractiveness[size_t(item)]);
  }
  const auto result = RunNewArrivalsAbTest(dataset, market,
                                           dataset.new_items, anti_oracle,
                                           oracle, 40);
  EXPECT_LT(result.model_mean_days, result.expert_mean_days);
  EXPECT_GT(result.improvement_pct, 0.0);
  EXPECT_EQ(result.selected_count, 40);
}

TEST(NewArrivalsAbTest, IdenticalScoresTie) {
  const data::TmallDataset dataset = MakeDataset();
  const MarketSimulator market(MarketConfig{});
  std::vector<double> same(dataset.new_items.size());
  for (size_t i = 0; i < same.size(); ++i) same[i] = double(i);
  const auto result = RunNewArrivalsAbTest(dataset, market,
                                           dataset.new_items, same, same, 30);
  EXPECT_DOUBLE_EQ(result.expert_mean_days, result.model_mean_days);
  EXPECT_DOUBLE_EQ(result.improvement_pct, 0.0);
}

TEST(RecruitAbTest, OracleRecruitingWinsOnBothMetrics) {
  data::ElemeConfig config;
  config.num_restaurants = 300;
  config.num_new_restaurants = 400;
  config.num_cells = 20;
  config.seed = 9;
  const data::ElemeDataset dataset = GenerateElemeDataset(config);

  std::vector<double> oracle_vppv;
  std::vector<double> noise_scores;
  Rng rng(55);
  for (int64_t row : dataset.new_restaurants) {
    oracle_vppv.push_back(dataset.true_vppv[size_t(row)]);
    noise_scores.push_back(rng.Normal());
  }
  const auto result = RunRecruitAbTest(dataset, dataset.new_restaurants,
                                       noise_scores, oracle_vppv, 80);
  EXPECT_GT(result.model_vppv, result.expert_vppv);
  EXPECT_GT(result.vppv_improvement_pct, 0.0);
  EXPECT_EQ(result.selected_count, 80);
}

TEST(RecruitAbTest, RealizationIsPairedAcrossArms) {
  // If both arms pick the same restaurants, metrics must be identical.
  data::ElemeConfig config;
  config.num_restaurants = 100;
  config.num_new_restaurants = 50;
  config.num_cells = 10;
  const data::ElemeDataset dataset = GenerateElemeDataset(config);
  std::vector<double> scores(dataset.new_restaurants.size());
  for (size_t i = 0; i < scores.size(); ++i) scores[i] = double(i % 7);
  const auto result = RunRecruitAbTest(dataset, dataset.new_restaurants,
                                       scores, scores, 20);
  EXPECT_DOUBLE_EQ(result.expert_vppv, result.model_vppv);
  EXPECT_DOUBLE_EQ(result.expert_gmv, result.model_gmv);
}

}  // namespace
}  // namespace atnn::sim
