#include "obs/histogram.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace atnn::obs {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LogHistogramTest, RecordsBasicValues) {
  LogHistogram hist;
  hist.Record(1.0);
  hist.Record(2.0);
  hist.Record(3.0);
  EXPECT_EQ(hist.count(), 3);
  EXPECT_DOUBLE_EQ(hist.sum(), 6.0);
  EXPECT_DOUBLE_EQ(hist.max(), 3.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), 2.0);
  EXPECT_EQ(hist.invalid(), 0);
}

// Regression: the original BucketFor computed
// static_cast<size_t>(std::log2(value)) with no NaN guard — NaN compares
// false against the `< 1.0` cutoff, log2(NaN) is NaN, and casting NaN to
// size_t is undefined behaviour that indexed the bucket array with
// garbage.
TEST(LogHistogramTest, NanIsDroppedAndCountedInvalid) {
  LogHistogram hist;
  hist.Record(kNaN);
  hist.Record(-kNaN);
  EXPECT_EQ(hist.count(), 0);
  EXPECT_EQ(hist.invalid(), 2);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
  EXPECT_DOUBLE_EQ(hist.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.99), 0.0);
}

TEST(LogHistogramTest, NanBucketForIsZeroNotGarbage) {
  EXPECT_EQ(LogHistogram::BucketFor(kNaN), 0u);
}

// Regression: log2(+Inf) is +Inf, and size_t(+Inf) is UB. +Inf must land
// in the top bucket with the recorded magnitude clamped so one sentinel
// sample cannot make Mean() infinite forever.
TEST(LogHistogramTest, InfinityGoesToTopBucketWithFiniteAggregates) {
  LogHistogram hist;
  hist.Record(kInf);
  hist.Record(10.0);
  EXPECT_EQ(hist.count(), 2);
  EXPECT_EQ(hist.invalid(), 0);
  EXPECT_TRUE(std::isfinite(hist.sum()));
  EXPECT_TRUE(std::isfinite(hist.Mean()));
  EXPECT_DOUBLE_EQ(hist.max(), LogHistogram::ValueClamp());
  EXPECT_EQ(LogHistogram::BucketFor(kInf), LogHistogram::kNumBuckets - 1);
}

TEST(LogHistogramTest, NegativeClampsToZeroBucket) {
  LogHistogram hist;
  hist.Record(-123.0);
  EXPECT_EQ(hist.count(), 1);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
  EXPECT_EQ(LogHistogram::BucketFor(-123.0), 0u);
  EXPECT_EQ(LogHistogram::BucketFor(-kInf), 0u);
}

TEST(LogHistogramTest, ZeroAndSubOneLandInBucketZero) {
  EXPECT_EQ(LogHistogram::BucketFor(0.0), 0u);
  EXPECT_EQ(LogHistogram::BucketFor(0.5), 0u);
  EXPECT_EQ(LogHistogram::BucketFor(0.999), 0u);
}

TEST(LogHistogramTest, HugeFiniteValueClampsToTopBucket) {
  const double huge = std::numeric_limits<double>::max();
  EXPECT_EQ(LogHistogram::BucketFor(huge), LogHistogram::kNumBuckets - 1);
  LogHistogram hist;
  hist.Record(huge);
  EXPECT_DOUBLE_EQ(hist.max(), LogHistogram::ValueClamp());
}

TEST(LogHistogramTest, PercentileEdgeCases) {
  LogHistogram empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(1.0), 0.0);

  LogHistogram single;
  single.Record(100.0);
  // One sample: every quantile is inside its bucket, p100 hits the max.
  EXPECT_GT(single.Percentile(0.0), 0.0);
  EXPECT_LE(single.Percentile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(single.Percentile(1.0), 100.0);

  LogHistogram one_bucket;
  for (int i = 0; i < 100; ++i) one_bucket.Record(5.0);  // all in [4, 8)
  EXPECT_GE(one_bucket.Percentile(0.5), 4.0);
  EXPECT_LE(one_bucket.Percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(one_bucket.Percentile(1.0), 5.0);

  // Out-of-range q clamps instead of reading past the rank range.
  EXPECT_DOUBLE_EQ(one_bucket.Percentile(-1.0), one_bucket.Percentile(0.0));
  EXPECT_DOUBLE_EQ(one_bucket.Percentile(2.0), one_bucket.Percentile(1.0));
}

TEST(LogHistogramTest, PercentileOrderingAcrossBuckets) {
  LogHistogram hist;
  for (int i = 0; i < 90; ++i) hist.Record(10.0);
  for (int i = 0; i < 10; ++i) hist.Record(1000.0);
  const double p50 = hist.Percentile(0.50);
  const double p95 = hist.Percentile(0.95);
  const double p99 = hist.Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LT(p50, 16.0);   // in 10's bucket [8, 16)
  EXPECT_GE(p95, 512.0);  // in 1000's bucket [512, 1024)
}

TEST(LogHistogramTest, MergeFromCombinesEverythingIncludingInvalid) {
  LogHistogram a;
  a.Record(10.0);
  a.Record(kNaN);
  LogHistogram b;
  b.Record(1000.0);
  b.Record(kNaN);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.invalid(), 2);
  EXPECT_DOUBLE_EQ(a.sum(), 1010.0);
  EXPECT_DOUBLE_EQ(a.max(), 1000.0);
}

TEST(LogHistogramTest, AccumulateRawCellsMatchesRecord) {
  LogHistogram recorded;
  recorded.Record(10.0);
  recorded.Record(1000.0);

  LogHistogram folded;
  folded.AccumulateBucket(LogHistogram::BucketFor(10.0), 1);
  folded.AccumulateBucket(LogHistogram::BucketFor(1000.0), 1);
  folded.AccumulateMeta(2, 1010.0, 1000.0, 0);
  EXPECT_EQ(folded.count(), recorded.count());
  EXPECT_DOUBLE_EQ(folded.sum(), recorded.sum());
  EXPECT_DOUBLE_EQ(folded.Percentile(0.5), recorded.Percentile(0.5));
}

}  // namespace
}  // namespace atnn::obs
