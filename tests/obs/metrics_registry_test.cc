#include "obs/metrics_registry.h"

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace atnn::obs {
namespace {

TEST(CounterTest, SumsAcrossThreads) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("events");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, IncrementWithDelta) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("batch");
  counter.Increment(64);
  counter.Increment(36);
  EXPECT_EQ(counter.Value(), 100);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("depth");
  gauge.Set(5.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 5.0);
  gauge.Add(2.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 7.5);
  gauge.Set(1.0);  // last writer wins
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.0);
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("latency_us");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(static_cast<double>(10 * (t + 1)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const LogHistogram snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count(), kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(snapshot.max(), 80.0);
  EXPECT_EQ(snapshot.invalid(), 0);
}

TEST(HistogramTest, ShardedNanAndInfHandlingMatchesView) {
  MetricsRegistry registry;
  Histogram& hist = registry.GetHistogram("h");
  hist.Record(std::numeric_limits<double>::quiet_NaN());
  hist.Record(std::numeric_limits<double>::infinity());
  hist.Record(50.0);
  const LogHistogram snapshot = hist.Snapshot();
  EXPECT_EQ(snapshot.count(), 2);  // NaN dropped
  EXPECT_EQ(snapshot.invalid(), 1);
  EXPECT_TRUE(std::isfinite(snapshot.sum()));
  EXPECT_DOUBLE_EQ(snapshot.max(), LogHistogram::ValueClamp());
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  Histogram& h1 = registry.GetHistogram("x");  // separate namespace per kind
  Histogram& h2 = registry.GetHistogram("x");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, RecordingNeverTakesTheRegistryMutex) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("c");
  Gauge& gauge = registry.GetGauge("g");
  Histogram& hist = registry.GetHistogram("h");
  const int64_t locks_after_registration = registry.mutex_acquisitions();
  for (int i = 0; i < 1000; ++i) {
    counter.Increment();
    gauge.Set(static_cast<double>(i));
    hist.Record(static_cast<double>(i));
  }
  // Reading through handles is also lock-free.
  (void)counter.Value();
  (void)gauge.Value();
  (void)hist.Snapshot();
  EXPECT_EQ(registry.mutex_acquisitions(), locks_after_registration);
  // Collect() is the mutexed read; it must show up in the count.
  (void)registry.Collect();
  EXPECT_GT(registry.mutex_acquisitions(), locks_after_registration);
}

TEST(MetricsRegistryTest, CollectReturnsSortedCompleteSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("z_counter").Increment(3);
  registry.GetCounter("a_counter").Increment(1);
  registry.GetGauge("gauge").Set(2.5);
  registry.GetHistogram("hist").Record(42.0);

  const MetricsSnapshot snapshot = registry.Collect();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a_counter");
  EXPECT_EQ(snapshot.counters[0].second, 1);
  EXPECT_EQ(snapshot.counters[1].first, "z_counter");
  EXPECT_EQ(snapshot.counters[1].second, 3);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges[0].second, 2.5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].second.count(), 1);
}

TEST(MetricsRegistryTest, HandlesStayValidWhileRegistryGrows) {
  MetricsRegistry registry;
  Counter& first = registry.GetCounter("first");
  first.Increment();
  // Registering many more metrics must not move `first` (node-based map +
  // unique_ptr pinning).
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("filler_" + std::to_string(i)).Increment();
  }
  first.Increment();
  EXPECT_EQ(first.Value(), 2);
  EXPECT_EQ(registry.GetCounter("first").Value(), 2);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread registers a mix of shared and private names while
      // hammering them — exercises find-or-emplace under contention.
      Counter& shared = registry.GetCounter("shared");
      Counter& mine = registry.GetCounter("private_" + std::to_string(t));
      for (int i = 0; i < 2000; ++i) {
        shared.Increment();
        mine.Increment();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared").Value(), kThreads * 2000);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetCounter("private_" + std::to_string(t)).Value(),
              2000);
  }
}

TEST(MetricsRegistryTest, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace atnn::obs
