#include "obs/trace_span.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/metrics_registry.h"

namespace atnn::obs {
namespace {

TEST(ScopedTimerTest, RecordsElapsedIntoSink) {
  MetricsRegistry registry;
  Histogram& sink = registry.GetHistogram("op_us");
  {
    ScopedTimer timer(&sink);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const LogHistogram snapshot = sink.Snapshot();
  ASSERT_EQ(snapshot.count(), 1);
  EXPECT_GE(snapshot.max(), 2000.0);  // slept >= 2ms = 2000us
}

TEST(ScopedTimerTest, CancelSuppressesRecording) {
  MetricsRegistry registry;
  Histogram& sink = registry.GetHistogram("op_us");
  {
    ScopedTimer timer(&sink);
    timer.Cancel();
  }
  EXPECT_EQ(sink.Snapshot().count(), 0);
}

TEST(ScopedTimerTest, NullSinkIsANoOp) {
  ScopedTimer timer(nullptr);  // must not crash at destruction
  EXPECT_GE(timer.ElapsedUs(), 0.0);
}

TEST(TraceSpanTest, FeedsNamedHistogram) {
  MetricsRegistry registry;
  {
    TraceSpan span(&registry, "load_snapshot");
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const LogHistogram snapshot =
      registry.GetHistogram("span.load_snapshot_us").Snapshot();
  ASSERT_EQ(snapshot.count(), 1);
  EXPECT_GE(snapshot.max(), 1000.0);
}

TEST(ThreadPoolMetricsTest, ObservesQueueAndTaskLatency) {
  MetricsRegistry registry;
  ThreadPoolMetrics metrics(&registry, "pool");
  ThreadPool pool(2);
  pool.SetObserver(&metrics);
  constexpr int kTasks = 50;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    });
  }
  pool.Wait();
  pool.SetObserver(nullptr);

  EXPECT_EQ(registry.GetCounter("pool.tasks").Value(), kTasks);
  const LogHistogram task_us =
      registry.GetHistogram("pool.task_us").Snapshot();
  EXPECT_EQ(task_us.count(), kTasks);
  EXPECT_GE(task_us.max(), 100.0);
  // Queue-depth gauge ends at 0: the pool drained.
  EXPECT_DOUBLE_EQ(registry.GetGauge("pool.queue_depth").Value(), 0.0);
}

TEST(ThreadPoolMetricsTest, ObserverCanBeDetached) {
  MetricsRegistry registry;
  ThreadPoolMetrics metrics(&registry, "pool");
  ThreadPool pool(1);
  pool.SetObserver(&metrics);
  pool.Submit([] {});
  pool.Wait();
  pool.SetObserver(nullptr);
  const int64_t observed = registry.GetCounter("pool.tasks").Value();
  pool.Submit([] {});
  pool.Wait();
  EXPECT_EQ(registry.GetCounter("pool.tasks").Value(), observed);
}

}  // namespace
}  // namespace atnn::obs
