#include "obs/exporter.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"

namespace atnn::obs {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream file(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) lines.push_back(line);
  return lines;
}

/// Minimal structural validation: braces/brackets balance outside strings,
/// and the line parses as one object. Enough to catch escaping bugs
/// without a JSON dependency.
bool LooksLikeBalancedJsonObject(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip escaped char
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

MetricsRegistry& PopulatedRegistry(MetricsRegistry& registry) {
  registry.GetCounter("requests").Increment(42);
  registry.GetGauge("queue_depth").Set(3.5);
  Histogram& hist = registry.GetHistogram("latency_us");
  hist.Record(100.0);
  hist.Record(200.0);
  return registry;
}

TEST(ToJsonLineTest, EmitsOneValidObjectWithAllSections) {
  MetricsRegistry registry;
  const std::string line = ToJsonLine(PopulatedRegistry(registry).Collect());
  EXPECT_TRUE(LooksLikeBalancedJsonObject(line)) << line;
  EXPECT_NE(line.find("\"ts_ms\":"), std::string::npos);
  EXPECT_NE(line.find("\"counters\":{\"requests\":42}"), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"queue_depth\":3.5"), std::string::npos) << line;
  EXPECT_NE(line.find("\"latency_us\":{\"count\":2"), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"invalid\":0"), std::string::npos) << line;
  EXPECT_EQ(line.find('\n'), std::string::npos) << "must be a single line";
}

TEST(ToJsonLineTest, NonFiniteGaugeSerializesAsNull) {
  MetricsRegistry registry;
  registry.GetGauge("bad").Set(std::numeric_limits<double>::infinity());
  const std::string line = ToJsonLine(registry.Collect());
  EXPECT_NE(line.find("\"bad\":null"), std::string::npos) << line;
  EXPECT_TRUE(LooksLikeBalancedJsonObject(line)) << line;
}

TEST(ToJsonLineTest, MetricNamesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("weird\"name\\here").Increment();
  const std::string line = ToJsonLine(registry.Collect());
  EXPECT_TRUE(LooksLikeBalancedJsonObject(line)) << line;
  EXPECT_NE(line.find("weird\\\"name\\\\here"), std::string::npos) << line;
}

TEST(ToTableTest, RendersHistogramsCountersGauges) {
  MetricsRegistry registry;
  const std::string table =
      ToTable(PopulatedRegistry(registry).Collect(), "test metrics");
  EXPECT_NE(table.find("test metrics"), std::string::npos);
  EXPECT_NE(table.find("latency_us"), std::string::npos);
  EXPECT_NE(table.find("requests"), std::string::npos);
  EXPECT_NE(table.find("queue_depth"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);
  EXPECT_NE(table.find("invalid"), std::string::npos);
}

TEST(AppendJsonLineTest, AppendsOneLinePerCall) {
  MetricsRegistry registry;
  PopulatedRegistry(registry);
  const std::string path = TempPath("append_metrics.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(AppendJsonLine(registry.Collect(), path).ok());
  ASSERT_TRUE(AppendJsonLine(registry.Collect(), path).ok());
  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_TRUE(LooksLikeBalancedJsonObject(line)) << line;
  }
}

TEST(AppendJsonLineTest, UnwritablePathReturnsIoError) {
  MetricsRegistry registry;
  const Status status =
      AppendJsonLine(registry.Collect(), "/nonexistent_dir_xyz/m.jsonl");
  EXPECT_FALSE(status.ok());
}

TEST(PeriodicJsonExporterTest, FlushesPeriodicallyAndOnStop) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("ticks");
  const std::string path = TempPath("periodic_metrics.jsonl");
  std::remove(path.c_str());
  {
    PeriodicJsonExporter exporter(&registry, path, /*interval_ms=*/20);
    for (int i = 0; i < 5; ++i) {
      counter.Increment();
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
    exporter.Stop();
    EXPECT_TRUE(exporter.status().ok());
    EXPECT_GE(exporter.flushes(), 2);  // >= one periodic + the final flush
  }
  const auto lines = ReadLines(path);
  ASSERT_GE(lines.size(), 2u);
  for (const auto& line : lines) {
    EXPECT_TRUE(LooksLikeBalancedJsonObject(line)) << line;
  }
  // The final (Stop-time) line carries the end state.
  EXPECT_NE(lines.back().find("\"ticks\":5"), std::string::npos)
      << lines.back();
}

TEST(PeriodicJsonExporterTest, StopIsIdempotentAndDestructorSafe) {
  MetricsRegistry registry;
  const std::string path = TempPath("idempotent_metrics.jsonl");
  std::remove(path.c_str());
  PeriodicJsonExporter exporter(&registry, path, /*interval_ms=*/1000);
  exporter.Stop();
  const int64_t flushes = exporter.flushes();
  exporter.Stop();  // second Stop must not double-flush or deadlock
  EXPECT_EQ(exporter.flushes(), flushes);
}

TEST(PeriodicJsonExporterTest, WriteFailureIsStickyNotFatal) {
  MetricsRegistry registry;
  PeriodicJsonExporter exporter(&registry, "/nonexistent_dir_xyz/m.jsonl",
                                /*interval_ms=*/5);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  exporter.Stop();
  EXPECT_FALSE(exporter.status().ok());
  EXPECT_EQ(exporter.flushes(), 0);
}

}  // namespace
}  // namespace atnn::obs
