#include "nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace atnn::nn {
namespace {

/// Minimizes mean((x - target)^2) and returns the final x values.
template <typename Opt, typename... Args>
Tensor MinimizeQuadratic(int steps, Args&&... args) {
  Parameter x("x", Tensor(1, 2, {5.0f, -3.0f}));
  const Tensor target(1, 2, {1.0f, 2.0f});
  Opt optimizer({&x}, std::forward<Args>(args)...);
  for (int i = 0; i < steps; ++i) {
    optimizer.ZeroGrad();
    Var loss = MseLoss(x.var(), target);
    Backward(loss);
    optimizer.Step();
  }
  return x.value();
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = MinimizeQuadratic<Sgd>(200, 0.1f, 0.0f);
  EXPECT_NEAR(x.at(0, 0), 1.0f, 1e-3f);
  EXPECT_NEAR(x.at(0, 1), 2.0f, 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Tensor plain = MinimizeQuadratic<Sgd>(30, 0.05f, 0.0f);
  Tensor momentum = MinimizeQuadratic<Sgd>(30, 0.05f, 0.9f);
  const double err_plain = std::abs(plain.at(0, 0) - 1.0f);
  const double err_momentum = std::abs(momentum.at(0, 0) - 1.0f);
  EXPECT_LT(err_momentum, err_plain);
}

TEST(AdagradTest, ConvergesOnQuadratic) {
  Tensor x = MinimizeQuadratic<Adagrad>(800, 0.5f);
  EXPECT_NEAR(x.at(0, 0), 1.0f, 5e-2f);
  EXPECT_NEAR(x.at(0, 1), 2.0f, 5e-2f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = MinimizeQuadratic<Adam>(500, 0.05f);
  EXPECT_NEAR(x.at(0, 0), 1.0f, 1e-2f);
  EXPECT_NEAR(x.at(0, 1), 2.0f, 1e-2f);
}

TEST(AdamTest, StepCountAdvances) {
  Parameter x("x", Tensor::Scalar(1.0f));
  Adam adam({&x}, 0.01f);
  EXPECT_EQ(adam.step_count(), 0);
  adam.ZeroGrad();
  Var loss = Square(x.var());
  Backward(loss);
  adam.Step();
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(AdamTest, DecoupledWeightDecayShrinksPreStepParameter) {
  // One step from theta0 with a constant gradient g has a closed form:
  //   m = (1-b1) g,  v = (1-b2) g^2,
  //   alpha = lr * sqrt(1 - b2^t) / (1 - b1^t)   with t = 1,
  //   theta1 = theta0 - lr*wd*theta0 - alpha * m / (sqrt(v) + eps).
  // Applying the decay to the post-step value instead (the old bug) yields
  //   (theta0 - step) * (1 - lr*wd), which at lr=wd=0.5 is off by
  //   lr*wd*step = 0.125 — far outside the tolerance below.
  const float theta0 = 2.0f;
  const float lr = 0.5f, wd = 0.5f;
  const float b1 = 0.9f, b2 = 0.999f, eps = 1e-8f;
  Parameter x("x", Tensor::Scalar(theta0));
  Adam adam({&x}, lr, b1, b2, eps, wd);
  adam.ZeroGrad();
  Var loss = ReduceSum(Scale(x.var(), 3.0f));  // gradient = 3 everywhere
  Backward(loss);
  adam.Step();

  const float g = 3.0f;
  const float m = (1.0f - b1) * g;
  const float v = (1.0f - b2) * g * g;
  const float alpha = lr * std::sqrt(1.0f - b2) / (1.0f - b1);
  const float expected =
      theta0 - lr * wd * theta0 - alpha * m / (std::sqrt(v) + eps);
  EXPECT_NEAR(x.value().scalar(), expected, 1e-5f);
}

TEST(AdamTest, WeightDecayDoesNotCompoundOnTheFreshStep) {
  // Same setup, compared against a wd=0 twin: the gap between the two
  // runs after one step must be exactly the decay of theta0 — any
  // dependence of the gap on the Adam step itself means the decay
  // compounded on the fresh update.
  auto one_step = [](float wd) {
    Parameter x("x", Tensor::Scalar(2.0f));
    Adam adam({&x}, 0.5f, 0.9f, 0.999f, 1e-8f, wd);
    adam.ZeroGrad();
    Var loss = ReduceSum(Scale(x.var(), 3.0f));
    Backward(loss);
    adam.Step();
    return x.value().scalar();
  };
  const float gap = one_step(0.0f) - one_step(0.5f);
  EXPECT_NEAR(gap, 0.5f * 0.5f * 2.0f, 1e-5f);
}

TEST(OptimizerTest, ClipGradNormScalesDownLargeGradients) {
  Parameter x("x", Tensor(1, 2, {0.0f, 0.0f}));
  Sgd sgd({&x}, 1.0f);
  sgd.ZeroGrad();
  // Loss = sum(30 * x) -> gradient (30, 30), norm ~42.4.
  Var loss = ReduceSum(Scale(x.var(), 30.0f));
  Backward(loss);
  const double pre_norm = sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(pre_norm, 30.0 * std::sqrt(2.0), 1e-3);
  const double post_norm_sq = x.grad().SquaredNorm();
  EXPECT_NEAR(std::sqrt(post_norm_sq), 1.0, 1e-4);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallGradientsAlone) {
  Parameter x("x", Tensor(1, 2, {0.0f, 0.0f}));
  Sgd sgd({&x}, 1.0f);
  sgd.ZeroGrad();
  Var loss = ReduceSum(Scale(x.var(), 0.1f));
  Backward(loss);
  sgd.ClipGradNorm(10.0);
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 0.1f);
}

TEST(OptimizerTest, ClipGradNormHandlesSparseRowsWithDuplicates) {
  Parameter table("emb", Tensor::Ones(8, 2));
  Sgd sgd({&table}, 1.0f);
  sgd.ZeroGrad();
  // Row 6 is looked up twice, so its gradient accumulates to (6, 6) while
  // touched_rows records it twice; the norm must count the row once.
  std::vector<int64_t> ids = {1, 6, 6};
  Var loss = ReduceSum(Scale(EmbeddingLookup(table.var(), ids), 3.0f));
  Backward(loss);
  ASSERT_TRUE(table.node()->IsSparseGrad());
  // Rows: 1 -> (3,3), 6 -> (6,6). Norm = sqrt(2*9 + 2*36) = sqrt(90).
  const double pre_norm = sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(pre_norm, std::sqrt(90.0), 1e-4);
  double post_sq = 0.0;
  for (int64_t row : {int64_t{1}, int64_t{6}}) {
    for (int64_t c = 0; c < 2; ++c) {
      const double v = table.grad().at(row, c);
      post_sq += v * v;
    }
  }
  EXPECT_NEAR(std::sqrt(post_sq), 1.0, 1e-4);
  // Untouched rows stay exactly zero (clipping must not densify them).
  EXPECT_FLOAT_EQ(table.grad().at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(table.grad().at(7, 1), 0.0f);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallSparseGradientsAlone) {
  Parameter table("emb", Tensor::Ones(8, 2));
  Sgd sgd({&table}, 1.0f);
  sgd.ZeroGrad();
  std::vector<int64_t> ids = {4};
  Var loss = ReduceSum(Scale(EmbeddingLookup(table.var(), ids), 0.1f));
  Backward(loss);
  const double pre_norm = sgd.ClipGradNorm(10.0);
  EXPECT_NEAR(pre_norm, 0.1 * std::sqrt(2.0), 1e-6);
  EXPECT_FLOAT_EQ(table.grad().at(4, 0), 0.1f);
}

TEST(OptimizerTest, SparseUpdateTouchesOnlyLookedUpRows) {
  Parameter table("emb", Tensor::Ones(8, 2));
  Adam adam({&table}, 0.1f);
  adam.ZeroGrad();
  std::vector<int64_t> ids = {3, 5};
  Var loss = ReduceSum(EmbeddingLookup(table.var(), ids));
  Backward(loss);
  ASSERT_TRUE(table.node()->IsSparseGrad());
  adam.Step();
  // Rows 3 and 5 moved, every other row untouched.
  for (int64_t r = 0; r < 8; ++r) {
    if (r == 3 || r == 5) {
      EXPECT_NE(table.value().at(r, 0), 1.0f);
    } else {
      EXPECT_FLOAT_EQ(table.value().at(r, 0), 1.0f);
    }
  }
}

TEST(OptimizerTest, SparseAndDenseConvergeToSameResultOnFullTouch) {
  // When every row is touched, the lazy path must match a dense update.
  auto run = [](bool as_sparse) {
    Parameter table("emb", Tensor::Ones(4, 2));
    Adagrad opt({&table}, 0.1f);
    for (int step = 0; step < 5; ++step) {
      opt.ZeroGrad();
      Var out = as_sparse
                    ? EmbeddingLookup(table.var(),
                                      std::vector<int64_t>{0, 1, 2, 3})
                    : table.var();
      Var loss = ReduceMean(Square(out));
      Backward(loss);
      opt.Step();
    }
    return table.value();
  };
  Tensor sparse_result = run(true);
  Tensor dense_result = run(false);
  for (int64_t i = 0; i < sparse_result.numel(); ++i) {
    EXPECT_NEAR(sparse_result.data()[i], dense_result.data()[i], 1e-6f);
  }
}

TEST(OptimizerTest, ZeroGradClearsSparseRows) {
  Parameter table("emb", Tensor::Ones(8, 2));
  Sgd sgd({&table}, 0.1f);
  std::vector<int64_t> ids = {2};
  Var loss = ReduceSum(EmbeddingLookup(table.var(), ids));
  Backward(loss);
  EXPECT_NE(table.grad().at(2, 0), 0.0f);
  sgd.ZeroGrad();
  EXPECT_FLOAT_EQ(table.grad().at(2, 0), 0.0f);
  EXPECT_TRUE(table.node()->touched_rows.empty());
}

}  // namespace
}  // namespace atnn::nn
