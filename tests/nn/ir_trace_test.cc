#include "nn/ir/trace.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "core/atnn.h"
#include "data/schema.h"
#include "data/tmall.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace atnn::nn::ir {
namespace {

Tensor Ramp(int64_t rows, int64_t cols, float base) {
  Tensor t(rows, cols);
  for (int64_t i = 0; i < t.numel(); ++i) {
    t.data()[i] = base + 0.125f * static_cast<float>(i);
  }
  return t;
}

TEST(IrTraceTest, CapturesRawOpChainAsGoldenText) {
  auto graph = TraceGraph(2, [] {
    const Var a = Constant(Ramp(2, 3, 0.0f));
    const Var w = Constant(Ramp(3, 4, 1.0f));
    const Var b = Constant(Ramp(1, 4, -1.0f));
    return Relu(AddBias(MatMul(a, w), b));
  });
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  // Leaves register lazily in first-use order, compute ops as they fire.
  EXPECT_EQ(graph->ToText(),
            "graph: nodes=6 fields=0 dense_cols=-1\n"
            "%0 = const \"const\" : [2x3]\n"
            "%1 = const \"const\" : [3x4]\n"
            "%2 = matmul(%0, %1) : [2x4]\n"
            "%3 = const \"const\" : [1x4]\n"
            "%4 = add_bias(%2, %3) : [2x4]\n"
            "%5 = relu(%4) : [2x4]\n"
            "output %5\n");
}

TEST(IrTraceTest, TracesTheGeneratorTowerForward) {
  const data::TmallDataset dataset =
      core::testing_helpers::MakeNormalizedTinyDataset();
  core::AtnnConfig config;
  config.tower =
      core::testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
  config.seed = 11;
  const core::AtnnModel model(*dataset.user_schema,
                              *dataset.item_profile_schema,
                              *dataset.item_stats_schema, config);

  constexpr int64_t kProbeBatch = 3;
  const data::BlockBatch probe =
      data::GatherBlock(dataset.item_profiles, {0, 0, 0});
  auto graph = TraceGraph(kProbeBatch, [&] {
    return model.GeneratorItemVector(probe);
  });
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  // Every categorical field of the item schema feeds one lookup; the dense
  // block is captured as the batch-varying input, not baked probe values.
  const auto num_categorical = static_cast<int32_t>(
      dataset.item_profile_schema->num_categorical());
  EXPECT_EQ(graph->num_fields(), num_categorical);
  EXPECT_EQ(graph->dense_cols(),
            static_cast<int64_t>(dataset.item_profile_schema->num_numeric()));
  int lookups = 0;
  int dense_inputs = 0;
  for (int32_t id = 0; id < graph->size(); ++id) {
    if (graph->node(id).kind == OpKind::kEmbedLookup) ++lookups;
    if (graph->node(id).kind == OpKind::kDenseInput) ++dense_inputs;
  }
  EXPECT_EQ(lookups, num_categorical);
  EXPECT_EQ(dense_inputs, 1);

  // The output is the batch of generated item vectors.
  const NodeDef& out = graph->node(graph->output());
  EXPECT_TRUE(out.batch_rows);
  EXPECT_EQ(out.cols, model.vector_dim());
  EXPECT_TRUE(graph->Validate().ok());
}

TEST(IrTraceTest, UntraceableOpFailsWithoutSideEffects) {
  const auto graph = TraceGraph(2, [] {
    // ReduceMean has no trace hook; consuming its value must fail the
    // trace with a diagnostic naming the op.
    return Relu(ReduceMean(Constant(Ramp(2, 3, 0.0f))));
  });
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(graph.status().ToString().find("untraceable"),
            std::string::npos)
      << graph.status().ToString();
  // The failure path re-arms cleanly: tracing is off and a fresh trace on
  // the same thread succeeds.
  EXPECT_FALSE(TracingActive());
  const auto retry =
      TraceGraph(2, [] { return Relu(Constant(Ramp(2, 3, 0.0f))); });
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(IrTraceTest, BareEmbeddingLookupOutsideBagFails) {
  const auto graph = TraceGraph(2, [] {
    const Var table = Constant(Ramp(8, 4, 0.0f));
    const std::vector<int64_t> ids = {1, 5};
    // Without EmbeddingBag::Forward there is no field binding for the ids,
    // so a compiled plan could never re-gather them at execute time.
    return EmbeddingLookup(table, ids);
  });
  EXPECT_EQ(graph.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(graph.status().ToString().find("EmbeddingBag"),
            std::string::npos)
      << graph.status().ToString();
}

TEST(IrTraceTest, NestedTraceIsFailedPreconditionAndOuterSurvives) {
  Status inner_status = Status::OK();
  const auto outer = TraceGraph(2, [&inner_status] {
    const auto inner =
        TraceGraph(2, [] { return Relu(Constant(Ramp(2, 2, 0.0f))); });
    inner_status = inner.status();
    return Relu(Constant(Ramp(2, 3, 0.0f)));
  });
  EXPECT_EQ(inner_status.code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(outer.ok()) << outer.status().ToString();
  EXPECT_EQ(outer->node(outer->output()).kind, OpKind::kRelu);
  EXPECT_FALSE(TracingActive());
}

TEST(IrTraceTest, TracingActiveOnlyInsideTheProbeForward) {
  EXPECT_FALSE(TracingActive());
  bool active_inside = false;
  const auto graph = TraceGraph(2, [&active_inside] {
    active_inside = TracingActive();
    return Relu(Constant(Ramp(2, 3, 0.0f)));
  });
  ASSERT_TRUE(graph.ok());
  EXPECT_TRUE(active_inside);
  EXPECT_FALSE(TracingActive());
}

}  // namespace
}  // namespace atnn::nn::ir
