#include "nn/autograd.h"

#include <thread>

#include <gtest/gtest.h>

#include "nn/ops.h"

namespace atnn::nn {
namespace {

TEST(AutogradTest, ConstantHasNoGradient) {
  Var c = Constant(Tensor::Ones(2, 2));
  EXPECT_FALSE(c.requires_grad());
}

TEST(AutogradTest, LeafRequiresGradient) {
  Var leaf = Leaf(Tensor::Ones(2, 2));
  EXPECT_TRUE(leaf.requires_grad());
}

TEST(AutogradTest, SimpleChainRule) {
  // loss = mean((2x)^2) with x = [1, 2]: d/dx = 8x/2 = 4x.
  Var x = Leaf(Tensor(1, 2, {1.0f, 2.0f}));
  Var loss = ReduceMean(Square(Scale(x, 2.0f)));
  EXPECT_FLOAT_EQ(loss.value().scalar(), (4.0f + 16.0f) / 2.0f);
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0, 1), 8.0f);
}

TEST(AutogradTest, GradientAccumulatesAcrossBackwardCalls) {
  Var x = Leaf(Tensor::Ones(1, 1));
  Var loss1 = ReduceSum(Scale(x, 3.0f));
  Backward(loss1);
  EXPECT_FLOAT_EQ(x.grad().scalar(), 3.0f);
  Var loss2 = ReduceSum(Scale(x, 2.0f));
  Backward(loss2);
  EXPECT_FLOAT_EQ(x.grad().scalar(), 5.0f);
  x.node()->ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().scalar(), 0.0f);
}

TEST(AutogradTest, DiamondGraphSumsBothPaths) {
  // y = x + x => dy/dx = 2.
  Var x = Leaf(Tensor::Ones(1, 1));
  Var y = ReduceSum(Add(x, x));
  Backward(y);
  EXPECT_FLOAT_EQ(x.grad().scalar(), 2.0f);
}

TEST(AutogradTest, ReusedSubexpressionBackpropagatesOnce) {
  // z = sigmoid(x); y = sum(z * z). dy/dx = 2 z z'(x).
  Var x = Leaf(Tensor::Scalar(0.5f));
  Var z = Sigmoid(x);
  Var y = ReduceSum(Mul(z, z));
  Backward(y);
  const float s = z.value().scalar();
  EXPECT_NEAR(x.grad().scalar(), 2.0f * s * s * (1.0f - s), 1e-6f);
}

TEST(AutogradTest, StopGradientBlocksFlow) {
  Var x = Leaf(Tensor::Scalar(2.0f));
  Var y = ReduceSum(Mul(StopGradient(x), x));  // treated as c * x
  Backward(y);
  EXPECT_FLOAT_EQ(x.grad().scalar(), 2.0f);  // only the live branch
}

TEST(AutogradTest, BackwardWithExplicitSeed) {
  Var x = Leaf(Tensor(1, 2, {1.0f, 1.0f}));
  Var y = Scale(x, 3.0f);  // non-scalar root
  Backward(y, Tensor(1, 2, {1.0f, 2.0f}));
  EXPECT_FLOAT_EQ(x.grad().at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(x.grad().at(0, 1), 6.0f);
}

TEST(AutogradTest, NoGradComputedThroughConstantBranch) {
  Var x = Leaf(Tensor::Scalar(1.0f));
  Var c = Constant(Tensor::Scalar(5.0f));
  Var y = ReduceSum(Mul(x, c));
  Backward(y);
  EXPECT_FLOAT_EQ(x.grad().scalar(), 5.0f);
  EXPECT_TRUE(c.grad().empty());  // never allocated
}

TEST(AutogradTest, SparseGradTrackingOnEmbeddings) {
  Var table = Leaf(Tensor(10, 4));
  table.node()->is_parameter = true;
  std::vector<int64_t> ids = {2, 2, 7};
  Var out = EmbeddingLookup(table, ids);
  Var loss = ReduceSum(out);
  Backward(loss);
  EXPECT_TRUE(table.node()->IsSparseGrad());
  // Row 2 hit twice, row 7 once, everything else zero.
  EXPECT_FLOAT_EQ(table.grad().at(2, 0), 2.0f);
  EXPECT_FLOAT_EQ(table.grad().at(7, 0), 1.0f);
  EXPECT_FLOAT_EQ(table.grad().at(0, 0), 0.0f);
  table.node()->ZeroGrad();
  EXPECT_FLOAT_EQ(table.grad().at(2, 0), 0.0f);
  EXPECT_FALSE(table.node()->IsSparseGrad());
}

TEST(AutogradTest, DenseContributionClearsSparseness) {
  Var table = Leaf(Tensor(4, 2));
  table.node()->is_parameter = true;
  std::vector<int64_t> ids = {1};
  // Mixed use: lookup + direct dense use of the whole table.
  Var loss = Add(ReduceSum(EmbeddingLookup(table, ids)),
                 ReduceSum(table));
  Backward(loss);
  EXPECT_FALSE(table.node()->IsSparseGrad());
  EXPECT_FLOAT_EQ(table.grad().at(1, 0), 2.0f);  // lookup + dense
  EXPECT_FLOAT_EQ(table.grad().at(0, 0), 1.0f);  // dense only
}

TEST(NoGradTest, GuardDisablesTapeConstruction) {
  Var x = Leaf(Tensor(1, 2, {1.0f, 2.0f}));
  {
    NoGradGuard no_grad;
    EXPECT_FALSE(GradModeEnabled());
    Var y = Square(Scale(x, 2.0f));
    // Forward values are unaffected; only the tape is suppressed.
    EXPECT_FLOAT_EQ(y.value().at(0, 0), 4.0f);
    EXPECT_FLOAT_EQ(y.value().at(0, 1), 16.0f);
    EXPECT_FALSE(y.requires_grad());
    EXPECT_TRUE(y.node()->parents.empty());
  }
  EXPECT_TRUE(GradModeEnabled());
  Var z = Scale(x, 2.0f);
  EXPECT_TRUE(z.requires_grad());
  EXPECT_EQ(z.node()->parents.size(), 1u);
}

TEST(NoGradTest, GuardsNestAndRestorePreviousState) {
  NoGradGuard outer;
  {
    NoGradGuard inner;
    EXPECT_FALSE(GradModeEnabled());
  }
  // The inner guard restores the *outer* state, not unconditionally true.
  EXPECT_FALSE(GradModeEnabled());
}

TEST(NoGradTest, GuardIsThreadLocal) {
  NoGradGuard no_grad;
  bool other_thread_grad_mode = false;
  std::thread worker(
      [&other_thread_grad_mode] { other_thread_grad_mode = GradModeEnabled(); });
  worker.join();
  // A guard on this thread must not leak into eval workers on other
  // threads (and vice versa) — the contract parallel evaluation relies on.
  EXPECT_TRUE(other_thread_grad_mode);
  EXPECT_FALSE(GradModeEnabled());
}

TEST(NoGradTest, NoGradForwardDetachesFromDifferentiableLeaves) {
  Var x = Leaf(Tensor::Scalar(3.0f));
  {
    NoGradGuard no_grad;
    Var loss = ReduceSum(Square(x));
    EXPECT_FLOAT_EQ(loss.value().scalar(), 9.0f);
    // The graph was never recorded, so the result is detached even though
    // x itself requires grad — Backward on it would be a usage error.
    EXPECT_FALSE(loss.requires_grad());
  }
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  Var x = Leaf(Tensor::Scalar(1.0f));
  Var y = x;
  for (int i = 0; i < 5000; ++i) y = Scale(y, 1.0f);
  Var loss = ReduceSum(y);
  Backward(loss);  // iterative topo sort must survive depth 5000
  EXPECT_FLOAT_EQ(x.grad().scalar(), 1.0f);
}

}  // namespace
}  // namespace atnn::nn
