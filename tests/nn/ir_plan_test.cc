#include "nn/ir/plan.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "core/atnn.h"
#include "core/generator_plan.h"
#include "core/popularity.h"
#include "data/schema.h"
#include "data/tmall.h"
#include "nn/tensor.h"

namespace atnn::nn::ir {
namespace {

TEST(CompileModeTest, ParsesTheFlagVocabulary) {
  ASSERT_TRUE(ParseCompileMode("off").ok());
  EXPECT_EQ(ParseCompileMode("off").value(), CompileMode::kOff);
  EXPECT_EQ(ParseCompileMode("on").value(), CompileMode::kOn);
  EXPECT_EQ(ParseCompileMode("auto").value(), CompileMode::kAuto);
  for (const CompileMode mode :
       {CompileMode::kOff, CompileMode::kOn, CompileMode::kAuto}) {
    EXPECT_EQ(ParseCompileMode(CompileModeName(mode)).value(), mode);
  }
  const auto junk = ParseCompileMode("sometimes");
  EXPECT_EQ(junk.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(junk.status().ToString().find("--atnn_compile"),
            std::string::npos);
}

TEST(PlanScratchTest, GrowsOnceAndStaysAligned) {
  PlanScratch scratch;
  EXPECT_EQ(scratch.capacity(), 0u);
  std::byte* first = scratch.Ensure(100);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(first) % 32, 0u);
  EXPECT_GE(scratch.capacity(), 100u);
  // Shrinking requests reuse the same buffer.
  EXPECT_EQ(scratch.Ensure(50), first);
  EXPECT_EQ(scratch.Ensure(100), first);
  // Growing reallocates (still aligned).
  std::byte* grown = scratch.Ensure(scratch.capacity() + 1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(grown) % 32, 0u);
  EXPECT_GE(scratch.capacity(), 101u);
}

/// Minimal executable graph: one embedding gather off a constant table,
/// with raw (unhashed) ids so the range check is reachable.
std::unique_ptr<CompiledPlan> MakeLookupPlan(int64_t vocab, int64_t dim,
                                             int64_t max_batch) {
  Graph graph;
  NodeDef table;
  table.kind = OpKind::kConstant;
  table.rows = vocab;
  table.cols = dim;
  table.owned = Tensor(vocab, dim);
  for (int64_t i = 0; i < table.owned.numel(); ++i) {
    table.owned.data()[i] = static_cast<float>(i);
  }
  table.data = table.owned.data();
  table.label = "emb";
  const int32_t table_id = graph.AddNode(std::move(table));
  NodeDef lookup;
  lookup.kind = OpKind::kEmbedLookup;
  lookup.inputs = {table_id};
  lookup.batch_rows = true;
  lookup.rows = 3;
  lookup.cols = dim;
  lookup.field = 0;
  lookup.hash_buckets = 0;  // raw ids, no feature hash
  graph.set_output(graph.AddNode(std::move(lookup)));
  graph.set_num_fields(1);
  CompiledPlan::Options options;
  options.max_batch = max_batch;
  auto plan = CompiledPlan::Compile(std::move(graph), options);
  ATNN_CHECK(plan.ok()) << plan.status().ToString();
  return std::move(plan).value();
}

TEST(CompiledPlanTest, ExecuteGathersRowsBitwise) {
  const auto plan = MakeLookupPlan(/*vocab=*/8, /*dim=*/4, /*max_batch=*/8);
  const std::vector<std::vector<int64_t>> ids = {{7, 0, 3}};
  PlanScratch scratch;
  const auto out = plan->Execute({&ids, nullptr}, 3, &scratch);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_EQ(out.value()[r * 4 + c],
                static_cast<float>(ids[0][static_cast<size_t>(r)] * 4 + c));
    }
  }
}

TEST(CompiledPlanTest, ExecuteRejectsOutOfRangeRawIds) {
  const auto plan = MakeLookupPlan(/*vocab=*/8, /*dim=*/4, /*max_batch=*/8);
  PlanScratch scratch;
  const std::vector<std::vector<int64_t>> high = {{0, 8, 1}};
  EXPECT_EQ(plan->Execute({&high, nullptr}, 3, &scratch).status().code(),
            StatusCode::kInvalidArgument);
  const std::vector<std::vector<int64_t>> negative = {{-1, 0, 1}};
  EXPECT_EQ(
      plan->Execute({&negative, nullptr}, 3, &scratch).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(CompiledPlanTest, ExecuteValidatesBatchAndInputShapes) {
  const auto plan = MakeLookupPlan(/*vocab=*/8, /*dim=*/4, /*max_batch=*/4);
  PlanScratch scratch;
  const std::vector<std::vector<int64_t>> ids = {{1, 2}};

  EXPECT_EQ(plan->Execute({&ids, nullptr}, 0, &scratch).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(plan->Execute({&ids, nullptr}, 5, &scratch).status().code(),
            StatusCode::kInvalidArgument);
  // Missing id fields entirely.
  EXPECT_EQ(plan->Execute({nullptr, nullptr}, 2, &scratch).status().code(),
            StatusCode::kInvalidArgument);
  // Field size disagrees with the batch.
  EXPECT_EQ(plan->Execute({&ids, nullptr}, 1, &scratch).status().code(),
            StatusCode::kInvalidArgument);
  // The matching call still works on the same scratch.
  EXPECT_TRUE(plan->Execute({&ids, nullptr}, 2, &scratch).ok());
}

TEST(CompiledPlanTest, CompileRejectsBadOptionsAndGraphs) {
  {
    Graph graph;  // no output
    CompiledPlan::Options options;
    EXPECT_EQ(
        CompiledPlan::Compile(std::move(graph), options).status().code(),
        StatusCode::kInvalidArgument);
  }
  {
    // A non-batch output can never serve per-row scoring.
    Graph graph;
    NodeDef c;
    c.kind = OpKind::kConstant;
    c.rows = 1;
    c.cols = 4;
    c.owned = Tensor(1, 4);
    c.data = c.owned.data();
    const int32_t cid = graph.AddNode(std::move(c));
    NodeDef relu;
    relu.kind = OpKind::kRelu;
    relu.inputs = {cid};
    relu.rows = 1;
    relu.cols = 4;
    graph.set_output(graph.AddNode(std::move(relu)));
    CompiledPlan::Options options;
    const auto plan = CompiledPlan::Compile(std::move(graph), options);
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
    // (The default pipeline folds relu(const) first, so the diagnostic is
    // "output is not a computed value" rather than "not batch-shaped" —
    // either way the output can never serve per-row scoring.)
    EXPECT_NE(plan.status().ToString().find("output"), std::string::npos)
        << plan.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// End-to-end against the real model: the compiled generator reproduces the
// tape scores bit for bit, and the CLI-facing wrappers honor the compile
// policy.
// ---------------------------------------------------------------------------

class GeneratorPlanTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        core::testing_helpers::MakeNormalizedTinyDataset());
    core::AtnnConfig config;
    config.tower =
        core::testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = new core::AtnnModel(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, config);
    const auto group = core::SelectActiveUsers(*dataset_, 64);
    predictor_ = new core::PopularityPredictor(
        core::PopularityPredictor::Build(*model_, *dataset_, group));
  }

  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static data::TmallDataset* dataset_;
  static core::AtnnModel* model_;
  static core::PopularityPredictor* predictor_;
};

data::TmallDataset* GeneratorPlanTest::dataset_ = nullptr;
core::AtnnModel* GeneratorPlanTest::model_ = nullptr;
core::PopularityPredictor* GeneratorPlanTest::predictor_ = nullptr;

TEST_F(GeneratorPlanTest, CompiledScoresMatchTheTapeBitwise) {
  // max_batch below the item count forces multi-chunk execution.
  const auto plan =
      core::CompileGeneratorPlan(*model_, dataset_->item_profiles, 16);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT((*plan)->num_steps(), 0u);
  EXPECT_GT((*plan)->plan_bytes(), 0u);
  EXPECT_EQ((*plan)->max_batch(), 16);
  EXPECT_EQ((*plan)->output_cols(), model_->vector_dim());
  EXPECT_FALSE((*plan)->pass_summary().empty());

  const auto planned = core::ScoreItemsWithPlan(
      **plan, *predictor_, dataset_->item_profiles, dataset_->new_items);
  ASSERT_TRUE(planned.ok()) << planned.status().ToString();
  const std::vector<double> tape =
      predictor_->ScoreItems(*model_, *dataset_, dataset_->new_items);
  ASSERT_EQ(planned->size(), tape.size());
  for (size_t i = 0; i < tape.size(); ++i) {
    // Bitwise, not approximately: the plan runs the same kernels in the
    // same composition as the tape forward.
    EXPECT_EQ((*planned)[i], tape[i]) << i;
  }
}

TEST_F(GeneratorPlanTest, ExecuteRejectsDenseShapeDrift) {
  const auto plan =
      core::CompileGeneratorPlan(*model_, dataset_->item_profiles, 4);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const data::BlockBatch block =
      data::GatherBlock(dataset_->item_profiles, {0, 1});
  PlanScratch scratch;
  ASSERT_TRUE(
      (*plan)->Execute({&block.categorical, &block.numeric}, 2, &scratch)
          .ok());
  // A dense block whose width drifted from the traced schema is refused —
  // this is the signal callers use to fall back to the tape.
  const Tensor wrong_width(2, block.numeric.cols() + 1);
  EXPECT_EQ((*plan)
                ->Execute({&block.categorical, &wrong_width}, 2, &scratch)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*plan)
                ->Execute({&block.categorical, nullptr}, 2, &scratch)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GeneratorPlanTest, CompileRequiresANonEmptyItemTable) {
  const data::EntityTable empty;
  EXPECT_EQ(core::CompileGeneratorPlan(*model_, empty, 16).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(core::CompileGeneratorPlan(*model_, dataset_->item_profiles, 0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GeneratorPlanTest, MaybeCompiledHonorsThePolicy) {
  const std::vector<double> tape =
      predictor_->ScoreItems(*model_, *dataset_, dataset_->new_items);

  bool used_plan = true;
  const std::vector<double> off = core::ScoreItemsMaybeCompiled(
      CompileMode::kOff, *model_, *predictor_, *dataset_,
      dataset_->new_items, &used_plan);
  EXPECT_FALSE(used_plan);
  EXPECT_EQ(off, tape);

  const std::vector<double> an = core::ScoreItemsMaybeCompiled(
      CompileMode::kAuto, *model_, *predictor_, *dataset_,
      dataset_->new_items, &used_plan);
  EXPECT_TRUE(used_plan);
  EXPECT_EQ(an, tape);

  const std::vector<double> on = core::ScoreItemsMaybeCompiled(
      CompileMode::kOn, *model_, *predictor_, *dataset_,
      dataset_->new_items, &used_plan);
  EXPECT_TRUE(used_plan);
  EXPECT_EQ(on, tape);
}

}  // namespace
}  // namespace atnn::nn::ir
