#include "nn/ir/graph.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace atnn::nn::ir {
namespace {

/// Adds an owning constant filled with a deterministic ramp.
int32_t AddConst(Graph* graph, int64_t rows, int64_t cols,
                 const std::string& label, float base = 1.0f) {
  NodeDef def;
  def.kind = OpKind::kConstant;
  def.rows = rows;
  def.cols = cols;
  def.owned = Tensor(rows, cols);
  for (int64_t i = 0; i < def.owned.numel(); ++i) {
    def.owned.data()[i] = base + 0.25f * static_cast<float>(i);
  }
  def.data = def.owned.data();
  def.label = label;
  return graph->AddNode(std::move(def));
}

int32_t AddDenseInput(Graph* graph, int64_t batch, int64_t cols) {
  NodeDef def;
  def.kind = OpKind::kDenseInput;
  def.batch_rows = true;
  def.rows = batch;
  def.cols = cols;
  graph->set_dense_cols(cols);
  return graph->AddNode(std::move(def));
}

int32_t AddOp(Graph* graph, OpKind kind, std::vector<int32_t> inputs,
              int64_t rows, int64_t cols, bool batch_rows) {
  NodeDef def;
  def.kind = kind;
  def.inputs = std::move(inputs);
  def.rows = rows;
  def.cols = cols;
  def.batch_rows = batch_rows;
  return graph->AddNode(std::move(def));
}

TEST(IrGraphTest, AddNodeAssignsSequentialIdsAndValidates) {
  Graph graph;
  const int32_t x = AddDenseInput(&graph, 3, 4);
  const int32_t w = AddConst(&graph, 4, 2, "w");
  const int32_t mm = AddOp(&graph, OpKind::kMatMul, {x, w}, 3, 2, true);
  EXPECT_EQ(x, 0);
  EXPECT_EQ(w, 1);
  EXPECT_EQ(mm, 2);
  EXPECT_EQ(graph.size(), 3);
  graph.set_output(mm);
  EXPECT_TRUE(graph.Validate().ok()) << graph.Validate().ToString();
}

TEST(IrGraphTest, ValidateRejectsUnsetOutput) {
  Graph graph;
  AddConst(&graph, 1, 1, "c");
  const Status status = graph.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("output"), std::string::npos);
}

TEST(IrGraphTest, ValidateRejectsConstantWithoutData) {
  Graph graph;
  NodeDef def;
  def.kind = OpKind::kConstant;
  def.rows = 1;
  def.cols = 1;  // data left null
  graph.set_output(graph.AddNode(std::move(def)));
  EXPECT_EQ(graph.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(IrGraphTest, ValidateRejectsShapeMismatch) {
  Graph graph;
  const int32_t x = AddDenseInput(&graph, 3, 4);
  const int32_t w = AddConst(&graph, 5, 2, "w");  // 4 != 5: bad inner dim
  graph.set_output(AddOp(&graph, OpKind::kMatMul, {x, w}, 3, 2, true));
  const Status status = graph.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("matmul"), std::string::npos);
}

TEST(IrGraphTest, ValidateRejectsInplaceAliasingALeaf) {
  Graph graph;
  const int32_t c = AddConst(&graph, 2, 2, "c");
  const int32_t relu = AddOp(&graph, OpKind::kRelu, {c}, 2, 2, false);
  graph.mutable_node(relu).inplace = true;  // would clobber the constant
  graph.set_output(relu);
  const Status status = graph.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("inplace"), std::string::npos);
}

TEST(IrGraphTest, ValidateRejectsEmbedFieldOutsideRange) {
  Graph graph;
  const int32_t table = AddConst(&graph, 8, 4, "emb");
  NodeDef def;
  def.kind = OpKind::kEmbedLookup;
  def.inputs = {table};
  def.batch_rows = true;
  def.rows = 2;
  def.cols = 4;
  def.field = 1;  // but num_fields stays 0
  graph.set_output(graph.AddNode(std::move(def)));
  EXPECT_EQ(graph.Validate().code(), StatusCode::kInvalidArgument);
  graph.set_num_fields(2);
  EXPECT_TRUE(graph.Validate().ok()) << graph.Validate().ToString();
}

TEST(IrGraphTest, RemoveDeadNodesDropsAndRemaps) {
  Graph graph;
  const int32_t x = AddDenseInput(&graph, 3, 4);
  AddConst(&graph, 1, 1, "dead1");                      // unused
  const int32_t w = AddConst(&graph, 4, 4, "w");
  const int32_t dead2 = AddConst(&graph, 1, 4, "dead2");
  AddOp(&graph, OpKind::kScale, {dead2}, 1, 4, false);  // dead subtree
  const int32_t mm = AddOp(&graph, OpKind::kMatMul, {x, w}, 3, 4, true);
  graph.set_output(mm);

  EXPECT_EQ(graph.RemoveDeadNodes(), 3);
  EXPECT_EQ(graph.size(), 3);
  // Survivors keep their order and the live edge is remapped.
  EXPECT_EQ(graph.node(0).kind, OpKind::kDenseInput);
  EXPECT_EQ(graph.node(1).kind, OpKind::kConstant);
  EXPECT_EQ(graph.node(2).kind, OpKind::kMatMul);
  EXPECT_EQ(graph.node(2).inputs, (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(graph.output(), 2);
  EXPECT_TRUE(graph.Validate().ok());
  // Second sweep finds nothing.
  EXPECT_EQ(graph.RemoveDeadNodes(), 0);
}

TEST(IrGraphTest, ClearInplaceMarksResetsEveryNode) {
  Graph graph;
  const int32_t x = AddDenseInput(&graph, 3, 4);
  const int32_t relu = AddOp(&graph, OpKind::kRelu, {x}, 3, 4, true);
  const int32_t tanh = AddOp(&graph, OpKind::kTanh, {relu}, 3, 4, true);
  graph.mutable_node(tanh).inplace = true;
  graph.set_output(tanh);
  graph.ClearInplaceMarks();
  for (int32_t id = 0; id < graph.size(); ++id) {
    EXPECT_FALSE(graph.node(id).inplace) << id;
  }
}

TEST(IrGraphTest, ToTextIsDeterministicAndPointerFree) {
  Graph graph;
  const int32_t x = AddDenseInput(&graph, 3, 4);
  const int32_t w = AddConst(&graph, 4, 2, "w");
  const int32_t b = AddConst(&graph, 1, 2, "b");
  const int32_t affine =
      AddOp(&graph, OpKind::kDenseAffine, {x, w, b}, 3, 2, true);
  graph.mutable_node(affine).act = Activation::kRelu;
  const int32_t scaled = AddOp(&graph, OpKind::kScale, {affine}, 3, 2, true);
  graph.mutable_node(scaled).alpha = 0.5f;
  graph.mutable_node(scaled).inplace = true;
  graph.set_output(scaled);
  ASSERT_TRUE(graph.Validate().ok()) << graph.Validate().ToString();

  const std::string expected =
      "graph: nodes=5 fields=0 dense_cols=4\n"
      "%0 = dense_input : [Bx4]\n"
      "%1 = const \"w\" : [4x2]\n"
      "%2 = const \"b\" : [1x2]\n"
      "%3 = dense_affine(%0, %1, %2, act=relu) : [Bx2]\n"
      "%4 = scale(%3, alpha=0.5) : [Bx2] inplace\n"
      "output %4\n";
  EXPECT_EQ(graph.ToText(), expected);
  // Byte-for-byte stable across calls (golden tests rely on this).
  EXPECT_EQ(graph.ToText(), graph.ToText());
}

TEST(IrGraphTest, OpKindNameCoversEveryKind) {
  EXPECT_STREQ(OpKindName(OpKind::kConstant), "const");
  EXPECT_STREQ(OpKindName(OpKind::kDenseInput), "dense_input");
  EXPECT_STREQ(OpKindName(OpKind::kEmbedLookup), "embed_lookup");
  EXPECT_STREQ(OpKindName(OpKind::kMatMul), "matmul");
  EXPECT_STREQ(OpKindName(OpKind::kDenseAffine), "dense_affine");
  EXPECT_STREQ(OpKindName(OpKind::kConcatCols), "concat_cols");
  EXPECT_STREQ(OpKindName(OpKind::kSliceCols), "slice_cols");
}

}  // namespace
}  // namespace atnn::nn::ir
