// Finite-difference verification of every differentiable op and layer.
// Each case defines a scalar-valued function of one or more leaf tensors;
// the analytic gradient from Backward() must match central differences.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace atnn::nn {
namespace {

struct GradCase {
  std::string name;
  std::vector<std::pair<int64_t, int64_t>> input_shapes;
  std::function<Var(const std::vector<Var>&)> fn;
  /// Inputs drawn from U(lo, hi); keep denominators away from zero for div.
  float lo = -1.0f;
  float hi = 1.0f;
};

void PrintTo(const GradCase& c, std::ostream* os) { *os << c.name; }

class GradCheckTest : public testing::TestWithParam<GradCase> {};

double EvalAt(const GradCase& c, std::vector<Tensor> values) {
  std::vector<Var> leaves;
  leaves.reserve(values.size());
  for (Tensor& v : values) leaves.push_back(Constant(std::move(v)));
  return c.fn(leaves).value().scalar();
}

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const GradCase& c = GetParam();
  Rng rng(2718);
  std::vector<Tensor> inputs;
  for (const auto& [rows, cols] : c.input_shapes) {
    Tensor t(rows, cols);
    for (int64_t i = 0; i < t.numel(); ++i) {
      t.data()[i] = static_cast<float>(rng.Uniform(c.lo, c.hi));
    }
    inputs.push_back(std::move(t));
  }

  // Analytic gradients.
  std::vector<Var> leaves;
  leaves.reserve(inputs.size());
  for (const Tensor& t : inputs) leaves.push_back(Leaf(t));
  Var loss = c.fn(leaves);
  ASSERT_EQ(loss.value().numel(), 1) << "grad-check functions must be scalar";
  Backward(loss);

  const double eps = 5e-3;
  for (size_t input = 0; input < inputs.size(); ++input) {
    for (int64_t i = 0; i < inputs[input].numel(); ++i) {
      std::vector<Tensor> plus = inputs;
      std::vector<Tensor> minus = inputs;
      plus[input].data()[i] += static_cast<float>(eps);
      minus[input].data()[i] -= static_cast<float>(eps);
      const double numeric =
          (EvalAt(c, std::move(plus)) - EvalAt(c, std::move(minus))) /
          (2.0 * eps);
      const double analytic = leaves[input].grad().data()[i];
      const double denom =
          std::max(1.0, std::abs(numeric) + std::abs(analytic));
      EXPECT_NEAR(analytic / denom, numeric / denom, 2e-2)
          << c.name << " input " << input << " element " << i
          << " analytic=" << analytic << " numeric=" << numeric;
    }
  }
}

Tensor FixedLabels(int64_t n) {
  Tensor labels(n, 1);
  for (int64_t i = 0; i < n; ++i) labels.at(i, 0) = (i % 2 == 0) ? 1.0f : 0.0f;
  return labels;
}

std::vector<GradCase> MakeCases() {
  std::vector<GradCase> cases;
  cases.push_back({"matmul",
                   {{3, 4}, {4, 2}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(MatMul(v[0], v[1])));
                   }});
  cases.push_back({"add",
                   {{2, 3}, {2, 3}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(Add(v[0], v[1])));
                   }});
  cases.push_back({"sub",
                   {{2, 3}, {2, 3}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(Sub(v[0], v[1])));
                   }});
  cases.push_back({"mul",
                   {{2, 3}, {2, 3}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(Mul(v[0], v[1])));
                   }});
  cases.push_back({"div",
                   {{2, 3}, {2, 3}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(Div(v[0], v[1])));
                   },
                   1.0f, 2.0f});  // keep denominator positive
  cases.push_back({"scale",
                   {{2, 3}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(Scale(v[0], -1.7f)));
                   }});
  cases.push_back({"add_bias",
                   {{3, 4}, {1, 4}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(AddBias(v[0], v[1])));
                   }});
  cases.push_back({"scale_rows",
                   {{3, 4}, {3, 1}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(ScaleRows(v[0], v[1])));
                   }});
  cases.push_back({"sigmoid",
                   {{2, 3}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(Sigmoid(v[0])));
                   },
                   -2.0f, 2.0f});
  cases.push_back({"relu",
                   {{2, 5}},
                   [](const std::vector<Var>& v) {
                     // Shift inputs away from the kink at 0.
                     return ReduceMean(Square(Relu(v[0])));
                   },
                   0.2f, 1.5f});
  cases.push_back({"relu_negative_side",
                   {{2, 5}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(Relu(v[0])));
                   },
                   -1.5f, -0.2f});
  cases.push_back({"tanh",
                   {{2, 3}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(Tanh(v[0])));
                   },
                   -1.5f, 1.5f});
  cases.push_back({"leaky_relu",
                   {{2, 5}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(LeakyRelu(v[0], 0.1f)));
                   },
                   0.2f, 1.5f});
  cases.push_back({"concat_cols",
                   {{2, 3}, {2, 2}, {2, 4}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(
                         Square(ConcatCols({v[0], v[1], v[2]})));
                   }});
  cases.push_back({"slice_cols",
                   {{3, 6}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(SliceCols(v[0], 1, 4)));
                   }});
  cases.push_back({"reduce_sum",
                   {{3, 3}},
                   [](const std::vector<Var>& v) {
                     return Square(ReduceSum(v[0]));
                   }});
  cases.push_back({"mean_rows",
                   {{4, 3}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(MeanRows(v[0])));
                   }});
  cases.push_back({"rowwise_dot",
                   {{3, 4}, {3, 4}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(RowwiseDot(v[0], v[1])));
                   }});
  cases.push_back({"rowwise_sum",
                   {{3, 4}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(RowwiseSum(v[0])));
                   }});
  cases.push_back({"rowwise_norm",
                   {{3, 4}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(Square(RowwiseNorm(v[0])));
                   },
                   0.5f, 1.5f});
  cases.push_back({"cosine_similarity",
                   {{3, 4}, {3, 4}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(
                         Square(CosineSimilarityRows(v[0], v[1])));
                   },
                   0.3f, 1.2f});
  cases.push_back({"bce_with_logits",
                   {{6, 1}},
                   [](const std::vector<Var>& v) {
                     return SigmoidBceLossWithLogits(v[0], FixedLabels(6));
                   },
                   -2.0f, 2.0f});
  cases.push_back({"mse_loss",
                   {{5, 1}},
                   [](const std::vector<Var>& v) {
                     Tensor target(5, 1);
                     for (int64_t i = 0; i < 5; ++i) {
                       target.at(i, 0) = 0.3f * static_cast<float>(i);
                     }
                     return MseLoss(v[0], target);
                   }});
  cases.push_back({"mse_between",
                   {{3, 4}, {3, 4}},
                   [](const std::vector<Var>& v) {
                     return MseBetween(v[0], v[1]);
                   }});
  cases.push_back({"embedding_lookup",
                   {{6, 3}},
                   [](const std::vector<Var>& v) {
                     const std::vector<int64_t> ids = {0, 2, 2, 5};
                     return ReduceMean(Square(EmbeddingLookup(v[0], ids)));
                   }});
  cases.push_back({"layer_norm",
                   {{3, 5}, {1, 5}, {1, 5}},
                   [](const std::vector<Var>& v) {
                     return ReduceMean(
                         Square(LayerNorm(v[0], v[1], v[2])));
                   },
                   0.3f, 1.5f});
  // Composite: the DCN cross layer built from primitives.
  cases.push_back({"cross_layer_composite",
                   {{3, 4}, {4, 1}, {1, 4}},
                   [](const std::vector<Var>& v) {
                     Var x0 = v[0];
                     Var crossed = Add(
                         AddBias(ScaleRows(x0, MatMul(x0, v[1])), v[2]), x0);
                     return ReduceMean(Square(crossed));
                   }});
  // Composite: the paper's full generator-step objective L_g + lambda L_s.
  cases.push_back(
      {"generator_objective",
       {{4, 3}, {4, 3}},
       [](const std::vector<Var>& v) {
         Var gen_vec = v[0];
         Var user_vec = v[1];
         Var logits = AddBias(RowwiseDot(gen_vec, user_vec),
                              Constant(Tensor::Scalar(0.2f)));
         Var loss_g = SigmoidBceLossWithLogits(logits, FixedLabels(4));
         Var target = StopGradient(user_vec);
         Var ones = Constant(Tensor::Ones(4, 1));
         Var loss_s = ReduceMean(
             Square(Sub(ones, CosineSimilarityRows(gen_vec, target))));
         return Add(loss_g, Scale(loss_s, 0.1f));
       },
       0.3f, 1.0f});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GradCheckTest,
                         testing::ValuesIn(MakeCases()),
                         [](const testing::TestParamInfo<GradCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace atnn::nn
