#include "nn/tensor.h"

#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "nn/matmul.h"

namespace atnn::nn {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.numel(), 12);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 4; ++c) EXPECT_EQ(t.at(r, c), 0.0f);
  }
}

TEST(TensorTest, ConstructFromFlatData) {
  Tensor t(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_EQ(t.at(1, 2), 6.0f);
}

TEST(TensorTest, FactoryHelpers) {
  EXPECT_EQ(Tensor::Ones(2, 2).Sum(), 4.0);
  EXPECT_EQ(Tensor::Full(2, 2, 3.0f).Sum(), 12.0);
  EXPECT_EQ(Tensor::Scalar(5.0f).scalar(), 5.0f);
  Tensor row = Tensor::Row({1, 2, 3});
  EXPECT_EQ(row.rows(), 1);
  EXPECT_EQ(row.cols(), 3);
  Tensor col = Tensor::Column({1, 2});
  EXPECT_EQ(col.rows(), 2);
  EXPECT_EQ(col.cols(), 1);
}

TEST(TensorTest, InPlaceArithmetic) {
  Tensor a(1, 3, {1, 2, 3});
  Tensor b(1, 3, {10, 20, 30});
  a.AddInPlace(b);
  EXPECT_EQ(a.at(0, 1), 22.0f);
  a.Axpy(0.5f, b);
  EXPECT_EQ(a.at(0, 0), 16.0f);
  a.Scale(2.0f);
  EXPECT_EQ(a.at(0, 2), 96.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t(2, 2, {1, -2, 3, -4});
  EXPECT_EQ(t.Sum(), -2.0);
  EXPECT_EQ(t.Mean(), -0.5);
  EXPECT_EQ(t.SquaredNorm(), 30.0);
  EXPECT_EQ(t.AbsMax(), 4.0f);
}

TEST(TensorTest, Transpose) {
  Tensor t(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.Transposed();
  EXPECT_EQ(tt.rows(), 3);
  EXPECT_EQ(tt.cols(), 2);
  EXPECT_EQ(tt.at(0, 1), 4.0f);
  EXPECT_EQ(tt.at(2, 0), 3.0f);
}

TEST(TensorTest, AllFiniteDetectsNanAndInf) {
  Tensor t(1, 2, {1.0f, 2.0f});
  EXPECT_TRUE(t.AllFinite());
  t.at(0, 1) = std::nanf("");
  EXPECT_FALSE(t.AllFinite());
  t.at(0, 1) = INFINITY;
  EXPECT_FALSE(t.AllFinite());
}

TEST(TensorTest, StorageIs32ByteAligned) {
  // SIMD kernels rely on allocation-time alignment (kTensorAlignment);
  // odd shapes must not break it.
  for (int64_t cols : {1, 3, 7, 8, 33}) {
    Tensor t(3, cols);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % kTensorAlignment, 0u)
        << "cols=" << cols;
  }
}

TEST(TensorTest, CopyPreservesValuesIntoFreshAlignedStorage) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = a;
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % kTensorAlignment, 0u);
  b.at(1, 2) = -1.0f;
  EXPECT_EQ(a.at(1, 2), 6.0f);  // deep copy
}

TEST(TensorDeathTest, NumelOverflowIsCaughtBeforeAllocation) {
  // rows * cols wraps int64; the CheckedNumel guard must abort instead of
  // letting the wrapped (possibly small or negative) product reach
  // operator new.
  constexpr int64_t kHuge = std::numeric_limits<int64_t>::max() / 2;
  EXPECT_DEATH(Tensor t(kHuge, 4), "overflow");
  EXPECT_DEATH(Tensor t(3'000'000'000, 3'000'000'000), "overflow");
  EXPECT_DEATH(Tensor::CheckedNumel(kHuge, kHuge), "overflow");
}

TEST(TensorTest, CheckedNumelAcceptsValidShapes) {
  EXPECT_EQ(Tensor::CheckedNumel(0, 0), 0);
  EXPECT_EQ(Tensor::CheckedNumel(3, 4), 12);
  EXPECT_EQ(Tensor::CheckedNumel(1'000'000, 1'000), 1'000'000'000);
}

TEST(MatMulTest, MatchesHandComputedProduct) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMulNew(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(MatMulTest, TransBMatchesExplicitTranspose) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(4, 3, {1, 0, 1, 0, 1, 0, 2, 2, 2, -1, 1, -1});
  Tensor expected = MatMulNew(a, b.Transposed());
  Tensor c(2, 4);
  MatMulTransBAccum(a, b, &c);
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t col = 0; col < 4; ++col) {
      EXPECT_FLOAT_EQ(c.at(r, col), expected.at(r, col));
    }
  }
}

TEST(MatMulTest, TransAMatchesExplicitTranspose) {
  Tensor a(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 4, {1, 0, 1, 0, 0, 1, 0, 1, 2, 2, 2, 2});
  Tensor expected = MatMulNew(a.Transposed(), b);
  Tensor c(2, 4);
  MatMulTransAAccum(a, b, &c);
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t col = 0; col < 4; ++col) {
      EXPECT_FLOAT_EQ(c.at(r, col), expected.at(r, col));
    }
  }
}

TEST(MatMulTest, AccumulateVariantsAddToExisting) {
  Tensor a(1, 2, {1, 1});
  Tensor b(1, 2, {2, 3});
  Tensor c = Tensor::Full(1, 1, 10.0f);
  MatMulTransBAccum(a, b, &c);  // 10 + (1*2 + 1*3)
  EXPECT_FLOAT_EQ(c.at(0, 0), 15.0f);
}

}  // namespace
}  // namespace atnn::nn
