#include "nn/arena.h"

#include <cstdint>
#include <cstring>
#include <latch>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/autograd.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace atnn::nn {
namespace {

bool IsAligned(const void* ptr) {
  return reinterpret_cast<uintptr_t>(ptr) % kTensorAlignment == 0;
}

TEST(TensorArenaTest, HandsOutAlignedDistinctStorage) {
  TensorArena arena;
  float* a = arena.AllocateFloats(3);
  float* b = arena.AllocateFloats(5);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_TRUE(IsAligned(a));
  EXPECT_TRUE(IsAligned(b));
  // The hand-outs are genuinely usable (ASan would flag overlap/overflow).
  for (int i = 0; i < 3; ++i) a[i] = 1.0f;
  for (int i = 0; i < 5; ++i) b[i] = 2.0f;
  EXPECT_EQ(a[2], 1.0f);
  EXPECT_EQ(b[0], 2.0f);
}

TEST(TensorArenaTest, ZeroByteAllocationIsNonNull) {
  TensorArena arena;
  EXPECT_NE(arena.Allocate(0), nullptr);
}

TEST(TensorArenaTest, RewindReusesStorage) {
  TensorArena arena;
  const TensorArena::Mark mark = arena.Checkpoint();
  float* first = arena.AllocateFloats(64);
  const size_t in_use = arena.BytesInUse();
  arena.Rewind(mark);
  EXPECT_EQ(arena.BytesInUse(), 0u);
  // The next allocation of the same size lands on the same bytes: the
  // steady-state training loop touches the heap zero times.
  float* second = arena.AllocateFloats(64);
  EXPECT_EQ(first, second);
  EXPECT_EQ(arena.BytesInUse(), in_use);
}

TEST(TensorArenaTest, GrowsAcrossBlocksAndKeepsOldPointersValid) {
  TensorArena arena;
  std::vector<float*> chunks;
  // First block is 64 KiB; 40 x 4 KiB spills into several grown blocks.
  for (int i = 0; i < 40; ++i) {
    float* p = arena.AllocateFloats(1024);
    p[0] = static_cast<float>(i);
    p[1023] = static_cast<float>(i);
    chunks.push_back(p);
  }
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(chunks[i][0], static_cast<float>(i)) << i;
    EXPECT_EQ(chunks[i][1023], static_cast<float>(i)) << i;
  }
  EXPECT_GE(arena.BytesReserved(), arena.BytesInUse());
}

TEST(TensorArenaTest, HighWaterMarkTracksPeakNotCurrent) {
  TensorArena arena;
  const TensorArena::Mark mark = arena.Checkpoint();
  arena.AllocateFloats(256);
  const size_t peak = arena.BytesInUse();
  EXPECT_GE(arena.HighWaterMark(), peak);
  arena.Rewind(mark);
  EXPECT_EQ(arena.BytesInUse(), 0u);
  EXPECT_GE(arena.HighWaterMark(), peak);  // survives the rewind
}

TEST(TensorArenaTest, NestedCheckpointsRewindLifo) {
  TensorArena arena;
  const TensorArena::Mark outer = arena.Checkpoint();
  float* a = arena.AllocateFloats(16);
  const TensorArena::Mark inner = arena.Checkpoint();
  float* b = arena.AllocateFloats(16);
  arena.Rewind(inner);
  float* b2 = arena.AllocateFloats(16);
  EXPECT_EQ(b, b2);  // inner rewind reclaimed only the inner hand-out
  a[0] = 7.0f;
  EXPECT_EQ(a[0], 7.0f);
  arena.Rewind(outer);
  EXPECT_EQ(arena.BytesInUse(), 0u);
}

TEST(ArenaScopeTest, ActivatesArenaBackedScratchTensors) {
  ASSERT_FALSE(ArenaActive());
  {
    const ArenaScope scope;
    EXPECT_TRUE(ArenaActive());
    const Tensor t = ScratchTensor(4, 5);
    EXPECT_TRUE(t.arena_backed());
    EXPECT_TRUE(IsAligned(t.data()));
    for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
  }
  EXPECT_FALSE(ArenaActive());
}

TEST(ArenaScopeTest, ScratchFallsBackToHeapOutsideScope) {
  ASSERT_FALSE(ArenaActive());
  const Tensor t = ScratchTensor(4, 5);
  EXPECT_FALSE(t.arena_backed());  // owning; safe to outlive any scope
  const Tensor c = ScratchCopy(t);
  EXPECT_FALSE(c.arena_backed());
}

TEST(ArenaScopeTest, CopyingScratchEscapesTheScope) {
  Tensor escaped;
  {
    const ArenaScope scope;
    Tensor t = ScratchTensor(2, 3);
    t.Fill(42.0f);
    escaped = t;  // deep copy into owning storage
  }
  EXPECT_FALSE(escaped.arena_backed());
  EXPECT_EQ(escaped.at(1, 2), 42.0f);
}

TEST(ArenaScopeTest, NestedScopesRewindInOrder) {
  const ArenaScope outer;
  const size_t before = ThreadArena().BytesInUse();
  const Tensor a = ScratchTensor(8, 8);
  {
    const ArenaScope inner;
    const Tensor b = ScratchTensor(8, 8);
    EXPECT_GT(ThreadArena().BytesInUse(), before + 8 * 8 * sizeof(float));
  }
  // Inner rewind freed b but not a.
  EXPECT_GE(ThreadArena().BytesInUse(), before + 8 * 8 * sizeof(float));
  EXPECT_TRUE(a.arena_backed());
}

TEST(ArenaScopeTest, StepLoopReachesZeroSteadyStateGrowth) {
  // After the first iteration warms the arena, repeating the same graph
  // must not grow the reservation — the allocation-free steady state.
  auto run_step = [] {
    const ArenaScope scope;
    Var x = Leaf(Tensor::Full(4, 6, 0.5f));
    Var w = Leaf(Tensor::Full(6, 3, 0.25f));
    Var b = Leaf(Tensor::Full(1, 3, 0.1f));
    const Var y = DenseAffine(x, w, b, Activation::kRelu);
    const Var loss = ReduceMean(Square(y));
    Backward(loss);
    return loss.value().scalar();
  };
  const float first = run_step();
  const size_t reserved_after_warmup = ThreadArena().BytesReserved();
  const size_t high_water = ThreadArena().HighWaterMark();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(run_step(), first);  // deterministic graph, identical loss
  }
  EXPECT_EQ(ThreadArena().BytesReserved(), reserved_after_warmup);
  EXPECT_EQ(ThreadArena().HighWaterMark(), high_water);
}

TEST(ArenaScopeTest, DisabledGlobalSwitchMakesScopesNoOps) {
  ASSERT_TRUE(ArenaEnabled());
  SetArenaEnabled(false);
  {
    const ArenaScope scope;
    EXPECT_FALSE(ArenaActive());
    const Tensor t = ScratchTensor(3, 3);
    EXPECT_FALSE(t.arena_backed());
  }
  SetArenaEnabled(true);
}

TEST(ArenaThreadingTest, EachThreadHasItsOwnArena) {
  // Four threads bump their own arenas concurrently; TSan (CI job) would
  // flag any shared mutable state, and the pointers must never collide.
  constexpr int kThreads = 4;
  std::vector<float*> first_alloc(kThreads, nullptr);
  // All threads must still be alive when the pointers are compared — a
  // thread-exit frees its arena and the next thread may reuse the address.
  std::latch all_allocated(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &first_alloc, &all_allocated] {
      const ArenaScope scope;
      Tensor mine = ScratchTensor(16, 16);
      first_alloc[t] = mine.data();
      all_allocated.arrive_and_wait();
      for (int step = 0; step < 50; ++step) {
        const ArenaScope inner;
        Tensor s = ScratchTensor(8, 8);
        s.Fill(static_cast<float>(t));
        ASSERT_EQ(s.at(7, 7), static_cast<float>(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int i = 0; i < kThreads; ++i) {
    for (int j = i + 1; j < kThreads; ++j) {
      EXPECT_NE(first_alloc[i], first_alloc[j]);
    }
  }
}

TEST(ArenaStdAllocatorTest, HeapFallbackOutsideScope) {
  ASSERT_FALSE(ArenaActive());
  std::vector<int64_t, ArenaStdAllocator<int64_t>> v;
  for (int64_t i = 0; i < 1000; ++i) v.push_back(i);
  EXPECT_EQ(v[999], 999);
  // Destructor exercises the tag-checked heap deallocation path.
}

TEST(ArenaStdAllocatorTest, ArenaBackedInsideScope) {
  const ArenaScope scope;
  const size_t before = ThreadArena().BytesInUse();
  {
    std::vector<float, ArenaStdAllocator<float>> v(64, 1.5f);
    EXPECT_GT(ThreadArena().BytesInUse(), before);
    EXPECT_EQ(v[63], 1.5f);
  }
  // deallocate() was a tag-checked no-op; the scope rewind reclaims.
}

TEST(ArenaStdAllocatorTest, SharedPtrControlBlockOutlivesScope) {
  // allocate_shared inside a scope, last reference dropped outside (and on
  // another thread): the tag header must route the free correctly.
  std::shared_ptr<int> survivor;
  {
    const ArenaScope scope;
    survivor = std::allocate_shared<int>(ArenaStdAllocator<int>(), 41);
  }
  EXPECT_EQ(*survivor, 41);
  std::thread([ptr = std::move(survivor)]() mutable {
    EXPECT_EQ(*ptr, 41);
    ptr.reset();
  }).join();
}

TEST(ArenaStdAllocatorTest, AllocatorEqualityIsStateless) {
  EXPECT_TRUE(ArenaStdAllocator<int>() == ArenaStdAllocator<float>());
}

}  // namespace
}  // namespace atnn::nn
