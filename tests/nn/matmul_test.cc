#include "nn/matmul.h"

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/kernels.h"

namespace atnn::nn {
namespace {

/// Textbook i-p-j reference with the same per-row accumulation order as
/// the scalar kernel, so scalar results are comparable with FLOAT_EQ; the
/// AVX2 kernel reassociates across lanes and is checked with a tolerance.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t p = 0; p < a.cols(); ++p) {
      const float a_val = a.at(i, p);
      for (int64_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += a_val * b.at(p, j);
      }
    }
  }
  return c;
}

Tensor RandomTensor(int64_t rows, int64_t cols, uint64_t seed,
                    double zero_fraction = 0.0) {
  Rng rng(seed);
  Tensor t(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const bool zero = rng.Uniform() < zero_fraction;
      t.at(i, j) = zero ? 0.0f : static_cast<float>(rng.Normal(0.0, 1.0));
    }
  }
  return t;
}

std::vector<kernels::Backend> AvailableBackends() {
  std::vector<kernels::Backend> backends = {kernels::Backend::kScalar};
  if (kernels::Avx2Supported()) backends.push_back(kernels::Backend::kAvx2);
  return backends;
}

std::string BackendLabel(
    const testing::TestParamInfo<kernels::Backend>& info) {
  return info.param == kernels::Backend::kScalar ? "scalar" : "avx2";
}

/// Pins the dispatched backend for the duration of a test.
class BackendGuard {
 public:
  explicit BackendGuard(kernels::Backend backend)
      : previous_(kernels::ActiveBackend()) {
    ATNN_CHECK(kernels::SetBackend(backend).ok());
  }
  ~BackendGuard() { (void)kernels::SetBackend(previous_); }

 private:
  kernels::Backend previous_;
};

class MatMulBackendTest : public testing::TestWithParam<kernels::Backend> {
 protected:
  MatMulBackendTest() : guard_(GetParam()) {}

  bool scalar() const { return GetParam() == kernels::Backend::kScalar; }

  void ExpectMatchesNaive(const Tensor& a, const Tensor& b) {
    Tensor c(a.rows(), b.cols());
    MatMulInto(a, b, &c);
    const Tensor expected = NaiveMatMul(a, b);
    for (int64_t i = 0; i < c.rows(); ++i) {
      for (int64_t j = 0; j < c.cols(); ++j) {
        if (scalar()) {
          EXPECT_FLOAT_EQ(c.at(i, j), expected.at(i, j))
              << "mismatch at (" << i << ", " << j << ") for shapes ["
              << a.rows() << "x" << a.cols() << "] * [" << b.rows() << "x"
              << b.cols() << "]";
        } else {
          EXPECT_NEAR(c.at(i, j), expected.at(i, j), 1e-4)
              << "mismatch at (" << i << ", " << j << ")";
        }
      }
    }
  }

 private:
  BackendGuard guard_;
};

TEST_P(MatMulBackendTest, RemainderRowsAfterFourRowBlocks) {
  // m % 4 in {1, 2, 3} exercises the tail-row loop after the 4-row blocked
  // passes; m % 4 == 0 exercises the pure-blocked path. n spans the 16/8/1
  // column tiles of the AVX2 kernel.
  for (int64_t m : {1, 2, 3, 4, 5, 6, 7, 8, 9}) {
    for (int64_t n : {1, 6, 8, 16, 17, 40}) {
      ExpectMatchesNaive(RandomTensor(m, 5, 100 + static_cast<uint64_t>(m)),
                         RandomTensor(5, n, 200 + static_cast<uint64_t>(n)));
    }
  }
}

TEST_P(MatMulBackendTest, BlockedAndTailRowsBitwiseIdentical) {
  // Every output row must be byte-for-byte the same whether the row was
  // produced by the 4-row blocked path or by the single-row tail path.
  // Sprinkling signed zeros, NaN and both infinities into the inputs pins
  // the uniform-propagation contract: the old zero-skip made a blocked row
  // skip 0 * Inf (never producing the NaN the tail row produced).
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kInf = std::numeric_limits<float>::infinity();
  Tensor a = RandomTensor(9, 7, 77, /*zero_fraction=*/0.3);
  a.at(0, 3) = -0.0f;
  a.at(1, 2) = kNan;
  a.at(2, 6) = kInf;
  a.at(5, 4) = -kInf;
  a.at(8, 0) = kNan;  // tail row (9 % 4 == 1)
  Tensor b = RandomTensor(7, 19, 78, /*zero_fraction=*/0.3);
  b.at(3, 2) = kNan;
  b.at(6, 11) = kInf;
  b.at(2, 0) = -0.0f;

  Tensor full(9, 19);
  MatMulInto(a, b, &full);
  for (int64_t r = 0; r < a.rows(); ++r) {
    Tensor a_row(1, a.cols());
    std::memcpy(a_row.data(), a.row_ptr(r),
                static_cast<size_t>(a.cols()) * sizeof(float));
    Tensor c_row(1, b.cols());
    MatMulInto(a_row, b, &c_row);
    EXPECT_EQ(std::memcmp(full.row_ptr(r), c_row.data(),
                          static_cast<size_t>(b.cols()) * sizeof(float)),
              0)
        << "row " << r << " differs between blocked and single-row paths";
  }
}

TEST_P(MatMulBackendTest, NanAndInfPropagateUniformly) {
  // A NaN anywhere in an A row or a B column must reach every affected
  // output element on every code path (blocked, tail, ragged columns).
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  Tensor a = RandomTensor(6, 5, 91);
  a.at(4, 2) = kNan;
  const Tensor b = RandomTensor(5, 11, 92);
  Tensor c(6, 11);
  MatMulInto(a, b, &c);
  for (int64_t j = 0; j < 11; ++j) {
    EXPECT_TRUE(std::isnan(c.at(4, j))) << "col " << j;
  }
  // 0 * Inf = NaN must appear even when the A value is zero.
  Tensor a2(1, 2, {0.0f, 1.0f});
  Tensor b2(2, 1);
  b2.at(0, 0) = std::numeric_limits<float>::infinity();
  b2.at(1, 0) = 3.0f;
  Tensor c2(1, 1);
  MatMulInto(a2, b2, &c2);
  EXPECT_TRUE(std::isnan(c2.at(0, 0)));
}

TEST_P(MatMulBackendTest, ZeroRowsStayExactlyZero) {
  // An all-zero A row still produces an exactly-zero C row (additions of
  // +-0 into a +0 accumulator never flip the sign for finite B).
  Tensor a = RandomTensor(11, 7, 42, /*zero_fraction=*/0.7);
  for (int64_t p = 0; p < a.cols(); ++p) a.at(2, p) = 0.0f;   // blocked row
  for (int64_t p = 0; p < a.cols(); ++p) a.at(10, p) = -0.0f;  // tail row
  const Tensor b = RandomTensor(7, 9, 43);
  ExpectMatchesNaive(a, b);

  Tensor c(11, 9);
  MatMulInto(a, b, &c);
  for (int64_t j = 0; j < 9; ++j) {
    EXPECT_EQ(c.at(2, j), 0.0f);
    EXPECT_EQ(c.at(10, j), 0.0f);
  }
}

TEST_P(MatMulBackendTest, DegenerateShapes) {
  // Single-row A (pure tail), single-column B, and inner dimension 1.
  ExpectMatchesNaive(RandomTensor(1, 8, 1), RandomTensor(8, 5, 2));
  ExpectMatchesNaive(RandomTensor(6, 8, 3), RandomTensor(8, 1, 4));
  ExpectMatchesNaive(RandomTensor(5, 1, 5), RandomTensor(1, 7, 6));
  ExpectMatchesNaive(RandomTensor(1, 1, 7), RandomTensor(1, 1, 8));
}

TEST_P(MatMulBackendTest, OverwritesStaleOutput) {
  const Tensor a = RandomTensor(4, 3, 9);
  const Tensor b = RandomTensor(3, 4, 10);
  Tensor c(4, 4);
  c.Fill(123.0f);
  MatMulInto(a, b, &c);
  const Tensor expected = NaiveMatMul(a, b);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      if (scalar()) {
        EXPECT_FLOAT_EQ(c.at(i, j), expected.at(i, j));
      } else {
        EXPECT_NEAR(c.at(i, j), expected.at(i, j), 1e-4);
      }
    }
  }
}

TEST_P(MatMulBackendTest, TransBAndTransAMatchNaive) {
  // dX = dY * W^T and dW = X^T * dY against naively transposed inputs.
  const Tensor a = RandomTensor(5, 3, 11);   // [m, k]
  const Tensor b = RandomTensor(7, 3, 12);   // [n, k]
  Tensor bt(3, 7);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor c(5, 7);
  MatMulTransBAccum(a, b, &c);
  const Tensor expected = NaiveMatMul(a, bt);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_NEAR(c.at(i, j), expected.at(i, j), 1e-5f);
    }
  }

  const Tensor x = RandomTensor(6, 4, 13);  // [m, k]
  const Tensor y = RandomTensor(6, 5, 14);  // [m, n]
  Tensor xt(4, 6);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 4; ++j) xt.at(j, i) = x.at(i, j);
  }
  Tensor dw(4, 5);
  MatMulTransAAccum(x, y, &dw);
  const Tensor expected_dw = NaiveMatMul(xt, y);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(dw.at(i, j), expected_dw.at(i, j), 1e-5f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, MatMulBackendTest,
                         testing::ValuesIn(AvailableBackends()),
                         BackendLabel);

}  // namespace
}  // namespace atnn::nn
