#include "nn/matmul.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace atnn::nn {
namespace {

/// Textbook i-p-j reference with the same per-row accumulation order as
/// the production kernel, so results are comparable with FLOAT_EQ rather
/// than a loose tolerance.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t p = 0; p < a.cols(); ++p) {
      const float a_val = a.at(i, p);
      for (int64_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += a_val * b.at(p, j);
      }
    }
  }
  return c;
}

Tensor RandomTensor(int64_t rows, int64_t cols, uint64_t seed,
                    double zero_fraction = 0.0) {
  Rng rng(seed);
  Tensor t(rows, cols);
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const bool zero = rng.Uniform() < zero_fraction;
      t.at(i, j) = zero ? 0.0f : static_cast<float>(rng.Normal(0.0, 1.0));
    }
  }
  return t;
}

void ExpectMatchesNaive(const Tensor& a, const Tensor& b) {
  Tensor c(a.rows(), b.cols());
  MatMulInto(a, b, &c);
  const Tensor expected = NaiveMatMul(a, b);
  for (int64_t i = 0; i < c.rows(); ++i) {
    for (int64_t j = 0; j < c.cols(); ++j) {
      EXPECT_FLOAT_EQ(c.at(i, j), expected.at(i, j))
          << "mismatch at (" << i << ", " << j << ") for shapes ["
          << a.rows() << "x" << a.cols() << "] * [" << b.rows() << "x"
          << b.cols() << "]";
    }
  }
}

TEST(MatMulIntoTest, RemainderRowsAfterFourRowBlocks) {
  // m % 4 in {1, 2, 3} exercises the scalar tail loop after the 4-row
  // blocked passes; m % 4 == 0 exercises the pure-blocked path.
  for (int64_t m : {1, 2, 3, 4, 5, 6, 7, 8, 9}) {
    ExpectMatchesNaive(RandomTensor(m, 5, 100 + static_cast<uint64_t>(m)),
                       RandomTensor(5, 6, 200 + static_cast<uint64_t>(m)));
  }
}

TEST(MatMulIntoTest, ZeroSkipRowsMatchNaive) {
  // Heavily sparse A hits the all-four-zero skip in the blocked loop and
  // the single-value skip in the tail loop; an all-zero A row must still
  // produce an exactly-zero C row.
  Tensor a = RandomTensor(11, 7, 42, /*zero_fraction=*/0.7);
  for (int64_t p = 0; p < a.cols(); ++p) a.at(2, p) = 0.0f;   // blocked row
  for (int64_t p = 0; p < a.cols(); ++p) a.at(10, p) = 0.0f;  // tail row
  const Tensor b = RandomTensor(7, 9, 43);
  ExpectMatchesNaive(a, b);

  Tensor c(11, 9);
  MatMulInto(a, b, &c);
  for (int64_t j = 0; j < 9; ++j) {
    EXPECT_EQ(c.at(2, j), 0.0f);
    EXPECT_EQ(c.at(10, j), 0.0f);
  }
}

TEST(MatMulIntoTest, DegenerateShapes) {
  // Single-row A (pure tail), single-column B, and inner dimension 1.
  ExpectMatchesNaive(RandomTensor(1, 8, 1), RandomTensor(8, 5, 2));
  ExpectMatchesNaive(RandomTensor(6, 8, 3), RandomTensor(8, 1, 4));
  ExpectMatchesNaive(RandomTensor(5, 1, 5), RandomTensor(1, 7, 6));
  ExpectMatchesNaive(RandomTensor(1, 1, 7), RandomTensor(1, 1, 8));
}

TEST(MatMulIntoTest, OverwritesStaleOutput) {
  const Tensor a = RandomTensor(4, 3, 9);
  const Tensor b = RandomTensor(3, 4, 10);
  Tensor c(4, 4);
  c.Fill(123.0f);
  MatMulInto(a, b, &c);
  const Tensor expected = NaiveMatMul(a, b);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(c.at(i, j), expected.at(i, j));
    }
  }
}

TEST(MatMulAccumTest, TransBAndTransAMatchNaive) {
  // dX = dY * W^T and dW = X^T * dY against naively transposed inputs.
  const Tensor a = RandomTensor(5, 3, 11);   // [m, k]
  const Tensor b = RandomTensor(7, 3, 12);   // [n, k]
  Tensor bt(3, 7);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor c(5, 7);
  MatMulTransBAccum(a, b, &c);
  const Tensor expected = NaiveMatMul(a, bt);
  for (int64_t i = 0; i < 5; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_NEAR(c.at(i, j), expected.at(i, j), 1e-5f);
    }
  }

  const Tensor x = RandomTensor(6, 4, 13);  // [m, k]
  const Tensor y = RandomTensor(6, 5, 14);  // [m, n]
  Tensor xt(4, 6);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 4; ++j) xt.at(j, i) = x.at(i, j);
  }
  Tensor dw(4, 5);
  MatMulTransAAccum(x, y, &dw);
  const Tensor expected_dw = NaiveMatMul(xt, y);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 5; ++j) {
      EXPECT_NEAR(dw.at(i, j), expected_dw.at(i, j), 1e-5f);
    }
  }
}

}  // namespace
}  // namespace atnn::nn
