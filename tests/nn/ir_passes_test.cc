#include "nn/ir/passes.h"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "common/rng.h"
#include "core/atnn.h"
#include "data/schema.h"
#include "data/tmall.h"
#include "nn/ir/plan.h"
#include "nn/ir/trace.h"
#include "nn/tensor.h"

namespace atnn::nn::ir {
namespace {

int32_t AddConst(Graph* graph, int64_t rows, int64_t cols,
                 const std::string& label, float base) {
  NodeDef def;
  def.kind = OpKind::kConstant;
  def.rows = rows;
  def.cols = cols;
  def.owned = Tensor(rows, cols);
  for (int64_t i = 0; i < def.owned.numel(); ++i) {
    def.owned.data()[i] = base + 0.125f * static_cast<float>(i);
  }
  def.data = def.owned.data();
  def.label = label;
  return graph->AddNode(std::move(def));
}

int32_t AddOp(Graph* graph, OpKind kind, std::vector<int32_t> inputs,
              int64_t rows, int64_t cols, bool batch_rows,
              float alpha = 0.0f) {
  NodeDef def;
  def.kind = kind;
  def.inputs = std::move(inputs);
  def.rows = rows;
  def.cols = cols;
  def.batch_rows = batch_rows;
  def.alpha = alpha;
  return graph->AddNode(std::move(def));
}

/// One graph exercising every default pass: a foldable constant subtree, a
/// dead node, a matmul+add_bias+relu chain the fuser collapses, and a tail
/// add_bias the in-place pass can alias. Rebuilt fresh per use — Graph is
/// intentionally not copy-safe once NodeDefs own tensors.
Graph MakeKitchenSinkGraph() {
  Graph graph;
  graph.set_dense_cols(4);
  NodeDef dense;
  dense.kind = OpKind::kDenseInput;
  dense.batch_rows = true;
  dense.rows = 3;
  dense.cols = 4;
  const int32_t x = graph.AddNode(std::move(dense));         // %0
  const int32_t w = AddConst(&graph, 4, 4, "w", 0.5f);       // %1
  const int32_t b = AddConst(&graph, 1, 4, "b", -0.25f);     // %2
  const int32_t c1 = AddConst(&graph, 1, 4, "c1", 1.0f);     // %3
  const int32_t c2 = AddConst(&graph, 1, 4, "c2", 2.0f);     // %4
  const int32_t folded =
      AddOp(&graph, OpKind::kAdd, {c1, c2}, 1, 4, false);    // %5
  const int32_t mm =
      AddOp(&graph, OpKind::kMatMul, {x, w}, 3, 4, true);    // %6
  const int32_t biased =
      AddOp(&graph, OpKind::kAddBias, {mm, b}, 3, 4, true);  // %7
  const int32_t relu =
      AddOp(&graph, OpKind::kRelu, {biased}, 3, 4, true);    // %8
  const int32_t out =
      AddOp(&graph, OpKind::kAddBias, {relu, folded}, 3, 4, true);  // %9
  AddOp(&graph, OpKind::kScale, {c1}, 1, 4, false, 2.0f);    // %10, dead
  graph.set_output(out);
  return graph;
}

// ---------------------------------------------------------------------------
// Golden dumps: the exact pre/post text form of every default pass, applied
// in pipeline order. Any change to a pass's rewrite or to ToText shows up
// as a readable diff here.
// ---------------------------------------------------------------------------

TEST(IrPassesTest, GoldenDumpsThroughTheDefaultPipeline) {
  Graph graph = MakeKitchenSinkGraph();
  ASSERT_TRUE(graph.Validate().ok()) << graph.Validate().ToString();

  EXPECT_EQ(graph.ToText(),
            "graph: nodes=11 fields=0 dense_cols=4\n"
            "%0 = dense_input : [Bx4]\n"
            "%1 = const \"w\" : [4x4]\n"
            "%2 = const \"b\" : [1x4]\n"
            "%3 = const \"c1\" : [1x4]\n"
            "%4 = const \"c2\" : [1x4]\n"
            "%5 = add(%3, %4) : [1x4]\n"
            "%6 = matmul(%0, %1) : [Bx4]\n"
            "%7 = add_bias(%6, %2) : [Bx4]\n"
            "%8 = relu(%7) : [Bx4]\n"
            "%9 = add_bias(%8, %5) : [Bx4]\n"
            "%10 = scale(%3, alpha=2) : [1x4]\n"
            "output %9\n");

  // Folding bakes the two all-constant computations (the add feeding the
  // output and the dead scale) into owned constants.
  int changes = 0;
  ASSERT_TRUE(RunPass(kConstantFolding, &graph, &changes).ok());
  EXPECT_EQ(changes, 2);
  EXPECT_EQ(graph.ToText(),
            "graph: nodes=11 fields=0 dense_cols=4\n"
            "%0 = dense_input : [Bx4]\n"
            "%1 = const \"w\" : [4x4]\n"
            "%2 = const \"b\" : [1x4]\n"
            "%3 = const \"c1\" : [1x4]\n"
            "%4 = const \"c2\" : [1x4]\n"
            "%5 = const \"folded\" : [1x4]\n"
            "%6 = matmul(%0, %1) : [Bx4]\n"
            "%7 = add_bias(%6, %2) : [Bx4]\n"
            "%8 = relu(%7) : [Bx4]\n"
            "%9 = add_bias(%8, %5) : [Bx4]\n"
            "%10 = const \"folded\" : [1x4]\n"
            "output %9\n");

  // DCE sweeps the dead (folded) scale and the constants folding orphaned.
  changes = 0;
  ASSERT_TRUE(RunPass(kDeadCodeElimination, &graph, &changes).ok());
  EXPECT_EQ(changes, 3);
  EXPECT_EQ(graph.ToText(),
            "graph: nodes=8 fields=0 dense_cols=4\n"
            "%0 = dense_input : [Bx4]\n"
            "%1 = const \"w\" : [4x4]\n"
            "%2 = const \"b\" : [1x4]\n"
            "%3 = const \"folded\" : [1x4]\n"
            "%4 = matmul(%0, %1) : [Bx4]\n"
            "%5 = add_bias(%4, %2) : [Bx4]\n"
            "%6 = relu(%5) : [Bx4]\n"
            "%7 = add_bias(%6, %3) : [Bx4]\n"
            "output %7\n");

  // Fusion collapses relu(add_bias(matmul)) into one dense_affine; the
  // bypassed pair goes dead until the next DCE.
  changes = 0;
  ASSERT_TRUE(RunPass(kEpilogueFusion, &graph, &changes).ok());
  EXPECT_EQ(changes, 1);
  EXPECT_EQ(graph.ToText(),
            "graph: nodes=8 fields=0 dense_cols=4\n"
            "%0 = dense_input : [Bx4]\n"
            "%1 = const \"w\" : [4x4]\n"
            "%2 = const \"b\" : [1x4]\n"
            "%3 = const \"folded\" : [1x4]\n"
            "%4 = matmul(%0, %1) : [Bx4]\n"
            "%5 = add_bias(%4, %2) : [Bx4]\n"
            "%6 = dense_affine(%0, %1, %2, act=relu) : [Bx4]\n"
            "%7 = add_bias(%6, %3) : [Bx4]\n"
            "output %7\n");

  changes = 0;
  ASSERT_TRUE(RunPass(kDeadCodeElimination, &graph, &changes).ok());
  EXPECT_EQ(changes, 2);

  // The tail add_bias reads the dense_affine exactly once at matching
  // shape: it may overwrite its input buffer.
  changes = 0;
  ASSERT_TRUE(RunPass(kInplaceRewrite, &graph, &changes).ok());
  EXPECT_EQ(changes, 1);
  EXPECT_EQ(graph.ToText(),
            "graph: nodes=6 fields=0 dense_cols=4\n"
            "%0 = dense_input : [Bx4]\n"
            "%1 = const \"w\" : [4x4]\n"
            "%2 = const \"b\" : [1x4]\n"
            "%3 = const \"folded\" : [1x4]\n"
            "%4 = dense_affine(%0, %1, %2, act=relu) : [Bx4]\n"
            "%5 = add_bias(%4, %3) : [Bx4] inplace\n"
            "output %5\n");
}

TEST(IrPassesTest, RunDefaultPassesReportsPerPassChanges) {
  Graph graph = MakeKitchenSinkGraph();
  std::string summary;
  ASSERT_TRUE(RunDefaultPasses(&graph, &summary).ok());
  EXPECT_EQ(summary, "fold:2 dce:3 fuse:1 dce:2 inplace:1");
  EXPECT_EQ(graph.size(), 6);
  EXPECT_TRUE(graph.Validate().ok());
}

// ---------------------------------------------------------------------------
// Idempotence: a second application of any pass is a no-op on the text form
// (and, for the rewriting passes, reports zero changes).
// ---------------------------------------------------------------------------

TEST(IrPassesTest, EveryPassIsIdempotent) {
  for (const Pass& pass : DefaultPasses()) {
    Graph graph = MakeKitchenSinkGraph();
    ASSERT_TRUE(RunPass(pass, &graph).ok()) << pass.name;
    const std::string once = graph.ToText();
    int second_changes = 0;
    ASSERT_TRUE(RunPass(pass, &graph, &second_changes).ok()) << pass.name;
    EXPECT_EQ(graph.ToText(), once) << pass.name;
    // The in-place pass recomputes its marks from scratch each run, so its
    // change count reflects marks set, not new rewrites.
    if (std::string(pass.name) != "inplace") {
      EXPECT_EQ(second_changes, 0) << pass.name;
    }
  }
}

TEST(IrPassesTest, WholePipelineIsIdempotent) {
  Graph graph = MakeKitchenSinkGraph();
  ASSERT_TRUE(RunDefaultPasses(&graph).ok());
  const std::string once = graph.ToText();
  std::string summary;
  ASSERT_TRUE(RunDefaultPasses(&graph, &summary).ok());
  EXPECT_EQ(graph.ToText(), once);
  EXPECT_EQ(summary, "fold:0 dce:0 fuse:0 dce:0 inplace:1");
}

// ---------------------------------------------------------------------------
// Property: passes never change the numbers. Any subset of the passes, in
// any order, compiled and executed on the real generator graph, produces
// output bytes identical to the untouched graph's.
// ---------------------------------------------------------------------------

class IrPassOrderPropertyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        core::testing_helpers::MakeNormalizedTinyDataset());
    core::AtnnConfig config;
    config.tower =
        core::testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = new core::AtnnModel(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, config);
  }

  static void TearDownTestSuite() {
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  /// Fresh trace of the generator forward (tracing is deterministic, so
  /// every call yields the same graph; Graph is rebuilt rather than copied
  /// because NodeDef::data may point into its own owned tensor).
  static Graph TraceGenerator() {
    constexpr int64_t kProbeBatch = 3;
    const data::BlockBatch probe =
        data::GatherBlock(dataset_->item_profiles, {0, 0, 0});
    auto graph = TraceGraph(kProbeBatch, [&] {
      return model_->GeneratorItemVector(probe);
    });
    ATNN_CHECK(graph.ok()) << graph.status().ToString();
    return std::move(graph).value();
  }

  /// Lowers `graph` as-is (no implicit pipeline) and runs one batch.
  static std::vector<float> ExecuteAsIs(Graph graph,
                                        const data::BlockBatch& block,
                                        int64_t batch) {
    CompiledPlan::Options options;
    options.max_batch = 8;
    options.optimize = false;
    auto plan = CompiledPlan::Compile(std::move(graph), options);
    ATNN_CHECK(plan.ok()) << plan.status().ToString();
    PlanScratch scratch;
    const auto out =
        (*plan)->Execute({&block.categorical, &block.numeric}, batch,
                         &scratch);
    ATNN_CHECK(out.ok()) << out.status().ToString();
    const size_t count =
        static_cast<size_t>(batch * (*plan)->output_cols());
    return {out.value(), out.value() + count};
  }

  static data::TmallDataset* dataset_;
  static core::AtnnModel* model_;
};

data::TmallDataset* IrPassOrderPropertyTest::dataset_ = nullptr;
core::AtnnModel* IrPassOrderPropertyTest::model_ = nullptr;

TEST_F(IrPassOrderPropertyTest, AnyPassOrderYieldsBitwiseIdenticalOutputs) {
  constexpr int64_t kBatch = 5;
  const std::vector<int64_t> rows = {0, 3, 7, 11, 2};
  const data::BlockBatch block =
      data::GatherBlock(dataset_->item_profiles, rows);

  const std::vector<float> baseline =
      ExecuteAsIs(TraceGenerator(), block, kBatch);
  ASSERT_FALSE(baseline.empty());

  const std::span<const Pass> passes = DefaultPasses();
  Rng rng(20260809);
  constexpr int kRounds = 12;
  for (int round = 0; round < kRounds; ++round) {
    Graph graph = TraceGenerator();
    std::string applied;
    const int length = static_cast<int>(rng.UniformInt(7));
    for (int i = 0; i < length; ++i) {
      const Pass& pass = passes[rng.UniformInt(passes.size())];
      ASSERT_TRUE(RunPass(pass, &graph).ok()) << pass.name;
      applied += std::string(pass.name) + " ";
    }
    const std::vector<float> out = ExecuteAsIs(std::move(graph), block,
                                               kBatch);
    ASSERT_EQ(out.size(), baseline.size()) << "order: " << applied;
    EXPECT_EQ(std::memcmp(out.data(), baseline.data(),
                          out.size() * sizeof(float)),
              0)
        << "order: " << applied;
  }

  // The shipped pipeline (what optimize=true runs) is covered explicitly.
  Graph graph = TraceGenerator();
  ASSERT_TRUE(RunDefaultPasses(&graph).ok());
  const std::vector<float> optimized = ExecuteAsIs(std::move(graph), block,
                                                   kBatch);
  EXPECT_EQ(std::memcmp(optimized.data(), baseline.data(),
                        baseline.size() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace atnn::nn::ir
