// Tests for the regularization features: Dropout, LayerNorm, AdamW weight
// decay and learning-rate decay.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/ops.h"

namespace atnn::nn {
namespace {

TEST(DropoutTest, InferenceModeIsIdentity) {
  Rng rng(1);
  Var x = Constant(Tensor::Full(4, 8, 2.0f));
  Var y = Dropout(x, 0.5f, &rng, /*training=*/false);
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    EXPECT_EQ(y.value().data()[i], 2.0f);
  }
}

TEST(DropoutTest, ZeroRateIsIdentity) {
  Rng rng(2);
  Var x = Constant(Tensor::Full(2, 4, 3.0f));
  Var y = Dropout(x, 0.0f, &rng, /*training=*/true);
  EXPECT_EQ(y.value().Sum(), x.value().Sum());
}

TEST(DropoutTest, TrainingDropsAndRescales) {
  Rng rng(3);
  Var x = Constant(Tensor::Full(100, 100, 1.0f));
  Var y = Dropout(x, 0.4f, &rng, /*training=*/true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.value().numel(); ++i) {
    const float v = y.value().data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5f);  // inverted dropout scale
    }
  }
  EXPECT_NEAR(double(zeros) / 10000.0, 0.4, 0.02);
  // Expectation is preserved.
  EXPECT_NEAR(y.value().Mean(), 1.0, 0.03);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(4);
  Var x = Leaf(Tensor::Full(10, 10, 1.0f));
  Var y = Dropout(x, 0.5f, &rng, /*training=*/true);
  Var loss = ReduceSum(y);
  Backward(loss);
  // Gradient is zero exactly where the output was dropped.
  for (int64_t i = 0; i < x.value().numel(); ++i) {
    if (y.value().data()[i] == 0.0f) {
      EXPECT_EQ(x.grad().data()[i], 0.0f);
    } else {
      EXPECT_NEAR(x.grad().data()[i], 2.0f, 1e-5f);  // 1/(1-0.5)
    }
  }
}

TEST(DropoutTest, DeterministicForSeed) {
  Rng rng_a(9);
  Rng rng_b(9);
  Var x = Constant(Tensor::Full(5, 5, 1.0f));
  Var a = Dropout(x, 0.3f, &rng_a, true);
  Var b = Dropout(x, 0.3f, &rng_b, true);
  for (int64_t i = 0; i < a.value().numel(); ++i) {
    EXPECT_EQ(a.value().data()[i], b.value().data()[i]);
  }
}

TEST(LayerNormTest, NormalizesRowsToZeroMeanUnitVariance) {
  Rng rng(5);
  Tensor data(4, 16);
  for (int64_t i = 0; i < data.numel(); ++i) {
    data.data()[i] = static_cast<float>(rng.Normal(3.0, 2.5));
  }
  Var gamma = Constant(Tensor::Ones(1, 16));
  Var beta = Constant(Tensor::Zeros(1, 16));
  Var y = LayerNorm(Constant(data), gamma, beta);
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0.0;
    double var = 0.0;
    for (int64_t c = 0; c < 16; ++c) mean += y.value().at(r, c);
    mean /= 16.0;
    for (int64_t c = 0; c < 16; ++c) {
      const double d = y.value().at(r, c) - mean;
      var += d * d;
    }
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNormTest, GammaBetaShiftAndScale) {
  Tensor data(1, 4, {1, 2, 3, 4});
  Var gamma = Constant(Tensor::Full(1, 4, 2.0f));
  Var beta = Constant(Tensor::Full(1, 4, 10.0f));
  Var y = LayerNorm(Constant(data), gamma, beta);
  double mean = 0.0;
  for (int64_t c = 0; c < 4; ++c) mean += y.value().at(0, c);
  EXPECT_NEAR(mean / 4.0, 10.0, 1e-5);  // beta shifts the mean
}

TEST(LayerNormLayerTest, ParametersAndForward) {
  LayerNormLayer layer("ln", 8);
  EXPECT_EQ(layer.Parameters().size(), 2u);
  EXPECT_EQ(layer.NumParameterElements(), 16);
  Var out = layer.Forward(Constant(Tensor::Full(3, 8, 5.0f)));
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 8);
  // Constant rows normalize to beta (0) regardless of the input value.
  for (int64_t i = 0; i < out.value().numel(); ++i) {
    EXPECT_NEAR(out.value().data()[i], 0.0f, 1e-2f);
  }
}

TEST(AdamWTest, WeightDecayShrinksUnusedDirections) {
  // With zero gradient signal, decoupled decay pulls weights toward zero.
  Parameter w("w", Tensor::Full(1, 4, 1.0f));
  Adam adam({&w}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f);
  for (int step = 0; step < 50; ++step) {
    adam.ZeroGrad();
    // Loss independent of w beyond a tiny epsilon coupling keeps grads ~0.
    Var loss = Scale(ReduceSum(w.var()), 0.0f);
    Backward(loss);
    adam.Step();
  }
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_LT(w.value().at(0, c), 0.7f);
    EXPECT_GT(w.value().at(0, c), 0.0f);
  }
}

TEST(AdamWTest, NoDecayKeepsWeightsWithZeroGradient) {
  Parameter w("w", Tensor::Full(1, 4, 1.0f));
  Adam adam({&w}, 0.1f);
  adam.ZeroGrad();
  Var loss = Scale(ReduceSum(w.var()), 0.0f);
  Backward(loss);
  adam.Step();
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(w.value().at(0, c), 1.0f);
  }
}

}  // namespace
}  // namespace atnn::nn
