// Property-based sweeps over the op library: algebraic identities and
// invariants that must hold for any shape, checked over a parameterized
// grid of matrix sizes with seeded random contents.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/ops.h"

namespace atnn::nn {
namespace {

struct Shape {
  int64_t rows;
  int64_t cols;
};

void PrintTo(const Shape& s, std::ostream* os) {
  *os << s.rows << "x" << s.cols;
}

class OpsPropertyTest : public testing::TestWithParam<Shape> {
 protected:
  Tensor Random(int64_t rows, int64_t cols, uint64_t seed,
                float lo = -2.0f, float hi = 2.0f) {
    Rng rng(seed);
    Tensor t(rows, cols);
    for (int64_t i = 0; i < t.numel(); ++i) {
      t.data()[i] = static_cast<float>(rng.Uniform(lo, hi));
    }
    return t;
  }

  static void ExpectNear(const Tensor& a, const Tensor& b, float tol) {
    ASSERT_TRUE(a.SameShape(b));
    for (int64_t i = 0; i < a.numel(); ++i) {
      EXPECT_NEAR(a.data()[i], b.data()[i], tol) << "element " << i;
    }
  }
};

TEST_P(OpsPropertyTest, AddIsCommutative) {
  const auto [rows, cols] = GetParam();
  Var a = Constant(Random(rows, cols, 1));
  Var b = Constant(Random(rows, cols, 2));
  ExpectNear(Add(a, b).value(), Add(b, a).value(), 0.0f);
}

TEST_P(OpsPropertyTest, MulIsCommutative) {
  const auto [rows, cols] = GetParam();
  Var a = Constant(Random(rows, cols, 3));
  Var b = Constant(Random(rows, cols, 4));
  ExpectNear(Mul(a, b).value(), Mul(b, a).value(), 0.0f);
}

TEST_P(OpsPropertyTest, SubOfSelfIsZero) {
  const auto [rows, cols] = GetParam();
  Var a = Constant(Random(rows, cols, 5));
  EXPECT_EQ(Sub(a, a).value().AbsMax(), 0.0f);
}

TEST_P(OpsPropertyTest, ConcatThenSliceRecoversParts) {
  const auto [rows, cols] = GetParam();
  Var a = Constant(Random(rows, cols, 6));
  Var b = Constant(Random(rows, cols + 1, 7));
  Var joined = ConcatCols({a, b});
  ExpectNear(SliceCols(joined, 0, cols).value(), a.value(), 0.0f);
  ExpectNear(SliceCols(joined, cols, 2 * cols + 1).value(), b.value(), 0.0f);
}

TEST_P(OpsPropertyTest, MatMulWithIdentityIsNoop) {
  const auto [rows, cols] = GetParam();
  Var a = Constant(Random(rows, cols, 8));
  Tensor eye(cols, cols);
  for (int64_t i = 0; i < cols; ++i) eye.at(i, i) = 1.0f;
  ExpectNear(MatMul(a, Constant(eye)).value(), a.value(), 1e-5f);
}

TEST_P(OpsPropertyTest, MatMulDistributesOverAdd) {
  const auto [rows, cols] = GetParam();
  Var a = Constant(Random(rows, cols, 9));
  Var b = Constant(Random(rows, cols, 10));
  Var w = Constant(Random(cols, 3, 11));
  ExpectNear(MatMul(Add(a, b), w).value(),
             Add(MatMul(a, w), MatMul(b, w)).value(), 1e-4f);
}

TEST_P(OpsPropertyTest, SigmoidBoundsAndSymmetry) {
  const auto [rows, cols] = GetParam();
  Tensor data = Random(rows, cols, 12, -6.0f, 6.0f);
  Var pos = Sigmoid(Constant(data));
  Tensor negated = data;
  negated.Scale(-1.0f);
  Var neg = Sigmoid(Constant(negated));
  for (int64_t i = 0; i < data.numel(); ++i) {
    const float p = pos.value().data()[i];
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
    // sigmoid(-x) = 1 - sigmoid(x)
    EXPECT_NEAR(neg.value().data()[i], 1.0f - p, 1e-6f);
  }
}

TEST_P(OpsPropertyTest, ReluPlusNegatedReluIsIdentityMinusAbs) {
  // relu(x) - relu(-x) = x for all x.
  const auto [rows, cols] = GetParam();
  Tensor data = Random(rows, cols, 13);
  Var x = Constant(data);
  Tensor negated = data;
  negated.Scale(-1.0f);
  Var reconstructed = Sub(Relu(x), Relu(Constant(negated)));
  ExpectNear(reconstructed.value(), data, 1e-6f);
}

TEST_P(OpsPropertyTest, RowwiseSumMatchesReduceOverRows) {
  const auto [rows, cols] = GetParam();
  Tensor data = Random(rows, cols, 14);
  Var sums = RowwiseSum(Constant(data));
  for (int64_t r = 0; r < rows; ++r) {
    double expected = 0.0;
    for (int64_t c = 0; c < cols; ++c) expected += data.at(r, c);
    EXPECT_NEAR(sums.value().at(r, 0), expected, 1e-4);
  }
}

TEST_P(OpsPropertyTest, RowwiseDotWithSelfIsSquaredNorm) {
  const auto [rows, cols] = GetParam();
  Var a = Constant(Random(rows, cols, 15));
  Var dot = RowwiseDot(a, a);
  Var norm = RowwiseNorm(a, 0.0f);
  for (int64_t r = 0; r < rows; ++r) {
    EXPECT_NEAR(dot.value().at(r, 0),
                norm.value().at(r, 0) * norm.value().at(r, 0), 1e-3);
  }
}

TEST_P(OpsPropertyTest, CosineSimilarityOfSelfIsOne) {
  const auto [rows, cols] = GetParam();
  // Bounded away from zero so norms are stable.
  Var a = Constant(Random(rows, cols, 16, 0.5f, 2.0f));
  Var cosine = CosineSimilarityRows(a, a);
  for (int64_t r = 0; r < rows; ++r) {
    EXPECT_NEAR(cosine.value().at(r, 0), 1.0f, 1e-4f);
  }
}

TEST_P(OpsPropertyTest, CosineSimilarityScaleInvariant) {
  const auto [rows, cols] = GetParam();
  Var a = Constant(Random(rows, cols, 17, 0.5f, 2.0f));
  Var b = Constant(Random(rows, cols, 18, 0.5f, 2.0f));
  Var base = CosineSimilarityRows(a, b);
  Var scaled = CosineSimilarityRows(Scale(a, 7.5f), b);
  ExpectNear(base.value(), scaled.value(), 1e-4f);
}

TEST_P(OpsPropertyTest, BceLossNonNegativeAndZeroAtCertainty) {
  const auto [rows, cols] = GetParam();
  (void)cols;  // loss heads are [n, 1]
  Tensor labels(rows, 1);
  Rng rng(19);
  for (int64_t r = 0; r < rows; ++r) {
    labels.at(r, 0) = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  Var logits = Constant(Random(rows, 1, 20, -3.0f, 3.0f));
  EXPECT_GE(SigmoidBceLossWithLogits(logits, labels).value().scalar(), 0.0f);

  // Extreme correct logits -> loss near zero.
  Tensor confident(rows, 1);
  for (int64_t r = 0; r < rows; ++r) {
    confident.at(r, 0) = labels.at(r, 0) > 0.5f ? 30.0f : -30.0f;
  }
  EXPECT_NEAR(
      SigmoidBceLossWithLogits(Constant(confident), labels).value().scalar(),
      0.0f, 1e-6f);
}

TEST_P(OpsPropertyTest, BackwardTwiceDoublesGradient) {
  const auto [rows, cols] = GetParam();
  Var x = Leaf(Random(rows, cols, 21));
  Var loss1 = ReduceMean(Square(x));
  Backward(loss1);
  Tensor once = x.grad();
  Var loss2 = ReduceMean(Square(x));
  Backward(loss2);
  for (int64_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(x.grad().data()[i], 2.0f * once.data()[i], 1e-5f);
  }
}

TEST_P(OpsPropertyTest, MseLossZeroIffEqual) {
  const auto [rows, cols] = GetParam();
  Tensor target = Random(rows, cols, 22);
  EXPECT_NEAR(MseLoss(Constant(target), target).value().scalar(), 0.0f,
              1e-7f);
  Tensor shifted = target;
  shifted.at(0, 0) += 1.0f;
  EXPECT_GT(MseLoss(Constant(shifted), target).value().scalar(), 0.0f);
}

TEST_P(OpsPropertyTest, MeanRowsOfConstantRowsIsThatRow) {
  const auto [rows, cols] = GetParam();
  Tensor row = Random(1, cols, 23);
  Tensor stacked(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    std::copy(row.data(), row.data() + cols, stacked.row_ptr(r));
  }
  ExpectNear(MeanRows(Constant(stacked)).value(), row, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OpsPropertyTest,
    testing::Values(Shape{1, 1}, Shape{1, 7}, Shape{5, 1}, Shape{3, 4},
                    Shape{8, 8}, Shape{17, 33}, Shape{64, 5}),
    [](const testing::TestParamInfo<Shape>& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols);
    });

}  // namespace
}  // namespace atnn::nn
