#include "nn/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/autograd.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace atnn::nn::kernels {
namespace {

/// Restores the dispatched backend when a test body returns.
class BackendGuard {
 public:
  BackendGuard() : previous_(ActiveBackend()) {}
  ~BackendGuard() { (void)SetBackend(previous_); }

 private:
  Backend previous_;
};

std::vector<float> RandomVector(size_t n, uint64_t seed,
                                double zero_fraction = 0.0) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) {
    x = rng.Uniform() < zero_fraction
            ? 0.0f
            : static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return v;
}

// Sizes straddling the 16- and 8-wide column tiles plus ragged tails
// (n % 8 != 0) and sub-vector-width cases.
constexpr int64_t kSizes[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 24, 31, 33, 64,
                              100};

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(KernelDispatchTest, BackendNames) {
  EXPECT_STREQ(BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(BackendName(Backend::kAvx2), "avx2");
}

TEST(KernelDispatchTest, SetBackendScalarAlwaysWorks) {
  BackendGuard guard;
  ASSERT_TRUE(SetBackend(Backend::kScalar).ok());
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_EQ(&Kernels(), &Table(Backend::kScalar));
}

TEST(KernelDispatchTest, SetBackendAvx2MatchesCpuSupport) {
  BackendGuard guard;
  const Status status = SetBackend(Backend::kAvx2);
  if (Avx2Supported()) {
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(ActiveBackend(), Backend::kAvx2);
    EXPECT_EQ(&Kernels(), &Table(Backend::kAvx2));
  } else {
    EXPECT_FALSE(status.ok());
  }
}

TEST(KernelDispatchTest, SetBackendFromString) {
  BackendGuard guard;
  ASSERT_TRUE(SetBackendFromString("scalar").ok());
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);

  ASSERT_TRUE(SetBackendFromString("auto").ok());
  EXPECT_EQ(ActiveBackend(),
            Avx2Supported() ? Backend::kAvx2 : Backend::kScalar);

  EXPECT_EQ(SetBackendFromString("avx2").ok(), Avx2Supported());
  EXPECT_FALSE(SetBackendFromString("sse9").ok());
  EXPECT_FALSE(SetBackendFromString("").ok());
  EXPECT_FALSE(SetBackendFromString("AVX2").ok());  // case-sensitive
}

// ---------------------------------------------------------------------------
// AVX2 kernels vs the scalar reference table. Elementwise kernels whose
// vector lanes perform the exact same operation per element (scale, add,
// bias_identity, bias_relu) must match bitwise; reductions and FMA-based
// kernels reassociate or round once instead of twice, so they get a
// tolerance.
// ---------------------------------------------------------------------------

class Avx2VsScalarTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Supported()) GTEST_SKIP() << "host lacks AVX2+FMA";
  }
  const KernelTable& scalar() { return Table(Backend::kScalar); }
  const KernelTable& avx2() { return Table(Backend::kAvx2); }
};

TEST_F(Avx2VsScalarTest, Gemm) {
  for (int64_t m : {1, 3, 4, 5, 8}) {
    for (int64_t n : kSizes) {
      const int64_t k = 7;
      const auto a = RandomVector(static_cast<size_t>(m * k), 1000 + n);
      const auto b = RandomVector(static_cast<size_t>(k * n), 2000 + n);
      std::vector<float> c_scalar(static_cast<size_t>(m * n));
      std::vector<float> c_avx2(static_cast<size_t>(m * n));
      scalar().gemm(m, k, n, a.data(), b.data(), c_scalar.data());
      avx2().gemm(m, k, n, a.data(), b.data(), c_avx2.data());
      for (size_t i = 0; i < c_scalar.size(); ++i) {
        EXPECT_NEAR(c_avx2[i], c_scalar[i], 1e-4)
            << "m=" << m << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST_F(Avx2VsScalarTest, GemmTransBAccumulates) {
  for (int64_t k : kSizes) {
    const int64_t m = 5, n = 6;
    const auto a = RandomVector(static_cast<size_t>(m * k), 10 + k);
    const auto b = RandomVector(static_cast<size_t>(n * k), 20 + k);
    // Pre-fill C to pin the += contract.
    auto c_scalar = RandomVector(static_cast<size_t>(m * n), 30 + k);
    auto c_avx2 = c_scalar;
    scalar().gemm_trans_b_accum(m, k, n, a.data(), b.data(), c_scalar.data());
    avx2().gemm_trans_b_accum(m, k, n, a.data(), b.data(), c_avx2.data());
    for (size_t i = 0; i < c_scalar.size(); ++i) {
      EXPECT_NEAR(c_avx2[i], c_scalar[i], 1e-4) << "k=" << k << " i=" << i;
    }
  }
}

TEST_F(Avx2VsScalarTest, GemmTransAAccumulatesWithSparseA) {
  for (int64_t n : kSizes) {
    const int64_t m = 6, k = 5;
    // 60% zeros exercises the shared zero-skip on both backends.
    const auto a =
        RandomVector(static_cast<size_t>(m * k), 40 + n, /*zero_fraction=*/0.6);
    const auto b = RandomVector(static_cast<size_t>(m * n), 50 + n);
    auto c_scalar = RandomVector(static_cast<size_t>(k * n), 60 + n);
    auto c_avx2 = c_scalar;
    scalar().gemm_trans_a_accum(m, k, n, a.data(), b.data(), c_scalar.data());
    avx2().gemm_trans_a_accum(m, k, n, a.data(), b.data(), c_avx2.data());
    for (size_t i = 0; i < c_scalar.size(); ++i) {
      EXPECT_NEAR(c_avx2[i], c_scalar[i], 1e-4) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(Avx2VsScalarTest, Axpy) {
  for (int64_t n : kSizes) {
    const auto x = RandomVector(static_cast<size_t>(n), 70 + n);
    auto y_scalar = RandomVector(static_cast<size_t>(n), 80 + n);
    auto y_avx2 = y_scalar;
    scalar().axpy(n, 0.37f, x.data(), y_scalar.data());
    avx2().axpy(n, 0.37f, x.data(), y_avx2.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y_avx2[i], y_scalar[i], 1e-6) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(Avx2VsScalarTest, ScaleBitwise) {
  for (int64_t n : kSizes) {
    auto x_scalar = RandomVector(static_cast<size_t>(n), 90 + n);
    auto x_avx2 = x_scalar;
    scalar().scale(n, -1.75f, x_scalar.data());
    avx2().scale(n, -1.75f, x_avx2.data());
    EXPECT_EQ(std::memcmp(x_scalar.data(), x_avx2.data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0)
        << "n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, AddBitwise) {
  for (int64_t n : kSizes) {
    const auto x = RandomVector(static_cast<size_t>(n), 100 + n);
    auto y_scalar = RandomVector(static_cast<size_t>(n), 110 + n);
    auto y_avx2 = y_scalar;
    scalar().add(n, x.data(), y_scalar.data());
    avx2().add(n, x.data(), y_avx2.data());
    EXPECT_EQ(std::memcmp(y_scalar.data(), y_avx2.data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0)
        << "n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, SumAndSquaredNorm) {
  for (int64_t n : kSizes) {
    const auto x = RandomVector(static_cast<size_t>(n), 120 + n);
    EXPECT_NEAR(avx2().sum(n, x.data()), scalar().sum(n, x.data()), 1e-10)
        << "n=" << n;
    EXPECT_NEAR(avx2().squared_norm(n, x.data()),
                scalar().squared_norm(n, x.data()), 1e-10)
        << "n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, Dot) {
  for (int64_t n : kSizes) {
    const auto x = RandomVector(static_cast<size_t>(n), 130 + n);
    const auto y = RandomVector(static_cast<size_t>(n), 140 + n);
    EXPECT_NEAR(avx2().dot(n, x.data(), y.data()),
                scalar().dot(n, x.data(), y.data()),
                1e-4 * std::max<int64_t>(n, 1))
        << "n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, BiasEpilogues) {
  for (int64_t cols : kSizes) {
    const int64_t rows = 3;
    const auto bias = RandomVector(static_cast<size_t>(cols), 150 + cols);
    const auto base =
        RandomVector(static_cast<size_t>(rows * cols), 160 + cols);

    // identity and relu: one add (and one max) per element, bitwise.
    for (int variant = 0; variant < 2; ++variant) {
      auto x_scalar = base;
      auto x_avx2 = base;
      if (variant == 0) {
        scalar().bias_identity(rows, cols, bias.data(), x_scalar.data());
        avx2().bias_identity(rows, cols, bias.data(), x_avx2.data());
      } else {
        scalar().bias_relu(rows, cols, bias.data(), x_scalar.data());
        avx2().bias_relu(rows, cols, bias.data(), x_avx2.data());
      }
      EXPECT_EQ(std::memcmp(x_scalar.data(), x_avx2.data(),
                            x_scalar.size() * sizeof(float)),
                0)
          << "variant=" << variant << " cols=" << cols;
    }

    // sigmoid: Exp256 is a polynomial approximation, tolerance-equal.
    auto x_scalar = base;
    auto x_avx2 = base;
    scalar().bias_sigmoid(rows, cols, bias.data(), x_scalar.data());
    avx2().bias_sigmoid(rows, cols, bias.data(), x_avx2.data());
    for (size_t i = 0; i < x_scalar.size(); ++i) {
      EXPECT_NEAR(x_avx2[i], x_scalar[i], 1e-6) << "cols=" << cols;
      EXPECT_GE(x_avx2[i], 0.0f);
      EXPECT_LE(x_avx2[i], 1.0f);
    }
  }
}

TEST_F(Avx2VsScalarTest, UnalignedRowStarts) {
  // Feed pointers offset by one float so no vector load is 32-byte aligned;
  // kernels use unaligned loads and must not care.
  const int64_t n = 37;
  const auto x = RandomVector(static_cast<size_t>(n) + 1, 170);
  auto y_scalar = RandomVector(static_cast<size_t>(n) + 1, 171);
  auto y_avx2 = y_scalar;
  scalar().add(n, x.data() + 1, y_scalar.data() + 1);
  avx2().add(n, x.data() + 1, y_avx2.data() + 1);
  EXPECT_EQ(std::memcmp(y_scalar.data(), y_avx2.data(),
                        y_scalar.size() * sizeof(float)),
            0);

  const auto a = RandomVector(3 * 5 + 1, 172);
  const auto b = RandomVector(5 * static_cast<size_t>(n) + 1, 173);
  std::vector<float> c_scalar(3 * static_cast<size_t>(n) + 1);
  std::vector<float> c_avx2(c_scalar.size());
  scalar().gemm(3, 5, n, a.data() + 1, b.data() + 1, c_scalar.data() + 1);
  avx2().gemm(3, 5, n, a.data() + 1, b.data() + 1, c_avx2.data() + 1);
  for (size_t i = 1; i < c_scalar.size(); ++i) {
    EXPECT_NEAR(c_avx2[i], c_scalar[i], 1e-4) << "i=" << i;
  }
}

TEST_F(Avx2VsScalarTest, NanAndInfPropagation) {
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kInf = std::numeric_limits<float>::infinity();

  // bias_relu: a NaN sum must survive the max on both backends
  // (std::max(nan, 0) == nan; _mm256_max_ps(zero, v) returns v on NaN).
  for (const KernelTable* table : {&scalar(), &avx2()}) {
    std::vector<float> x = {kNan, -1.0f, 2.0f, kInf, -kInf, 0.5f, -0.5f,
                            1.5f, kNan};
    const std::vector<float> bias(x.size(), 0.0f);
    table->bias_relu(1, static_cast<int64_t>(x.size()), bias.data(), x.data());
    EXPECT_TRUE(std::isnan(x[0]));
    EXPECT_EQ(x[1], 0.0f);
    EXPECT_EQ(x[3], kInf);
    EXPECT_EQ(x[4], 0.0f);  // max(0, -inf)
    EXPECT_TRUE(std::isnan(x[8]));  // NaN in the scalar tail (9 % 8 == 1)

    // bias_sigmoid: NaN in, NaN out (the AVX2 path restores NaN after the
    // clamped Exp256); +/-inf saturate to the asymptotes.
    std::vector<float> s = {kNan, 0.0f, 100.0f, -100.0f, kInf, -kInf, 1.0f,
                            -1.0f, kNan};
    table->bias_sigmoid(1, static_cast<int64_t>(s.size()), bias.data(),
                        s.data());
    EXPECT_TRUE(std::isnan(s[0]));
    EXPECT_FLOAT_EQ(s[1], 0.5f);
    EXPECT_FLOAT_EQ(s[2], 1.0f);
    // Saturation: the AVX2 exp clamps its argument, leaving a denormal
    // rather than an exact zero, so compare with a tolerance.
    EXPECT_NEAR(s[3], 0.0f, 1e-6);
    EXPECT_FLOAT_EQ(s[4], 1.0f);
    EXPECT_NEAR(s[5], 0.0f, 1e-6);
    EXPECT_TRUE(std::isnan(s[8]));

    // gemm: 0 * inf inside the accumulation must produce NaN.
    const std::vector<float> a = {0.0f, 1.0f};
    const std::vector<float> b = {kInf, 3.0f};
    std::vector<float> c = {0.0f};
    table->gemm(1, 2, 1, a.data(), b.data(), c.data());
    EXPECT_TRUE(std::isnan(c[0]));
  }
}

// ---------------------------------------------------------------------------
// Fused DenseAffine vs the unfused Activate(AddBias(MatMul)) chain. On the
// scalar backend the contract is bitwise equality of both the forward
// values and every input gradient — this is the op-level half of the
// "--atnn_kernel=scalar reproduces the pre-PR training run" guarantee.
// ---------------------------------------------------------------------------

class FusedDenseAffineTest : public testing::TestWithParam<Activation> {
 protected:
  void SetUp() override {
    ATNN_CHECK(SetBackend(Backend::kScalar).ok());
  }
  void TearDown() override { (void)SetBackend(guard_previous_); }

 private:
  Backend guard_previous_ = ActiveBackend();
};

Var UnfusedChain(const Var& x, const Var& w, const Var& b, Activation act) {
  const Var z = AddBias(MatMul(x, w), b);
  switch (act) {
    case Activation::kIdentity:
      return z;
    case Activation::kRelu:
      return Relu(z);
    case Activation::kSigmoid:
      return Sigmoid(z);
    default:
      ATNN_CHECK(false) << "unsupported activation in test";
      return z;
  }
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0)
      << what << " differs between fused and unfused paths";
}

TEST_P(FusedDenseAffineTest, ForwardAndBackwardBitwiseMatchUnfused) {
  const Activation act = GetParam();
  Rng rng(7);
  Tensor x_init(9, 6);   // 9 rows: blocked + tail GEMM paths
  Tensor w_init(6, 11);  // 11 cols: ragged epilogue tail
  Tensor b_init(1, 11);
  for (int64_t i = 0; i < x_init.numel(); ++i) {
    x_init.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  for (int64_t i = 0; i < w_init.numel(); ++i) {
    w_init.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  for (int64_t i = 0; i < b_init.numel(); ++i) {
    b_init.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }

  Var x_f = Leaf(x_init), w_f = Leaf(w_init), b_f = Leaf(b_init);
  const Var fused = DenseAffine(x_f, w_f, b_f, act);
  Backward(fused);

  Var x_u = Leaf(x_init), w_u = Leaf(w_init), b_u = Leaf(b_init);
  const Var unfused = UnfusedChain(x_u, w_u, b_u, act);
  Backward(unfused);

  ExpectBitwiseEqual(fused.value(), unfused.value(), "forward value");
  ExpectBitwiseEqual(x_f.grad(), x_u.grad(), "dX");
  ExpectBitwiseEqual(w_f.grad(), w_u.grad(), "dW");
  ExpectBitwiseEqual(b_f.grad(), b_u.grad(), "db");
}

INSTANTIATE_TEST_SUITE_P(Activations, FusedDenseAffineTest,
                         testing::Values(Activation::kIdentity,
                                         Activation::kRelu,
                                         Activation::kSigmoid),
                         [](const testing::TestParamInfo<Activation>& info) {
                           switch (info.param) {
                             case Activation::kIdentity:
                               return "identity";
                             case Activation::kRelu:
                               return "relu";
                             default:
                               return "sigmoid";
                           }
                         });

// ---------------------------------------------------------------------------
// Sigmoid epilogue saturation boundary (regression). Near ±88.72 the
// scalar std::exp overflows to Inf while the AVX2 polynomial clamps its
// argument, which used to leave one family at exactly 0.0f and the other
// at a subnormal ~4e-39 — millions of ULPs apart on inputs the
// int8-dequant epilogue can produce. Both families now saturate to exact
// 0/1 outside ±88.3762626647949 (Exp256's clamp bound; the true sigmoid
// is within half an ULP of 0/1 well before that).
// ---------------------------------------------------------------------------

constexpr float kSigmoidBoundary = 88.3762626647949f;
constexpr float kSaturatedInputs[] = {
    kSigmoidBoundary, 88.72f, 89.0f, 100.0f, 1000.0f,
    std::numeric_limits<float>::infinity()};

TEST(SigmoidSaturationTest, ScalarSaturatesToExactZeroAndOne) {
  const KernelTable& table = Table(Backend::kScalar);
  const float zero_bias = 0.0f;
  for (const float z : kSaturatedInputs) {
    float pos = z;
    float neg = -z;
    table.bias_sigmoid(1, 1, &zero_bias, &pos);
    table.bias_sigmoid(1, 1, &zero_bias, &neg);
    EXPECT_EQ(pos, 1.0f) << "sigmoid(" << z << ")";
    EXPECT_EQ(neg, 0.0f) << "sigmoid(" << -z << ")";
  }
}

TEST(SigmoidSaturationTest, InteriorStaysSmoothAndNanPropagates) {
  const KernelTable& table = Table(Backend::kScalar);
  const float zero_bias = 0.0f;
  float mid = 0.0f;
  table.bias_sigmoid(1, 1, &zero_bias, &mid);
  EXPECT_FLOAT_EQ(mid, 0.5f);
  float interior = 15.0f;
  table.bias_sigmoid(1, 1, &zero_bias, &interior);
  EXPECT_GT(interior, 0.999f);
  EXPECT_LT(interior, 1.0f);  // not yet saturated
  float nan = std::numeric_limits<float>::quiet_NaN();
  table.bias_sigmoid(1, 1, &zero_bias, &nan);
  EXPECT_TRUE(std::isnan(nan));
}

TEST_F(Avx2VsScalarTest, BiasSigmoidBoundaryBitwise) {
  // 18 columns: two full 8-lanes plus a ragged tail, covering the vector
  // and tail code paths with every boundary input in both signs plus NaN.
  std::vector<float> inputs;
  for (const float z : kSaturatedInputs) {
    inputs.push_back(z);
    inputs.push_back(-z);
  }
  inputs.push_back(std::numeric_limits<float>::quiet_NaN());
  while (inputs.size() % 18 != 0) inputs.push_back(88.0f);
  const std::vector<float> bias(18, 0.0f);

  std::vector<float> a = inputs;
  std::vector<float> b = inputs;
  scalar().bias_sigmoid(static_cast<int64_t>(a.size()) / 18, 18,
                        bias.data(), a.data());
  avx2().bias_sigmoid(static_cast<int64_t>(b.size()) / 18, 18, bias.data(),
                      b.data());
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(inputs[i])) {
      EXPECT_TRUE(std::isnan(a[i]) && std::isnan(b[i])) << i;
    } else {
      EXPECT_EQ(a[i], b[i]) << "input " << inputs[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Low-precision kernels (int8 / bf16). The int8 chain is held to the
// bitwise gate: integer accumulation is exact and the dequant epilogue is
// two single-rounded multiplies on both backends. gemm_bf16 uses FMA on
// AVX2 and gets a tolerance like the fp32 GEMMs.
// ---------------------------------------------------------------------------

TEST(QuantizeU8Test, RoundingClampAndSpecials) {
  const KernelTable& table = Table(Backend::kScalar);
  const float in[] = {0.0f,    2.5f,    3.5f,   -2.5f,  63.0f,
                      1000.0f, -1000.0f, -64.0f, 0.49f,  -0.49f,
                      std::numeric_limits<float>::quiet_NaN(),
                      std::numeric_limits<float>::infinity(),
                      -std::numeric_limits<float>::infinity()};
  uint8_t q[13] = {};
  table.quantize_u8(13, 1.0f, in, q);
  EXPECT_EQ(q[0], 64);    // 0 -> zero point
  EXPECT_EQ(q[1], 66);    // 2.5 rounds to even 2
  EXPECT_EQ(q[2], 68);    // 3.5 rounds to even 4
  EXPECT_EQ(q[3], 62);    // -2.5 rounds to even -2
  EXPECT_EQ(q[4], 127);   // top of the 7-bit range
  EXPECT_EQ(q[5], 127);   // saturates high
  EXPECT_EQ(q[6], 0);     // saturates low
  EXPECT_EQ(q[7], 0);     // exactly -64
  EXPECT_EQ(q[8], 64);    // rounds to zero point
  EXPECT_EQ(q[9], 64);
  EXPECT_EQ(q[10], 0);    // NaN -> code 0 (matches AVX2 max-operand order)
  EXPECT_EQ(q[11], 127);
  EXPECT_EQ(q[12], 0);
}

TEST_F(Avx2VsScalarTest, QuantizeU8Bitwise) {
  for (const int64_t n : kSizes) {
    std::vector<float> x = RandomVector(static_cast<size_t>(n), 400 + n);
    if (n >= 3) {
      x[0] = std::numeric_limits<float>::quiet_NaN();
      x[1] = std::numeric_limits<float>::infinity();
      x[2] = -std::numeric_limits<float>::infinity();
    }
    std::vector<uint8_t> qa(static_cast<size_t>(n));
    std::vector<uint8_t> qb(static_cast<size_t>(n));
    scalar().quantize_u8(n, 37.5f, x.data(), qa.data());
    avx2().quantize_u8(n, 37.5f, x.data(), qb.data());
    EXPECT_EQ(qa, qb) << "n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, DequantRowS8Bitwise) {
  Rng rng(41);
  for (const int64_t n : kSizes) {
    std::vector<int8_t> q(static_cast<size_t>(n));
    for (int8_t& v : q) {
      v = static_cast<int8_t>(
          static_cast<int>(rng.Uniform() * 255.0) - 127);
    }
    std::vector<float> a(static_cast<size_t>(n));
    std::vector<float> b(static_cast<size_t>(n));
    scalar().dequant_row_s8(n, 0.0123f, q.data(), a.data());
    avx2().dequant_row_s8(n, 0.0123f, q.data(), b.data());
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                             static_cast<size_t>(n) * sizeof(float)))
        << "n=" << n;
  }
}

TEST(PackInt8BTest, QuadInterleaveAndColumnSums) {
  // k=6, n=3: two quads, the second half-padded with zeros.
  const int64_t k = 6;
  const int64_t n = 3;
  ASSERT_EQ(RoundUpK4(k), 8);
  std::vector<int8_t> b(static_cast<size_t>(k * n));
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<int8_t>(static_cast<int>(i) - 9);
  }
  std::vector<int8_t> packed(static_cast<size_t>(RoundUpK4(k) * n), 99);
  PackInt8B(k, n, b.data(), packed.data());
  for (int64_t quad = 0; quad < 2; ++quad) {
    for (int64_t col = 0; col < n; ++col) {
      for (int64_t j = 0; j < 4; ++j) {
        const int64_t p = quad * 4 + j;
        const int8_t expected =
            p < k ? b[static_cast<size_t>(p * n + col)] : int8_t{0};
        EXPECT_EQ(packed[static_cast<size_t>((quad * n + col) * 4 + j)],
                  expected)
            << "quad " << quad << " col " << col << " lane " << j;
      }
    }
  }
  std::vector<int32_t> colsum(static_cast<size_t>(n));
  Int8ColumnSums(k, n, b.data(), colsum.data());
  for (int64_t col = 0; col < n; ++col) {
    int32_t expected = 0;
    for (int64_t p = 0; p < k; ++p) {
      expected += b[static_cast<size_t>(p * n + col)];
    }
    EXPECT_EQ(colsum[static_cast<size_t>(col)], expected) << col;
  }
}

/// Reference for gemm_s8's contract: exact integer accumulation of
/// (a-64)*b, then the same two single-rounded multiplies as the epilogue.
void GemmS8Reference(int64_t m, int64_t k, int64_t k4, int64_t n,
                     const uint8_t* a, const int8_t* b,
                     const float* b_scales, float act_scale, float* c) {
  for (int64_t r = 0; r < m; ++r) {
    for (int64_t col = 0; col < n; ++col) {
      int32_t acc = 0;
      for (int64_t p = 0; p < k; ++p) {
        acc += (static_cast<int32_t>(a[r * k4 + p]) - 64) *
               static_cast<int32_t>(b[p * n + col]);
      }
      const float s = act_scale * b_scales[col];
      c[r * n + col] = static_cast<float>(acc) * s;
    }
  }
}

TEST_F(Avx2VsScalarTest, GemmS8BitwiseAndMatchesReference) {
  Rng rng(1234);
  for (const int64_t k : {int64_t{1}, int64_t{3}, int64_t{4}, int64_t{7},
                          int64_t{12}, int64_t{33}, int64_t{64}}) {
    for (const int64_t n : {int64_t{1}, int64_t{5}, int64_t{8}, int64_t{17},
                            int64_t{32}}) {
      const int64_t m = 3;
      const int64_t k4 = RoundUpK4(k);
      // A: u8 codes with the pad lanes deliberately NOT the zero point —
      // the zero-padded packed B must make them contribute nothing.
      std::vector<uint8_t> a(static_cast<size_t>(m * k4), 200);
      for (int64_t r = 0; r < m; ++r) {
        for (int64_t p = 0; p < k; ++p) {
          a[static_cast<size_t>(r * k4 + p)] =
              static_cast<uint8_t>(rng.Uniform() * 127.9);
        }
      }
      std::vector<int8_t> b(static_cast<size_t>(k * n));
      for (int8_t& v : b) {
        v = static_cast<int8_t>(static_cast<int>(rng.Uniform() * 255.0) -
                                127);
      }
      std::vector<int8_t> packed(static_cast<size_t>(k4 * n));
      PackInt8B(k, n, b.data(), packed.data());
      std::vector<int32_t> colsum(static_cast<size_t>(n));
      Int8ColumnSums(k, n, b.data(), colsum.data());
      std::vector<float> scales(static_cast<size_t>(n));
      for (float& s : scales) {
        s = 0.001f + static_cast<float>(rng.Uniform()) * 0.05f;
      }
      const float act_scale = 0.071f;

      std::vector<float> want(static_cast<size_t>(m * n));
      GemmS8Reference(m, k, k4, n, a.data(), b.data(), scales.data(),
                      act_scale, want.data());
      std::vector<float> got_scalar(static_cast<size_t>(m * n), -1.0f);
      std::vector<float> got_avx2(static_cast<size_t>(m * n), -1.0f);
      scalar().gemm_s8(m, k4, n, a.data(), packed.data(), colsum.data(),
                       scales.data(), act_scale, got_scalar.data());
      avx2().gemm_s8(m, k4, n, a.data(), packed.data(), colsum.data(),
                     scales.data(), act_scale, got_avx2.data());
      EXPECT_EQ(0, std::memcmp(got_scalar.data(), want.data(),
                               want.size() * sizeof(float)))
          << "scalar vs reference, k=" << k << " n=" << n;
      EXPECT_EQ(0, std::memcmp(got_scalar.data(), got_avx2.data(),
                               want.size() * sizeof(float)))
          << "avx2 vs scalar, k=" << k << " n=" << n;
    }
  }
}

TEST(Bf16Test, RoundToNearestEvenAndSpecials) {
  const KernelTable& table = Table(Backend::kScalar);
  const auto from_bits = [](uint32_t bits) {
    float x;
    std::memcpy(&x, &bits, sizeof(x));
    return x;
  };
  const float in[] = {1.0f,
                      from_bits(0x3F808000u),   // tie -> even (down)
                      from_bits(0x3F818000u),   // tie -> even (up)
                      from_bits(0x3F808001u),   // above tie -> up
                      -2.5f,
                      std::numeric_limits<float>::infinity(),
                      std::numeric_limits<float>::quiet_NaN()};
  uint16_t out[7] = {};
  table.f32_to_bf16(7, in, out);
  EXPECT_EQ(out[0], 0x3F80);
  EXPECT_EQ(out[1], 0x3F80);  // ties to even keeps the even mantissa
  EXPECT_EQ(out[2], 0x3F82);
  EXPECT_EQ(out[3], 0x3F81);
  EXPECT_EQ(out[4], 0xC020);
  EXPECT_EQ(out[5], 0x7F80);  // Inf survives exactly
  // NaN must stay NaN after rounding (payload quieted, not incremented
  // into Inf): exponent all-ones with a nonzero mantissa.
  EXPECT_EQ(out[6] & 0x7F80, 0x7F80);
  EXPECT_NE(out[6] & 0x007F, 0);

  // Widening is exact: round-tripping a bf16 pattern is the identity.
  float widened[7] = {};
  table.bf16_to_f32(7, out, widened);
  uint16_t again[7] = {};
  table.f32_to_bf16(7, widened, again);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(out[i], again[i]) << i;
}

TEST_F(Avx2VsScalarTest, Bf16ConversionsBitwise) {
  for (const int64_t n : kSizes) {
    std::vector<float> x = RandomVector(static_cast<size_t>(n), 500 + n);
    if (n >= 2) {
      x[0] = std::numeric_limits<float>::quiet_NaN();
      x[1] = std::numeric_limits<float>::infinity();
    }
    std::vector<uint16_t> ha(static_cast<size_t>(n));
    std::vector<uint16_t> hb(static_cast<size_t>(n));
    scalar().f32_to_bf16(n, x.data(), ha.data());
    avx2().f32_to_bf16(n, x.data(), hb.data());
    EXPECT_EQ(ha, hb) << "f32_to_bf16 n=" << n;

    std::vector<float> wa(static_cast<size_t>(n));
    std::vector<float> wb(static_cast<size_t>(n));
    scalar().bf16_to_f32(n, ha.data(), wa.data());
    avx2().bf16_to_f32(n, hb.data(), wb.data());
    EXPECT_EQ(0, std::memcmp(wa.data(), wb.data(),
                             static_cast<size_t>(n) * sizeof(float)))
        << "bf16_to_f32 n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, GemmBf16WithinTolerance) {
  const int64_t m = 4;
  const int64_t k = 33;
  for (const int64_t n : {int64_t{1}, int64_t{8}, int64_t{17}}) {
    const std::vector<float> a =
        RandomVector(static_cast<size_t>(m * k), 600 + n);
    const std::vector<float> b_f32 =
        RandomVector(static_cast<size_t>(k * n), 700 + n);
    std::vector<uint16_t> b(static_cast<size_t>(k * n));
    scalar().f32_to_bf16(k * n, b_f32.data(), b.data());

    std::vector<float> ca(static_cast<size_t>(m * n));
    std::vector<float> cb(static_cast<size_t>(m * n));
    scalar().gemm_bf16(m, k, n, a.data(), b.data(), ca.data());
    avx2().gemm_bf16(m, k, n, a.data(), b.data(), cb.data());
    for (size_t i = 0; i < ca.size(); ++i) {
      EXPECT_NEAR(ca[i], cb[i], 1e-4) << "n=" << n << " i=" << i;
    }

    // And the widened product tracks the fp32 product to bf16 precision
    // (~3 decimal digits on unit-scale data, k=33 accumulation).
    std::vector<float> c_f32(static_cast<size_t>(m * n));
    scalar().gemm(m, k, n, a.data(), b_f32.data(), c_f32.data());
    for (size_t i = 0; i < ca.size(); ++i) {
      EXPECT_NEAR(ca[i], c_f32[i], 0.2) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FusedEpiloguesFlagTest, ToggleRoundTrips) {
  const bool before = FusedEpiloguesEnabled();
  SetFusedEpilogues(false);
  EXPECT_FALSE(FusedEpiloguesEnabled());
  SetFusedEpilogues(true);
  EXPECT_TRUE(FusedEpiloguesEnabled());
  SetFusedEpilogues(before);
}

}  // namespace
}  // namespace atnn::nn::kernels
