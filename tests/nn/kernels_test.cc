#include "nn/kernels.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/autograd.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace atnn::nn::kernels {
namespace {

/// Restores the dispatched backend when a test body returns.
class BackendGuard {
 public:
  BackendGuard() : previous_(ActiveBackend()) {}
  ~BackendGuard() { (void)SetBackend(previous_); }

 private:
  Backend previous_;
};

std::vector<float> RandomVector(size_t n, uint64_t seed,
                                double zero_fraction = 0.0) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) {
    x = rng.Uniform() < zero_fraction
            ? 0.0f
            : static_cast<float>(rng.Normal(0.0, 1.0));
  }
  return v;
}

// Sizes straddling the 16- and 8-wide column tiles plus ragged tails
// (n % 8 != 0) and sub-vector-width cases.
constexpr int64_t kSizes[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 24, 31, 33, 64,
                              100};

// ---------------------------------------------------------------------------
// Dispatch plumbing.
// ---------------------------------------------------------------------------

TEST(KernelDispatchTest, BackendNames) {
  EXPECT_STREQ(BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(BackendName(Backend::kAvx2), "avx2");
}

TEST(KernelDispatchTest, SetBackendScalarAlwaysWorks) {
  BackendGuard guard;
  ASSERT_TRUE(SetBackend(Backend::kScalar).ok());
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_EQ(&Kernels(), &Table(Backend::kScalar));
}

TEST(KernelDispatchTest, SetBackendAvx2MatchesCpuSupport) {
  BackendGuard guard;
  const Status status = SetBackend(Backend::kAvx2);
  if (Avx2Supported()) {
    ASSERT_TRUE(status.ok());
    EXPECT_EQ(ActiveBackend(), Backend::kAvx2);
    EXPECT_EQ(&Kernels(), &Table(Backend::kAvx2));
  } else {
    EXPECT_FALSE(status.ok());
  }
}

TEST(KernelDispatchTest, SetBackendFromString) {
  BackendGuard guard;
  ASSERT_TRUE(SetBackendFromString("scalar").ok());
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);

  ASSERT_TRUE(SetBackendFromString("auto").ok());
  EXPECT_EQ(ActiveBackend(),
            Avx2Supported() ? Backend::kAvx2 : Backend::kScalar);

  EXPECT_EQ(SetBackendFromString("avx2").ok(), Avx2Supported());
  EXPECT_FALSE(SetBackendFromString("sse9").ok());
  EXPECT_FALSE(SetBackendFromString("").ok());
  EXPECT_FALSE(SetBackendFromString("AVX2").ok());  // case-sensitive
}

// ---------------------------------------------------------------------------
// AVX2 kernels vs the scalar reference table. Elementwise kernels whose
// vector lanes perform the exact same operation per element (scale, add,
// bias_identity, bias_relu) must match bitwise; reductions and FMA-based
// kernels reassociate or round once instead of twice, so they get a
// tolerance.
// ---------------------------------------------------------------------------

class Avx2VsScalarTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!Avx2Supported()) GTEST_SKIP() << "host lacks AVX2+FMA";
  }
  const KernelTable& scalar() { return Table(Backend::kScalar); }
  const KernelTable& avx2() { return Table(Backend::kAvx2); }
};

TEST_F(Avx2VsScalarTest, Gemm) {
  for (int64_t m : {1, 3, 4, 5, 8}) {
    for (int64_t n : kSizes) {
      const int64_t k = 7;
      const auto a = RandomVector(static_cast<size_t>(m * k), 1000 + n);
      const auto b = RandomVector(static_cast<size_t>(k * n), 2000 + n);
      std::vector<float> c_scalar(static_cast<size_t>(m * n));
      std::vector<float> c_avx2(static_cast<size_t>(m * n));
      scalar().gemm(m, k, n, a.data(), b.data(), c_scalar.data());
      avx2().gemm(m, k, n, a.data(), b.data(), c_avx2.data());
      for (size_t i = 0; i < c_scalar.size(); ++i) {
        EXPECT_NEAR(c_avx2[i], c_scalar[i], 1e-4)
            << "m=" << m << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST_F(Avx2VsScalarTest, GemmTransBAccumulates) {
  for (int64_t k : kSizes) {
    const int64_t m = 5, n = 6;
    const auto a = RandomVector(static_cast<size_t>(m * k), 10 + k);
    const auto b = RandomVector(static_cast<size_t>(n * k), 20 + k);
    // Pre-fill C to pin the += contract.
    auto c_scalar = RandomVector(static_cast<size_t>(m * n), 30 + k);
    auto c_avx2 = c_scalar;
    scalar().gemm_trans_b_accum(m, k, n, a.data(), b.data(), c_scalar.data());
    avx2().gemm_trans_b_accum(m, k, n, a.data(), b.data(), c_avx2.data());
    for (size_t i = 0; i < c_scalar.size(); ++i) {
      EXPECT_NEAR(c_avx2[i], c_scalar[i], 1e-4) << "k=" << k << " i=" << i;
    }
  }
}

TEST_F(Avx2VsScalarTest, GemmTransAAccumulatesWithSparseA) {
  for (int64_t n : kSizes) {
    const int64_t m = 6, k = 5;
    // 60% zeros exercises the shared zero-skip on both backends.
    const auto a =
        RandomVector(static_cast<size_t>(m * k), 40 + n, /*zero_fraction=*/0.6);
    const auto b = RandomVector(static_cast<size_t>(m * n), 50 + n);
    auto c_scalar = RandomVector(static_cast<size_t>(k * n), 60 + n);
    auto c_avx2 = c_scalar;
    scalar().gemm_trans_a_accum(m, k, n, a.data(), b.data(), c_scalar.data());
    avx2().gemm_trans_a_accum(m, k, n, a.data(), b.data(), c_avx2.data());
    for (size_t i = 0; i < c_scalar.size(); ++i) {
      EXPECT_NEAR(c_avx2[i], c_scalar[i], 1e-4) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(Avx2VsScalarTest, Axpy) {
  for (int64_t n : kSizes) {
    const auto x = RandomVector(static_cast<size_t>(n), 70 + n);
    auto y_scalar = RandomVector(static_cast<size_t>(n), 80 + n);
    auto y_avx2 = y_scalar;
    scalar().axpy(n, 0.37f, x.data(), y_scalar.data());
    avx2().axpy(n, 0.37f, x.data(), y_avx2.data());
    for (int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(y_avx2[i], y_scalar[i], 1e-6) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(Avx2VsScalarTest, ScaleBitwise) {
  for (int64_t n : kSizes) {
    auto x_scalar = RandomVector(static_cast<size_t>(n), 90 + n);
    auto x_avx2 = x_scalar;
    scalar().scale(n, -1.75f, x_scalar.data());
    avx2().scale(n, -1.75f, x_avx2.data());
    EXPECT_EQ(std::memcmp(x_scalar.data(), x_avx2.data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0)
        << "n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, AddBitwise) {
  for (int64_t n : kSizes) {
    const auto x = RandomVector(static_cast<size_t>(n), 100 + n);
    auto y_scalar = RandomVector(static_cast<size_t>(n), 110 + n);
    auto y_avx2 = y_scalar;
    scalar().add(n, x.data(), y_scalar.data());
    avx2().add(n, x.data(), y_avx2.data());
    EXPECT_EQ(std::memcmp(y_scalar.data(), y_avx2.data(),
                          static_cast<size_t>(n) * sizeof(float)),
              0)
        << "n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, SumAndSquaredNorm) {
  for (int64_t n : kSizes) {
    const auto x = RandomVector(static_cast<size_t>(n), 120 + n);
    EXPECT_NEAR(avx2().sum(n, x.data()), scalar().sum(n, x.data()), 1e-10)
        << "n=" << n;
    EXPECT_NEAR(avx2().squared_norm(n, x.data()),
                scalar().squared_norm(n, x.data()), 1e-10)
        << "n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, Dot) {
  for (int64_t n : kSizes) {
    const auto x = RandomVector(static_cast<size_t>(n), 130 + n);
    const auto y = RandomVector(static_cast<size_t>(n), 140 + n);
    EXPECT_NEAR(avx2().dot(n, x.data(), y.data()),
                scalar().dot(n, x.data(), y.data()),
                1e-4 * std::max<int64_t>(n, 1))
        << "n=" << n;
  }
}

TEST_F(Avx2VsScalarTest, BiasEpilogues) {
  for (int64_t cols : kSizes) {
    const int64_t rows = 3;
    const auto bias = RandomVector(static_cast<size_t>(cols), 150 + cols);
    const auto base =
        RandomVector(static_cast<size_t>(rows * cols), 160 + cols);

    // identity and relu: one add (and one max) per element, bitwise.
    for (int variant = 0; variant < 2; ++variant) {
      auto x_scalar = base;
      auto x_avx2 = base;
      if (variant == 0) {
        scalar().bias_identity(rows, cols, bias.data(), x_scalar.data());
        avx2().bias_identity(rows, cols, bias.data(), x_avx2.data());
      } else {
        scalar().bias_relu(rows, cols, bias.data(), x_scalar.data());
        avx2().bias_relu(rows, cols, bias.data(), x_avx2.data());
      }
      EXPECT_EQ(std::memcmp(x_scalar.data(), x_avx2.data(),
                            x_scalar.size() * sizeof(float)),
                0)
          << "variant=" << variant << " cols=" << cols;
    }

    // sigmoid: Exp256 is a polynomial approximation, tolerance-equal.
    auto x_scalar = base;
    auto x_avx2 = base;
    scalar().bias_sigmoid(rows, cols, bias.data(), x_scalar.data());
    avx2().bias_sigmoid(rows, cols, bias.data(), x_avx2.data());
    for (size_t i = 0; i < x_scalar.size(); ++i) {
      EXPECT_NEAR(x_avx2[i], x_scalar[i], 1e-6) << "cols=" << cols;
      EXPECT_GE(x_avx2[i], 0.0f);
      EXPECT_LE(x_avx2[i], 1.0f);
    }
  }
}

TEST_F(Avx2VsScalarTest, UnalignedRowStarts) {
  // Feed pointers offset by one float so no vector load is 32-byte aligned;
  // kernels use unaligned loads and must not care.
  const int64_t n = 37;
  const auto x = RandomVector(static_cast<size_t>(n) + 1, 170);
  auto y_scalar = RandomVector(static_cast<size_t>(n) + 1, 171);
  auto y_avx2 = y_scalar;
  scalar().add(n, x.data() + 1, y_scalar.data() + 1);
  avx2().add(n, x.data() + 1, y_avx2.data() + 1);
  EXPECT_EQ(std::memcmp(y_scalar.data(), y_avx2.data(),
                        y_scalar.size() * sizeof(float)),
            0);

  const auto a = RandomVector(3 * 5 + 1, 172);
  const auto b = RandomVector(5 * static_cast<size_t>(n) + 1, 173);
  std::vector<float> c_scalar(3 * static_cast<size_t>(n) + 1);
  std::vector<float> c_avx2(c_scalar.size());
  scalar().gemm(3, 5, n, a.data() + 1, b.data() + 1, c_scalar.data() + 1);
  avx2().gemm(3, 5, n, a.data() + 1, b.data() + 1, c_avx2.data() + 1);
  for (size_t i = 1; i < c_scalar.size(); ++i) {
    EXPECT_NEAR(c_avx2[i], c_scalar[i], 1e-4) << "i=" << i;
  }
}

TEST_F(Avx2VsScalarTest, NanAndInfPropagation) {
  constexpr float kNan = std::numeric_limits<float>::quiet_NaN();
  constexpr float kInf = std::numeric_limits<float>::infinity();

  // bias_relu: a NaN sum must survive the max on both backends
  // (std::max(nan, 0) == nan; _mm256_max_ps(zero, v) returns v on NaN).
  for (const KernelTable* table : {&scalar(), &avx2()}) {
    std::vector<float> x = {kNan, -1.0f, 2.0f, kInf, -kInf, 0.5f, -0.5f,
                            1.5f, kNan};
    const std::vector<float> bias(x.size(), 0.0f);
    table->bias_relu(1, static_cast<int64_t>(x.size()), bias.data(), x.data());
    EXPECT_TRUE(std::isnan(x[0]));
    EXPECT_EQ(x[1], 0.0f);
    EXPECT_EQ(x[3], kInf);
    EXPECT_EQ(x[4], 0.0f);  // max(0, -inf)
    EXPECT_TRUE(std::isnan(x[8]));  // NaN in the scalar tail (9 % 8 == 1)

    // bias_sigmoid: NaN in, NaN out (the AVX2 path restores NaN after the
    // clamped Exp256); +/-inf saturate to the asymptotes.
    std::vector<float> s = {kNan, 0.0f, 100.0f, -100.0f, kInf, -kInf, 1.0f,
                            -1.0f, kNan};
    table->bias_sigmoid(1, static_cast<int64_t>(s.size()), bias.data(),
                        s.data());
    EXPECT_TRUE(std::isnan(s[0]));
    EXPECT_FLOAT_EQ(s[1], 0.5f);
    EXPECT_FLOAT_EQ(s[2], 1.0f);
    // Saturation: the AVX2 exp clamps its argument, leaving a denormal
    // rather than an exact zero, so compare with a tolerance.
    EXPECT_NEAR(s[3], 0.0f, 1e-6);
    EXPECT_FLOAT_EQ(s[4], 1.0f);
    EXPECT_NEAR(s[5], 0.0f, 1e-6);
    EXPECT_TRUE(std::isnan(s[8]));

    // gemm: 0 * inf inside the accumulation must produce NaN.
    const std::vector<float> a = {0.0f, 1.0f};
    const std::vector<float> b = {kInf, 3.0f};
    std::vector<float> c = {0.0f};
    table->gemm(1, 2, 1, a.data(), b.data(), c.data());
    EXPECT_TRUE(std::isnan(c[0]));
  }
}

// ---------------------------------------------------------------------------
// Fused DenseAffine vs the unfused Activate(AddBias(MatMul)) chain. On the
// scalar backend the contract is bitwise equality of both the forward
// values and every input gradient — this is the op-level half of the
// "--atnn_kernel=scalar reproduces the pre-PR training run" guarantee.
// ---------------------------------------------------------------------------

class FusedDenseAffineTest : public testing::TestWithParam<Activation> {
 protected:
  void SetUp() override {
    ATNN_CHECK(SetBackend(Backend::kScalar).ok());
  }
  void TearDown() override { (void)SetBackend(guard_previous_); }

 private:
  Backend guard_previous_ = ActiveBackend();
};

Var UnfusedChain(const Var& x, const Var& w, const Var& b, Activation act) {
  const Var z = AddBias(MatMul(x, w), b);
  switch (act) {
    case Activation::kIdentity:
      return z;
    case Activation::kRelu:
      return Relu(z);
    case Activation::kSigmoid:
      return Sigmoid(z);
    default:
      ATNN_CHECK(false) << "unsupported activation in test";
      return z;
  }
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b, const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0)
      << what << " differs between fused and unfused paths";
}

TEST_P(FusedDenseAffineTest, ForwardAndBackwardBitwiseMatchUnfused) {
  const Activation act = GetParam();
  Rng rng(7);
  Tensor x_init(9, 6);   // 9 rows: blocked + tail GEMM paths
  Tensor w_init(6, 11);  // 11 cols: ragged epilogue tail
  Tensor b_init(1, 11);
  for (int64_t i = 0; i < x_init.numel(); ++i) {
    x_init.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  for (int64_t i = 0; i < w_init.numel(); ++i) {
    w_init.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }
  for (int64_t i = 0; i < b_init.numel(); ++i) {
    b_init.data()[i] = static_cast<float>(rng.Normal(0.0, 1.0));
  }

  Var x_f = Leaf(x_init), w_f = Leaf(w_init), b_f = Leaf(b_init);
  const Var fused = DenseAffine(x_f, w_f, b_f, act);
  Backward(fused);

  Var x_u = Leaf(x_init), w_u = Leaf(w_init), b_u = Leaf(b_init);
  const Var unfused = UnfusedChain(x_u, w_u, b_u, act);
  Backward(unfused);

  ExpectBitwiseEqual(fused.value(), unfused.value(), "forward value");
  ExpectBitwiseEqual(x_f.grad(), x_u.grad(), "dX");
  ExpectBitwiseEqual(w_f.grad(), w_u.grad(), "dW");
  ExpectBitwiseEqual(b_f.grad(), b_u.grad(), "db");
}

INSTANTIATE_TEST_SUITE_P(Activations, FusedDenseAffineTest,
                         testing::Values(Activation::kIdentity,
                                         Activation::kRelu,
                                         Activation::kSigmoid),
                         [](const testing::TestParamInfo<Activation>& info) {
                           switch (info.param) {
                             case Activation::kIdentity:
                               return "identity";
                             case Activation::kRelu:
                               return "relu";
                             default:
                               return "sigmoid";
                           }
                         });

TEST(FusedEpiloguesFlagTest, ToggleRoundTrips) {
  const bool before = FusedEpiloguesEnabled();
  SetFusedEpilogues(false);
  EXPECT_FALSE(FusedEpiloguesEnabled());
  SetFusedEpilogues(true);
  EXPECT_TRUE(FusedEpiloguesEnabled());
  SetFusedEpilogues(before);
}

}  // namespace
}  // namespace atnn::nn::kernels
