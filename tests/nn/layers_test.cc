#include "nn/layers.h"

#include <gtest/gtest.h>

namespace atnn::nn {
namespace {

TEST(DenseTest, ShapesAndParameterNames) {
  Rng rng(1);
  Dense layer("fc", 4, 3, Activation::kRelu, &rng);
  EXPECT_EQ(layer.in_dim(), 4);
  EXPECT_EQ(layer.out_dim(), 3);
  auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0]->name(), "fc.weight");
  EXPECT_EQ(params[1]->name(), "fc.bias");

  Var out = layer.Forward(Constant(Tensor::Ones(5, 4)));
  EXPECT_EQ(out.rows(), 5);
  EXPECT_EQ(out.cols(), 3);
  // ReLU output is non-negative.
  for (int64_t i = 0; i < out.value().numel(); ++i) {
    EXPECT_GE(out.value().data()[i], 0.0f);
  }
}

TEST(MlpTest, StacksLayersWithCorrectDims) {
  Rng rng(2);
  Mlp mlp("mlp", {8, 16, 4}, Activation::kRelu, Activation::kIdentity, &rng);
  EXPECT_EQ(mlp.in_dim(), 8);
  EXPECT_EQ(mlp.out_dim(), 4);
  EXPECT_EQ(mlp.Parameters().size(), 4u);  // 2 layers x (W, b)
  Var out = mlp.Forward(Constant(Tensor::Ones(3, 8)));
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 4);
}

TEST(CrossNetworkTest, PreservesDimensionAndMatchesManualFormula) {
  Rng rng(3);
  CrossNetwork cross("cross", 4, 1, &rng);
  Tensor x0_data(2, 4, {1, 2, 3, 4, -1, 0, 1, 2});
  Var out = cross.Forward(Constant(x0_data));
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 4);

  // Manual: x1 = x0 * (x0 . w) + b + x0 with b = 0 at init.
  auto params = cross.Parameters();
  const Tensor& w = params[0]->value();  // [4,1]
  for (int64_t r = 0; r < 2; ++r) {
    float xw = 0.0f;
    for (int64_t c = 0; c < 4; ++c) xw += x0_data.at(r, c) * w.at(c, 0);
    for (int64_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(out.value().at(r, c),
                  x0_data.at(r, c) * xw + x0_data.at(r, c), 1e-5f);
    }
  }
}

TEST(CrossNetworkTest, DepthIncreasesPolynomialDegree) {
  // With w = e_0 and b = 0, layer l computes x_{l+1}[0] = x[0]*x_l[0]+x_l[0];
  // starting from x = (2), depth-2 yields degree-3 terms: verify growth.
  Rng rng(4);
  CrossNetwork cross("cross", 1, 2, &rng);
  auto params = cross.Parameters();
  params[0]->value().at(0, 0) = 1.0f;  // w0
  params[2]->value().at(0, 0) = 1.0f;  // w1
  Var out = cross.Forward(Constant(Tensor::Scalar(2.0f)));
  // x1 = 2*2+2 = 6; x2 = 2*6+6 = 18.
  EXPECT_FLOAT_EQ(out.value().scalar(), 18.0f);
}

TEST(TowerTest, DeepCrossConcatHeadShapes) {
  Rng rng(5);
  TowerConfig config;
  config.kind = TowerKind::kDeepCross;
  config.deep_dims = {16, 8};
  config.cross_layers = 2;
  config.output_dim = 6;
  Tower tower("t", 10, config, &rng);
  Var out = tower.Forward(Constant(Tensor::Ones(4, 10)));
  EXPECT_EQ(out.rows(), 4);
  EXPECT_EQ(out.cols(), 6);
}

TEST(TowerTest, FullyConnectedVariantHasNoCrossParameters) {
  Rng rng(6);
  TowerConfig fc_config;
  fc_config.kind = TowerKind::kFullyConnected;
  fc_config.deep_dims = {16, 8};
  fc_config.output_dim = 6;
  Tower fc_tower("fc", 10, fc_config, &rng);

  TowerConfig dcn_config = fc_config;
  dcn_config.kind = TowerKind::kDeepCross;
  dcn_config.cross_layers = 2;
  Tower dcn_tower("dcn", 10, dcn_config, &rng);

  EXPECT_LT(fc_tower.Parameters().size(), dcn_tower.Parameters().size());
  Var out = fc_tower.Forward(Constant(Tensor::Ones(4, 10)));
  EXPECT_EQ(out.cols(), 6);
}

TEST(EmbeddingBagTest, ConcatenatesFieldsAndDense) {
  Rng rng(7);
  std::vector<EmbeddingFieldSpec> fields = {{"cat_a", 10, 3},
                                            {"cat_b", 5, 2}};
  EmbeddingBag bag("bag", fields, &rng);
  EXPECT_EQ(bag.OutputDim(4), 3 + 2 + 4);

  std::vector<std::vector<int64_t>> ids = {{0, 1, 9}, {4, 4, 0}};
  Tensor dense = Tensor::Ones(3, 4);
  Var out = bag.Forward(ids, dense);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 9);
  // The dense block occupies the trailing columns unchanged.
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 5; c < 9; ++c) {
      EXPECT_FLOAT_EQ(out.value().at(r, c), 1.0f);
    }
  }
  // Identical ids produce identical embedding rows.
  for (int64_t c = 3; c < 5; ++c) {
    EXPECT_FLOAT_EQ(out.value().at(0, c), out.value().at(1, c));
  }
}

TEST(EmbeddingBagTest, HashedFieldAcceptsArbitraryIds) {
  Rng rng(17);
  EmbeddingFieldSpec spec;
  spec.name = "seller";
  spec.vocab_size = 0;  // unbounded vocabulary
  spec.embed_dim = 4;
  spec.hash_buckets = 16;
  EmbeddingBag bag("bag", {spec}, &rng);
  // Ids far beyond any vocab must work (new sellers appear daily).
  std::vector<std::vector<int64_t>> ids = {
      {7, 123456789, 7, 999999999999LL}};
  Var out = bag.Forward(ids, Tensor());
  EXPECT_EQ(out.rows(), 4);
  EXPECT_EQ(out.cols(), 4);
  EXPECT_TRUE(out.value().AllFinite());
  // Same raw id -> same bucket -> identical embedding rows.
  for (int64_t c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(out.value().at(0, c), out.value().at(2, c));
  }
}

TEST(EmbeddingBagTest, HashedFieldGradientsFlowToBuckets) {
  Rng rng(18);
  EmbeddingFieldSpec spec;
  spec.name = "f";
  spec.embed_dim = 2;
  spec.hash_buckets = 8;
  EmbeddingBag bag("bag", {spec}, &rng);
  auto params = bag.Parameters();
  ASSERT_EQ(params.size(), 1u);
  EXPECT_EQ(params[0]->rows(), 8);  // bucket count, not vocab
  Var out = bag.Forward({{42}}, Tensor());
  Var loss = ReduceSum(out);
  Backward(loss);
  // Exactly one bucket row received gradient.
  int touched = 0;
  for (int64_t r = 0; r < 8; ++r) {
    if (params[0]->grad().at(r, 0) != 0.0f) ++touched;
  }
  EXPECT_EQ(touched, 1);
}

TEST(EmbeddingBagTest, NoDenseBlock) {
  Rng rng(8);
  EmbeddingBag bag("bag", {{"f", 4, 2}}, &rng);
  std::vector<std::vector<int64_t>> ids = {{1, 3}};
  Var out = bag.Forward(ids, Tensor());
  EXPECT_EQ(out.rows(), 2);
  EXPECT_EQ(out.cols(), 2);
}

TEST(ModuleTest, NumParameterElementsCounts) {
  Rng rng(9);
  Dense layer("fc", 3, 2, Activation::kIdentity, &rng);
  EXPECT_EQ(layer.NumParameterElements(), 3 * 2 + 2);
}

TEST(ActivateTest, AllActivationsProduceFiniteOutput) {
  Tensor input(1, 4, {-2.0f, -0.5f, 0.5f, 2.0f});
  for (Activation act :
       {Activation::kIdentity, Activation::kRelu, Activation::kSigmoid,
        Activation::kTanh, Activation::kLeakyRelu}) {
    Var out = Activate(Constant(input), act);
    EXPECT_TRUE(out.value().AllFinite());
    EXPECT_EQ(out.value().numel(), 4);
  }
}

}  // namespace
}  // namespace atnn::nn
