// End-to-end self-healing drills over the cluster layer: concurrent
// clients replay a skewed stream through a ShardedRuntime while the
// cluster is resized, killed, and healed underneath them. The invariant
// under every drill is the serving contract — zero dropped or errored
// requests, every answer tier-tagged — plus the specific recovery
// property each drill exercises (bounded-remap moves, supervised
// rebuild, breaker-gated re-admission).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "cluster/shard_supervisor.h"
#include "cluster/sharded_runtime.h"
#include "cluster/tenant_registry.h"
#include "core/atnn.h"
#include "core/popularity.h"
#include "data/tmall.h"
#include "serving/popularity_index.h"

namespace atnn::cluster {
namespace {

class SelfHealingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        core::testing_helpers::MakeNormalizedTinyDataset());
    core::AtnnConfig config;
    config.tower =
        core::testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = new core::AtnnModel(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, config);
    const auto group = core::SelectActiveUsers(*dataset_, 64);
    predictor_ = new core::PopularityPredictor(
        core::PopularityPredictor::Build(*model_, *dataset_, group));
  }

  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static runtime::ServingSnapshot MakeSnapshot() {
    runtime::ServingSnapshot snapshot;
    snapshot.model = runtime::Unowned(model_);
    snapshot.predictor = runtime::Unowned(predictor_);
    snapshot.item_profiles = runtime::Unowned(&dataset_->item_profiles);
    snapshot.tag = "self-healing";
    return snapshot;
  }

  static std::shared_ptr<serving::PopularityIndex> FlatPrior(double value) {
    auto prior = std::make_shared<serving::PopularityIndex>();
    for (int64_t row = 0; row < dataset_->item_profiles.num_rows(); ++row) {
      prior->Upsert(row, value);
    }
    return prior;
  }

  static ShardedRuntimeConfig Config(size_t num_shards) {
    ShardedRuntimeConfig config;
    config.num_shards = num_shards;
    config.shard.num_workers = 2;
    config.shard.batcher.max_batch_size = 16;
    config.shard.batcher.max_delay_us = 200;
    config.shard.batcher.queue_capacity = 1024;
    config.prior = FlatPrior(0.5);
    config.breaker.cooldown_ms = 0;
    config.breaker.probes_to_close = 2;
    return config;
  }

  static std::vector<int64_t> AllRows() {
    std::vector<int64_t> rows(
        static_cast<size_t>(dataset_->item_profiles.num_rows()));
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<int64_t>(i);
    }
    return rows;
  }

  static data::TmallDataset* dataset_;
  static core::AtnnModel* model_;
  static core::PopularityPredictor* predictor_;
};

data::TmallDataset* SelfHealingTest::dataset_ = nullptr;
core::AtnnModel* SelfHealingTest::model_ = nullptr;
core::PopularityPredictor* SelfHealingTest::predictor_ = nullptr;

/// Live resize under concurrent client load: two client threads hammer
/// the full catalog while the runtime is resized 2 -> 4 -> 3. The RCU
/// epoch swap must drain in-flight batches on the old routing, so not a
/// single request may drop or error, and every move must stay inside the
/// consistent-hash remap bound.
TEST_F(SelfHealingTest, ResizeUnderConcurrentLoadNeverDropsARequest) {
  ShardedRuntime runtime(Config(2));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const std::vector<int64_t> rows = AllRows();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> untagged{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      while (!stop.load()) {
        for (const auto& result : runtime.ScoreBatch(rows)) {
          if (!result.ok()) {
            errors.fetch_add(1);
            continue;
          }
          ok.fetch_add(1);
          if (static_cast<size_t>(result.value().tier) >=
              runtime::kNumServingTiers) {
            untagged.fetch_add(1);
          }
        }
      }
    });
  }
  // Let the clients spin up before the first swap.
  while (ok.load() + errors.load() <
         static_cast<int64_t>(rows.size())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto grow = runtime.ResizeShards(4);
  ASSERT_TRUE(grow.ok()) << grow.status().ToString();
  EXPECT_TRUE(grow->moved_only_within_bound);
  EXPECT_EQ(runtime.num_shards(), 4u);

  const int64_t after_grow = ok.load() + errors.load();
  while (ok.load() + errors.load() <
         after_grow + static_cast<int64_t>(rows.size())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto shrink = runtime.ResizeShards(3);
  ASSERT_TRUE(shrink.ok()) << shrink.status().ToString();
  EXPECT_TRUE(shrink->moved_only_within_bound);
  EXPECT_EQ(runtime.num_shards(), 3u);

  const int64_t after_shrink = ok.load() + errors.load();
  while (ok.load() + errors.load() <
         after_shrink + static_cast<int64_t>(rows.size())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  for (auto& client : clients) client.join();
  runtime.Shutdown();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(untagged.load(), 0);
  EXPECT_GT(ok.load(), 0);

  // Post-resize scores are still byte-identical to the unsharded path.
  const std::vector<double> expected =
      predictor_->ScoreItems(*model_, *dataset_, rows);
  ShardedRuntime verify(Config(3));
  ASSERT_TRUE(verify.PublishSharded(MakeSnapshot()).ok());
  const auto results = verify.ScoreBatch(rows);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_NEAR(results[i].value().score, expected[i], 1e-9);
  }
  verify.Shutdown();
}

/// The full kill -> detect -> rebuild -> probation -> healthy loop with a
/// background supervisor, while a client thread keeps scoring. After the
/// supervisor reports healthy, the killed shard's rows must serve fresh
/// again — the cluster healed without any operator call.
TEST_F(SelfHealingTest, KilledShardAutoRecoversToFreshUnderLoad) {
  constexpr size_t kShards = 3;
  constexpr size_t kVictim = 1;
  ShardedRuntime runtime(Config(kShards));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());

  ShardSupervisorConfig supervision;
  supervision.probe_period_ms = 1;
  supervision.probe_deadline_us = 200'000;
  supervision.seed = 0x5eedULL;
  ShardSupervisor supervisor(&runtime, supervision);
  supervisor.Start();

  const std::vector<int64_t> rows = AllRows();
  std::atomic<bool> stop{false};
  std::atomic<int64_t> errors{0};
  std::thread client([&] {
    while (!stop.load()) {
      for (const auto& result : runtime.ScoreBatch(rows)) {
        if (!result.ok()) errors.fetch_add(1);
      }
    }
  });

  runtime.ShutDownShard(kVictim);

  // The supervisor must walk the victim dead -> rebuilt -> recovering ->
  // healthy on its own; bounded wait, generous for sanitizer builds.
  // "Recovered" is rebuild evidence AND health — the health field alone
  // starts at kHealthy and would read as recovered before detection.
  const auto rebuilds_count = [&supervisor] {
    for (const auto& [name, value] : supervisor.Collect().counters) {
      if (name == "supervisor.rebuilds") return value;
    }
    return int64_t{0};
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((rebuilds_count() < 1 ||
          supervisor.health(kVictim) != ShardHealth::kHealthy) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  client.join();
  supervisor.Stop();

  ASSERT_EQ(supervisor.health(kVictim), ShardHealth::kHealthy)
      << "supervisor never healed the killed shard";
  EXPECT_EQ(errors.load(), 0);

  // Healed means healed: every row of the victim's slice serves fresh.
  const std::vector<double> expected =
      predictor_->ScoreItems(*model_, *dataset_, rows);
  const auto results = runtime.ScoreBatch(rows);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i].value().tier, runtime::ServingTier::kFresh)
        << "row " << rows[i] << " (shard "
        << runtime.ring().ShardFor(rows[i]) << ")";
    EXPECT_NEAR(results[i].value().score, expected[i], 1e-9);
  }

  int64_t rebuilds = 0;
  for (const auto& [name, value] : supervisor.Collect().counters) {
    if (name == "supervisor.rebuilds") rebuilds = value;
  }
  EXPECT_GE(rebuilds, 1);
  runtime.Shutdown();
}

/// Resize composed with admission control: a quota-starved tenant keeps
/// hammering through its registry while its runtime is resized. Sheds
/// stay tier-tagged and the resize still drains cleanly — the two
/// protection layers do not deadlock or drop across the epoch swap.
TEST_F(SelfHealingTest, ResizeComposesWithAdmissionControl) {
  TenantRegistry registry;
  TenantConfig tenant;
  tenant.name = "starved";
  tenant.sharded = Config(2);
  tenant.admission_qps = 1e-6;  // effectively zero refill
  tenant.admission_burst = 32;
  auto added = registry.AddTenant(tenant);
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  ASSERT_TRUE((*added)->PublishSharded(MakeSnapshot()).ok());

  const std::vector<int64_t> rows = AllRows();
  std::atomic<bool> stop{false};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> answered{0};
  std::thread client([&] {
    while (!stop.load()) {
      for (const auto& result : registry.ScoreBatch("starved", rows)) {
        if (result.ok()) {
          answered.fetch_add(1);
        } else {
          errors.fetch_add(1);
        }
      }
    }
  });
  while (answered.load() < static_cast<int64_t>(rows.size())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const auto resized = registry.Get("starved")->ResizeShards(4);
  ASSERT_TRUE(resized.ok()) << resized.status().ToString();
  EXPECT_TRUE(resized->moved_only_within_bound);

  const int64_t after_resize = answered.load();
  while (answered.load() < after_resize + static_cast<int64_t>(rows.size())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true);
  client.join();
  registry.Shutdown();

  EXPECT_EQ(errors.load(), 0);
  int64_t shed = 0;
  for (const auto& [name, value] : registry.Collect().counters) {
    if (name == "tenant.starved.admission.shed") shed = value;
  }
  EXPECT_GT(shed, 0) << "quota never bit; the drill is vacuous";
}

}  // namespace
}  // namespace atnn::cluster
