#include "cluster/admission.h"

#include <chrono>

#include <gtest/gtest.h>

namespace atnn::cluster {
namespace {

using Clock = TokenBucket::Clock;
using std::chrono::milliseconds;

Clock::time_point T0() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

TEST(TokenBucketTest, UnlimitedGrantsEverything) {
  TokenBucket bucket(0.0, 0.0);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_EQ(bucket.TryAcquire(1 << 20), 1 << 20);
  EXPECT_EQ(bucket.TryAcquireAt(7, T0()), 7);
}

TEST(TokenBucketTest, BurstThenStarveThenRefill) {
  TokenBucket bucket(/*rate_per_s=*/100.0, /*burst=*/50.0);
  // The full burst is available up front...
  EXPECT_EQ(bucket.TryAcquireAt(50, T0()), 50);
  // ...then the bucket is dry at the same instant...
  EXPECT_EQ(bucket.TryAcquireAt(10, T0()), 0);
  // ...and 100ms later exactly 10 tokens have accrued (100/s * 0.1s).
  EXPECT_EQ(bucket.TryAcquireAt(99, T0() + milliseconds(100)), 10);
}

TEST(TokenBucketTest, PartialGrantSplitsABatch) {
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/8.0);
  EXPECT_EQ(bucket.TryAcquireAt(20, T0()), 8)
      << "a 20-row batch against 8 tokens admits 8, sheds 12";
}

TEST(TokenBucketTest, RefillIsCappedAtBurst) {
  TokenBucket bucket(/*rate_per_s=*/1000.0, /*burst=*/5.0);
  EXPECT_EQ(bucket.TryAcquireAt(5, T0()), 5);
  // An hour of idle time must bank at most `burst` tokens.
  EXPECT_EQ(bucket.TryAcquireAt(100, T0() + std::chrono::hours(1)), 5);
}

TEST(TokenBucketTest, FirstAcquireAnchorsTheClock) {
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/10.0);
  // The first call defines t=0; it must not credit time since construction.
  EXPECT_EQ(bucket.TryAcquireAt(100, T0() + std::chrono::hours(1)), 10);
}

TEST(TokenBucketTest, DefaultBurstIsOneSecondOfRate) {
  TokenBucket bucket(/*rate_per_s=*/250.0, /*burst=*/0.0);
  EXPECT_EQ(bucket.burst(), 250.0);
  TokenBucket slow(/*rate_per_s=*/0.25, /*burst=*/0.0);
  EXPECT_EQ(slow.burst(), 1.0) << "sub-1/s rates still admit one request";
}

TEST(TokenBucketTest, NonPositiveWantGrantsZero) {
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/10.0);
  EXPECT_EQ(bucket.TryAcquireAt(0, T0()), 0);
  EXPECT_EQ(bucket.TryAcquireAt(-3, T0()), 0);
}

CircuitBreakerConfig SmallBreakerConfig() {
  CircuitBreakerConfig config;
  config.error_rate_threshold = 0.5;
  config.ewma_alpha = 0.5;
  config.min_samples = 4;
  config.cooldown_ms = 100;
  config.probes_to_close = 2;
  return config;
}

TEST(CircuitBreakerTest, ConfigValidation) {
  EXPECT_TRUE(CircuitBreakerConfig{}.Validate().ok());
  CircuitBreakerConfig config;
  config.error_rate_threshold = 0.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = {};
  config.ewma_alpha = 1.5;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = {};
  config.min_samples = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = {};
  config.cooldown_ms = -1;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = {};
  config.probes_to_close = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(CircuitBreakerTest, StartsClosedAndStaysClosedOnSuccess) {
  CircuitBreaker breaker(SmallBreakerConfig());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
  for (int i = 0; i < 100; ++i) breaker.RecordResultAt(true, T0());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.error_rate(), 0.0);
}

TEST(CircuitBreakerTest, OpensOnSustainedErrorsButNotBeforeMinSamples) {
  CircuitBreaker breaker(SmallBreakerConfig());
  breaker.RecordResultAt(false, T0());
  breaker.RecordResultAt(false, T0());
  breaker.RecordResultAt(false, T0());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed)
      << "three failures are below min_samples=4";
  breaker.RecordResultAt(false, T0());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, OccasionalErrorsDoNotTrip) {
  CircuitBreakerConfig config = SmallBreakerConfig();
  config.ewma_alpha = 0.1;
  // 10% error rate against a 50% threshold: never opens.
  CircuitBreaker steady(config);
  for (int i = 0; i < 200; ++i) {
    steady.RecordResultAt(/*ok=*/i % 10 != 0, T0());
  }
  EXPECT_EQ(steady.state(), BreakerState::kClosed);
  EXPECT_LT(steady.error_rate(), 0.3);
}

TEST(CircuitBreakerTest, ProbeBeforeCooldownIsIgnored) {
  CircuitBreaker breaker(SmallBreakerConfig());
  for (int i = 0; i < 4; ++i) breaker.RecordResultAt(false, T0());
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.RecordProbeAt(true, T0() + milliseconds(50));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen)
      << "a probe inside the 100ms cooldown must not move the breaker";
}

TEST(CircuitBreakerTest, ClosesAfterConsecutiveProbeSuccesses) {
  CircuitBreaker breaker(SmallBreakerConfig());
  for (int i = 0; i < 4; ++i) breaker.RecordResultAt(false, T0());
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  breaker.RecordProbeAt(true, T0() + milliseconds(150));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.AllowRequest())
      << "half-open still sheds serving traffic; only probes flow";
  breaker.RecordProbeAt(true, T0() + milliseconds(200));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.error_rate(), 0.0) << "a close wipes the error history";
}

TEST(CircuitBreakerTest, HalfOpenProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(SmallBreakerConfig());
  for (int i = 0; i < 4; ++i) breaker.RecordResultAt(false, T0());
  breaker.RecordProbeAt(true, T0() + milliseconds(150));
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);

  breaker.RecordProbeAt(false, T0() + milliseconds(200));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // The cooldown restarted at 200ms: a probe at 250ms is still ignored,
  // one at 310ms is admitted.
  breaker.RecordProbeAt(true, T0() + milliseconds(250));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.RecordProbeAt(true, T0() + milliseconds(310));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, ForceOpenSkipsTheCooldown) {
  CircuitBreaker breaker(SmallBreakerConfig());
  breaker.ForceOpenAt(T0());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  // The very next probe is admitted into half-open: rebuilt shards re-earn
  // admission through probes without sitting out the flap cooldown.
  breaker.RecordProbeAt(true, T0());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordProbeAt(true, T0());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, ClosedStateProbesFeedTheErrorRate) {
  CircuitBreaker breaker(SmallBreakerConfig());
  for (int i = 0; i < 4; ++i) breaker.RecordProbeAt(false, T0());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen)
      << "probe failures alone must be able to trip a closed breaker";
}

TEST(CircuitBreakerTest, ReopenAfterCloseNeedsFreshSamples) {
  CircuitBreaker breaker(SmallBreakerConfig());
  for (int i = 0; i < 4; ++i) breaker.RecordResultAt(false, T0());
  breaker.RecordProbeAt(true, T0() + milliseconds(150));
  breaker.RecordProbeAt(true, T0() + milliseconds(160));
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);
  // Post-close, min_samples protects the fresh state again.
  breaker.RecordResultAt(false, T0() + milliseconds(170));
  breaker.RecordResultAt(false, T0() + milliseconds(171));
  breaker.RecordResultAt(false, T0() + milliseconds(172));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordResultAt(false, T0() + milliseconds(173));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, StateToString) {
  EXPECT_STREQ(BreakerStateToString(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateToString(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace atnn::cluster
