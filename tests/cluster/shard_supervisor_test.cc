#include "cluster/shard_supervisor.h"

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "cluster/sharded_runtime.h"
#include "core/atnn.h"
#include "core/popularity.h"
#include "data/tmall.h"

namespace atnn::cluster {
namespace {

/// Same tiny deterministic world as the sharded-runtime tests; the
/// supervisor's contracts are all about state transitions, so every test
/// drives Step() by hand instead of the background thread.
class ShardSupervisorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        core::testing_helpers::MakeNormalizedTinyDataset());
    core::AtnnConfig config;
    config.tower =
        core::testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = new core::AtnnModel(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, config);
    const auto group = core::SelectActiveUsers(*dataset_, 64);
    predictor_ = new core::PopularityPredictor(
        core::PopularityPredictor::Build(*model_, *dataset_, group));
  }

  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static runtime::ServingSnapshot MakeSnapshot() {
    runtime::ServingSnapshot snapshot;
    snapshot.model = runtime::Unowned(model_);
    snapshot.predictor = runtime::Unowned(predictor_);
    snapshot.item_profiles = runtime::Unowned(&dataset_->item_profiles);
    snapshot.tag = "test";
    return snapshot;
  }

  /// Two shards, chaos hooks armed, a fast breaker that probes can walk
  /// closed in two successes.
  static std::unique_ptr<ShardedRuntime> MakeRuntime(size_t num_shards = 2) {
    ShardedRuntimeConfig config;
    config.num_shards = num_shards;
    config.shard.num_workers = 2;
    config.shard.batcher.max_batch_size = 16;
    config.shard.batcher.max_delay_us = 500;
    config.shard.batcher.queue_capacity = 256;
    config.shard.fault_injection.enabled = true;
    config.breaker.min_samples = 4;
    config.breaker.cooldown_ms = 0;
    config.breaker.probes_to_close = 2;
    auto runtime = std::make_unique<ShardedRuntime>(config);
    const auto version = runtime->PublishSharded(MakeSnapshot());
    EXPECT_TRUE(version.ok()) << version.status().ToString();
    return runtime;
  }

  /// Thresholds small enough that each transition is a couple of Steps.
  static ShardSupervisorConfig FastConfig() {
    ShardSupervisorConfig config;
    config.probe_deadline_us = 200'000;
    config.consecutive_to_suspect = 2;
    config.consecutive_to_dead = 4;
    config.probes_to_healthy = 3;
    config.rebuild_retry.max_attempts = 2;
    config.rebuild_retry.initial_backoff_ms = 1;
    return config;
  }

  static size_t StepUntil(ShardSupervisor* supervisor, size_t shard,
                          ShardHealth target, size_t max_steps = 64) {
    size_t steps = 0;
    while (supervisor->health(shard) != target && steps < max_steps) {
      supervisor->Step();
      ++steps;
    }
    return steps;
  }

  static data::TmallDataset* dataset_;
  static core::AtnnModel* model_;
  static core::PopularityPredictor* predictor_;
};

data::TmallDataset* ShardSupervisorTest::dataset_ = nullptr;
core::AtnnModel* ShardSupervisorTest::model_ = nullptr;
core::PopularityPredictor* ShardSupervisorTest::predictor_ = nullptr;

double CounterValue(const obs::MetricsSnapshot& snapshot,
                    const std::string& name) {
  for (const auto& [counter_name, value] : snapshot.counters) {
    if (counter_name == name) return static_cast<double>(value);
  }
  return -1.0;
}

TEST_F(ShardSupervisorTest, ConfigValidation) {
  EXPECT_TRUE(ShardSupervisorConfig{}.Validate().ok());
  ShardSupervisorConfig config;
  config.probe_deadline_us = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = {};
  config.probe_period_ms = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = {};
  config.consecutive_to_suspect = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = {};
  config.consecutive_to_dead = config.consecutive_to_suspect;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument)
      << "dead must be strictly beyond suspect";
  config = {};
  config.probes_to_healthy = 0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config = {};
  config.latency_ewma_alpha = 0.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(ShardSupervisorTest, HealthyShardsStayHealthyAndTrackLatency) {
  auto runtime = MakeRuntime();
  ShardSupervisor supervisor(runtime.get(), FastConfig());
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(supervisor.Step(), 2u);
  }
  EXPECT_EQ(supervisor.health(0), ShardHealth::kHealthy);
  EXPECT_EQ(supervisor.health(1), ShardHealth::kHealthy);
  EXPECT_GT(supervisor.probe_latency_us(0), 0.0)
      << "healthy probes must feed the latency EWMA";
  const auto metrics = supervisor.Collect();
  EXPECT_EQ(CounterValue(metrics, "supervisor.probes"), 10.0);
  EXPECT_EQ(CounterValue(metrics, "supervisor.probe_failures"), 0.0);
  EXPECT_EQ(CounterValue(metrics, "supervisor.transitions"), 0.0);
}

TEST_F(ShardSupervisorTest, WalksHealthyThroughSuspectToDead) {
  auto runtime = MakeRuntime();
  ShardSupervisorConfig config = FastConfig();
  config.auto_rebuild = false;  // diagnose-only: the state must park at dead
  ShardSupervisor supervisor(runtime.get(), config);
  supervisor.Step();
  ASSERT_EQ(supervisor.health(0), ShardHealth::kHealthy);

  runtime->ShutDownShard(0);
  supervisor.Step();
  EXPECT_EQ(supervisor.health(0), ShardHealth::kHealthy)
      << "one failure is below consecutive_to_suspect=2";
  supervisor.Step();
  EXPECT_EQ(supervisor.health(0), ShardHealth::kSuspect);
  supervisor.Step();
  EXPECT_EQ(supervisor.health(0), ShardHealth::kSuspect)
      << "three failures are below consecutive_to_dead=4";
  supervisor.Step();
  EXPECT_EQ(supervisor.health(0), ShardHealth::kDead);
  EXPECT_EQ(supervisor.health(1), ShardHealth::kHealthy)
      << "the healthy neighbour must be untouched";
  // Without auto_rebuild the shard stays dead.
  supervisor.Step();
  EXPECT_EQ(supervisor.health(0), ShardHealth::kDead);
  EXPECT_EQ(CounterValue(supervisor.Collect(), "supervisor.rebuilds"), 0.0);
}

TEST_F(ShardSupervisorTest, SuspectClearsOnOneHealthyProbe) {
  auto runtime = MakeRuntime();
  ShardSupervisor supervisor(runtime.get(), FastConfig());
  // Degrade shard 0 (batches fail => answers fall to the fallback chain,
  // which probes count as unhealthy), but keep it alive.
  runtime->shard(0).fault_injector().SetFailAllBatches(true);
  supervisor.Step();
  supervisor.Step();
  ASSERT_EQ(supervisor.health(0), ShardHealth::kSuspect);

  runtime->shard(0).fault_injector().SetFailAllBatches(false);
  supervisor.Step();
  EXPECT_EQ(supervisor.health(0), ShardHealth::kHealthy)
      << "suspect debounces; one good probe clears it";
}

TEST_F(ShardSupervisorTest, DeadShardAutoRebuildsAndReearnsHealthy) {
  auto runtime = MakeRuntime();
  ShardSupervisor supervisor(runtime.get(), FastConfig());
  runtime->ShutDownShard(0);

  // 4 failed probes -> dead -> same-step rebuild -> recovering.
  for (int round = 0; round < 4; ++round) supervisor.Step();
  EXPECT_EQ(supervisor.health(0), ShardHealth::kRecovering)
      << "auto_rebuild must fire in the round the shard goes dead";
  EXPECT_EQ(CounterValue(supervisor.Collect(), "supervisor.rebuilds"), 1.0);
  EXPECT_NE(runtime->breaker(0).state(), BreakerState::kClosed)
      << "a rebuilt shard must not be serving yet";

  // Probes walk the breaker closed and the health back to kHealthy.
  const size_t steps = StepUntil(&supervisor, 0, ShardHealth::kHealthy);
  EXPECT_LT(steps, 64u) << "rebuilt shard never re-earned healthy";
  EXPECT_EQ(runtime->breaker(0).state(), BreakerState::kClosed);

  // And the recovered shard serves fresh again.
  std::vector<int64_t> rows;
  for (int64_t row = 0; row < dataset_->item_profiles.num_rows(); ++row) {
    rows.push_back(row);
  }
  const auto results = runtime->ScoreBatch(rows);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().tier, runtime::ServingTier::kFresh);
  }
}

TEST_F(ShardSupervisorTest, RecoveringRelapsesToDeadAndRebuildsAgain) {
  auto runtime = MakeRuntime();
  ShardSupervisor supervisor(runtime.get(), FastConfig());
  runtime->ShutDownShard(0);
  for (int round = 0; round < 4; ++round) supervisor.Step();
  ASSERT_EQ(supervisor.health(0), ShardHealth::kRecovering);

  // The rebuilt instance is sick too: recovering must relapse to dead and
  // trigger a second rebuild (whose instance is then allowed to be fine).
  runtime->shard(0).fault_injector().SetFailAllBatches(true);
  for (int round = 0; round < 4; ++round) supervisor.Step();
  EXPECT_GE(CounterValue(supervisor.Collect(), "supervisor.rebuilds"), 2.0)
      << "a relapse must re-enter the rebuild path";

  const size_t steps = StepUntil(&supervisor, 0, ShardHealth::kHealthy);
  EXPECT_LT(steps, 64u);
}

TEST_F(ShardSupervisorTest, ExternallyRevivedDeadShardReearnsThroughProbation) {
  auto runtime = MakeRuntime();
  ShardSupervisorConfig config = FastConfig();
  config.auto_rebuild = false;
  ShardSupervisor supervisor(runtime.get(), config);
  runtime->ShutDownShard(0);
  for (int round = 0; round < 4; ++round) supervisor.Step();
  ASSERT_EQ(supervisor.health(0), ShardHealth::kDead);

  // Operator-path recovery: an external RebuildShard revives it...
  ASSERT_TRUE(runtime->RebuildShard(0).ok());
  supervisor.Step();
  // ...but the supervisor still demands probation, not instant healthy.
  EXPECT_EQ(supervisor.health(0), ShardHealth::kRecovering);
  const size_t steps = StepUntil(&supervisor, 0, ShardHealth::kHealthy);
  EXPECT_LT(steps, 64u);
}

TEST_F(ShardSupervisorTest, StepTracksLiveResize) {
  auto runtime = MakeRuntime(2);
  ShardSupervisor supervisor(runtime.get(), FastConfig());
  EXPECT_EQ(supervisor.Step(), 2u);
  const auto report = runtime->ResizeShards(4);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(supervisor.Step(), 4u)
      << "a probe round must cover shards added by a live resize";
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(supervisor.health(s), ShardHealth::kHealthy);
  }
}

TEST_F(ShardSupervisorTest, BackgroundThreadProbesAndStops) {
  auto runtime = MakeRuntime();
  ShardSupervisorConfig config = FastConfig();
  config.probe_period_ms = 1;
  ShardSupervisor supervisor(runtime.get(), config);
  supervisor.Start();
  supervisor.Start();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  supervisor.Stop();
  const double probes =
      CounterValue(supervisor.Collect(), "supervisor.probes");
  EXPECT_GT(probes, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(CounterValue(supervisor.Collect(), "supervisor.probes"), probes)
      << "Stop() must actually stop the probe loop";
  supervisor.Stop();  // idempotent
}

}  // namespace
}  // namespace atnn::cluster
