#include "cluster/sharded_runtime.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "core/atnn.h"
#include "core/popularity.h"
#include "data/tmall.h"
#include "serving/popularity_index.h"

namespace atnn::cluster {
namespace {

/// Same tiny world as the single-runtime tests: the sharded front-end's
/// correctness contract is "identical scores to the unsharded path", which
/// holds at (deterministic, seeded) initialization without training.
class ShardedRuntimeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        core::testing_helpers::MakeNormalizedTinyDataset());
    core::AtnnConfig config;
    config.tower =
        core::testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = new core::AtnnModel(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, config);
    const auto group = core::SelectActiveUsers(*dataset_, 64);
    predictor_ = new core::PopularityPredictor(
        core::PopularityPredictor::Build(*model_, *dataset_, group));
  }

  static void TearDownTestSuite() {
    delete predictor_;
    predictor_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static runtime::ServingSnapshot MakeSnapshot() {
    runtime::ServingSnapshot snapshot;
    snapshot.model = runtime::Unowned(model_);
    snapshot.predictor = runtime::Unowned(predictor_);
    snapshot.item_profiles = runtime::Unowned(&dataset_->item_profiles);
    snapshot.tag = "test";
    return snapshot;
  }

  static ShardedRuntimeConfig SmallShardedConfig(size_t num_shards) {
    ShardedRuntimeConfig config;
    config.num_shards = num_shards;
    config.shard.num_workers = 2;
    config.shard.batcher.max_batch_size = 16;
    config.shard.batcher.max_delay_us = 500;
    config.shard.batcher.queue_capacity = 256;
    return config;
  }

  static std::shared_ptr<serving::PopularityIndex> FlatPrior(double value) {
    auto prior = std::make_shared<serving::PopularityIndex>();
    for (int64_t row = 0; row < dataset_->item_profiles.num_rows(); ++row) {
      prior->Upsert(row, value);
    }
    return prior;
  }

  static std::vector<int64_t> AllRows() {
    std::vector<int64_t> rows(
        static_cast<size_t>(dataset_->item_profiles.num_rows()));
    for (size_t i = 0; i < rows.size(); ++i) {
      rows[i] = static_cast<int64_t>(i);
    }
    return rows;
  }

  static data::TmallDataset* dataset_;
  static core::AtnnModel* model_;
  static core::PopularityPredictor* predictor_;
};

data::TmallDataset* ShardedRuntimeTest::dataset_ = nullptr;
core::AtnnModel* ShardedRuntimeTest::model_ = nullptr;
core::PopularityPredictor* ShardedRuntimeTest::predictor_ = nullptr;

TEST_F(ShardedRuntimeTest, ConfigValidationReturnsStatusNotAbort) {
  ShardedRuntimeConfig config = SmallShardedConfig(0);
  EXPECT_EQ(ShardedRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = SmallShardedConfig(2);
  config.fanout_budget_fraction = 0.0;
  EXPECT_EQ(ShardedRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);
  config.fanout_budget_fraction = 1.5;
  EXPECT_EQ(ShardedRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = SmallShardedConfig(2);
  config.default_deadline_us = -1;
  EXPECT_EQ(ShardedRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  config = SmallShardedConfig(2);
  config.shard.num_workers = 0;  // invalid per-shard template
  EXPECT_EQ(ShardedRuntime::Create(config).status().code(),
            StatusCode::kInvalidArgument);

  const auto runtime = ShardedRuntime::Create(SmallShardedConfig(2));
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  EXPECT_EQ((*runtime)->num_shards(), 2u);
  // The ring can never disagree with the shard count.
  EXPECT_EQ((*runtime)->ring().num_shards(), 2u);
}

TEST_F(ShardedRuntimeTest, MatchesUnshardedScoringAcrossShardCounts) {
  const std::vector<double> expected =
      predictor_->ScoreItems(*model_, *dataset_, dataset_->new_items);
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedRuntime runtime(SmallShardedConfig(shards));
    const auto published = runtime.PublishSharded(MakeSnapshot());
    ASSERT_TRUE(published.ok()) << published.status().ToString();
    EXPECT_EQ(published.value(), 1u);
    EXPECT_EQ(runtime.snapshot_version(), 1u);

    const auto results = runtime.ScoreBatch(dataset_->new_items);
    ASSERT_EQ(results.size(), dataset_->new_items.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].ok())
          << shards << " shards: " << results[i].status().ToString();
      EXPECT_NEAR(results[i].value().score, expected[i], 1e-9)
          << shards << " shards, item " << dataset_->new_items[i];
      EXPECT_EQ(results[i].value().tier, runtime::ServingTier::kFresh);
      EXPECT_EQ(results[i].value().snapshot_version, 1u);
    }
    runtime.Shutdown();
  }
}

TEST_F(ShardedRuntimeTest, RoutesEveryRowToItsRingShard) {
  ShardedRuntime runtime(SmallShardedConfig(4));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());

  const std::vector<int64_t> rows = AllRows();
  std::vector<int64_t> expected_per_shard(4, 0);
  for (const int64_t row : rows) {
    ++expected_per_shard[runtime.ring().ShardFor(row)];
  }
  const auto results = runtime.ScoreBatch(rows);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  runtime.Shutdown();
  for (size_t s = 0; s < 4; ++s) {
    // With 400 catalog rows each shard owns some slice, and every request
    // must have been admitted by exactly the shard the ring names.
    EXPECT_GT(expected_per_shard[s], 0) << "degenerate ring split";
    EXPECT_EQ(runtime.shard(s).stats().enqueued, expected_per_shard[s])
        << "shard " << s;
  }
}

TEST_F(ShardedRuntimeTest, ScoreBeforePublishFailsCleanly) {
  ShardedRuntime runtime(SmallShardedConfig(2));
  const auto single = runtime.Score(0);
  EXPECT_EQ(single.status().code(), StatusCode::kFailedPrecondition);
  const auto batch = runtime.ScoreBatch({0, 1, 2});
  ASSERT_EQ(batch.size(), 3u);
  for (const auto& result : batch) {
    EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(ShardedRuntimeTest, OutOfRangeRowIsInvalidArgumentOthersStillServe) {
  ShardedRuntime runtime(SmallShardedConfig(2));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const int64_t valid = dataset_->new_items.front();
  const auto results = runtime.ScoreBatch(
      {-1, valid, dataset_->item_profiles.num_rows() + 5});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(results[1].ok()) << results[1].status().ToString();
  EXPECT_EQ(results[2].status().code(), StatusCode::kInvalidArgument);
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, DeadShardDegradesThroughPriorNeverErrors) {
  ShardedRuntimeConfig config = SmallShardedConfig(2);
  config.prior = FlatPrior(0.25);
  ShardedRuntime runtime(config);
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const std::vector<double> expected =
      predictor_->ScoreItems(*model_, *dataset_, AllRows());

  runtime.ShutDownShard(0);

  const std::vector<int64_t> rows = AllRows();
  const auto results = runtime.ScoreBatch(rows);
  int64_t degraded = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    // The partial-failure contract: a dead shard is a serving-quality
    // event, never a request failure.
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    if (runtime.ring().ShardFor(rows[i]) == 0) {
      EXPECT_EQ(results[i].value().tier, runtime::ServingTier::kPrior);
      EXPECT_EQ(results[i].value().score, 0.25);
      ++degraded;
    } else {
      EXPECT_EQ(results[i].value().tier, runtime::ServingTier::kFresh);
      EXPECT_NEAR(results[i].value().score, expected[i], 1e-9);
    }
  }
  EXPECT_GT(degraded, 0) << "shard 0 owned no rows; test is vacuous";
  runtime.Shutdown();

  const auto snapshot = runtime.Collect();
  int64_t shard_errors = 0;
  int64_t frontend_degraded = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "gather.shard_errors") shard_errors = value;
    if (name == "gather.degraded") frontend_degraded = value;
  }
  EXPECT_EQ(shard_errors, degraded);
  EXPECT_EQ(frontend_degraded, degraded);
}

TEST_F(ShardedRuntimeTest, ExpiredBudgetDegradesEveryAnswerWithTier) {
  ShardedRuntimeConfig config = SmallShardedConfig(2);
  config.prior = FlatPrior(0.125);
  ShardedRuntime runtime(config);
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());

  // A 1us whole-request budget cannot cover a batcher flush: every answer
  // must be degraded — and still tier-tagged, never an error.
  const auto results = runtime.ScoreBatch(dataset_->new_items, 1);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(result.value().tier, runtime::ServingTier::kFresh);
  }
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, PublishAdvancesAllShardsInLockstep) {
  ShardedRuntime runtime(SmallShardedConfig(4));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const auto second = runtime.PublishSharded(MakeSnapshot());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 2u);
  EXPECT_EQ(runtime.snapshot_version(), 2u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(runtime.shard(s).snapshot_version(), 2u) << "shard " << s;
  }
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, CorruptPublishRejectsBeforeAnyShardSwaps) {
  ShardedRuntime runtime(SmallShardedConfig(2));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());

  runtime::ServingSnapshot corrupt = MakeSnapshot();
  corrupt.model = nullptr;
  EXPECT_EQ(runtime.PublishSharded(corrupt).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(runtime.snapshot_version(), 1u);
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(runtime.shard(s).snapshot_version(), 1u) << "shard " << s;
  }
  // Version 1 still serves.
  EXPECT_TRUE(runtime.Score(dataset_->new_items.front()).ok());
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, SingleRowScoreMatchesBatch) {
  ShardedRuntime runtime(SmallShardedConfig(2));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const int64_t item = dataset_->new_items.front();
  const auto single = runtime.Score(item);
  ASSERT_TRUE(single.ok());
  const auto batch = runtime.ScoreBatch({item});
  ASSERT_TRUE(batch.front().ok());
  EXPECT_NEAR(single.value().score, batch.front().value().score, 1e-12);
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, CollectKeepsShardNamespacesDisjointAndSorted) {
  ShardedRuntime runtime(SmallShardedConfig(2));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  for (const int64_t item : dataset_->new_items) {
    ASSERT_TRUE(runtime.Score(item).ok());
  }
  runtime.Shutdown();

  const auto snapshot = runtime.Collect();
  std::set<std::string> names;
  for (const auto& [name, value] : snapshot.counters) names.insert(name);
  // Front-end metrics live at the root; each shard's runtime metrics under
  // its own prefix.
  EXPECT_TRUE(names.count("gather.requests"));
  EXPECT_TRUE(names.count("shard0.enqueued"));
  EXPECT_TRUE(names.count("shard1.enqueued"));
  EXPECT_TRUE(names.count("shard0.completed_ok"));
  // Disjoint: concatenation produced no duplicate names.
  EXPECT_EQ(names.size(), snapshot.counters.size());
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  EXPECT_TRUE(std::is_sorted(
      snapshot.histograms.begin(), snapshot.histograms.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));

  int64_t total_enqueued = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "shard0.enqueued" || name == "shard1.enqueued") {
      total_enqueued += value;
    }
  }
  EXPECT_EQ(total_enqueued,
            static_cast<int64_t>(dataset_->new_items.size()));
}

TEST_F(ShardedRuntimeTest, ResizeRequiresAPublishedCatalog) {
  ShardedRuntime runtime(SmallShardedConfig(2));
  EXPECT_EQ(runtime.ResizeShards(0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(runtime.ResizeShards(4).status().code(),
            StatusCode::kFailedPrecondition);
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, ResizeGrowMovesOnlyBoundedRemapRows) {
  ShardedRuntime runtime(SmallShardedConfig(2));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const std::vector<double> expected =
      predictor_->ScoreItems(*model_, *dataset_, AllRows());

  const auto resized = runtime.ResizeShards(4);
  ASSERT_TRUE(resized.ok()) << resized.status().ToString();
  EXPECT_EQ(resized->from_shards, 2u);
  EXPECT_EQ(resized->to_shards, 4u);
  EXPECT_EQ(resized->total_rows, dataset_->item_profiles.num_rows());
  EXPECT_TRUE(resized->moved_only_within_bound);
  // Consistent hashing moves SOME rows (new shards must own a slice) but
  // strictly fewer than a naive mod-N reshuffle would.
  EXPECT_GT(resized->moved_rows, 0);
  EXPECT_LT(resized->moved_rows, resized->total_rows);
  EXPECT_EQ(resized->epoch, 2u);
  EXPECT_EQ(runtime.num_shards(), 4u);
  EXPECT_EQ(runtime.ring().num_shards(), 4u);

  // Every row still serves fresh with an unchanged score on the new
  // routing — including rows that moved shards.
  const std::vector<int64_t> rows = AllRows();
  const auto results = runtime.ScoreBatch(rows);
  for (size_t i = 0; i < rows.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    EXPECT_EQ(results[i].value().tier, runtime::ServingTier::kFresh);
    EXPECT_NEAR(results[i].value().score, expected[i], 1e-9);
  }
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, ResizeShrinkKeepsEveryRowServable) {
  ShardedRuntime runtime(SmallShardedConfig(4));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const auto resized = runtime.ResizeShards(2);
  ASSERT_TRUE(resized.ok()) << resized.status().ToString();
  EXPECT_TRUE(resized->moved_only_within_bound);
  EXPECT_EQ(runtime.num_shards(), 2u);

  const auto results = runtime.ScoreBatch(AllRows());
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tier, runtime::ServingTier::kFresh);
  }
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, ResizeToSameCountIsANoOp) {
  ShardedRuntime runtime(SmallShardedConfig(2));
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const uint64_t epoch_before = runtime.epoch_id();
  const auto resized = runtime.ResizeShards(2);
  ASSERT_TRUE(resized.ok());
  EXPECT_EQ(resized->moved_rows, 0);
  EXPECT_EQ(resized->epoch, epoch_before);
  EXPECT_EQ(runtime.epoch_id(), epoch_before);
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, ProbeShardReportsHealthThroughTiers) {
  ShardedRuntimeConfig config = SmallShardedConfig(2);
  config.prior = FlatPrior(0.5);
  ShardedRuntime runtime(config);

  // Unpublished: vacuously healthy (nothing to probe), out of range is an
  // explicit error.
  EXPECT_TRUE(runtime.ProbeShard(0, /*salt=*/1).healthy());
  EXPECT_EQ(runtime.ProbeShard(9, /*salt=*/1).status.code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const ProbeReport healthy = runtime.ProbeShard(0, /*salt=*/2);
  EXPECT_TRUE(healthy.healthy());
  EXPECT_EQ(healthy.tier, runtime::ServingTier::kFresh);
  EXPECT_GE(healthy.latency_us, 0);

  // A shut-down shard cannot answer its own probe (the probe bypasses the
  // front-end's degraded fallback on purpose — it measures the shard, not
  // the fallback): the report is unhealthy.
  runtime.ShutDownShard(1);
  EXPECT_FALSE(runtime.ProbeShard(1, /*salt=*/3).healthy());
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, RebuildShardReadmitsOnlyThroughBreakerProbes) {
  ShardedRuntimeConfig config = SmallShardedConfig(2);
  config.prior = FlatPrior(0.75);
  config.breaker.cooldown_ms = 0;
  config.breaker.probes_to_close = 2;
  ShardedRuntime runtime(config);
  EXPECT_EQ(runtime.RebuildShard(0).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  EXPECT_EQ(runtime.RebuildShard(7).code(), StatusCode::kInvalidArgument);

  runtime.ShutDownShard(0);
  const uint64_t epoch_before = runtime.epoch_id();
  ASSERT_TRUE(runtime.RebuildShard(0).ok());
  EXPECT_EQ(runtime.epoch_id(), epoch_before + 1);

  // The rebuilt runtime holds a fresh slice, but the breaker was force-
  // opened: shard 0 traffic sheds tier-tagged until probes close it.
  EXPECT_EQ(runtime.breaker(0).state(), BreakerState::kOpen);
  std::vector<int64_t> shard0_rows;
  for (const int64_t row : AllRows()) {
    if (runtime.ring().ShardFor(row) == 0) shard0_rows.push_back(row);
  }
  ASSERT_FALSE(shard0_rows.empty());
  for (const auto& result : runtime.ScoreBatch(shard0_rows)) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_NE(result.value().tier, runtime::ServingTier::kFresh);
  }

  // Probe traffic walks the breaker open -> half-open -> closed; only
  // then does the shard serve fresh again.
  for (int probe = 0; probe < 8 &&
                      runtime.breaker(0).state() != BreakerState::kClosed;
       ++probe) {
    EXPECT_TRUE(runtime.ProbeShard(0, static_cast<uint64_t>(probe))
                    .status.ok());
  }
  EXPECT_EQ(runtime.breaker(0).state(), BreakerState::kClosed);
  for (const auto& result : runtime.ScoreBatch(shard0_rows)) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tier, runtime::ServingTier::kFresh);
  }

  const auto snapshot = runtime.Collect();
  int64_t rebuilds = 0;
  int64_t breaker_shed = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "gather.rebuilds") rebuilds = value;
    if (name == "gather.breaker_shed") breaker_shed = value;
  }
  EXPECT_EQ(rebuilds, 1);
  EXPECT_EQ(breaker_shed, static_cast<int64_t>(shard0_rows.size()));
  runtime.Shutdown();
}

TEST_F(ShardedRuntimeTest, DegradedBatchAnswersTierTaggedWithoutShards) {
  ShardedRuntimeConfig config = SmallShardedConfig(2);
  config.prior = FlatPrior(0.375);
  ShardedRuntime runtime(config);

  // Before any publish a shed cannot bound-check, but it must still
  // answer: admission control runs ahead of serving state.
  const auto unpublished = runtime.DegradedBatch({0, 1});
  ASSERT_EQ(unpublished.size(), 2u);
  for (const auto& result : unpublished) {
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().tier, runtime::ServingTier::kPrior);
    EXPECT_EQ(result.value().score, 0.375);
  }

  ASSERT_TRUE(runtime.PublishSharded(MakeSnapshot()).ok());
  const auto results = runtime.DegradedBatch(
      {-1, dataset_->new_items.front(), dataset_->item_profiles.num_rows()});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(results[1].value().tier, runtime::ServingTier::kPrior);
  EXPECT_EQ(results[2].status().code(), StatusCode::kInvalidArgument);
  // No shard saw any of it.
  for (size_t s = 0; s < 2; ++s) {
    EXPECT_EQ(runtime.shard(s).stats().enqueued, 0) << "shard " << s;
  }
  runtime.Shutdown();
}

}  // namespace
}  // namespace atnn::cluster
