#include "cluster/tenant_registry.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../core/test_helpers.h"
#include "core/atnn.h"
#include "core/popularity.h"
#include "data/tmall.h"
#include "serving/popularity_index.h"

namespace atnn::cluster {
namespace {

/// Two predictors over one world stand in for two model tenants (the
/// paper's A/B arms): same catalog, different mean-user vectors, so each
/// tenant must answer with its own scores.
class TenantRegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new data::TmallDataset(
        core::testing_helpers::MakeNormalizedTinyDataset());
    core::AtnnConfig config;
    config.tower =
        core::testing_helpers::TinyTowerConfig(nn::TowerKind::kDeepCross);
    config.seed = 11;
    model_ = new core::AtnnModel(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, config);
    predictor_a_ = new core::PopularityPredictor(
        core::PopularityPredictor::Build(
            *model_, *dataset_, core::SelectActiveUsers(*dataset_, 64)));
    predictor_b_ = new core::PopularityPredictor(
        core::PopularityPredictor::Build(
            *model_, *dataset_, core::SelectActiveUsers(*dataset_, 16)));
  }

  static void TearDownTestSuite() {
    delete predictor_b_;
    predictor_b_ = nullptr;
    delete predictor_a_;
    predictor_a_ = nullptr;
    delete model_;
    model_ = nullptr;
    delete dataset_;
    dataset_ = nullptr;
  }

  static runtime::ServingSnapshot MakeSnapshot(
      core::PopularityPredictor* predictor) {
    runtime::ServingSnapshot snapshot;
    snapshot.model = runtime::Unowned(model_);
    snapshot.predictor = runtime::Unowned(predictor);
    snapshot.item_profiles = runtime::Unowned(&dataset_->item_profiles);
    snapshot.tag = "test";
    return snapshot;
  }

  static TenantConfig SmallTenant(const std::string& name) {
    TenantConfig config;
    config.name = name;
    config.sharded.num_shards = 2;
    config.sharded.shard.num_workers = 2;
    config.sharded.shard.batcher.max_batch_size = 16;
    config.sharded.shard.batcher.max_delay_us = 500;
    config.sharded.shard.batcher.queue_capacity = 256;
    return config;
  }

  static std::shared_ptr<serving::PopularityIndex> FlatPrior(double value) {
    auto prior = std::make_shared<serving::PopularityIndex>();
    for (int64_t row = 0; row < dataset_->item_profiles.num_rows(); ++row) {
      prior->Upsert(row, value);
    }
    return prior;
  }

  static data::TmallDataset* dataset_;
  static core::AtnnModel* model_;
  static core::PopularityPredictor* predictor_a_;
  static core::PopularityPredictor* predictor_b_;
};

data::TmallDataset* TenantRegistryTest::dataset_ = nullptr;
core::AtnnModel* TenantRegistryTest::model_ = nullptr;
core::PopularityPredictor* TenantRegistryTest::predictor_a_ = nullptr;
core::PopularityPredictor* TenantRegistryTest::predictor_b_ = nullptr;

TEST_F(TenantRegistryTest, TwoTenantsServeConcurrentlyWithTheirOwnModels) {
  TenantRegistry registry;
  const auto atnn = registry.AddTenant(SmallTenant("atnn"));
  ASSERT_TRUE(atnn.ok()) << atnn.status().ToString();
  const auto multitask = registry.AddTenant(SmallTenant("multitask"));
  ASSERT_TRUE(multitask.ok()) << multitask.status().ToString();
  ASSERT_TRUE(
      (*atnn)->PublishSharded(MakeSnapshot(predictor_a_)).ok());
  ASSERT_TRUE(
      (*multitask)->PublishSharded(MakeSnapshot(predictor_b_)).ok());

  const std::vector<double> expected_a =
      predictor_a_->ScoreItems(*model_, *dataset_, dataset_->new_items);
  const std::vector<double> expected_b =
      predictor_b_->ScoreItems(*model_, *dataset_, dataset_->new_items);

  // Both arms serve at once; each must only ever answer with its own
  // model's scores.
  std::atomic<int> failures{0};
  const auto drive = [&](const std::string& tenant,
                         const std::vector<double>& expected) {
    for (int round = 0; round < 5; ++round) {
      const auto results =
          registry.ScoreBatch(tenant, dataset_->new_items);
      for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok() ||
            std::abs(results[i].value().score - expected[i]) > 1e-9) {
          failures.fetch_add(1);
        }
      }
    }
  };
  std::thread thread_a(drive, "atnn", std::cref(expected_a));
  std::thread thread_b(drive, "multitask", std::cref(expected_b));
  thread_a.join();
  thread_b.join();
  EXPECT_EQ(failures.load(), 0);

  // The arms genuinely differ — agreement would mean the registry routed
  // both names to one runtime.
  double max_gap = 0.0;
  for (size_t i = 0; i < expected_a.size(); ++i) {
    max_gap = std::max(max_gap, std::abs(expected_a[i] - expected_b[i]));
  }
  EXPECT_GT(max_gap, 1e-6);
  registry.Shutdown();
}

TEST_F(TenantRegistryTest, CollectKeepsTenantNamespacesDisjoint) {
  TenantRegistry registry;
  const auto atnn = registry.AddTenant(SmallTenant("atnn"));
  ASSERT_TRUE(atnn.ok());
  const auto multitask = registry.AddTenant(SmallTenant("multitask"));
  ASSERT_TRUE(multitask.ok());
  ASSERT_TRUE((*atnn)->PublishSharded(MakeSnapshot(predictor_a_)).ok());
  ASSERT_TRUE(
      (*multitask)->PublishSharded(MakeSnapshot(predictor_b_)).ok());
  for (const int64_t item : dataset_->new_items) {
    ASSERT_TRUE(registry.Score("atnn", item).ok());
    ASSERT_TRUE(registry.Score("multitask", item).ok());
  }
  registry.Shutdown();

  const auto snapshot = registry.Collect();
  std::set<std::string> names;
  for (const auto& [name, value] : snapshot.counters) {
    names.insert(name);
    // Every metric is attributable to exactly one tenant.
    EXPECT_TRUE(name.rfind("tenant.atnn.", 0) == 0 ||
                name.rfind("tenant.multitask.", 0) == 0)
        << name;
  }
  EXPECT_EQ(names.size(), snapshot.counters.size()) << "duplicate names";
  // The full path survives both prefix layers: tenant, then shard.
  EXPECT_TRUE(names.count("tenant.atnn.gather.requests"));
  EXPECT_TRUE(names.count("tenant.atnn.shard0.enqueued"));
  EXPECT_TRUE(names.count("tenant.multitask.shard1.enqueued"));
  EXPECT_TRUE(std::is_sorted(
      snapshot.counters.begin(), snapshot.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST_F(TenantRegistryTest, TenantsKeepIndependentDeadlineBudgets) {
  TenantRegistry registry;
  TenantConfig relaxed = SmallTenant("relaxed");
  relaxed.sharded.prior = FlatPrior(0.25);
  TenantConfig tight = SmallTenant("tight");
  tight.sharded.prior = FlatPrior(0.25);
  // One arm serves without a budget, the other under an unmeetable 1us
  // whole-request budget: the tight arm's degradation must not leak into
  // the relaxed arm.
  tight.sharded.default_deadline_us = 1;
  const auto relaxed_runtime = registry.AddTenant(relaxed);
  ASSERT_TRUE(relaxed_runtime.ok());
  const auto tight_runtime = registry.AddTenant(tight);
  ASSERT_TRUE(tight_runtime.ok());
  ASSERT_TRUE(
      (*relaxed_runtime)->PublishSharded(MakeSnapshot(predictor_a_)).ok());
  ASSERT_TRUE(
      (*tight_runtime)->PublishSharded(MakeSnapshot(predictor_a_)).ok());

  const auto relaxed_results =
      registry.ScoreBatch("relaxed", dataset_->new_items);
  const auto tight_results =
      registry.ScoreBatch("tight", dataset_->new_items);
  for (size_t i = 0; i < dataset_->new_items.size(); ++i) {
    ASSERT_TRUE(relaxed_results[i].ok());
    EXPECT_EQ(relaxed_results[i].value().tier,
              runtime::ServingTier::kFresh);
    ASSERT_TRUE(tight_results[i].ok());
    EXPECT_NE(tight_results[i].value().tier, runtime::ServingTier::kFresh);
  }
  registry.Shutdown();

  // The budget pressure is visible exactly where it happened: some
  // degraded counter under tenant.tight.*, none under tenant.relaxed.*.
  const auto snapshot = registry.Collect();
  int64_t tight_degraded = 0;
  int64_t relaxed_degraded = 0;
  for (const auto& [name, value] : snapshot.counters) {
    const bool is_degraded =
        name.size() >= 9 &&
        name.compare(name.size() - 9, 9, ".degraded") == 0;
    if (!is_degraded) continue;
    if (name.rfind("tenant.tight.", 0) == 0) tight_degraded += value;
    if (name.rfind("tenant.relaxed.", 0) == 0) relaxed_degraded += value;
  }
  EXPECT_GT(tight_degraded, 0);
  EXPECT_EQ(relaxed_degraded, 0);
}

TEST_F(TenantRegistryTest, DuplicateAndInvalidNamesAreRejected) {
  TenantRegistry registry;
  ASSERT_TRUE(registry.AddTenant(SmallTenant("atnn")).ok());
  EXPECT_EQ(registry.AddTenant(SmallTenant("atnn")).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.AddTenant(SmallTenant("")).status().code(),
            StatusCode::kInvalidArgument);
  // '.' would collide with the metrics namespace separator.
  EXPECT_EQ(registry.AddTenant(SmallTenant("a.b")).status().code(),
            StatusCode::kInvalidArgument);
  TenantConfig bad_sharded = SmallTenant("ok-name");
  bad_sharded.sharded.num_shards = 0;
  EXPECT_EQ(registry.AddTenant(bad_sharded).status().code(),
            StatusCode::kInvalidArgument);
  registry.Shutdown();
}

TEST_F(TenantRegistryTest, UnknownTenantIsNotFoundWithPerRowShape) {
  TenantRegistry registry;
  EXPECT_EQ(registry.Get("ghost"), nullptr);
  EXPECT_EQ(registry.Score("ghost", 0).status().code(),
            StatusCode::kNotFound);
  const auto batch = registry.ScoreBatch("ghost", {0, 1, 2});
  ASSERT_EQ(batch.size(), 3u);  // zips to rows unconditionally
  for (const auto& result : batch) {
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  }
}

TEST_F(TenantRegistryTest, OverQuotaRowsShedTierTaggedNeverErrored) {
  TenantRegistry registry;
  TenantConfig limited = SmallTenant("limited");
  limited.sharded.prior = FlatPrior(0.25);
  // 8 tokens of burst, negligible refill: a 20-row batch must split into
  // 8 admitted + 12 shed.
  limited.admission_qps = 1e-6;
  limited.admission_burst = 8.0;
  const auto runtime = registry.AddTenant(limited);
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  ASSERT_TRUE((*runtime)->PublishSharded(MakeSnapshot(predictor_a_)).ok());

  std::vector<int64_t> rows;
  for (int64_t row = 0; row < 20; ++row) rows.push_back(row);
  const auto results = registry.ScoreBatch("limited", rows);
  ASSERT_EQ(results.size(), rows.size());
  size_t fresh = 0;
  size_t shed = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << "a shed must never surface an error";
    if (results[i].value().tier == runtime::ServingTier::kFresh) {
      ++fresh;
    } else {
      EXPECT_EQ(results[i].value().tier, runtime::ServingTier::kPrior);
      EXPECT_EQ(results[i].value().score, 0.25)
          << "shed rows answer from the tenant's prior";
      ++shed;
    }
  }
  EXPECT_EQ(fresh, 8u);
  EXPECT_EQ(shed, 12u);
  registry.Shutdown();

  // The split is visible in the admission counters, under the tenant's
  // namespace.
  const auto snapshot = registry.Collect();
  int64_t admitted_count = -1;
  int64_t shed_count = -1;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "tenant.limited.admission.admitted") admitted_count = value;
    if (name == "tenant.limited.admission.shed") shed_count = value;
  }
  EXPECT_EQ(admitted_count, 8);
  EXPECT_EQ(shed_count, 12);
}

TEST_F(TenantRegistryTest, QuotaOnOneTenantDoesNotTouchAnother) {
  TenantRegistry registry;
  TenantConfig starved = SmallTenant("starved");
  starved.sharded.prior = FlatPrior(0.25);
  starved.admission_qps = 1e-6;
  starved.admission_burst = 1.0;
  TenantConfig unlimited = SmallTenant("unlimited");
  const auto starved_runtime = registry.AddTenant(starved);
  ASSERT_TRUE(starved_runtime.ok());
  const auto unlimited_runtime = registry.AddTenant(unlimited);
  ASSERT_TRUE(unlimited_runtime.ok());
  ASSERT_TRUE(
      (*starved_runtime)->PublishSharded(MakeSnapshot(predictor_a_)).ok());
  ASSERT_TRUE(
      (*unlimited_runtime)->PublishSharded(MakeSnapshot(predictor_a_)).ok());

  // Hammer the starved tenant far past its quota...
  for (int round = 0; round < 5; ++round) {
    const auto results =
        registry.ScoreBatch("starved", dataset_->new_items);
    for (const auto& result : results) ASSERT_TRUE(result.ok());
  }
  // ...and the unlimited tenant still serves everything fresh.
  const auto results =
      registry.ScoreBatch("unlimited", dataset_->new_items);
  for (const auto& result : results) {
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().tier, runtime::ServingTier::kFresh);
  }
  registry.Shutdown();
}

TEST_F(TenantRegistryTest, AdmissionConfigValidation) {
  TenantRegistry registry;
  TenantConfig bad = SmallTenant("bad");
  bad.admission_qps = -1.0;
  EXPECT_EQ(registry.AddTenant(bad).status().code(),
            StatusCode::kInvalidArgument);
  bad = SmallTenant("bad");
  bad.admission_burst = -1.0;
  EXPECT_EQ(registry.AddTenant(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TenantRegistryTest, TenantNamesComeBackSorted) {
  TenantRegistry registry;
  for (const char* name : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(registry.AddTenant(SmallTenant(name)).ok());
  }
  const std::vector<std::string> expected = {"alpha", "mid", "zeta"};
  EXPECT_EQ(registry.TenantNames(), expected);
  registry.Shutdown();
}

}  // namespace
}  // namespace atnn::cluster
