#include "cluster/shard_ring.h"

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace atnn::cluster {
namespace {

ShardRingConfig RingConfig(size_t num_shards) {
  ShardRingConfig config;
  config.num_shards = num_shards;
  return config;
}

TEST(ShardRingTest, ConfigValidationReturnsStatusNotAbort) {
  EXPECT_EQ(ShardRing::Create(RingConfig(0)).status().code(),
            StatusCode::kInvalidArgument);
  ShardRingConfig no_vnodes = RingConfig(4);
  no_vnodes.virtual_nodes_per_shard = 0;
  EXPECT_EQ(ShardRing::Create(no_vnodes).status().code(),
            StatusCode::kInvalidArgument);
  const auto ring = ShardRing::Create(RingConfig(4));
  ASSERT_TRUE(ring.ok()) << ring.status().ToString();
  EXPECT_EQ(ring.value().num_shards(), 4u);
}

TEST(ShardRingTest, ShardForStaysInRangeAcrossTheWholeKeyDomain) {
  const ShardRing ring{RingConfig(5)};
  const std::vector<int64_t> extremes = {
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::min() + 1,
      -1,
      0,
      1,
      std::numeric_limits<int64_t>::max() - 1,
      std::numeric_limits<int64_t>::max()};
  for (const int64_t key : extremes) {
    EXPECT_LT(ring.ShardFor(key), 5u) << "key " << key;
  }
  for (int64_t key = -5000; key < 5000; ++key) {
    ASSERT_LT(ring.ShardFor(key), 5u);
  }
}

TEST(ShardRingTest, IdenticalConfigsAgreeOnEveryKey) {
  // Two independently constructed rings (as two processes would build them
  // from the same config) must agree bitwise on every assignment.
  const ShardRing a{RingConfig(8)};
  const ShardRing b{RingConfig(8)};
  for (int64_t key = -20000; key < 20000; ++key) {
    ASSERT_EQ(a.ShardFor(key), b.ShardFor(key)) << "key " << key;
  }
}

TEST(ShardRingTest, GoldenAssignmentsPinCrossProcessDeterminism) {
  // Frozen outputs of the default-seeded 4-shard ring. A library change
  // that silently reshuffles placement (different mixer, different vnode
  // derivation, a sort-order change) breaks these — which is the point:
  // every process that ever partitioned a catalog with this config must
  // keep routing identically.
  const ShardRing ring{RingConfig(4)};
  const std::vector<std::pair<int64_t, size_t>> golden = {
      {0LL, 0},         {1LL, 3},
      {2LL, 1},         {3LL, 3},
      {4LL, 1},         {5LL, 3},
      {6LL, 1},         {7LL, 0},
      {8LL, 0},         {9LL, 1},
      {10LL, 3},        {100LL, 2},
      {1000LL, 0},      {123456789LL, 2},
      {-1LL, 3},        {-2LL, 3},
      {-100LL, 0},      {std::numeric_limits<int64_t>::min(), 2},
      {std::numeric_limits<int64_t>::max(), 2}};
  for (const auto& [key, shard] : golden) {
    EXPECT_EQ(ring.ShardFor(key), shard) << "key " << key;
  }
}

TEST(ShardRingTest, KeysDoNotCollideWithVnodePositions) {
  // Regression: key hashing and vnode placement must live in disjoint hash
  // domains. Without the domain tags, key v and shard 0's vnode v hash
  // identically, so keys 0..vnodes-1 all landed exactly on shard 0's own
  // points — the low key range routed wholesale to shard 0.
  const ShardRing ring{RingConfig(4)};
  std::vector<int64_t> counts(4, 0);
  const int64_t vnodes =
      static_cast<int64_t>(RingConfig(4).virtual_nodes_per_shard);
  for (int64_t key = 0; key < vnodes; ++key) {
    ++counts[ring.ShardFor(key)];
  }
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_GT(counts[s], 0) << "shard " << s
                            << " owns no low keys: domain collision";
    EXPECT_LT(counts[s], vnodes) << "shard " << s << " owns every low key";
  }
}

TEST(ShardRingTest, DifferentSeedsProduceDifferentPlacements) {
  ShardRingConfig other = RingConfig(8);
  other.seed = 0x1234567890abcdefULL;
  const ShardRing a{RingConfig(8)};
  const ShardRing b{other};
  int64_t differs = 0;
  constexpr int64_t kKeys = 4096;
  for (int64_t key = 0; key < kKeys; ++key) {
    if (a.ShardFor(key) != b.ShardFor(key)) ++differs;
  }
  // Independent placements agree on ~1/8 of keys; anything close to full
  // agreement means the seed is not actually feeding the hash.
  EXPECT_GT(differs, kKeys / 2);
}

TEST(ShardRingTest, ArcFractionsSumToOneAndStayBalanced) {
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const ShardRing ring{RingConfig(shards)};
    const std::vector<double> fractions = ring.ArcFractions();
    ASSERT_EQ(fractions.size(), shards);
    double sum = 0.0;
    const double fair = 1.0 / static_cast<double>(shards);
    for (const double f : fractions) {
      sum += f;
      // 128 vnodes/shard keeps every shard's share within 2x of fair —
      // the balance bound the capacity planner assumes.
      EXPECT_GT(f, fair / 2.0);
      EXPECT_LT(f, fair * 2.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(ShardRingTest, KeyStreamIsUniformOverTheRing) {
  // Chi-squared test of observed shard counts against the ring's own arc
  // fractions. Using arc fractions (not 1/N) as the reference separates
  // the property under test — SplitMix64 hashes keys uniformly around the
  // ring — from vnode-placement variance, which the balance test above
  // bounds separately.
  const ShardRing ring{RingConfig(8)};
  const std::vector<double> fractions = ring.ArcFractions();
  constexpr int64_t kKeys = 200000;
  std::vector<int64_t> observed(8, 0);
  for (int64_t key = 0; key < kKeys; ++key) {
    ++observed[ring.ShardFor(key)];
  }
  double chi2 = 0.0;
  for (size_t s = 0; s < 8; ++s) {
    const double expected = fractions[s] * static_cast<double>(kKeys);
    ASSERT_GT(expected, 0.0);
    const double delta = static_cast<double>(observed[s]) - expected;
    chi2 += delta * delta / expected;
  }
  // 7 degrees of freedom: P(chi2 > 30) < 1e-4. Sequential int64 keys are
  // the adversarial case — any linearity in the mixer shows up here.
  EXPECT_LT(chi2, 30.0) << "chi2=" << chi2;
}

TEST(ShardRingTest, GrowingTheRingMovesOnlyABoundedFractionToTheNewShard) {
  constexpr int64_t kKeys = 100000;
  for (size_t n = 1; n <= 7; ++n) {
    const ShardRing before{RingConfig(n)};
    const ShardRing after{RingConfig(n + 1)};
    int64_t moved = 0;
    for (int64_t key = 0; key < kKeys; ++key) {
      const size_t old_shard = before.ShardFor(key);
      const size_t new_shard = after.ShardFor(key);
      if (old_shard == new_shard) continue;
      ++moved;
      // The strong consistent-hashing property: a key never moves between
      // two pre-existing shards — it can only be captured by the shard
      // that joined.
      ASSERT_EQ(new_shard, n) << "key " << key << " moved " << old_shard
                              << " -> " << new_shard;
    }
    const double moved_fraction =
        static_cast<double>(moved) / static_cast<double>(kKeys);
    // Expected 1/(n+1); the slack absorbs vnode-placement variance (the
    // new shard's actual arc share, ~±10% relative at 128 vnodes).
    EXPECT_LE(moved_fraction, 1.0 / static_cast<double>(n + 1) + 0.05)
        << "n=" << n;
    EXPECT_GT(moved, 0) << "n=" << n;
  }
}

}  // namespace
}  // namespace atnn::cluster
