#include "baselines/ftrl_lr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metrics/metrics.h"

namespace atnn::baselines {
namespace {

SparseRow DenseRow(const std::vector<float>& values) {
  SparseRow row;
  for (size_t i = 0; i < values.size(); ++i) {
    row.indices.push_back(static_cast<int64_t>(i));
    row.values.push_back(values[i]);
  }
  return row;
}

TEST(FtrlLrTest, UntrainedPredictsHalf) {
  FtrlLogisticRegression model(4);
  EXPECT_DOUBLE_EQ(model.PredictProbability(DenseRow({1, 0, 1, 0})), 0.5);
}

TEST(FtrlLrTest, LearnsLinearlySeparableProblem) {
  Rng rng(1);
  FtrlConfig config;
  config.lambda1 = 0.0;  // no sparsity pressure for this check
  FtrlLogisticRegression model(3, config);
  std::vector<SparseRow> rows;
  std::vector<float> labels;
  for (int i = 0; i < 4000; ++i) {
    const float a = static_cast<float>(rng.Normal());
    const float b = static_cast<float>(rng.Normal());
    rows.push_back(DenseRow({a, b, 1.0f}));
    labels.push_back(a + 0.5f * b > 0.0f ? 1.0f : 0.0f);
  }
  for (int pass = 0; pass < 3; ++pass) model.TrainPass(rows, labels);
  EXPECT_GT(metrics::Auc(model.PredictProbability(rows), labels), 0.97);
  // The learned direction matches (w0 > 0, w1 > 0, w0 > w1).
  EXPECT_GT(model.Weight(0), 0.0);
  EXPECT_GT(model.Weight(1), 0.0);
  EXPECT_GT(model.Weight(0), model.Weight(1));
}

TEST(FtrlLrTest, L1ProducesExactZeroWeights) {
  Rng rng(2);
  FtrlConfig config;
  config.lambda1 = 10.0;  // aggressive sparsity
  FtrlLogisticRegression model(20, config);
  std::vector<SparseRow> rows;
  std::vector<float> labels;
  for (int i = 0; i < 2000; ++i) {
    std::vector<float> x(20);
    for (auto& v : x) v = static_cast<float>(rng.Normal());
    // Only coordinate 0 matters.
    labels.push_back(x[0] > 0.0f ? 1.0f : 0.0f);
    rows.push_back(DenseRow(x));
  }
  model.TrainPass(rows, labels);
  EXPECT_EQ(model.CountTouched(), 20);
  // Most of the 19 noise coordinates are pinned to exactly zero.
  EXPECT_GE(model.CountZeroWeights(), 12);
  EXPECT_NE(model.Weight(0), 0.0);
}

TEST(FtrlLrTest, ProgressiveValidationLossImproves) {
  Rng rng(3);
  FtrlConfig config;
  config.lambda1 = 0.0;
  FtrlLogisticRegression model(2, config);
  double early_loss = 0.0;
  double late_loss = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const float a = static_cast<float>(rng.Normal());
    const float label = a > 0.0f ? 1.0f : 0.0f;
    const double p = model.Update(DenseRow({a, 1.0f}), label);
    const double loss =
        label > 0.5f ? -std::log(std::max(p, 1e-12))
                     : -std::log(std::max(1.0 - p, 1e-12));
    if (i < n / 4) {
      early_loss += loss;
    } else if (i >= 3 * n / 4) {
      late_loss += loss;
    }
  }
  EXPECT_LT(late_loss, 0.6 * early_loss);
}

TEST(FtrlLrTest, UnseenCoordinateHasZeroWeight) {
  FtrlLogisticRegression model(10);
  EXPECT_DOUBLE_EQ(model.Weight(7), 0.0);
  EXPECT_EQ(model.CountTouched(), 0);
}

}  // namespace
}  // namespace atnn::baselines
