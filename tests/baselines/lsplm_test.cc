#include "baselines/lsplm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metrics/metrics.h"

namespace atnn::baselines {
namespace {

SparseRow DenseRow(const std::vector<float>& values) {
  SparseRow row;
  for (size_t i = 0; i < values.size(); ++i) {
    row.indices.push_back(static_cast<int64_t>(i));
    row.values.push_back(values[i]);
  }
  return row;
}

TEST(LsplmTest, UntrainedPredictsNearHalf) {
  LsplmModel model(4);
  EXPECT_NEAR(model.PredictProbability(DenseRow({1, 0, 1, 0})), 0.5, 0.05);
}

TEST(LsplmTest, GateWeightsFormDistribution) {
  LsplmConfig config;
  config.num_pieces = 5;
  LsplmModel model(3, config);
  const auto gate = model.GateWeights(DenseRow({0.5f, -1.0f, 2.0f}));
  ASSERT_EQ(gate.size(), 5u);
  double total = 0.0;
  for (double g : gate) {
    EXPECT_GE(g, 0.0);
    EXPECT_LE(g, 1.0);
    total += g;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LsplmTest, LearnsLinearProblem) {
  Rng rng(1);
  std::vector<SparseRow> rows;
  std::vector<float> labels;
  for (int i = 0; i < 4000; ++i) {
    const float a = static_cast<float>(rng.Normal());
    const float b = static_cast<float>(rng.Normal());
    rows.push_back(DenseRow({a, b, 1.0f}));
    labels.push_back(a - b > 0.0f ? 1.0f : 0.0f);
  }
  LsplmConfig config;
  config.num_pieces = 4;
  LsplmModel model(3, config);
  for (int pass = 0; pass < 5; ++pass) model.TrainPass(rows, labels);
  EXPECT_GT(metrics::Auc(model.PredictProbability(rows), labels), 0.95);
}

TEST(LsplmTest, PiecewiseStructureSolvesNonLinearProblem) {
  // y = 1 iff |x| > 1: a single logistic model cannot separate this
  // (it's not linearly separable in x), but two gated pieces can.
  Rng rng(2);
  std::vector<SparseRow> rows;
  std::vector<float> labels;
  for (int i = 0; i < 8000; ++i) {
    const float x = static_cast<float>(rng.Uniform(-3.0, 3.0));
    rows.push_back(DenseRow({x, 1.0f}));
    labels.push_back(std::abs(x) > 1.0f ? 1.0f : 0.0f);
  }
  LsplmConfig piecewise_config;
  piecewise_config.num_pieces = 8;
  piecewise_config.learning_rate = 0.2;
  LsplmModel piecewise(2, piecewise_config);
  LsplmConfig linear_config;
  linear_config.num_pieces = 1;  // degenerates to plain LR
  linear_config.learning_rate = 0.2;
  LsplmModel linear(2, linear_config);
  for (int pass = 0; pass < 20; ++pass) {
    piecewise.TrainPass(rows, labels);
    linear.TrainPass(rows, labels);
  }
  const double piecewise_auc =
      metrics::Auc(piecewise.PredictProbability(rows), labels);
  const double linear_auc =
      metrics::Auc(linear.PredictProbability(rows), labels);
  EXPECT_GT(piecewise_auc, 0.9);
  EXPECT_LT(linear_auc, 0.65);
  EXPECT_GT(piecewise_auc, linear_auc + 0.2);
}

TEST(LsplmTest, DeterministicForSeed) {
  Rng rng(3);
  std::vector<SparseRow> rows;
  std::vector<float> labels;
  for (int i = 0; i < 500; ++i) {
    rows.push_back(DenseRow({float(rng.Normal()), 1.0f}));
    labels.push_back(rng.Bernoulli(0.4) ? 1.0f : 0.0f);
  }
  LsplmModel a(2);
  LsplmModel b(2);
  a.TrainPass(rows, labels);
  b.TrainPass(rows, labels);
  EXPECT_EQ(a.PredictProbability(rows), b.PredictProbability(rows));
}

}  // namespace
}  // namespace atnn::baselines
