#include "baselines/sparse_encoder.h"

#include <set>

#include <gtest/gtest.h>

namespace atnn::baselines {
namespace {

data::TmallDataset MakeDataset() {
  data::TmallConfig config;
  config.num_users = 50;
  config.num_items = 60;
  config.num_new_items = 10;
  config.num_interactions = 400;
  config.attractiveness_sample = 16;
  config.seed = 99;
  return GenerateTmallDataset(config);
}

TEST(SparseCtrEncoderTest, DimensionCoversAllVocabsAndNumerics) {
  const data::TmallDataset dataset = MakeDataset();
  const SparseCtrEncoder with_stats(*dataset.user_schema,
                                    *dataset.item_profile_schema,
                                    *dataset.item_stats_schema, true);
  const SparseCtrEncoder without_stats(*dataset.user_schema,
                                       *dataset.item_profile_schema,
                                       *dataset.item_stats_schema, false);
  // Stats are all numeric: 46 extra coordinates.
  EXPECT_EQ(with_stats.dimension(), without_stats.dimension() + 46);
  // Every feature contributes exactly one nonzero.
  EXPECT_EQ(with_stats.row_nnz(),
            static_cast<int64_t>(dataset.user_schema->num_features() +
                                 dataset.item_profile_schema->num_features() +
                                 dataset.item_stats_schema->num_features()));
}

TEST(SparseCtrEncoderTest, EncodesOneHotAndNumerics) {
  const data::TmallDataset dataset = MakeDataset();
  const SparseCtrEncoder encoder(*dataset.user_schema,
                                 *dataset.item_profile_schema,
                                 *dataset.item_stats_schema, true);
  const data::CtrBatch batch = MakeCtrBatch(dataset, {0, 1, 2});
  const auto rows = encoder.Encode(batch);
  ASSERT_EQ(rows.size(), 3u);
  for (const SparseRow& row : rows) {
    EXPECT_EQ(static_cast<int64_t>(row.nnz()), encoder.row_nnz());
    // Indices are unique, in-range and sorted within blocks.
    std::set<int64_t> seen;
    for (int64_t index : row.indices) {
      EXPECT_GE(index, 0);
      EXPECT_LT(index, encoder.dimension());
      EXPECT_TRUE(seen.insert(index).second) << "duplicate index " << index;
    }
    // One-hot values are exactly 1.
    size_t num_categorical = dataset.user_schema->num_categorical();
    for (size_t k = 0; k < num_categorical; ++k) {
      EXPECT_EQ(row.values[k], 1.0f);
    }
  }
}

TEST(SparseCtrEncoderTest, SameUserSameIndices) {
  const data::TmallDataset dataset = MakeDataset();
  const SparseCtrEncoder encoder(*dataset.user_schema,
                                 *dataset.item_profile_schema,
                                 *dataset.item_stats_schema, false);
  // Find two interactions with the same user.
  int64_t a = -1;
  int64_t b = -1;
  for (size_t i = 0; i < dataset.interaction_user.size() && b < 0; ++i) {
    for (size_t j = i + 1; j < dataset.interaction_user.size(); ++j) {
      if (dataset.interaction_user[i] == dataset.interaction_user[j]) {
        a = static_cast<int64_t>(i);
        b = static_cast<int64_t>(j);
        break;
      }
    }
  }
  ASSERT_GE(a, 0);
  const data::CtrBatch batch = MakeCtrBatch(dataset, {a, b});
  const auto rows = encoder.Encode(batch);
  const size_t user_features = dataset.user_schema->num_features();
  for (size_t k = 0; k < user_features; ++k) {
    EXPECT_EQ(rows[0].indices[k], rows[1].indices[k]);
  }
}

}  // namespace
}  // namespace atnn::baselines
