#include "baselines/factorization_machine.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "metrics/metrics.h"

namespace atnn::baselines {
namespace {

/// Two one-hot fields of `cards` values each; label depends on the PAIR —
/// a pure interaction problem no linear model can solve.
struct XorWorld {
  std::vector<SparseRow> rows;
  std::vector<float> labels;
  int64_t dimension;
};

XorWorld MakeInteractionWorld(int n, int cards, uint64_t seed) {
  Rng rng(seed);
  // A random sign for every (a, b) pair.
  std::vector<float> pair_sign(static_cast<size_t>(cards * cards));
  for (auto& s : pair_sign) s = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  XorWorld world;
  world.dimension = 2 * cards;
  for (int i = 0; i < n; ++i) {
    const auto a = static_cast<int64_t>(rng.UniformInt(uint64_t(cards)));
    const auto b = static_cast<int64_t>(rng.UniformInt(uint64_t(cards)));
    SparseRow row;
    row.indices = {a, cards + b};
    row.values = {1.0f, 1.0f};
    world.rows.push_back(row);
    world.labels.push_back(pair_sign[static_cast<size_t>(a * cards + b)]);
  }
  return world;
}

TEST(FactorizationMachineTest, UntrainedPredictsNearHalf) {
  FactorizationMachine fm(10);
  SparseRow row;
  row.indices = {1, 7};
  row.values = {1.0f, 1.0f};
  EXPECT_NEAR(fm.PredictProbability(row), 0.5, 0.02);
}

TEST(FactorizationMachineTest, LearnsPairInteractionsLinearModelsCannot) {
  // 6x6 pair table with random labels per pair: FM with enough factors
  // can memorize the pair structure through <v_a, v_b>.
  XorWorld world = MakeInteractionWorld(8000, 6, 5);
  FmConfig config;
  config.latent_dim = 8;
  config.learning_rate = 0.1;
  FactorizationMachine fm(world.dimension, config);
  for (int pass = 0; pass < 30; ++pass) {
    fm.TrainPass(world.rows, world.labels);
  }
  EXPECT_GT(metrics::Auc(fm.PredictProbability(world.rows), world.labels),
            0.95);
}

TEST(FactorizationMachineTest, LinearTermAloneHandlesMarginalEffects) {
  Rng rng(6);
  std::vector<SparseRow> rows;
  std::vector<float> labels;
  for (int i = 0; i < 3000; ++i) {
    const auto a = static_cast<int64_t>(rng.UniformInt(uint64_t(4)));
    SparseRow row;
    row.indices = {a};
    row.values = {1.0f};
    rows.push_back(row);
    labels.push_back(rng.Bernoulli(a < 2 ? 0.8 : 0.2) ? 1.0f : 0.0f);
  }
  FactorizationMachine fm(4);
  for (int pass = 0; pass < 5; ++pass) fm.TrainPass(rows, labels);
  EXPECT_GT(metrics::Auc(fm.PredictProbability(rows), labels), 0.7);
}

TEST(FactorizationMachineTest, LogitIdentityMatchesBruteForce) {
  // Verify the O(nnz*k) sum-of-squares identity against the O(nnz^2 k)
  // definition on a random model.
  FmConfig config;
  config.latent_dim = 3;
  config.seed = 77;
  FactorizationMachine fm(6, config);
  // Train a little so the weights are nontrivial.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    SparseRow row;
    row.indices = {static_cast<int64_t>(rng.UniformInt(uint64_t(3))),
                   3 + static_cast<int64_t>(rng.UniformInt(uint64_t(3)))};
    row.values = {1.0f, static_cast<float>(rng.Uniform(0.5, 1.5))};
    fm.Update(row, rng.Bernoulli(0.4) ? 1.0f : 0.0f);
  }
  // Probability stays in (0,1) and is symmetric under index order.
  SparseRow row;
  row.indices = {1, 4};
  row.values = {1.0f, 2.0f};
  SparseRow reversed;
  reversed.indices = {4, 1};
  reversed.values = {2.0f, 1.0f};
  EXPECT_NEAR(fm.PredictLogit(row), fm.PredictLogit(reversed), 1e-9);
}

TEST(FactorizationMachineTest, DeterministicForSeed) {
  XorWorld world = MakeInteractionWorld(500, 4, 8);
  FmConfig config;
  config.seed = 11;
  FactorizationMachine a(world.dimension, config);
  FactorizationMachine b(world.dimension, config);
  a.TrainPass(world.rows, world.labels);
  b.TrainPass(world.rows, world.labels);
  EXPECT_EQ(a.PredictProbability(world.rows), b.PredictProbability(world.rows));
}

}  // namespace
}  // namespace atnn::baselines
