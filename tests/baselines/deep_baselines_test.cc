// Tests for the autograd CTR baselines: Wide & Deep and DeepFM.

#include <gtest/gtest.h>

#include "baselines/baseline_trainer.h"
#include "baselines/concat_dnn.h"
#include "baselines/deepfm.h"
#include "baselines/factorization_machine.h"
#include "baselines/ftrl_lr.h"
#include "baselines/wide_deep.h"
#include "core/feature_adapter.h"

namespace atnn::baselines {
namespace {

class DeepBaselinesTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::TmallConfig config;
    config.num_users = 300;
    config.num_items = 400;
    config.num_new_items = 50;
    config.num_interactions = 12000;
    config.attractiveness_sample = 32;
    config.seed = 20240601;
    dataset_ = new data::TmallDataset(data::GenerateTmallDataset(config));
    core::NormalizeTmallInPlace(dataset_);
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static core::TrainOptions FastOptions() {
    core::TrainOptions options;
    options.epochs = 3;
    options.batch_size = 256;
    options.learning_rate = 2e-3f;
    return options;
  }

  static data::TmallDataset* dataset_;
};

data::TmallDataset* DeepBaselinesTest::dataset_ = nullptr;

TEST_F(DeepBaselinesTest, WideDeepLogitShape) {
  WideDeepConfig config;
  config.deep_dims = {32, 16};
  WideDeepModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema, config);
  const data::CtrBatch batch = MakeCtrBatch(*dataset_, {0, 1, 2, 3});
  nn::Var logits = model.Logits(batch);
  EXPECT_EQ(logits.rows(), 4);
  EXPECT_EQ(logits.cols(), 1);
  EXPECT_TRUE(logits.value().AllFinite());
}

TEST_F(DeepBaselinesTest, WideDeepTrainsAndBeatsRandom) {
  WideDeepConfig config;
  config.deep_dims = {32, 16};
  WideDeepModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema, config);
  const auto losses = TrainCtrBaseline(&model, *dataset_, FastOptions());
  EXPECT_LT(losses.back(), losses.front());
  EXPECT_GT(EvaluateCtrBaselineAuc(model, *dataset_, dataset_->test_indices),
            0.65);
}

TEST_F(DeepBaselinesTest, WideDeepWithoutStatsIgnoresStats) {
  WideDeepConfig config;
  config.deep_dims = {16};
  config.use_item_stats = false;
  WideDeepModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                      *dataset_->item_stats_schema, config);
  data::CtrBatch batch = MakeCtrBatch(*dataset_, {0, 1});
  const auto a = model.PredictCtr(batch);
  batch.item_stats.numeric.Fill(1e5f);
  const auto b = model.PredictCtr(batch);
  EXPECT_EQ(a, b);
}

TEST_F(DeepBaselinesTest, DeepFmLogitShapeAndFieldCount) {
  DeepFmConfig config;
  config.deep_dims = {32, 16};
  DeepFmModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                    *dataset_->item_stats_schema, config);
  EXPECT_EQ(model.num_fields(),
            dataset_->user_schema->num_categorical() +
                dataset_->item_profile_schema->num_categorical());
  const data::CtrBatch batch = MakeCtrBatch(*dataset_, {0, 1, 2});
  nn::Var logits = model.Logits(batch);
  EXPECT_EQ(logits.rows(), 3);
  EXPECT_EQ(logits.cols(), 1);
  EXPECT_TRUE(logits.value().AllFinite());
}

TEST_F(DeepBaselinesTest, DeepFmTrainsAndBeatsRandom) {
  DeepFmConfig config;
  config.deep_dims = {32, 16};
  DeepFmModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                    *dataset_->item_stats_schema, config);
  const auto losses = TrainCtrBaseline(&model, *dataset_, FastOptions());
  EXPECT_LT(losses.back(), losses.front());
  EXPECT_GT(EvaluateCtrBaselineAuc(model, *dataset_, dataset_->test_indices),
            0.65);
}

TEST_F(DeepBaselinesTest, PredictionsAreProbabilities) {
  DeepFmConfig config;
  DeepFmModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                    *dataset_->item_stats_schema, config);
  const data::CtrBatch batch = MakeCtrBatch(*dataset_, {0, 1, 2, 3, 4});
  for (double p : model.PredictCtr(batch)) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_F(DeepBaselinesTest, ConcatDnnTrainsAndBeatsRandom) {
  // The paper's Figure 2 baseline: concat embeddings -> MLP.
  ConcatDnnConfig config;
  config.hidden_dims = {32, 16};
  ConcatDnnModel model(*dataset_->user_schema, *dataset_->item_profile_schema,
                       *dataset_->item_stats_schema, config);
  const auto losses = TrainCtrBaseline(&model, *dataset_, FastOptions());
  EXPECT_LT(losses.back(), losses.front());
  EXPECT_GT(EvaluateCtrBaselineAuc(model, *dataset_, dataset_->test_indices),
            0.65);
}

TEST_F(DeepBaselinesTest, SparseBaselinesLearnTmall) {
  const SparseCtrEncoder encoder(*dataset_->user_schema,
                                 *dataset_->item_profile_schema,
                                 *dataset_->item_stats_schema, true);
  const auto train =
      EncodeInteractions(*dataset_, dataset_->train_indices, encoder);
  const auto test =
      EncodeInteractions(*dataset_, dataset_->test_indices, encoder);

  FtrlConfig lr_config;
  lr_config.lambda1 = 0.1;
  FtrlLogisticRegression lr(encoder.dimension(), lr_config);
  for (int pass = 0; pass < 2; ++pass) {
    lr.TrainPass(train.rows, train.labels);
  }
  const double lr_auc =
      metrics::Auc(lr.PredictProbability(test.rows), test.labels);
  EXPECT_GT(lr_auc, 0.6);

  FactorizationMachine fm(encoder.dimension());
  for (int pass = 0; pass < 2; ++pass) {
    fm.TrainPass(train.rows, train.labels);
  }
  const double fm_auc =
      metrics::Auc(fm.PredictProbability(test.rows), test.labels);
  EXPECT_GT(fm_auc, 0.6);
}

}  // namespace
}  // namespace atnn::baselines
