// Training CLI: generates (or regenerates) the synthetic Tmall world,
// trains ATNN, reports offline quality, and writes the serving artifacts —
// a model snapshot and a popularity index over the new arrivals.
//
//   $ atnn_train --epochs=4 --snapshot=/tmp/atnn.bin --index=/tmp/pop.bin
//
// The world is fully determined by --data_seed, so a scorer process can
// reconstruct the same feature tables from the seed alone (stand-in for a
// shared feature store).

#include <cstdio>

#include "common/flags.h"
#include "core/atnn.h"
#include "core/feature_adapter.h"
#include "core/generator_plan.h"
#include "core/popularity.h"
#include "core/trainer.h"
#include "data/tmall.h"
#include "obs/metrics_registry.h"
#include "quant/quantized_generator.h"
#include "serving/compute_flags.h"
#include "serving/model_snapshot.h"
#include "serving/popularity_index.h"

namespace {

constexpr char kModelTag[] = "atnn-cli-v1";

int Run(int argc, const char* const* argv) {
  using namespace atnn;

  FlagParser flags(
      "atnn_train — train ATNN on the synthetic Tmall world and emit "
      "serving artifacts");
  flags.AddInt64("users", 2000, "number of users in the world");
  flags.AddInt64("items", 4000, "number of catalog items");
  flags.AddInt64("new_items", 1000, "number of cold-start new arrivals");
  flags.AddInt64("interactions", 150000, "number of click interactions");
  flags.AddInt64("data_seed", 20210304, "world seed (shared with scorers)");
  flags.AddInt64("epochs", 3, "training epochs");
  flags.AddInt64("batch_size", 256, "mini-batch size");
  flags.AddDouble("learning_rate", 2e-3, "Adam learning rate");
  flags.AddDouble("lambda", 0.1, "similarity-loss weight (paper: 0.1)");
  flags.AddInt64("vector_dim", 32, "item/user vector width");
  flags.AddInt64("user_group", 500, "active-user group size for the mean "
                                    "user vector");
  flags.AddString("snapshot", "/tmp/atnn_snapshot.bin",
                  "output path for the model snapshot");
  flags.AddString("index", "/tmp/atnn_popularity.bin",
                  "output path for the popularity index");
  serving::AddComputeFlags(
      &flags,
      "also emit a low-precision serving artifact: fp32 (none) "
      "| bf16 | int8. Written next to --snapshot with a "
      "'.<precision>' suffix, calibrated on the new arrivals");
  flags.AddBool("metric_lines", true,
                "print one machine-readable ATNN_METRICS {json} line per "
                "epoch (loss gauges, step-time histogram, arena high-water)");
  flags.AddBool("help", false, "print usage");

  Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  const auto compute_or = serving::ResolveComputeFlags(flags);
  if (!compute_or.ok()) {
    std::fprintf(stderr, "%s\n", compute_or.status().ToString().c_str());
    return 2;
  }
  const serving::ComputeOptions& compute = *compute_or;
  std::printf("kernel backend: %s\n", compute.backend_name.c_str());

  data::TmallConfig world;
  world.num_users = flags.GetInt64("users");
  world.num_items = flags.GetInt64("items");
  world.num_new_items = flags.GetInt64("new_items");
  world.num_interactions = flags.GetInt64("interactions");
  world.seed = static_cast<uint64_t>(flags.GetInt64("data_seed"));
  data::TmallDataset dataset = data::GenerateTmallDataset(world);
  core::NormalizeTmallInPlace(&dataset);
  std::printf("world: %lld users / %lld items / %lld new arrivals / %zu "
              "interactions (seed %llu)\n",
              static_cast<long long>(world.num_users),
              static_cast<long long>(world.num_items),
              static_cast<long long>(world.num_new_items),
              dataset.labels.size(),
              static_cast<unsigned long long>(world.seed));

  core::AtnnConfig config;
  config.tower.deep_dims = {64, 32};
  config.tower.cross_layers = 3;
  config.tower.output_dim = flags.GetInt64("vector_dim");
  config.lambda = static_cast<float>(flags.GetDouble("lambda"));
  config.seed = 7;
  core::AtnnModel model(*dataset.user_schema, *dataset.item_profile_schema,
                        *dataset.item_stats_schema, config);

  core::TrainOptions options;
  options.epochs = static_cast<int>(flags.GetInt64("epochs"));
  options.batch_size = static_cast<int>(flags.GetInt64("batch_size"));
  options.learning_rate =
      static_cast<float>(flags.GetDouble("learning_rate"));
  options.verbose = true;
  obs::MetricsRegistry training_metrics;
  options.metrics = &training_metrics;
  options.emit_metric_lines = flags.GetBool("metric_lines");
  core::TrainAtnnModel(&model, dataset, options);

  const double auc_complete = core::EvaluateAtnnAuc(
      model, dataset, dataset.test_indices, core::CtrPath::kEncoder);
  const double auc_cold = core::EvaluateAtnnAuc(
      model, dataset, dataset.test_indices, core::CtrPath::kGenerator);
  std::printf("test AUC — complete: %.4f | cold start: %.4f\n", auc_complete,
              auc_cold);

  status = serving::SaveModelSnapshot(&model, flags.GetString("snapshot"),
                                      kModelTag);
  if (!status.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("snapshot: %s\n", flags.GetString("snapshot").c_str());

  if (compute.precision != quant::Precision::kFp32) {
    const data::BlockBatch calibration =
        data::GatherBlock(dataset.item_profiles, dataset.new_items);
    auto quantized = quant::QuantizedGenerator::Build(model, calibration,
                                                      compute.precision);
    if (!quantized.ok()) {
      std::fprintf(stderr, "quantization failed: %s\n",
                   quantized.status().ToString().c_str());
      return 1;
    }
    const std::string quant_path = flags.GetString("snapshot") + "." +
                                   quant::PrecisionName(compute.precision);
    status = quantized->Save(quant_path, kModelTag);
    if (!status.ok()) {
      std::fprintf(stderr, "quantized save failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("quantized artifact: %s (%lld bytes, %.2fx of fp32)\n",
                quant_path.c_str(),
                static_cast<long long>(quantized->QuantizedByteSize()),
                static_cast<double>(quantized->QuantizedByteSize()) /
                    static_cast<double>(quantized->Fp32ByteSize()));
  }

  const auto group =
      core::SelectActiveUsers(dataset, flags.GetInt64("user_group"));
  const auto predictor =
      core::PopularityPredictor::Build(model, dataset, group);
  serving::PopularityIndex index;
  bool used_plan = false;
  index.BulkLoad(dataset.new_items,
                 core::ScoreItemsMaybeCompiled(compute.compile, model,
                                               predictor, dataset,
                                               dataset.new_items,
                                               &used_plan));
  status = index.SaveToFile(flags.GetString("index"));
  if (!status.ok()) {
    std::fprintf(stderr, "index save failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("popularity index: %s (%zu new arrivals scored, %s)\n",
              flags.GetString("index").c_str(), index.size(),
              used_plan ? "compiled plan" : "tape");
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
