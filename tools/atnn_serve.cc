// Serving CLI: drives runtime/InferenceRuntime with a replayed request
// stream. Builds the Tmall world from a seed, publishes a model snapshot
// into the runtime, then replays a Zipf-skewed request log from one or
// more client threads — optionally republishing the snapshot at a fixed
// cadence to exercise hot swaps under load. Prints the runtime's stage
// stats (enqueue wait, batch sizes, score time, end-to-end latency) and
// the top-ranked arrivals observed through the runtime.
//
//   $ atnn_serve --requests=20000 --workers=4 --clients=2
//   $ atnn_serve --admission=reject --queue_capacity=128   # load-shedding
//   $ atnn_serve --swap_every_ms=100                       # hot-swap churn
//   $ atnn_serve --chaos --deadline_us=20000               # fault drill
//   $ atnn_serve --shards=4                                # sharded catalog
//   $ atnn_serve --shards=2 --tenants=atnn,multitask       # multi-tenant
//   $ atnn_serve --shards=3 --kill_shard=1                 # kill + self-heal
//   $ atnn_serve --shards=4 --resize_at=0.5 --resize_to=6  # live resize
//   $ atnn_serve --shards=2 --tenant_qps=5000              # admission quota
//   $ atnn_serve --stream_train --stream_days=6            # online training
//
// --stream_train runs the streaming train-to-serve loop (DESIGN.md §17)
// concurrently with the replay: a trainer thread consumes the market's
// daily arrival stream, warm-starts from the served weights, incrementally
// trains on each cohort's sampled feedback, and hot-swaps a fresh snapshot
// into the live serving path after every day — single-runtime publishes or
// a PublishSharded fan-out across every tenant, whichever path is active.
// The end-of-run table reports per-day staleness (AUC of the
// previously-served weights vs the freshly-trained weights on the newest
// cohort) and publish latency. --stream_negatives / --stream_one_backprop
// switch on the cross-batch negative cache and one-backprop alternation.
//
// --shards/--tenants switch to the cluster front-end: the catalog is
// consistent-hash sharded across per-shard runtimes behind a
// scatter/gather layer, optionally with several named tenants served side
// by side (each with its own shard set, deadline budget, and
// "tenant.<name>.shard<i>.*" metrics namespace). --kill_shard=i shuts
// shard i down on every tenant mid-replay to demonstrate degraded serving
// through the popularity prior — and starts a ShardSupervisor per tenant,
// whose probes find the dead shard, rebuild it from the last published
// snapshot slice, and re-admit it through its circuit breaker.
// --resize_at=f with --resize_to=M live-resizes every tenant to M shards
// after fraction f of the replay (zero dropped or errored requests is the
// pass condition). --tenant_qps=N puts a token-bucket admission quota on
// every tenant: over-quota rows shed tier-tagged through the prior, never
// as errors.
//
// --chaos turns on the runtime's seeded fault injector (worker delays,
// batch failures, queue rejections) and attempts corrupt snapshot
// publishes mid-run; the degraded-mode fallback chain (stale cache ->
// popularity prior -> global mean) must keep answering every request, and
// the final stats table shows the serving-tier distribution.
//
// Optionally loads trained weights with --snapshot= (a file written by
// atnn_train); by default it serves the seeded initialization, which
// exercises the identical code path. Snapshot loads retry transient I/O
// failures with exponential backoff before giving up.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_supervisor.h"
#include "cluster/tenant_registry.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/atnn.h"
#include "core/feature_adapter.h"
#include "core/popularity.h"
#include "data/tmall.h"
#include "obs/exporter.h"
#include "quant/quantized_generator.h"
#include "runtime/inference_runtime.h"
#include "serving/compute_flags.h"
#include "serving/model_snapshot.h"
#include "serving/popularity_index.h"
#include "sim/arrival_stream.h"
#include "stream/streaming_trainer.h"

namespace {

constexpr char kModelTag[] = "atnn-cli-v1";

int Run(int argc, const char* const* argv) {
  using namespace atnn;

  FlagParser flags(
      "atnn_serve — replay a request stream through the micro-batching "
      "inference runtime");
  flags.AddInt64("users", 2000, "number of users in the generated world");
  flags.AddInt64("items", 4000, "number of catalog items");
  flags.AddInt64("new_items", 1000, "number of new arrivals");
  flags.AddInt64("interactions", 150000, "number of interactions");
  flags.AddInt64("data_seed", 20210304, "world seed");
  flags.AddInt64("vector_dim", 32, "generator output width");
  flags.AddInt64("user_group", 500, "active-user group for the mean vector");
  flags.AddString("snapshot", "",
                  "optional: load trained weights from this atnn_train "
                  "snapshot (must match the world flags)");

  flags.AddInt64("requests", 20000, "total requests to replay");
  flags.AddInt64("clients", 1, "client threads submitting requests");
  flags.AddInt64("workers", 4, "runtime worker threads");
  flags.AddInt64("max_batch", 64, "micro-batch flush size");
  flags.AddInt64("max_delay_us", 1000, "micro-batch flush deadline");
  flags.AddInt64("queue_capacity", 8192, "bounded request queue size");
  flags.AddString("admission", "block",
                  "backpressure policy: block | reject");
  flags.AddBool("score_cache", true,
                "memoize scores per snapshot version");
  flags.AddInt64("swap_every_ms", 0,
                 "if > 0, republish the snapshot at this cadence while "
                 "the stream replays (hot-swap churn)");
  flags.AddBool("stream_train", false,
                "run the streaming train-to-serve loop concurrently with "
                "the replay: consume the daily arrival stream, train "
                "incrementally on each cohort's feedback, and hot-swap "
                "fresh snapshots into the live serving path");
  flags.AddInt64("stream_days", 6, "simulated days in the arrival stream");
  flags.AddInt64("stream_feedback", 40,
                 "feedback impressions sampled per cohort item per day");
  flags.AddInt64("stream_epochs", 1,
                 "incremental training epochs per streamed day");
  flags.AddInt64("stream_replay", 0,
                 "historical interactions replayed (anti-forgetting) into "
                 "each day's training set");
  flags.AddBool("stream_negatives", false,
                "cross-batch negative cache (CBNS) during streaming "
                "updates");
  flags.AddBool("stream_one_backprop", false,
                "alternate a single backprop per step between the D and G "
                "objectives during streaming updates");
  flags.AddInt64("stream_pause_ms", 0,
                 "pause between streamed days (spreads publishes across "
                 "the replay window)");
  flags.AddDouble("zipf", 1.1, "request-stream skew exponent");
  flags.AddInt64("top_k", 10, "ranked arrivals to print at the end");
  flags.AddInt64("deadline_us", 0,
                 "per-request completion budget; expired requests are "
                 "answered from the degraded fallback chain (0 = none)");
  flags.AddBool("chaos", false,
                "inject worker delays, batch failures, queue rejections, "
                "and corrupt snapshot publishes while serving");
  flags.AddInt64("chaos_seed", 20210304, "fault-injector seed");
  flags.AddDouble("chaos_delay_p", 0.05,
                  "per-batch probability of an injected worker delay");
  flags.AddInt64("chaos_delay_us", 2000, "injected worker delay");
  flags.AddDouble("chaos_batch_fail_p", 0.02,
                  "per-batch probability of a forced scoring failure");
  flags.AddDouble("chaos_reject_p", 0.02,
                  "per-request probability of a simulated full queue");
  flags.AddInt64("shards", 0,
                 "if > 0, serve through the consistent-hash sharded "
                 "front-end with this many per-shard runtimes (0 = classic "
                 "single-runtime path)");
  flags.AddString("tenants", "",
                  "comma-separated tenant names served side by side, each "
                  "behind its own shard set (implies --shards, default 2)");
  flags.AddInt64("kill_shard", -1,
                 "sharded path only: shut this shard down on every tenant "
                 "halfway through the replay (degraded-serving drill)");
  flags.AddBool("auto_recover", true,
                "with --kill_shard: run a ShardSupervisor per tenant so the "
                "killed shard is rebuilt from the last snapshot slice and "
                "re-admitted through its circuit breaker");
  flags.AddDouble("resize_at", 0.0,
                  "sharded path only: fraction of the replay (0,1) after "
                  "which every tenant is live-resized to --resize_to shards "
                  "(0 disables)");
  flags.AddInt64("resize_to", 0,
                 "target shard count for the --resize_at drill");
  flags.AddDouble("tenant_qps", 0.0,
                  "sharded path only: per-tenant admission quota in rows/s; "
                  "over-quota rows are shed tier-tagged through the prior "
                  "(0 = unlimited)");
  serving::AddComputeFlags(
      &flags,
      "serving weight format: fp32 | bf16 | int8. Non-fp32 "
      "quantizes the generator after the snapshot load and "
      "serves through it; the fp32 model is dropped from the "
      "published snapshot");
  flags.AddString("metrics_json", "",
                  "append one JSON metrics line to this file every "
                  "--metrics_interval_ms while serving (plus a final line "
                  "at shutdown); empty disables");
  flags.AddInt64("metrics_interval_ms", 1000,
                 "flush period for --metrics_json");
  flags.AddBool("help", false, "print usage");

  Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  const auto compute_or = serving::ResolveComputeFlags(flags);
  if (!compute_or.ok()) {
    std::fprintf(stderr, "%s\n", compute_or.status().ToString().c_str());
    return 2;
  }
  const serving::ComputeOptions& compute = *compute_or;
  std::printf("kernel backend: %s\n", compute.backend_name.c_str());
  const std::string admission = flags.GetString("admission");
  if (admission != "block" && admission != "reject") {
    std::fprintf(stderr, "--admission must be 'block' or 'reject'\n");
    return 2;
  }
  // Validate here so a typo'd flag yields a usage error, not the
  // ATNN_CHECK abort the library reserves for programmer errors.
  if (flags.GetInt64("workers") < 1) {
    std::fprintf(stderr, "--workers must be >= 1\n");
    return 2;
  }
  if (flags.GetInt64("max_batch") < 1 ||
      flags.GetInt64("queue_capacity") < flags.GetInt64("max_batch")) {
    std::fprintf(stderr,
                 "--queue_capacity must be >= --max_batch (>= 1): the "
                 "queue has to hold at least one full batch\n");
    return 2;
  }

  // --- world + model ---
  data::TmallConfig world;
  world.num_users = flags.GetInt64("users");
  world.num_items = flags.GetInt64("items");
  world.num_new_items = flags.GetInt64("new_items");
  world.num_interactions = flags.GetInt64("interactions");
  world.seed = static_cast<uint64_t>(flags.GetInt64("data_seed"));
  data::TmallDataset dataset = data::GenerateTmallDataset(world);
  core::NormalizeTmallInPlace(&dataset);

  core::AtnnConfig config;
  config.tower.deep_dims = {64, 32};
  config.tower.cross_layers = 3;
  config.tower.output_dim = flags.GetInt64("vector_dim");
  config.seed = 7;
  core::AtnnModel model(*dataset.user_schema, *dataset.item_profile_schema,
                        *dataset.item_stats_schema, config);
  if (!flags.GetString("snapshot").empty()) {
    status = serving::LoadModelSnapshotWithRetry(
        &model, flags.GetString("snapshot"), kModelTag);
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot load failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  const auto group =
      core::SelectActiveUsers(dataset, flags.GetInt64("user_group"));
  const auto predictor =
      core::PopularityPredictor::Build(model, dataset, group);

  // Precomputed popularity index over the arrivals: the end-of-run ranking
  // display, and the tier-2 prior of the degraded fallback chain.
  auto prior = std::make_shared<serving::PopularityIndex>();
  const auto prior_scores =
      predictor.ScoreItems(model, dataset, dataset.new_items);
  prior->BulkLoad(dataset.new_items, prior_scores);

  // Shared by both serving paths: the snapshot to publish and the
  // Zipf-skewed request stream over the new arrivals.
  const quant::Precision precision = compute.precision;
  runtime::ServingSnapshot snapshot;
  std::shared_ptr<const quant::QuantizedGenerator> quantized;
  if (precision == quant::Precision::kFp32) {
    snapshot.model = runtime::Unowned(&model);
  } else {
    // Calibrate on the cold-start arrivals — exactly the rows this process
    // is about to serve. The fp32 model stays on the stack only to build
    // the artifact; the published snapshot carries the quantized weights.
    const data::BlockBatch calibration =
        data::GatherBlock(dataset.item_profiles, dataset.new_items);
    auto built =
        quant::QuantizedGenerator::Build(model, calibration, precision);
    if (!built.ok()) {
      std::fprintf(stderr, "quantization failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    quantized = std::make_shared<const quant::QuantizedGenerator>(
        std::move(*built));
    snapshot.quantized = quantized;
    std::printf("precision: %s (%.2fx of fp32 bytes)\n",
                quant::PrecisionName(precision),
                static_cast<double>(quantized->QuantizedByteSize()) /
                    static_cast<double>(quantized->Fp32ByteSize()));
  }
  snapshot.predictor = runtime::Unowned(&predictor);
  snapshot.item_profiles = runtime::Unowned(&dataset.item_profiles);
  snapshot.tag = "atnn_serve";

  const auto total_requests = flags.GetInt64("requests");
  const auto num_clients =
      std::max<int64_t>(1, flags.GetInt64("clients"));
  std::vector<int64_t> stream;
  stream.reserve(static_cast<size_t>(total_requests));
  {
    Rng rng(world.seed ^ 0x5e77eULL);
    for (int64_t i = 0; i < total_requests; ++i) {
      stream.push_back(dataset.new_items[rng.Zipf(
          dataset.new_items.size(), flags.GetDouble("zipf"))]);
    }
  }

  // --- streaming train-to-serve loop (--stream_train) ---
  // The trainer thread is shared by both serving paths; only the PublishFn
  // differs (single-runtime Publish vs per-tenant PublishSharded fan-out).
  // The arrival stream reads the immutable world (new_items, activity,
  // ground truth); the trainer owns its growing dataset copy.
  const bool stream_train = flags.GetBool("stream_train");
  std::unique_ptr<atnn::stream::StreamingTrainer> stream_trainer;
  std::unique_ptr<sim::ArrivalStream> arrivals;
  std::vector<atnn::stream::DayReport> day_reports;
  Status stream_status;
  std::thread stream_thread;
  const auto start_stream = [&](atnn::stream::PublishFn publish_fn) {
    atnn::stream::StreamingTrainerConfig stream_config;
    stream_config.model = config;
    stream_config.train.epochs =
        static_cast<int>(flags.GetInt64("stream_epochs"));
    stream_config.train.seed = world.seed;
    stream_config.train.cross_batch_negatives =
        flags.GetBool("stream_negatives");
    stream_config.train.one_backprop = flags.GetBool("stream_one_backprop");
    stream_config.active_user_group = flags.GetInt64("user_group");
    stream_config.replay_interactions = flags.GetInt64("stream_replay");
    stream_config.tag = "atnn_serve-stream";
    stream_trainer = std::make_unique<atnn::stream::StreamingTrainer>(
        dataset, stream_config, std::move(publish_fn));
    stream_status = stream_trainer->WarmStartFrom(model);
    if (!stream_status.ok()) return;
    sim::ArrivalStreamConfig arrival_config;
    arrival_config.num_days =
        static_cast<int>(flags.GetInt64("stream_days"));
    arrival_config.feedback_per_item =
        static_cast<int>(flags.GetInt64("stream_feedback"));
    arrival_config.seed = world.seed ^ 0xa55a7e11ULL;
    arrivals = std::make_unique<sim::ArrivalStream>(&dataset,
                                                    arrival_config);
    const int64_t pause_ms = flags.GetInt64("stream_pause_ms");
    stream_thread = std::thread([&, pause_ms] {
      while (!arrivals->Done()) {
        auto report = stream_trainer->Step(arrivals.get());
        if (!report.ok()) {
          stream_status = report.status();
          return;
        }
        day_reports.push_back(std::move(*report));
        if (pause_ms > 0 && !arrivals->Done()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
        }
      }
    });
  };
  // Joins the trainer and prints the per-day staleness table; returns the
  // number of failures to fold into the exit code.
  const auto finish_stream = [&]() -> int64_t {
    if (!stream_train) return 0;
    if (stream_thread.joinable()) stream_thread.join();
    if (!stream_status.ok()) {
      std::fprintf(stderr, "stream training failed: %s\n",
                   stream_status.ToString().c_str());
      return 1;
    }
    int64_t failures = 0;
    std::printf("\nstreamed %zu day(s):\n", day_reports.size());
    std::printf("  day  cohort  feedback  served_auc  fresh_auc  "
                "gap      train_ms  publish_ms  version\n");
    for (const auto& report : day_reports) {
      if (!report.published) ++failures;
      std::printf("  %3d  %6lld  %8lld  %10.4f  %9.4f  %+7.4f  %8.1f  "
                  "%10.2f  %s\n",
                  report.day,
                  static_cast<long long>(report.cohort_items),
                  static_cast<long long>(report.feedback_rows),
                  report.served_auc, report.fresh_auc,
                  report.staleness_gap, report.train_ms, report.publish_ms,
                  report.published
                      ? std::to_string(report.published_version).c_str()
                      : "REJECTED");
    }
    return failures;
  };

  // --- sharded multi-tenant path (--shards / --tenants) ---
  if (flags.GetInt64("shards") > 0 || !flags.GetString("tenants").empty()) {
    std::vector<std::string> tenant_names;
    {
      const std::string& spec = flags.GetString("tenants");
      std::string name;
      for (const char c : spec) {
        if (c == ',') {
          if (!name.empty()) tenant_names.push_back(name);
          name.clear();
        } else {
          name.push_back(c);
        }
      }
      if (!name.empty()) tenant_names.push_back(name);
      if (tenant_names.empty()) tenant_names.push_back("atnn");
    }
    const size_t num_shards = static_cast<size_t>(
        flags.GetInt64("shards") > 0 ? flags.GetInt64("shards") : 2);
    const int64_t kill_shard = flags.GetInt64("kill_shard");
    if (kill_shard >= static_cast<int64_t>(num_shards)) {
      std::fprintf(stderr, "--kill_shard must be < --shards\n");
      return 2;
    }
    const double resize_at = flags.GetDouble("resize_at");
    const int64_t resize_to = flags.GetInt64("resize_to");
    if (resize_at < 0.0 || resize_at >= 1.0) {
      std::fprintf(stderr, "--resize_at must be in [0, 1)\n");
      return 2;
    }
    if (resize_at > 0.0 && resize_to < 1) {
      std::fprintf(stderr, "--resize_at requires --resize_to >= 1\n");
      return 2;
    }

    cluster::TenantRegistry registry;
    for (const std::string& name : tenant_names) {
      cluster::TenantConfig tenant;
      tenant.name = name;
      tenant.sharded.num_shards = num_shards;
      tenant.sharded.default_deadline_us = flags.GetInt64("deadline_us");
      tenant.admission_qps = flags.GetDouble("tenant_qps");
      tenant.sharded.prior = prior;
      tenant.sharded.shard.num_workers =
          static_cast<size_t>(flags.GetInt64("workers"));
      tenant.sharded.shard.compile_mode = compute.compile;
      tenant.sharded.shard.enable_score_cache = flags.GetBool("score_cache");
      tenant.sharded.shard.batcher.max_batch_size =
          static_cast<size_t>(flags.GetInt64("max_batch"));
      tenant.sharded.shard.batcher.max_delay_us =
          flags.GetInt64("max_delay_us");
      tenant.sharded.shard.batcher.queue_capacity =
          static_cast<size_t>(flags.GetInt64("queue_capacity"));
      tenant.sharded.shard.batcher.admission =
          admission == "block" ? runtime::AdmissionPolicy::kBlock
                               : runtime::AdmissionPolicy::kRejectWithStatus;
      auto added = registry.AddTenant(tenant);
      if (!added.ok()) {
        std::fprintf(stderr, "tenant '%s' rejected: %s\n", name.c_str(),
                     added.status().ToString().c_str());
        return 2;
      }
      const auto tenant_published = (*added)->PublishSharded(snapshot);
      if (!tenant_published.ok()) {
        std::fprintf(stderr, "tenant '%s' publish rejected: %s\n",
                     name.c_str(),
                     tenant_published.status().ToString().c_str());
        return 1;
      }
    }
    std::printf("sharded serving: %zu tenant(s) x %zu shard(s), %lld "
                "worker(s)/shard\n",
                tenant_names.size(), num_shards,
                static_cast<long long>(flags.GetInt64("workers")));
    if (flags.GetDouble("tenant_qps") > 0.0) {
      std::printf("admission: %.0f rows/s per tenant (over-quota rows shed "
                  "tier-tagged)\n",
                  flags.GetDouble("tenant_qps"));
    }

    // Self-healing: one supervisor per tenant probes every shard, walks
    // failing shards healthy -> suspect -> dead, and rebuilds dead shards
    // from the last published snapshot slice. Started before the replay so
    // the --kill_shard drill heals without operator action.
    const bool auto_recover =
        flags.GetBool("auto_recover") && kill_shard >= 0;
    std::vector<std::unique_ptr<cluster::ShardSupervisor>> supervisors;
    if (auto_recover) {
      cluster::ShardSupervisorConfig supervision;
      supervision.probe_period_ms = 5;
      supervision.seed = world.seed;
      for (const std::string& name : tenant_names) {
        supervisors.push_back(std::make_unique<cluster::ShardSupervisor>(
            registry.Get(name), supervision));
        supervisors.back()->Start();
      }
    }

    if (stream_train) {
      // Fan every day's fresh snapshot out to all tenants; the returned
      // version is the last tenant's (they move in lockstep from the same
      // publish sequence).
      start_stream([&](runtime::ServingSnapshot fresh)
                       -> StatusOr<uint64_t> {
        uint64_t version = 0;
        for (const std::string& name : tenant_names) {
          auto tenant_published =
              registry.Get(name)->PublishSharded(fresh);
          if (!tenant_published.ok()) return tenant_published.status();
          version = *tenant_published;
        }
        return version;
      });
      if (!stream_status.ok()) {
        std::fprintf(stderr, "stream trainer warm start failed: %s\n",
                     stream_status.ToString().c_str());
        return 1;
      }
    }

    // Replay: each client thread owns every num_clients-th chunk, and
    // chunks rotate across tenants so every tenant sees the same skew.
    Stopwatch timer;
    std::atomic<int64_t> ok_count{0};
    std::atomic<int64_t> error_count{0};
    std::array<std::atomic<int64_t>, runtime::kNumServingTiers> tiers{};
    std::vector<std::thread> client_threads;
    client_threads.reserve(static_cast<size_t>(num_clients));
    constexpr size_t kChunk = 512;
    for (int64_t c = 0; c < num_clients; ++c) {
      client_threads.emplace_back([&, c] {
        size_t chunk_index = 0;
        for (size_t begin = 0; begin < stream.size();
             begin += kChunk, ++chunk_index) {
          if (chunk_index % static_cast<size_t>(num_clients) !=
              static_cast<size_t>(c)) {
            continue;
          }
          const size_t end = std::min(begin + kChunk, stream.size());
          const std::vector<int64_t> chunk(stream.begin() + begin,
                                           stream.begin() + end);
          const auto& tenant =
              tenant_names[chunk_index % tenant_names.size()];
          for (const auto& result : registry.ScoreBatch(tenant, chunk)) {
            if (result.ok()) {
              ok_count.fetch_add(1);
              tiers[static_cast<size_t>(result.value().tier)].fetch_add(1);
            } else {
              error_count.fetch_add(1);
            }
          }
        }
      });
    }
    const auto answered = [&] {
      return ok_count.load() + error_count.load();
    };
    if (resize_at > 0.0) {
      // Live-resize drill: once the configured fraction of the stream has
      // been answered, rebalance every tenant to --resize_to shards while
      // the clients keep scoring. The epoch swap drains in-flight requests
      // on the old routing, so zero rows may drop or error.
      const int64_t trigger = static_cast<int64_t>(
          resize_at * static_cast<double>(total_requests));
      while (answered() < trigger) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (const std::string& name : tenant_names) {
        const auto resized = registry.Get(name)->ResizeShards(
            static_cast<size_t>(resize_to));
        if (!resized.ok()) {
          std::fprintf(stderr, "tenant '%s' resize failed: %s\n",
                       name.c_str(),
                       resized.status().ToString().c_str());
          error_count.fetch_add(1);
          continue;
        }
        std::printf(
            "tenant '%s' resized %zu -> %zu shards mid-replay: moved "
            "%lld/%lld rows, bounded-remap %s, epoch %llu\n",
            name.c_str(), resized->from_shards, resized->to_shards,
            static_cast<long long>(resized->moved_rows),
            static_cast<long long>(resized->total_rows),
            resized->moved_only_within_bound ? "held" : "VIOLATED",
            static_cast<unsigned long long>(resized->epoch));
        if (!resized->moved_only_within_bound) error_count.fetch_add(1);
      }
    }
    if (kill_shard >= 0) {
      // Degraded-serving drill: wait until roughly half the stream has
      // been answered, then take the shard down on every tenant. With
      // --auto_recover the supervisors notice, rebuild, and re-admit it.
      while (answered() < total_requests / 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      for (const std::string& name : tenant_names) {
        registry.Get(name)->ShutDownShard(static_cast<size_t>(kill_shard));
      }
      std::printf("killed shard %lld on every tenant mid-replay\n",
                  static_cast<long long>(kill_shard));
    }
    for (auto& client : client_threads) client.join();
    const double seconds = timer.ElapsedSeconds();
    if (auto_recover) {
      // Give the supervisors a bounded window to finish walking the killed
      // shard back to healthy, then report per-tenant outcomes before the
      // runtimes shut down (probing a shut-down runtime reads as dead).
      // Recovery = a rebuild actually happened AND health is back — the
      // health field alone starts at healthy and would read as recovered
      // before the supervisor has even detected the kill.
      const auto recovered = [&] {
        for (const auto& supervisor : supervisors) {
          int64_t rebuilds = 0;
          for (const auto& [name, value] :
               supervisor->Collect().counters) {
            if (name == "supervisor.rebuilds") rebuilds = value;
          }
          if (rebuilds < 1 ||
              supervisor->health(static_cast<size_t>(kill_shard)) !=
                  cluster::ShardHealth::kHealthy) {
            return false;
          }
        }
        return true;
      };
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (!recovered() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      for (size_t t = 0; t < tenant_names.size(); ++t) {
        supervisors[t]->Stop();
        const auto health =
            supervisors[t]->health(static_cast<size_t>(kill_shard));
        std::printf("tenant '%s': shard %lld %s after kill (probe EWMA "
                    "%.0fus)\n",
                    tenant_names[t].c_str(),
                    static_cast<long long>(kill_shard),
                    health == cluster::ShardHealth::kHealthy
                        ? "auto-recovered"
                        : cluster::ShardHealthToString(health),
                    supervisors[t]->probe_latency_us(
                        static_cast<size_t>(kill_shard)));
        if (health != cluster::ShardHealth::kHealthy) {
          error_count.fetch_add(1);
        }
      }
    }
    const int64_t stream_failures = finish_stream();
    error_count.fetch_add(stream_failures);
    registry.Shutdown();

    const auto collected = registry.Collect();
    std::printf("%s\n",
                obs::ToTable(collected, "multi-tenant metrics").c_str());
    if (!flags.GetString("metrics_json").empty()) {
      const Status appended =
          obs::AppendJsonLine(collected, flags.GetString("metrics_json"));
      if (!appended.ok()) {
        std::fprintf(stderr, "metrics export failed: %s\n",
                     appended.ToString().c_str());
      }
    }
    std::printf(
        "\nreplayed %lld requests across %zu tenant(s) from %lld client(s) "
        "in %.3fs — %.0f req/s (%lld ok, %lld rejected/error)\n",
        static_cast<long long>(total_requests), tenant_names.size(),
        static_cast<long long>(num_clients), seconds,
        static_cast<double>(total_requests) / seconds,
        static_cast<long long>(ok_count.load()),
        static_cast<long long>(error_count.load()));
    std::printf("serving tiers:");
    for (size_t t = 0; t < runtime::kNumServingTiers; ++t) {
      std::printf("  %s=%lld",
                  runtime::ServingTierToString(
                      static_cast<runtime::ServingTier>(t)),
                  static_cast<long long>(tiers[t].load()));
    }
    std::printf("\n");
    return error_count.load() > 0 && admission == "block" ? 1 : 0;
  }

  // --- runtime ---
  const bool chaos = flags.GetBool("chaos");
  runtime::RuntimeConfig runtime_config;
  runtime_config.num_workers =
      static_cast<size_t>(flags.GetInt64("workers"));
  runtime_config.enable_score_cache = flags.GetBool("score_cache");
  runtime_config.compile_mode = compute.compile;
  runtime_config.default_deadline_us = flags.GetInt64("deadline_us");
  runtime_config.prior = prior;
  runtime_config.batcher.max_batch_size =
      static_cast<size_t>(flags.GetInt64("max_batch"));
  runtime_config.batcher.max_delay_us = flags.GetInt64("max_delay_us");
  runtime_config.batcher.queue_capacity =
      static_cast<size_t>(flags.GetInt64("queue_capacity"));
  runtime_config.batcher.admission =
      admission == "block" ? runtime::AdmissionPolicy::kBlock
                           : runtime::AdmissionPolicy::kRejectWithStatus;
  if (chaos) {
    runtime_config.fault_injection.enabled = true;
    runtime_config.fault_injection.seed =
        static_cast<uint64_t>(flags.GetInt64("chaos_seed"));
    runtime_config.fault_injection.worker_delay_probability =
        flags.GetDouble("chaos_delay_p");
    runtime_config.fault_injection.worker_delay_us =
        flags.GetInt64("chaos_delay_us");
    runtime_config.fault_injection.batch_failure_probability =
        flags.GetDouble("chaos_batch_fail_p");
    runtime_config.fault_injection.enqueue_reject_probability =
        flags.GetDouble("chaos_reject_p");
  }
  auto runtime_or = runtime::InferenceRuntime::Create(runtime_config);
  if (!runtime_or.ok()) {
    std::fprintf(stderr, "invalid runtime configuration: %s\n",
                 runtime_or.status().ToString().c_str());
    return 2;
  }
  runtime::InferenceRuntime& runtime = **runtime_or;

  const auto published = runtime.Publish(snapshot);
  if (!published.ok()) {
    std::fprintf(stderr, "initial publish rejected: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }

  // Periodic JSON-lines export of the runtime's registry (runtime counters
  // and latency histograms, batcher queue depth, pool.* instruments).
  // Recording stays lock-free while the exporter reads.
  std::unique_ptr<obs::PeriodicJsonExporter> metrics_exporter;
  if (!flags.GetString("metrics_json").empty()) {
    metrics_exporter = std::make_unique<obs::PeriodicJsonExporter>(
        &runtime.metrics_registry(), flags.GetString("metrics_json"),
        flags.GetInt64("metrics_interval_ms"));
  }

  if (stream_train) {
    start_stream([&](runtime::ServingSnapshot fresh) {
      return runtime.Publish(std::move(fresh));
    });
    if (!stream_status.ok()) {
      std::fprintf(stderr, "stream trainer warm start failed: %s\n",
                   stream_status.ToString().c_str());
      return 1;
    }
  }

  std::atomic<bool> stop_swapping{false};
  std::atomic<int64_t> corrupt_attempts{0};
  std::atomic<int64_t> corrupt_accepted{0};
  std::thread swapper;
  if (flags.GetInt64("swap_every_ms") > 0) {
    swapper = std::thread([&] {
      // Under --chaos every other publish is armed to be corrupted in
      // flight; validation must reject it while the previous version keeps
      // serving.
      bool corrupt_next = chaos;
      while (!stop_swapping.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            flags.GetInt64("swap_every_ms")));
        if (corrupt_next) {
          runtime.fault_injector().ArmCorruptPublish();
          corrupt_attempts.fetch_add(1);
          if (runtime.Publish(snapshot).ok()) corrupt_accepted.fetch_add(1);
        } else {
          runtime.Publish(snapshot);
        }
        if (chaos) corrupt_next = !corrupt_next;
      }
    });
  }

  // --- replay from `clients` threads, each owning a slice ---
  Stopwatch timer;
  std::atomic<int64_t> ok_count{0};
  std::atomic<int64_t> error_count{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(num_clients));
  for (int64_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<StatusOr<runtime::ScoreResult>>> futures;
      for (size_t i = static_cast<size_t>(c); i < stream.size();
           i += static_cast<size_t>(num_clients)) {
        futures.push_back(runtime.ScoreAsync(stream[i]));
      }
      for (auto& future : futures) {
        if (future.get().ok()) {
          ok_count.fetch_add(1);
        } else {
          error_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  const double seconds = timer.ElapsedSeconds();

  if (swapper.joinable()) {
    stop_swapping.store(true);
    swapper.join();
  }
  const int64_t stream_failures = finish_stream();
  error_count.fetch_add(stream_failures);

  if (chaos) {
    // Deterministic corrupt-publish drill (the swapper's attempts depend on
    // timing): arm, publish, expect rejection, then prove a clean publish
    // and a live score still work on the surviving version.
    runtime.fault_injector().ArmCorruptPublish();
    corrupt_attempts.fetch_add(1);
    const auto corrupt_publish = runtime.Publish(snapshot);
    if (corrupt_publish.ok()) {
      corrupt_accepted.fetch_add(1);
    } else {
      std::printf("corrupt publish rejected as expected: %s\n",
                  corrupt_publish.status().ToString().c_str());
    }
    if (!runtime.Publish(snapshot).ok() ||
        !runtime.Score(stream.front()).ok()) {
      std::fprintf(stderr,
                   "FAIL: serving did not survive the corrupt publish\n");
      error_count.fetch_add(1);
    }
  }
  runtime.Shutdown();
  if (metrics_exporter != nullptr) {
    metrics_exporter->Stop();  // writes the final end-state line
    if (!metrics_exporter->status().ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   metrics_exporter->status().ToString().c_str());
    } else {
      std::printf("metrics: %lld JSON line(s) -> %s\n",
                  static_cast<long long>(metrics_exporter->flushes()),
                  flags.GetString("metrics_json").c_str());
    }
  }

  const auto stats = runtime.stats();
  std::printf("%s\n", runtime::RuntimeStats::ToTable(stats).c_str());
  std::printf(
      "\nreplayed %lld requests from %lld client(s) in %.3fs — %.0f req/s "
      "(%lld ok, %lld rejected/error, %lld snapshot swaps)\n",
      static_cast<long long>(total_requests),
      static_cast<long long>(num_clients), seconds,
      static_cast<double>(total_requests) / seconds,
      static_cast<long long>(ok_count.load()),
      static_cast<long long>(error_count.load()),
      static_cast<long long>(stats.swaps));
  if (chaos) {
    const int64_t served = std::max<int64_t>(1, stats.completed_ok);
    std::printf(
        "chaos: %lld faults injected, %lld corrupt publishes attempted "
        "(%lld accepted, %lld rejected), %.2f%% of responses degraded\n",
        static_cast<long long>(stats.faults_injected),
        static_cast<long long>(corrupt_attempts.load()),
        static_cast<long long>(corrupt_accepted.load()),
        static_cast<long long>(stats.publish_rejected),
        100.0 * static_cast<double>(stats.degraded) /
            static_cast<double>(served));
    std::printf("serving tiers:");
    for (size_t t = 0; t < runtime::kNumServingTiers; ++t) {
      std::printf("  %s=%lld",
                  runtime::ServingTierToString(
                      static_cast<runtime::ServingTier>(t)),
                  static_cast<long long>(stats.tier_counts[t]));
    }
    std::printf("\n");
  }

  // --- final display: rank all arrivals (same O(1) path the runtime ran) ---
  const auto top_k = flags.GetInt64("top_k");
  std::printf("\ntop %lld new arrivals:\n", static_cast<long long>(top_k));
  int rank = 1;
  for (const auto& [item, score] : prior->TopK(top_k)) {
    std::printf("  #%3d item %lld  score %.4f\n", rank++,
                static_cast<long long>(item), score);
  }
  if (corrupt_accepted.load() > 0) {
    std::fprintf(stderr, "FAIL: a corrupt snapshot passed validation\n");
    return 1;
  }
  return error_count.load() > 0 && admission == "block" ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
