// Scoring CLI: the serving-side counterpart of atnn_train. Reconstructs
// the feature tables from the shared world seed, loads the model snapshot,
// and answers top-K popularity queries over the new arrivals — either from
// the precomputed index or by re-scoring with the model.
//
//   $ atnn_score --snapshot=/tmp/atnn_snapshot.bin --top_k=20

#include <cstdio>

#include "common/flags.h"
#include "core/atnn.h"
#include "core/feature_adapter.h"
#include "core/generator_plan.h"
#include "core/popularity.h"
#include "data/tmall.h"
#include "quant/quantized_generator.h"
#include "serving/compute_flags.h"
#include "serving/model_snapshot.h"
#include "serving/popularity_index.h"

namespace {

constexpr char kModelTag[] = "atnn-cli-v1";

int Run(int argc, const char* const* argv) {
  using namespace atnn;

  FlagParser flags(
      "atnn_score — load an ATNN snapshot and rank new arrivals");
  flags.AddInt64("users", 2000, "number of users (must match training)");
  flags.AddInt64("items", 4000, "number of catalog items (must match)");
  flags.AddInt64("new_items", 1000, "number of new arrivals (must match)");
  flags.AddInt64("interactions", 150000, "interactions (must match)");
  flags.AddInt64("data_seed", 20210304, "world seed (must match training)");
  flags.AddInt64("vector_dim", 32, "vector width (must match training)");
  flags.AddInt64("user_group", 500, "active-user group size");
  flags.AddInt64("top_k", 20, "how many items to print");
  flags.AddString("snapshot", "/tmp/atnn_snapshot.bin",
                  "model snapshot from atnn_train");
  flags.AddString("index", "",
                  "optional: serve from this precomputed index instead of "
                  "re-scoring");
  serving::AddComputeFlags(
      &flags,
      "re-score through a low-precision generator: fp32 | bf16 "
      "| int8. Loads '<snapshot>.<precision>' when atnn_train "
      "wrote one, else quantizes the loaded model in-process");
  flags.AddBool("help", false, "print usage");

  Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  const auto compute_or = serving::ResolveComputeFlags(flags);
  if (!compute_or.ok()) {
    std::fprintf(stderr, "%s\n", compute_or.status().ToString().c_str());
    return 2;
  }
  const serving::ComputeOptions& compute = *compute_or;
  std::printf("kernel backend: %s\n", compute.backend_name.c_str());
  const auto top_k = flags.GetInt64("top_k");

  // Fast path: answer from the precomputed index.
  if (!flags.GetString("index").empty()) {
    auto index_or =
        serving::PopularityIndex::LoadFromFile(flags.GetString("index"));
    if (!index_or.ok()) {
      std::fprintf(stderr, "index load failed: %s\n",
                   index_or.status().ToString().c_str());
      return 1;
    }
    std::printf("top %lld new arrivals (from index, %zu items):\n",
                static_cast<long long>(top_k), index_or->size());
    int rank = 1;
    for (const auto& [item, score] : index_or->TopK(top_k)) {
      std::printf("  #%3d item %lld  score %.4f\n", rank++,
                  static_cast<long long>(item), score);
    }
    return 0;
  }

  // Re-scoring path: rebuild the world from the seed, load the snapshot.
  data::TmallConfig world;
  world.num_users = flags.GetInt64("users");
  world.num_items = flags.GetInt64("items");
  world.num_new_items = flags.GetInt64("new_items");
  world.num_interactions = flags.GetInt64("interactions");
  world.seed = static_cast<uint64_t>(flags.GetInt64("data_seed"));
  data::TmallDataset dataset = data::GenerateTmallDataset(world);
  core::NormalizeTmallInPlace(&dataset);

  core::AtnnConfig config;
  config.tower.deep_dims = {64, 32};
  config.tower.cross_layers = 3;
  config.tower.output_dim = flags.GetInt64("vector_dim");
  config.seed = 7;
  core::AtnnModel model(*dataset.user_schema, *dataset.item_profile_schema,
                        *dataset.item_stats_schema, config);
  // Retrying loader: atnn_score is routinely pointed at a snapshot that a
  // concurrently running trainer is rotating; a mid-write read is an
  // IoError worth a second attempt, not a failed run.
  status = serving::LoadModelSnapshotWithRetry(
      &model, flags.GetString("snapshot"), kModelTag);
  if (!status.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  const auto group =
      core::SelectActiveUsers(dataset, flags.GetInt64("user_group"));
  const auto predictor =
      core::PopularityPredictor::Build(model, dataset, group);

  std::vector<double> scores;
  bool used_plan = false;
  if (compute.precision == quant::Precision::kFp32) {
    scores = core::ScoreItemsMaybeCompiled(compute.compile, model, predictor,
                                           dataset, dataset.new_items,
                                           &used_plan);
  } else {
    // Prefer the artifact atnn_train wrote next to the snapshot; fall back
    // to quantizing the freshly loaded model in-process (same calibration
    // slice as the trainer, so the artifacts are interchangeable).
    const std::string quant_path = flags.GetString("snapshot") + "." +
                                   quant::PrecisionName(compute.precision);
    const data::BlockBatch block =
        data::GatherBlock(dataset.item_profiles, dataset.new_items);
    auto quantized = quant::QuantizedGenerator::Load(quant_path, kModelTag);
    if (!quantized.ok()) {
      quantized = quant::QuantizedGenerator::Build(model, block,
                                                   compute.precision);
    }
    if (!quantized.ok()) {
      std::fprintf(stderr, "quantization failed: %s\n",
                   quantized.status().ToString().c_str());
      return 1;
    }
    nn::Tensor vectors;
    status = quantized->Forward(block, &vectors);
    if (!status.ok()) {
      std::fprintf(stderr, "quantized forward failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    scores.reserve(static_cast<size_t>(vectors.rows()));
    for (int64_t r = 0; r < vectors.rows(); ++r) {
      scores.push_back(
          predictor.ScoreVector(vectors.row_ptr(r), vectors.cols()));
    }
    std::printf("precision: %s\n",
                quant::PrecisionName(compute.precision));
  }
  serving::PopularityIndex index;
  index.BulkLoad(dataset.new_items, scores);

  std::printf("top %lld of %zu new arrivals (re-scored%s):\n",
              static_cast<long long>(top_k), scores.size(),
              used_plan ? " via compiled plan" : "");
  int rank = 1;
  for (const auto& [item, score] : index.TopK(top_k)) {
    std::printf("  #%3d item %lld  score %.4f\n", rank++,
                static_cast<long long>(item), score);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
