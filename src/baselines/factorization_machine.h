#ifndef ATNN_BASELINES_FACTORIZATION_MACHINE_H_
#define ATNN_BASELINES_FACTORIZATION_MACHINE_H_

#include <cstdint>
#include <vector>

#include "baselines/sparse_encoder.h"
#include "common/rng.h"

namespace atnn::baselines {

/// FM hyper-parameters (Rendle, ICDM'10).
struct FmConfig {
  int latent_dim = 8;
  double learning_rate = 0.05;
  /// L2 regularization on weights and factors.
  double l2 = 1e-5;
  /// Initialization scale of the factor matrix.
  double init_stddev = 0.05;
  uint64_t seed = 123;
};

/// Second-order factorization machine for binary classification:
///   logit(x) = w0 + sum_i w_i x_i
///            + 1/2 sum_f [ (sum_i v_if x_i)^2 - sum_i v_if^2 x_i^2 ]
/// trained with Adagrad on logistic loss. FMs were the step between linear
/// models and DNNs for CTR (paper Section II-B); on one-hot data the
/// pairwise term learns exactly the user-item interactions a two-tower dot
/// product learns, which makes FM the natural "shallow ATNN" baseline.
class FactorizationMachine {
 public:
  FactorizationMachine(int64_t dimension, const FmConfig& config = {});

  /// One Adagrad step on a single example (label in {0,1}). Returns the
  /// pre-update probability.
  double Update(const SparseRow& row, float label);

  /// One pass over the data in the given order.
  void TrainPass(const std::vector<SparseRow>& rows,
                 const std::vector<float>& labels);

  double PredictLogit(const SparseRow& row) const;
  double PredictProbability(const SparseRow& row) const;
  std::vector<double> PredictProbability(
      const std::vector<SparseRow>& rows) const;

  int64_t dimension() const { return dimension_; }
  int latent_dim() const { return config_.latent_dim; }

 private:
  FmConfig config_;
  int64_t dimension_;
  double bias_ = 0.0;
  double bias_accum_ = 0.0;
  std::vector<double> linear_;        // [dimension]
  std::vector<double> linear_accum_;  // Adagrad state
  std::vector<double> factors_;       // [dimension, latent_dim] row-major
  std::vector<double> factors_accum_;
};

}  // namespace atnn::baselines

#endif  // ATNN_BASELINES_FACTORIZATION_MACHINE_H_
