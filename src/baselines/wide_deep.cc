#include "baselines/wide_deep.h"

#include "common/rng.h"
#include "core/feature_adapter.h"

namespace atnn::baselines {

namespace {

std::vector<nn::EmbeddingFieldSpec> Specs(const data::FeatureSchema& schema,
                                          int64_t embed_dim_override) {
  std::vector<nn::EmbeddingFieldSpec> specs =
      core::ToEmbeddingSpecs(schema);
  if (embed_dim_override > 0) {
    for (auto& spec : specs) spec.embed_dim = embed_dim_override;
  }
  return specs;
}

/// Index of the categorical field with the given name, or -1.
int64_t FindCategorical(const data::FeatureSchema& schema,
                        const std::string& name) {
  for (size_t c = 0; c < schema.num_categorical(); ++c) {
    if (schema.categorical_spec(c).name == name) {
      return static_cast<int64_t>(c);
    }
  }
  return -1;
}

}  // namespace

WideDeepModel::WideDeepModel(const data::FeatureSchema& user_schema,
                             const data::FeatureSchema& item_profile_schema,
                             const data::FeatureSchema& item_stats_schema,
                             const WideDeepConfig& config)
    : config_(config) {
  Rng rng(config.seed);

  // Wide branch: one weight per categorical value of every field.
  auto add_wide_tables = [this](const data::FeatureSchema& schema,
                                const char* prefix) {
    for (size_t c = 0; c < schema.num_categorical(); ++c) {
      const auto& spec = schema.categorical_spec(c);
      wide_tables_.push_back(std::make_unique<nn::Parameter>(
          std::string("wide_deep.wide.") + prefix + "." + spec.name,
          nn::Tensor::Zeros(spec.vocab_size, 1)));
    }
  };
  add_wide_tables(user_schema, "user");
  add_wide_tables(item_profile_schema, "item");
  num_wide_fields_ = static_cast<int64_t>(wide_tables_.size());

  cross_table_ = std::make_unique<nn::Parameter>(
      "wide_deep.wide.cross", nn::Tensor::Zeros(config.cross_buckets, 1));

  num_dense_ = static_cast<int64_t>(user_schema.num_numeric() +
                                    item_profile_schema.num_numeric());
  if (config.use_item_stats) {
    num_dense_ += static_cast<int64_t>(item_stats_schema.num_numeric());
  }
  wide_dense_ = std::make_unique<nn::Parameter>(
      "wide_deep.wide.dense", nn::Tensor::Zeros(num_dense_, 1));
  bias_ = std::make_unique<nn::Parameter>("wide_deep.bias",
                                          nn::Tensor::Zeros(1, 1));

  // Deep branch.
  user_bag_ = std::make_unique<nn::EmbeddingBag>(
      "wide_deep.user", Specs(user_schema, config.embed_dim), &rng);
  item_bag_ = std::make_unique<nn::EmbeddingBag>(
      "wide_deep.item", Specs(item_profile_schema, config.embed_dim), &rng);
  int64_t deep_input =
      user_bag_->OutputDim(static_cast<int64_t>(user_schema.num_numeric())) +
      item_bag_->OutputDim(
          static_cast<int64_t>(item_profile_schema.num_numeric()));
  if (config.use_item_stats) {
    deep_input += static_cast<int64_t>(item_stats_schema.num_numeric());
  }
  std::vector<int64_t> dims = {deep_input};
  dims.insert(dims.end(), config.deep_dims.begin(), config.deep_dims.end());
  dims.push_back(1);
  deep_ = std::make_unique<nn::Mlp>("wide_deep.deep", dims,
                                    nn::Activation::kRelu,
                                    nn::Activation::kIdentity, &rng);

  // Cross-feature source fields (skipped gracefully if the schema lacks
  // them).
  cross_user_field_ = FindCategorical(user_schema, "pref_category");
  cross_item_field_ = FindCategorical(item_profile_schema, "category");
}

std::vector<int64_t> WideDeepModel::CrossIds(
    const data::CtrBatch& batch) const {
  const int64_t rows = batch.labels.rows();
  std::vector<int64_t> ids(static_cast<size_t>(rows), 0);
  if (cross_user_field_ < 0 || cross_item_field_ < 0) return ids;
  const auto& user_col =
      batch.user.categorical[static_cast<size_t>(cross_user_field_)];
  const auto& item_col =
      batch.item_profile.categorical[static_cast<size_t>(cross_item_field_)];
  for (int64_t r = 0; r < rows; ++r) {
    const uint64_t hash =
        HashCombine(static_cast<uint64_t>(user_col[static_cast<size_t>(r)]),
                    static_cast<uint64_t>(item_col[static_cast<size_t>(r)]));
    ids[static_cast<size_t>(r)] =
        static_cast<int64_t>(hash % static_cast<uint64_t>(
                                        config_.cross_buckets));
  }
  return ids;
}

nn::Var WideDeepModel::Logits(const data::CtrBatch& batch) const {
  // --- wide branch ---
  std::vector<nn::Var> wide_terms;
  size_t table = 0;
  for (size_t c = 0; c < batch.user.categorical.size(); ++c, ++table) {
    wide_terms.push_back(nn::EmbeddingLookup(wide_tables_[table]->var(),
                                             batch.user.categorical[c]));
  }
  for (size_t c = 0; c < batch.item_profile.categorical.size();
       ++c, ++table) {
    wide_terms.push_back(nn::EmbeddingLookup(
        wide_tables_[table]->var(), batch.item_profile.categorical[c]));
  }
  wide_terms.push_back(
      nn::EmbeddingLookup(cross_table_->var(), CrossIds(batch)));

  // Dense slab shared by both branches.
  std::vector<nn::Var> dense_parts = {nn::Constant(batch.user.numeric),
                                      nn::Constant(
                                          batch.item_profile.numeric)};
  if (config_.use_item_stats) {
    dense_parts.push_back(nn::Constant(batch.item_stats.numeric));
  }
  nn::Var dense = nn::ConcatCols(dense_parts);
  wide_terms.push_back(nn::MatMul(dense, wide_dense_->var()));

  nn::Var wide = wide_terms[0];
  for (size_t t = 1; t < wide_terms.size(); ++t) {
    wide = nn::Add(wide, wide_terms[t]);
  }

  // --- deep branch ---
  std::vector<nn::Var> deep_parts = {
      user_bag_->Forward(batch.user.categorical, batch.user.numeric),
      item_bag_->Forward(batch.item_profile.categorical,
                         batch.item_profile.numeric)};
  if (config_.use_item_stats) {
    deep_parts.push_back(nn::Constant(batch.item_stats.numeric));
  }
  nn::Var deep = deep_->Forward(nn::ConcatCols(deep_parts));

  return nn::AddBias(nn::Add(wide, deep), bias_->var());
}

std::vector<double> WideDeepModel::PredictCtr(
    const data::CtrBatch& batch) const {
  nn::Var probs = nn::Sigmoid(Logits(batch));
  std::vector<double> result(static_cast<size_t>(probs.rows()));
  for (int64_t r = 0; r < probs.rows(); ++r) {
    result[static_cast<size_t>(r)] = probs.value().at(r, 0);
  }
  return result;
}

void WideDeepModel::CollectParameters(std::vector<nn::Parameter*>* out) {
  for (auto& table : wide_tables_) out->push_back(table.get());
  out->push_back(cross_table_.get());
  out->push_back(wide_dense_.get());
  out->push_back(bias_.get());
  user_bag_->CollectParameters(out);
  item_bag_->CollectParameters(out);
  deep_->CollectParameters(out);
}

}  // namespace atnn::baselines
