#ifndef ATNN_BASELINES_WIDE_DEEP_H_
#define ATNN_BASELINES_WIDE_DEEP_H_

#include <memory>
#include <vector>

#include "data/schema.h"
#include "data/tmall.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace atnn::baselines {

/// Wide & Deep hyper-parameters (Cheng et al., DLRS'16).
struct WideDeepConfig {
  /// Hidden widths of the deep branch.
  std::vector<int64_t> deep_dims = {64, 32};
  /// Embedding width override for the deep branch (0 = use schema dims).
  int64_t embed_dim = 0;
  /// Hashed bucket count for the wide branch's categorical crosses.
  int64_t cross_buckets = 100000;
  /// When false, item statistics are excluded from both branches.
  bool use_item_stats = true;
  uint64_t seed = 29;
};

/// Wide & Deep CTR model: a wide linear branch over raw categorical
/// one-hots and hashed (user-category x item-category) crosses, jointly
/// trained with a deep embedding-MLP branch; the logit is the sum of the
/// two. Both branches are expressed through the autograd substrate — the
/// wide branch is a 1-dimensional embedding lookup, which makes its
/// training sparse and cheap exactly as in the original system.
class WideDeepModel : public nn::Module {
 public:
  WideDeepModel(const data::FeatureSchema& user_schema,
                const data::FeatureSchema& item_profile_schema,
                const data::FeatureSchema& item_stats_schema,
                const WideDeepConfig& config);

  /// CTR logits for a gathered batch: [n, 1].
  nn::Var Logits(const data::CtrBatch& batch) const;

  /// Click probabilities (no gradient).
  std::vector<double> PredictCtr(const data::CtrBatch& batch) const;

  void CollectParameters(std::vector<nn::Parameter*>* out) override;

 private:
  /// Hashed cross-feature ids of (user pref-category, item category).
  std::vector<int64_t> CrossIds(const data::CtrBatch& batch) const;

  WideDeepConfig config_;
  // Wide branch: per-value weights (1-dim embeddings) per categorical
  // field plus the hashed cross table and a dense-weight vector.
  std::vector<std::unique_ptr<nn::Parameter>> wide_tables_;
  std::unique_ptr<nn::Parameter> cross_table_;
  std::unique_ptr<nn::Parameter> wide_dense_;  // [num_dense, 1]
  std::unique_ptr<nn::Parameter> bias_;        // [1, 1]
  // Deep branch.
  std::unique_ptr<nn::EmbeddingBag> user_bag_;
  std::unique_ptr<nn::EmbeddingBag> item_bag_;
  std::unique_ptr<nn::Mlp> deep_;
  int64_t num_wide_fields_ = 0;
  int64_t num_dense_ = 0;
  int64_t cross_user_field_ = -1;
  int64_t cross_item_field_ = -1;
};

}  // namespace atnn::baselines

#endif  // ATNN_BASELINES_WIDE_DEEP_H_
