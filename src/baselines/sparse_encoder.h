#ifndef ATNN_BASELINES_SPARSE_ENCODER_H_
#define ATNN_BASELINES_SPARSE_ENCODER_H_

#include <cstdint>
#include <vector>

#include "data/schema.h"
#include "data/tmall.h"

namespace atnn::baselines {

/// One example in sparse (index, value) form: one-hot categorical features
/// followed by raw numeric features. The canonical input of the linear-era
/// CTR models (LR/FTRL, FM).
struct SparseRow {
  std::vector<int64_t> indices;
  std::vector<float> values;

  size_t nnz() const { return indices.size(); }
};

/// Maps (user, item-profile[, item-statistics]) feature blocks into one
/// shared sparse feature space:
///   [user one-hots | user numerics | item one-hots | item numerics |
///    stats numerics]
/// Every categorical value gets its own index; every numeric column gets
/// one index carrying its (already normalized) value.
class SparseCtrEncoder {
 public:
  SparseCtrEncoder(const data::FeatureSchema& user_schema,
                   const data::FeatureSchema& item_profile_schema,
                   const data::FeatureSchema& item_stats_schema,
                   bool use_stats);

  /// Total width of the sparse feature space.
  int64_t dimension() const { return dimension_; }

  /// Number of non-zeros per encoded row (constant: one per feature).
  int64_t row_nnz() const { return row_nnz_; }

  /// Encodes a gathered batch.
  std::vector<SparseRow> Encode(const data::CtrBatch& batch) const;

 private:
  void AppendBlock(const data::FeatureSchema& schema, bool categorical_only);

  struct BlockLayout {
    /// Offset of each categorical field's one-hot range.
    std::vector<int64_t> categorical_offsets;
    /// Offset of each numeric column's single index.
    std::vector<int64_t> numeric_offsets;
  };

  static void EncodeBlock(const data::BlockBatch& block,
                          const BlockLayout& layout, int64_t row,
                          SparseRow* out);

  BlockLayout user_layout_;
  BlockLayout item_layout_;
  BlockLayout stats_layout_;
  bool use_stats_;
  int64_t dimension_ = 0;
  int64_t row_nnz_ = 0;
};

}  // namespace atnn::baselines

#endif  // ATNN_BASELINES_SPARSE_ENCODER_H_
