#ifndef ATNN_BASELINES_CONCAT_DNN_H_
#define ATNN_BASELINES_CONCAT_DNN_H_

#include <memory>
#include <vector>

#include "data/schema.h"
#include "data/tmall.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace atnn::baselines {

struct ConcatDnnConfig {
  std::vector<int64_t> hidden_dims = {64, 32};
  bool use_item_stats = true;
  uint64_t seed = 41;
};

/// The paper's Figure 2: the "standard DNN model for pairwise user-item
/// CTR prediction" — user and item embeddings concatenated into one MLP.
/// Competitive at pairwise CTR, but it has no explicit item or user
/// vector, which is exactly why the paper moves to the two-tower
/// structure: you cannot do O(1) popularity prediction with this model.
class ConcatDnnModel : public nn::Module {
 public:
  ConcatDnnModel(const data::FeatureSchema& user_schema,
                 const data::FeatureSchema& item_profile_schema,
                 const data::FeatureSchema& item_stats_schema,
                 const ConcatDnnConfig& config);

  /// CTR logits for a gathered batch: [n, 1].
  nn::Var Logits(const data::CtrBatch& batch) const;

  /// Click probabilities (no gradient).
  std::vector<double> PredictCtr(const data::CtrBatch& batch) const;

  void CollectParameters(std::vector<nn::Parameter*>* out) override;

 private:
  ConcatDnnConfig config_;
  std::unique_ptr<nn::EmbeddingBag> user_bag_;
  std::unique_ptr<nn::EmbeddingBag> item_bag_;
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace atnn::baselines

#endif  // ATNN_BASELINES_CONCAT_DNN_H_
