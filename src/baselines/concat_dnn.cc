#include "baselines/concat_dnn.h"

#include "common/rng.h"
#include "core/feature_adapter.h"

namespace atnn::baselines {

ConcatDnnModel::ConcatDnnModel(const data::FeatureSchema& user_schema,
                               const data::FeatureSchema& item_profile_schema,
                               const data::FeatureSchema& item_stats_schema,
                               const ConcatDnnConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  user_bag_ = std::make_unique<nn::EmbeddingBag>(
      "concat_dnn.user", core::ToEmbeddingSpecs(user_schema), &rng);
  item_bag_ = std::make_unique<nn::EmbeddingBag>(
      "concat_dnn.item", core::ToEmbeddingSpecs(item_profile_schema), &rng);
  int64_t input =
      user_bag_->OutputDim(static_cast<int64_t>(user_schema.num_numeric())) +
      item_bag_->OutputDim(
          static_cast<int64_t>(item_profile_schema.num_numeric()));
  if (config.use_item_stats) {
    input += static_cast<int64_t>(item_stats_schema.num_numeric());
  }
  std::vector<int64_t> dims = {input};
  dims.insert(dims.end(), config.hidden_dims.begin(),
              config.hidden_dims.end());
  dims.push_back(1);
  mlp_ = std::make_unique<nn::Mlp>("concat_dnn.mlp", dims,
                                   nn::Activation::kRelu,
                                   nn::Activation::kIdentity, &rng);
}

nn::Var ConcatDnnModel::Logits(const data::CtrBatch& batch) const {
  std::vector<nn::Var> parts = {
      user_bag_->Forward(batch.user.categorical, batch.user.numeric),
      item_bag_->Forward(batch.item_profile.categorical,
                         batch.item_profile.numeric)};
  if (config_.use_item_stats) {
    parts.push_back(nn::Constant(batch.item_stats.numeric));
  }
  return mlp_->Forward(nn::ConcatCols(parts));
}

std::vector<double> ConcatDnnModel::PredictCtr(
    const data::CtrBatch& batch) const {
  nn::Var probs = nn::Sigmoid(Logits(batch));
  std::vector<double> result(static_cast<size_t>(probs.rows()));
  for (int64_t r = 0; r < probs.rows(); ++r) {
    result[static_cast<size_t>(r)] = probs.value().at(r, 0);
  }
  return result;
}

void ConcatDnnModel::CollectParameters(std::vector<nn::Parameter*>* out) {
  user_bag_->CollectParameters(out);
  item_bag_->CollectParameters(out);
  mlp_->CollectParameters(out);
}

}  // namespace atnn::baselines
