#include "baselines/ftrl_lr.h"

#include <cmath>

#include "common/macros.h"

namespace atnn::baselines {

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double Sign(double x) { return x >= 0.0 ? 1.0 : -1.0; }
}  // namespace

FtrlLogisticRegression::FtrlLogisticRegression(int64_t dimension,
                                               const FtrlConfig& config)
    : config_(config),
      z_(static_cast<size_t>(dimension), 0.0),
      n_(static_cast<size_t>(dimension), 0.0),
      touched_(static_cast<size_t>(dimension), false) {
  ATNN_CHECK(dimension > 0);
  ATNN_CHECK(config.alpha > 0.0);
}

double FtrlLogisticRegression::Weight(int64_t index) const {
  const auto i = static_cast<size_t>(index);
  ATNN_DCHECK(i < z_.size());
  const double z = z_[i];
  if (std::abs(z) <= config_.lambda1) return 0.0;
  return -(z - Sign(z) * config_.lambda1) /
         ((config_.beta + std::sqrt(n_[i])) / config_.alpha +
          config_.lambda2);
}

double FtrlLogisticRegression::PredictProbability(
    const SparseRow& row) const {
  double logit = 0.0;
  for (size_t k = 0; k < row.indices.size(); ++k) {
    logit += Weight(row.indices[k]) * row.values[k];
  }
  return Sigmoid(logit);
}

std::vector<double> FtrlLogisticRegression::PredictProbability(
    const std::vector<SparseRow>& rows) const {
  std::vector<double> result;
  result.reserve(rows.size());
  for (const SparseRow& row : rows) {
    result.push_back(PredictProbability(row));
  }
  return result;
}

double FtrlLogisticRegression::Update(const SparseRow& row, float label) {
  const double p = PredictProbability(row);
  const double grad_base = p - static_cast<double>(label);
  for (size_t k = 0; k < row.indices.size(); ++k) {
    const auto i = static_cast<size_t>(row.indices[k]);
    ATNN_DCHECK(i < z_.size());
    touched_[i] = true;
    // Per-coordinate FTRL-Proximal update (Algorithm 1 of the paper).
    const double g = grad_base * row.values[k];
    const double sigma =
        (std::sqrt(n_[i] + g * g) - std::sqrt(n_[i])) / config_.alpha;
    z_[i] += g - sigma * Weight(row.indices[k]);
    n_[i] += g * g;
  }
  return p;
}

void FtrlLogisticRegression::TrainPass(const std::vector<SparseRow>& rows,
                                       const std::vector<float>& labels) {
  ATNN_CHECK_EQ(rows.size(), labels.size());
  for (size_t i = 0; i < rows.size(); ++i) Update(rows[i], labels[i]);
}

int64_t FtrlLogisticRegression::CountZeroWeights() const {
  int64_t zeros = 0;
  for (size_t i = 0; i < z_.size(); ++i) {
    if (touched_[i] && Weight(static_cast<int64_t>(i)) == 0.0) ++zeros;
  }
  return zeros;
}

int64_t FtrlLogisticRegression::CountTouched() const {
  int64_t touched = 0;
  for (bool t : touched_) {
    if (t) ++touched;
  }
  return touched;
}

}  // namespace atnn::baselines
