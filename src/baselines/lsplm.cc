#include "baselines/lsplm.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace atnn::baselines {

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
constexpr double kAdagradEps = 1e-8;
}  // namespace

LsplmModel::LsplmModel(int64_t dimension, const LsplmConfig& config)
    : config_(config), dimension_(dimension) {
  ATNN_CHECK(dimension > 0);
  ATNN_CHECK(config.num_pieces >= 1);
  const auto m = static_cast<size_t>(config.num_pieces);
  const auto total = m * static_cast<size_t>(dimension);
  Rng rng(config.seed);
  gate_weights_.resize(total);
  piece_weights_.resize(total);
  for (double& v : gate_weights_) v = rng.Normal(0.0, config.init_stddev);
  for (double& v : piece_weights_) v = rng.Normal(0.0, config.init_stddev);
  gate_bias_.assign(m, 0.0);
  piece_bias_.assign(m, 0.0);
  gate_weights_accum_.assign(total, 0.0);
  piece_weights_accum_.assign(total, 0.0);
  gate_bias_accum_.assign(m, 0.0);
  piece_bias_accum_.assign(m, 0.0);
}

void LsplmModel::Forward(const SparseRow& row, std::vector<double>* gate,
                         std::vector<double>* piece_prob) const {
  const auto m = static_cast<size_t>(config_.num_pieces);
  gate->assign(m, 0.0);
  piece_prob->assign(m, 0.0);
  for (size_t p = 0; p < m; ++p) {
    double gate_logit = gate_bias_[p];
    double piece_logit = piece_bias_[p];
    const double* gw = &gate_weights_[p * static_cast<size_t>(dimension_)];
    const double* pw = &piece_weights_[p * static_cast<size_t>(dimension_)];
    for (size_t k = 0; k < row.indices.size(); ++k) {
      const auto i = static_cast<size_t>(row.indices[k]);
      gate_logit += gw[i] * row.values[k];
      piece_logit += pw[i] * row.values[k];
    }
    (*gate)[p] = gate_logit;
    (*piece_prob)[p] = Sigmoid(piece_logit);
  }
  // Stable softmax over the gate logits.
  double max_logit = (*gate)[0];
  for (double g : *gate) max_logit = std::max(max_logit, g);
  double total = 0.0;
  for (double& g : *gate) {
    g = std::exp(g - max_logit);
    total += g;
  }
  for (double& g : *gate) g /= total;
}

double LsplmModel::PredictProbability(const SparseRow& row) const {
  std::vector<double> gate;
  std::vector<double> piece_prob;
  Forward(row, &gate, &piece_prob);
  double p = 0.0;
  for (size_t i = 0; i < gate.size(); ++i) p += gate[i] * piece_prob[i];
  return p;
}

std::vector<double> LsplmModel::PredictProbability(
    const std::vector<SparseRow>& rows) const {
  std::vector<double> result;
  result.reserve(rows.size());
  for (const SparseRow& row : rows) {
    result.push_back(PredictProbability(row));
  }
  return result;
}

std::vector<double> LsplmModel::GateWeights(const SparseRow& row) const {
  std::vector<double> gate;
  std::vector<double> piece_prob;
  Forward(row, &gate, &piece_prob);
  return gate;
}

void LsplmModel::Update(const SparseRow& row, float label) {
  const auto m = static_cast<size_t>(config_.num_pieces);
  std::vector<double> gate;
  std::vector<double> piece_prob;
  Forward(row, &gate, &piece_prob);
  double p = 0.0;
  for (size_t i = 0; i < m; ++i) p += gate[i] * piece_prob[i];
  p = std::clamp(p, 1e-9, 1.0 - 1e-9);
  // dLoss/dp for log loss.
  const double y = label;
  const double dp = (p - y) / (p * (1.0 - p));

  auto adagrad = [this](double* weight, double* accum, double grad) {
    grad += config_.l2 * *weight;
    *accum += grad * grad;
    *weight -= config_.learning_rate * grad /
               (std::sqrt(*accum) + kAdagradEps);
  };

  for (size_t piece = 0; piece < m; ++piece) {
    // d p / d piece_logit = gate * sigma' ; d p / d gate_logit uses the
    // softmax jacobian: gate_piece * (piece_prob_piece - p).
    const double d_piece_logit =
        dp * gate[piece] * piece_prob[piece] * (1.0 - piece_prob[piece]);
    const double d_gate_logit = dp * gate[piece] * (piece_prob[piece] - p);

    double* gw = &gate_weights_[piece * static_cast<size_t>(dimension_)];
    double* gwa =
        &gate_weights_accum_[piece * static_cast<size_t>(dimension_)];
    double* pw = &piece_weights_[piece * static_cast<size_t>(dimension_)];
    double* pwa =
        &piece_weights_accum_[piece * static_cast<size_t>(dimension_)];
    for (size_t k = 0; k < row.indices.size(); ++k) {
      const auto i = static_cast<size_t>(row.indices[k]);
      const double x = row.values[k];
      adagrad(&gw[i], &gwa[i], d_gate_logit * x);
      adagrad(&pw[i], &pwa[i], d_piece_logit * x);
    }
    adagrad(&gate_bias_[piece], &gate_bias_accum_[piece], d_gate_logit);
    adagrad(&piece_bias_[piece], &piece_bias_accum_[piece], d_piece_logit);
  }
}

void LsplmModel::TrainPass(const std::vector<SparseRow>& rows,
                           const std::vector<float>& labels) {
  ATNN_CHECK_EQ(rows.size(), labels.size());
  for (size_t i = 0; i < rows.size(); ++i) Update(rows[i], labels[i]);
}

}  // namespace atnn::baselines
