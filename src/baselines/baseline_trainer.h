#ifndef ATNN_BASELINES_BASELINE_TRAINER_H_
#define ATNN_BASELINES_BASELINE_TRAINER_H_

#include <vector>

#include "baselines/sparse_encoder.h"
#include "core/trainer.h"
#include "data/tmall.h"
#include "metrics/metrics.h"
#include "nn/optimizer.h"

namespace atnn::baselines {

/// Trains any autograd CTR baseline exposing
///   nn::Var Logits(const data::CtrBatch&) const
/// (WideDeepModel, DeepFmModel) with Adam on the BCE loss. Returns the
/// mean training loss per epoch.
template <typename Model>
std::vector<double> TrainCtrBaseline(Model* model,
                                     const data::TmallDataset& dataset,
                                     const core::TrainOptions& options) {
  nn::Adam optimizer(model->Parameters(), options.learning_rate);
  Rng rng(options.seed);
  std::vector<int64_t> order = dataset.train_indices;
  std::vector<double> history;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    double total = 0.0;
    int64_t steps = 0;
    for (const auto& chunk : core::MakeBatches(order, options.batch_size)) {
      const data::CtrBatch batch = MakeCtrBatch(dataset, chunk);
      optimizer.ZeroGrad();
      nn::Var loss =
          nn::SigmoidBceLossWithLogits(model->Logits(batch), batch.labels);
      nn::Backward(loss);
      if (options.clip_norm > 0.0f) optimizer.ClipGradNorm(options.clip_norm);
      optimizer.Step();
      total += loss.value().scalar();
      ++steps;
    }
    history.push_back(total / static_cast<double>(steps));
  }
  return history;
}

/// Test AUC of an autograd CTR baseline.
template <typename Model>
double EvaluateCtrBaselineAuc(const Model& model,
                              const data::TmallDataset& dataset,
                              const std::vector<int64_t>& indices,
                              int batch_size = 1024) {
  std::vector<double> scores;
  std::vector<float> labels;
  scores.reserve(indices.size());
  labels.reserve(indices.size());
  for (const auto& chunk : core::MakeBatches(indices, batch_size)) {
    const data::CtrBatch batch = MakeCtrBatch(dataset, chunk);
    const auto probs = model.PredictCtr(batch);
    scores.insert(scores.end(), probs.begin(), probs.end());
    for (int64_t r = 0; r < batch.labels.rows(); ++r) {
      labels.push_back(batch.labels.at(r, 0));
    }
  }
  return metrics::Auc(scores, labels);
}

/// Interactions in sparse form, for the linear-era baselines (LR, FM).
struct SparseDatasetView {
  std::vector<SparseRow> rows;
  std::vector<float> labels;
};

/// Encodes the given interaction indices into sparse rows.
inline SparseDatasetView EncodeInteractions(
    const data::TmallDataset& dataset, const std::vector<int64_t>& indices,
    const SparseCtrEncoder& encoder, int batch_size = 4096) {
  SparseDatasetView view;
  view.rows.reserve(indices.size());
  view.labels.reserve(indices.size());
  for (const auto& chunk : core::MakeBatches(indices, batch_size)) {
    const data::CtrBatch batch = MakeCtrBatch(dataset, chunk);
    auto encoded = encoder.Encode(batch);
    for (auto& row : encoded) view.rows.push_back(std::move(row));
    for (int64_t r = 0; r < batch.labels.rows(); ++r) {
      view.labels.push_back(batch.labels.at(r, 0));
    }
  }
  return view;
}

}  // namespace atnn::baselines

#endif  // ATNN_BASELINES_BASELINE_TRAINER_H_
