#ifndef ATNN_BASELINES_LSPLM_H_
#define ATNN_BASELINES_LSPLM_H_

#include <cstdint>
#include <vector>

#include "baselines/sparse_encoder.h"
#include "common/rng.h"

namespace atnn::baselines {

/// LS-PLM hyper-parameters (Gai et al., "Learning Piece-wise Linear Models
/// from Large Scale Data for Ad Click Prediction").
struct LsplmConfig {
  /// Number of linear pieces (regions), the paper's m.
  int num_pieces = 8;
  double learning_rate = 0.05;
  double l2 = 1e-5;
  double init_stddev = 0.05;
  uint64_t seed = 53;
};

/// Large Scale Piece-wise Linear Model — Alibaba's own pre-DNN production
/// CTR model, cited by the paper as a traditional approach (§II-B):
///   p(y=1|x) = sum_m softmax_m(u_m . x) * sigmoid(w_m . x)
/// A softmax gate partitions the feature space into soft regions, each
/// served by its own logistic model; trained end-to-end with Adagrad.
class LsplmModel {
 public:
  LsplmModel(int64_t dimension, const LsplmConfig& config = LsplmConfig());

  /// One Adagrad step on a single example (label in {0,1}).
  void Update(const SparseRow& row, float label);

  /// One pass over the data in the given order.
  void TrainPass(const std::vector<SparseRow>& rows,
                 const std::vector<float>& labels);

  double PredictProbability(const SparseRow& row) const;
  std::vector<double> PredictProbability(
      const std::vector<SparseRow>& rows) const;

  /// Softmax gate weights of one example (sums to 1); exposes how the
  /// pieces partition the space.
  std::vector<double> GateWeights(const SparseRow& row) const;

  int64_t dimension() const { return dimension_; }
  int num_pieces() const { return config_.num_pieces; }

 private:
  /// Gate logits and per-piece logistic probabilities for one row.
  void Forward(const SparseRow& row, std::vector<double>* gate,
               std::vector<double>* piece_prob) const;

  LsplmConfig config_;
  int64_t dimension_;
  // Row-major [num_pieces, dimension] + per-piece bias.
  std::vector<double> gate_weights_;
  std::vector<double> gate_bias_;
  std::vector<double> piece_weights_;
  std::vector<double> piece_bias_;
  // Adagrad accumulators, same layout.
  std::vector<double> gate_weights_accum_;
  std::vector<double> gate_bias_accum_;
  std::vector<double> piece_weights_accum_;
  std::vector<double> piece_bias_accum_;
};

}  // namespace atnn::baselines

#endif  // ATNN_BASELINES_LSPLM_H_
