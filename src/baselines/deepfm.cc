#include "baselines/deepfm.h"

#include "common/rng.h"
#include "nn/init.h"

namespace atnn::baselines {

DeepFmModel::DeepFmModel(const data::FeatureSchema& user_schema,
                         const data::FeatureSchema& item_profile_schema,
                         const data::FeatureSchema& item_stats_schema,
                         const DeepFmConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  auto add_field_tables = [this, &rng](const data::FeatureSchema& schema,
                                       const char* prefix) {
    for (size_t c = 0; c < schema.num_categorical(); ++c) {
      const auto& spec = schema.categorical_spec(c);
      first_order_tables_.push_back(std::make_unique<nn::Parameter>(
          std::string("deepfm.w1.") + prefix + "." + spec.name,
          nn::Tensor::Zeros(spec.vocab_size, 1)));
      embed_tables_.push_back(std::make_unique<nn::Parameter>(
          std::string("deepfm.emb.") + prefix + "." + spec.name,
          nn::NormalInit(spec.vocab_size, config_.embed_dim, 0.05f, &rng)));
    }
  };
  add_field_tables(user_schema, "user");
  num_user_fields_ = embed_tables_.size();
  add_field_tables(item_profile_schema, "item");

  num_dense_ = static_cast<int64_t>(user_schema.num_numeric() +
                                    item_profile_schema.num_numeric());
  if (config.use_item_stats) {
    num_dense_ += static_cast<int64_t>(item_stats_schema.num_numeric());
  }
  dense_linear_ = std::make_unique<nn::Parameter>(
      "deepfm.w1.dense", nn::Tensor::Zeros(num_dense_, 1));
  bias_ = std::make_unique<nn::Parameter>("deepfm.bias",
                                          nn::Tensor::Zeros(1, 1));

  const int64_t deep_input =
      static_cast<int64_t>(embed_tables_.size()) * config.embed_dim +
      num_dense_;
  std::vector<int64_t> dims = {deep_input};
  dims.insert(dims.end(), config.deep_dims.begin(), config.deep_dims.end());
  dims.push_back(1);
  deep_ = std::make_unique<nn::Mlp>("deepfm.deep", dims,
                                    nn::Activation::kRelu,
                                    nn::Activation::kIdentity, &rng);
}

std::vector<const std::vector<int64_t>*> DeepFmModel::FieldColumns(
    const data::CtrBatch& batch) const {
  std::vector<const std::vector<int64_t>*> columns;
  columns.reserve(embed_tables_.size());
  for (const auto& column : batch.user.categorical) {
    columns.push_back(&column);
  }
  for (const auto& column : batch.item_profile.categorical) {
    columns.push_back(&column);
  }
  ATNN_CHECK_EQ(columns.size(), embed_tables_.size());
  return columns;
}

nn::Var DeepFmModel::Logits(const data::CtrBatch& batch) const {
  const auto columns = FieldColumns(batch);

  // Shared field embeddings.
  std::vector<nn::Var> embeddings;
  embeddings.reserve(columns.size());
  for (size_t f = 0; f < columns.size(); ++f) {
    embeddings.push_back(
        nn::EmbeddingLookup(embed_tables_[f]->var(), *columns[f]));
  }

  // First-order term: per-value weights + dense linear part.
  nn::Var first = nn::EmbeddingLookup(first_order_tables_[0]->var(),
                                      *columns[0]);
  for (size_t f = 1; f < columns.size(); ++f) {
    first = nn::Add(first, nn::EmbeddingLookup(first_order_tables_[f]->var(),
                                               *columns[f]));
  }
  std::vector<nn::Var> dense_parts = {nn::Constant(batch.user.numeric),
                                      nn::Constant(
                                          batch.item_profile.numeric)};
  if (config_.use_item_stats) {
    dense_parts.push_back(nn::Constant(batch.item_stats.numeric));
  }
  nn::Var dense = nn::ConcatCols(dense_parts);
  first = nn::Add(first, nn::MatMul(dense, dense_linear_->var()));

  // FM second-order pooling over the shared embeddings:
  // 0.5 * (||sum_f e_f||^2 - sum_f ||e_f||^2) per row.
  nn::Var sum = embeddings[0];
  nn::Var sum_sq = nn::Mul(embeddings[0], embeddings[0]);
  for (size_t f = 1; f < embeddings.size(); ++f) {
    sum = nn::Add(sum, embeddings[f]);
    sum_sq = nn::Add(sum_sq, nn::Mul(embeddings[f], embeddings[f]));
  }
  nn::Var second = nn::Scale(
      nn::Sub(nn::RowwiseDot(sum, sum), nn::RowwiseSum(sum_sq)), 0.5f);

  // Deep component over the concatenated embeddings + dense slab.
  std::vector<nn::Var> deep_parts = embeddings;
  deep_parts.push_back(dense);
  nn::Var deep = deep_->Forward(nn::ConcatCols(deep_parts));

  return nn::AddBias(nn::Add(nn::Add(first, second), deep), bias_->var());
}

std::vector<double> DeepFmModel::PredictCtr(
    const data::CtrBatch& batch) const {
  nn::Var probs = nn::Sigmoid(Logits(batch));
  std::vector<double> result(static_cast<size_t>(probs.rows()));
  for (int64_t r = 0; r < probs.rows(); ++r) {
    result[static_cast<size_t>(r)] = probs.value().at(r, 0);
  }
  return result;
}

void DeepFmModel::CollectParameters(std::vector<nn::Parameter*>* out) {
  for (auto& table : first_order_tables_) out->push_back(table.get());
  for (auto& table : embed_tables_) out->push_back(table.get());
  out->push_back(dense_linear_.get());
  out->push_back(bias_.get());
  deep_->CollectParameters(out);
}

}  // namespace atnn::baselines
