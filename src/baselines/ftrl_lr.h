#ifndef ATNN_BASELINES_FTRL_LR_H_
#define ATNN_BASELINES_FTRL_LR_H_

#include <cstdint>
#include <vector>

#include "baselines/sparse_encoder.h"

namespace atnn::baselines {

/// FTRL-Proximal hyper-parameters (McMahan et al., KDD'13).
struct FtrlConfig {
  double alpha = 0.1;   // learning-rate scale
  double beta = 1.0;    // learning-rate smoothing
  double lambda1 = 0.5; // L1 — drives exact sparsity
  double lambda2 = 1.0; // L2
};

/// Logistic regression trained with the FTRL-Proximal per-coordinate
/// update — the production CTR workhorse the paper cites as the
/// traditional approach (reference [12]). L1 regularization produces
/// exactly-zero weights for unused / uninformative coordinates, which is
/// why the model serves cheaply at web scale.
class FtrlLogisticRegression {
 public:
  explicit FtrlLogisticRegression(int64_t dimension,
                                  const FtrlConfig& config = {});

  /// One online update on a single example. Label in {0, 1}.
  /// Returns the pre-update predicted probability (progressive validation).
  double Update(const SparseRow& row, float label);

  /// Runs Update over all rows once (one pass = one "epoch").
  void TrainPass(const std::vector<SparseRow>& rows,
                 const std::vector<float>& labels);

  double PredictProbability(const SparseRow& row) const;
  std::vector<double> PredictProbability(
      const std::vector<SparseRow>& rows) const;

  /// Current effective weight of a coordinate (0 when L1 has zeroed it).
  double Weight(int64_t index) const;

  /// Number of exactly-zero coordinates among those ever touched.
  int64_t CountZeroWeights() const;
  int64_t CountTouched() const;

  int64_t dimension() const { return static_cast<int64_t>(z_.size()); }
  const FtrlConfig& config() const { return config_; }

 private:
  FtrlConfig config_;
  std::vector<double> z_;  // FTRL dual accumulators
  std::vector<double> n_;  // squared-gradient accumulators
  std::vector<bool> touched_;
};

}  // namespace atnn::baselines

#endif  // ATNN_BASELINES_FTRL_LR_H_
