#include "baselines/factorization_machine.h"

#include <cmath>

#include "common/macros.h"

namespace atnn::baselines {

namespace {
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
constexpr double kAdagradEps = 1e-8;
}  // namespace

FactorizationMachine::FactorizationMachine(int64_t dimension,
                                           const FmConfig& config)
    : config_(config), dimension_(dimension) {
  ATNN_CHECK(dimension > 0);
  ATNN_CHECK(config.latent_dim > 0);
  linear_.assign(static_cast<size_t>(dimension), 0.0);
  linear_accum_.assign(static_cast<size_t>(dimension), 0.0);
  const auto factor_count =
      static_cast<size_t>(dimension) * static_cast<size_t>(config.latent_dim);
  factors_.resize(factor_count);
  factors_accum_.assign(factor_count, 0.0);
  Rng rng(config.seed);
  for (double& v : factors_) v = rng.Normal(0.0, config.init_stddev);
}

double FactorizationMachine::PredictLogit(const SparseRow& row) const {
  const int k = config_.latent_dim;
  double logit = bias_;
  // Linear term and the O(nnz * k) pairwise term via the sum-of-squares
  // identity.
  std::vector<double> sum(static_cast<size_t>(k), 0.0);
  double sum_sq_total = 0.0;
  for (size_t idx = 0; idx < row.indices.size(); ++idx) {
    const auto i = static_cast<size_t>(row.indices[idx]);
    const double x = row.values[idx];
    logit += linear_[i] * x;
    const double* v = &factors_[i * static_cast<size_t>(k)];
    for (int f = 0; f < k; ++f) {
      const double vx = v[f] * x;
      sum[static_cast<size_t>(f)] += vx;
      sum_sq_total += vx * vx;
    }
  }
  double sum_total = 0.0;
  for (int f = 0; f < k; ++f) {
    sum_total += sum[static_cast<size_t>(f)] * sum[static_cast<size_t>(f)];
  }
  return logit + 0.5 * (sum_total - sum_sq_total);
}

double FactorizationMachine::PredictProbability(const SparseRow& row) const {
  return Sigmoid(PredictLogit(row));
}

std::vector<double> FactorizationMachine::PredictProbability(
    const std::vector<SparseRow>& rows) const {
  std::vector<double> result;
  result.reserve(rows.size());
  for (const SparseRow& row : rows) {
    result.push_back(PredictProbability(row));
  }
  return result;
}

double FactorizationMachine::Update(const SparseRow& row, float label) {
  const int k = config_.latent_dim;
  // Forward pass, keeping the per-factor sums for the gradient.
  std::vector<double> sum(static_cast<size_t>(k), 0.0);
  double logit = bias_;
  double sum_sq_total = 0.0;
  for (size_t idx = 0; idx < row.indices.size(); ++idx) {
    const auto i = static_cast<size_t>(row.indices[idx]);
    const double x = row.values[idx];
    logit += linear_[i] * x;
    const double* v = &factors_[i * static_cast<size_t>(k)];
    for (int f = 0; f < k; ++f) {
      const double vx = v[f] * x;
      sum[static_cast<size_t>(f)] += vx;
      sum_sq_total += vx * vx;
    }
  }
  double sum_total = 0.0;
  for (int f = 0; f < k; ++f) {
    sum_total += sum[static_cast<size_t>(f)] * sum[static_cast<size_t>(f)];
  }
  logit += 0.5 * (sum_total - sum_sq_total);
  const double p = Sigmoid(logit);
  const double g = p - static_cast<double>(label);  // dLoss/dLogit

  auto adagrad = [this](double* weight, double* accum, double grad) {
    grad += config_.l2 * *weight;
    *accum += grad * grad;
    *weight -= config_.learning_rate * grad /
               (std::sqrt(*accum) + kAdagradEps);
  };

  adagrad(&bias_, &bias_accum_, g);
  for (size_t idx = 0; idx < row.indices.size(); ++idx) {
    const auto i = static_cast<size_t>(row.indices[idx]);
    const double x = row.values[idx];
    adagrad(&linear_[i], &linear_accum_[i], g * x);
    double* v = &factors_[i * static_cast<size_t>(k)];
    double* accum = &factors_accum_[i * static_cast<size_t>(k)];
    for (int f = 0; f < k; ++f) {
      // d logit / d v_if = x * (sum_f - v_if x).
      const double grad =
          g * x * (sum[static_cast<size_t>(f)] - v[f] * x);
      adagrad(&v[f], &accum[f], grad);
    }
  }
  return p;
}

void FactorizationMachine::TrainPass(const std::vector<SparseRow>& rows,
                                     const std::vector<float>& labels) {
  ATNN_CHECK_EQ(rows.size(), labels.size());
  for (size_t i = 0; i < rows.size(); ++i) Update(rows[i], labels[i]);
}

}  // namespace atnn::baselines
