#include "baselines/sparse_encoder.h"

namespace atnn::baselines {

SparseCtrEncoder::SparseCtrEncoder(
    const data::FeatureSchema& user_schema,
    const data::FeatureSchema& item_profile_schema,
    const data::FeatureSchema& item_stats_schema, bool use_stats)
    : use_stats_(use_stats) {
  auto append = [this](const data::FeatureSchema& schema,
                       BlockLayout* layout) {
    for (size_t c = 0; c < schema.num_categorical(); ++c) {
      layout->categorical_offsets.push_back(dimension_);
      dimension_ += schema.categorical_spec(c).vocab_size;
      ++row_nnz_;
    }
    for (size_t n = 0; n < schema.num_numeric(); ++n) {
      layout->numeric_offsets.push_back(dimension_);
      ++dimension_;
      ++row_nnz_;
    }
  };
  append(user_schema, &user_layout_);
  append(item_profile_schema, &item_layout_);
  if (use_stats_) append(item_stats_schema, &stats_layout_);
}

void SparseCtrEncoder::EncodeBlock(const data::BlockBatch& block,
                                   const BlockLayout& layout, int64_t row,
                                   SparseRow* out) {
  for (size_t c = 0; c < layout.categorical_offsets.size(); ++c) {
    const int64_t id = block.categorical[c][static_cast<size_t>(row)];
    out->indices.push_back(layout.categorical_offsets[c] + id);
    out->values.push_back(1.0f);
  }
  for (size_t n = 0; n < layout.numeric_offsets.size(); ++n) {
    out->indices.push_back(layout.numeric_offsets[n]);
    out->values.push_back(block.numeric.at(row, static_cast<int64_t>(n)));
  }
}

std::vector<SparseRow> SparseCtrEncoder::Encode(
    const data::CtrBatch& batch) const {
  const int64_t rows = batch.labels.rows();
  std::vector<SparseRow> result(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    SparseRow& row = result[static_cast<size_t>(r)];
    row.indices.reserve(static_cast<size_t>(row_nnz_));
    row.values.reserve(static_cast<size_t>(row_nnz_));
    EncodeBlock(batch.user, user_layout_, r, &row);
    EncodeBlock(batch.item_profile, item_layout_, r, &row);
    if (use_stats_) EncodeBlock(batch.item_stats, stats_layout_, r, &row);
  }
  return result;
}

}  // namespace atnn::baselines
