#ifndef ATNN_BASELINES_DEEPFM_H_
#define ATNN_BASELINES_DEEPFM_H_

#include <memory>
#include <vector>

#include "data/schema.h"
#include "data/tmall.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace atnn::baselines {

/// DeepFM hyper-parameters (Guo et al., IJCAI'17).
struct DeepFmConfig {
  /// Shared embedding width of every categorical field.
  int64_t embed_dim = 8;
  /// Hidden widths of the deep component.
  std::vector<int64_t> deep_dims = {64, 32};
  bool use_item_stats = true;
  uint64_t seed = 37;
};

/// DeepFM: an FM component and a deep component sharing one set of field
/// embeddings.
///   logit = bias + first_order + fm_second_order + deep(x)
/// where first_order sums per-value scalar weights, the second-order term
/// is 0.5 * (||sum_f e_f||^2 - sum_f ||e_f||^2) over the shared field
/// embeddings, and the deep component is an MLP over their concatenation
/// (plus dense features). Dense numerics enter the first-order term and
/// the MLP (the usual treatment; FM interactions are over fields).
class DeepFmModel : public nn::Module {
 public:
  DeepFmModel(const data::FeatureSchema& user_schema,
              const data::FeatureSchema& item_profile_schema,
              const data::FeatureSchema& item_stats_schema,
              const DeepFmConfig& config);

  /// CTR logits for a gathered batch: [n, 1].
  nn::Var Logits(const data::CtrBatch& batch) const;

  /// Click probabilities (no gradient).
  std::vector<double> PredictCtr(const data::CtrBatch& batch) const;

  void CollectParameters(std::vector<nn::Parameter*>* out) override;

  size_t num_fields() const { return embed_tables_.size(); }

 private:
  /// Collects per-field id columns of a batch in construction order
  /// (user fields then item-profile fields).
  std::vector<const std::vector<int64_t>*> FieldColumns(
      const data::CtrBatch& batch) const;

  DeepFmConfig config_;
  std::vector<std::unique_ptr<nn::Parameter>> first_order_tables_;  // [v,1]
  std::vector<std::unique_ptr<nn::Parameter>> embed_tables_;        // [v,k]
  std::unique_ptr<nn::Parameter> dense_linear_;  // [num_dense, 1]
  std::unique_ptr<nn::Parameter> bias_;          // [1, 1]
  std::unique_ptr<nn::Mlp> deep_;
  size_t num_user_fields_ = 0;
  int64_t num_dense_ = 0;
};

}  // namespace atnn::baselines

#endif  // ATNN_BASELINES_DEEPFM_H_
