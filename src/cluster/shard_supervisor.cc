#include "cluster/shard_supervisor.h"

#include <chrono>
#include <utility>

#include "common/macros.h"
#include "common/rng.h"

namespace atnn::cluster {

const char* ShardHealthToString(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kSuspect:
      return "suspect";
    case ShardHealth::kDead:
      return "dead";
    case ShardHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

Status ShardSupervisorConfig::Validate() const {
  if (probe_deadline_us < 1) {
    return Status::InvalidArgument("probe_deadline_us must be >= 1");
  }
  if (probe_period_ms < 1) {
    return Status::InvalidArgument("probe_period_ms must be >= 1");
  }
  if (consecutive_to_suspect < 1) {
    return Status::InvalidArgument("consecutive_to_suspect must be >= 1");
  }
  if (consecutive_to_dead <= consecutive_to_suspect) {
    return Status::InvalidArgument(
        "consecutive_to_dead must exceed consecutive_to_suspect: the "
        "suspect state must be reachable before dead");
  }
  if (probes_to_healthy < 1) {
    return Status::InvalidArgument("probes_to_healthy must be >= 1");
  }
  if (!(latency_ewma_alpha > 0.0) || latency_ewma_alpha > 1.0) {
    return Status::InvalidArgument("latency_ewma_alpha must be in (0, 1]");
  }
  return Status::OK();
}

ShardSupervisor::ShardSupervisor(ShardedRuntime* runtime,
                                 const ShardSupervisorConfig& config)
    : runtime_(runtime),
      config_(config),
      probes_(registry_.GetCounter("supervisor.probes")),
      probe_failures_(registry_.GetCounter("supervisor.probe_failures")),
      transitions_(registry_.GetCounter("supervisor.transitions")),
      rebuilds_(registry_.GetCounter("supervisor.rebuilds")),
      rebuild_failures_(registry_.GetCounter("supervisor.rebuild_failures")),
      healthy_shards_(registry_.GetGauge("supervisor.healthy_shards")),
      dead_shards_(registry_.GetGauge("supervisor.dead_shards")) {
  ATNN_CHECK(runtime_ != nullptr) << "ShardSupervisor needs a runtime";
  const Status valid = config_.Validate();
  ATNN_CHECK(valid.ok()) << "invalid ShardSupervisorConfig: "
                         << valid.ToString();
}

ShardSupervisor::~ShardSupervisor() { Stop(); }

void ShardSupervisor::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread(&ShardSupervisor::Run, this);
}

void ShardSupervisor::Stop() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  wake_.notify_all();
  thread_.join();
  thread_ = std::thread();
}

void ShardSupervisor::Run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Step();
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_.wait_for(lock,
                   std::chrono::milliseconds(config_.probe_period_ms),
                   [this] { return stop_.load(std::memory_order_relaxed); });
  }
}

size_t ShardSupervisor::Step() {
  std::lock_guard<std::mutex> lock(step_mutex_);
  // Resize-aware: re-read the shard count every round. Shards added by a
  // grow start healthy (their breakers are closed and their slices were
  // published before they became routable); state for removed shards is
  // dropped.
  const size_t n = runtime_->num_shards();
  shards_.resize(n);
  ++round_;
  for (size_t i = 0; i < n; ++i) {
    ProbeAndAdvance(i, &shards_[i]);
  }
  int64_t healthy = 0;
  int64_t dead = 0;
  for (const ShardState& state : shards_) {
    if (state.health == ShardHealth::kHealthy) ++healthy;
    if (state.health == ShardHealth::kDead) ++dead;
  }
  healthy_shards_.Set(static_cast<double>(healthy));
  dead_shards_.Set(static_cast<double>(dead));
  return n;
}

void ShardSupervisor::ProbeAndAdvance(size_t i, ShardState* state) {
  // Decorrelated per (round, shard): consecutive rounds probe different
  // rows of the slice, so a single poisoned row cannot condemn a shard by
  // being the only one ever sampled.
  const uint64_t salt =
      HashCombine(config_.seed, round_ * 0x100000001b3ULL + i);
  const ProbeReport report =
      runtime_->ProbeShard(i, salt, config_.probe_deadline_us);
  probes_.Increment();

  if (report.healthy()) {
    state->ewma_latency_us =
        state->ewma_latency_us == 0.0
            ? report.latency_us
            : (1.0 - config_.latency_ewma_alpha) * state->ewma_latency_us +
                  config_.latency_ewma_alpha * report.latency_us;
    state->consecutive_failures = 0;
    ++state->consecutive_healthy;
    switch (state->health) {
      case ShardHealth::kHealthy:
        break;
      case ShardHealth::kSuspect:
        // One good probe clears a suspicion — suspect exists to debounce,
        // not to punish.
        Transition(i, state, ShardHealth::kHealthy);
        break;
      case ShardHealth::kDead:
        // Something outside the supervisor revived it (operator rebuild,
        // auto_rebuild off): it still re-earns healthy through probation.
        Transition(i, state, ShardHealth::kRecovering);
        [[fallthrough]];
      case ShardHealth::kRecovering:
        if (state->consecutive_healthy >= config_.probes_to_healthy) {
          Transition(i, state, ShardHealth::kHealthy);
        }
        break;
    }
    return;
  }

  probe_failures_.Increment();
  state->consecutive_healthy = 0;
  ++state->consecutive_failures;
  switch (state->health) {
    case ShardHealth::kHealthy:
      if (state->consecutive_failures >= config_.consecutive_to_suspect) {
        Transition(i, state, ShardHealth::kSuspect);
      }
      break;
    case ShardHealth::kSuspect:
    case ShardHealth::kRecovering:
      if (state->consecutive_failures >= config_.consecutive_to_dead) {
        Transition(i, state, ShardHealth::kDead);
      }
      break;
    case ShardHealth::kDead:
      break;
  }
  if (state->health == ShardHealth::kDead && config_.auto_rebuild) {
    // First entry and every later round while still dead: a rebuild that
    // failed (snapshot store blip) is retried next round, paced by the
    // probe period on top of the per-call retry budget.
    Rebuild(i, state);
  }
}

void ShardSupervisor::Transition(size_t shard, ShardState* state,
                                 ShardHealth to) {
  (void)shard;
  if (state->health == to) return;
  state->health = to;
  transitions_.Increment();
}

void ShardSupervisor::Rebuild(size_t shard, ShardState* state) {
  RetryConfig retry = config_.rebuild_retry;
  // Per-shard jitter stream: a multi-shard outage must not hammer the
  // snapshot store with synchronized retries.
  retry.jitter_seed = config_.seed ^ static_cast<uint64_t>(shard);
  rebuilds_.Increment();
  const Status status = RetryWithBackoff(
      [this, shard] { return runtime_->RebuildShard(shard); }, retry);
  if (!status.ok()) {
    // Stays dead; the next round tries again.
    rebuild_failures_.Increment();
    return;
  }
  // The rebuilt shard serves nothing yet — RebuildShard force-opened its
  // breaker — so it is recovering, not healthy, until probes walk the
  // breaker closed and probes_to_healthy fresh answers land here.
  Transition(shard, state, ShardHealth::kRecovering);
  state->consecutive_failures = 0;
  state->consecutive_healthy = 0;
}

ShardHealth ShardSupervisor::health(size_t shard) const {
  std::lock_guard<std::mutex> lock(step_mutex_);
  if (shard >= shards_.size()) return ShardHealth::kHealthy;
  return shards_[shard].health;
}

double ShardSupervisor::probe_latency_us(size_t shard) const {
  std::lock_guard<std::mutex> lock(step_mutex_);
  if (shard >= shards_.size()) return 0.0;
  return shards_[shard].ewma_latency_us;
}

obs::MetricsSnapshot ShardSupervisor::Collect() const {
  return registry_.Collect();
}

}  // namespace atnn::cluster
