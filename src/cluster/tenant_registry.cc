#include "cluster/tenant_registry.h"

#include <algorithm>
#include <utility>

namespace atnn::cluster {

namespace {

bool IsTenantNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

template <typename T>
void AppendPrefixed(const std::string& prefix,
                    std::vector<std::pair<std::string, T>> from,
                    std::vector<std::pair<std::string, T>>* into) {
  for (auto& [name, value] : from) {
    into->emplace_back(prefix + name, std::move(value));
  }
}

}  // namespace

Status TenantConfig::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  for (const char c : name) {
    if (!IsTenantNameChar(c)) {
      return Status::InvalidArgument(
          "tenant name '" + name +
          "' may only contain [A-Za-z0-9_-]: it becomes a metrics "
          "namespace segment");
    }
  }
  return sharded.Validate();
}

StatusOr<ShardedRuntime*> TenantRegistry::AddTenant(
    const TenantConfig& config) {
  ATNN_RETURN_IF_ERROR(config.Validate());
  // Construct outside the lock: spinning up shard worker groups is slow
  // and AddTenant may race a serving thread's Get().
  auto runtime = std::make_unique<ShardedRuntime>(config.sharded);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      tenants_.emplace(config.name, std::move(runtime));
  if (!inserted) {
    return Status::AlreadyExists("tenant '" + config.name +
                                 "' is already registered");
  }
  return it->second.get();
}

ShardedRuntime* TenantRegistry::Get(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::vector<StatusOr<runtime::ScoreResult>> TenantRegistry::ScoreBatch(
    std::string_view tenant, const std::vector<int64_t>& item_rows) {
  ShardedRuntime* runtime = Get(tenant);
  if (runtime == nullptr) {
    std::vector<StatusOr<runtime::ScoreResult>> results;
    results.reserve(item_rows.size());
    for (size_t i = 0; i < item_rows.size(); ++i) {
      results.emplace_back(Status::NotFound(
          "tenant '" + std::string(tenant) + "' is not registered"));
    }
    return results;
  }
  return runtime->ScoreBatch(item_rows);
}

StatusOr<runtime::ScoreResult> TenantRegistry::Score(std::string_view tenant,
                                                     int64_t item_row) {
  ShardedRuntime* runtime = Get(tenant);
  if (runtime == nullptr) {
    return Status::NotFound("tenant '" + std::string(tenant) +
                            "' is not registered");
  }
  return runtime->Score(item_row);
}

std::vector<std::string> TenantRegistry::TenantNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, runtime] : tenants_) names.push_back(name);
  return names;  // map iteration order: already sorted
}

obs::MetricsSnapshot TenantRegistry::Collect() const {
  // Snapshot the pointers first: each tenant's Collect() walks every shard
  // registry, and holding the registration mutex across that would stall
  // Get() on the serving path. Tenants are never removed, so the pointers
  // stay valid after the lock drops.
  std::vector<std::pair<std::string, const ShardedRuntime*>> tenants;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tenants.reserve(tenants_.size());
    for (const auto& [name, runtime] : tenants_) {
      tenants.emplace_back(name, runtime.get());
    }
  }
  obs::MetricsSnapshot merged;
  for (const auto& [name, runtime] : tenants) {
    const std::string prefix = "tenant." + name + ".";
    obs::MetricsSnapshot snapshot = runtime->Collect();
    AppendPrefixed(prefix, std::move(snapshot.counters), &merged.counters);
    AppendPrefixed(prefix, std::move(snapshot.gauges), &merged.gauges);
    AppendPrefixed(prefix, std::move(snapshot.histograms),
                   &merged.histograms);
  }
  // Re-sort for the MetricsSnapshot determinism contract: map order on
  // tenant names does not survive prefixing (e.g. '-' sorts before the
  // '.' separator, so "tenant.a-b.x" < "tenant.a.x" while "a" < "a-b").
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(merged.counters.begin(), merged.counters.end(), by_name);
  std::sort(merged.gauges.begin(), merged.gauges.end(), by_name);
  std::sort(merged.histograms.begin(), merged.histograms.end(), by_name);
  return merged;
}

void TenantRegistry::Shutdown() {
  std::vector<ShardedRuntime*> runtimes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    runtimes.reserve(tenants_.size());
    for (const auto& [name, runtime] : tenants_) {
      runtimes.push_back(runtime.get());
    }
  }
  for (ShardedRuntime* runtime : runtimes) runtime->Shutdown();
}

}  // namespace atnn::cluster
