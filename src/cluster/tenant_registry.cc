#include "cluster/tenant_registry.h"

#include <algorithm>
#include <utility>

namespace atnn::cluster {

namespace {

bool IsTenantNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

}  // namespace

Status TenantConfig::Validate() const {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  for (const char c : name) {
    if (!IsTenantNameChar(c)) {
      return Status::InvalidArgument(
          "tenant name '" + name +
          "' may only contain [A-Za-z0-9_-]: it becomes a metrics "
          "namespace segment");
    }
  }
  if (admission_qps < 0.0) {
    // Negative means unlimited too (TokenBucket semantics), but reject it
    // at the config boundary: an operator typo must not silently disable
    // a quota.
    return Status::InvalidArgument(
        "admission_qps must be >= 0 (0 = unlimited)");
  }
  if (admission_burst < 0.0) {
    return Status::InvalidArgument(
        "admission_burst must be >= 0 (0 = one second of admission_qps)");
  }
  return sharded.Validate();
}

StatusOr<ShardedRuntime*> TenantRegistry::AddTenant(
    const TenantConfig& config) {
  ATNN_RETURN_IF_ERROR(config.Validate());
  // Construct outside the lock: spinning up shard worker groups is slow
  // and AddTenant may race a serving thread's Get().
  Tenant tenant;
  tenant.runtime = std::make_unique<ShardedRuntime>(config.sharded);
  tenant.bucket = std::make_unique<TokenBucket>(config.admission_qps,
                                                config.admission_burst);
  tenant.registry = std::make_unique<obs::MetricsRegistry>();
  tenant.admitted = &tenant.registry->GetCounter("admission.admitted");
  tenant.shed = &tenant.registry->GetCounter("admission.shed");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] =
      tenants_.emplace(config.name, std::move(tenant));
  if (!inserted) {
    return Status::AlreadyExists("tenant '" + config.name +
                                 "' is already registered");
  }
  return it->second.runtime.get();
}

const TenantRegistry::Tenant* TenantRegistry::Find(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = tenants_.find(name);
  // Tenants are never removed, so the entry pointer outlives the lock.
  return it == tenants_.end() ? nullptr : &it->second;
}

ShardedRuntime* TenantRegistry::Get(std::string_view name) const {
  const Tenant* tenant = Find(name);
  return tenant == nullptr ? nullptr : tenant->runtime.get();
}

std::vector<StatusOr<runtime::ScoreResult>> TenantRegistry::ScoreBatch(
    std::string_view tenant_name, const std::vector<int64_t>& item_rows) {
  const Tenant* tenant = Find(tenant_name);
  if (tenant == nullptr) {
    std::vector<StatusOr<runtime::ScoreResult>> results;
    results.reserve(item_rows.size());
    for (size_t i = 0; i < item_rows.size(); ++i) {
      results.emplace_back(Status::NotFound(
          "tenant '" + std::string(tenant_name) + "' is not registered"));
    }
    return results;
  }
  // Admission: the bucket grants the first `granted` rows; the over-quota
  // tail is shed to the tenant's degraded fallback, tier-tagged and
  // error-free, without entering any shard queue.
  const int64_t want = static_cast<int64_t>(item_rows.size());
  const int64_t granted = tenant->bucket->TryAcquire(want);
  tenant->admitted->Increment(granted);
  if (granted >= want) {
    return tenant->runtime->ScoreBatch(item_rows);
  }
  tenant->shed->Increment(want - granted);
  const std::vector<int64_t> head(item_rows.begin(),
                                  item_rows.begin() + granted);
  const std::vector<int64_t> tail(item_rows.begin() + granted,
                                  item_rows.end());
  std::vector<StatusOr<runtime::ScoreResult>> results =
      granted > 0 ? tenant->runtime->ScoreBatch(head)
                  : std::vector<StatusOr<runtime::ScoreResult>>();
  std::vector<StatusOr<runtime::ScoreResult>> shed =
      tenant->runtime->DegradedBatch(tail);
  results.reserve(item_rows.size());
  for (auto& result : shed) results.push_back(std::move(result));
  return results;
}

StatusOr<runtime::ScoreResult> TenantRegistry::Score(std::string_view tenant,
                                                     int64_t item_row) {
  ShardedRuntime* runtime = Get(tenant);
  if (runtime == nullptr) {
    return Status::NotFound("tenant '" + std::string(tenant) +
                            "' is not registered");
  }
  return runtime->Score(item_row);
}

std::vector<std::string> TenantRegistry::TenantNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, runtime] : tenants_) names.push_back(name);
  return names;  // map iteration order: already sorted
}

obs::MetricsSnapshot TenantRegistry::Collect() const {
  // Snapshot the pointers first: each tenant's Collect() walks every shard
  // registry, and holding the registration mutex across that would stall
  // Get() on the serving path. Tenants are never removed, so the pointers
  // stay valid after the lock drops.
  std::vector<std::pair<std::string, const Tenant*>> tenants;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tenants.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) {
      tenants.emplace_back(name, &tenant);
    }
  }
  obs::MetricsSnapshot merged;
  for (const auto& [name, tenant] : tenants) {
    const std::string prefix = "tenant." + name + ".";
    obs::MergeWithPrefix(prefix, tenant->runtime->Collect(), &merged);
    obs::MergeWithPrefix(prefix, tenant->registry->Collect(), &merged);
  }
  // Re-sort for the MetricsSnapshot determinism contract: map order on
  // tenant names does not survive prefixing (e.g. '-' sorts before the
  // '.' separator, so "tenant.a-b.x" < "tenant.a.x" while "a" < "a-b").
  obs::SortByName(&merged);
  return merged;
}

void TenantRegistry::Shutdown() {
  std::vector<ShardedRuntime*> runtimes;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    runtimes.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) {
      runtimes.push_back(tenant.runtime.get());
    }
  }
  for (ShardedRuntime* runtime : runtimes) runtime->Shutdown();
}

}  // namespace atnn::cluster
