#ifndef ATNN_CLUSTER_ADMISSION_H_
#define ATNN_CLUSTER_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/status.h"

namespace atnn::cluster {

/// Token-bucket rate limiter backing per-tenant admission quotas. Tokens
/// accrue continuously at `rate_per_s` up to `burst`; TryAcquire grants as
/// many of the requested tokens as the bucket holds (partial grants let a
/// batch split into an admitted head and a shed tail instead of failing
/// whole). rate_per_s <= 0 means unlimited — every acquire is granted in
/// full, with no clock reads.
///
/// Thread-safe. The *At variants take an explicit timestamp so tests drive
/// time deterministically; the plain variants read the steady clock.
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  /// `burst` <= 0 defaults the bucket depth to one second of rate (or 1,
  /// whichever is larger), so a default-constructed quota still admits
  /// request bursts up to its sustained rate.
  TokenBucket(double rate_per_s, double burst);

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  /// Grants min(want, floor(available tokens)) and deducts them.
  int64_t TryAcquire(int64_t want);
  int64_t TryAcquireAt(int64_t want, Clock::time_point now);

  bool unlimited() const { return rate_per_s_ <= 0.0; }
  double rate_per_s() const { return rate_per_s_; }
  double burst() const { return burst_; }

 private:
  const double rate_per_s_;
  const double burst_;

  std::mutex mutex_;
  double tokens_;
  bool primed_ = false;  // first acquire anchors the refill clock
  Clock::time_point last_refill_{};
};

/// Circuit-breaker state machine guarding one shard:
///
///   kClosed ──(EWMA error rate >= threshold over >= min_samples)──> kOpen
///   kOpen ──(probe arrives after cooldown_ms)──> kHalfOpen
///   kHalfOpen ──(probes_to_close consecutive probe successes)──> kClosed
///   kHalfOpen ──(any probe failure)──> kOpen (cooldown restarts)
///
/// While open or half-open, AllowRequest() is false: the serving path sheds
/// that shard's traffic to the front-end fallback instead of spending its
/// deadline budget on a sick shard. Only probe traffic (the supervisor's
/// synthetic requests) moves the breaker back toward closed — the
/// "half-open via probe traffic" admission contract.
enum class BreakerState { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateToString(BreakerState state);

struct CircuitBreakerConfig {
  /// EWMA error rate at which the breaker opens. In (0, 1].
  double error_rate_threshold = 0.5;
  /// EWMA smoothing: new_rate = (1-alpha)*old + alpha*outcome. In (0, 1].
  double ewma_alpha = 0.2;
  /// Results observed before the error rate is trusted enough to open —
  /// one early hiccup on a fresh breaker must not trip it.
  int64_t min_samples = 20;
  /// Open -> half-open is gated on this much wall time elapsing before a
  /// probe arrives.
  int64_t cooldown_ms = 500;
  /// Consecutive half-open probe successes required to close.
  int probes_to_close = 3;

  Status Validate() const;
};

class CircuitBreaker {
 public:
  using Clock = std::chrono::steady_clock;

  explicit CircuitBreaker(const CircuitBreakerConfig& config = {});

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// True iff closed. Lock-free (one relaxed load) — this is on the
  /// scatter path for every request.
  bool AllowRequest() const {
    return state_.load(std::memory_order_relaxed) ==
           static_cast<int>(BreakerState::kClosed);
  }

  /// Feeds one serving-path outcome into the EWMA; may open the breaker.
  void RecordResult(bool ok);
  void RecordResultAt(bool ok, Clock::time_point now);

  /// Feeds one probe outcome. Drives open -> half-open (after cooldown)
  /// and half-open -> closed/open; in the closed state a probe outcome is
  /// just another result.
  void RecordProbe(bool ok);
  void RecordProbeAt(bool ok, Clock::time_point now);

  /// Trips the breaker by fiat with the cooldown already elapsed: the next
  /// probe moves it straight to half-open. Used for freshly rebuilt shards
  /// — they must be re-admitted only after passing probes, but should not
  /// sit out a cooldown that exists to rate-limit flapping, not rebuilds.
  void ForceOpen();
  void ForceOpenAt(Clock::time_point now);

  BreakerState state() const {
    return static_cast<BreakerState>(state_.load(std::memory_order_relaxed));
  }
  double error_rate() const;
  const CircuitBreakerConfig& config() const { return config_; }

 private:
  void RecordResultLocked(bool ok, Clock::time_point now);
  void OpenLocked(Clock::time_point opened_at);

  const CircuitBreakerConfig config_;
  std::atomic<int> state_{static_cast<int>(BreakerState::kClosed)};

  mutable std::mutex mutex_;
  double ewma_error_rate_ = 0.0;
  int64_t samples_ = 0;
  int probe_successes_ = 0;
  Clock::time_point opened_at_{};
};

}  // namespace atnn::cluster

#endif  // ATNN_CLUSTER_ADMISSION_H_
