#ifndef ATNN_CLUSTER_SHARD_SUPERVISOR_H_
#define ATNN_CLUSTER_SHARD_SUPERVISOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/sharded_runtime.h"
#include "common/retry.h"
#include "common/status.h"
#include "obs/metrics_registry.h"

namespace atnn::cluster {

/// Health verdict the supervisor holds for one shard:
///
///   kHealthy ──(suspect_after consecutive failed probes)──> kSuspect
///   kSuspect ──(one healthy probe)──> kHealthy
///   kSuspect ──(dead_after total consecutive failures)──> kDead
///   kDead ──(auto-rebuild from the last published snapshot)──> kRecovering
///   kRecovering ──(probes_to_healthy consecutive healthy probes)──> kHealthy
///   kRecovering ──(dead_after consecutive failures again)──> kDead
///
/// A probe is healthy only when the shard answers inside the deadline AND
/// serves fresh (ProbeReport::healthy): a shard limping along on its
/// degraded fallback chain is suspect, not fine.
enum class ShardHealth { kHealthy = 0, kSuspect = 1, kDead = 2,
                         kRecovering = 3 };

const char* ShardHealthToString(ShardHealth health);

struct ShardSupervisorConfig {
  /// Wall-time budget per synthetic probe, microseconds.
  int64_t probe_deadline_us = 50'000;
  /// Background cadence of Run(): one probe round per period.
  int64_t probe_period_ms = 20;
  /// Consecutive probe failures before healthy -> suspect.
  int consecutive_to_suspect = 2;
  /// Consecutive probe failures before suspect -> dead (counted from the
  /// first failure, so it must exceed consecutive_to_suspect).
  int consecutive_to_dead = 4;
  /// Consecutive healthy probes before recovering -> healthy. Keep >= the
  /// breaker's probes_to_close or the shard goes "healthy" while its
  /// breaker still sheds.
  int probes_to_healthy = 3;
  /// EWMA smoothing for the per-shard probe latency estimate. In (0, 1].
  double latency_ewma_alpha = 0.2;
  /// Seed for probe row choice and rebuild-retry jitter; each shard's
  /// retry stream is seeded with `seed ^ shard` so a multi-shard outage
  /// does not retry in lockstep.
  uint64_t seed = 0x5eed;
  /// Rebuild dead shards automatically. Off, the supervisor only
  /// diagnoses (state still reaches kDead) — the atnn_serve operator path.
  bool auto_rebuild = true;
  /// Retry policy for one rebuild attempt burst (RebuildShard can fail
  /// transiently while a publish races the outage).
  RetryConfig rebuild_retry;

  Status Validate() const;
};

/// Health supervisor for a ShardedRuntime: probes every shard with seeded
/// synthetic requests, tracks per-shard EWMA probe latency and consecutive
/// failures, walks the health state machine above, and auto-rebuilds dead
/// shards from the last validated snapshot slice. A rebuilt shard is
/// re-admitted only after passing probes — RebuildShard force-opens the
/// shard's circuit breaker, and only the supervisor's continued probe
/// traffic can close it again.
///
/// Drive it either way:
///   - Start()/Stop(): a background thread runs one probe round per
///     probe_period_ms — the serving-binary mode.
///   - Step(): one synchronous probe round — the deterministic test mode
///     (also what the background thread calls).
///
/// Resize-aware: each round re-reads the runtime's shard count and grows
/// or truncates its health table, so a live ResizeShards needs no
/// supervisor coordination.
///
/// Thread-safe; Step() may race Start()'s thread harmlessly (rounds
/// serialize on an internal mutex).
class ShardSupervisor {
 public:
  /// `runtime` must outlive the supervisor. Aborts on invalid config.
  ShardSupervisor(ShardedRuntime* runtime,
                  const ShardSupervisorConfig& config = {});

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Stops the background thread (Stop()).
  ~ShardSupervisor();

  /// Launches the background probe loop. Idempotent.
  void Start();
  /// Joins the background probe loop. Idempotent; safe without Start().
  void Stop();

  /// One probe round over every shard: probe, update health, rebuild the
  /// dead (when auto_rebuild). Returns the number of shards probed.
  size_t Step();

  ShardHealth health(size_t shard) const;
  /// EWMA probe latency, microseconds; 0 until the first probe lands.
  double probe_latency_us(size_t shard) const;
  const ShardSupervisorConfig& config() const { return config_; }

  /// supervisor.* metrics: probes, probe_failures, transitions (one per
  /// state change), rebuilds, rebuild_failures, plus gauges
  /// supervisor.healthy_shards and supervisor.dead_shards.
  obs::MetricsSnapshot Collect() const;

 private:
  struct ShardState {
    ShardHealth health = ShardHealth::kHealthy;
    int consecutive_failures = 0;
    int consecutive_healthy = 0;
    double ewma_latency_us = 0.0;
  };

  void Run();
  /// Probes shard `i` and advances its state machine. Caller holds
  /// step_mutex_; `state` is the entry for shard `i`.
  void ProbeAndAdvance(size_t i, ShardState* state);
  void Transition(size_t shard, ShardState* state, ShardHealth to);
  void Rebuild(size_t shard, ShardState* state);

  ShardedRuntime* const runtime_;
  const ShardSupervisorConfig config_;

  obs::MetricsRegistry registry_;
  obs::Counter& probes_;
  obs::Counter& probe_failures_;
  obs::Counter& transitions_;
  obs::Counter& rebuilds_;
  obs::Counter& rebuild_failures_;
  obs::Gauge& healthy_shards_;
  obs::Gauge& dead_shards_;

  /// Serializes probe rounds (Step vs the background thread) and guards
  /// shards_ + round_.
  mutable std::mutex step_mutex_;
  std::vector<ShardState> shards_;
  uint64_t round_ = 0;

  std::mutex thread_mutex_;  // guards thread_ start/stop
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex wake_mutex_;
  std::condition_variable wake_;
};

}  // namespace atnn::cluster

#endif  // ATNN_CLUSTER_SHARD_SUPERVISOR_H_
