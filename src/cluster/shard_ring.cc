#include "cluster/shard_ring.h"

#include <algorithm>

#include "common/macros.h"
#include "common/rng.h"

namespace atnn::cluster {

namespace {

/// Domain tags keep vnode placement and key hashing in disjoint hash
/// families. Without them, shard 0's vnode v and key v share the exact
/// same input (the packed pair for shard 0 is just v), so every small key
/// lands precisely ON a shard-0 point and the whole low key range routes
/// to shard 0.
constexpr uint64_t kVnodeDomain = 0xa5a5c3d2766e0de5ULL;
constexpr uint64_t kKeyDomain = 0x1d8af06b97f2a3c1ULL;

/// Position of virtual node `vnode` of `shard`. Double-mixed so that
/// neighbouring (shard, vnode) pairs land far apart: a single SplitMix64
/// over the packed pair already decorrelates, the second pass folds the
/// seed and domain in without giving any shard a structured offset.
uint64_t VnodePosition(uint64_t seed, size_t shard, size_t vnode) {
  const uint64_t packed =
      (static_cast<uint64_t>(shard) << 32) | static_cast<uint64_t>(vnode);
  return SplitMix64(seed ^ kVnodeDomain ^ SplitMix64(packed));
}

uint64_t KeyPosition(uint64_t seed, int64_t key) {
  return SplitMix64(seed ^ kKeyDomain ^ SplitMix64(static_cast<uint64_t>(key)));
}

}  // namespace

Status ShardRingConfig::Validate() const {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (virtual_nodes_per_shard < 1) {
    return Status::InvalidArgument("virtual_nodes_per_shard must be >= 1");
  }
  return Status::OK();
}

StatusOr<ShardRing> ShardRing::Create(const ShardRingConfig& config) {
  ATNN_RETURN_IF_ERROR(config.Validate());
  return ShardRing(config);
}

ShardRing::ShardRing(const ShardRingConfig& config) : config_(config) {
  const Status valid = config.Validate();
  ATNN_CHECK(valid.ok()) << "invalid ShardRingConfig: " << valid.ToString()
                         << " (use ShardRing::Create for a Status)";
  points_.reserve(config.num_shards * config.virtual_nodes_per_shard);
  for (size_t shard = 0; shard < config.num_shards; ++shard) {
    for (size_t vnode = 0; vnode < config.virtual_nodes_per_shard; ++vnode) {
      points_.emplace_back(VnodePosition(config.seed, shard, vnode),
                           static_cast<uint32_t>(shard));
    }
  }
  // Sort by position; a (vanishingly unlikely) position collision resolves
  // by shard index so the mapping stays deterministic either way.
  std::sort(points_.begin(), points_.end());
}

size_t ShardRing::ShardFor(int64_t key) const {
  const uint64_t position = KeyPosition(config_.seed, key);
  // First point clockwise from the key's position, wrapping past the top.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(position, static_cast<uint32_t>(0)));
  return it == points_.end() ? points_.front().second : it->second;
}

std::vector<double> ShardRing::ArcFractions() const {
  // Point at position p owns the arc (previous point, p]; the first point
  // additionally owns the wraparound arc from the last point through 0.
  std::vector<double> fractions(config_.num_shards, 0.0);
  constexpr double kRing = 18446744073709551616.0;  // 2^64
  uint64_t previous = points_.back().first;
  for (const auto& [position, shard] : points_) {
    // Wrapping unsigned subtraction measures the arc even across the top.
    const uint64_t arc = position - previous;
    fractions[shard] += static_cast<double>(arc) / kRing;
    previous = position;
  }
  // All vnodes at one position (only possible with one point): it owns the
  // whole ring, but the wrap subtraction above yielded 0.
  if (points_.size() == 1) fractions[points_.front().second] = 1.0;
  return fractions;
}

}  // namespace atnn::cluster
