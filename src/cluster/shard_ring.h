#ifndef ATNN_CLUSTER_SHARD_RING_H_
#define ATNN_CLUSTER_SHARD_RING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"

namespace atnn::cluster {

/// Geometry of a seeded consistent-hash ring. Every placement decision is a
/// pure function of (seed, num_shards, virtual_nodes_per_shard): two
/// processes that agree on the config agree on every key's shard without
/// exchanging a byte — which is what lets a scatter/gather front-end, an
/// offline catalog partitioner, and a replay bench all route identically.
struct ShardRingConfig {
  size_t num_shards = 1;
  /// Ring points per shard. More virtual nodes flatten the shard-share
  /// distribution (relative imbalance shrinks like 1/sqrt(vnodes)) at the
  /// cost of a larger sorted point table; 128 keeps max/min share within a
  /// few percent for single-digit shard counts while lookups stay in L1.
  size_t virtual_nodes_per_shard = 128;
  /// Placement seed. Mixed (via SplitMix64) into every vnode position and
  /// every key hash; never fed to std::hash, whose layout is
  /// implementation-defined and would break cross-process determinism.
  uint64_t seed = 0x7ea75eed2021ULL;

  /// InvalidArgument unless num_shards >= 1 and virtual_nodes_per_shard
  /// >= 1.
  Status Validate() const;
};

/// Seeded consistent-hash ring: item id -> shard. Each shard owns
/// `virtual_nodes_per_shard` pseudo-random points on a uint64 ring; a key
/// hashes to a position and belongs to the shard owning the next point
/// clockwise. The two properties the serving layer leans on:
///
///   - Determinism: same config => bitwise-identical mapping in every
///     process (tested against golden assignments).
///   - Bounded remap: growing N -> N+1 shards moves only the keys whose
///     successor point is one of the new shard's — an expected fraction of
///     1/(N+1) — and never moves a key between two pre-existing shards.
///
/// Immutable after construction; lookups are lock-free O(log vnodes).
class ShardRing {
 public:
  /// Validates `config` and constructs; the Status-returning twin of the
  /// checked constructor.
  static StatusOr<ShardRing> Create(const ShardRingConfig& config);

  /// Aborts on an invalid config (use Create for a Status).
  explicit ShardRing(const ShardRingConfig& config);

  /// Owning shard of `key`, in [0, num_shards). Any int64 is accepted —
  /// the key is hashed, not interpreted as a row index.
  size_t ShardFor(int64_t key) const;

  size_t num_shards() const { return config_.num_shards; }
  const ShardRingConfig& config() const { return config_; }

  /// Fraction of the ring's circumference owned by each shard (sums to 1).
  /// This is the exact expected share of a uniformly hashed key stream —
  /// the reference distribution the uniformity test chi-squares observed
  /// counts against, separating hash quality from vnode-placement
  /// variance.
  std::vector<double> ArcFractions() const;

 private:
  ShardRingConfig config_;
  /// (position, shard), sorted by position; ties broken by shard for
  /// determinism.
  std::vector<std::pair<uint64_t, uint32_t>> points_;
};

}  // namespace atnn::cluster

#endif  // ATNN_CLUSTER_SHARD_RING_H_
