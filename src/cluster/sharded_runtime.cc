#include "cluster/sharded_runtime.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <utility>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "data/schema.h"
#include "runtime/plan_compiler.h"

namespace atnn::cluster {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

// Probes without an explicit budget still need a bound, or a hung shard
// would hang the prober.
constexpr int64_t kDefaultProbeDeadlineUs = 50'000;

/// Cluster-level plan sharing: compile the generator forward ONCE against
/// the full snapshot and let every shard slice carry the same plan (the
/// plan closes over the model, not the item table, so it is slice
/// independent). Shard runtimes see plan != nullptr and skip their own
/// Publish-time compile — N shards, one trace+compile. Failures leave the
/// snapshot on the tape; each shard then counts its own compile fallback.
void AttachSharedPlan(const runtime::RuntimeConfig& shard_config,
                      runtime::ServingSnapshot* snapshot) {
  if (shard_config.compile_mode == nn::ir::CompileMode::kOff) return;
  if (snapshot->plan != nullptr || snapshot->model == nullptr) return;
  if (shard_config.compile_mode == nn::ir::CompileMode::kAuto &&
      snapshot->quantized != nullptr) {
    return;
  }
  auto plan = runtime::CompileSnapshotPlan(
      *snapshot, static_cast<int64_t>(shard_config.batcher.max_batch_size));
  if (plan.ok()) snapshot->plan = std::move(plan).value();
}

}  // namespace

Status ShardedRuntimeConfig::Validate() const {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  ShardRingConfig ring_config = ring;
  ring_config.num_shards = num_shards;
  ATNN_RETURN_IF_ERROR(ring_config.Validate());
  ATNN_RETURN_IF_ERROR(shard.Validate());
  if (default_deadline_us < 0) {
    return Status::InvalidArgument("default_deadline_us must be >= 0");
  }
  if (!(fanout_budget_fraction > 0.0) || fanout_budget_fraction > 1.0) {
    return Status::InvalidArgument(
        "fanout_budget_fraction must be in (0, 1]: the scatter leg needs a "
        "nonzero slice of the budget and cannot exceed the whole");
  }
  ATNN_RETURN_IF_ERROR(breaker.Validate());
  return Status::OK();
}

StatusOr<std::unique_ptr<ShardedRuntime>> ShardedRuntime::Create(
    const ShardedRuntimeConfig& config) {
  ATNN_RETURN_IF_ERROR(config.Validate());
  return std::make_unique<ShardedRuntime>(config);
}

ShardedRuntime::ShardedRuntime(const ShardedRuntimeConfig& config)
    : config_([&config] {
        ShardedRuntimeConfig fixed = config;
        fixed.ring.num_shards = config.num_shards;
        return fixed;
      }()),
      requests_(frontend_.GetCounter("gather.requests")),
      shard_errors_(frontend_.GetCounter("gather.shard_errors")),
      gather_timeouts_(frontend_.GetCounter("gather.timeouts")),
      frontend_degraded_(frontend_.GetCounter("gather.degraded")),
      breaker_shed_(frontend_.GetCounter("gather.breaker_shed")),
      probes_(frontend_.GetCounter("gather.probes")),
      probe_failures_(frontend_.GetCounter("gather.probe_failures")),
      resizes_(frontend_.GetCounter("gather.resizes")),
      rebuilds_(frontend_.GetCounter("gather.rebuilds")),
      epoch_gauge_(frontend_.GetGauge("gather.epoch")),
      fanout_us_(frontend_.GetHistogram("gather.fanout_us")),
      merge_us_(frontend_.GetHistogram("gather.merge_us")) {
  const Status valid = config_.Validate();
  ATNN_CHECK(valid.ok()) << "invalid ShardedRuntimeConfig: "
                         << valid.ToString()
                         << " (use ShardedRuntime::Create for a Status)";
  auto epoch = std::make_shared<Epoch>(ShardRing(config_.ring));
  epoch->shards.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    epoch->shards.push_back(
        ShardSlot{MakeShardRuntime(),
                  std::make_shared<CircuitBreaker>(config_.breaker)});
  }
  epoch_ = std::move(epoch);
  epoch_gauge_.Set(1.0);
}

ShardedRuntime::~ShardedRuntime() { Shutdown(); }

std::shared_ptr<const ShardedRuntime::Epoch> ShardedRuntime::CurrentEpoch()
    const {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  return epoch_;
}

void ShardedRuntime::SwapEpochAndDrain(std::shared_ptr<const Epoch> epoch) {
  epoch_gauge_.Set(static_cast<double>(epoch->id));
  std::shared_ptr<const Epoch> old;
  {
    std::lock_guard<std::mutex> lock(epoch_mutex_);
    old = std::move(epoch_);
    epoch_ = std::move(epoch);
  }
  // Drain: every in-flight request took one reference on the old epoch at
  // scatter time and holds it through its gather, so once we are the last
  // owner no request can still be routing with the old table or talking to
  // a runtime absent from the new epoch. Gather waits are deadline-bounded,
  // which bounds this loop too.
  while (old.use_count() > 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

std::shared_ptr<runtime::InferenceRuntime> ShardedRuntime::MakeShardRuntime()
    const {
  runtime::RuntimeConfig shard_config = config_.shard;
  shard_config.prior = nullptr;  // installed per shard at publish time
  return std::make_shared<runtime::InferenceRuntime>(shard_config);
}

StatusOr<uint64_t> ShardedRuntime::PublishSlice(
    const runtime::ServingSnapshot& full, const std::vector<int64_t>& members,
    size_t shard_index, runtime::InferenceRuntime* target) {
  runtime::ServingSnapshot slice = full;
  slice.item_profiles = std::make_shared<const data::EntityTable>(
      data::SliceRows(*full.item_profiles, members));
  slice.tag = full.tag + "/shard" + std::to_string(shard_index);
  uint64_t version = 0;
  ATNN_ASSIGN_OR_RETURN(version, target->Publish(std::move(slice)));

  if (config_.prior != nullptr) {
    // Shards score by local row, so their tier-2 prior must be re-keyed
    // from the global index.
    auto local_prior = std::make_shared<serving::PopularityIndex>();
    for (size_t local = 0; local < members.size(); ++local) {
      const auto score = config_.prior->Score(members[local]);
      if (score.ok()) {
        local_prior->Upsert(static_cast<int64_t>(local), score.value());
      }
    }
    target->SetPrior(std::move(local_prior));
  }
  return version;
}

StatusOr<uint64_t> ShardedRuntime::PublishSharded(
    const runtime::ServingSnapshot& full) {
  // One up-front validation over the whole snapshot: a corrupt model is
  // rejected before any shard swaps, so a failed publish is atomic in the
  // common case (per-shard rejections below only fire under injected
  // faults).
  ATNN_RETURN_IF_ERROR(runtime::ValidateServingSnapshot(full));
  // Compile the execution plan once for the whole cluster; every slice
  // below shares it by reference (see AttachSharedPlan).
  runtime::ServingSnapshot shared = full;
  AttachSharedPlan(config_.shard, &shared);
  const int64_t num_rows = shared.item_profiles->num_rows();

  std::lock_guard<std::mutex> admin(admin_mutex_);
  std::shared_ptr<const Epoch> current = CurrentEpoch();

  // Compact routing under the current ring: each shard's slice is its
  // owned rows in global-row order.
  auto routing = std::make_shared<RoutingTable>();
  routing->shard_of_row.resize(static_cast<size_t>(num_rows));
  routing->local_of_row.resize(static_cast<size_t>(num_rows));
  routing->rows_of_shard.resize(current->shards.size());
  for (int64_t row = 0; row < num_rows; ++row) {
    const size_t shard = current->ring.ShardFor(row);
    auto& members = routing->rows_of_shard[shard];
    routing->shard_of_row[static_cast<size_t>(row)] =
        static_cast<uint32_t>(shard);
    routing->local_of_row[static_cast<size_t>(row)] =
        static_cast<int64_t>(members.size());
    members.push_back(row);
  }

  const bool same_mapping =
      current->routing != nullptr &&
      current->routing->rows_of_shard == routing->rows_of_shard;

  uint64_t version = 0;
  if (current->routing == nullptr || same_mapping) {
    // First publish, or a republish that keeps every row's (shard, local)
    // assignment: slices swap in place inside each runtime, all shards
    // advance in lockstep, and no epoch swap is needed beyond installing
    // the routing table the first time around.
    for (size_t i = 0; i < current->shards.size(); ++i) {
      ATNN_ASSIGN_OR_RETURN(
          version, PublishSlice(shared, routing->rows_of_shard[i], i,
                                current->shards[i].runtime.get()));
    }
    if (!same_mapping) {
      auto next = std::make_shared<Epoch>(*current);
      next->routing = std::move(routing);
      current.reset();  // the drain waits for our reference too
      SwapEpochAndDrain(std::move(next));
    }
  } else {
    // The row->(shard, local) mapping changed — e.g. the first publish
    // after a grow-resize compacts the slices, or the catalog shrank.
    // In-flight requests hold local indices minted for the OLD slices, so
    // every shard whose member list changed is republished onto a fresh
    // runtime instance behind an epoch swap; the old instances keep
    // serving the in-flight requests until the drain completes.
    auto next = std::make_shared<Epoch>(*current);
    next->id = current->id + 1;
    std::vector<std::shared_ptr<runtime::InferenceRuntime>> replaced;
    for (size_t i = 0; i < current->shards.size(); ++i) {
      const bool changed = current->routing->rows_of_shard[i] !=
                           routing->rows_of_shard[i];
      runtime::InferenceRuntime* target = nullptr;
      if (changed) {
        auto fresh = MakeShardRuntime();
        target = fresh.get();
        replaced.push_back(next->shards[i].runtime);
        next->shards[i].runtime = std::move(fresh);
      } else {
        target = next->shards[i].runtime.get();
      }
      uint64_t shard_version = 0;
      ATNN_ASSIGN_OR_RETURN(
          shard_version,
          PublishSlice(shared, routing->rows_of_shard[i], i, target));
      // Fresh instances restart their version counter at 1 while kept
      // shards keep counting; the front-end reports the highest.
      version = std::max(version, shard_version);
    }
    next->routing = std::move(routing);
    current.reset();  // the drain waits for our reference too
    SwapEpochAndDrain(std::move(next));
    for (auto& old_runtime : replaced) {
      old_runtime->Shutdown();
      retired_.push_back(std::move(old_runtime));
    }
  }

  // Rebuild/resize re-slice from this snapshot; keeping the plan attached
  // means a shard rebuild never re-traces either.
  last_full_ = std::move(shared);
  published_version_.store(version, std::memory_order_relaxed);
  return version;
}

StatusOr<ResizeReport> ShardedRuntime::ResizeShards(size_t new_num_shards) {
  if (new_num_shards < 1) {
    return Status::InvalidArgument("new_num_shards must be >= 1");
  }
  std::lock_guard<std::mutex> admin(admin_mutex_);
  std::shared_ptr<const Epoch> current = CurrentEpoch();
  if (current->routing == nullptr || !last_full_.has_value()) {
    return Status::FailedPrecondition(
        "ResizeShards needs a published catalog to re-slice; call "
        "PublishSharded() first");
  }
  const size_t old_n = current->shards.size();
  ResizeReport report;
  report.from_shards = old_n;
  report.to_shards = new_num_shards;
  report.total_rows =
      static_cast<int64_t>(current->routing->shard_of_row.size());
  if (new_num_shards == old_n) {
    report.epoch = current->id;
    return report;
  }
  const bool growing = new_num_shards > old_n;

  ShardRingConfig ring_config = config_.ring;
  ring_config.num_shards = new_num_shards;
  ATNN_RETURN_IF_ERROR(ring_config.Validate());
  ShardRing new_ring(ring_config);

  // Prefix-stable routing: a row that stays on its shard keeps its OLD
  // local index, so requests in flight across the swap keep resolving
  // against the slice they were routed for. Moved rows either land on a
  // brand-new shard (grow: fresh compact slice) or are APPENDED to a
  // survivor's existing slice (shrink: old locals stay a valid prefix).
  auto routing = std::make_shared<RoutingTable>();
  const size_t num_rows = current->routing->shard_of_row.size();
  routing->shard_of_row.resize(num_rows);
  routing->local_of_row.resize(num_rows);
  routing->rows_of_shard.resize(new_num_shards);
  // Survivors start from their old slice layout verbatim — including rows
  // that route away from them after the resize. A stale slice row is
  // harmless (nothing routes to it); dropping it would renumber the slice
  // and break every in-flight local index.
  const size_t surviving = std::min(old_n, new_num_shards);
  for (size_t s = 0; s < surviving; ++s) {
    routing->rows_of_shard[s] = current->routing->rows_of_shard[s];
  }
  // gained[s]: rows newly routed to surviving shard s (appended below);
  // only nonempty when shrinking (or under a ring bound violation).
  std::vector<std::vector<int64_t>> gained(new_num_shards);
  for (size_t row = 0; row < num_rows; ++row) {
    const size_t old_shard = current->routing->shard_of_row[row];
    const size_t new_shard = new_ring.ShardFor(static_cast<int64_t>(row));
    if (new_shard == old_shard) {
      routing->shard_of_row[row] = static_cast<uint32_t>(old_shard);
      routing->local_of_row[row] = current->routing->local_of_row[row];
      continue;
    }
    ++report.moved_rows;
    // The ring's bounded-remap guarantee, checked over the real catalog:
    // on grow a row may only move TO an added shard, on shrink only FROM
    // a removed shard.
    if (growing ? new_shard < old_n : old_shard < new_num_shards) {
      report.moved_only_within_bound = false;
    }
    routing->shard_of_row[row] = static_cast<uint32_t>(new_shard);
    if (new_shard >= old_n) {
      // Added shard: compact fresh slice.
      auto& members = routing->rows_of_shard[new_shard];
      routing->local_of_row[row] = static_cast<int64_t>(members.size());
      members.push_back(static_cast<int64_t>(row));
    } else {
      // Survivor gains a row: appended past its old slice prefix.
      auto& members = routing->rows_of_shard[new_shard];
      routing->local_of_row[row] = static_cast<int64_t>(members.size());
      members.push_back(static_cast<int64_t>(row));
      gained[new_shard].push_back(static_cast<int64_t>(row));
    }
  }

  auto next = std::make_shared<Epoch>(new_ring);
  next->id = current->id + 1;
  next->shards.reserve(new_num_shards);
  for (size_t s = 0; s < surviving; ++s) {
    next->shards.push_back(current->shards[s]);
  }
  for (size_t s = old_n; s < new_num_shards; ++s) {
    next->shards.push_back(
        ShardSlot{MakeShardRuntime(),
                  std::make_shared<CircuitBreaker>(config_.breaker)});
  }

  // Publish every new or extended slice BEFORE the routing swap: the first
  // request routed by the new table must find its rows already serving.
  for (size_t s = 0; s < new_num_shards; ++s) {
    const bool is_new = s >= old_n;
    if (!is_new && gained[s].empty()) continue;  // slice untouched
    ATNN_RETURN_IF_ERROR(PublishSlice(*last_full_,
                                      routing->rows_of_shard[s], s,
                                      next->shards[s].runtime.get())
                             .status());
  }

  next->routing = std::move(routing);
  report.epoch = next->id;
  std::vector<std::shared_ptr<runtime::InferenceRuntime>> removed;
  for (size_t s = new_num_shards; s < old_n; ++s) {
    removed.push_back(current->shards[s].runtime);
  }
  current.reset();  // the drain waits for our reference too
  SwapEpochAndDrain(std::move(next));

  // Removed shards stopped receiving traffic at the swap and their last
  // in-flight requests completed during the drain: now they can die.
  for (auto& runtime : removed) {
    runtime->Shutdown();
    retired_.push_back(std::move(runtime));
  }

  resizes_.Increment();
  return report;
}

Status ShardedRuntime::RebuildShard(size_t shard) {
  std::lock_guard<std::mutex> admin(admin_mutex_);
  std::shared_ptr<const Epoch> current = CurrentEpoch();
  if (shard >= current->shards.size()) {
    return Status::InvalidArgument("shard index out of range");
  }
  if (current->routing == nullptr || !last_full_.has_value()) {
    return Status::FailedPrecondition(
        "RebuildShard needs a published catalog to re-slice; call "
        "PublishSharded() first");
  }

  auto fresh = MakeShardRuntime();
  ATNN_RETURN_IF_ERROR(PublishSlice(*last_full_,
                                    current->routing->rows_of_shard[shard],
                                    shard, fresh.get())
                           .status());

  // Trip the breaker BEFORE the rebuilt runtime becomes routable: the
  // shard re-enters service only after probes walk half-open -> closed,
  // never by the swap alone.
  current->shards[shard].breaker->ForceOpen();

  auto next = std::make_shared<Epoch>(*current);
  next->id = current->id + 1;
  next->shards[shard].runtime = std::move(fresh);
  auto replaced = current->shards[shard].runtime;
  current.reset();  // the drain waits for our reference too
  SwapEpochAndDrain(std::move(next));

  replaced->Shutdown();
  retired_.push_back(std::move(replaced));
  rebuilds_.Increment();
  return Status::OK();
}

ProbeReport ShardedRuntime::ProbeShard(size_t shard, uint64_t salt,
                                       int64_t deadline_us) {
  ProbeReport report;
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  if (shard >= epoch->shards.size()) {
    report.status = Status::InvalidArgument("shard index out of range");
    return report;
  }
  probes_.Increment();
  if (epoch->routing == nullptr ||
      epoch->routing->rows_of_shard[shard].empty()) {
    // Nothing published to this shard: vacuously healthy, and there is no
    // row to probe with anyway. Does not feed the breaker.
    report.status = Status::OK();
    return report;
  }
  const size_t slice_rows = epoch->routing->rows_of_shard[shard].size();
  // Deterministic row choice, fanned across the slice by the salt so a
  // probing supervisor exercises different rows each round.
  const int64_t local =
      static_cast<int64_t>(SplitMix64(salt) % slice_rows);
  const int64_t budget =
      deadline_us > 0 ? deadline_us : kDefaultProbeDeadlineUs;

  const Clock::time_point start = Clock::now();
  StatusOr<runtime::ScoreResult> result =
      epoch->shards[shard].runtime->Probe(local, budget);
  report.latency_us = MicrosSince(start);
  report.status = result.status();
  if (result.ok()) report.tier = result.value().tier;

  // Probe traffic drives the breaker: failures (and degraded-only
  // answers) push toward open, fresh answers walk half-open -> closed.
  epoch->shards[shard].breaker->RecordProbe(report.healthy());
  if (!report.healthy()) probe_failures_.Increment();
  return report;
}

runtime::ScoreResult ShardedRuntime::FrontendDegraded(int64_t global_row) {
  frontend_degraded_.Increment();
  runtime::ScoreResult result;
  result.snapshot_version =
      published_version_.load(std::memory_order_relaxed);
  if (config_.prior != nullptr) {
    const auto prior_score = config_.prior->Score(global_row);
    if (prior_score.ok()) {
      result.score = prior_score.value();
      result.tier = runtime::ServingTier::kPrior;
      return result;
    }
  }
  // No prior coverage: the sigmoid midpoint, the same answer of last
  // resort a single runtime gives before any fresh score exists.
  result.score = 0.5;
  result.tier = runtime::ServingTier::kGlobalMean;
  return result;
}

std::vector<StatusOr<runtime::ScoreResult>> ShardedRuntime::ScoreBatch(
    const std::vector<int64_t>& item_rows) {
  return ScoreBatch(item_rows, config_.default_deadline_us);
}

std::vector<StatusOr<runtime::ScoreResult>> ShardedRuntime::ScoreBatch(
    const std::vector<int64_t>& item_rows, int64_t deadline_us) {
  std::vector<StatusOr<runtime::ScoreResult>> results;
  results.reserve(item_rows.size());
  // This reference is the drain token: admin operations wait for it before
  // shutting down any runtime this batch might be talking to.
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  if (epoch->routing == nullptr) {
    for (size_t i = 0; i < item_rows.size(); ++i) {
      results.emplace_back(Status::FailedPrecondition(
          "no sharded snapshot published; call PublishSharded() first"));
    }
    return results;
  }
  const RoutingTable& table = *epoch->routing;
  requests_.Increment(static_cast<int64_t>(item_rows.size()));

  const Clock::time_point start = Clock::now();
  const Clock::time_point overall_deadline =
      deadline_us > 0 ? start + std::chrono::microseconds(deadline_us)
                      : Clock::time_point::max();
  // Deadline split: the scatter leg hands every shard request this budget;
  // whatever the budget leaves after fan-out bounds the merge waits below.
  const int64_t fanout_deadline_us =
      deadline_us > 0
          ? std::max<int64_t>(
                1, static_cast<int64_t>(
                       static_cast<double>(deadline_us) *
                       config_.fanout_budget_fraction))
          : 0;

  // --- scatter ---
  const int64_t num_rows = static_cast<int64_t>(table.shard_of_row.size());
  const size_t num_shards = epoch->shards.size();
  std::vector<std::optional<std::future<StatusOr<runtime::ScoreResult>>>>
      futures(item_rows.size());
  std::vector<uint32_t> owner(item_rows.size(), 0);
  // Route first, then enqueue each shard's rows as one contiguous burst
  // closed by a FlushHint. Interleaving enqueues row-by-row instead would
  // hold every shard's batch window open for the entire scatter leg (each
  // queue fills as a trickle), and the hash split almost never aligns with
  // max_batch_size — the tail of every sub-batch would then ride out the
  // full coalescing window before the gather could complete.
  std::vector<std::vector<std::pair<size_t, int64_t>>> bursts(
      num_shards);  // shard -> (result index, local row)
  for (size_t i = 0; i < item_rows.size(); ++i) {
    const int64_t row = item_rows[i];
    if (row < 0 || row >= num_rows) {
      results.emplace_back(Status::InvalidArgument(
          "item row " + std::to_string(row) + " outside catalog [0, " +
          std::to_string(num_rows) + ")"));
      continue;
    }
    const size_t shard = table.shard_of_row[static_cast<size_t>(row)];
    owner[i] = static_cast<uint32_t>(shard);
    bursts[shard].emplace_back(i,
                               table.local_of_row[static_cast<size_t>(row)]);
    results.emplace_back(runtime::ScoreResult{});  // merged below
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (bursts[s].empty()) continue;
    if (!epoch->shards[s].breaker->AllowRequest()) {
      // Open/half-open breaker: shed the whole burst to the front-end
      // fallback before spending any deadline budget on a sick shard.
      // Only probe traffic can re-admit it.
      breaker_shed_.Increment(static_cast<int64_t>(bursts[s].size()));
      for (const auto& [index, local] : bursts[s]) {
        (void)local;
        results[index] = FrontendDegraded(item_rows[index]);
      }
      continue;
    }
    for (const auto& [index, local] : bursts[s]) {
      futures[index] =
          epoch->shards[s].runtime->ScoreAsync(local, fanout_deadline_us);
    }
    epoch->shards[s].runtime->FlushHint();  // end of this shard's group
  }
  fanout_us_.Record(MicrosSince(start));

  // --- gather ---
  const Clock::time_point merge_start = Clock::now();
  for (size_t i = 0; i < item_rows.size(); ++i) {
    if (!futures[i].has_value()) continue;  // answered at scatter time
    auto& future = *futures[i];
    CircuitBreaker& breaker = *epoch->shards[owner[i]].breaker;
    if (overall_deadline != Clock::time_point::max() &&
        future.wait_until(overall_deadline) != std::future_status::ready) {
      // Straggler past the whole-request budget: abandon the future (the
      // shard will still resolve it harmlessly) and answer degraded now —
      // the merge leg must never hold the batch hostage to one shard.
      gather_timeouts_.Increment();
      breaker.RecordResult(false);
      results[i] = FrontendDegraded(item_rows[i]);
      continue;
    }
    StatusOr<runtime::ScoreResult> result = future.get();
    if (result.ok()) {
      // Degraded-tier answers still count as successes here: the shard is
      // alive and inside its budget, just not fresh — the supervisor's
      // probes, not the breaker, handle staleness.
      breaker.RecordResult(true);
      results[i] = std::move(result);
    } else {
      // A down shard (FailedPrecondition after ShutDownShard) or a shard
      // erroring with its fallback chain disabled: degrade at the
      // front-end instead of surfacing a partial-failure error.
      shard_errors_.Increment();
      breaker.RecordResult(false);
      results[i] = FrontendDegraded(item_rows[i]);
    }
  }
  merge_us_.Record(MicrosSince(merge_start));
  return results;
}

StatusOr<runtime::ScoreResult> ShardedRuntime::Score(int64_t item_row) {
  return std::move(ScoreBatch({item_row}).front());
}

std::vector<StatusOr<runtime::ScoreResult>> ShardedRuntime::DegradedBatch(
    const std::vector<int64_t>& item_rows) {
  std::vector<StatusOr<runtime::ScoreResult>> results;
  results.reserve(item_rows.size());
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  // Before the first publish there is no catalog to bound-check against;
  // a shed must not depend on serving state, so every row just gets the
  // fallback answer.
  const int64_t num_rows =
      epoch->routing == nullptr
          ? -1
          : static_cast<int64_t>(epoch->routing->shard_of_row.size());
  requests_.Increment(static_cast<int64_t>(item_rows.size()));
  for (const int64_t row : item_rows) {
    if (num_rows >= 0 && (row < 0 || row >= num_rows)) {
      results.emplace_back(Status::InvalidArgument(
          "item row " + std::to_string(row) + " outside catalog [0, " +
          std::to_string(num_rows) + ")"));
      continue;
    }
    results.emplace_back(FrontendDegraded(row));
  }
  return results;
}

void ShardedRuntime::ShutDownShard(size_t shard) {
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  ATNN_CHECK(shard < epoch->shards.size());
  epoch->shards[shard].runtime->Shutdown();
}

void ShardedRuntime::Shutdown() {
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  for (const auto& slot : epoch->shards) slot.runtime->Shutdown();
}

ShardRing ShardedRuntime::ring() const { return CurrentEpoch()->ring; }

runtime::InferenceRuntime& ShardedRuntime::shard(size_t i) {
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  ATNN_CHECK(i < epoch->shards.size());
  return *epoch->shards[i].runtime;
}

const runtime::InferenceRuntime& ShardedRuntime::shard(size_t i) const {
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  ATNN_CHECK(i < epoch->shards.size());
  return *epoch->shards[i].runtime;
}

CircuitBreaker& ShardedRuntime::breaker(size_t i) {
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  ATNN_CHECK(i < epoch->shards.size());
  return *epoch->shards[i].breaker;
}

obs::MetricsSnapshot ShardedRuntime::Collect() const {
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  obs::MetricsSnapshot merged = frontend_.Collect();
  for (size_t i = 0; i < epoch->shards.size(); ++i) {
    const std::string prefix = "shard" + std::to_string(i) + ".";
    obs::MergeWithPrefix(
        prefix, epoch->shards[i].runtime->metrics_registry().Collect(),
        &merged);
  }
  obs::SortByName(&merged);
  return merged;
}

}  // namespace atnn::cluster
