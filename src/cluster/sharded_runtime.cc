#include "cluster/sharded_runtime.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "data/schema.h"

namespace atnn::cluster {

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Sorts a collected family by name; Collect() concatenates per-shard
/// namespaces, which are not globally ordered once shard indices hit two
/// digits ("shard10." < "shard2." lexicographically).
template <typename T>
void SortByName(std::vector<std::pair<std::string, T>>* family) {
  std::sort(family->begin(), family->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
}

template <typename T>
void AppendPrefixed(const std::string& prefix,
                    std::vector<std::pair<std::string, T>> from,
                    std::vector<std::pair<std::string, T>>* into) {
  for (auto& [name, value] : from) {
    into->emplace_back(prefix + name, std::move(value));
  }
}

}  // namespace

Status ShardedRuntimeConfig::Validate() const {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  ShardRingConfig ring_config = ring;
  ring_config.num_shards = num_shards;
  ATNN_RETURN_IF_ERROR(ring_config.Validate());
  ATNN_RETURN_IF_ERROR(shard.Validate());
  if (default_deadline_us < 0) {
    return Status::InvalidArgument("default_deadline_us must be >= 0");
  }
  if (!(fanout_budget_fraction > 0.0) || fanout_budget_fraction > 1.0) {
    return Status::InvalidArgument(
        "fanout_budget_fraction must be in (0, 1]: the scatter leg needs a "
        "nonzero slice of the budget and cannot exceed the whole");
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<ShardedRuntime>> ShardedRuntime::Create(
    const ShardedRuntimeConfig& config) {
  ATNN_RETURN_IF_ERROR(config.Validate());
  return std::make_unique<ShardedRuntime>(config);
}

ShardedRuntime::ShardedRuntime(const ShardedRuntimeConfig& config)
    : config_([&config] {
        ShardedRuntimeConfig fixed = config;
        fixed.ring.num_shards = config.num_shards;
        return fixed;
      }()),
      ring_(config_.ring),
      requests_(frontend_.GetCounter("gather.requests")),
      shard_errors_(frontend_.GetCounter("gather.shard_errors")),
      gather_timeouts_(frontend_.GetCounter("gather.timeouts")),
      frontend_degraded_(frontend_.GetCounter("gather.degraded")),
      fanout_us_(frontend_.GetHistogram("gather.fanout_us")),
      merge_us_(frontend_.GetHistogram("gather.merge_us")) {
  const Status valid = config_.Validate();
  ATNN_CHECK(valid.ok()) << "invalid ShardedRuntimeConfig: "
                         << valid.ToString()
                         << " (use ShardedRuntime::Create for a Status)";
  runtime::RuntimeConfig shard_config = config_.shard;
  shard_config.prior = nullptr;  // installed per shard at publish time
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(
        std::make_unique<runtime::InferenceRuntime>(shard_config));
  }
}

ShardedRuntime::~ShardedRuntime() { Shutdown(); }

StatusOr<uint64_t> ShardedRuntime::PublishSharded(
    const runtime::ServingSnapshot& full) {
  // One up-front validation over the whole snapshot: a corrupt model is
  // rejected before any shard swaps, so a failed publish is atomic in the
  // common case (per-shard rejections below only fire under injected
  // faults).
  ATNN_RETURN_IF_ERROR(runtime::ValidateServingSnapshot(full));
  const int64_t num_rows = full.item_profiles->num_rows();

  auto routing = std::make_shared<RoutingTable>();
  routing->shard_of_row.resize(static_cast<size_t>(num_rows));
  routing->local_of_row.resize(static_cast<size_t>(num_rows));
  routing->rows_of_shard.resize(shards_.size());
  for (int64_t row = 0; row < num_rows; ++row) {
    const size_t shard = ring_.ShardFor(row);
    auto& members = routing->rows_of_shard[shard];
    routing->shard_of_row[static_cast<size_t>(row)] =
        static_cast<uint32_t>(shard);
    routing->local_of_row[static_cast<size_t>(row)] =
        static_cast<int64_t>(members.size());
    members.push_back(row);
  }

  uint64_t version = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const auto& members = routing->rows_of_shard[i];
    runtime::ServingSnapshot slice = full;
    slice.item_profiles = std::make_shared<const data::EntityTable>(
        data::SliceRows(*full.item_profiles, members));
    slice.tag = full.tag + "/shard" + std::to_string(i);
    ATNN_ASSIGN_OR_RETURN(version, shards_[i]->Publish(std::move(slice)));

    if (config_.prior != nullptr) {
      // Shards score by local row, so their tier-2 prior must be re-keyed
      // from the global index.
      auto local_prior = std::make_shared<serving::PopularityIndex>();
      for (size_t local = 0; local < members.size(); ++local) {
        const auto score = config_.prior->Score(members[local]);
        if (score.ok()) {
          local_prior->Upsert(static_cast<int64_t>(local), score.value());
        }
      }
      shards_[i]->SetPrior(std::move(local_prior));
    }
  }

  {
    std::lock_guard<std::mutex> lock(routing_mutex_);
    routing_ = std::move(routing);
  }
  published_version_.store(version, std::memory_order_relaxed);
  return version;
}

std::shared_ptr<const ShardedRuntime::RoutingTable> ShardedRuntime::routing()
    const {
  std::lock_guard<std::mutex> lock(routing_mutex_);
  return routing_;
}

runtime::ScoreResult ShardedRuntime::FrontendDegraded(int64_t global_row) {
  frontend_degraded_.Increment();
  runtime::ScoreResult result;
  result.snapshot_version =
      published_version_.load(std::memory_order_relaxed);
  if (config_.prior != nullptr) {
    const auto prior_score = config_.prior->Score(global_row);
    if (prior_score.ok()) {
      result.score = prior_score.value();
      result.tier = runtime::ServingTier::kPrior;
      return result;
    }
  }
  // No prior coverage: the sigmoid midpoint, the same answer of last
  // resort a single runtime gives before any fresh score exists.
  result.score = 0.5;
  result.tier = runtime::ServingTier::kGlobalMean;
  return result;
}

std::vector<StatusOr<runtime::ScoreResult>> ShardedRuntime::ScoreBatch(
    const std::vector<int64_t>& item_rows) {
  return ScoreBatch(item_rows, config_.default_deadline_us);
}

std::vector<StatusOr<runtime::ScoreResult>> ShardedRuntime::ScoreBatch(
    const std::vector<int64_t>& item_rows, int64_t deadline_us) {
  std::vector<StatusOr<runtime::ScoreResult>> results;
  results.reserve(item_rows.size());
  const auto table = routing();
  if (table == nullptr) {
    for (size_t i = 0; i < item_rows.size(); ++i) {
      results.emplace_back(Status::FailedPrecondition(
          "no sharded snapshot published; call PublishSharded() first"));
    }
    return results;
  }
  requests_.Increment(static_cast<int64_t>(item_rows.size()));

  const Clock::time_point start = Clock::now();
  const Clock::time_point overall_deadline =
      deadline_us > 0 ? start + std::chrono::microseconds(deadline_us)
                      : Clock::time_point::max();
  // Deadline split: the scatter leg hands every shard request this budget;
  // whatever the budget leaves after fan-out bounds the merge waits below.
  const int64_t fanout_deadline_us =
      deadline_us > 0
          ? std::max<int64_t>(
                1, static_cast<int64_t>(
                       static_cast<double>(deadline_us) *
                       config_.fanout_budget_fraction))
          : 0;

  // --- scatter ---
  const int64_t num_rows =
      static_cast<int64_t>(table->shard_of_row.size());
  std::vector<std::optional<std::future<StatusOr<runtime::ScoreResult>>>>
      futures(item_rows.size());
  // Route first, then enqueue each shard's rows as one contiguous burst
  // closed by a FlushHint. Interleaving enqueues row-by-row instead would
  // hold every shard's batch window open for the entire scatter leg (each
  // queue fills as a trickle), and the hash split almost never aligns with
  // max_batch_size — the tail of every sub-batch would then ride out the
  // full coalescing window before the gather could complete.
  std::vector<std::vector<std::pair<size_t, int64_t>>> bursts(
      shards_.size());  // shard -> (result index, local row)
  for (size_t i = 0; i < item_rows.size(); ++i) {
    const int64_t row = item_rows[i];
    if (row < 0 || row >= num_rows) {
      results.emplace_back(Status::InvalidArgument(
          "item row " + std::to_string(row) + " outside catalog [0, " +
          std::to_string(num_rows) + ")"));
      continue;
    }
    const size_t shard = table->shard_of_row[static_cast<size_t>(row)];
    bursts[shard].emplace_back(
        i, table->local_of_row[static_cast<size_t>(row)]);
    results.emplace_back(runtime::ScoreResult{});  // merged below
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (bursts[s].empty()) continue;
    for (const auto& [index, local] : bursts[s]) {
      futures[index] = shards_[s]->ScoreAsync(local, fanout_deadline_us);
    }
    shards_[s]->FlushHint();  // end of this shard's group — no co-riders
  }
  fanout_us_.Record(MicrosSince(start));

  // --- gather ---
  const Clock::time_point merge_start = Clock::now();
  for (size_t i = 0; i < item_rows.size(); ++i) {
    if (!futures[i].has_value()) continue;  // answered at scatter time
    auto& future = *futures[i];
    if (overall_deadline != Clock::time_point::max() &&
        future.wait_until(overall_deadline) != std::future_status::ready) {
      // Straggler past the whole-request budget: abandon the future (the
      // shard will still resolve it harmlessly) and answer degraded now —
      // the merge leg must never hold the batch hostage to one shard.
      gather_timeouts_.Increment();
      results[i] = FrontendDegraded(item_rows[i]);
      continue;
    }
    StatusOr<runtime::ScoreResult> result = future.get();
    if (result.ok()) {
      results[i] = std::move(result);
    } else {
      // A down shard (FailedPrecondition after ShutDownShard) or a shard
      // erroring with its fallback chain disabled: degrade at the
      // front-end instead of surfacing a partial-failure error.
      shard_errors_.Increment();
      results[i] = FrontendDegraded(item_rows[i]);
    }
  }
  merge_us_.Record(MicrosSince(merge_start));
  return results;
}

StatusOr<runtime::ScoreResult> ShardedRuntime::Score(int64_t item_row) {
  return std::move(ScoreBatch({item_row}).front());
}

void ShardedRuntime::ShutDownShard(size_t shard) {
  ATNN_CHECK(shard < shards_.size());
  shards_[shard]->Shutdown();
}

void ShardedRuntime::Shutdown() {
  for (auto& shard : shards_) shard->Shutdown();
}

obs::MetricsSnapshot ShardedRuntime::Collect() const {
  obs::MetricsSnapshot merged = frontend_.Collect();
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::string prefix = "shard" + std::to_string(i) + ".";
    obs::MetricsSnapshot shard_snapshot =
        shards_[i]->metrics_registry().Collect();
    AppendPrefixed(prefix, std::move(shard_snapshot.counters),
                   &merged.counters);
    AppendPrefixed(prefix, std::move(shard_snapshot.gauges), &merged.gauges);
    AppendPrefixed(prefix, std::move(shard_snapshot.histograms),
                   &merged.histograms);
  }
  SortByName(&merged.counters);
  SortByName(&merged.gauges);
  SortByName(&merged.histograms);
  return merged;
}

}  // namespace atnn::cluster
