#ifndef ATNN_CLUSTER_SHARDED_RUNTIME_H_
#define ATNN_CLUSTER_SHARDED_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "cluster/admission.h"
#include "cluster/shard_ring.h"
#include "common/status.h"
#include "obs/metrics_registry.h"
#include "runtime/inference_runtime.h"
#include "serving/popularity_index.h"

namespace atnn::cluster {

struct ShardedRuntimeConfig {
  /// Per-shard InferenceRuntime worker groups. Total worker threads are
  /// num_shards * shard.num_workers.
  size_t num_shards = 2;
  /// Ring geometry; `ring.num_shards` is overwritten with `num_shards` at
  /// construction so the two can never disagree.
  ShardRingConfig ring;
  /// Template applied to every shard: worker count, batcher, score cache,
  /// degraded-fallback chain, chaos hooks. `shard.prior` is ignored — each
  /// shard's prior is sliced out of `prior` (re-keyed to local rows) at
  /// PublishSharded time, because shards score by local row.
  runtime::RuntimeConfig shard;
  /// Whole-request completion budget for Score/ScoreBatch, microseconds;
  /// 0 = none. Split between fan-out and merge by
  /// `fanout_budget_fraction`.
  int64_t default_deadline_us = 0;
  /// Fraction of the budget given to the scatter leg (it becomes each
  /// shard request's deadline); the remainder bounds how long the gather
  /// waits on stragglers before degrading them. Must be in (0, 1].
  double fanout_budget_fraction = 0.75;
  /// Front-end fallback, keyed by *global* item row: answers requests
  /// whose shard is down or whose gather budget expired. May be null (the
  /// fallback then serves the noncommittal 0.5 global-mean answer).
  std::shared_ptr<const serving::PopularityIndex> prior;
  /// Per-shard circuit breaker: a shard whose requests keep erroring stops
  /// receiving serving traffic (its rows shed to the front-end fallback at
  /// scatter time, before spending any deadline budget) until probe
  /// traffic walks it back closed. See cluster/admission.h.
  CircuitBreakerConfig breaker;

  Status Validate() const;
};

/// Outcome of one synthetic shard probe (see ProbeShard).
struct ProbeReport {
  /// OK when the shard answered inside the deadline (possibly degraded);
  /// DeadlineExceeded on a hung shard; other codes for a down shard.
  Status status;
  /// Wall time the probe took, microseconds.
  double latency_us = 0.0;
  /// Tier of the answer when status is OK.
  runtime::ServingTier tier = runtime::ServingTier::kFresh;
  /// The supervisor's health criterion: an answer arrived AND it was
  /// served fresh. A shard alive enough to answer from its prior is not
  /// healthy, just not completely dead.
  bool healthy() const {
    return status.ok() && tier == runtime::ServingTier::kFresh;
  }
};

/// Outcome of one live resize (see ResizeShards).
struct ResizeReport {
  size_t from_shards = 0;
  size_t to_shards = 0;
  int64_t total_rows = 0;
  /// Rows whose owning shard changed.
  int64_t moved_rows = 0;
  /// The ring's bounded-remap guarantee, verified over the actual catalog:
  /// on grow, every moved row landed on an added shard; on shrink, every
  /// moved row came from a removed shard.
  bool moved_only_within_bound = true;
  /// Epoch id serving after the resize.
  uint64_t epoch = 0;
};

/// Scatter/gather front-end over N per-shard InferenceRuntimes — ROADMAP
/// item 1's "shard the catalog N ways" layer. The consistent-hash ring
/// assigns every global item row to a shard; PublishSharded slices the
/// catalog so each shard holds only its rows (its own snapshot slice,
/// score cache, and metrics namespace), and ScoreBatch fans a batch out to
/// the owning shards and merges the answers under a deadline budget split
/// between the two legs.
///
/// Epochs: the ring, the shard slots (runtime + circuit breaker), and the
/// routing table are bundled into one immutable Epoch object swapped
/// RCU-style. Admin operations (resize, rebuild, a publish that changes
/// the row->local mapping) install a new epoch, wait for in-flight
/// requests on the old epoch to drain, and only then shut down replaced
/// runtimes — so a resize or recovery never drops or errors a request
/// that was already in flight.
///
/// Failure semantics: a shard that is down (chaos: ShutDownShard), or that
/// cannot answer inside the gather budget, never fails the request — the
/// front-end answers from the global popularity prior (tier kPrior, or
/// kGlobalMean without one). A shard whose error rate trips its circuit
/// breaker is shed at scatter time the same way until probes close the
/// breaker. Shard-internal overload/deadline pressure degrades inside the
/// shard exactly as a single InferenceRuntime does. Every response carries
/// a serving tier; the only error Statuses a caller can see are
/// InvalidArgument (row outside the catalog) and FailedPrecondition
/// (nothing published yet).
///
/// Thread safety: every public method is safe from any thread. Admin
/// operations (PublishSharded/ResizeShards/RebuildShard) serialize among
/// themselves on one mutex.
class ShardedRuntime {
 public:
  static StatusOr<std::unique_ptr<ShardedRuntime>> Create(
      const ShardedRuntimeConfig& config);

  /// Aborts on an invalid config (Create is the Status path).
  explicit ShardedRuntime(const ShardedRuntimeConfig& config);

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  ~ShardedRuntime();

  /// Validates `full` once up front, partitions its item-profile table by
  /// the ring, and publishes each shard's slice (sharing the model and
  /// predictor, which are row-independent) plus its re-keyed prior slice.
  /// Returns the per-shard snapshot version. When the row->shard/local
  /// mapping is unchanged (the common republish), slices are published in
  /// place and all shards advance in lockstep. When the mapping changed
  /// (first publish after a resize with a changed catalog), affected
  /// shards are republished onto fresh runtime instances behind an epoch
  /// swap, so in-flight requests holding old local indices finish against
  /// the slices they were routed for. On a per-shard rejection (only
  /// reachable via injected corruption — validation already passed) the
  /// previous version keeps serving on every shard and the routing table
  /// is left untouched. The snapshot is retained as the rebuild source for
  /// RebuildShard/ResizeShards.
  StatusOr<uint64_t> PublishSharded(const runtime::ServingSnapshot& full);

  /// Live-resizes the cluster to `new_num_shards` without dropping or
  /// erroring any request. Grow: existing shards keep their slices
  /// untouched (bounded remap moves rows only TO the added shards, and a
  /// slice holding rows that no longer route to it is harmless); added
  /// shards get fresh compact slices published before the epoch swap.
  /// Shrink: surviving shards republish their slice as their old rows plus
  /// the gained rows appended — old local indices stay valid for requests
  /// already in flight — and removed shards are shut down only after the
  /// old epoch drains. FailedPrecondition before the first successful
  /// PublishSharded (there is no catalog to re-slice).
  StatusOr<ResizeReport> ResizeShards(size_t new_num_shards);

  /// Rebuilds shard `shard` from the last successfully published snapshot:
  /// a fresh InferenceRuntime is constructed, its slice and prior are
  /// published and validated, and it replaces the old runtime behind an
  /// epoch swap (the old one is shut down after the drain). The shard's
  /// circuit breaker is force-opened, so the rebuilt shard serves no
  /// traffic until probes walk it half-open -> closed: recovery is
  /// re-admission THROUGH health checks, not a blind swap-in.
  Status RebuildShard(size_t shard);

  /// Synthetic health probe against one shard: scores a deterministically
  /// chosen owned row (varied by `salt`) under `deadline_us`, bounded so a
  /// hung shard returns DeadlineExceeded instead of hanging the prober.
  /// The outcome is fed to the shard's circuit breaker as probe traffic
  /// (driving open -> half-open -> closed). A shard that currently owns no
  /// rows probes trivially healthy. `deadline_us` <= 0 uses a 50ms
  /// default.
  ProbeReport ProbeShard(size_t shard, uint64_t salt,
                         int64_t deadline_us = 0);

  /// Scatter/gathers one batch of global item rows under the config's
  /// default deadline budget. results[i] answers item_rows[i]:
  ///   - OK + tier:          fresh/degraded score (see class comment)
  ///   - InvalidArgument:    row outside the published catalog
  ///   - FailedPrecondition: PublishSharded never succeeded
  std::vector<StatusOr<runtime::ScoreResult>> ScoreBatch(
      const std::vector<int64_t>& item_rows);

  /// Same, with an explicit whole-request budget (microseconds; 0 = none).
  std::vector<StatusOr<runtime::ScoreResult>> ScoreBatch(
      const std::vector<int64_t>& item_rows, int64_t deadline_us);

  /// Single-row convenience wrapper.
  StatusOr<runtime::ScoreResult> Score(int64_t item_row);

  /// Answers every row from the front-end fallback without touching any
  /// shard: the tier-tagged, never-an-error shed response used by
  /// per-tenant admission control for over-quota traffic. Rows outside
  /// the catalog still come back InvalidArgument; before the first publish
  /// the rows are answered from the prior/global-mean anyway (a shed must
  /// not depend on serving state).
  std::vector<StatusOr<runtime::ScoreResult>> DegradedBatch(
      const std::vector<int64_t>& item_rows);

  /// Chaos hook: takes shard `i` down cold (drains and joins its
  /// workers). Requests routed to it degrade through the front-end prior
  /// until its breaker opens (then they shed at scatter), and a
  /// supervisor's probes will find it dead and rebuild it.
  void ShutDownShard(size_t shard);

  /// Shuts every shard down. Idempotent; also run by the destructor.
  void Shutdown();

  size_t num_shards() const { return CurrentEpoch()->shards.size(); }
  /// Returns the current epoch's ring by value: a resize can retire the
  /// epoch (and its ring) at any moment, so no reference would be stable.
  ShardRing ring() const;
  runtime::InferenceRuntime& shard(size_t i);
  const runtime::InferenceRuntime& shard(size_t i) const;
  CircuitBreaker& breaker(size_t i);
  const ShardedRuntimeConfig& config() const { return config_; }
  uint64_t snapshot_version() const {
    return published_version_.load(std::memory_order_relaxed);
  }
  uint64_t epoch_id() const { return CurrentEpoch()->id; }
  bool has_published() const { return CurrentEpoch()->routing != nullptr; }

  /// One snapshot of the whole tree: the front-end's own gather.* metrics
  /// plus every shard's registry under the namespace "shard<i>." —
  /// disjoint by construction, so per-shard behaviour stays attributable
  /// after aggregation. Names come back sorted.
  obs::MetricsSnapshot Collect() const;

 private:
  /// Immutable global-row routing: shard_of_row/local_of_row are dense
  /// over [0, num_rows). local_of_row indexes into the *published slice*
  /// of the owning shard, which after a grow-resize may be sparser than a
  /// compact renumbering (kept rows keep their old local index).
  struct RoutingTable {
    std::vector<uint32_t> shard_of_row;
    std::vector<int64_t> local_of_row;
    std::vector<std::vector<int64_t>> rows_of_shard;  // slice layout
  };

  /// One shard slot: the runtime serving its slice plus the breaker
  /// guarding it. The breaker object is stable across rebuilds (it guards
  /// "shard i", not one runtime instance).
  struct ShardSlot {
    std::shared_ptr<runtime::InferenceRuntime> runtime;
    std::shared_ptr<CircuitBreaker> breaker;
  };

  /// Everything a request needs to route consistently, swapped as one
  /// immutable unit. `routing` is null until the first publish.
  struct Epoch {
    uint64_t id = 1;
    ShardRing ring;
    std::vector<ShardSlot> shards;
    std::shared_ptr<const RoutingTable> routing;

    explicit Epoch(ShardRing r) : ring(std::move(r)) {}
  };

  std::shared_ptr<const Epoch> CurrentEpoch() const;
  /// Publishes `epoch` as current and blocks until every in-flight reader
  /// of the previous epoch has finished (drain), so the caller may safely
  /// shut down runtimes absent from the new epoch. The caller must have
  /// dropped its own reference to the previous epoch first — the drain
  /// waits for the use count to reach one, and a reference still held by
  /// the caller would deadlock it.
  void SwapEpochAndDrain(std::shared_ptr<const Epoch> epoch);
  /// Builds a fresh runtime from the shard template (no prior installed).
  std::shared_ptr<runtime::InferenceRuntime> MakeShardRuntime() const;
  /// Publishes `full`'s slice for `members` onto `target` and installs the
  /// re-keyed prior. Returns the shard's new snapshot version.
  StatusOr<uint64_t> PublishSlice(const runtime::ServingSnapshot& full,
                                  const std::vector<int64_t>& members,
                                  size_t shard_index,
                                  runtime::InferenceRuntime* target);
  /// Prior/global-mean fallback for `global_row`; always OK, always
  /// tier-tagged.
  runtime::ScoreResult FrontendDegraded(int64_t global_row);

  ShardedRuntimeConfig config_;

  obs::MetricsRegistry frontend_;
  obs::Counter& requests_;
  obs::Counter& shard_errors_;
  obs::Counter& gather_timeouts_;
  obs::Counter& frontend_degraded_;
  obs::Counter& breaker_shed_;
  obs::Counter& probes_;
  obs::Counter& probe_failures_;
  obs::Counter& resizes_;
  obs::Counter& rebuilds_;
  obs::Gauge& epoch_gauge_;
  obs::Histogram& fanout_us_;
  obs::Histogram& merge_us_;

  /// Serializes admin mutations (publish, resize, rebuild, shutdown).
  std::mutex admin_mutex_;
  /// Rebuild/resize source: the last snapshot PublishSharded accepted.
  /// Guarded by admin_mutex_.
  std::optional<runtime::ServingSnapshot> last_full_;
  /// Runtimes replaced or removed by admin operations, shut down after
  /// their epoch drained; kept so shard(i) references from old epochs
  /// stay valid for the runtime's lifetime. Guarded by admin_mutex_.
  std::vector<std::shared_ptr<runtime::InferenceRuntime>> retired_;

  mutable std::mutex epoch_mutex_;
  std::shared_ptr<const Epoch> epoch_;

  std::atomic<uint64_t> published_version_{0};
};

}  // namespace atnn::cluster

#endif  // ATNN_CLUSTER_SHARDED_RUNTIME_H_
