#ifndef ATNN_CLUSTER_SHARDED_RUNTIME_H_
#define ATNN_CLUSTER_SHARDED_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/shard_ring.h"
#include "common/status.h"
#include "obs/metrics_registry.h"
#include "runtime/inference_runtime.h"
#include "serving/popularity_index.h"

namespace atnn::cluster {

struct ShardedRuntimeConfig {
  /// Per-shard InferenceRuntime worker groups. Total worker threads are
  /// num_shards * shard.num_workers.
  size_t num_shards = 2;
  /// Ring geometry; `ring.num_shards` is overwritten with `num_shards` at
  /// construction so the two can never disagree.
  ShardRingConfig ring;
  /// Template applied to every shard: worker count, batcher, score cache,
  /// degraded-fallback chain, chaos hooks. `shard.prior` is ignored — each
  /// shard's prior is sliced out of `prior` (re-keyed to local rows) at
  /// PublishSharded time, because shards score by local row.
  runtime::RuntimeConfig shard;
  /// Whole-request completion budget for Score/ScoreBatch, microseconds;
  /// 0 = none. Split between fan-out and merge by
  /// `fanout_budget_fraction`.
  int64_t default_deadline_us = 0;
  /// Fraction of the budget given to the scatter leg (it becomes each
  /// shard request's deadline); the remainder bounds how long the gather
  /// waits on stragglers before degrading them. Must be in (0, 1].
  double fanout_budget_fraction = 0.75;
  /// Front-end fallback, keyed by *global* item row: answers requests
  /// whose shard is down or whose gather budget expired. May be null (the
  /// fallback then serves the noncommittal 0.5 global-mean answer).
  std::shared_ptr<const serving::PopularityIndex> prior;

  Status Validate() const;
};

/// Scatter/gather front-end over N per-shard InferenceRuntimes — ROADMAP
/// item 1's "shard the catalog N ways" layer. The consistent-hash ring
/// assigns every global item row to a shard; PublishSharded slices the
/// catalog so each shard holds only its rows (its own snapshot slice,
/// score cache, and metrics namespace), and ScoreBatch fans a batch out to
/// the owning shards and merges the answers under a deadline budget split
/// between the two legs.
///
/// Failure semantics: a shard that is down (chaos: ShutDownShard), or that
/// cannot answer inside the gather budget, never fails the request — the
/// front-end answers from the global popularity prior (tier kPrior, or
/// kGlobalMean without one). Shard-internal overload/deadline pressure
/// degrades inside the shard exactly as a single InferenceRuntime does.
/// Every response carries a serving tier; the only error Statuses a caller
/// can see are InvalidArgument (row outside the catalog) and
/// FailedPrecondition (nothing published yet).
///
/// Thread safety: PublishSharded/ScoreBatch/Score/Collect are safe from
/// any thread.
class ShardedRuntime {
 public:
  static StatusOr<std::unique_ptr<ShardedRuntime>> Create(
      const ShardedRuntimeConfig& config);

  /// Aborts on an invalid config (Create is the Status path).
  explicit ShardedRuntime(const ShardedRuntimeConfig& config);

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  ~ShardedRuntime();

  /// Validates `full` once up front, partitions its item-profile table by
  /// the ring, and publishes each shard's slice (sharing the model and
  /// predictor, which are row-independent) plus its re-keyed prior slice.
  /// Returns the per-shard snapshot version (all shards advance in
  /// lockstep). On a per-shard rejection (only reachable via injected
  /// corruption — validation already passed) the previous version keeps
  /// serving on every shard and the routing table is left untouched.
  StatusOr<uint64_t> PublishSharded(const runtime::ServingSnapshot& full);

  /// Scatter/gathers one batch of global item rows under the config's
  /// default deadline budget. results[i] answers item_rows[i]:
  ///   - OK + tier:          fresh/degraded score (see class comment)
  ///   - InvalidArgument:    row outside the published catalog
  ///   - FailedPrecondition: PublishSharded never succeeded
  std::vector<StatusOr<runtime::ScoreResult>> ScoreBatch(
      const std::vector<int64_t>& item_rows);

  /// Same, with an explicit whole-request budget (microseconds; 0 = none).
  std::vector<StatusOr<runtime::ScoreResult>> ScoreBatch(
      const std::vector<int64_t>& item_rows, int64_t deadline_us);

  /// Single-row convenience wrapper.
  StatusOr<runtime::ScoreResult> Score(int64_t item_row);

  /// Chaos hook: permanently takes shard `i` down (drains and joins its
  /// workers). Requests routed to it thereafter degrade through the
  /// front-end prior — the "partial shard failure" drill
  /// bench_sharded_serving gates on.
  void ShutDownShard(size_t shard);

  /// Shuts every shard down. Idempotent; also run by the destructor.
  void Shutdown();

  size_t num_shards() const { return shards_.size(); }
  const ShardRing& ring() const { return ring_; }
  runtime::InferenceRuntime& shard(size_t i) { return *shards_[i]; }
  const runtime::InferenceRuntime& shard(size_t i) const {
    return *shards_[i];
  }
  const ShardedRuntimeConfig& config() const { return config_; }
  uint64_t snapshot_version() const {
    return published_version_.load(std::memory_order_relaxed);
  }

  /// One snapshot of the whole tree: the front-end's own gather.* metrics
  /// plus every shard's registry under the namespace "shard<i>." —
  /// disjoint by construction, so per-shard behaviour stays attributable
  /// after aggregation. Names come back sorted.
  obs::MetricsSnapshot Collect() const;

 private:
  /// Immutable global-row routing, rebuilt per publish and swapped
  /// RCU-style: shard_of_row/local_of_row are dense over [0, num_rows).
  struct RoutingTable {
    std::vector<uint32_t> shard_of_row;
    std::vector<int64_t> local_of_row;
    std::vector<std::vector<int64_t>> rows_of_shard;  // local -> global
  };

  std::shared_ptr<const RoutingTable> routing() const;
  /// Prior/global-mean fallback for `global_row`; always OK, always
  /// tier-tagged.
  runtime::ScoreResult FrontendDegraded(int64_t global_row);

  ShardedRuntimeConfig config_;
  ShardRing ring_;

  obs::MetricsRegistry frontend_;
  obs::Counter& requests_;
  obs::Counter& shard_errors_;
  obs::Counter& gather_timeouts_;
  obs::Counter& frontend_degraded_;
  obs::Histogram& fanout_us_;
  obs::Histogram& merge_us_;

  std::vector<std::unique_ptr<runtime::InferenceRuntime>> shards_;

  mutable std::mutex routing_mutex_;
  std::shared_ptr<const RoutingTable> routing_;
  std::atomic<uint64_t> published_version_{0};
};

}  // namespace atnn::cluster

#endif  // ATNN_CLUSTER_SHARDED_RUNTIME_H_
