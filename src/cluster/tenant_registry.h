#ifndef ATNN_CLUSTER_TENANT_REGISTRY_H_
#define ATNN_CLUSTER_TENANT_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/admission.h"
#include "cluster/sharded_runtime.h"
#include "common/status.h"
#include "obs/metrics_registry.h"
#include "runtime/micro_batcher.h"

namespace atnn::cluster {

/// One model tenant behind the shared serving process: a name (the metrics
/// namespace and routing key) plus the full sharded-runtime configuration
/// — shard count, per-shard workers, deadline budget, fallback prior. The
/// paper's production A/B test serves TNN, ATNN, and the multitask variant
/// side by side; a TenantConfig is one arm of that test.
struct TenantConfig {
  /// Routing key and metrics namespace segment. Restricted to
  /// [A-Za-z0-9_-]+ so "tenant.<name>.shard<i>.<metric>" stays parseable
  /// (no '.' collisions with the namespace separator).
  std::string name;
  ShardedRuntimeConfig sharded;
  /// Admission quota, rows per second; <= 0 means unlimited. Over-quota
  /// rows are never errored: they are answered from the tenant's degraded
  /// fallback (tier kPrior/kGlobalMean) without touching any shard, so a
  /// noisy tenant cannot queue behind-quota work into shards other tenants
  /// share the machine with.
  double admission_qps = 0.0;
  /// Token-bucket depth; <= 0 defaults to one second of admission_qps.
  double admission_burst = 0.0;

  Status Validate() const;
};

/// Routes score requests for multiple model tenants, each behind its own
/// ShardedRuntime with an independent shard set, deadline budget, and
/// degraded-fallback chain. One process, N tenants — the deployment shape
/// of the paper's A/B test, where every arm must be isolated enough to
/// measure (disjoint metrics namespaces) but cheap enough to co-host
/// (shared binary, shared catalog generation).
///
/// AddTenant is a setup-time operation; Score/ScoreBatch are serving-time
/// and safe from any thread (tenant lookup is a short map find under a
/// mutex — the scatter/gather dominates it by orders of magnitude).
/// Tenants live until the registry dies; there is deliberately no
/// RemoveTenant, because handing out raw ShardedRuntime pointers is what
/// keeps the hot path allocation-free.
class TenantRegistry {
 public:
  TenantRegistry() = default;
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Creates the tenant's ShardedRuntime and registers it under
  /// config.name. The returned pointer stays valid for the registry's
  /// lifetime. AlreadyExists on a duplicate name; InvalidArgument on a bad
  /// name or sharded config.
  StatusOr<ShardedRuntime*> AddTenant(const TenantConfig& config);

  /// Tenant lookup; nullptr when absent.
  ShardedRuntime* Get(std::string_view name) const;

  /// Scatter/gathers `item_rows` through the named tenant under its own
  /// deadline budget, after the tenant's admission quota: the token bucket
  /// grants the first k rows (partial grants split the batch), and the
  /// over-quota tail is answered tier-tagged from the degraded fallback —
  /// shed, never errored. Every entry is NotFound when the tenant does not
  /// exist (the per-row shape is kept so callers can zip results to rows
  /// unconditionally).
  std::vector<StatusOr<runtime::ScoreResult>> ScoreBatch(
      std::string_view tenant, const std::vector<int64_t>& item_rows);

  /// Single-row convenience; NotFound for an unknown tenant.
  StatusOr<runtime::ScoreResult> Score(std::string_view tenant,
                                       int64_t item_row);

  /// Registered tenant names, sorted.
  std::vector<std::string> TenantNames() const;

  /// Every tenant's Collect() merged under "tenant.<name>." — the prefix
  /// plus each tenant's own "shard<i>." layer gives every metric a unique,
  /// attributable path (e.g. "tenant.atnn.shard2.tier.fresh"). Namespaces
  /// are disjoint by construction: names cannot repeat and cannot contain
  /// the '.' separator.
  obs::MetricsSnapshot Collect() const;

  /// Shuts every tenant's runtime down. Idempotent.
  void Shutdown();

 private:
  /// One tenant: its runtime, its admission bucket, and the admission.*
  /// counters (admitted/shed) merged into Collect() under the tenant's
  /// namespace.
  struct Tenant {
    std::unique_ptr<ShardedRuntime> runtime;
    std::unique_ptr<TokenBucket> bucket;
    std::unique_ptr<obs::MetricsRegistry> registry;
    obs::Counter* admitted = nullptr;
    obs::Counter* shed = nullptr;
  };

  const Tenant* Find(std::string_view name) const;

  mutable std::mutex mutex_;
  std::map<std::string, Tenant, std::less<>> tenants_;
};

}  // namespace atnn::cluster

#endif  // ATNN_CLUSTER_TENANT_REGISTRY_H_
