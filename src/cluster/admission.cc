#include "cluster/admission.h"

#include <algorithm>
#include <cmath>

namespace atnn::cluster {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_s_(rate_per_s),
      burst_(burst > 0.0 ? burst : std::max(rate_per_s, 1.0)),
      tokens_(burst_) {}

int64_t TokenBucket::TryAcquire(int64_t want) {
  if (unlimited()) return want;  // skip the clock read entirely
  return TryAcquireAt(want, Clock::now());
}

int64_t TokenBucket::TryAcquireAt(int64_t want, Clock::time_point now) {
  if (unlimited()) return want;
  if (want <= 0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!primed_) {
    // Anchor refill to the first acquire, not construction: a bucket built
    // at process start must not bank an arbitrary setup interval as burst.
    primed_ = true;
    last_refill_ = now;
  } else if (now > last_refill_) {
    const double elapsed_s =
        std::chrono::duration<double>(now - last_refill_).count();
    tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_s_);
    last_refill_ = now;
  }
  const int64_t granted =
      std::min<int64_t>(want, static_cast<int64_t>(std::floor(tokens_)));
  if (granted > 0) tokens_ -= static_cast<double>(granted);
  return granted;
}

const char* BreakerStateToString(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

Status CircuitBreakerConfig::Validate() const {
  if (!(error_rate_threshold > 0.0) || error_rate_threshold > 1.0) {
    return Status::InvalidArgument(
        "error_rate_threshold must be in (0, 1]");
  }
  if (!(ewma_alpha > 0.0) || ewma_alpha > 1.0) {
    return Status::InvalidArgument("ewma_alpha must be in (0, 1]");
  }
  if (min_samples < 1) {
    return Status::InvalidArgument("min_samples must be >= 1");
  }
  if (cooldown_ms < 0) {
    return Status::InvalidArgument("cooldown_ms must be >= 0");
  }
  if (probes_to_close < 1) {
    return Status::InvalidArgument("probes_to_close must be >= 1");
  }
  return Status::OK();
}

CircuitBreaker::CircuitBreaker(const CircuitBreakerConfig& config)
    : config_(config) {}

void CircuitBreaker::RecordResult(bool ok) {
  RecordResultAt(ok, Clock::now());
}

void CircuitBreaker::RecordResultAt(bool ok, Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  RecordResultLocked(ok, now);
}

void CircuitBreaker::RecordResultLocked(bool ok, Clock::time_point now) {
  ewma_error_rate_ = (1.0 - config_.ewma_alpha) * ewma_error_rate_ +
                     config_.ewma_alpha * (ok ? 0.0 : 1.0);
  ++samples_;
  if (state() == BreakerState::kClosed && samples_ >= config_.min_samples &&
      ewma_error_rate_ >= config_.error_rate_threshold) {
    OpenLocked(now);
  }
}

void CircuitBreaker::OpenLocked(Clock::time_point opened_at) {
  state_.store(static_cast<int>(BreakerState::kOpen),
               std::memory_order_relaxed);
  opened_at_ = opened_at;
  probe_successes_ = 0;
}

void CircuitBreaker::RecordProbe(bool ok) { RecordProbeAt(ok, Clock::now()); }

void CircuitBreaker::RecordProbeAt(bool ok, Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state()) {
    case BreakerState::kClosed:
      // Probe traffic in the closed state is just another observation —
      // the supervisor's probes keep the EWMA warm on idle shards.
      RecordResultLocked(ok, now);
      return;
    case BreakerState::kOpen:
      if (now - opened_at_ <
          std::chrono::milliseconds(config_.cooldown_ms)) {
        return;  // still cooling down: the probe outcome is not admitted
      }
      state_.store(static_cast<int>(BreakerState::kHalfOpen),
                   std::memory_order_relaxed);
      probe_successes_ = 0;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      if (!ok) {
        // One failed probe re-opens: a half-recovered shard must re-earn
        // trust from the start of the cooldown.
        OpenLocked(now);
        return;
      }
      if (++probe_successes_ >= config_.probes_to_close) {
        state_.store(static_cast<int>(BreakerState::kClosed),
                     std::memory_order_relaxed);
        // The error history belongs to the pre-trip instance of the shard
        // (or to its corpse): a close is a clean slate, re-protected by
        // min_samples before it can trip again.
        ewma_error_rate_ = 0.0;
        samples_ = 0;
        probe_successes_ = 0;
      }
      return;
  }
}

void CircuitBreaker::ForceOpen() { ForceOpenAt(Clock::now()); }

void CircuitBreaker::ForceOpenAt(Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Backdate past the cooldown: the first probe against the rebuilt shard
  // immediately enters the half-open evaluation window.
  OpenLocked(now - std::chrono::milliseconds(config_.cooldown_ms + 1));
}

double CircuitBreaker::error_rate() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ewma_error_rate_;
}

}  // namespace atnn::cluster
