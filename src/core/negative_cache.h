#ifndef ATNN_CORE_NEGATIVE_CACHE_H_
#define ATNN_CORE_NEGATIVE_CACHE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "nn/tensor.h"

namespace atnn::core {

/// FIFO cache of recent-batch item embeddings for cross-batch negative
/// sampling (CBNS, arXiv:2110.15154). Each training step pushes the
/// batch's generated item vectors (detached — the cache holds plain
/// floats, never graph nodes); subsequent steps reuse the cached vectors
/// as extra label-0 "impressions" against the current batch's user
/// vectors, so every step sees capacity-many batches of negatives at the
/// cost of one matmul instead of capacity-many forward passes. The cached
/// embeddings are slightly stale by construction; CBNS's observation is
/// that embeddings drift slowly enough across adjacent steps for stale
/// negatives to be nearly free signal.
///
/// Storage is std::vector<float> on purpose: training steps run inside an
/// nn::ArenaScope, where Tensor buffers are step-scoped — a cached Tensor
/// would dangle at the step's rewind. Plain vectors always heap-allocate
/// and so survive across steps (and across incremental training calls).
///
/// Not thread-safe: owned and used by one training loop. Contents persist
/// across incremental calls on purpose — in the streaming trainer, day
/// d+1's first batches see day d's tail cohort as negatives.
class NegativeCache {
 public:
  explicit NegativeCache(size_t capacity_batches = 4)
      : capacity_(capacity_batches == 0 ? 1 : capacity_batches) {}

  /// Enqueues one batch of item vectors ([b, d] rows), evicting the oldest
  /// batch beyond capacity. All pushed batches must share `d`.
  void Push(const nn::Tensor& item_vectors);

  /// All cached vectors as one [d, total] matrix — transposed so it drops
  /// straight into MatMul(user_vec [m, d], negatives [d, total]) as the
  /// logits of m*total virtual non-click impressions. Returns a 0x0
  /// tensor when empty. (The returned Tensor may live in the caller's
  /// arena scope; it is meant to be consumed within the step.)
  nn::Tensor GatherTransposed() const;

  /// Total cached vectors across all resident batches.
  int64_t total_rows() const { return total_rows_; }
  size_t batches() const { return fifo_.size(); }
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  struct Batch {
    int64_t rows = 0;
    std::vector<float> data;  // row-major [rows, dim]
  };
  size_t capacity_;
  std::deque<Batch> fifo_;
  int64_t dim_ = 0;
  int64_t total_rows_ = 0;
};

}  // namespace atnn::core

#endif  // ATNN_CORE_NEGATIVE_CACHE_H_
