#ifndef ATNN_CORE_GENERATOR_PLAN_H_
#define ATNN_CORE_GENERATOR_PLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/atnn.h"
#include "core/popularity.h"
#include "data/schema.h"
#include "data/tmall.h"
#include "nn/ir/plan.h"

namespace atnn::core {

/// Traces one generator forward g(X_ip) of `model` against a probe block
/// gathered from `item_profiles`, runs the optimization pipeline, and
/// lowers the result to a CompiledPlan sized for `max_batch` rows.
/// `keepalive` (may be null) is pinned for the plan's lifetime — pass the
/// owning handle of the model whose parameter buffers the graph borrows;
/// callers that guarantee the model outlives the plan may leave it null.
///
/// Fails when the item table is empty or the forward uses an op outside
/// the IR vocabulary. Failures are expected configuration states — callers
/// fall back to the autograd tape, they don't error out.
StatusOr<std::shared_ptr<const nn::ir::CompiledPlan>> CompileGeneratorPlan(
    const AtnnModel& model, const data::EntityTable& item_profiles,
    int64_t max_batch, std::shared_ptr<const void> keepalive = nullptr);

/// Scores `item_rows` through the compiled plan: gathers blocks of up to
/// plan.max_batch() rows, executes each through the pre-planned program,
/// and reduces every generated vector with the predictor's O(1) dot
/// product — the same math as PopularityPredictor::ScoreItems, row for
/// row bitwise-identical because the plan reproduces the tape forward
/// exactly. InvalidArgument if the table's shape drifted from the traced
/// graph (callers fall back to ScoreItems).
StatusOr<std::vector<double>> ScoreItemsWithPlan(
    const nn::ir::CompiledPlan& plan, const PopularityPredictor& predictor,
    const data::EntityTable& item_profiles,
    const std::vector<int64_t>& item_rows);

/// The CLI entry point: applies the --atnn_compile policy. Under kOn/kAuto
/// it compiles the generator and scores through the plan; any compile or
/// execute failure — and kOff — scores through the tape instead. Never
/// fails. `used_plan` (optional) reports which path actually ran.
std::vector<double> ScoreItemsMaybeCompiled(
    nn::ir::CompileMode mode, const AtnnModel& model,
    const PopularityPredictor& predictor, const data::TmallDataset& dataset,
    const std::vector<int64_t>& item_rows, bool* used_plan = nullptr);

}  // namespace atnn::core

#endif  // ATNN_CORE_GENERATOR_PLAN_H_
