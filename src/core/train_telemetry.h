#ifndef ATNN_CORE_TRAIN_TELEMETRY_H_
#define ATNN_CORE_TRAIN_TELEMETRY_H_

#include <chrono>
#include <initializer_list>
#include <iostream>
#include <string>
#include <utility>

#include "nn/arena.h"
#include "obs/exporter.h"
#include "obs/metrics_registry.h"

namespace atnn::core {

/// Shared instrumentation for the three training loops. All handles are
/// resolved up front, so the per-step cost is one lock-free counter
/// increment plus one histogram record (via ScopedTimer on step_sink());
/// per-epoch work (gauge lookups, the optional JSON line) may take the
/// registry mutex — epochs are coarse enough not to care.
///
/// Metric names: counter `train.steps`, histograms `train.step_us` /
/// `train.epoch_ms`, gauges `train.epoch`, `train.arena_high_water_bytes`,
/// and one `train.<loss>` gauge per loss the caller reports.
class TrainTelemetry {
 public:
  TrainTelemetry(obs::MetricsRegistry* registry, bool emit_lines)
      : registry_(registry), emit_lines_(emit_lines) {
    if (registry_ == nullptr) return;
    steps_ = &registry_->GetCounter("train.steps");
    step_us_ = &registry_->GetHistogram("train.step_us");
    epoch_ms_ = &registry_->GetHistogram("train.epoch_ms");
    epoch_ = &registry_->GetGauge("train.epoch");
    arena_high_water_ = &registry_->GetGauge("train.arena_high_water_bytes");
  }

  bool enabled() const { return registry_ != nullptr; }

  /// Sink for per-step ScopedTimers; null when telemetry is disabled
  /// (ScopedTimer treats a null sink as "record nothing").
  obs::Histogram* step_sink() const { return step_us_; }

  void RecordStep() {
    if (steps_ != nullptr) steps_->Increment();
  }

  /// Epoch bookkeeping: `epoch_index` is 0-based (exported 1-based, so the
  /// gauge reads as "epochs finished"), `losses` are this epoch's averaged
  /// values. With emit_lines, prints one machine-readable line:
  ///   ATNN_METRICS {"ts_ms":...,...}
  void EndEpoch(int epoch_index, double epoch_ms,
                std::initializer_list<std::pair<const char*, double>> losses) {
    if (registry_ == nullptr) return;
    epoch_->Set(static_cast<double>(epoch_index + 1));
    epoch_ms_->Record(epoch_ms);
    arena_high_water_->Set(
        static_cast<double>(nn::ThreadArena().HighWaterMark()));
    for (const auto& [name, value] : losses) {
      registry_->GetGauge(std::string("train.") + name).Set(value);
    }
    if (emit_lines_) {
      std::cout << "ATNN_METRICS " << obs::ToJsonLine(registry_->Collect())
                << std::endl;
    }
  }

  /// Microseconds-resolution wall clock for epoch timing.
  static std::chrono::steady_clock::time_point Now() {
    return std::chrono::steady_clock::now();
  }
  static double MsSince(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Now() - start).count();
  }

 private:
  obs::MetricsRegistry* registry_;
  bool emit_lines_;
  obs::Counter* steps_ = nullptr;
  obs::Histogram* step_us_ = nullptr;
  obs::Histogram* epoch_ms_ = nullptr;
  obs::Gauge* epoch_ = nullptr;
  obs::Gauge* arena_high_water_ = nullptr;
};

}  // namespace atnn::core

#endif  // ATNN_CORE_TRAIN_TELEMETRY_H_
