#include "core/multitask_trainer.h"

#include "common/logging.h"
#include "common/prefetcher.h"
#include "common/rng.h"
#include "core/train_telemetry.h"
#include "metrics/metrics.h"
#include "nn/optimizer.h"
#include "obs/trace_span.h"

namespace atnn::core {

std::vector<MultiTaskEpochStats> TrainMultiTaskAtnn(
    MultiTaskAtnnModel* model, const data::ElemeDataset& dataset,
    const TrainOptions& options) {
  const Status options_valid = options.Validate();
  ATNN_CHECK(options_valid.ok())
      << "invalid TrainOptions: " << options_valid.ToString();
  if (dataset.train_indices.empty()) {
    ATNN_LOG(Warning) << "TrainMultiTaskAtnn: empty train split, nothing to "
                         "do; returning empty history";
    return {};
  }
  const bool adversarial = model->config().adversarial;
  nn::Adam optimizer_d(model->DiscriminatorParameters(),
                       options.learning_rate);
  std::unique_ptr<nn::Adam> optimizer_g;
  if (adversarial) {
    optimizer_g = std::make_unique<nn::Adam>(model->GeneratorParameters(),
                                             options.learning_rate);
  }
  const std::vector<nn::Parameter*> all_params = model->Parameters();
  const float lambda1 = model->config().lambda1;
  const float lambda2 = model->config().lambda2;

  Rng rng(options.seed);
  std::vector<int64_t> order = dataset.train_indices;
  std::vector<MultiTaskEpochStats> history;
  TrainTelemetry telemetry(options.metrics, options.emit_metric_lines);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const auto epoch_start = TrainTelemetry::Now();
    rng.Shuffle(&order);
    // `order` is stable until the next epoch's shuffle, so the prefetcher
    // may gather batch t+1 from these views while batch t trains.
    const std::vector<std::span<const int64_t>> batches =
        MakeBatchSpans(order, options.batch_size);
    Prefetcher<data::ElemeBatch> batches_ahead(
        options.pool, batches.size(), [&dataset, &batches](size_t i) {
          return data::MakeElemeBatch(dataset, batches[i]);
        });
    MultiTaskEpochStats stats;
    int64_t steps = 0;
    while (batches_ahead.HasNext()) {
      const data::ElemeBatch batch = batches_ahead.Next();
      const obs::ScopedTimer step_timer(telemetry.step_sink());
      telemetry.RecordStep();
      // Step-scoped tensors come from the thread arena; one rewind per step.
      const nn::ArenaScope arena_scope;

      // --- D step: L_r^GMV + lambda1 * L_r^VpPV through the encoder. ---
      nn::ZeroAllGrads(all_params);
      nn::Var group_vec = model->GroupVector(batch.user_group);
      nn::Var enc_vec = model->EncoderVector(batch.restaurant_profile,
                                             batch.restaurant_stats);
      nn::Var loss_gmv =
          nn::MseLoss(model->PredictGmv(enc_vec, group_vec), batch.gmv);
      nn::Var loss_vppv =
          nn::MseLoss(model->PredictVppv(enc_vec, group_vec), batch.vppv);
      nn::Var loss_d = nn::Add(loss_gmv, nn::Scale(loss_vppv, lambda1));
      nn::Backward(loss_d);
      if (options.clip_norm > 0.0f) {
        optimizer_d.ClipGradNorm(options.clip_norm);
      }
      optimizer_d.Step();
      stats.loss_gmv_d += loss_gmv.value().scalar();
      stats.loss_vppv_d += loss_vppv.value().scalar();

      // --- G step: L_g^GMV + lambda1 * L_g^VpPV + lambda2 * L_s. ---
      if (adversarial) {
        nn::ZeroAllGrads(all_params);
        nn::Var group_vec_g = model->GroupVector(batch.user_group);
        nn::Var enc_vec_g = model->EncoderVector(batch.restaurant_profile,
                                                 batch.restaurant_stats);
        nn::Var gen_vec = model->GeneratorVector(batch.restaurant_profile);
        nn::Var gen_gmv =
            nn::MseLoss(model->PredictGmv(gen_vec, group_vec_g), batch.gmv);
        nn::Var gen_vppv =
            nn::MseLoss(model->PredictVppv(gen_vec, group_vec_g), batch.vppv);
        nn::Var loss_s = model->SimilarityLoss(gen_vec, enc_vec_g);
        nn::Var loss_g =
            nn::Add(nn::Add(gen_gmv, nn::Scale(gen_vppv, lambda1)),
                    nn::Scale(loss_s, lambda2));
        nn::Backward(loss_g);
        if (options.clip_norm > 0.0f) {
          optimizer_g->ClipGradNorm(options.clip_norm);
        }
        optimizer_g->Step();
        stats.loss_gmv_g += gen_gmv.value().scalar();
        stats.loss_vppv_g += gen_vppv.value().scalar();
        stats.loss_s += loss_s.value().scalar();
      }
      ++steps;
    }
    const double inv = 1.0 / static_cast<double>(steps);
    stats.loss_gmv_d *= inv;
    stats.loss_vppv_d *= inv;
    stats.loss_gmv_g *= inv;
    stats.loss_vppv_g *= inv;
    stats.loss_s *= inv;
    history.push_back(stats);
    telemetry.EndEpoch(epoch, TrainTelemetry::MsSince(epoch_start),
                       {{"loss_gmv_d", stats.loss_gmv_d},
                        {"loss_vppv_d", stats.loss_vppv_d},
                        {"loss_gmv_g", stats.loss_gmv_g},
                        {"loss_vppv_g", stats.loss_vppv_g},
                        {"loss_s", stats.loss_s}});
    if (options.verbose) {
      ATNN_LOG(Info) << "mt-atnn epoch " << epoch + 1 << "/" << options.epochs
                     << " L_gmv=" << stats.loss_gmv_d
                     << " L_vppv=" << stats.loss_vppv_d
                     << " L_s=" << stats.loss_s;
    }
  }
  return history;
}

ElemeEval EvaluateEleme(const MultiTaskAtnnModel& model,
                        const data::ElemeDataset& dataset,
                        const std::vector<int64_t>& restaurant_rows,
                        int batch_size, ThreadPool* pool) {
  struct ChunkResult {
    std::vector<double> vppv_pred;
    std::vector<double> gmv_pred;
    std::vector<float> vppv_true;
    std::vector<float> gmv_true;
  };
  const std::vector<std::span<const int64_t>> chunks =
      MakeBatchSpans(restaurant_rows, batch_size);
  std::vector<ChunkResult> results(chunks.size());
  auto score_chunk = [&](size_t i) {
    const nn::NoGradGuard no_grad;
    const nn::ArenaScope arena_scope;
    const data::ElemeBatch batch = MakeElemeBatch(dataset, chunks[i]);
    const auto predictions =
        model.PredictColdStart(batch.restaurant_profile, batch.user_group);
    ChunkResult& out = results[i];
    out.vppv_pred = predictions.vppv;
    out.gmv_pred = predictions.gmv;
    out.vppv_true.reserve(static_cast<size_t>(batch.vppv.rows()));
    out.gmv_true.reserve(static_cast<size_t>(batch.gmv.rows()));
    for (int64_t r = 0; r < batch.vppv.rows(); ++r) {
      out.vppv_true.push_back(batch.vppv.at(r, 0));
      out.gmv_true.push_back(batch.gmv.at(r, 0));
    }
  };
  if (pool != nullptr && chunks.size() > 1) {
    pool->ParallelFor(chunks.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) score_chunk(i);
    });
  } else {
    for (size_t i = 0; i < chunks.size(); ++i) score_chunk(i);
  }
  std::vector<double> vppv_pred;
  std::vector<double> gmv_pred;
  std::vector<float> vppv_true;
  std::vector<float> gmv_true;
  for (ChunkResult& chunk : results) {
    vppv_pred.insert(vppv_pred.end(), chunk.vppv_pred.begin(),
                     chunk.vppv_pred.end());
    gmv_pred.insert(gmv_pred.end(), chunk.gmv_pred.begin(),
                    chunk.gmv_pred.end());
    vppv_true.insert(vppv_true.end(), chunk.vppv_true.begin(),
                     chunk.vppv_true.end());
    gmv_true.insert(gmv_true.end(), chunk.gmv_true.begin(),
                    chunk.gmv_true.end());
  }
  ElemeEval eval;
  eval.vppv_mae = metrics::MeanAbsoluteError(vppv_pred, vppv_true);
  eval.gmv_mae = metrics::MeanAbsoluteError(gmv_pred, gmv_true);
  return eval;
}

ElemeNormalizers NormalizeElemeInPlace(data::ElemeDataset* dataset) {
  ElemeNormalizers norms;
  // Fit on the trainside restaurants only (new applicants are the target
  // distribution of the online experiment and must not shape the scaler in
  // a way the deployed system could not have done — using the 80% train
  // rows mirrors production practice).
  std::vector<int64_t> fit_rows = dataset->train_indices;
  norms.profile =
      data::Normalizer::Fit(dataset->restaurant_profiles, fit_rows);
  norms.profile.Apply(&dataset->restaurant_profiles);
  norms.stats = data::Normalizer::Fit(dataset->restaurant_stats, fit_rows);
  norms.stats.Apply(&dataset->restaurant_stats);
  norms.group = data::Normalizer::Fit(dataset->user_groups);
  norms.group.Apply(&dataset->user_groups);
  return norms;
}

}  // namespace atnn::core
