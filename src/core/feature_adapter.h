#ifndef ATNN_CORE_FEATURE_ADAPTER_H_
#define ATNN_CORE_FEATURE_ADAPTER_H_

#include <vector>

#include "data/normalize.h"
#include "data/schema.h"
#include "data/tmall.h"
#include "nn/layers.h"

namespace atnn::core {

/// Embedding specs (one table per categorical feature) for a data schema.
/// Embedding widths come from the schema's per-feature embed_dim, matching
/// the paper's setup (user id -> 16 dims, item category -> 6 dims, ...).
std::vector<nn::EmbeddingFieldSpec> ToEmbeddingSpecs(
    const data::FeatureSchema& schema);

/// Flattens a gathered block into plain floats for GBDT: categorical ids
/// become ordinal floats followed by the numeric columns. Trees split on
/// thresholds, so ordinal encoding gives GBDT *some* access to categorical
/// structure — deliberately imperfect, as in production GBDT baselines.
nn::Tensor FlattenBlockForGbdt(const data::BlockBatch& block);

/// Column-concatenates flattened blocks into one GBDT feature matrix.
nn::Tensor ConcatForGbdt(const std::vector<const data::BlockBatch*>& blocks);

/// Normalizers for the three Tmall feature tables, fit only on rows the
/// training split can see (all users, catalog items).
struct TmallNormalizers {
  data::Normalizer user;
  data::Normalizer item_profile;
  data::Normalizer item_stats;
};

/// Fits normalizers and standardizes the dataset's numeric columns in
/// place. Call exactly once after GenerateTmallDataset. The statistics rows
/// of new arrivals are zeros before and remain unused after.
TmallNormalizers NormalizeTmallInPlace(data::TmallDataset* dataset);

}  // namespace atnn::core

#endif  // ATNN_CORE_FEATURE_ADAPTER_H_
