#include "core/user_clusters.h"

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "core/trainer.h"

namespace atnn::core {

namespace {

double SquaredDistance(const float* a, const float* b, int64_t dim) {
  double total = 0.0;
  for (int64_t c = 0; c < dim; ++c) {
    const double diff = static_cast<double>(a[c]) - b[c];
    total += diff * diff;
  }
  return total;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

KMeansResult RunKMeans(const nn::Tensor& points, const KMeansConfig& config) {
  const int64_t n = points.rows();
  const int64_t dim = points.cols();
  const int k = config.num_clusters;
  ATNN_CHECK(k >= 1);
  ATNN_CHECK(n >= k) << "need at least k points";

  Rng rng(config.seed);
  KMeansResult result;
  result.centroids = nn::Tensor(k, dim);

  // --- k-means++ seeding ---
  std::vector<double> min_distance(static_cast<size_t>(n),
                                   std::numeric_limits<double>::max());
  {
    const auto first = static_cast<int64_t>(rng.UniformInt(uint64_t(n)));
    std::copy(points.row_ptr(first), points.row_ptr(first) + dim,
              result.centroids.row_ptr(0));
    for (int c = 1; c < k; ++c) {
      // Update distances to the nearest chosen centroid.
      for (int64_t i = 0; i < n; ++i) {
        const double d = SquaredDistance(
            points.row_ptr(i), result.centroids.row_ptr(c - 1), dim);
        min_distance[static_cast<size_t>(i)] =
            std::min(min_distance[static_cast<size_t>(i)], d);
      }
      double total_distance = 0.0;
      for (double d : min_distance) total_distance += d;
      // All-identical points: fall back to uniform choice.
      const size_t chosen =
          total_distance > 0.0
              ? rng.Categorical(min_distance)
              : static_cast<size_t>(rng.UniformInt(uint64_t(n)));
      std::copy(points.row_ptr(static_cast<int64_t>(chosen)),
                points.row_ptr(static_cast<int64_t>(chosen)) + dim,
                result.centroids.row_ptr(c));
    }
  }

  // --- Lloyd iterations ---
  result.assignment.assign(static_cast<size_t>(n), 0);
  result.cluster_sizes.assign(static_cast<size_t>(k), 0);
  double previous_inertia = std::numeric_limits<double>::max();
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    // Assign.
    double inertia = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      int32_t best_cluster = 0;
      for (int c = 0; c < k; ++c) {
        const double d = SquaredDistance(points.row_ptr(i),
                                         result.centroids.row_ptr(c), dim);
        if (d < best) {
          best = d;
          best_cluster = c;
        }
      }
      result.assignment[static_cast<size_t>(i)] = best_cluster;
      inertia += best;
    }
    result.inertia = inertia;
    result.iterations = iter + 1;

    // Update.
    result.centroids.SetZero();
    std::fill(result.cluster_sizes.begin(), result.cluster_sizes.end(), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int32_t c = result.assignment[static_cast<size_t>(i)];
      ++result.cluster_sizes[static_cast<size_t>(c)];
      float* centroid = result.centroids.row_ptr(c);
      const float* point = points.row_ptr(i);
      for (int64_t d = 0; d < dim; ++d) centroid[d] += point[d];
    }
    for (int c = 0; c < k; ++c) {
      const int64_t size = result.cluster_sizes[static_cast<size_t>(c)];
      if (size > 0) {
        float* centroid = result.centroids.row_ptr(c);
        for (int64_t d = 0; d < dim; ++d) {
          centroid[d] /= static_cast<float>(size);
        }
      } else {
        // Re-seed empty clusters at a random point.
        const auto pick = static_cast<int64_t>(rng.UniformInt(uint64_t(n)));
        std::copy(points.row_ptr(pick), points.row_ptr(pick) + dim,
                  result.centroids.row_ptr(c));
      }
    }

    if (previous_inertia - inertia <
        config.tolerance * std::max(previous_inertia, 1e-12)) {
      break;
    }
    previous_inertia = inertia;
  }
  return result;
}

ClusteredPopularityPredictor::ClusteredPopularityPredictor(
    nn::Tensor cluster_means, std::vector<double> weights, float bias)
    : cluster_means_(std::move(cluster_means)),
      weights_(std::move(weights)),
      bias_(bias) {}

ClusteredPopularityPredictor ClusteredPopularityPredictor::Build(
    const AtnnModel& model, const data::TmallDataset& dataset,
    const std::vector<int64_t>& user_group, const KMeansConfig& config,
    int batch_size) {
  ATNN_CHECK(!user_group.empty());
  const nn::NoGradGuard no_grad;
  // Materialize all user vectors for the group.
  nn::Tensor user_vectors(static_cast<int64_t>(user_group.size()),
                          model.vector_dim());
  int64_t row = 0;
  for (const auto& chunk : MakeBatches(user_group, batch_size)) {
    const nn::ArenaScope arena_scope;  // per-chunk tensors, freed at once
    const data::BlockBatch block = data::GatherBlock(dataset.users, chunk);
    nn::Var vectors = model.UserVector(block);
    for (int64_t r = 0; r < vectors.rows(); ++r, ++row) {
      std::copy(vectors.value().row_ptr(r),
                vectors.value().row_ptr(r) + vectors.cols(),
                user_vectors.row_ptr(row));
    }
  }

  const KMeansResult clusters = RunKMeans(user_vectors, config);
  std::vector<double> weights(clusters.cluster_sizes.size());
  for (size_t c = 0; c < weights.size(); ++c) {
    weights[c] = static_cast<double>(clusters.cluster_sizes[c]) /
                 static_cast<double>(user_group.size());
  }
  return ClusteredPopularityPredictor(clusters.centroids, std::move(weights),
                                      model.generator_bias_value());
}

double ClusteredPopularityPredictor::ScoreVector(const float* item_vector,
                                                 int64_t dim) const {
  ATNN_DCHECK_EQ(dim, cluster_means_.cols());
  double total = 0.0;
  for (int c = 0; c < num_clusters(); ++c) {
    const float* mean = cluster_means_.row_ptr(c);
    double dot = 0.0;
    for (int64_t d = 0; d < dim; ++d) dot += item_vector[d] * mean[d];
    total += weights_[static_cast<size_t>(c)] * Sigmoid(dot + bias_);
  }
  return total;
}

std::vector<double> ClusteredPopularityPredictor::ScoreItems(
    const AtnnModel& model, const data::TmallDataset& dataset,
    const std::vector<int64_t>& item_rows, int batch_size) const {
  const nn::NoGradGuard no_grad;
  std::vector<double> scores;
  scores.reserve(item_rows.size());
  for (const auto& chunk : MakeBatches(item_rows, batch_size)) {
    const nn::ArenaScope arena_scope;
    const data::BlockBatch block =
        data::GatherBlock(dataset.item_profiles, chunk);
    nn::Var vectors = model.GeneratorItemVector(block);
    for (int64_t r = 0; r < vectors.rows(); ++r) {
      scores.push_back(
          ScoreVector(vectors.value().row_ptr(r), vectors.cols()));
    }
  }
  return scores;
}

}  // namespace atnn::core
