#ifndef ATNN_CORE_TRAINER_H_
#define ATNN_CORE_TRAINER_H_

#include <span>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics_registry.h"
#include "core/atnn.h"
#include "core/negative_cache.h"
#include "core/two_tower.h"
#include "data/normalize.h"
#include "data/tmall.h"

namespace atnn::core {

/// Shared knobs of the mini-batch training loops.
struct TrainOptions {
  int epochs = 3;
  int batch_size = 256;
  float learning_rate = 1e-3f;
  /// Global-norm gradient clipping; 0 disables.
  float clip_norm = 5.0f;
  /// Multiplicative learning-rate decay applied before each epoch after
  /// the first (1.0 = constant rate).
  float lr_decay_per_epoch = 1.0f;
  /// Decoupled (AdamW) weight decay; 0 disables.
  float weight_decay = 0.0f;
  uint64_t seed = 99;
  bool verbose = false;
  /// Optional worker pool (not owned). When set, the batch for step t+1 is
  /// gathered on the pool while step t runs its forward/backward — the
  /// loss history stays bitwise identical to the serial loop (same seed,
  /// same shuffle, same batch order; only batch *assembly* moves off the
  /// training thread). nullptr = fully serial.
  ThreadPool* pool = nullptr;
  /// Optional metrics sink (not owned). When set, the loops record counter
  /// `train.steps`, histograms `train.step_us` / `train.epoch_ms`, and
  /// per-epoch gauges `train.epoch`, `train.loss_*`,
  /// `train.arena_high_water_bytes`. Recording is lock-free per step; see
  /// core/train_telemetry.h.
  obs::MetricsRegistry* metrics = nullptr;
  /// With `metrics` set, print one "ATNN_METRICS {json}" line per epoch
  /// (the machine-readable twin of `verbose`; atnn_train turns this on).
  bool emit_metric_lines = false;

  // --- Streaming/incremental switches (DESIGN.md §17). Both default off,
  // and off means the ATNN loop builds exactly the historical graphs in
  // the historical order — loss histories stay bitwise-identical to
  // pre-switch builds.

  /// Cross-batch negative sampling (CBNS, arXiv:2110.15154): add the
  /// embeddings cached in `negative_cache` as extra label-0 logits against
  /// the current batch's user vectors in the D step, and push each batch's
  /// generated item vectors into the cache after the G step. Requires
  /// `negative_cache`.
  bool cross_batch_negatives = false;
  /// Weight of the cached-negative BCE term in the D-step loss.
  float negative_weight = 0.1f;
  /// Embedding FIFO backing cross_batch_negatives (not owned). Contents
  /// persist across calls on purpose: in the streaming trainer, day d+1's
  /// first batches see day d's tail cohort as negatives.
  NegativeCache* negative_cache = nullptr;
  /// One Backpropagation (arXiv:2403.18227): run only one adversarial
  /// half-step per batch — even global steps take the D step, odd steps
  /// the G step — instead of both. Gradient flows to one tower per step,
  /// halving the per-batch backward cost; the alternation preserves the
  /// adversarial schedule at epoch scale.
  bool one_backprop = false;

  /// InvalidArgument on junk that today trains garbage silently:
  /// non-positive epochs/batch_size (zero-step "histories"), non-finite or
  /// negative learning_rate (NaN parameters by step two), non-finite or
  /// non-positive lr_decay_per_epoch, non-finite or negative
  /// clip_norm/weight_decay/negative_weight, and cross_batch_negatives
  /// without a cache. Every trainer entry point checks this and aborts on
  /// failure (the StreamingTrainer surfaces it as a Status instead).
  Status Validate() const;
};

/// Per-epoch averages of the three paper losses (unused entries are 0).
struct EpochStats {
  double loss_i = 0.0;  // encoder-path CTR log loss (L_i)
  double loss_g = 0.0;  // generator-path CTR log loss (L_g)
  double loss_s = 0.0;  // similarity loss (L_s)
};

/// Trains a two-tower baseline with Adam on L_i over the train split.
/// An empty train split returns an empty history (no NaN epoch rows).
std::vector<EpochStats> TrainTwoTowerModel(TwoTowerModel* model,
                                           const data::TmallDataset& dataset,
                                           const TrainOptions& options);

/// Trains ATNN per Algorithm 1: for every mini-batch, a D step on L_i
/// followed by a G step on L_g + lambda * L_s.
/// An empty train split returns an empty history (no NaN epoch rows).
std::vector<EpochStats> TrainAtnnModel(AtnnModel* model,
                                       const data::TmallDataset& dataset,
                                       const TrainOptions& options);

/// The incremental entry point behind TrainAtnnModel: same Algorithm 1
/// loop, but over an explicit interaction-index set instead of the
/// dataset's train split. The streaming trainer calls this once per
/// arrival-stream day with the day's cohort feedback (plus optional
/// replay), warm-starting from the weights the previous day left in
/// `model`. Optimizer moments are rebuilt per call (periodic-retrain
/// semantics: warm weights, fresh Adam state). TrainAtnnModel(model,
/// dataset, options) is exactly TrainAtnnOnIndices over
/// dataset.train_indices — bitwise, not just statistically.
std::vector<EpochStats> TrainAtnnOnIndices(AtnnModel* model,
                                           const data::TmallDataset& dataset,
                                           std::span<const int64_t> indices,
                                           const TrainOptions& options);

/// Which scoring path to evaluate.
enum class CtrPath {
  kEncoder,    // complete item features (ideal baseline column of Table I)
  kGenerator,  // item profiles only (cold-start column of Table I)
};

/// Test-set AUC of a two-tower baseline. All Evaluate* functions run their
/// forwards in no-grad mode; when a pool is given, the MakeBatches chunks
/// are scored across the pool and merged in deterministic chunk order, so
/// the score sequence (and hence the metric) is identical to the serial
/// path.
double EvaluateTwoTowerAuc(const TwoTowerModel& model,
                           const data::TmallDataset& dataset,
                           const std::vector<int64_t>& interaction_indices,
                           int batch_size = 1024, ThreadPool* pool = nullptr);

/// Overwrites a gathered (already normalized) statistics block with the
/// representation of *missing* statistics: train-mean imputation, which in
/// standardized space is all zeros. This is the cold-start serving
/// condition a complete-features-trained baseline faces on new arrivals —
/// the statistics do not exist, the pipeline fills in the default.
void MaskStatsAsMissing(data::BlockBatch* stats);

/// Test-set AUC of a complete-features-trained two-tower baseline when the
/// item statistics are missing (mean-imputed) at evaluation time — Table
/// I's cold-start column for the baselines.
double EvaluateTwoTowerAucMissingStats(
    const TwoTowerModel& model, const data::TmallDataset& dataset,
    const std::vector<int64_t>& interaction_indices, int batch_size = 1024,
    ThreadPool* pool = nullptr);

/// Test-set AUC of ATNN through the chosen path.
double EvaluateAtnnAuc(const AtnnModel& model,
                       const data::TmallDataset& dataset,
                       const std::vector<int64_t>& interaction_indices,
                       CtrPath path, int batch_size = 1024,
                       ThreadPool* pool = nullptr);

/// Splits `indices` into contiguous chunks of at most batch_size.
std::vector<std::vector<int64_t>> MakeBatches(
    const std::vector<int64_t>& indices, int batch_size);

/// View-based MakeBatches: the returned spans alias `indices`, so the hot
/// shuffle-then-batch loop allocates O(num_batches) span headers instead of
/// O(dataset) copied ids per epoch. `indices` must outlive (and not be
/// reallocated or reshuffled under) the returned views.
std::vector<std::span<const int64_t>> MakeBatchSpans(
    std::span<const int64_t> indices, int batch_size);

}  // namespace atnn::core

#endif  // ATNN_CORE_TRAINER_H_
