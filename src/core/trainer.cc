#include "core/trainer.h"

#include <cmath>

#include "common/logging.h"
#include "common/prefetcher.h"
#include "common/rng.h"
#include "core/train_telemetry.h"
#include "metrics/metrics.h"
#include "nn/arena.h"
#include "nn/autograd.h"
#include "nn/optimizer.h"
#include "obs/trace_span.h"

namespace atnn::core {

Status TrainOptions::Validate() const {
  if (epochs <= 0) {
    return Status::InvalidArgument("epochs must be >= 1");
  }
  if (batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (!std::isfinite(learning_rate) || learning_rate < 0.0f) {
    return Status::InvalidArgument(
        "learning_rate must be finite and >= 0");
  }
  if (!std::isfinite(lr_decay_per_epoch) || lr_decay_per_epoch <= 0.0f) {
    return Status::InvalidArgument(
        "lr_decay_per_epoch must be finite and > 0");
  }
  if (!std::isfinite(clip_norm) || clip_norm < 0.0f) {
    return Status::InvalidArgument("clip_norm must be finite and >= 0");
  }
  if (!std::isfinite(weight_decay) || weight_decay < 0.0f) {
    return Status::InvalidArgument("weight_decay must be finite and >= 0");
  }
  if (!std::isfinite(negative_weight) || negative_weight < 0.0f) {
    return Status::InvalidArgument(
        "negative_weight must be finite and >= 0");
  }
  if (cross_batch_negatives && negative_cache == nullptr) {
    return Status::InvalidArgument(
        "cross_batch_negatives requires a negative_cache");
  }
  return Status::OK();
}

namespace {

/// Aborting wrapper shared by the vector-returning trainer entry points
/// (they predate Status plumbing; the StreamingTrainer path validates the
/// same options and returns the Status instead).
void CheckTrainOptions(const TrainOptions& options) {
  const Status valid = options.Validate();
  ATNN_CHECK(valid.ok()) << "invalid TrainOptions: " << valid.ToString();
}

}  // namespace

std::vector<std::vector<int64_t>> MakeBatches(
    const std::vector<int64_t>& indices, int batch_size) {
  ATNN_CHECK(batch_size > 0);
  std::vector<std::vector<int64_t>> batches;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(batch_size)) {
    const size_t end =
        std::min(begin + static_cast<size_t>(batch_size), indices.size());
    batches.emplace_back(indices.begin() + begin, indices.begin() + end);
  }
  return batches;
}

std::vector<std::span<const int64_t>> MakeBatchSpans(
    std::span<const int64_t> indices, int batch_size) {
  ATNN_CHECK(batch_size > 0);
  const auto step = static_cast<size_t>(batch_size);
  std::vector<std::span<const int64_t>> batches;
  batches.reserve((indices.size() + step - 1) / step);
  for (size_t begin = 0; begin < indices.size(); begin += step) {
    batches.push_back(
        indices.subspan(begin, std::min(step, indices.size() - begin)));
  }
  return batches;
}

namespace {

/// Runs fn(i) for i in [0, count), across the pool when one is provided.
/// Used by the evaluation paths: every chunk writes only its own slot, and
/// the caller merges slots in chunk order, so results match the serial
/// loop exactly.
void ForEachChunkIndex(ThreadPool* pool, size_t count,
                       const std::function<void(size_t)>& fn) {
  if (pool == nullptr || count < 2) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->ParallelFor(count, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Concatenates per-chunk score vectors in chunk order.
std::vector<double> MergeChunks(std::vector<std::vector<double>>* chunks,
                                size_t total) {
  std::vector<double> merged;
  merged.reserve(total);
  for (auto& chunk : *chunks) {
    merged.insert(merged.end(), chunk.begin(), chunk.end());
  }
  return merged;
}

}  // namespace

std::vector<EpochStats> TrainTwoTowerModel(TwoTowerModel* model,
                                           const data::TmallDataset& dataset,
                                           const TrainOptions& options) {
  CheckTrainOptions(options);
  if (dataset.train_indices.empty()) {
    ATNN_LOG(Warning) << "TrainTwoTowerModel: empty train split, nothing to "
                         "do; returning empty history";
    return {};
  }
  nn::Adam optimizer(model->Parameters(), options.learning_rate, 0.9f,
                     0.999f, 1e-8f, options.weight_decay);
  Rng rng(options.seed);
  std::vector<int64_t> order = dataset.train_indices;
  std::vector<EpochStats> history;
  TrainTelemetry telemetry(options.metrics, options.emit_metric_lines);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const auto epoch_start = TrainTelemetry::Now();
    if (epoch > 0 && options.lr_decay_per_epoch != 1.0f) {
      optimizer.set_learning_rate(optimizer.learning_rate() *
                                  options.lr_decay_per_epoch);
    }
    rng.Shuffle(&order);
    // `order` is stable until the next epoch's shuffle, so the prefetcher
    // may gather batch t+1 from these views while batch t trains.
    const std::vector<std::span<const int64_t>> batches =
        MakeBatchSpans(order, options.batch_size);
    Prefetcher<data::CtrBatch> batches_ahead(
        options.pool, batches.size(), [&dataset, &batches](size_t i) {
          return data::MakeCtrBatch(dataset, batches[i]);
        });
    EpochStats stats;
    int64_t steps = 0;
    while (batches_ahead.HasNext()) {
      const data::CtrBatch batch = batches_ahead.Next();
      const obs::ScopedTimer step_timer(telemetry.step_sink());
      telemetry.RecordStep();
      // Step-scoped tensors (graph nodes, activations, gradients of
      // non-parameters) come from the thread arena and are released in one
      // rewind here; after the first few steps grow the arena, a step
      // performs no heap allocations.
      const nn::ArenaScope arena_scope;
      optimizer.ZeroGrad();
      nn::Var logits =
          model->ScoreLogits(model->ItemVector(batch.item_profile,
                                               batch.item_stats),
                             model->UserVector(batch.user));
      nn::Var loss = nn::SigmoidBceLossWithLogits(logits, batch.labels);
      nn::Backward(loss);
      if (options.clip_norm > 0.0f) optimizer.ClipGradNorm(options.clip_norm);
      optimizer.Step();
      stats.loss_i += loss.value().scalar();
      ++steps;
    }
    stats.loss_i /= static_cast<double>(steps);
    history.push_back(stats);
    telemetry.EndEpoch(epoch, TrainTelemetry::MsSince(epoch_start),
                       {{"loss_i", stats.loss_i}});
    if (options.verbose) {
      ATNN_LOG(Info) << "two-tower epoch " << epoch + 1 << "/"
                     << options.epochs << " L_i=" << stats.loss_i;
    }
  }
  return history;
}

std::vector<EpochStats> TrainAtnnModel(AtnnModel* model,
                                       const data::TmallDataset& dataset,
                                       const TrainOptions& options) {
  return TrainAtnnOnIndices(model, dataset, dataset.train_indices, options);
}

std::vector<EpochStats> TrainAtnnOnIndices(AtnnModel* model,
                                           const data::TmallDataset& dataset,
                                           std::span<const int64_t> indices,
                                           const TrainOptions& options) {
  CheckTrainOptions(options);
  if (indices.empty()) {
    ATNN_LOG(Warning) << "TrainAtnnOnIndices: empty index set, nothing to "
                         "do; returning empty history";
    return {};
  }
  // Two optimizers over disjoint parameter groups, per Algorithm 1.
  nn::Adam optimizer_d(model->DiscriminatorParameters(),
                       options.learning_rate, 0.9f, 0.999f, 1e-8f,
                       options.weight_decay);
  nn::Adam optimizer_g(model->GeneratorParameters(), options.learning_rate,
                       0.9f, 0.999f, 1e-8f, options.weight_decay);
  // A G-step backward also deposits gradients into frozen discriminator
  // parameters; clear everything between half-steps so nothing leaks.
  const std::vector<nn::Parameter*> all_params = model->Parameters();

  Rng rng(options.seed);
  std::vector<int64_t> order(indices.begin(), indices.end());
  std::vector<EpochStats> history;
  TrainTelemetry telemetry(options.metrics, options.emit_metric_lines);
  // Global step counter across epochs — the one-backprop alternation must
  // not reset at epoch boundaries or odd-step-count epochs would starve
  // one tower.
  int64_t global_step = 0;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    const auto epoch_start = TrainTelemetry::Now();
    if (epoch > 0 && options.lr_decay_per_epoch != 1.0f) {
      optimizer_d.set_learning_rate(optimizer_d.learning_rate() *
                                    options.lr_decay_per_epoch);
      optimizer_g.set_learning_rate(optimizer_g.learning_rate() *
                                    options.lr_decay_per_epoch);
    }
    rng.Shuffle(&order);
    const std::vector<std::span<const int64_t>> batches =
        MakeBatchSpans(order, options.batch_size);
    Prefetcher<data::CtrBatch> batches_ahead(
        options.pool, batches.size(), [&dataset, &batches](size_t i) {
          return data::MakeCtrBatch(dataset, batches[i]);
        });
    EpochStats stats;
    int64_t steps_d = 0;
    int64_t steps_g = 0;
    while (batches_ahead.HasNext()) {
      const data::CtrBatch batch = batches_ahead.Next();
      const obs::ScopedTimer step_timer(telemetry.step_sink());
      telemetry.RecordStep();
      // One arena scope spans both half-steps; see TrainTwoTowerModel.
      const nn::ArenaScope arena_scope;
      // One-backprop alternation: with the switch on, each batch runs a
      // single half-step (even global steps train D, odd train G); off,
      // both run — the historical Algorithm 1 schedule.
      const bool run_d = !options.one_backprop || global_step % 2 == 0;
      const bool run_g = !options.one_backprop || global_step % 2 == 1;
      ++global_step;

      if (run_d) {
        // --- D step: minimize L_i through the encoder path. ---
        nn::ZeroAllGrads(all_params);
        nn::Var user_vec = model->UserVector(batch.user);
        nn::Var enc_vec =
            model->EncoderItemVector(batch.item_profile, batch.item_stats);
        nn::Var loss_i = nn::SigmoidBceLossWithLogits(
            model->EncoderLogits(enc_vec, user_vec), batch.labels);
        nn::Var d_objective = loss_i;
        if (options.cross_batch_negatives &&
            options.negative_cache->total_rows() > 0) {
          // CBNS: the cached generated vectors of recent batches act as
          // extra label-0 impressions against this batch's users. The
          // cached side enters as a constant, so the gradient reshapes
          // only the user tower — the tower this half-step owns; the
          // cache itself is refreshed by the G step below. loss_i (the
          // reported stat) stays the pure CTR log loss.
          nn::Var neg_logits =
              nn::MatMul(user_vec,
                         nn::Constant(
                             options.negative_cache->GatherTransposed()));
          nn::Var loss_neg = nn::SigmoidBceLossWithLogits(
              neg_logits,
              nn::Tensor::Zeros(batch.labels.rows(),
                                options.negative_cache->total_rows()));
          d_objective =
              nn::Add(loss_i, nn::Scale(loss_neg, options.negative_weight));
        }
        nn::Backward(d_objective);
        if (options.clip_norm > 0.0f) {
          optimizer_d.ClipGradNorm(options.clip_norm);
        }
        optimizer_d.Step();
        stats.loss_i += loss_i.value().scalar();
        ++steps_d;
      }

      if (run_g) {
        // --- G step: minimize L_g + lambda * L_s. ---
        nn::ZeroAllGrads(all_params);
        // Recompute with updated discriminator weights; the user vector
        // and encoder target are treated as fixed inputs in this
        // half-step.
        nn::Var user_vec_g = model->UserVector(batch.user);
        nn::Var enc_vec_g =
            model->EncoderItemVector(batch.item_profile, batch.item_stats);
        nn::Var gen_vec = model->GeneratorItemVector(batch.item_profile);
        nn::Var loss_g = nn::SigmoidBceLossWithLogits(
            model->GeneratorLogits(gen_vec, user_vec_g), batch.labels);
        nn::Var loss_s = model->SimilarityLoss(gen_vec, enc_vec_g);
        nn::Var total = nn::Add(loss_g, nn::Scale(loss_s,
                                                  model->config().lambda));
        nn::Backward(total);
        if (options.clip_norm > 0.0f) {
          optimizer_g.ClipGradNorm(options.clip_norm);
        }
        optimizer_g.Step();
        if (options.cross_batch_negatives) {
          // Detach and enqueue this batch's generated vectors for future
          // steps (the cache copies to the heap; gen_vec itself is
          // arena-scoped).
          options.negative_cache->Push(gen_vec.value());
        }
        stats.loss_g += loss_g.value().scalar();
        stats.loss_s += loss_s.value().scalar();
        ++steps_g;
      }
    }
    // With one_backprop each loss averages over the half-steps that
    // actually ran; with it off, steps_d == steps_g == the batch count and
    // the arithmetic is bit-for-bit the historical division.
    if (steps_d > 0) stats.loss_i /= static_cast<double>(steps_d);
    if (steps_g > 0) {
      stats.loss_g /= static_cast<double>(steps_g);
      stats.loss_s /= static_cast<double>(steps_g);
    }
    history.push_back(stats);
    telemetry.EndEpoch(epoch, TrainTelemetry::MsSince(epoch_start),
                       {{"loss_i", stats.loss_i},
                        {"loss_g", stats.loss_g},
                        {"loss_s", stats.loss_s}});
    if (options.verbose) {
      ATNN_LOG(Info) << "atnn epoch " << epoch + 1 << "/" << options.epochs
                     << " L_i=" << stats.loss_i << " L_g=" << stats.loss_g
                     << " L_s=" << stats.loss_s;
    }
  }
  return history;
}

namespace {

/// Collects labels for the given interaction indices.
std::vector<float> GatherLabels(const data::TmallDataset& dataset,
                                const std::vector<int64_t>& indices) {
  std::vector<float> labels;
  labels.reserve(indices.size());
  for (int64_t idx : indices) {
    labels.push_back(dataset.labels[static_cast<size_t>(idx)]);
  }
  return labels;
}

}  // namespace

double EvaluateTwoTowerAuc(const TwoTowerModel& model,
                           const data::TmallDataset& dataset,
                           const std::vector<int64_t>& interaction_indices,
                           int batch_size, ThreadPool* pool) {
  const std::vector<std::span<const int64_t>> chunks =
      MakeBatchSpans(interaction_indices, batch_size);
  std::vector<std::vector<double>> chunk_scores(chunks.size());
  ForEachChunkIndex(pool, chunks.size(), [&](size_t i) {
    const nn::NoGradGuard no_grad;
    const nn::ArenaScope arena_scope;  // per-chunk tensors, freed at once
    const data::CtrBatch batch = MakeCtrBatch(dataset, chunks[i]);
    chunk_scores[i] =
        model.PredictCtr(batch.user, batch.item_profile, batch.item_stats);
  });
  return metrics::Auc(MergeChunks(&chunk_scores, interaction_indices.size()),
                      GatherLabels(dataset, interaction_indices));
}

void MaskStatsAsMissing(data::BlockBatch* stats) {
  // Standardized columns: the train mean is exactly zero.
  stats->numeric.SetZero();
}

double EvaluateTwoTowerAucMissingStats(
    const TwoTowerModel& model, const data::TmallDataset& dataset,
    const std::vector<int64_t>& interaction_indices, int batch_size,
    ThreadPool* pool) {
  const std::vector<std::span<const int64_t>> chunks =
      MakeBatchSpans(interaction_indices, batch_size);
  std::vector<std::vector<double>> chunk_scores(chunks.size());
  ForEachChunkIndex(pool, chunks.size(), [&](size_t i) {
    const nn::NoGradGuard no_grad;
    const nn::ArenaScope arena_scope;
    data::CtrBatch batch = MakeCtrBatch(dataset, chunks[i]);
    MaskStatsAsMissing(&batch.item_stats);
    chunk_scores[i] =
        model.PredictCtr(batch.user, batch.item_profile, batch.item_stats);
  });
  return metrics::Auc(MergeChunks(&chunk_scores, interaction_indices.size()),
                      GatherLabels(dataset, interaction_indices));
}

double EvaluateAtnnAuc(const AtnnModel& model,
                       const data::TmallDataset& dataset,
                       const std::vector<int64_t>& interaction_indices,
                       CtrPath path, int batch_size, ThreadPool* pool) {
  const std::vector<std::span<const int64_t>> chunks =
      MakeBatchSpans(interaction_indices, batch_size);
  std::vector<std::vector<double>> chunk_scores(chunks.size());
  ForEachChunkIndex(pool, chunks.size(), [&](size_t i) {
    const nn::NoGradGuard no_grad;
    const nn::ArenaScope arena_scope;
    const data::CtrBatch batch = MakeCtrBatch(dataset, chunks[i]);
    chunk_scores[i] =
        path == CtrPath::kEncoder
            ? model.PredictCtrEncoder(batch.user, batch.item_profile,
                                      batch.item_stats)
            : model.PredictCtrGenerator(batch.user, batch.item_profile);
  });
  return metrics::Auc(MergeChunks(&chunk_scores, interaction_indices.size()),
                      GatherLabels(dataset, interaction_indices));
}

}  // namespace atnn::core
