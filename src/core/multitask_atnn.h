#ifndef ATNN_CORE_MULTITASK_ATNN_H_
#define ATNN_CORE_MULTITASK_ATNN_H_

#include <memory>
#include <vector>

#include "core/atnn.h"  // SimilarityMode
#include "data/eleme.h"
#include "data/schema.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace atnn::core {

/// Hyper-parameters of the extended multi-task ATNN (Section V). Two
/// regression heads (GMV and VpPV) share the restaurant representation;
/// Algorithm 2 alternates a D step on
///   L_r^{GMV} + lambda1 * L_r^{VpPV}
/// and a G step on
///   L_g^{GMV} + lambda1 * L_g^{VpPV} + lambda2 * L_s.
struct MultiTaskAtnnConfig {
  nn::TowerConfig tower;
  bool share_embeddings = true;
  SimilarityMode similarity = SimilarityMode::kCosine;
  /// Weight of the VpPV loss relative to the GMV loss. The paper uses 100
  /// on its (unnormalized) production scales; with our log-GMV labels the
  /// two losses are closer in magnitude, so the default is smaller.
  float lambda1 = 25.0f;
  /// Weight of the similarity loss in the G step (paper: 10).
  float lambda2 = 10.0f;
  /// When false, the model degenerates to the multi-task TNN-DCN baseline
  /// of Table IV: a single profile-only encoder trained directly on the
  /// labels, with no generator and no similarity loss.
  bool adversarial = true;
  uint64_t seed = 17;
};

/// Extended ATNN for new-restaurant popularity prediction. The "user" side
/// is a location-cell user *group* tower (mean-user features), making every
/// prediction O(1) in the number of users by construction.
class MultiTaskAtnnModel : public nn::Module {
 public:
  MultiTaskAtnnModel(const data::FeatureSchema& restaurant_profile_schema,
                     const data::FeatureSchema& restaurant_stats_schema,
                     const data::FeatureSchema& user_group_schema,
                     const MultiTaskAtnnConfig& config);

  /// User-group vector f_u(X_u): [batch, d].
  nn::Var GroupVector(const data::BlockBatch& group) const;

  /// Encoder restaurant vector f_i(X_i). With adversarial=true this
  /// consumes profiles + statistics; with adversarial=false (baseline) it
  /// consumes profiles only.
  nn::Var EncoderVector(const data::BlockBatch& profile,
                        const data::BlockBatch& stats) const;

  /// Generated restaurant vector g(X_ip) from profiles only.
  /// Requires adversarial=true.
  nn::Var GeneratorVector(const data::BlockBatch& profile) const;

  /// Task heads H(item_vec, user_vec): shared across the encoder and
  /// generator paths (the paper's shared-network multi-task device).
  nn::Var PredictGmv(const nn::Var& item_vec, const nn::Var& group_vec) const;
  nn::Var PredictVppv(const nn::Var& item_vec,
                      const nn::Var& group_vec) const;

  /// L_s between generated and (frozen) encoder vectors.
  nn::Var SimilarityLoss(const nn::Var& gen_vec,
                         const nn::Var& encoder_vec) const;

  /// Inference: (vppv, gmv) predictions for a batch through the cold-start
  /// path — the generator when adversarial, the profile-only encoder for
  /// the baseline. Works for brand-new restaurants.
  struct Predictions {
    std::vector<double> vppv;
    std::vector<double> gmv;
  };
  Predictions PredictColdStart(const data::BlockBatch& profile,
                               const data::BlockBatch& group) const;

  /// D-step parameters: group tower + embeddings, encoder + profile
  /// embeddings, both task heads.
  std::vector<nn::Parameter*> DiscriminatorParameters();
  /// G-step parameters: generator tower (+ private embeddings if not
  /// shared). Task heads stay frozen in the G step (they belong to D).
  std::vector<nn::Parameter*> GeneratorParameters();

  void CollectParameters(std::vector<nn::Parameter*>* out) override;

  const MultiTaskAtnnConfig& config() const { return config_; }
  int64_t vector_dim() const { return config_.tower.output_dim; }

 private:
  MultiTaskAtnnConfig config_;
  std::unique_ptr<nn::EmbeddingBag> group_bag_;
  std::unique_ptr<nn::EmbeddingBag> profile_bag_;
  std::unique_ptr<nn::EmbeddingBag> generator_bag_;  // if not shared
  std::unique_ptr<nn::Tower> group_tower_;
  std::unique_ptr<nn::Tower> encoder_tower_;
  std::unique_ptr<nn::Tower> generator_tower_;  // null when !adversarial
  std::unique_ptr<nn::Mlp> gmv_head_;
  std::unique_ptr<nn::Mlp> vppv_head_;
};

}  // namespace atnn::core

#endif  // ATNN_CORE_MULTITASK_ATNN_H_
