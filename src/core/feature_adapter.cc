#include "core/feature_adapter.h"

namespace atnn::core {

std::vector<nn::EmbeddingFieldSpec> ToEmbeddingSpecs(
    const data::FeatureSchema& schema) {
  std::vector<nn::EmbeddingFieldSpec> specs;
  specs.reserve(schema.num_categorical());
  for (size_t c = 0; c < schema.num_categorical(); ++c) {
    const data::FeatureSpec& feature = schema.categorical_spec(c);
    specs.push_back(nn::EmbeddingFieldSpec{feature.name, feature.vocab_size,
                                           feature.embed_dim});
  }
  return specs;
}

nn::Tensor FlattenBlockForGbdt(const data::BlockBatch& block) {
  const int64_t rows = block.rows();
  const auto num_cat = static_cast<int64_t>(block.categorical.size());
  const int64_t num_numeric = block.numeric.cols();
  nn::Tensor out(rows, num_cat + num_numeric);
  for (int64_t r = 0; r < rows; ++r) {
    float* dst = out.row_ptr(r);
    for (int64_t f = 0; f < num_cat; ++f) {
      dst[f] = static_cast<float>(
          block.categorical[static_cast<size_t>(f)][static_cast<size_t>(r)]);
    }
    const float* num = block.numeric.row_ptr(r);
    for (int64_t f = 0; f < num_numeric; ++f) dst[num_cat + f] = num[f];
  }
  return out;
}

nn::Tensor ConcatForGbdt(const std::vector<const data::BlockBatch*>& blocks) {
  ATNN_CHECK(!blocks.empty());
  std::vector<nn::Tensor> flattened;
  flattened.reserve(blocks.size());
  int64_t total_cols = 0;
  for (const data::BlockBatch* block : blocks) {
    flattened.push_back(FlattenBlockForGbdt(*block));
    total_cols += flattened.back().cols();
  }
  const int64_t rows = flattened.front().rows();
  nn::Tensor out(rows, total_cols);
  int64_t offset = 0;
  for (const nn::Tensor& part : flattened) {
    ATNN_CHECK_EQ(part.rows(), rows);
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(part.row_ptr(r), part.row_ptr(r) + part.cols(),
                out.row_ptr(r) + offset);
    }
    offset += part.cols();
  }
  return out;
}

TmallNormalizers NormalizeTmallInPlace(data::TmallDataset* dataset) {
  TmallNormalizers norms;
  norms.user = data::Normalizer::Fit(dataset->users);
  norms.user.Apply(&dataset->users);
  // Fit on catalog items only: new arrivals must not leak into statistics,
  // and their stats rows are placeholders anyway.
  norms.item_profile =
      data::Normalizer::Fit(dataset->item_profiles, dataset->catalog_items);
  norms.item_profile.Apply(&dataset->item_profiles);
  norms.item_stats =
      data::Normalizer::Fit(dataset->item_stats, dataset->catalog_items);
  norms.item_stats.Apply(&dataset->item_stats);
  return norms;
}

}  // namespace atnn::core
