#include "core/generator_plan.h"

#include <algorithm>
#include <span>
#include <utility>

#include "nn/ir/trace.h"

namespace atnn::core {

StatusOr<std::shared_ptr<const nn::ir::CompiledPlan>> CompileGeneratorPlan(
    const AtnnModel& model, const data::EntityTable& item_profiles,
    int64_t max_batch, std::shared_ptr<const void> keepalive) {
  if (item_profiles.num_rows() == 0) {
    return Status::FailedPrecondition(
        "empty item table: nothing to probe the trace with");
  }
  if (max_batch < 1) {
    return Status::InvalidArgument("max_batch must be >= 1");
  }
  // Trace with a small multi-row probe so batch-varying shapes are
  // unambiguous (a 1-row probe could not tell a batch apart from a static
  // [1, d] value). Any row works — only shapes matter, and row 0 always
  // exists.
  constexpr int64_t kProbeBatch = 3;
  const int64_t probe_rows[kProbeBatch] = {0, 0, 0};
  const data::BlockBatch probe =
      data::GatherBlock(item_profiles, probe_rows);
  ATNN_ASSIGN_OR_RETURN(
      nn::ir::Graph graph,
      nn::ir::TraceGraph(kProbeBatch, [&model, &probe]() {
        return model.GeneratorItemVector(probe);
      }));
  nn::ir::CompiledPlan::Options options;
  options.max_batch = max_batch;
  ATNN_ASSIGN_OR_RETURN(
      std::unique_ptr<nn::ir::CompiledPlan> plan,
      nn::ir::CompiledPlan::Compile(std::move(graph), options,
                                    std::move(keepalive)));
  return std::shared_ptr<const nn::ir::CompiledPlan>(std::move(plan));
}

StatusOr<std::vector<double>> ScoreItemsWithPlan(
    const nn::ir::CompiledPlan& plan, const PopularityPredictor& predictor,
    const data::EntityTable& item_profiles,
    const std::vector<int64_t>& item_rows) {
  std::vector<double> scores;
  scores.reserve(item_rows.size());
  nn::ir::PlanScratch scratch;
  const int64_t cols = plan.output_cols();
  const size_t max_batch = static_cast<size_t>(plan.max_batch());
  for (size_t begin = 0; begin < item_rows.size(); begin += max_batch) {
    const size_t end = std::min(begin + max_batch, item_rows.size());
    const std::span<const int64_t> chunk(item_rows.data() + begin,
                                         end - begin);
    const data::BlockBatch block = data::GatherBlock(item_profiles, chunk);
    ATNN_ASSIGN_OR_RETURN(
        const float* vectors,
        plan.Execute({&block.categorical, &block.numeric},
                     static_cast<int64_t>(chunk.size()), &scratch));
    for (size_t r = 0; r < chunk.size(); ++r) {
      scores.push_back(
          predictor.ScoreVector(vectors + static_cast<int64_t>(r) * cols,
                                cols));
    }
  }
  return scores;
}

std::vector<double> ScoreItemsMaybeCompiled(
    nn::ir::CompileMode mode, const AtnnModel& model,
    const PopularityPredictor& predictor, const data::TmallDataset& dataset,
    const std::vector<int64_t>& item_rows, bool* used_plan) {
  if (used_plan != nullptr) *used_plan = false;
  if (mode != nn::ir::CompileMode::kOff) {
    const auto plan = CompileGeneratorPlan(model, dataset.item_profiles,
                                           /*max_batch=*/1024);
    if (plan.ok()) {
      auto scored = ScoreItemsWithPlan(**plan, predictor,
                                       dataset.item_profiles, item_rows);
      if (scored.ok()) {
        if (used_plan != nullptr) *used_plan = true;
        return *std::move(scored);
      }
    }
  }
  return predictor.ScoreItems(model, dataset, item_rows);
}

}  // namespace atnn::core
