#include "core/atnn.h"

#include "core/feature_adapter.h"

namespace atnn::core {

AtnnModel::AtnnModel(const data::FeatureSchema& user_schema,
                     const data::FeatureSchema& item_profile_schema,
                     const data::FeatureSchema& item_stats_schema,
                     const AtnnConfig& config)
    : config_(config),
      encoder_bias_("atnn.encoder_bias", nn::Tensor::Zeros(1, 1)),
      generator_bias_("atnn.generator_bias", nn::Tensor::Zeros(1, 1)) {
  Rng rng(config.seed);
  user_bag_ = std::make_unique<nn::EmbeddingBag>(
      "atnn.user", ToEmbeddingSpecs(user_schema), &rng);
  item_profile_bag_ = std::make_unique<nn::EmbeddingBag>(
      "atnn.item", ToEmbeddingSpecs(item_profile_schema), &rng);
  if (!config.share_embeddings) {
    generator_bag_ = std::make_unique<nn::EmbeddingBag>(
        "atnn.gen_item", ToEmbeddingSpecs(item_profile_schema), &rng);
  }

  const auto user_numeric = static_cast<int64_t>(user_schema.num_numeric());
  const auto profile_numeric =
      static_cast<int64_t>(item_profile_schema.num_numeric());
  const auto stats_numeric =
      static_cast<int64_t>(item_stats_schema.num_numeric());

  const int64_t user_input = user_bag_->OutputDim(user_numeric);
  const int64_t profile_input = item_profile_bag_->OutputDim(profile_numeric);
  const int64_t encoder_input = profile_input + stats_numeric;

  user_tower_ = std::make_unique<nn::Tower>("atnn.user_tower", user_input,
                                            config.tower, &rng);
  encoder_tower_ = std::make_unique<nn::Tower>(
      "atnn.encoder_tower", encoder_input, config.tower, &rng);
  generator_tower_ = std::make_unique<nn::Tower>(
      "atnn.generator_tower", profile_input, config.tower, &rng);
}

nn::Var AtnnModel::UserVector(const data::BlockBatch& user) const {
  return user_tower_->Forward(
      user_bag_->Forward(user.categorical, user.numeric));
}

nn::Var AtnnModel::EncoderItemVector(
    const data::BlockBatch& item_profile,
    const data::BlockBatch& item_stats) const {
  ATNN_CHECK_EQ(item_stats.numeric.rows(), item_profile.rows());
  nn::Var profile_input = item_profile_bag_->Forward(item_profile.categorical,
                                                     item_profile.numeric);
  // ScratchCopy keeps the step allocation-free: a plain Constant copy
  // would deep-copy the stats block onto the heap every step.
  nn::Var full_input = nn::ConcatCols(
      {profile_input, nn::Constant(nn::ScratchCopy(item_stats.numeric))});
  return encoder_tower_->Forward(full_input);
}

nn::Var AtnnModel::GeneratorItemVector(
    const data::BlockBatch& item_profile) const {
  const nn::EmbeddingBag& bag =
      config_.share_embeddings ? *item_profile_bag_ : *generator_bag_;
  return generator_tower_->Forward(
      bag.Forward(item_profile.categorical, item_profile.numeric));
}

nn::Var AtnnModel::EncoderLogits(const nn::Var& item_vec,
                                 const nn::Var& user_vec) const {
  return nn::AddBias(nn::RowwiseDot(item_vec, user_vec), encoder_bias_.var());
}

nn::Var AtnnModel::GeneratorLogits(const nn::Var& gen_vec,
                                   const nn::Var& user_vec) const {
  return nn::AddBias(nn::RowwiseDot(gen_vec, user_vec),
                     generator_bias_.var());
}

nn::Var AtnnModel::SimilarityLoss(const nn::Var& gen_vec,
                                  const nn::Var& encoder_vec) const {
  // The encoder is the (frozen) target; the generator chases it. Freezing
  // implements the alternating minimax schedule of Algorithm 1: the G step
  // must not move the encoder.
  nn::Var target = nn::StopGradient(encoder_vec);
  switch (config_.similarity) {
    case SimilarityMode::kCosine: {
      // L_s = mean((1 - cos(g, f_i))^2), the paper's mean((1 - x_i)^2).
      nn::Var cosine = nn::CosineSimilarityRows(gen_vec, target);
      nn::Tensor ones_data = nn::ScratchTensorUninit(cosine.rows(), 1);
      ones_data.Fill(1.0f);
      nn::Var ones = nn::Constant(std::move(ones_data));
      return nn::ReduceMean(nn::Square(nn::Sub(ones, cosine)));
    }
    case SimilarityMode::kL2:
      return nn::MseBetween(gen_vec, target);
  }
  ATNN_CHECK(false) << "unknown similarity mode";
  return nn::Var();
}

std::vector<double> AtnnModel::PredictCtrEncoder(
    const data::BlockBatch& user, const data::BlockBatch& item_profile,
    const data::BlockBatch& item_stats) const {
  nn::NoGradGuard no_grad;
  const nn::ArenaScope arena_scope;
  nn::Var probs = nn::Sigmoid(EncoderLogits(
      EncoderItemVector(item_profile, item_stats), UserVector(user)));
  std::vector<double> result(static_cast<size_t>(probs.rows()));
  for (int64_t r = 0; r < probs.rows(); ++r) {
    result[static_cast<size_t>(r)] = probs.value().at(r, 0);
  }
  return result;
}

std::vector<double> AtnnModel::PredictCtrGenerator(
    const data::BlockBatch& user,
    const data::BlockBatch& item_profile) const {
  nn::NoGradGuard no_grad;
  const nn::ArenaScope arena_scope;
  nn::Var probs = nn::Sigmoid(
      GeneratorLogits(GeneratorItemVector(item_profile), UserVector(user)));
  std::vector<double> result(static_cast<size_t>(probs.rows()));
  for (int64_t r = 0; r < probs.rows(); ++r) {
    result[static_cast<size_t>(r)] = probs.value().at(r, 0);
  }
  return result;
}

std::vector<nn::Parameter*> AtnnModel::DiscriminatorParameters() {
  std::vector<nn::Parameter*> params;
  user_bag_->CollectParameters(&params);
  item_profile_bag_->CollectParameters(&params);
  user_tower_->CollectParameters(&params);
  encoder_tower_->CollectParameters(&params);
  params.push_back(&encoder_bias_);
  return params;
}

std::vector<nn::Parameter*> AtnnModel::GeneratorParameters() {
  std::vector<nn::Parameter*> params;
  if (config_.share_embeddings) {
    // Shared tables are trained by both steps (each optimizer keeps its
    // own moments, the common practice for shared embeddings).
    item_profile_bag_->CollectParameters(&params);
  } else {
    generator_bag_->CollectParameters(&params);
  }
  generator_tower_->CollectParameters(&params);
  params.push_back(&generator_bias_);
  return params;
}

void AtnnModel::CollectParameters(std::vector<nn::Parameter*>* out) {
  user_bag_->CollectParameters(out);
  item_profile_bag_->CollectParameters(out);
  if (generator_bag_ != nullptr) generator_bag_->CollectParameters(out);
  user_tower_->CollectParameters(out);
  encoder_tower_->CollectParameters(out);
  generator_tower_->CollectParameters(out);
  out->push_back(&encoder_bias_);
  out->push_back(&generator_bias_);
}

}  // namespace atnn::core
