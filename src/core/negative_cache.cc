#include "core/negative_cache.h"

#include "common/logging.h"

namespace atnn::core {

void NegativeCache::Push(const nn::Tensor& item_vectors) {
  if (item_vectors.rows() == 0) return;
  if (dim_ == 0) {
    dim_ = item_vectors.cols();
  } else {
    ATNN_CHECK_EQ(dim_, item_vectors.cols());
  }
  while (fifo_.size() >= capacity_) {
    total_rows_ -= fifo_.front().rows;
    fifo_.pop_front();
  }
  Batch batch;
  batch.rows = item_vectors.rows();
  batch.data.assign(item_vectors.row_ptr(0),
                    item_vectors.row_ptr(0) + item_vectors.numel());
  total_rows_ += batch.rows;
  fifo_.push_back(std::move(batch));
}

nn::Tensor NegativeCache::GatherTransposed() const {
  if (total_rows_ == 0) return nn::Tensor();
  nn::Tensor out(dim_, total_rows_);
  int64_t col = 0;
  for (const Batch& batch : fifo_) {
    for (int64_t r = 0; r < batch.rows; ++r, ++col) {
      const float* row = batch.data.data() + r * dim_;
      for (int64_t d = 0; d < dim_; ++d) out.at(d, col) = row[d];
    }
  }
  return out;
}

void NegativeCache::Clear() {
  fifo_.clear();
  dim_ = 0;
  total_rows_ = 0;
}

}  // namespace atnn::core
