#ifndef ATNN_CORE_POPULARITY_H_
#define ATNN_CORE_POPULARITY_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/atnn.h"
#include "data/tmall.h"

namespace atnn::core {

/// The paper's O(1)-per-item popularity predictor (Section III-D): at
/// training time, compute and store the mean user vector of a selected
/// active-user group; at prediction time, score a new arrival as
/// sigmoid(<g(X_ip), mean_user_vec> + b) — one dot product per item instead
/// of one per (item, user) pair.
class PopularityPredictor {
 public:
  /// Computes the mean user vector of `user_group` (user rows) through the
  /// model's user tower, in batches. Forwards run in no-grad mode; with a
  /// pool, chunks run in parallel and their partial sums merge in chunk
  /// order (deterministic for a fixed batch_size, though the float
  /// summation order differs from the serial loop's).
  static PopularityPredictor Build(const AtnnModel& model,
                                   const data::TmallDataset& dataset,
                                   const std::vector<int64_t>& user_group,
                                   int batch_size = 1024,
                                   ThreadPool* pool = nullptr);

  /// Constructs directly from a stored mean vector + bias (serving path).
  PopularityPredictor(nn::Tensor mean_user_vector, float bias);

  /// O(1) popularity score of one generated item vector ([1, d] row).
  double ScoreVector(const float* item_vector, int64_t dim) const;

  /// Scores the given item rows via the generator path. Cost: one
  /// generator forward per batch plus one dot product per item. No-grad;
  /// with a pool, chunks are scored in parallel and merged in chunk order,
  /// so the score sequence is identical to the serial path.
  std::vector<double> ScoreItems(const AtnnModel& model,
                                 const data::TmallDataset& dataset,
                                 const std::vector<int64_t>& item_rows,
                                 int batch_size = 1024,
                                 ThreadPool* pool = nullptr) const;

  const nn::Tensor& mean_user_vector() const { return mean_user_vector_; }
  float bias() const { return bias_; }

 private:
  nn::Tensor mean_user_vector_;  // [1, d]
  float bias_ = 0.0f;
};

/// The quadratic reference the paper argues against: an item's popularity
/// as the *exact* mean click probability over the user group, O(N_users)
/// per item. Used by tests (agreement with the O(1) path) and by
/// bench_scoring_complexity.
std::vector<double> ScoreItemsPairwise(const AtnnModel& model,
                                       const data::TmallDataset& dataset,
                                       const std::vector<int64_t>& item_rows,
                                       const std::vector<int64_t>& user_group,
                                       int batch_size = 1024,
                                       ThreadPool* pool = nullptr);

/// Selects the top-k most active users — the paper's "top 20 million
/// active users who prefer new arrivals" device, scaled down.
std::vector<int64_t> SelectActiveUsers(const data::TmallDataset& dataset,
                                       int64_t k);

}  // namespace atnn::core

#endif  // ATNN_CORE_POPULARITY_H_
