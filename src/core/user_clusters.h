#ifndef ATNN_CORE_USER_CLUSTERS_H_
#define ATNN_CORE_USER_CLUSTERS_H_

#include <cstdint>
#include <vector>

#include "core/atnn.h"
#include "core/popularity.h"
#include "data/tmall.h"
#include "nn/tensor.h"

namespace atnn::core {

/// Lloyd's k-means with k-means++ seeding over the rows of a matrix.
/// Deterministic in the seed. The substrate for the paper's future-work
/// item: "further group users by their preferences before making new
/// arrivals predictions".
struct KMeansResult {
  nn::Tensor centroids;                 // [k, dim]
  std::vector<int32_t> assignment;      // [rows] -> cluster id
  std::vector<int64_t> cluster_sizes;   // [k]
  double inertia = 0.0;                 // sum of squared distances
  int iterations = 0;
};

struct KMeansConfig {
  int num_clusters = 8;
  int max_iterations = 50;
  /// Stop when the relative inertia improvement falls below this.
  double tolerance = 1e-4;
  uint64_t seed = 613;
};

/// Runs k-means over the rows of `points` ([n, dim], n >= k).
KMeansResult RunKMeans(const nn::Tensor& points, const KMeansConfig& config);

/// Preference-clustered popularity predictor: instead of one global mean
/// user vector, the user group is split into K preference clusters (by
/// k-means over the trained user vectors); an item's popularity is the
/// cluster-size-weighted mean of its per-cluster scores:
///   score(i) = sum_c (|c| / N) * sigmoid(<g(X_ip), mean_c> + b)
/// O(K) per item — still independent of the user count — and strictly more
/// expressive than the single-group predictor (K = 1 recovers it).
class ClusteredPopularityPredictor {
 public:
  /// Computes user vectors for `user_group` through the model's user
  /// tower, clusters them, and stores the per-cluster means.
  static ClusteredPopularityPredictor Build(
      const AtnnModel& model, const data::TmallDataset& dataset,
      const std::vector<int64_t>& user_group, const KMeansConfig& config,
      int batch_size = 1024);

  /// O(K) popularity score of one generated item vector.
  double ScoreVector(const float* item_vector, int64_t dim) const;

  /// Scores item rows via the generator path.
  std::vector<double> ScoreItems(const AtnnModel& model,
                                 const data::TmallDataset& dataset,
                                 const std::vector<int64_t>& item_rows,
                                 int batch_size = 1024) const;

  int num_clusters() const { return static_cast<int>(weights_.size()); }
  const nn::Tensor& cluster_means() const { return cluster_means_; }
  const std::vector<double>& cluster_weights() const { return weights_; }

 private:
  ClusteredPopularityPredictor(nn::Tensor cluster_means,
                               std::vector<double> weights, float bias);

  nn::Tensor cluster_means_;     // [k, d]
  std::vector<double> weights_;  // [k], sums to 1
  float bias_ = 0.0f;
};

}  // namespace atnn::core

#endif  // ATNN_CORE_USER_CLUSTERS_H_
