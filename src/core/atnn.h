#ifndef ATNN_CORE_ATNN_H_
#define ATNN_CORE_ATNN_H_

#include <memory>
#include <vector>

#include "data/schema.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace atnn::core {

/// How the similarity S(g(X_ip), f_i(X_i)) inside L_s is measured. The
/// paper defines L_s = mean((1 - s_i)^2) over per-sample similarities
/// (cosine); the L2 variant (mean squared vector distance) is provided as
/// an ablation.
enum class SimilarityMode { kCosine, kL2 };

/// Hyper-parameters of the adversarial two-tower model (Section III-C).
struct AtnnConfig {
  /// Architecture shared by the user tower, item encoder and generator
  /// (the paper uses "the same network structure" for all three).
  nn::TowerConfig tower;
  /// Share the item-profile embedding tables between the encoder and the
  /// generator (the paper's multi-task shared-embedding strategy). Turning
  /// this off is the ablation in bench_ablations.
  bool share_embeddings = true;
  SimilarityMode similarity = SimilarityMode::kCosine;
  /// Weight of L_s in the generator objective (paper: 0.1).
  float lambda = 0.1f;
  uint64_t seed = 7;
};

/// Adversarial Two-tower Neural Network. Three towers:
///   - user tower f_u(X_u)                       (user profiles)
///   - item encoder f_i(X_i)  "discriminator"    (profiles + statistics)
///   - item generator g(X_ip)                    (profiles only)
/// Trained per Algorithm 1: the D step minimizes L_i (CTR log loss through
/// the encoder path); the G step minimizes L_g + lambda * L_s where the
/// encoder's vector is the frozen target of the similarity term.
class AtnnModel : public nn::Module {
 public:
  AtnnModel(const data::FeatureSchema& user_schema,
            const data::FeatureSchema& item_profile_schema,
            const data::FeatureSchema& item_stats_schema,
            const AtnnConfig& config);

  /// f_u(X_u): [batch, d].
  nn::Var UserVector(const data::BlockBatch& user) const;

  /// f_i(X_i): encoder item vector from profiles + statistics.
  nn::Var EncoderItemVector(const data::BlockBatch& item_profile,
                            const data::BlockBatch& item_stats) const;

  /// g(X_ip): generated item vector from profiles only (the cold-start
  /// path; works for items that have never been on the market).
  nn::Var GeneratorItemVector(const data::BlockBatch& item_profile) const;

  /// Encoder-path CTR logits: <f_i, f_u> + b_i.
  nn::Var EncoderLogits(const nn::Var& item_vec,
                        const nn::Var& user_vec) const;

  /// Generator-path CTR logits: <g, f_u> + b_g.
  nn::Var GeneratorLogits(const nn::Var& gen_vec,
                          const nn::Var& user_vec) const;

  /// L_s between the generated vectors and the (frozen) encoder vectors.
  /// Pass the raw encoder Var; the method applies StopGradient internally.
  nn::Var SimilarityLoss(const nn::Var& gen_vec,
                         const nn::Var& encoder_vec) const;

  /// Click probabilities through the encoder path (complete features).
  std::vector<double> PredictCtrEncoder(
      const data::BlockBatch& user, const data::BlockBatch& item_profile,
      const data::BlockBatch& item_stats) const;

  /// Click probabilities through the generator path (profiles only).
  std::vector<double> PredictCtrGenerator(
      const data::BlockBatch& user,
      const data::BlockBatch& item_profile) const;

  /// Parameters updated in the D step: user tower + embeddings, encoder
  /// tower + item-profile embeddings, encoder score bias.
  std::vector<nn::Parameter*> DiscriminatorParameters();

  /// Parameters updated in the G step: generator tower and generator bias,
  /// plus the item-profile embedding tables. When share_embeddings is on,
  /// those tables are the *same* parameters the D step updates — the
  /// coupling is the point of the paper's shared-embedding strategy (the
  /// generator's gradient shapes the representation the encoder reads,
  /// which is also why the paper's ATNN encoder scores slightly below a
  /// pure TNN-DCN on complete features).
  std::vector<nn::Parameter*> GeneratorParameters();

  void CollectParameters(std::vector<nn::Parameter*>* out) override;

  const AtnnConfig& config() const { return config_; }
  int64_t vector_dim() const { return config_.tower.output_dim; }

  /// Current value of the generator-path score bias b_g (used by the
  /// popularity predictor to keep O(1) scores on the same scale as the
  /// generator-path CTR).
  float generator_bias_value() const { return generator_bias_.value().scalar(); }

  /// Read-only structure access for the offline quantizer: the embedding
  /// bag and tower the generator path g(X_ip) actually runs through (the
  /// shared item-profile bag when share_embeddings is on, the generator's
  /// own bag otherwise).
  const nn::EmbeddingBag& generator_embedding_bag() const {
    return config_.share_embeddings ? *item_profile_bag_ : *generator_bag_;
  }
  const nn::Tower& generator_tower() const { return *generator_tower_; }

 private:
  AtnnConfig config_;
  std::unique_ptr<nn::EmbeddingBag> user_bag_;
  std::unique_ptr<nn::EmbeddingBag> item_profile_bag_;
  /// Present only when share_embeddings is false.
  std::unique_ptr<nn::EmbeddingBag> generator_bag_;
  std::unique_ptr<nn::Tower> user_tower_;
  std::unique_ptr<nn::Tower> encoder_tower_;
  std::unique_ptr<nn::Tower> generator_tower_;
  nn::Parameter encoder_bias_;    // [1,1]
  nn::Parameter generator_bias_;  // [1,1]
};

}  // namespace atnn::core

#endif  // ATNN_CORE_ATNN_H_
