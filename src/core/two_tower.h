#ifndef ATNN_CORE_TWO_TOWER_H_
#define ATNN_CORE_TWO_TOWER_H_

#include <memory>
#include <vector>

#include "data/schema.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace atnn::core {

/// Configuration of a two-tower CTR model (Section III-B of the paper).
struct TwoTowerConfig {
  /// Architecture of both towers (the paper uses identical structures).
  nn::TowerConfig tower;
  /// When false, the item tower consumes item profiles only — the
  /// "profile-only trained" condition of Table I's cold-start column.
  bool use_item_stats = true;
  uint64_t seed = 7;
};

/// Two-tower neural network: a user tower and an item tower producing
/// explicit user/item vectors; the CTR logit is their dot product plus a
/// learned global bias. With TowerKind::kFullyConnected this is the TNN-FC
/// baseline, with kDeepCross it is TNN-DCN.
class TwoTowerModel : public nn::Module {
 public:
  TwoTowerModel(const data::FeatureSchema& user_schema,
                const data::FeatureSchema& item_profile_schema,
                const data::FeatureSchema& item_stats_schema,
                const TwoTowerConfig& config);

  /// User vector f_u(X_u): [batch, output_dim].
  nn::Var UserVector(const data::BlockBatch& user) const;

  /// Item vector f_i(X_i) from profiles (+ statistics when configured).
  nn::Var ItemVector(const data::BlockBatch& item_profile,
                     const data::BlockBatch& item_stats) const;

  /// CTR logits H(item_vec, user_vec) = <i, u> + b for aligned rows.
  nn::Var ScoreLogits(const nn::Var& item_vec, const nn::Var& user_vec) const;

  /// Convenience: click probabilities for a gathered batch (no gradient).
  std::vector<double> PredictCtr(const data::BlockBatch& user,
                                 const data::BlockBatch& item_profile,
                                 const data::BlockBatch& item_stats) const;

  void CollectParameters(std::vector<nn::Parameter*>* out) override;

  const TwoTowerConfig& config() const { return config_; }
  int64_t vector_dim() const { return config_.tower.output_dim; }

 private:
  TwoTowerConfig config_;
  std::unique_ptr<nn::EmbeddingBag> user_bag_;
  std::unique_ptr<nn::EmbeddingBag> item_profile_bag_;
  std::unique_ptr<nn::Tower> user_tower_;
  std::unique_ptr<nn::Tower> item_tower_;
  nn::Parameter score_bias_;  // [1,1]
  int64_t user_num_numeric_ = 0;
  int64_t item_profile_num_numeric_ = 0;
  int64_t item_stats_num_numeric_ = 0;
};

}  // namespace atnn::core

#endif  // ATNN_CORE_TWO_TOWER_H_
