#include "core/two_tower.h"

#include "core/feature_adapter.h"

namespace atnn::core {

TwoTowerModel::TwoTowerModel(const data::FeatureSchema& user_schema,
                             const data::FeatureSchema& item_profile_schema,
                             const data::FeatureSchema& item_stats_schema,
                             const TwoTowerConfig& config)
    : config_(config),
      score_bias_("two_tower.score_bias", nn::Tensor::Zeros(1, 1)) {
  Rng rng(config.seed);
  user_bag_ = std::make_unique<nn::EmbeddingBag>(
      "two_tower.user", ToEmbeddingSpecs(user_schema), &rng);
  item_profile_bag_ = std::make_unique<nn::EmbeddingBag>(
      "two_tower.item", ToEmbeddingSpecs(item_profile_schema), &rng);

  user_num_numeric_ = static_cast<int64_t>(user_schema.num_numeric());
  item_profile_num_numeric_ =
      static_cast<int64_t>(item_profile_schema.num_numeric());
  item_stats_num_numeric_ =
      static_cast<int64_t>(item_stats_schema.num_numeric());

  const int64_t user_input = user_bag_->OutputDim(user_num_numeric_);
  int64_t item_input = item_profile_bag_->OutputDim(item_profile_num_numeric_);
  if (config.use_item_stats) item_input += item_stats_num_numeric_;

  user_tower_ = std::make_unique<nn::Tower>("two_tower.user_tower",
                                            user_input, config.tower, &rng);
  item_tower_ = std::make_unique<nn::Tower>("two_tower.item_tower",
                                            item_input, config.tower, &rng);
}

nn::Var TwoTowerModel::UserVector(const data::BlockBatch& user) const {
  return user_tower_->Forward(
      user_bag_->Forward(user.categorical, user.numeric));
}

nn::Var TwoTowerModel::ItemVector(const data::BlockBatch& item_profile,
                                  const data::BlockBatch& item_stats) const {
  nn::Var profile_input =
      item_profile_bag_->Forward(item_profile.categorical,
                                 item_profile.numeric);
  if (!config_.use_item_stats) {
    return item_tower_->Forward(profile_input);
  }
  ATNN_CHECK_EQ(item_stats.numeric.rows(), item_profile.rows());
  nn::Var full_input =
      nn::ConcatCols(
          {profile_input, nn::Constant(nn::ScratchCopy(item_stats.numeric))});
  return item_tower_->Forward(full_input);
}

nn::Var TwoTowerModel::ScoreLogits(const nn::Var& item_vec,
                                   const nn::Var& user_vec) const {
  return nn::AddBias(nn::RowwiseDot(item_vec, user_vec), score_bias_.var());
}

std::vector<double> TwoTowerModel::PredictCtr(
    const data::BlockBatch& user, const data::BlockBatch& item_profile,
    const data::BlockBatch& item_stats) const {
  // Pure inference: no tape, no grad buffers, no parameter-node mutation.
  nn::NoGradGuard no_grad;
  const nn::ArenaScope arena_scope;
  nn::Var logits = ScoreLogits(ItemVector(item_profile, item_stats),
                               UserVector(user));
  nn::Var probs = nn::Sigmoid(logits);
  std::vector<double> result(static_cast<size_t>(probs.rows()));
  for (int64_t r = 0; r < probs.rows(); ++r) {
    result[static_cast<size_t>(r)] = probs.value().at(r, 0);
  }
  return result;
}

void TwoTowerModel::CollectParameters(std::vector<nn::Parameter*>* out) {
  user_bag_->CollectParameters(out);
  item_profile_bag_->CollectParameters(out);
  user_tower_->CollectParameters(out);
  item_tower_->CollectParameters(out);
  out->push_back(&score_bias_);
}

}  // namespace atnn::core
