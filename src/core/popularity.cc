#include "core/popularity.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>

#include "core/trainer.h"

namespace atnn::core {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Runs fn(i) for every chunk index, across the pool when provided. Every
/// chunk writes only its own output slot; merging in chunk order keeps the
/// result sequence identical to the serial loop.
void ForEachChunk(ThreadPool* pool, size_t count,
                  const std::function<void(size_t)>& fn) {
  if (pool == nullptr || count < 2) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  pool->ParallelFor(count, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace

PopularityPredictor::PopularityPredictor(nn::Tensor mean_user_vector,
                                         float bias)
    : mean_user_vector_(std::move(mean_user_vector)), bias_(bias) {
  ATNN_CHECK_EQ(mean_user_vector_.rows(), 1);
}

PopularityPredictor PopularityPredictor::Build(
    const AtnnModel& model, const data::TmallDataset& dataset,
    const std::vector<int64_t>& user_group, int batch_size,
    ThreadPool* pool) {
  ATNN_CHECK(!user_group.empty());
  const std::vector<std::span<const int64_t>> chunks =
      MakeBatchSpans(user_group, batch_size);
  // Per-chunk partial sums, merged in chunk order below.
  std::vector<nn::Tensor> partial(chunks.size());
  ForEachChunk(pool, chunks.size(), [&](size_t i) {
    const nn::NoGradGuard no_grad;
    const nn::ArenaScope arena_scope;
    const data::BlockBatch block = data::GatherBlock(dataset.users, chunks[i]);
    nn::Var vectors = model.UserVector(block);
    nn::Tensor sum(1, model.vector_dim());
    for (int64_t r = 0; r < vectors.rows(); ++r) {
      const float* row = vectors.value().row_ptr(r);
      float* dst = sum.data();
      for (int64_t c = 0; c < sum.cols(); ++c) dst[c] += row[c];
    }
    partial[i] = std::move(sum);
  });
  nn::Tensor sum(1, model.vector_dim());
  for (const nn::Tensor& chunk_sum : partial) sum.AddInPlace(chunk_sum);
  sum.Scale(1.0f / static_cast<float>(user_group.size()));
  return PopularityPredictor(std::move(sum), model.generator_bias_value());
}

double PopularityPredictor::ScoreVector(const float* item_vector,
                                        int64_t dim) const {
  ATNN_DCHECK_EQ(dim, mean_user_vector_.cols());
  const float* mean = mean_user_vector_.data();
  double dot = 0.0;
  for (int64_t c = 0; c < dim; ++c) dot += item_vector[c] * mean[c];
  return Sigmoid(dot + bias_);
}

std::vector<double> PopularityPredictor::ScoreItems(
    const AtnnModel& model, const data::TmallDataset& dataset,
    const std::vector<int64_t>& item_rows, int batch_size,
    ThreadPool* pool) const {
  const std::vector<std::span<const int64_t>> chunks =
      MakeBatchSpans(item_rows, batch_size);
  std::vector<std::vector<double>> chunk_scores(chunks.size());
  ForEachChunk(pool, chunks.size(), [&](size_t i) {
    const nn::NoGradGuard no_grad;
    const nn::ArenaScope arena_scope;
    const data::BlockBatch block =
        data::GatherBlock(dataset.item_profiles, chunks[i]);
    nn::Var vectors = model.GeneratorItemVector(block);
    std::vector<double>& out = chunk_scores[i];
    out.reserve(static_cast<size_t>(vectors.rows()));
    for (int64_t r = 0; r < vectors.rows(); ++r) {
      out.push_back(ScoreVector(vectors.value().row_ptr(r), vectors.cols()));
    }
  });
  std::vector<double> scores;
  scores.reserve(item_rows.size());
  for (const auto& chunk : chunk_scores) {
    scores.insert(scores.end(), chunk.begin(), chunk.end());
  }
  return scores;
}

std::vector<double> ScoreItemsPairwise(const AtnnModel& model,
                                       const data::TmallDataset& dataset,
                                       const std::vector<int64_t>& item_rows,
                                       const std::vector<int64_t>& user_group,
                                       int batch_size, ThreadPool* pool) {
  ATNN_CHECK(!user_group.empty());
  // Precompute all user vectors once (amortized across items); the cost
  // that remains per item is still O(|user_group|) dot products.
  nn::Tensor user_vectors(static_cast<int64_t>(user_group.size()),
                          model.vector_dim());
  {
    const std::vector<std::span<const int64_t>> user_chunks =
        MakeBatchSpans(user_group, batch_size);
    // Chunk c starts at row c * batch_size: chunks are contiguous and
    // full-sized except the last, so parallel workers write disjoint rows.
    ForEachChunk(pool, user_chunks.size(), [&](size_t c) {
      const nn::NoGradGuard no_grad;
      const nn::ArenaScope arena_scope;
      const data::BlockBatch block =
          data::GatherBlock(dataset.users, user_chunks[c]);
      nn::Var vectors = model.UserVector(block);
      int64_t row = static_cast<int64_t>(c) * batch_size;
      for (int64_t r = 0; r < vectors.rows(); ++r, ++row) {
        std::copy(vectors.value().row_ptr(r),
                  vectors.value().row_ptr(r) + vectors.cols(),
                  user_vectors.row_ptr(row));
      }
    });
  }

  const float gen_bias = model.generator_bias_value();

  const std::vector<std::span<const int64_t>> item_chunks =
      MakeBatchSpans(item_rows, batch_size);
  std::vector<std::vector<double>> chunk_scores(item_chunks.size());
  ForEachChunk(pool, item_chunks.size(), [&](size_t i) {
    const nn::NoGradGuard no_grad;
    const nn::ArenaScope arena_scope;
    const data::BlockBatch block =
        data::GatherBlock(dataset.item_profiles, item_chunks[i]);
    nn::Var vectors = model.GeneratorItemVector(block);
    std::vector<double>& out = chunk_scores[i];
    out.reserve(static_cast<size_t>(vectors.rows()));
    for (int64_t r = 0; r < vectors.rows(); ++r) {
      const float* item_vec = vectors.value().row_ptr(r);
      double total = 0.0;
      for (int64_t u = 0; u < user_vectors.rows(); ++u) {
        const float* user_vec = user_vectors.row_ptr(u);
        double dot = 0.0;
        for (int64_t c = 0; c < user_vectors.cols(); ++c) {
          dot += item_vec[c] * user_vec[c];
        }
        total += Sigmoid(dot + gen_bias);
      }
      out.push_back(total / static_cast<double>(user_vectors.rows()));
    }
  });
  std::vector<double> scores;
  scores.reserve(item_rows.size());
  for (const auto& chunk : chunk_scores) {
    scores.insert(scores.end(), chunk.begin(), chunk.end());
  }
  return scores;
}

std::vector<int64_t> SelectActiveUsers(const data::TmallDataset& dataset,
                                       int64_t k) {
  ATNN_CHECK(k > 0);
  std::vector<int64_t> users(dataset.user_activity.size());
  std::iota(users.begin(), users.end(), 0);
  const auto take = std::min<size_t>(static_cast<size_t>(k), users.size());
  std::partial_sort(users.begin(), users.begin() + take, users.end(),
                    [&dataset](int64_t a, int64_t b) {
                      return dataset.user_activity[static_cast<size_t>(a)] >
                             dataset.user_activity[static_cast<size_t>(b)];
                    });
  users.resize(take);
  return users;
}

}  // namespace atnn::core
