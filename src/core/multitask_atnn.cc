#include "core/multitask_atnn.h"

#include "core/feature_adapter.h"

namespace atnn::core {

MultiTaskAtnnModel::MultiTaskAtnnModel(
    const data::FeatureSchema& restaurant_profile_schema,
    const data::FeatureSchema& restaurant_stats_schema,
    const data::FeatureSchema& user_group_schema,
    const MultiTaskAtnnConfig& config)
    : config_(config) {
  Rng rng(config.seed);
  group_bag_ = std::make_unique<nn::EmbeddingBag>(
      "mt_atnn.group", ToEmbeddingSpecs(user_group_schema), &rng);
  profile_bag_ = std::make_unique<nn::EmbeddingBag>(
      "mt_atnn.profile", ToEmbeddingSpecs(restaurant_profile_schema), &rng);
  if (config.adversarial && !config.share_embeddings) {
    generator_bag_ = std::make_unique<nn::EmbeddingBag>(
        "mt_atnn.gen_profile", ToEmbeddingSpecs(restaurant_profile_schema),
        &rng);
  }

  const auto group_numeric =
      static_cast<int64_t>(user_group_schema.num_numeric());
  const auto profile_numeric =
      static_cast<int64_t>(restaurant_profile_schema.num_numeric());
  const auto stats_numeric =
      static_cast<int64_t>(restaurant_stats_schema.num_numeric());

  const int64_t group_input = group_bag_->OutputDim(group_numeric);
  const int64_t profile_input = profile_bag_->OutputDim(profile_numeric);
  const int64_t encoder_input =
      config.adversarial ? profile_input + stats_numeric : profile_input;

  group_tower_ = std::make_unique<nn::Tower>("mt_atnn.group_tower",
                                             group_input, config.tower, &rng);
  encoder_tower_ = std::make_unique<nn::Tower>(
      "mt_atnn.encoder_tower", encoder_input, config.tower, &rng);
  if (config.adversarial) {
    generator_tower_ = std::make_unique<nn::Tower>(
        "mt_atnn.generator_tower", profile_input, config.tower, &rng);
  }

  // Task heads over the concatenated (restaurant, group) representation.
  const int64_t head_input = 2 * config.tower.output_dim;
  const std::vector<int64_t> head_dims = {head_input,
                                          config.tower.output_dim, 1};
  gmv_head_ = std::make_unique<nn::Mlp>("mt_atnn.gmv_head", head_dims,
                                        nn::Activation::kRelu,
                                        nn::Activation::kIdentity, &rng);
  vppv_head_ = std::make_unique<nn::Mlp>("mt_atnn.vppv_head", head_dims,
                                         nn::Activation::kRelu,
                                         nn::Activation::kIdentity, &rng);
}

nn::Var MultiTaskAtnnModel::GroupVector(const data::BlockBatch& group) const {
  return group_tower_->Forward(
      group_bag_->Forward(group.categorical, group.numeric));
}

nn::Var MultiTaskAtnnModel::EncoderVector(
    const data::BlockBatch& profile, const data::BlockBatch& stats) const {
  nn::Var profile_input =
      profile_bag_->Forward(profile.categorical, profile.numeric);
  if (!config_.adversarial) {
    // Baseline mode: the encoder is profile-only by construction.
    return encoder_tower_->Forward(profile_input);
  }
  ATNN_CHECK_EQ(stats.numeric.rows(), profile.rows());
  return encoder_tower_->Forward(
      nn::ConcatCols(
          {profile_input, nn::Constant(nn::ScratchCopy(stats.numeric))}));
}

nn::Var MultiTaskAtnnModel::GeneratorVector(
    const data::BlockBatch& profile) const {
  ATNN_CHECK(config_.adversarial)
      << "baseline configuration has no generator";
  const nn::EmbeddingBag& bag =
      config_.share_embeddings ? *profile_bag_ : *generator_bag_;
  return generator_tower_->Forward(
      bag.Forward(profile.categorical, profile.numeric));
}

nn::Var MultiTaskAtnnModel::PredictGmv(const nn::Var& item_vec,
                                       const nn::Var& group_vec) const {
  return gmv_head_->Forward(nn::ConcatCols({item_vec, group_vec}));
}

nn::Var MultiTaskAtnnModel::PredictVppv(const nn::Var& item_vec,
                                        const nn::Var& group_vec) const {
  return vppv_head_->Forward(nn::ConcatCols({item_vec, group_vec}));
}

nn::Var MultiTaskAtnnModel::SimilarityLoss(const nn::Var& gen_vec,
                                           const nn::Var& encoder_vec) const {
  nn::Var target = nn::StopGradient(encoder_vec);
  switch (config_.similarity) {
    case SimilarityMode::kCosine: {
      nn::Var cosine = nn::CosineSimilarityRows(gen_vec, target);
      nn::Tensor ones_data = nn::ScratchTensorUninit(cosine.rows(), 1);
      ones_data.Fill(1.0f);
      nn::Var ones = nn::Constant(std::move(ones_data));
      return nn::ReduceMean(nn::Square(nn::Sub(ones, cosine)));
    }
    case SimilarityMode::kL2:
      return nn::MseBetween(gen_vec, target);
  }
  ATNN_CHECK(false) << "unknown similarity mode";
  return nn::Var();
}

MultiTaskAtnnModel::Predictions MultiTaskAtnnModel::PredictColdStart(
    const data::BlockBatch& profile, const data::BlockBatch& group) const {
  nn::NoGradGuard no_grad;
  const nn::ArenaScope arena_scope;
  nn::Var group_vec = GroupVector(group);
  nn::Var item_vec;
  if (config_.adversarial) {
    item_vec = GeneratorVector(profile);
  } else {
    // Baseline: profile-only encoder; pass an empty stats block.
    data::BlockBatch empty_stats;
    empty_stats.numeric = nn::Tensor(profile.rows(), 0);
    item_vec = EncoderVector(profile, empty_stats);
  }
  nn::Var vppv = PredictVppv(item_vec, group_vec);
  nn::Var gmv = PredictGmv(item_vec, group_vec);
  Predictions result;
  result.vppv.resize(static_cast<size_t>(vppv.rows()));
  result.gmv.resize(static_cast<size_t>(gmv.rows()));
  for (int64_t r = 0; r < vppv.rows(); ++r) {
    result.vppv[static_cast<size_t>(r)] = vppv.value().at(r, 0);
    result.gmv[static_cast<size_t>(r)] = gmv.value().at(r, 0);
  }
  return result;
}

std::vector<nn::Parameter*> MultiTaskAtnnModel::DiscriminatorParameters() {
  std::vector<nn::Parameter*> params;
  group_bag_->CollectParameters(&params);
  profile_bag_->CollectParameters(&params);
  group_tower_->CollectParameters(&params);
  encoder_tower_->CollectParameters(&params);
  gmv_head_->CollectParameters(&params);
  vppv_head_->CollectParameters(&params);
  return params;
}

std::vector<nn::Parameter*> MultiTaskAtnnModel::GeneratorParameters() {
  std::vector<nn::Parameter*> params;
  if (!config_.adversarial) return params;
  if (config_.share_embeddings) {
    // Shared tables participate in both steps (see AtnnModel).
    profile_bag_->CollectParameters(&params);
  } else {
    generator_bag_->CollectParameters(&params);
  }
  generator_tower_->CollectParameters(&params);
  return params;
}

void MultiTaskAtnnModel::CollectParameters(
    std::vector<nn::Parameter*>* out) {
  group_bag_->CollectParameters(out);
  profile_bag_->CollectParameters(out);
  if (generator_bag_ != nullptr) generator_bag_->CollectParameters(out);
  group_tower_->CollectParameters(out);
  encoder_tower_->CollectParameters(out);
  if (generator_tower_ != nullptr) generator_tower_->CollectParameters(out);
  gmv_head_->CollectParameters(out);
  vppv_head_->CollectParameters(out);
}

}  // namespace atnn::core
