#ifndef ATNN_CORE_MULTITASK_TRAINER_H_
#define ATNN_CORE_MULTITASK_TRAINER_H_

#include <vector>

#include "core/multitask_atnn.h"
#include "core/trainer.h"
#include "data/eleme.h"
#include "data/normalize.h"

namespace atnn::core {

/// Per-epoch averages of the Algorithm 2 losses (generator entries are 0
/// for the non-adversarial baseline).
struct MultiTaskEpochStats {
  double loss_gmv_d = 0.0;
  double loss_vppv_d = 0.0;
  double loss_gmv_g = 0.0;
  double loss_vppv_g = 0.0;
  double loss_s = 0.0;
};

/// Trains the extended ATNN per Algorithm 2 (D step then G step per batch);
/// for adversarial=false configurations, only the D step runs. Honors
/// TrainOptions::pool for batch prefetch (bitwise-identical loss history).
/// An empty train split returns an empty history (no NaN epoch rows).
std::vector<MultiTaskEpochStats> TrainMultiTaskAtnn(
    MultiTaskAtnnModel* model, const data::ElemeDataset& dataset,
    const TrainOptions& options);

/// Cold-start regression quality on the given trainside restaurant rows.
struct ElemeEval {
  double vppv_mae = 0.0;
  double gmv_mae = 0.0;
};
/// Forwards run in no-grad mode; with a pool, chunks are scored in
/// parallel and merged in deterministic chunk order.
ElemeEval EvaluateEleme(const MultiTaskAtnnModel& model,
                        const data::ElemeDataset& dataset,
                        const std::vector<int64_t>& restaurant_rows,
                        int batch_size = 1024, ThreadPool* pool = nullptr);

/// Normalizers for the Ele.me tables, fit on training restaurants only.
struct ElemeNormalizers {
  data::Normalizer profile;
  data::Normalizer stats;
  data::Normalizer group;
};

/// Standardizes the dataset's numeric columns in place (call once).
ElemeNormalizers NormalizeElemeInPlace(data::ElemeDataset* dataset);

}  // namespace atnn::core

#endif  // ATNN_CORE_MULTITASK_TRAINER_H_
