#ifndef ATNN_DATA_ELEME_H_
#define ATNN_DATA_ELEME_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "data/schema.h"

namespace atnn::data {

/// Parameters of the synthetic Ele.me-like food-delivery world (Section V
/// of the paper). Restaurants sign up with profile features only; realized
/// 30-day VpPV and GMV become labels. Users are aggregated into location
/// cells ("user groups") because delivery is location-sensitive.
struct ElemeConfig {
  /// Restaurants with realized first-30-day statistics (training pool).
  int64_t num_restaurants = 8000;
  /// Fresh applicants with profile only (online-experiment pool).
  int64_t num_new_restaurants = 2000;
  int64_t num_cells = 150;

  int latent_dim = 8;
  double profile_noise = 0.8;
  double stats_noise = 0.1;
  double label_noise = 0.35;

  double test_fraction = 0.2;

  int64_t num_brands = 300;
  int64_t num_themes = 12;
  int64_t num_cuisines = 30;

  uint64_t seed = 777;
};

/// Materialized food-delivery dataset plus hidden ground truth.
struct ElemeDataset {
  ElemeConfig config;

  SchemaPtr restaurant_profile_schema;
  SchemaPtr restaurant_stats_schema;
  SchemaPtr user_group_schema;

  /// Restaurant tables have num_restaurants + num_new_restaurants rows;
  /// the stats rows of new restaurants are zeros and must not be used.
  EntityTable restaurant_profiles;
  EntityTable restaurant_stats;
  EntityTable user_groups;

  /// Location cell (= user group row) of each restaurant.
  std::vector<int64_t> restaurant_cell;

  /// Regression labels for trainside restaurants (indices
  /// [0, num_restaurants)): value-per-page-view in (0,1) and log1p of the
  /// 30-day GMV.
  std::vector<float> vppv_labels;
  std::vector<float> gmv_labels;

  /// 80/20 split over trainside restaurant rows.
  std::vector<int64_t> train_indices;
  std::vector<int64_t> test_indices;

  /// Row range [num_restaurants, num_restaurants + num_new_restaurants).
  std::vector<int64_t> new_restaurants;

  // --- hidden ground truth (for the recruiting simulator) ---
  /// Expected per-view value and expected raw 30-day GMV for every
  /// restaurant (train + new).
  std::vector<double> true_vppv;
  std::vector<double> true_gmv;
  /// Latent quality (drives the expert baseline's partial signal).
  std::vector<double> true_quality;

  int64_t total_restaurants() const {
    return config.num_restaurants + config.num_new_restaurants;
  }
};

/// Generates the food-delivery world deterministically from config.seed.
ElemeDataset GenerateElemeDataset(const ElemeConfig& config);

/// Mini-batch for the multi-task model: restaurant profile block,
/// statistics block, user-group block and the two regression targets.
struct ElemeBatch {
  BlockBatch restaurant_profile;
  BlockBatch restaurant_stats;
  BlockBatch user_group;
  nn::Tensor vppv;  // [n, 1]
  nn::Tensor gmv;   // [n, 1]
};

/// Gathers the given trainside restaurant rows into a batch.
ElemeBatch MakeElemeBatch(const ElemeDataset& dataset,
                          std::span<const int64_t> restaurant_rows);

/// Brace-list convenience (std::span gains this ctor only in C++26).
inline ElemeBatch MakeElemeBatch(const ElemeDataset& dataset,
                                 std::initializer_list<int64_t> rows) {
  return MakeElemeBatch(dataset,
                        std::span<const int64_t>(rows.begin(), rows.size()));
}

}  // namespace atnn::data

#endif  // ATNN_DATA_ELEME_H_
