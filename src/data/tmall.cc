#include "data/tmall.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace atnn::data {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Builds the 19-feature user-profile schema (7 categorical, 12 numeric),
/// mirroring the raw-feature counts reported in the paper.
FeatureSchema MakeUserSchema(const TmallConfig& cfg) {
  std::vector<FeatureSpec> features;
  features.push_back(FeatureSpec::Categorical("user_id", cfg.num_users, 16));
  features.push_back(FeatureSpec::Categorical("gender", 3, 2));
  features.push_back(FeatureSpec::Categorical("age_bucket", 8, 4));
  features.push_back(
      FeatureSpec::Categorical("location", cfg.num_locations, 8));
  features.push_back(
      FeatureSpec::Categorical("occupation", cfg.num_occupations, 8));
  features.push_back(FeatureSpec::Categorical("purchase_power", 5, 4));
  features.push_back(
      FeatureSpec::Categorical("pref_category", cfg.num_categories, 16));
  features.push_back(FeatureSpec::Numeric("activity"));
  features.push_back(FeatureSpec::Numeric("days_active"));
  features.push_back(FeatureSpec::Numeric("avg_basket_value"));
  features.push_back(FeatureSpec::Numeric("avg_session_length"));
  for (int d = 0; d < 8; ++d) {
    features.push_back(FeatureSpec::Numeric("u_proj_" + std::to_string(d)));
  }
  ATNN_CHECK_EQ(features.size(), 19u);
  return FeatureSchema(std::move(features));
}

/// Builds the 38-feature item-profile schema (7 categorical, 31 numeric).
FeatureSchema MakeItemProfileSchema(const TmallConfig& cfg) {
  std::vector<FeatureSpec> features;
  features.push_back(
      FeatureSpec::Categorical("category", cfg.num_categories, 6));
  features.push_back(
      FeatureSpec::Categorical("subcategory", cfg.num_subcategories, 16));
  features.push_back(FeatureSpec::Categorical("brand", cfg.num_brands, 16));
  features.push_back(FeatureSpec::Categorical("seller", cfg.num_sellers, 16));
  features.push_back(FeatureSpec::Categorical("price_bucket", 10, 4));
  features.push_back(FeatureSpec::Categorical("shipping_type", 4, 2));
  features.push_back(FeatureSpec::Categorical("origin", 20, 4));
  features.push_back(FeatureSpec::Numeric("price_log"));
  features.push_back(FeatureSpec::Numeric("title_length"));
  features.push_back(FeatureSpec::Numeric("num_images"));
  features.push_back(FeatureSpec::Numeric("description_quality"));
  features.push_back(FeatureSpec::Numeric("seller_reputation"));
  features.push_back(FeatureSpec::Numeric("seller_scale"));
  features.push_back(FeatureSpec::Numeric("listing_completeness"));
  for (int d = 0; d < 8; ++d) {
    features.push_back(FeatureSpec::Numeric("p_proj_" + std::to_string(d)));
  }
  for (int d = 0; d < 16; ++d) {
    features.push_back(FeatureSpec::Numeric("p2_proj_" + std::to_string(d)));
  }
  ATNN_CHECK_EQ(features.size(), 38u);
  return FeatureSchema(std::move(features));
}

/// Builds the 46-feature item-statistics schema (all numeric): counts and
/// rates over 7/14/30-day windows plus a behaviour-embedding block.
FeatureSchema MakeItemStatsSchema() {
  std::vector<FeatureSpec> features;
  const char* kWindows[] = {"7d", "14d", "30d"};
  const char* kCounts[] = {"pv", "uv", "click", "cart", "fav", "purchase",
                           "gmv"};
  for (const char* window : kWindows) {
    for (const char* count : kCounts) {
      features.push_back(
          FeatureSpec::Numeric(std::string(count) + "_" + window));
    }
  }
  const char* kRates[] = {"ctr", "cart_rate", "fav_rate", "conversion"};
  for (const char* window : kWindows) {
    for (const char* rate : kRates) {
      features.push_back(
          FeatureSpec::Numeric(std::string(rate) + "_" + window));
    }
  }
  for (int d = 0; d < 8; ++d) {
    features.push_back(FeatureSpec::Numeric("b_proj_" + std::to_string(d)));
  }
  features.push_back(FeatureSpec::Numeric("return_rate"));
  features.push_back(FeatureSpec::Numeric("avg_dwell_seconds"));
  features.push_back(FeatureSpec::Numeric("search_ctr"));
  features.push_back(FeatureSpec::Numeric("rec_ctr"));
  features.push_back(FeatureSpec::Numeric("share_count"));
  ATNN_CHECK_EQ(features.size(), 46u);
  return FeatureSchema(std::move(features));
}

/// Samples an index from a cumulative weight table via binary search.
int64_t SampleCdf(const std::vector<double>& cdf, Rng* rng) {
  const double target = rng->Uniform() * cdf.back();
  const auto it = std::upper_bound(cdf.begin(), cdf.end(), target);
  return std::min<int64_t>(static_cast<int64_t>(it - cdf.begin()),
                           static_cast<int64_t>(cdf.size()) - 1);
}

}  // namespace

double TmallDataset::TrueClickProbability(int64_t user, int64_t item) const {
  const int k = config.latent_dim;
  const double* theta = &user_latents[static_cast<size_t>(user * k)];
  const double* phi = &item_latents[static_cast<size_t>(item * k)];
  double dot = 0.0;
  for (int d = 0; d < k; ++d) dot += theta[d] * phi[d];
  const double logit = config.base_logit +
                       config.affinity_scale * dot / std::sqrt(double(k)) +
                       user_bias[static_cast<size_t>(user)] +
                       config.quality_scale * true_quality[size_t(item)];
  return Sigmoid(logit);
}

TmallDataset GenerateTmallDataset(const TmallConfig& config) {
  ATNN_CHECK(config.num_users > 0);
  ATNN_CHECK(config.num_items > 0);
  ATNN_CHECK(config.num_new_items >= 0);
  ATNN_CHECK(config.latent_dim > 0);
  ATNN_CHECK_EQ(config.num_subcategories, config.num_categories * 4);

  TmallDataset ds;
  ds.config = config;
  ds.user_schema = std::make_shared<FeatureSchema>(MakeUserSchema(config));
  ds.item_profile_schema =
      std::make_shared<FeatureSchema>(MakeItemProfileSchema(config));
  ds.item_stats_schema =
      std::make_shared<FeatureSchema>(MakeItemStatsSchema());

  const int64_t total_items = config.num_items + config.num_new_items;
  const int k = config.latent_dim;
  ds.users = EntityTable(ds.user_schema, config.num_users);
  ds.item_profiles = EntityTable(ds.item_profile_schema, total_items);
  ds.item_stats = EntityTable(ds.item_stats_schema, total_items);

  Rng root(config.seed);
  Rng world_rng = root.Fork(1);
  Rng user_rng = root.Fork(2);
  Rng item_rng = root.Fork(3);
  Rng stats_rng = root.Fork(4);
  Rng interact_rng = root.Fork(5);

  // --- world structure ---
  // Category centroids in latent space; items cluster around them so the
  // category id is genuinely informative of the item latent.
  std::vector<double> category_centroid(
      static_cast<size_t>(config.num_categories * k));
  for (double& v : category_centroid) v = world_rng.Normal();
  std::vector<double> category_price(
      static_cast<size_t>(config.num_categories));
  for (double& v : category_price) v = world_rng.Normal(3.5, 0.8);
  std::vector<double> brand_quality(static_cast<size_t>(config.num_brands));
  for (double& v : brand_quality) v = world_rng.Normal(0.0, 0.6);
  std::vector<double> seller_quality(static_cast<size_t>(config.num_sellers));
  for (double& v : seller_quality) v = world_rng.Normal(0.0, 0.6);
  // Fixed random projection exposing the item latent through 16 profile
  // columns (a stand-in for text/image embeddings of the listing).
  std::vector<double> profile_projection(static_cast<size_t>(k * 16));
  for (double& v : profile_projection) {
    v = world_rng.Normal(0.0, 1.0 / std::sqrt(double(k)));
  }

  // --- users ---
  ds.user_latents.resize(static_cast<size_t>(config.num_users * k));
  ds.user_bias.resize(static_cast<size_t>(config.num_users));
  ds.user_activity.resize(static_cast<size_t>(config.num_users));
  for (int64_t u = 0; u < config.num_users; ++u) {
    double* theta = &ds.user_latents[static_cast<size_t>(u * k)];
    for (int d = 0; d < k; ++d) theta[d] = user_rng.Normal();
    ds.user_bias[size_t(u)] = user_rng.Normal(0.0, 0.3);
    ds.user_activity[size_t(u)] = user_rng.LogNormal(0.0, 1.0);

    ds.users.set_categorical(0, u, u);  // user_id
    ds.users.set_categorical(1, u, int64_t(user_rng.UniformInt(uint64_t(3))));
    ds.users.set_categorical(2, u, int64_t(user_rng.Zipf(8, 0.6)));
    ds.users.set_categorical(
        3, u, int64_t(user_rng.Zipf(size_t(config.num_locations), 0.9)));
    ds.users.set_categorical(
        4, u, int64_t(user_rng.Zipf(size_t(config.num_occupations), 0.7)));
    const auto power = int64_t(user_rng.Zipf(5, 0.5));
    ds.users.set_categorical(5, u, power);
    // Preferred category: argmax affinity against category centroids.
    int64_t best_category = 0;
    double best_affinity = -1e30;
    for (int64_t c = 0; c < config.num_categories; ++c) {
      double dot = 0.0;
      const double* mu = &category_centroid[static_cast<size_t>(c * k)];
      for (int d = 0; d < k; ++d) dot += theta[d] * mu[d];
      if (dot > best_affinity) {
        best_affinity = dot;
        best_category = c;
      }
    }
    ds.users.set_categorical(6, u, best_category);

    ds.users.set_numeric(
        0, u, float(std::log(ds.user_activity[size_t(u)]) +
                    user_rng.Normal(0.0, 0.2)));
    ds.users.set_numeric(1, u, float(user_rng.Uniform(1.0, 1500.0)));
    ds.users.set_numeric(
        2, u, float(user_rng.LogNormal(3.0 + 0.4 * double(power), 0.5)));
    ds.users.set_numeric(3, u, float(user_rng.LogNormal(1.5, 0.4)));
    for (int d = 0; d < 8; ++d) {
      const double proj = d < k ? theta[d] : 0.0;
      ds.users.set_numeric(
          size_t(4 + d), u,
          float(proj + user_rng.Normal(0.0, config.user_profile_noise)));
    }
  }

  // --- items (catalog then new arrivals; identical generative process) ---
  ds.item_latents.resize(static_cast<size_t>(total_items * k));
  ds.true_quality.resize(static_cast<size_t>(total_items));
  ds.true_price.resize(static_cast<size_t>(total_items));
  std::vector<int64_t> item_brand(static_cast<size_t>(total_items));
  std::vector<int64_t> item_seller(static_cast<size_t>(total_items));
  std::vector<double> item_price_log(static_cast<size_t>(total_items));
  for (int64_t i = 0; i < total_items; ++i) {
    const auto category =
        int64_t(item_rng.Zipf(size_t(config.num_categories), 1.05));
    const int64_t subcategory =
        category * 4 + int64_t(item_rng.UniformInt(uint64_t(4)));
    const auto brand = int64_t(item_rng.Zipf(size_t(config.num_brands), 1.0));
    const auto seller =
        int64_t(item_rng.Zipf(size_t(config.num_sellers), 1.0));
    item_brand[size_t(i)] = brand;
    item_seller[size_t(i)] = seller;

    double* phi = &ds.item_latents[static_cast<size_t>(i * k)];
    const double* mu = &category_centroid[static_cast<size_t>(category * k)];
    for (int d = 0; d < k; ++d) {
      phi[d] = 0.65 * mu[d] + 0.76 * item_rng.Normal();
    }
    const double quality = 0.6 * item_rng.Normal() +
                           0.45 * brand_quality[size_t(brand)] +
                           0.45 * seller_quality[size_t(seller)];
    ds.true_quality[size_t(i)] = quality;

    const double price_log = category_price[size_t(category)] +
                             0.4 * item_rng.Normal() + 0.2 * quality;
    item_price_log[size_t(i)] = price_log;
    ds.true_price[size_t(i)] = std::exp(price_log);
    const auto price_bucket = std::clamp<int64_t>(
        static_cast<int64_t>((price_log - 1.0) / 0.6), 0, 9);

    ds.item_profiles.set_categorical(0, i, category);
    ds.item_profiles.set_categorical(1, i, subcategory);
    ds.item_profiles.set_categorical(2, i, brand);
    ds.item_profiles.set_categorical(3, i, seller);
    ds.item_profiles.set_categorical(4, i, price_bucket);
    ds.item_profiles.set_categorical(
        5, i, int64_t(item_rng.UniformInt(uint64_t(4))));
    ds.item_profiles.set_categorical(6, i, int64_t(item_rng.Zipf(20, 1.0)));

    ds.item_profiles.set_numeric(0, i, float(price_log));
    ds.item_profiles.set_numeric(1, i, float(item_rng.Normal(30.0, 8.0)));
    ds.item_profiles.set_numeric(
        2, i, float(item_rng.Poisson(std::max(0.5, 5.0 + quality))));
    ds.item_profiles.set_numeric(
        3, i, float(0.6 * quality + item_rng.Normal(0.0, 0.8)));
    ds.item_profiles.set_numeric(
        4, i,
        float(seller_quality[size_t(seller)] + item_rng.Normal(0.0, 0.3)));
    ds.item_profiles.set_numeric(
        5, i, float(-std::log((double(seller) + 1.0) /
                              double(config.num_sellers))));
    ds.item_profiles.set_numeric(
        6, i, float(Sigmoid(0.5 * quality + item_rng.Normal())));
    for (int d = 0; d < 8; ++d) {
      const double proj = d < k ? phi[d] : 0.0;
      ds.item_profiles.set_numeric(
          size_t(7 + d), i,
          float(proj + item_rng.Normal(0.0, config.profile_noise)));
    }
    for (int d = 0; d < 16; ++d) {
      double proj = 0.0;
      for (int j = 0; j < k; ++j) {
        proj += phi[j] * profile_projection[static_cast<size_t>(j * 16 + d)];
      }
      ds.item_profiles.set_numeric(
          size_t(15 + d), i,
          float(proj + item_rng.Normal(0.0, config.profile_noise)));
    }
  }

  // --- ground-truth attractiveness (population mean click probability) ---
  ds.true_attractiveness.resize(static_cast<size_t>(total_items));
  const int64_t sample_users =
      std::min(config.attractiveness_sample, config.num_users);
  std::vector<int64_t> probe_users(static_cast<size_t>(config.num_users));
  std::iota(probe_users.begin(), probe_users.end(), 0);
  world_rng.Shuffle(&probe_users);
  probe_users.resize(static_cast<size_t>(sample_users));
  for (int64_t i = 0; i < total_items; ++i) {
    double total = 0.0;
    for (int64_t u : probe_users) total += ds.TrueClickProbability(u, i);
    ds.true_attractiveness[size_t(i)] = total / double(sample_users);
  }

  // --- item statistics (catalog items only; new arrivals stay zero) ---
  auto& stats = ds.item_stats;
  for (int64_t i = 0; i < config.num_items; ++i) {
    const double attract = ds.true_attractiveness[size_t(i)];
    const double quality = ds.true_quality[size_t(i)];
    const double exposure = stats_rng.LogNormal(4.5, 0.7);
    const double noise = config.stats_noise;

    const double pv30 = exposure * 30.0 * std::exp(stats_rng.Normal(0, noise));
    const double uv30 = pv30 * stats_rng.Uniform(0.5, 0.8);
    const double click30 =
        pv30 * attract * std::exp(stats_rng.Normal(0, noise));
    const double cart30 =
        click30 * 0.30 * Sigmoid(0.6 * quality + stats_rng.Normal(0, 0.3));
    const double fav30 =
        click30 * 0.20 * Sigmoid(0.5 * quality + stats_rng.Normal(0, 0.3));
    const double purchase30 =
        cart30 * 0.50 * Sigmoid(0.8 * quality + stats_rng.Normal(0, 0.3));
    const double gmv30 = purchase30 * std::exp(item_price_log[size_t(i)]);

    const double f7 = 0.23 * std::exp(stats_rng.Normal(0, 0.1));
    const double f14 = 0.47 * std::exp(stats_rng.Normal(0, 0.1));
    const double counts30[7] = {pv30, uv30,       click30, cart30,
                                fav30, purchase30, gmv30};
    // Counts are stored as log1p — the natural scale for heavy-tailed
    // traffic features.
    for (int c = 0; c < 7; ++c) {
      stats.set_numeric(size_t(0 + c), i, float(std::log1p(counts30[c] * f7)));
      stats.set_numeric(size_t(7 + c), i,
                        float(std::log1p(counts30[c] * f14)));
      stats.set_numeric(size_t(14 + c), i, float(std::log1p(counts30[c])));
    }
    // Rates per window (identical across windows up to noise).
    for (int w = 0; w < 3; ++w) {
      const double rate_noise = std::exp(stats_rng.Normal(0, 0.05));
      stats.set_numeric(size_t(21 + w * 4 + 0), i,
                        float(click30 / std::max(pv30, 1.0) * rate_noise));
      stats.set_numeric(size_t(21 + w * 4 + 1), i,
                        float(cart30 / std::max(click30, 1.0) * rate_noise));
      stats.set_numeric(size_t(21 + w * 4 + 2), i,
                        float(fav30 / std::max(click30, 1.0) * rate_noise));
      stats.set_numeric(
          size_t(21 + w * 4 + 3), i,
          float(purchase30 / std::max(click30, 1.0) * rate_noise));
    }
    // Behaviour-embedding block: the item latent observed through
    // co-engagement, with low noise. This is what makes complete features
    // strictly more informative than profiles.
    const double* phi = &ds.item_latents[static_cast<size_t>(i * k)];
    for (int d = 0; d < 8; ++d) {
      const double proj = d < k ? phi[d] : 0.0;
      stats.set_numeric(size_t(33 + d), i,
                        float(proj + stats_rng.Normal(0.0, noise)));
    }
    stats.set_numeric(41, i,
                      float(Sigmoid(-0.8 * quality + stats_rng.Normal(0, 0.4))));
    stats.set_numeric(
        42, i, float(30.0 + 40.0 * attract + stats_rng.Normal(0.0, 3.0)));
    stats.set_numeric(
        43, i, float(attract * std::exp(stats_rng.Normal(0, noise))));
    stats.set_numeric(
        44, i, float(attract * std::exp(stats_rng.Normal(0, noise))));
    stats.set_numeric(45, i, float(std::log1p(click30 * 0.02)));
  }

  ds.catalog_items.resize(static_cast<size_t>(config.num_items));
  std::iota(ds.catalog_items.begin(), ds.catalog_items.end(), 0);
  ds.new_items.resize(static_cast<size_t>(config.num_new_items));
  std::iota(ds.new_items.begin(), ds.new_items.end(), config.num_items);

  // --- interactions over catalog items ---
  std::vector<double> user_cdf(static_cast<size_t>(config.num_users));
  double acc = 0.0;
  for (int64_t u = 0; u < config.num_users; ++u) {
    acc += ds.user_activity[size_t(u)];
    user_cdf[size_t(u)] = acc;
  }
  std::vector<double> item_cdf(static_cast<size_t>(config.num_items));
  acc = 0.0;
  for (int64_t i = 0; i < config.num_items; ++i) {
    // Exposure-weighted item sampling: better items get shown more.
    acc += std::exp(0.7 * ds.true_quality[size_t(i)] +
                    0.3 * interact_rng.Normal());
    item_cdf[size_t(i)] = acc;
  }

  ds.interaction_user.reserve(static_cast<size_t>(config.num_interactions));
  ds.interaction_item.reserve(static_cast<size_t>(config.num_interactions));
  ds.labels.reserve(static_cast<size_t>(config.num_interactions));
  for (int64_t n = 0; n < config.num_interactions; ++n) {
    const int64_t u = SampleCdf(user_cdf, &interact_rng);
    const int64_t i = SampleCdf(item_cdf, &interact_rng);
    const double p = ds.TrueClickProbability(u, i);
    ds.interaction_user.push_back(u);
    ds.interaction_item.push_back(i);
    ds.labels.push_back(interact_rng.Bernoulli(p) ? 1.0f : 0.0f);
  }

  // --- train/test split ---
  std::vector<int64_t> order(static_cast<size_t>(config.num_interactions));
  std::iota(order.begin(), order.end(), 0);
  interact_rng.Shuffle(&order);
  const auto test_count = static_cast<size_t>(
      double(config.num_interactions) * config.test_fraction);
  ds.test_indices.assign(order.begin(), order.begin() + test_count);
  ds.train_indices.assign(order.begin() + test_count, order.end());

  return ds;
}

CtrBatch MakeCtrBatch(const TmallDataset& dataset,
                      std::span<const int64_t> interaction_indices) {
  std::vector<int64_t> user_rows;
  std::vector<int64_t> item_rows;
  user_rows.reserve(interaction_indices.size());
  item_rows.reserve(interaction_indices.size());
  nn::Tensor labels(static_cast<int64_t>(interaction_indices.size()), 1);
  for (size_t n = 0; n < interaction_indices.size(); ++n) {
    const auto idx = static_cast<size_t>(interaction_indices[n]);
    ATNN_DCHECK(idx < dataset.interaction_user.size());
    user_rows.push_back(dataset.interaction_user[idx]);
    item_rows.push_back(dataset.interaction_item[idx]);
    labels.at(static_cast<int64_t>(n), 0) = dataset.labels[idx];
  }
  CtrBatch batch;
  batch.user = GatherBlock(dataset.users, user_rows);
  batch.item_profile = GatherBlock(dataset.item_profiles, item_rows);
  batch.item_stats = GatherBlock(dataset.item_stats, item_rows);
  batch.labels = std::move(labels);
  return batch;
}

}  // namespace atnn::data
