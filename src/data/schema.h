#ifndef ATNN_DATA_SCHEMA_H_
#define ATNN_DATA_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/macros.h"
#include "nn/tensor.h"

namespace atnn::data {

enum class FeatureKind { kCategorical, kNumeric };

/// Declaration of one raw feature. Categorical features carry a vocabulary
/// size and the embedding width used when feeding a neural tower (the paper
/// maps e.g. user id -> 16 dims, item category -> 6 dims).
struct FeatureSpec {
  std::string name;
  FeatureKind kind = FeatureKind::kNumeric;
  /// Number of distinct values; categorical only.
  int64_t vocab_size = 0;
  /// Embedding width when used in a neural tower; categorical only.
  int64_t embed_dim = 0;

  static FeatureSpec Categorical(std::string name, int64_t vocab_size,
                                 int64_t embed_dim) {
    FeatureSpec spec;
    spec.name = std::move(name);
    spec.kind = FeatureKind::kCategorical;
    spec.vocab_size = vocab_size;
    spec.embed_dim = embed_dim;
    return spec;
  }
  static FeatureSpec Numeric(std::string name) {
    FeatureSpec spec;
    spec.name = std::move(name);
    spec.kind = FeatureKind::kNumeric;
    return spec;
  }
};

/// Ordered list of feature declarations for one feature block (user
/// profile, item profile or item statistics).
class FeatureSchema {
 public:
  FeatureSchema() = default;
  explicit FeatureSchema(std::vector<FeatureSpec> features);

  const std::vector<FeatureSpec>& features() const { return features_; }
  size_t num_features() const { return features_.size(); }
  size_t num_categorical() const { return categorical_indices_.size(); }
  size_t num_numeric() const { return numeric_indices_.size(); }

  /// Indices (into features()) of the categorical / numeric features, in
  /// declaration order. Columnar tables store the two groups separately.
  const std::vector<size_t>& categorical_indices() const {
    return categorical_indices_;
  }
  const std::vector<size_t>& numeric_indices() const {
    return numeric_indices_;
  }

  /// Spec of the c-th categorical feature.
  const FeatureSpec& categorical_spec(size_t c) const {
    return features_[categorical_indices_[c]];
  }

  /// Total embedding width of all categorical features.
  int64_t TotalEmbedDim() const;

  /// Width of a tower input assembled from this schema:
  /// TotalEmbedDim() + num_numeric().
  int64_t TowerInputDim() const {
    return TotalEmbedDim() + static_cast<int64_t>(num_numeric());
  }

 private:
  std::vector<FeatureSpec> features_;
  std::vector<size_t> categorical_indices_;
  std::vector<size_t> numeric_indices_;
};

/// Columnar feature storage for a set of entities (users, items or
/// restaurants) under one schema. Categorical values are ids in
/// [0, vocab_size); numeric values are raw floats (normalize before
/// training — see normalize.h).
using SchemaPtr = std::shared_ptr<const FeatureSchema>;

class EntityTable {
 public:
  EntityTable() = default;
  EntityTable(SchemaPtr schema, int64_t num_rows);

  const FeatureSchema& schema() const { return *schema_; }
  int64_t num_rows() const { return num_rows_; }

  int64_t categorical(size_t field, int64_t row) const {
    ATNN_DCHECK(field < categorical_.size());
    return categorical_[field][static_cast<size_t>(row)];
  }
  void set_categorical(size_t field, int64_t row, int64_t value);

  float numeric(size_t field, int64_t row) const {
    return numeric_.at(row, static_cast<int64_t>(field));
  }
  void set_numeric(size_t field, int64_t row, float value) {
    numeric_.at(row, static_cast<int64_t>(field)) = value;
  }

  /// The dense numeric block, [num_rows, num_numeric].
  const nn::Tensor& numeric_block() const { return numeric_; }
  nn::Tensor* mutable_numeric_block() { return &numeric_; }

  /// Full column of one categorical field.
  const std::vector<int64_t>& categorical_column(size_t field) const {
    return categorical_[field];
  }

  const SchemaPtr& schema_ptr() const { return schema_; }

 private:
  SchemaPtr schema_;
  int64_t num_rows_ = 0;
  std::vector<std::vector<int64_t>> categorical_;  // [field][row]
  nn::Tensor numeric_;                             // [row, field]
};

/// Gathered model input for one feature block of a mini-batch: per-field
/// categorical id vectors plus the dense numeric slab. This is exactly the
/// shape nn::EmbeddingBag::Forward consumes.
struct BlockBatch {
  std::vector<std::vector<int64_t>> categorical;  // [field][row]
  nn::Tensor numeric;                             // [row, num_numeric]

  int64_t rows() const {
    return numeric.rows() > 0
               ? numeric.rows()
               : (categorical.empty()
                      ? 0
                      : static_cast<int64_t>(categorical[0].size()));
  }
};

/// Gathers the given entity rows into a BlockBatch. Takes a view so hot
/// loops (shuffle-then-batch training epochs) can hand out slices of one
/// shuffled index vector without materializing a fresh vector per batch.
BlockBatch GatherBlock(const EntityTable& table, std::span<const int64_t> rows);

/// Brace-list convenience (std::span gains this ctor only in C++26).
inline BlockBatch GatherBlock(const EntityTable& table,
                              std::initializer_list<int64_t> rows) {
  return GatherBlock(table, std::span<const int64_t>(rows.begin(),
                                                     rows.size()));
}

/// Materializes the given rows of `table` as a standalone EntityTable under
/// the same schema: slice row i is table row rows[i]. Rows may repeat or
/// reorder. The sharded serving layer uses this to give every shard its own
/// catalog slice (local row -> global row mapping kept by the caller).
/// Checked abort on an out-of-range row — callers partition rows they just
/// enumerated, so a bad index is a programmer error, not input.
EntityTable SliceRows(const EntityTable& table,
                      std::span<const int64_t> rows);

}  // namespace atnn::data

#endif  // ATNN_DATA_SCHEMA_H_
