#ifndef ATNN_DATA_CSV_H_
#define ATNN_DATA_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/schema.h"

namespace atnn::data {

/// Splits one CSV line into fields per RFC 4180: a trailing '\r' (CRLF
/// files from Windows tooling / Excel exports) is stripped, and a field
/// that starts with '"' is read as a quoted field — commas inside it do
/// not split, and a doubled quote ("") is a literal quote character.
/// Lenient on malformed quoting (an unterminated quote takes the rest of
/// the line; text after a closing quote is appended verbatim): the
/// callers' field-count and value parses are the error boundary, and a
/// hard error here would reject files other readers accept.
std::vector<std::string> SplitCsvLine(std::string_view line);

/// Writes an entity table as CSV: a header row with feature names (in
/// schema declaration order), then one row per entity. Categorical values
/// are written as integer ids, numerics with full float precision.
Status WriteEntityTableCsv(const EntityTable& table, const std::string& path);

/// Reads a CSV written by WriteEntityTableCsv back into a table under the
/// given schema. Fails with Corruption on header/schema mismatch, bad
/// field counts, unparsable values, or out-of-vocabulary categorical ids.
StatusOr<EntityTable> ReadEntityTableCsv(SchemaPtr schema,
                                         const std::string& path);

/// Writes an interaction log (user, item, label) as CSV.
Status WriteInteractionsCsv(const std::vector<int64_t>& users,
                            const std::vector<int64_t>& items,
                            const std::vector<float>& labels,
                            const std::string& path);

/// Reads an interaction log written by WriteInteractionsCsv.
struct InteractionLog {
  std::vector<int64_t> users;
  std::vector<int64_t> items;
  std::vector<float> labels;
};
StatusOr<InteractionLog> ReadInteractionsCsv(const std::string& path);

/// Dumps a full Tmall dataset to `directory` (which must exist) as
/// users.csv, item_profiles.csv, item_stats.csv, interactions.csv and
/// splits.csv (interaction index -> train/test). For offline exploration
/// with external tooling; the hidden ground truth is deliberately NOT
/// exported (models and analyses must not see it).
Status ExportTmallDatasetCsv(const struct TmallDataset& dataset,
                             const std::string& directory);

}  // namespace atnn::data

#endif  // ATNN_DATA_CSV_H_
