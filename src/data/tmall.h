#ifndef ATNN_DATA_TMALL_H_
#define ATNN_DATA_TMALL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "data/schema.h"

namespace atnn::data {

/// Parameters of the synthetic Tmall-like world. The real dataset (23.1M
/// items, 4M users, 40M interactions; 19 user / 38 item-profile / 46
/// item-statistics raw features) is proprietary, so we generate a scaled
/// latent-factor world with the same schema shape. See DESIGN.md §2 for why
/// the substitution preserves the paper's relative claims.
struct TmallConfig {
  int64_t num_users = 2000;
  /// Catalog items: have interaction history and item statistics.
  int64_t num_items = 4000;
  /// New arrivals: profile only, no interactions, no statistics.
  int64_t num_new_items = 1000;
  int64_t num_interactions = 150000;

  /// Dimensionality of the latent user/item preference space.
  int latent_dim = 8;

  /// Noise stddev on the latent projections exposed through item profiles.
  /// Larger than stats_noise: profiles are weaker evidence than behaviour.
  double profile_noise = 0.9;
  /// Noise stddev on the behaviour-derived statistics features.
  double stats_noise = 0.25;
  /// Noise on user-profile latent projections.
  double user_profile_noise = 0.5;

  /// Base click logit; -2.2 gives a realistic ~10% positive rate.
  double base_logit = -2.2;
  /// Weight of the latent affinity term in the click logit.
  double affinity_scale = 2.2;
  /// Weight of item quality in the click logit.
  double quality_scale = 0.9;

  /// Fraction of interactions held out as the test split.
  double test_fraction = 0.2;

  /// Vocabulary sizes for categorical features.
  int64_t num_categories = 40;
  int64_t num_subcategories = 160;
  int64_t num_brands = 240;
  int64_t num_sellers = 400;
  int64_t num_locations = 50;
  int64_t num_occupations = 12;

  /// Number of users sampled when estimating an item's ground-truth
  /// population attractiveness (used by the market simulator).
  int64_t attractiveness_sample = 512;

  uint64_t seed = 42;
};

/// Fully materialized synthetic dataset plus the hidden ground truth that
/// generated it. The ground-truth fields are consumed only by the market
/// simulator and by diagnostics/tests — models never see them.
struct TmallDataset {
  TmallConfig config;

  SchemaPtr user_schema;
  SchemaPtr item_profile_schema;
  SchemaPtr item_stats_schema;

  /// Feature tables. Item tables have num_items + num_new_items rows; the
  /// new-arrival rows of `item_stats` are all zeros and must not be used
  /// (new arrivals have no statistics by definition).
  EntityTable users;
  EntityTable item_profiles;
  EntityTable item_stats;

  /// Interaction log (user, item, clicked). Items here are catalog items.
  std::vector<int64_t> interaction_user;
  std::vector<int64_t> interaction_item;
  std::vector<float> labels;

  /// Disjoint 80/20 split over interaction indices.
  std::vector<int64_t> train_indices;
  std::vector<int64_t> test_indices;

  /// Row ranges: catalog items are [0, num_items), new arrivals are
  /// [num_items, num_items + num_new_items).
  std::vector<int64_t> catalog_items;
  std::vector<int64_t> new_items;

  // --- hidden ground truth ---
  /// Population-mean click probability per item (catalog + new).
  std::vector<double> true_attractiveness;
  /// Latent item quality (drives GMV/conversion in the simulator).
  std::vector<double> true_quality;
  /// Raw item price (the simulator's GMV unit; profile features only carry
  /// a normalized log price).
  std::vector<double> true_price;
  /// Per-user activity weights used when sampling interactions.
  std::vector<double> user_activity;

  int64_t total_items() const {
    return config.num_items + config.num_new_items;
  }

  /// True click probability for a specific (user, item) pair.
  double TrueClickProbability(int64_t user, int64_t item) const;

  // Internal ground-truth state needed by TrueClickProbability.
  std::vector<double> user_latents;  // [num_users * latent_dim]
  std::vector<double> item_latents;  // [total_items * latent_dim]
  std::vector<double> user_bias;
};

/// Generates the world and the dataset deterministically from the config
/// seed. Numeric features are left raw; fit a Normalizer on the training
/// rows before feeding towers.
TmallDataset GenerateTmallDataset(const TmallConfig& config);

/// A mini-batch of (user, item, label) rows gathered into tower inputs.
struct CtrBatch {
  BlockBatch user;
  BlockBatch item_profile;
  BlockBatch item_stats;
  nn::Tensor labels;  // [n, 1]
};

/// Gathers the given interaction indices into a CtrBatch. The view
/// parameter lets training loops pass batch slices of the shuffled epoch
/// order without per-batch index copies.
CtrBatch MakeCtrBatch(const TmallDataset& dataset,
                      std::span<const int64_t> interaction_indices);

/// Brace-list convenience (std::span gains this ctor only in C++26).
inline CtrBatch MakeCtrBatch(const TmallDataset& dataset,
                             std::initializer_list<int64_t> indices) {
  return MakeCtrBatch(
      dataset, std::span<const int64_t>(indices.begin(), indices.size()));
}

}  // namespace atnn::data

#endif  // ATNN_DATA_TMALL_H_
