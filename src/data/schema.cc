#include "data/schema.h"

namespace atnn::data {

FeatureSchema::FeatureSchema(std::vector<FeatureSpec> features)
    : features_(std::move(features)) {
  for (size_t i = 0; i < features_.size(); ++i) {
    const FeatureSpec& spec = features_[i];
    if (spec.kind == FeatureKind::kCategorical) {
      ATNN_CHECK(spec.vocab_size > 0) << "feature " << spec.name;
      ATNN_CHECK(spec.embed_dim > 0) << "feature " << spec.name;
      categorical_indices_.push_back(i);
    } else {
      numeric_indices_.push_back(i);
    }
  }
}

int64_t FeatureSchema::TotalEmbedDim() const {
  int64_t total = 0;
  for (size_t idx : categorical_indices_) total += features_[idx].embed_dim;
  return total;
}

EntityTable::EntityTable(SchemaPtr schema, int64_t num_rows)
    : schema_(std::move(schema)),
      num_rows_(num_rows),
      numeric_(num_rows, static_cast<int64_t>(schema_->num_numeric())) {
  ATNN_CHECK(schema_ != nullptr);
  ATNN_CHECK(num_rows >= 0);
  categorical_.resize(schema_->num_categorical());
  for (auto& column : categorical_) {
    column.assign(static_cast<size_t>(num_rows), 0);
  }
}

void EntityTable::set_categorical(size_t field, int64_t row, int64_t value) {
  ATNN_DCHECK(field < categorical_.size());
  const int64_t vocab = schema_->categorical_spec(field).vocab_size;
  ATNN_CHECK(value >= 0 && value < vocab)
      << "value " << value << " out of vocab " << vocab << " for field "
      << schema_->categorical_spec(field).name;
  categorical_[field][static_cast<size_t>(row)] = value;
}

BlockBatch GatherBlock(const EntityTable& table,
                       std::span<const int64_t> rows) {
  const FeatureSchema& schema = table.schema();
  BlockBatch batch;
  batch.categorical.resize(schema.num_categorical());
  const auto batch_size = static_cast<int64_t>(rows.size());
  for (size_t f = 0; f < schema.num_categorical(); ++f) {
    batch.categorical[f].reserve(rows.size());
    for (int64_t row : rows) {
      batch.categorical[f].push_back(table.categorical(f, row));
    }
  }
  batch.numeric = nn::Tensor(batch_size,
                             static_cast<int64_t>(schema.num_numeric()));
  for (int64_t r = 0; r < batch_size; ++r) {
    const int64_t src = rows[static_cast<size_t>(r)];
    for (size_t f = 0; f < schema.num_numeric(); ++f) {
      batch.numeric.at(r, static_cast<int64_t>(f)) = table.numeric(f, src);
    }
  }
  return batch;
}

EntityTable SliceRows(const EntityTable& table,
                      std::span<const int64_t> rows) {
  const FeatureSchema& schema = table.schema();
  EntityTable slice(table.schema_ptr(), static_cast<int64_t>(rows.size()));
  for (int64_t local = 0; local < slice.num_rows(); ++local) {
    const int64_t src = rows[static_cast<size_t>(local)];
    ATNN_CHECK(src >= 0 && src < table.num_rows())
        << "SliceRows: row " << src << " outside table of "
        << table.num_rows();
    for (size_t f = 0; f < schema.num_categorical(); ++f) {
      slice.set_categorical(f, local, table.categorical(f, src));
    }
    for (size_t f = 0; f < schema.num_numeric(); ++f) {
      slice.set_numeric(f, local, table.numeric(f, src));
    }
  }
  return slice;
}

}  // namespace atnn::data
