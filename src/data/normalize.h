#ifndef ATNN_DATA_NORMALIZE_H_
#define ATNN_DATA_NORMALIZE_H_

#include <vector>

#include "data/schema.h"

namespace atnn::data {

/// Per-column standardization statistics (mean/stddev), fit on training
/// rows only to avoid test-set leakage.
class Normalizer {
 public:
  Normalizer() = default;

  /// Fits mean and stddev per numeric column over the given rows of the
  /// table (all rows when `rows` is empty).
  static Normalizer Fit(const EntityTable& table,
                        const std::vector<int64_t>& rows = {});

  /// In-place standardizes every numeric column of the table:
  /// x -> (x - mean) / max(stddev, eps).
  void Apply(EntityTable* table) const;

  /// Standardizes a gathered numeric slab ([rows, num_numeric]).
  void Apply(nn::Tensor* numeric) const;

  size_t num_columns() const { return means_.size(); }
  float mean(size_t c) const { return means_[c]; }
  float stddev(size_t c) const { return stddevs_[c]; }

 private:
  std::vector<float> means_;
  std::vector<float> stddevs_;
};

}  // namespace atnn::data

#endif  // ATNN_DATA_NORMALIZE_H_
