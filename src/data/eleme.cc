#include "data/eleme.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace atnn::data {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

FeatureSchema MakeRestaurantProfileSchema(const ElemeConfig& cfg) {
  std::vector<FeatureSpec> features;
  features.push_back(FeatureSpec::Categorical("brand", cfg.num_brands, 16));
  features.push_back(
      FeatureSpec::Categorical("location_cell", cfg.num_cells, 16));
  features.push_back(FeatureSpec::Categorical("theme", cfg.num_themes, 4));
  features.push_back(
      FeatureSpec::Categorical("cuisine", cfg.num_cuisines, 8));
  features.push_back(FeatureSpec::Categorical("price_tier", 5, 4));
  features.push_back(FeatureSpec::Numeric("nearby_similar_count"));
  features.push_back(FeatureSpec::Numeric("cell_overall_vppv"));
  features.push_back(FeatureSpec::Numeric("cell_overall_gmv"));
  features.push_back(FeatureSpec::Numeric("cell_overall_ctr"));
  features.push_back(FeatureSpec::Numeric("brand_scale"));
  features.push_back(FeatureSpec::Numeric("menu_size"));
  features.push_back(FeatureSpec::Numeric("avg_price_log"));
  features.push_back(FeatureSpec::Numeric("photo_quality"));
  features.push_back(FeatureSpec::Numeric("rating_prior"));
  features.push_back(FeatureSpec::Numeric("delivery_radius"));
  for (int d = 0; d < 8; ++d) {
    features.push_back(FeatureSpec::Numeric("r_proj_" + std::to_string(d)));
  }
  return FeatureSchema(std::move(features));
}

FeatureSchema MakeRestaurantStatsSchema() {
  std::vector<FeatureSpec> features;
  features.push_back(FeatureSpec::Numeric("pv_30d_log"));
  features.push_back(FeatureSpec::Numeric("orders_30d_log"));
  features.push_back(FeatureSpec::Numeric("gmv_30d_log"));
  features.push_back(FeatureSpec::Numeric("vppv_30d"));
  features.push_back(FeatureSpec::Numeric("reorder_rate"));
  features.push_back(FeatureSpec::Numeric("rating"));
  features.push_back(FeatureSpec::Numeric("fav_count_log"));
  for (int d = 0; d < 8; ++d) {
    features.push_back(FeatureSpec::Numeric("b_proj_" + std::to_string(d)));
  }
  return FeatureSchema(std::move(features));
}

FeatureSchema MakeUserGroupSchema(const ElemeConfig& cfg) {
  std::vector<FeatureSpec> features;
  features.push_back(FeatureSpec::Categorical("cell_id", cfg.num_cells, 16));
  features.push_back(FeatureSpec::Categorical("city_tier", 4, 2));
  features.push_back(FeatureSpec::Numeric("group_size_log"));
  features.push_back(FeatureSpec::Numeric("avg_order_value"));
  features.push_back(FeatureSpec::Numeric("orders_per_user"));
  features.push_back(FeatureSpec::Numeric("student_fraction"));
  features.push_back(FeatureSpec::Numeric("office_fraction"));
  for (int d = 0; d < 8; ++d) {
    features.push_back(FeatureSpec::Numeric("taste_" + std::to_string(d)));
  }
  return FeatureSchema(std::move(features));
}

}  // namespace

ElemeDataset GenerateElemeDataset(const ElemeConfig& config) {
  ATNN_CHECK(config.num_restaurants > 0);
  ATNN_CHECK(config.num_cells > 0);
  ATNN_CHECK(config.latent_dim > 0);
  // The schemas expose exactly 8 latent projections.
  ATNN_CHECK_LE(config.latent_dim, 8);

  ElemeDataset ds;
  ds.config = config;
  ds.restaurant_profile_schema =
      std::make_shared<FeatureSchema>(MakeRestaurantProfileSchema(config));
  ds.restaurant_stats_schema =
      std::make_shared<FeatureSchema>(MakeRestaurantStatsSchema());
  ds.user_group_schema =
      std::make_shared<FeatureSchema>(MakeUserGroupSchema(config));

  const int64_t total = ds.total_restaurants();
  const int k = config.latent_dim;
  ds.restaurant_profiles = EntityTable(ds.restaurant_profile_schema, total);
  ds.restaurant_stats = EntityTable(ds.restaurant_stats_schema, total);
  ds.user_groups = EntityTable(ds.user_group_schema, config.num_cells);

  Rng root(config.seed);
  Rng world_rng = root.Fork(11);
  Rng cell_rng = root.Fork(12);
  Rng rest_rng = root.Fork(13);
  Rng label_rng = root.Fork(14);

  // --- world structure ---
  std::vector<double> cuisine_centroid(
      static_cast<size_t>(config.num_cuisines * k));
  for (double& v : cuisine_centroid) v = world_rng.Normal();
  std::vector<double> brand_quality(static_cast<size_t>(config.num_brands));
  for (double& v : brand_quality) v = world_rng.Normal(0.0, 0.6);
  std::vector<double> brand_scale(static_cast<size_t>(config.num_brands));
  for (double& v : brand_scale) v = world_rng.LogNormal(2.0, 1.0);

  // --- user groups (location cells) ---
  std::vector<double> cell_taste(static_cast<size_t>(config.num_cells * k));
  std::vector<double> cell_traffic(static_cast<size_t>(config.num_cells));
  std::vector<double> cell_order_value(static_cast<size_t>(config.num_cells));
  for (int64_t c = 0; c < config.num_cells; ++c) {
    double* taste = &cell_taste[static_cast<size_t>(c * k)];
    for (int d = 0; d < k; ++d) taste[d] = cell_rng.Normal();
    cell_traffic[size_t(c)] = cell_rng.LogNormal(7.0, 0.6);
    cell_order_value[size_t(c)] = cell_rng.LogNormal(3.2, 0.3);

    ds.user_groups.set_categorical(0, c, c);
    ds.user_groups.set_categorical(1, c,
                                   int64_t(cell_rng.Zipf(4, 0.8)));
    ds.user_groups.set_numeric(0, c,
                               float(std::log(cell_traffic[size_t(c)])));
    ds.user_groups.set_numeric(1, c, float(cell_order_value[size_t(c)]));
    ds.user_groups.set_numeric(2, c, float(cell_rng.LogNormal(1.0, 0.3)));
    const double student = cell_rng.Uniform();
    ds.user_groups.set_numeric(3, c, float(student));
    ds.user_groups.set_numeric(4, c, float((1.0 - student) *
                                           cell_rng.Uniform()));
    // Mean user taste vector, observed with mild aggregation noise — this
    // is the "mean user features replace single-user features" device.
    for (int d = 0; d < 8; ++d) {
      const double proj = d < k ? taste[d] : 0.0;
      ds.user_groups.set_numeric(size_t(5 + d), c,
                                 float(proj + cell_rng.Normal(0.0, 0.1)));
    }
  }

  // --- restaurants ---
  ds.restaurant_cell.resize(static_cast<size_t>(total));
  ds.true_vppv.resize(static_cast<size_t>(total));
  ds.true_gmv.resize(static_cast<size_t>(total));
  ds.true_quality.resize(static_cast<size_t>(total));
  std::vector<int64_t> per_cell_count(static_cast<size_t>(config.num_cells),
                                      0);
  for (int64_t r = 0; r < total; ++r) {
    const auto cell = int64_t(rest_rng.Zipf(size_t(config.num_cells), 0.7));
    const auto brand = int64_t(rest_rng.Zipf(size_t(config.num_brands), 1.0));
    const auto cuisine =
        int64_t(rest_rng.Zipf(size_t(config.num_cuisines), 0.9));
    const auto theme = int64_t(rest_rng.Zipf(size_t(config.num_themes), 0.8));
    ds.restaurant_cell[size_t(r)] = cell;
    ++per_cell_count[size_t(cell)];

    std::vector<double> rho(static_cast<size_t>(k));
    const double* centroid = &cuisine_centroid[static_cast<size_t>(
        cuisine * k)];
    for (int d = 0; d < k; ++d) {
      rho[size_t(d)] = 0.6 * centroid[d] + 0.8 * rest_rng.Normal();
    }
    const double quality = 0.6 * rest_rng.Normal() +
                           0.5 * brand_quality[size_t(brand)];
    ds.true_quality[size_t(r)] = quality;

    const double* taste = &cell_taste[static_cast<size_t>(cell * k)];
    double fit = 0.0;
    for (int d = 0; d < k; ++d) fit += taste[d] * rho[size_t(d)];
    fit /= std::sqrt(double(k));

    const double price_log = 2.5 + 0.4 * rest_rng.Normal() + 0.15 * quality;
    const auto price_tier = std::clamp<int64_t>(
        static_cast<int64_t>((price_log - 1.6) / 0.5), 0, 4);

    // Ground-truth expectations for the recruiting simulator and labels.
    const double vppv_expected = Sigmoid(-1.1 + 0.9 * fit + 0.7 * quality);
    const double pv_expected =
        cell_traffic[size_t(cell)] * 0.02 *
        std::exp(0.3 * quality + 0.2 * fit);
    const double gmv_expected =
        pv_expected * vppv_expected * cell_order_value[size_t(cell)] * 0.6;
    ds.true_vppv[size_t(r)] = vppv_expected;
    ds.true_gmv[size_t(r)] = gmv_expected;

    ds.restaurant_profiles.set_categorical(0, r, brand);
    ds.restaurant_profiles.set_categorical(1, r, cell);
    ds.restaurant_profiles.set_categorical(2, r, theme);
    ds.restaurant_profiles.set_categorical(3, r, cuisine);
    ds.restaurant_profiles.set_categorical(4, r, price_tier);

    ds.restaurant_profiles.set_numeric(
        0, r, float(std::log1p(double(per_cell_count[size_t(cell)]))));
    ds.restaurant_profiles.set_numeric(
        1, r, float(0.25 + rest_rng.Normal(0.0, 0.05)));
    ds.restaurant_profiles.set_numeric(
        2, r, float(std::log1p(cell_traffic[size_t(cell)] *
                               cell_order_value[size_t(cell)] * 0.001)));
    ds.restaurant_profiles.set_numeric(
        3, r, float(0.1 + rest_rng.Normal(0.0, 0.02)));
    ds.restaurant_profiles.set_numeric(
        4, r, float(std::log(brand_scale[size_t(brand)])));
    ds.restaurant_profiles.set_numeric(
        5, r, float(rest_rng.LogNormal(3.0, 0.4)));
    ds.restaurant_profiles.set_numeric(6, r, float(price_log));
    ds.restaurant_profiles.set_numeric(
        7, r, float(0.5 * quality + rest_rng.Normal(0.0, 0.7)));
    ds.restaurant_profiles.set_numeric(
        8, r, float(3.8 + 0.4 * quality + rest_rng.Normal(0.0, 0.4)));
    ds.restaurant_profiles.set_numeric(
        9, r, float(rest_rng.Uniform(1.0, 5.0)));
    for (int d = 0; d < 8; ++d) {
      const double proj = d < k ? rho[size_t(d)] : 0.0;
      ds.restaurant_profiles.set_numeric(
          size_t(10 + d), r,
          float(proj + rest_rng.Normal(0.0, config.profile_noise)));
    }

    // Trainside restaurants carry two distinct observations:
    //   - statistics features: *lifetime* aggregates, i.e. low-noise
    //     estimates of the expected VpPV/traffic (the store has operated
    //     long before the training window), and
    //   - labels: the realized *first-30-day* window, a single noisy draw.
    // This separation is what makes the encoder a denoised distillation
    // target for the generator (Table IV's mechanism).
    if (r < config.num_restaurants) {
      const double pv_stat =
          pv_expected * std::exp(label_rng.Normal(0, config.stats_noise));
      const double vppv_stat =
          vppv_expected * std::exp(label_rng.Normal(0, config.stats_noise));
      const double gmv_stat =
          pv_stat * vppv_stat * cell_order_value[size_t(cell)] * 0.6;
      const double orders_stat = gmv_stat / cell_order_value[size_t(cell)];
      ds.restaurant_stats.set_numeric(0, r, float(std::log1p(pv_stat)));
      ds.restaurant_stats.set_numeric(1, r, float(std::log1p(orders_stat)));
      ds.restaurant_stats.set_numeric(2, r, float(std::log1p(gmv_stat)));
      ds.restaurant_stats.set_numeric(3, r, float(vppv_stat));
      ds.restaurant_stats.set_numeric(
          4, r, float(Sigmoid(0.7 * quality + label_rng.Normal(0, 0.3))));
      ds.restaurant_stats.set_numeric(
          5, r, float(3.6 + 0.8 * quality + label_rng.Normal(0, 0.2)));
      ds.restaurant_stats.set_numeric(
          6, r, float(std::log1p(pv_stat * 0.01 *
                                 std::exp(label_rng.Normal(0, 0.3)))));
      for (int d = 0; d < 8; ++d) {
        const double proj = d < k ? rho[size_t(d)] : 0.0;
        ds.restaurant_stats.set_numeric(
            size_t(7 + d), r,
            float(proj + label_rng.Normal(0.0, config.stats_noise)));
      }
      // Labels: one noisy 30-day realization.
      const double pv_real =
          pv_expected * std::exp(label_rng.Normal(0, config.label_noise));
      const double vppv_real =
          vppv_expected * std::exp(label_rng.Normal(0, config.label_noise));
      const double gmv_real =
          pv_real * vppv_real * cell_order_value[size_t(cell)] * 0.6;
      ds.vppv_labels.push_back(float(vppv_real));
      ds.gmv_labels.push_back(float(std::log1p(gmv_real)));
    }
  }

  // --- split over trainside restaurants ---
  std::vector<int64_t> order(static_cast<size_t>(config.num_restaurants));
  std::iota(order.begin(), order.end(), 0);
  Rng split_rng = root.Fork(15);
  split_rng.Shuffle(&order);
  const auto test_count = static_cast<size_t>(
      double(config.num_restaurants) * config.test_fraction);
  ds.test_indices.assign(order.begin(), order.begin() + test_count);
  ds.train_indices.assign(order.begin() + test_count, order.end());

  ds.new_restaurants.resize(static_cast<size_t>(config.num_new_restaurants));
  std::iota(ds.new_restaurants.begin(), ds.new_restaurants.end(),
            config.num_restaurants);

  return ds;
}

ElemeBatch MakeElemeBatch(const ElemeDataset& dataset,
                          std::span<const int64_t> restaurant_rows) {
  ElemeBatch batch;
  std::vector<int64_t> cell_rows;
  cell_rows.reserve(restaurant_rows.size());
  const auto n = static_cast<int64_t>(restaurant_rows.size());
  batch.vppv = nn::Tensor(n, 1);
  batch.gmv = nn::Tensor(n, 1);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t row = restaurant_rows[static_cast<size_t>(i)];
    cell_rows.push_back(dataset.restaurant_cell[static_cast<size_t>(row)]);
    if (row < dataset.config.num_restaurants) {
      batch.vppv.at(i, 0) = dataset.vppv_labels[static_cast<size_t>(row)];
      batch.gmv.at(i, 0) = dataset.gmv_labels[static_cast<size_t>(row)];
    }
  }
  batch.restaurant_profile =
      GatherBlock(dataset.restaurant_profiles, restaurant_rows);
  batch.restaurant_stats =
      GatherBlock(dataset.restaurant_stats, restaurant_rows);
  batch.user_group = GatherBlock(dataset.user_groups, cell_rows);
  return batch;
}

}  // namespace atnn::data
