#include "data/normalize.h"

#include <cmath>

namespace atnn::data {

namespace {
constexpr float kMinStddev = 1e-6f;
}  // namespace

Normalizer Normalizer::Fit(const EntityTable& table,
                           const std::vector<int64_t>& rows) {
  const size_t cols = table.schema().num_numeric();
  Normalizer result;
  result.means_.assign(cols, 0.0f);
  result.stddevs_.assign(cols, 1.0f);

  std::vector<int64_t> all_rows;
  const std::vector<int64_t>* use_rows = &rows;
  if (rows.empty()) {
    all_rows.resize(static_cast<size_t>(table.num_rows()));
    for (int64_t r = 0; r < table.num_rows(); ++r) {
      all_rows[static_cast<size_t>(r)] = r;
    }
    use_rows = &all_rows;
  }
  if (use_rows->empty()) return result;

  const double n = static_cast<double>(use_rows->size());
  for (size_t c = 0; c < cols; ++c) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int64_t row : *use_rows) {
      const double v = table.numeric(c, row);
      sum += v;
      sum_sq += v * v;
    }
    const double mean = sum / n;
    const double variance = std::max(sum_sq / n - mean * mean, 0.0);
    result.means_[c] = static_cast<float>(mean);
    result.stddevs_[c] =
        std::max(static_cast<float>(std::sqrt(variance)), kMinStddev);
  }
  return result;
}

void Normalizer::Apply(EntityTable* table) const {
  ATNN_CHECK_EQ(num_columns(), table->schema().num_numeric());
  for (int64_t r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < num_columns(); ++c) {
      const float v = table->numeric(c, r);
      table->set_numeric(c, r, (v - means_[c]) / stddevs_[c]);
    }
  }
}

void Normalizer::Apply(nn::Tensor* numeric) const {
  ATNN_CHECK_EQ(static_cast<size_t>(numeric->cols()), num_columns());
  for (int64_t r = 0; r < numeric->rows(); ++r) {
    float* row = numeric->row_ptr(r);
    for (size_t c = 0; c < num_columns(); ++c) {
      row[c] = (row[c] - means_[c]) / stddevs_[c];
    }
  }
}

}  // namespace atnn::data
