#include "data/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "data/tmall.h"

namespace atnn::data {

std::vector<std::string> SplitCsvLine(std::string_view line) {
  // getline keeps the '\r' of a CRLF terminator; without this strip the
  // last field of every row in a Windows-written file carries an invisible
  // trailing byte that fails ParseInt/ParseFloat (or worse, header
  // comparison) with a baffling "bad value" on data that looks fine.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  if (line.empty()) return {};  // blank line (possibly CR-only), not [""]

  std::vector<std::string> fields;
  std::string field;
  size_t i = 0;
  while (true) {
    field.clear();
    if (i < line.size() && line[i] == '"') {
      // Quoted field: scan to the closing quote, unescaping "" pairs.
      ++i;
      while (i < line.size()) {
        if (line[i] == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            field += '"';
            i += 2;
          } else {
            ++i;  // closing quote
            break;
          }
        } else {
          field += line[i++];
        }
      }
      // Lenient tail: anything before the next comma rides along.
      while (i < line.size() && line[i] != ',') field += line[i++];
    } else {
      while (i < line.size() && line[i] != ',') field += line[i++];
    }
    fields.push_back(field);
    if (i >= line.size()) break;
    ++i;  // skip the comma; a trailing comma yields one more empty field
    if (i == line.size()) {
      fields.emplace_back();
      break;
    }
  }
  return fields;
}

namespace {

Status ParseInt(const std::string& text, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::Corruption("bad integer: '" + text + "'");
  }
  *out = value;
  return Status::OK();
}

Status ParseFloat(const std::string& text, float* out) {
  errno = 0;
  char* end = nullptr;
  const float value = std::strtof(text.c_str(), &end);
  // ERANGE alone is not corruption: strtof sets it for *underflow* too
  // ("1e-42" parses to a perfectly usable subnormal), and a blanket
  // `errno != 0` check rejected those legitimate tiny feature values.
  // Underflow still yields a finite value (subnormal or zero), so it
  // passes; overflow yields ±HUGE_VALF and is caught by the finiteness
  // check below along with literal "inf"/"nan".
  if (end == text.c_str() || *end != '\0' ||
      (errno != 0 && errno != ERANGE)) {
    return Status::Corruption("bad float: '" + text + "'");
  }
  // strtof happily parses "nan", "inf", "-infinity" — values no feature
  // column or label legitimately contains. Accepting them here silently
  // poisons every downstream mean/normalizer/loss; reject at the boundary
  // where the row and file are still known.
  if (!std::isfinite(value)) {
    return Status::Corruption("non-finite float: '" + text + "'");
  }
  *out = value;
  return Status::OK();
}

}  // namespace

Status WriteEntityTableCsv(const EntityTable& table,
                           const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const FeatureSchema& schema = table.schema();
  // Header in declaration order.
  for (size_t f = 0; f < schema.num_features(); ++f) {
    if (f > 0) file << ',';
    file << schema.features()[f].name;
  }
  file << '\n';
  file.precision(9);
  for (int64_t row = 0; row < table.num_rows(); ++row) {
    size_t cat = 0;
    size_t num = 0;
    for (size_t f = 0; f < schema.num_features(); ++f) {
      if (f > 0) file << ',';
      if (schema.features()[f].kind == FeatureKind::kCategorical) {
        file << table.categorical(cat++, row);
      } else {
        file << table.numeric(num++, row);
      }
    }
    file << '\n';
  }
  file.flush();
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<EntityTable> ReadEntityTableCsv(SchemaPtr schema,
                                         const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  if (!std::getline(file, line)) {
    return Status::Corruption("empty CSV: " + path);
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.size() != schema->num_features()) {
    return Status::Corruption("header has " + std::to_string(header.size()) +
                              " columns, schema expects " +
                              std::to_string(schema->num_features()));
  }
  for (size_t f = 0; f < header.size(); ++f) {
    if (header[f] != schema->features()[f].name) {
      return Status::Corruption("column " + std::to_string(f) + " is '" +
                                header[f] + "', schema expects '" +
                                schema->features()[f].name + "'");
    }
  }

  // Two passes would need a seekable stream; buffer rows instead.
  std::vector<std::vector<std::string>> rows;
  while (std::getline(file, line)) {
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.empty()) continue;  // blank (or CR-only) line
    rows.push_back(std::move(fields));
    if (rows.back().size() != schema->num_features()) {
      return Status::Corruption(
          "row " + std::to_string(rows.size()) + " has " +
          std::to_string(rows.back().size()) + " fields");
    }
  }

  EntityTable table(schema, static_cast<int64_t>(rows.size()));
  for (size_t r = 0; r < rows.size(); ++r) {
    size_t cat = 0;
    size_t num = 0;
    for (size_t f = 0; f < schema->num_features(); ++f) {
      if (schema->features()[f].kind == FeatureKind::kCategorical) {
        int64_t value = 0;
        ATNN_RETURN_IF_ERROR(ParseInt(rows[r][f], &value));
        if (value < 0 || value >= schema->features()[f].vocab_size) {
          return Status::Corruption(
              "row " + std::to_string(r) + ": categorical value " +
              std::to_string(value) + " out of vocab for " +
              schema->features()[f].name);
        }
        table.set_categorical(cat++, static_cast<int64_t>(r), value);
      } else {
        float value = 0.0f;
        ATNN_RETURN_IF_ERROR(ParseFloat(rows[r][f], &value));
        table.set_numeric(num++, static_cast<int64_t>(r), value);
      }
    }
  }
  return table;
}

Status WriteInteractionsCsv(const std::vector<int64_t>& users,
                            const std::vector<int64_t>& items,
                            const std::vector<float>& labels,
                            const std::string& path) {
  if (users.size() != items.size() || users.size() != labels.size()) {
    return Status::InvalidArgument("misaligned interaction columns");
  }
  std::ofstream file(path, std::ios::trunc);
  if (!file.is_open()) {
    return Status::IoError("cannot open for writing: " + path);
  }
  file << "user_id,item_id,label\n";
  for (size_t i = 0; i < users.size(); ++i) {
    file << users[i] << ',' << items[i] << ',' << labels[i] << '\n';
  }
  file.flush();
  if (!file.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<InteractionLog> ReadInteractionsCsv(const std::string& path) {
  std::ifstream file(path);
  if (!file.is_open()) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string line;
  // Compare split fields, not raw bytes: a CRLF header is still valid.
  const std::vector<std::string> expected_header = {"user_id", "item_id",
                                                    "label"};
  if (!std::getline(file, line) || SplitCsvLine(line) != expected_header) {
    return Status::Corruption("bad interactions header in " + path);
  }
  InteractionLog log;
  size_t row = 0;
  while (std::getline(file, line)) {
    const auto fields = SplitCsvLine(line);
    if (fields.empty()) continue;  // blank (or CR-only) line
    ++row;
    if (fields.size() != 3) {
      return Status::Corruption("row " + std::to_string(row) +
                                " has wrong field count");
    }
    int64_t user = 0;
    int64_t item = 0;
    float label = 0.0f;
    ATNN_RETURN_IF_ERROR(ParseInt(fields[0], &user));
    ATNN_RETURN_IF_ERROR(ParseInt(fields[1], &item));
    ATNN_RETURN_IF_ERROR(ParseFloat(fields[2], &label));
    log.users.push_back(user);
    log.items.push_back(item);
    log.labels.push_back(label);
  }
  return log;
}

Status ExportTmallDatasetCsv(const TmallDataset& dataset,
                             const std::string& directory) {
  ATNN_RETURN_IF_ERROR(
      WriteEntityTableCsv(dataset.users, directory + "/users.csv"));
  ATNN_RETURN_IF_ERROR(WriteEntityTableCsv(
      dataset.item_profiles, directory + "/item_profiles.csv"));
  ATNN_RETURN_IF_ERROR(WriteEntityTableCsv(dataset.item_stats,
                                           directory + "/item_stats.csv"));
  ATNN_RETURN_IF_ERROR(WriteInteractionsCsv(
      dataset.interaction_user, dataset.interaction_item, dataset.labels,
      directory + "/interactions.csv"));

  // Split membership: one row per interaction, "train" or "test".
  std::ofstream splits(directory + "/splits.csv", std::ios::trunc);
  if (!splits.is_open()) {
    return Status::IoError("cannot open for writing: " + directory +
                           "/splits.csv");
  }
  std::vector<char> is_test(dataset.labels.size(), 0);
  for (int64_t idx : dataset.test_indices) {
    is_test[static_cast<size_t>(idx)] = 1;
  }
  splits << "interaction,split\n";
  for (size_t i = 0; i < is_test.size(); ++i) {
    splits << i << ',' << (is_test[i] ? "test" : "train") << '\n';
  }
  splits.flush();
  if (!splits.good()) {
    return Status::IoError("write failed: " + directory + "/splits.csv");
  }
  return Status::OK();
}

}  // namespace atnn::data
