#ifndef ATNN_GBDT_TREE_H_
#define ATNN_GBDT_TREE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gbdt/binner.h"

namespace atnn::gbdt {

/// Hyper-parameters for growing one regression tree on gradients/hessians
/// (shared by the boosting driver).
struct TreeConfig {
  int max_depth = 6;
  /// Minimum hessian mass per child (XGBoost's min_child_weight).
  double min_child_weight = 1.0;
  /// Minimum row count per leaf.
  int min_samples_leaf = 10;
  /// L2 regularization on leaf weights.
  double lambda = 1.0;
  /// Minimum gain required to split.
  double min_gain = 1e-6;
  /// Fraction of features considered per split (column subsampling).
  double colsample = 1.0;
};

/// A binary regression tree over binned features. Internal nodes split on
/// (feature, bin threshold); leaves carry Newton weights -G/(H+lambda).
class RegressionTree {
 public:
  struct Node {
    bool is_leaf = true;
    int feature = -1;
    /// Go left when bin <= threshold_bin.
    int threshold_bin = 0;
    int left = -1;
    int right = -1;
    double weight = 0.0;
  };

  /// Grows a tree from per-row gradients/hessians over the rows listed in
  /// `row_indices`. `binned` is row-major uint8 [num_rows, num_columns].
  void Grow(const std::vector<uint8_t>& binned, size_t num_columns,
            const FeatureBinner& binner, const std::vector<double>& gradients,
            const std::vector<double>& hessians,
            const std::vector<int64_t>& row_indices, const TreeConfig& config,
            Rng* rng);

  /// Prediction for one binned row (pointer to its num_columns bins).
  double PredictBinned(const uint8_t* bins) const;

  const std::vector<Node>& nodes() const { return nodes_; }
  size_t num_leaves() const;

  /// Adds each split's gain to `gains[feature]` (split-gain importance).
  void AccumulateFeatureGains(std::vector<double>* gains) const;

  /// Reconstructs a tree from serialized parts (see GbdtModel persistence).
  /// gains must be node-aligned (0.0 for leaves).
  static RegressionTree FromParts(std::vector<Node> nodes,
                                  std::vector<double> gains);

  const std::vector<double>& split_gains() const { return split_gains_; }

 private:
  struct SplitDecision {
    bool found = false;
    int feature = -1;
    int threshold_bin = 0;
    double gain = 0.0;
  };

  int BuildNode(const std::vector<uint8_t>& binned, size_t num_columns,
                const FeatureBinner& binner,
                const std::vector<double>& gradients,
                const std::vector<double>& hessians,
                std::vector<int64_t>* rows, int depth,
                const TreeConfig& config, Rng* rng);

  std::vector<Node> nodes_;
  std::vector<double> split_gains_;  // parallel to nodes_, 0 for leaves
};

}  // namespace atnn::gbdt

#endif  // ATNN_GBDT_TREE_H_
