#ifndef ATNN_GBDT_BINNER_H_
#define ATNN_GBDT_BINNER_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace atnn::gbdt {

/// Quantile feature binner: maps each float column to small integer bins so
/// split finding can use histograms (the LightGBM-style approach). Fit on
/// training rows; thresholds are per-column upper bounds.
class FeatureBinner {
 public:
  /// Fits up to `max_bins` quantile bins per column of `features`
  /// ([rows, cols]). max_bins must be in [2, 256].
  static FeatureBinner Fit(const nn::Tensor& features, int max_bins);

  /// Reconstructs a binner from serialized thresholds (see GbdtModel
  /// persistence).
  static FeatureBinner FromThresholds(
      std::vector<std::vector<float>> thresholds, int max_bins);

  /// Bin index of a raw value for the given column.
  uint8_t Bin(size_t column, float value) const;

  /// Bins an entire matrix (column count must match the fitted one) into a
  /// row-major uint8 buffer.
  std::vector<uint8_t> BinMatrix(const nn::Tensor& features) const;

  size_t num_columns() const { return thresholds_.size(); }
  int num_bins(size_t column) const {
    return static_cast<int>(thresholds_[column].size()) + 1;
  }
  int max_bins() const { return max_bins_; }

  /// Upper-bound threshold of bin b for a column (bin b holds values
  /// <= thresholds[b]; the last bin is unbounded).
  const std::vector<float>& thresholds(size_t column) const {
    return thresholds_[column];
  }

 private:
  std::vector<std::vector<float>> thresholds_;
  int max_bins_ = 0;
};

}  // namespace atnn::gbdt

#endif  // ATNN_GBDT_BINNER_H_
