#ifndef ATNN_GBDT_GBDT_H_
#define ATNN_GBDT_GBDT_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "gbdt/binner.h"
#include "gbdt/tree.h"
#include "nn/tensor.h"

namespace atnn::gbdt {

enum class GbdtLoss {
  /// Binary classification on 0/1 labels; margins pass through a sigmoid.
  kLogistic,
  /// Plain regression on float targets.
  kSquared,
};

/// Hyper-parameters for the boosting ensemble.
struct GbdtConfig {
  int num_trees = 80;
  double learning_rate = 0.1;
  GbdtLoss loss = GbdtLoss::kLogistic;
  /// Histogram resolution.
  int max_bins = 64;
  /// Row subsampling fraction per tree (stochastic gradient boosting).
  double subsample = 0.8;
  TreeConfig tree;
  uint64_t seed = 1234;
};

/// Gradient-boosted decision trees (Friedman 2001) with second-order
/// (Newton) leaf weights and histogram split finding — the GBDT baseline
/// of Table I.
class GbdtModel {
 public:
  GbdtModel() = default;

  /// Fits the ensemble. `features` is [rows, cols] raw floats (categorical
  /// ids may be passed as ordinal floats); `labels` holds 0/1 for logistic
  /// loss or arbitrary targets for squared loss.
  void Train(const nn::Tensor& features, const std::vector<float>& labels,
             const GbdtConfig& config);

  /// Raw additive margins (log-odds for logistic loss).
  std::vector<double> PredictRaw(const nn::Tensor& features) const;

  /// Sigmoid(margin) — logistic loss only.
  std::vector<double> PredictProbability(const nn::Tensor& features) const;

  /// Total split gain per feature, normalized to sum to 1.
  std::vector<double> FeatureImportance() const;

  /// Training loss after each boosting round (for convergence tests).
  const std::vector<double>& training_loss_curve() const {
    return training_loss_;
  }

  size_t num_trees() const { return trees_.size(); }
  const GbdtConfig& config() const { return config_; }

  /// Persists the trained ensemble (binner thresholds, trees, base margin)
  /// so a serving process can predict without retraining.
  Status SaveToFile(const std::string& path) const;
  static StatusOr<GbdtModel> LoadFromFile(const std::string& path);

 private:
  GbdtConfig config_;
  FeatureBinner binner_;
  std::vector<RegressionTree> trees_;
  double base_margin_ = 0.0;
  size_t num_columns_ = 0;
  std::vector<double> training_loss_;
};

}  // namespace atnn::gbdt

#endif  // ATNN_GBDT_GBDT_H_
