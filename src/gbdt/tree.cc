#include "gbdt/tree.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace atnn::gbdt {

namespace {

double LeafObjective(double g, double h, double lambda) {
  return g * g / (h + lambda);
}

}  // namespace

void RegressionTree::Grow(const std::vector<uint8_t>& binned,
                          size_t num_columns, const FeatureBinner& binner,
                          const std::vector<double>& gradients,
                          const std::vector<double>& hessians,
                          const std::vector<int64_t>& row_indices,
                          const TreeConfig& config, Rng* rng) {
  ATNN_CHECK(!row_indices.empty());
  ATNN_CHECK_EQ(gradients.size(), hessians.size());
  nodes_.clear();
  split_gains_.clear();
  std::vector<int64_t> rows = row_indices;
  BuildNode(binned, num_columns, binner, gradients, hessians, &rows, 0,
            config, rng);
}

int RegressionTree::BuildNode(const std::vector<uint8_t>& binned,
                              size_t num_columns, const FeatureBinner& binner,
                              const std::vector<double>& gradients,
                              const std::vector<double>& hessians,
                              std::vector<int64_t>* rows, int depth,
                              const TreeConfig& config, Rng* rng) {
  double sum_g = 0.0;
  double sum_h = 0.0;
  for (int64_t row : *rows) {
    sum_g += gradients[static_cast<size_t>(row)];
    sum_h += hessians[static_cast<size_t>(row)];
  }

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  split_gains_.push_back(0.0);
  nodes_[static_cast<size_t>(node_index)].weight =
      -sum_g / (sum_h + config.lambda);

  const bool can_split =
      depth < config.max_depth &&
      static_cast<int>(rows->size()) >= 2 * config.min_samples_leaf;
  if (!can_split) return node_index;

  // Histogram per candidate feature: gradient/hessian/count by bin.
  SplitDecision best;
  const double parent_objective =
      LeafObjective(sum_g, sum_h, config.lambda);
  std::vector<double> hist_g;
  std::vector<double> hist_h;
  std::vector<int64_t> hist_n;
  for (size_t feature = 0; feature < num_columns; ++feature) {
    if (config.colsample < 1.0 && rng->Uniform() > config.colsample) continue;
    const int bins = binner.num_bins(feature);
    if (bins < 2) continue;
    hist_g.assign(static_cast<size_t>(bins), 0.0);
    hist_h.assign(static_cast<size_t>(bins), 0.0);
    hist_n.assign(static_cast<size_t>(bins), 0);
    for (int64_t row : *rows) {
      const uint8_t bin =
          binned[static_cast<size_t>(row) * num_columns + feature];
      hist_g[bin] += gradients[static_cast<size_t>(row)];
      hist_h[bin] += hessians[static_cast<size_t>(row)];
      ++hist_n[bin];
    }
    // Scan split points left-to-right.
    double left_g = 0.0;
    double left_h = 0.0;
    int64_t left_n = 0;
    for (int bin = 0; bin + 1 < bins; ++bin) {
      left_g += hist_g[static_cast<size_t>(bin)];
      left_h += hist_h[static_cast<size_t>(bin)];
      left_n += hist_n[static_cast<size_t>(bin)];
      const int64_t right_n = static_cast<int64_t>(rows->size()) - left_n;
      if (left_n < config.min_samples_leaf ||
          right_n < config.min_samples_leaf) {
        continue;
      }
      const double right_g = sum_g - left_g;
      const double right_h = sum_h - left_h;
      if (left_h < config.min_child_weight ||
          right_h < config.min_child_weight) {
        continue;
      }
      const double gain = 0.5 * (LeafObjective(left_g, left_h, config.lambda) +
                                 LeafObjective(right_g, right_h,
                                               config.lambda) -
                                 parent_objective);
      if (gain > best.gain) {
        best.found = true;
        best.feature = static_cast<int>(feature);
        best.threshold_bin = bin;
        best.gain = gain;
      }
    }
  }

  if (!best.found || best.gain < config.min_gain) return node_index;

  // Partition rows in place.
  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  left_rows.reserve(rows->size());
  right_rows.reserve(rows->size());
  for (int64_t row : *rows) {
    const uint8_t bin = binned[static_cast<size_t>(row) * num_columns +
                               static_cast<size_t>(best.feature)];
    if (static_cast<int>(bin) <= best.threshold_bin) {
      left_rows.push_back(row);
    } else {
      right_rows.push_back(row);
    }
  }
  // Free the parent's row list before recursing to bound peak memory.
  rows->clear();
  rows->shrink_to_fit();

  const int left_child =
      BuildNode(binned, num_columns, binner, gradients, hessians, &left_rows,
                depth + 1, config, rng);
  const int right_child =
      BuildNode(binned, num_columns, binner, gradients, hessians, &right_rows,
                depth + 1, config, rng);

  Node& node = nodes_[static_cast<size_t>(node_index)];
  node.is_leaf = false;
  node.feature = best.feature;
  node.threshold_bin = best.threshold_bin;
  node.left = left_child;
  node.right = right_child;
  split_gains_[static_cast<size_t>(node_index)] = best.gain;
  return node_index;
}

double RegressionTree::PredictBinned(const uint8_t* bins) const {
  ATNN_DCHECK(!nodes_.empty());
  int index = 0;
  while (!nodes_[static_cast<size_t>(index)].is_leaf) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    const uint8_t bin = bins[node.feature];
    index = (static_cast<int>(bin) <= node.threshold_bin) ? node.left
                                                          : node.right;
  }
  return nodes_[static_cast<size_t>(index)].weight;
}

size_t RegressionTree::num_leaves() const {
  size_t count = 0;
  for (const Node& node : nodes_) {
    if (node.is_leaf) ++count;
  }
  return count;
}

RegressionTree RegressionTree::FromParts(std::vector<Node> nodes,
                                         std::vector<double> gains) {
  ATNN_CHECK_EQ(nodes.size(), gains.size());
  RegressionTree tree;
  tree.nodes_ = std::move(nodes);
  tree.split_gains_ = std::move(gains);
  return tree;
}

void RegressionTree::AccumulateFeatureGains(std::vector<double>* gains) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].is_leaf) {
      ATNN_DCHECK(static_cast<size_t>(nodes_[i].feature) < gains->size());
      (*gains)[static_cast<size_t>(nodes_[i].feature)] += split_gains_[i];
    }
  }
}

}  // namespace atnn::gbdt
