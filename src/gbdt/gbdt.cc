#include "gbdt/gbdt.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/serialize.h"

namespace atnn::gbdt {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

void GbdtModel::Train(const nn::Tensor& features,
                      const std::vector<float>& labels,
                      const GbdtConfig& config) {
  const int64_t rows = features.rows();
  ATNN_CHECK(rows > 0);
  ATNN_CHECK_EQ(static_cast<size_t>(rows), labels.size());
  config_ = config;
  num_columns_ = static_cast<size_t>(features.cols());
  trees_.clear();
  training_loss_.clear();

  binner_ = FeatureBinner::Fit(features, config.max_bins);
  const std::vector<uint8_t> binned = binner_.BinMatrix(features);

  // Base margin: log-odds of the base rate (logistic) or label mean.
  double label_mean = 0.0;
  for (float label : labels) label_mean += label;
  label_mean /= static_cast<double>(rows);
  if (config.loss == GbdtLoss::kLogistic) {
    const double p = std::clamp(label_mean, 1e-6, 1.0 - 1e-6);
    base_margin_ = std::log(p / (1.0 - p));
  } else {
    base_margin_ = label_mean;
  }

  std::vector<double> margins(static_cast<size_t>(rows), base_margin_);
  std::vector<double> gradients(static_cast<size_t>(rows));
  std::vector<double> hessians(static_cast<size_t>(rows));
  Rng rng(config.seed);

  for (int round = 0; round < config.num_trees; ++round) {
    double loss = 0.0;
    for (int64_t r = 0; r < rows; ++r) {
      const auto i = static_cast<size_t>(r);
      const double y = labels[i];
      if (config.loss == GbdtLoss::kLogistic) {
        const double p = Sigmoid(margins[i]);
        gradients[i] = p - y;
        hessians[i] = std::max(p * (1.0 - p), 1e-12);
        loss += -(y * std::log(std::max(p, 1e-12)) +
                  (1.0 - y) * std::log(std::max(1.0 - p, 1e-12)));
      } else {
        gradients[i] = margins[i] - y;
        hessians[i] = 1.0;
        loss += 0.5 * (margins[i] - y) * (margins[i] - y);
      }
    }
    training_loss_.push_back(loss / static_cast<double>(rows));

    // Row subsampling (stochastic gradient boosting).
    std::vector<int64_t> tree_rows;
    tree_rows.reserve(static_cast<size_t>(rows));
    for (int64_t r = 0; r < rows; ++r) {
      if (config.subsample >= 1.0 || rng.Uniform() < config.subsample) {
        tree_rows.push_back(r);
      }
    }
    if (tree_rows.empty()) tree_rows.push_back(0);

    RegressionTree tree;
    tree.Grow(binned, num_columns_, binner_, gradients, hessians, tree_rows,
              config.tree, &rng);

    // Update margins over all rows.
    for (int64_t r = 0; r < rows; ++r) {
      const uint8_t* bins = &binned[static_cast<size_t>(r) * num_columns_];
      margins[static_cast<size_t>(r)] +=
          config.learning_rate * tree.PredictBinned(bins);
    }
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> GbdtModel::PredictRaw(const nn::Tensor& features) const {
  ATNN_CHECK_EQ(static_cast<size_t>(features.cols()), num_columns_);
  const std::vector<uint8_t> binned = binner_.BinMatrix(features);
  std::vector<double> margins(static_cast<size_t>(features.rows()),
                              base_margin_);
  for (const RegressionTree& tree : trees_) {
    for (int64_t r = 0; r < features.rows(); ++r) {
      const uint8_t* bins = &binned[static_cast<size_t>(r) * num_columns_];
      margins[static_cast<size_t>(r)] +=
          config_.learning_rate * tree.PredictBinned(bins);
    }
  }
  return margins;
}

std::vector<double> GbdtModel::PredictProbability(
    const nn::Tensor& features) const {
  ATNN_CHECK(config_.loss == GbdtLoss::kLogistic);
  std::vector<double> result = PredictRaw(features);
  for (double& value : result) value = Sigmoid(value);
  return result;
}

std::vector<double> GbdtModel::FeatureImportance() const {
  std::vector<double> gains(num_columns_, 0.0);
  for (const RegressionTree& tree : trees_) {
    tree.AccumulateFeatureGains(&gains);
  }
  double total = 0.0;
  for (double g : gains) total += g;
  if (total > 0.0) {
    for (double& g : gains) g /= total;
  }
  return gains;
}

namespace {
constexpr uint32_t kGbdtFormatVersion = 1;
}  // namespace

Status GbdtModel::SaveToFile(const std::string& path) const {
  BinaryWriter writer;
  writer.WriteU32(kGbdtFormatVersion);
  writer.WriteU32(config_.loss == GbdtLoss::kLogistic ? 0u : 1u);
  writer.WriteF64(config_.learning_rate);
  writer.WriteF64(base_margin_);
  writer.WriteU64(num_columns_);
  writer.WriteU32(static_cast<uint32_t>(binner_.max_bins()));
  for (size_t c = 0; c < num_columns_; ++c) {
    writer.WriteFloatVector(binner_.thresholds(c));
  }
  writer.WriteU64(trees_.size());
  for (const RegressionTree& tree : trees_) {
    const auto& nodes = tree.nodes();
    const auto& gains = tree.split_gains();
    writer.WriteU64(nodes.size());
    for (size_t n = 0; n < nodes.size(); ++n) {
      writer.WriteU32(nodes[n].is_leaf ? 1u : 0u);
      writer.WriteI64(nodes[n].feature);
      writer.WriteI64(nodes[n].threshold_bin);
      writer.WriteI64(nodes[n].left);
      writer.WriteI64(nodes[n].right);
      writer.WriteF64(nodes[n].weight);
      writer.WriteF64(gains[n]);
    }
  }
  return writer.FlushToFile(path);
}

StatusOr<GbdtModel> GbdtModel::LoadFromFile(const std::string& path) {
  ATNN_ASSIGN_OR_RETURN(BinaryReader reader, BinaryReader::FromFile(path));
  uint32_t version = 0;
  ATNN_RETURN_IF_ERROR(reader.ReadU32(&version));
  if (version != kGbdtFormatVersion) {
    return Status::Corruption("unsupported GBDT snapshot version " +
                              std::to_string(version));
  }
  GbdtModel model;
  uint32_t loss = 0;
  ATNN_RETURN_IF_ERROR(reader.ReadU32(&loss));
  if (loss > 1) return Status::Corruption("bad loss tag");
  model.config_.loss = loss == 0 ? GbdtLoss::kLogistic : GbdtLoss::kSquared;
  ATNN_RETURN_IF_ERROR(reader.ReadF64(&model.config_.learning_rate));
  ATNN_RETURN_IF_ERROR(reader.ReadF64(&model.base_margin_));
  uint64_t num_columns = 0;
  ATNN_RETURN_IF_ERROR(reader.ReadU64(&num_columns));
  model.num_columns_ = num_columns;
  uint32_t max_bins = 0;
  ATNN_RETURN_IF_ERROR(reader.ReadU32(&max_bins));
  std::vector<std::vector<float>> thresholds(num_columns);
  for (uint64_t c = 0; c < num_columns; ++c) {
    ATNN_RETURN_IF_ERROR(reader.ReadFloatVector(&thresholds[c]));
  }
  model.binner_ = FeatureBinner::FromThresholds(
      std::move(thresholds), static_cast<int>(max_bins));

  uint64_t num_trees = 0;
  ATNN_RETURN_IF_ERROR(reader.ReadU64(&num_trees));
  model.trees_.reserve(num_trees);
  for (uint64_t t = 0; t < num_trees; ++t) {
    uint64_t num_nodes = 0;
    ATNN_RETURN_IF_ERROR(reader.ReadU64(&num_nodes));
    std::vector<RegressionTree::Node> nodes(num_nodes);
    std::vector<double> gains(num_nodes);
    for (uint64_t n = 0; n < num_nodes; ++n) {
      uint32_t is_leaf = 0;
      int64_t feature = 0;
      int64_t threshold_bin = 0;
      int64_t left = 0;
      int64_t right = 0;
      ATNN_RETURN_IF_ERROR(reader.ReadU32(&is_leaf));
      ATNN_RETURN_IF_ERROR(reader.ReadI64(&feature));
      ATNN_RETURN_IF_ERROR(reader.ReadI64(&threshold_bin));
      ATNN_RETURN_IF_ERROR(reader.ReadI64(&left));
      ATNN_RETURN_IF_ERROR(reader.ReadI64(&right));
      ATNN_RETURN_IF_ERROR(reader.ReadF64(&nodes[n].weight));
      ATNN_RETURN_IF_ERROR(reader.ReadF64(&gains[n]));
      nodes[n].is_leaf = is_leaf == 1;
      nodes[n].feature = static_cast<int>(feature);
      nodes[n].threshold_bin = static_cast<int>(threshold_bin);
      nodes[n].left = static_cast<int>(left);
      nodes[n].right = static_cast<int>(right);
      // Structural validation: children must point inside the tree.
      if (!nodes[n].is_leaf &&
          (left < 0 || right < 0 ||
           left >= static_cast<int64_t>(num_nodes) ||
           right >= static_cast<int64_t>(num_nodes))) {
        return Status::Corruption("tree child index out of range");
      }
    }
    model.trees_.push_back(
        RegressionTree::FromParts(std::move(nodes), std::move(gains)));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after GBDT snapshot");
  }
  return model;
}

}  // namespace atnn::gbdt
