#include "gbdt/binner.h"

#include <algorithm>

#include "common/macros.h"

namespace atnn::gbdt {

FeatureBinner FeatureBinner::Fit(const nn::Tensor& features, int max_bins) {
  ATNN_CHECK(max_bins >= 2 && max_bins <= 256);
  ATNN_CHECK(features.rows() > 0);
  FeatureBinner binner;
  binner.max_bins_ = max_bins;
  const auto cols = static_cast<size_t>(features.cols());
  binner.thresholds_.resize(cols);

  std::vector<float> column;
  for (size_t c = 0; c < cols; ++c) {
    column.assign(static_cast<size_t>(features.rows()), 0.0f);
    for (int64_t r = 0; r < features.rows(); ++r) {
      column[static_cast<size_t>(r)] = features.at(r, static_cast<int64_t>(c));
    }
    std::sort(column.begin(), column.end());
    column.erase(std::unique(column.begin(), column.end()), column.end());

    std::vector<float>& thresholds = binner.thresholds_[c];
    const size_t distinct = column.size();
    if (distinct <= static_cast<size_t>(max_bins)) {
      // One bin per distinct value; thresholds between consecutive values.
      for (size_t i = 0; i + 1 < distinct; ++i) {
        thresholds.push_back(column[i]);
      }
    } else {
      // Quantile cuts.
      for (int b = 1; b < max_bins; ++b) {
        const size_t idx = distinct * static_cast<size_t>(b) /
                           static_cast<size_t>(max_bins);
        const float cut = column[idx];
        if (thresholds.empty() || cut > thresholds.back()) {
          thresholds.push_back(cut);
        }
      }
    }
  }
  return binner;
}

FeatureBinner FeatureBinner::FromThresholds(
    std::vector<std::vector<float>> thresholds, int max_bins) {
  FeatureBinner binner;
  binner.thresholds_ = std::move(thresholds);
  binner.max_bins_ = max_bins;
  return binner;
}

uint8_t FeatureBinner::Bin(size_t column, float value) const {
  const std::vector<float>& thresholds = thresholds_[column];
  const auto it = std::lower_bound(thresholds.begin(), thresholds.end(),
                                   value);
  return static_cast<uint8_t>(it - thresholds.begin());
}

std::vector<uint8_t> FeatureBinner::BinMatrix(
    const nn::Tensor& features) const {
  ATNN_CHECK_EQ(static_cast<size_t>(features.cols()), num_columns());
  std::vector<uint8_t> binned(
      static_cast<size_t>(features.rows()) * num_columns());
  for (int64_t r = 0; r < features.rows(); ++r) {
    const float* row = features.row_ptr(r);
    uint8_t* out = &binned[static_cast<size_t>(r) * num_columns()];
    for (size_t c = 0; c < num_columns(); ++c) {
      out[c] = Bin(c, row[c]);
    }
  }
  return binned;
}

}  // namespace atnn::gbdt
