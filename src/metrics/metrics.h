#ifndef ATNN_METRICS_METRICS_H_
#define ATNN_METRICS_METRICS_H_

#include <cstdint>
#include <vector>

namespace atnn::metrics {

/// Area under the ROC curve via the rank statistic, with proper handling of
/// tied scores (ties contribute 0.5). Labels must be 0/1 with at least one
/// of each; scores may be any monotone quantity (logits or probabilities).
double Auc(const std::vector<double>& scores,
           const std::vector<float>& labels);

/// Grouped AUC (GAUC), the industrial companion metric to AUC for CTR
/// models: AUC computed within each group (typically one group per user),
/// averaged with weights proportional to group size. Groups whose labels
/// are single-class contribute nothing (no ranking decision exists within
/// them). Returns the weighted mean; CHECK-fails if no group is scorable.
double GroupedAuc(const std::vector<double>& scores,
                  const std::vector<float>& labels,
                  const std::vector<int64_t>& group_ids);

/// Average binary cross-entropy of probabilities against 0/1 labels.
/// Probabilities are clamped to [eps, 1-eps].
double LogLoss(const std::vector<double>& probabilities,
               const std::vector<float>& labels, double eps = 1e-7);

/// Mean absolute error.
double MeanAbsoluteError(const std::vector<double>& predictions,
                         const std::vector<float>& targets);

/// Root mean squared error.
double RootMeanSquaredError(const std::vector<double>& predictions,
                            const std::vector<float>& targets);

/// Pearson correlation of two sequences (0 when either is constant).
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Spearman rank correlation (Pearson over fractional ranks).
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/// Splits items into `num_groups` contiguous groups after sorting by score
/// descending, returning the item indices of each group (group 0 = top
/// scores). Used for the paper's popularity-quintile analysis (Table II).
std::vector<std::vector<int64_t>> RankGroups(
    const std::vector<double>& scores, int num_groups);

/// Mean of `values` restricted to `indices`.
double MeanOver(const std::vector<double>& values,
                const std::vector<int64_t>& indices);

}  // namespace atnn::metrics

#endif  // ATNN_METRICS_METRICS_H_
