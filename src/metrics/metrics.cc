#include "metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_map>

#include "common/macros.h"

namespace atnn::metrics {

double Auc(const std::vector<double>& scores,
           const std::vector<float>& labels) {
  ATNN_CHECK_EQ(scores.size(), labels.size());
  ATNN_CHECK(!scores.empty());

  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&scores](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Sum of positive ranks with midranks for ties (Mann–Whitney U).
  double positive_rank_sum = 0.0;
  int64_t num_positive = 0;
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    // Ranks are 1-based; tied block [i, j] gets the average rank.
    const double midrank = 0.5 * (static_cast<double>(i + 1) +
                                  static_cast<double>(j + 1));
    for (size_t t = i; t <= j; ++t) {
      if (labels[order[t]] > 0.5f) {
        positive_rank_sum += midrank;
        ++num_positive;
      }
    }
    i = j + 1;
  }
  const int64_t num_negative =
      static_cast<int64_t>(scores.size()) - num_positive;
  ATNN_CHECK(num_positive > 0 && num_negative > 0)
      << "AUC undefined: " << num_positive << " positives, " << num_negative
      << " negatives";
  const double u = positive_rank_sum -
                   static_cast<double>(num_positive) *
                       (static_cast<double>(num_positive) + 1.0) / 2.0;
  return u / (static_cast<double>(num_positive) *
              static_cast<double>(num_negative));
}

double GroupedAuc(const std::vector<double>& scores,
                  const std::vector<float>& labels,
                  const std::vector<int64_t>& group_ids) {
  ATNN_CHECK_EQ(scores.size(), labels.size());
  ATNN_CHECK_EQ(scores.size(), group_ids.size());
  ATNN_CHECK(!scores.empty());

  // Bucket example indices by group.
  std::unordered_map<int64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < group_ids.size(); ++i) {
    groups[group_ids[i]].push_back(i);
  }

  double weighted_sum = 0.0;
  double total_weight = 0.0;
  std::vector<double> group_scores;
  std::vector<float> group_labels;
  for (const auto& [group, indices] : groups) {
    bool has_positive = false;
    bool has_negative = false;
    for (size_t i : indices) {
      (labels[i] > 0.5f ? has_positive : has_negative) = true;
    }
    if (!has_positive || !has_negative) continue;
    group_scores.clear();
    group_labels.clear();
    for (size_t i : indices) {
      group_scores.push_back(scores[i]);
      group_labels.push_back(labels[i]);
    }
    const double weight = static_cast<double>(indices.size());
    weighted_sum += weight * Auc(group_scores, group_labels);
    total_weight += weight;
  }
  ATNN_CHECK(total_weight > 0.0)
      << "GAUC undefined: every group is single-class";
  return weighted_sum / total_weight;
}

double LogLoss(const std::vector<double>& probabilities,
               const std::vector<float>& labels, double eps) {
  ATNN_CHECK_EQ(probabilities.size(), labels.size());
  ATNN_CHECK(!probabilities.empty());
  double total = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    const double p = std::clamp(probabilities[i], eps, 1.0 - eps);
    total += labels[i] > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return total / static_cast<double>(probabilities.size());
}

double MeanAbsoluteError(const std::vector<double>& predictions,
                         const std::vector<float>& targets) {
  ATNN_CHECK_EQ(predictions.size(), targets.size());
  ATNN_CHECK(!predictions.empty());
  double total = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    total += std::abs(predictions[i] - static_cast<double>(targets[i]));
  }
  return total / static_cast<double>(predictions.size());
}

double RootMeanSquaredError(const std::vector<double>& predictions,
                            const std::vector<float>& targets) {
  ATNN_CHECK_EQ(predictions.size(), targets.size());
  ATNN_CHECK(!predictions.empty());
  double total = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double diff = predictions[i] - static_cast<double>(targets[i]);
    total += diff * diff;
  }
  return std::sqrt(total / static_cast<double>(predictions.size()));
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ATNN_CHECK_EQ(a.size(), b.size());
  ATNN_CHECK(!a.empty());
  const double n = static_cast<double>(a.size());
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

namespace {

/// Fractional (midrank) ranks of the values.
std::vector<double> FractionalRanks(const std::vector<double>& values) {
  std::vector<size_t> order(values.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&values](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(values.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    const double midrank = 0.5 * (static_cast<double>(i + 1) +
                                  static_cast<double>(j + 1));
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = midrank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b) {
  return PearsonCorrelation(FractionalRanks(a), FractionalRanks(b));
}

std::vector<std::vector<int64_t>> RankGroups(
    const std::vector<double>& scores, int num_groups) {
  ATNN_CHECK(num_groups > 0);
  ATNN_CHECK(!scores.empty());
  std::vector<int64_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](int64_t a, int64_t b) {
    return scores[static_cast<size_t>(a)] > scores[static_cast<size_t>(b)];
  });
  std::vector<std::vector<int64_t>> groups(static_cast<size_t>(num_groups));
  const size_t n = scores.size();
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t group = std::min(
        static_cast<size_t>(num_groups) - 1,
        rank * static_cast<size_t>(num_groups) / n);
    groups[group].push_back(order[rank]);
  }
  return groups;
}

double MeanOver(const std::vector<double>& values,
                const std::vector<int64_t>& indices) {
  ATNN_CHECK(!indices.empty());
  double total = 0.0;
  for (int64_t idx : indices) total += values[static_cast<size_t>(idx)];
  return total / static_cast<double>(indices.size());
}

}  // namespace atnn::metrics
