#ifndef ATNN_NN_MATMUL_H_
#define ATNN_NN_MATMUL_H_

#include "nn/tensor.h"

namespace atnn::nn {

/// C = A * B. Shapes: A [m,k], B [k,n], C [m,n]. C is overwritten.
void MatMulInto(const Tensor& a, const Tensor& b, Tensor* c);

/// C += A * B^T. Shapes: A [m,k], B [n,k], C [m,n]. Used for dX = dY * W^T.
void MatMulTransBAccum(const Tensor& a, const Tensor& b, Tensor* c);

/// C += A^T * B. Shapes: A [m,k], B [m,n], C [k,n]. Used for dW = X^T * dY.
void MatMulTransAAccum(const Tensor& a, const Tensor& b, Tensor* c);

/// Returns A * B as a new tensor.
Tensor MatMulNew(const Tensor& a, const Tensor& b);

}  // namespace atnn::nn

#endif  // ATNN_NN_MATMUL_H_
