#ifndef ATNN_NN_PARAMETER_H_
#define ATNN_NN_PARAMETER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "nn/autograd.h"

namespace atnn::nn {

/// A named, trainable tensor. The underlying graph node is long-lived:
/// every training step builds fresh op nodes on top of the same parameter
/// leaves, and optimizers mutate `value()` in place.
class Parameter {
 public:
  Parameter() = default;
  Parameter(std::string name, Tensor value);

  const std::string& name() const { return name_; }

  const Tensor& value() const { return node_->value; }
  Tensor& value() { return node_->value; }

  const Tensor& grad() const { return node_->grad; }

  /// Graph handle for use in forward passes.
  Var var() const { return Var(node_); }

  Node* node() const { return node_.get(); }

  int64_t rows() const { return node_->value.rows(); }
  int64_t cols() const { return node_->value.cols(); }
  int64_t numel() const { return node_->value.numel(); }

 private:
  std::string name_;
  NodePtr node_;
};

/// Anything owning parameters. Composite modules forward the call to their
/// children; the flattened list feeds optimizers and snapshots.
class Module {
 public:
  virtual ~Module() = default;

  /// Appends pointers to every parameter owned (transitively) by this
  /// module. Pointers stay valid for the module's lifetime.
  virtual void CollectParameters(std::vector<Parameter*>* out) = 0;

  /// Convenience wrapper over CollectParameters.
  std::vector<Parameter*> Parameters() {
    std::vector<Parameter*> result;
    CollectParameters(&result);
    return result;
  }

  /// Total scalar count across all parameters.
  int64_t NumParameterElements();
};

/// Zeroes the gradient buffers of every parameter (sparse-aware). Use when
/// several optimizers share a model and stray gradients from one half-step
/// must not leak into the next (e.g. GAN-style alternating updates).
void ZeroAllGrads(const std::vector<Parameter*>& params);

/// Serializes parameters as (name, shape, data) records. Names must be
/// unique within one snapshot.
void SaveParameters(const std::vector<Parameter*>& params, BinaryWriter* writer);

/// Restores parameters saved by SaveParameters. Every parameter in `params`
/// must be present in the snapshot with a matching shape; extra snapshot
/// entries are an error (catches architecture drift).
Status LoadParameters(const std::vector<Parameter*>& params,
                      BinaryReader* reader);

/// Copies values src[i] -> dst[i]. The lists must align pairwise in name
/// and shape — CollectParameters emits a structural order, so two models
/// built from the same schemas + config align exactly. Gradients and any
/// optimizer state attached to dst are untouched; this is the warm-start /
/// publish-a-copy primitive of the streaming trainer (live snapshots must
/// never alias a model a training loop is mutating).
Status CopyParameterValues(const std::vector<Parameter*>& src,
                           const std::vector<Parameter*>& dst);

}  // namespace atnn::nn

#endif  // ATNN_NN_PARAMETER_H_
