#ifndef ATNN_NN_LAYERS_H_
#define ATNN_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/init.h"
#include "nn/ops.h"
#include "nn/parameter.h"

namespace atnn::nn {

// Activation lives in ops.h (DenseAffine needs it below the layer level).

/// Applies the chosen nonlinearity.
Var Activate(const Var& x, Activation activation);

/// Fully connected layer y = act(x W + b) with W [in, out], b [1, out].
class Dense : public Module {
 public:
  Dense(const std::string& name, int64_t in_dim, int64_t out_dim,
        Activation activation, Rng* rng);

  Var Forward(const Var& x) const;

  void CollectParameters(std::vector<Parameter*>* out) override;

  int64_t in_dim() const { return weight_.rows(); }
  int64_t out_dim() const { return weight_.cols(); }

  /// Read-only weight access for offline consumers (the quantizer reads
  /// trained weights without touching the autograd graph).
  const Parameter& weight() const { return weight_; }
  const Parameter& bias() const { return bias_; }
  Activation activation() const { return activation_; }

 private:
  Parameter weight_;
  Parameter bias_;
  Activation activation_;
};

/// Stack of Dense layers. dims = {in, h1, ..., out}. Hidden layers use
/// `hidden_activation`; the last layer uses `output_activation`.
class Mlp : public Module {
 public:
  Mlp(const std::string& name, const std::vector<int64_t>& dims,
      Activation hidden_activation, Activation output_activation, Rng* rng);

  Var Forward(const Var& x) const;

  void CollectParameters(std::vector<Parameter*>* out) override;

  int64_t in_dim() const;
  int64_t out_dim() const;

  const std::vector<Dense>& layers() const { return layers_; }

 private:
  std::vector<Dense> layers_;
};

/// DCN cross network (Wang et al., ADKDD'17): per layer l,
///   x_{l+1} = x_0 * (x_l^T w_l) + b_l + x_l
/// with w_l [d,1], b_l [1,d]. Learns explicit bounded-degree feature
/// crosses; depth L captures crosses of degree L+1.
class CrossNetwork : public Module {
 public:
  CrossNetwork(const std::string& name, int64_t dim, int num_layers, Rng* rng);

  Var Forward(const Var& x0) const;

  void CollectParameters(std::vector<Parameter*>* out) override;

  int num_layers() const { return static_cast<int>(weights_.size()); }
  int64_t dim() const { return dim_; }

  const Parameter& weight(int layer) const { return weights_[layer]; }
  const Parameter& bias(int layer) const { return biases_[layer]; }

 private:
  int64_t dim_;
  std::vector<Parameter> weights_;
  std::vector<Parameter> biases_;
};

/// Layer normalization with learned gain and bias (gamma init 1, beta 0).
class LayerNormLayer : public Module {
 public:
  LayerNormLayer(const std::string& name, int64_t dim, float eps = 1e-5f);

  Var Forward(const Var& x) const;

  void CollectParameters(std::vector<Parameter*>* out) override;

  int64_t dim() const { return gamma_.cols(); }

 private:
  Parameter gamma_;
  Parameter beta_;
  float eps_;
};

/// Which architecture a tower uses. The paper compares fully connected
/// towers (TNN-FC) against Deep & Cross towers (TNN-DCN / ATNN).
enum class TowerKind { kFullyConnected, kDeepCross };

/// Configuration shared by the user tower, item encoder and item generator.
struct TowerConfig {
  TowerKind kind = TowerKind::kDeepCross;
  /// Widths of the deep branch, e.g. {256, 256, 256} (paper: 256x3).
  std::vector<int64_t> deep_dims = {64, 64};
  /// Number of cross layers (paper setting: dims 512/256/128 corresponds to
  /// a 3-deep cross stack over the embedding concat).
  int cross_layers = 3;
  /// Output embedding dimension (paper: 128).
  int64_t output_dim = 32;
  Activation hidden_activation = Activation::kRelu;
};

/// One tower: input features -> representation vector. Deep & Cross:
/// concat(cross(x), deep(x)) -> Dense(out_dim). Fully connected: deep(x)
/// -> Dense(out_dim).
class Tower : public Module {
 public:
  Tower(const std::string& name, int64_t input_dim, const TowerConfig& config,
        Rng* rng);

  Var Forward(const Var& x) const;

  void CollectParameters(std::vector<Parameter*>* out) override;

  int64_t input_dim() const { return input_dim_; }
  int64_t output_dim() const { return config_.output_dim; }
  const TowerConfig& config() const { return config_; }

  /// Structure access for the quantizer: the deep stack, the optional
  /// cross network (null for kFullyConnected), and the output head.
  const Mlp& deep() const { return deep_; }
  const CrossNetwork* cross() const { return cross_.get(); }
  const Dense& head() const { return head_; }

 private:
  int64_t input_dim_;
  TowerConfig config_;
  std::unique_ptr<CrossNetwork> cross_;  // null for kFullyConnected
  Mlp deep_;
  Dense head_;
};

/// One categorical field's embedding table; see EmbeddingBag.
struct EmbeddingFieldSpec {
  std::string name;
  int64_t vocab_size = 0;
  int64_t embed_dim = 0;
  /// When > 0, the table has `hash_buckets` rows and ids are hashed into
  /// them (feature hashing). This accepts *any* non-negative id — the
  /// production answer to unbounded vocabularies (new sellers and brands
  /// appear every day); collisions are the accepted trade-off. When 0, ids
  /// must lie in [0, vocab_size).
  int64_t hash_buckets = 0;
};

/// Embedding tables for a list of categorical fields plus an optional dense
/// block, producing the concatenated input of a tower:
///   [emb(field_0) | emb(field_1) | ... | dense_features]
/// Tables can be shared across modules (the paper shares the item-profile
/// embeddings between the encoder and the generator) by passing the same
/// EmbeddingBag instance via shared_ptr.
class EmbeddingBag : public Module {
 public:
  EmbeddingBag(const std::string& name,
               const std::vector<EmbeddingFieldSpec>& fields, Rng* rng);

  /// ids[f] is the id batch for field f; all fields share the batch size.
  /// `dense` is an optional [batch, k] constant block appended at the end
  /// (pass an empty tensor to skip).
  Var Forward(const std::vector<std::vector<int64_t>>& ids,
              const Tensor& dense) const;

  void CollectParameters(std::vector<Parameter*>* out) override;

  /// Output width given a dense block of `dense_cols` columns.
  int64_t OutputDim(int64_t dense_cols) const;

  size_t num_fields() const { return tables_.size(); }
  const EmbeddingFieldSpec& field(size_t i) const { return fields_[i]; }
  const Parameter& table(size_t i) const { return tables_[i]; }

 private:
  std::vector<EmbeddingFieldSpec> fields_;
  std::vector<Parameter> tables_;
};

}  // namespace atnn::nn

#endif  // ATNN_NN_LAYERS_H_
